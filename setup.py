"""Setup shim: enables legacy editable installs in offline environments
that lack the ``wheel`` package (PEP 517 editable builds need bdist_wheel).
All metadata lives in pyproject.toml."""

from setuptools import setup

setup()
