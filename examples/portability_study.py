#!/usr/bin/env python3
"""Portability study: do the RISC-V co-design optimizations travel?

Runs the original (auto-vectorized) and fully optimized mini-app on the
three platform models -- RISC-V VEC, NEC SX-Aurora, Intel AVX-512
(MareNostrum 4) -- and reproduces the paper's Figures 12 and 13: the
code changes help everywhere (or at worst do no harm), with
platform-specific flavours:

* RISC-V VEC: gains grow with VECTOR_SIZE;
* SX-Aurora: same trend until VECTOR_SIZE = 256, then the non-vectorized
  phase 8 (indexed accesses on a weak scalar unit) erodes the gain;
* MareNostrum 4: gains come from phase 2's cache-miss and instruction
  reduction, not from longer vectors (AVX-512 is 8 wide).

Run:  python examples/portability_study.py
      REPRO_MESH=full python examples/portability_study.py
"""

import os

from repro.experiments import Session, FULL_MESH, QUICK_MESH, figures, report
from repro.machine.machines import MACHINES


def main() -> None:
    dims = FULL_MESH if os.environ.get("REPRO_MESH") == "full" else QUICK_MESH
    session = Session(mesh_dims=dims, verbose=True)

    print("platforms under study (Table 2, per core):")
    from repro.experiments import tables

    print(report.render(tables.table2()))

    print()
    print("optimized-vs-vanilla speed-up per platform (Figure 12):")
    f12 = figures.figure12(session)
    print(report.format_table(f12.rows()))
    for machine in f12.series:
        vals = dict(zip(f12.xs, f12.series[machine]))
        best_vs = max(vals, key=vals.get)
        print(f"  {MACHINES[machine].name:<14} best gain {vals[best_vs]:.2f}x "
              f"at VECTOR_SIZE = {best_vs}")

    print()
    print("MareNostrum 4 decomposition (Figure 13):")
    f13 = figures.figure13(session)
    print(report.format_table(f13.rows()))
    print("\n-> the phase-2 speed-up (right column) drives the overall "
          "MN4 gain: fewer instructions and fewer L1/L2 misses after IVEC2.")

    print()
    print("phase-8 share on SX-Aurora (why the gain drops past 256):")
    rows = [["VECTOR_SIZE", "phase-8 % of cycles (optimized)"]]
    for vs in f12.xs:
        run = session.run(machine="sx_aurora", opt="vec1", vector_size=vs)
        rows.append([str(vs), f"{100 * run.cycle_fractions()[8]:.1f}%"])
    print(report.format_table(rows))


if __name__ == "__main__":
    main()
