#!/usr/bin/env python3
"""A complete CFD step: assembly + algebraic solve (the two halves the
paper names in §2.3), iterated as a short pseudo-time simulation.

The mini-app assembles the stabilized momentum operator and right-hand
sides on a lid-driven-cavity-like box; the CSR + BiCGSTAB substrate then
solves for the velocity update of each component, and the nodal unknowns
are advanced.  This exercises the *numerical* path of the library
end-to-end (mesh -> gather -> element integrals -> scatter -> Krylov
solve -> field update), independent of the performance model.

Run:  python examples/cavity_flow.py
"""

import numpy as np

from repro.cfd import MiniApp, bicgstab, box_mesh, jacobi_preconditioner, spmv
from repro.cfd.elements import NDIME


def lid_velocity(coord: np.ndarray) -> np.ndarray:
    """Unit x-velocity on the top face (z = max), zero elsewhere."""
    u = np.zeros((coord.shape[0], NDIME))
    top = coord[:, 2] >= coord[:, 2].max() - 1e-12
    u[top, 0] = 1.0
    return u


def main() -> None:
    mesh = box_mesh(6, 6, 6)
    print(f"cavity mesh: {mesh.nelem} elements, {mesh.npoin} nodes")

    n_steps = 3
    relax = 0.5
    app = MiniApp(mesh, vector_size=27, opt="vec1")
    lid = lid_velocity(mesh.coord)
    fields = app.global_float_data()
    unkno = fields["unkno"].copy()
    unkno_old = fields["unkno_old"].copy()

    for step in range(1, n_steps + 1):
        system = app.run_numeric(
            field_overrides={"unkno": unkno, "unkno_old": unkno_old})
        pattern, A = system.pattern, system.amatr.copy()
        # time-derivative mass lump on the diagonal keeps the operator
        # well conditioned (dtinv from the mini-app parameters)
        rows = pattern.row_of_entry()
        A[rows == pattern.indices] += app.context.params["dtinv"] * 0.05

        M = jacobi_preconditioner(pattern, A)
        du = np.zeros((mesh.npoin, NDIME))
        its = []
        for d in range(NDIME):
            res = bicgstab(pattern, A, system.rhsid[:, d], tol=1e-8,
                           maxiter=500, precond=M)
            assert res.converged, f"solver stalled on component {d}"
            du[:, d] = res.x
            its.append(res.iterations)

        # advance the velocity field (with the lid as a Dirichlet-like
        # forcing); the next assembly gathers the updated unknowns
        unkno_old = unkno[:, :NDIME].copy()
        unkno[:, :NDIME] += relax * du + 0.1 * lid
        print(f"step {step}: bicgstab iterations per component {its}, "
              f"|du| = {np.linalg.norm(du):.3e}, "
              f"max |u| = {np.abs(unkno[:, :NDIME]).max():.3e}")

    # final sanity: the assembled operator maps the solution back to the RHS
    check = spmv(pattern, A, du[:, 0])
    err = np.linalg.norm(check - system.rhsid[:, 0]) / np.linalg.norm(
        system.rhsid[:, 0])
    print(f"\nfinal residual check |A du - b| / |b| = {err:.2e}")
    print("assembly + solver substrate: OK")


if __name__ == "__main__":
    main()
