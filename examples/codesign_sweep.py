#!/usr/bin/env python3
"""The co-design loop: sweep VECTOR_SIZE across the optimization steps.

Replays the paper's iterative methodology on the simulated RISC-V VEC
prototype:

1. scalar baseline and per-phase cost distribution (Table 3);
2. vanilla auto-vectorization: where does the compiler fail? (Table 4);
3. VEC2 -- constant bound: vectorized, but AVL = 4 makes it *slower*;
4. IVEC2 -- loop interchange: vl = VECTOR_SIZE, phase 2 fixed;
5. VEC1 -- loop fission: phase 1's movable half vectorized;
6. the resulting speed-up ladder (Figure 11) and vector occupancy.

Run:  python examples/codesign_sweep.py            (960-element mesh)
      REPRO_MESH=full python examples/codesign_sweep.py   (7680 elements)
"""

import os

from repro.experiments import Session, FULL_MESH, QUICK_MESH, figures, report, tables
from repro.metrics import metrics as M


def main() -> None:
    dims = FULL_MESH if os.environ.get("REPRO_MESH") == "full" else QUICK_MESH
    session = Session(mesh_dims=dims, verbose=True)

    print("=" * 72)
    print("STEP 1 -- scalar baseline (Table 3): where does the time go?")
    print("=" * 72)
    print(report.render(tables.table3(session)))

    print()
    print("=" * 72)
    print("STEP 2 -- vanilla auto-vectorization (Table 4): what vectorized?")
    print("=" * 72)
    t4 = tables.table4(session)
    heat = {(vs, p): 100 * t4.mix[vs][p] for vs in t4.mix for p in range(1, 9)}
    print(report.format_heatmap(list(range(1, 9)), sorted(t4.mix),
                                {(y, x): heat[(y, x)] for y in t4.mix
                                 for x in range(1, 9)}))
    print("\n-> phases 1, 2 and 8 never vectorize; phase 2 dominates the "
          "remaining scalar time.")

    print()
    print("=" * 72)
    print("STEP 3+4 -- attack phase 2: VEC2 (constant bound) then IVEC2")
    print("=" * 72)
    print(report.format_table(figures.figure6(session).rows()))
    run_vec2 = session.run(opt="vec2", vector_size=256)
    p2 = run_vec2.phases[2]
    print(f"\n-> VEC2 phase-2 AVL = {M.avl(p2):.1f} elements out of 256: "
          f"the issue overhead dominates and performance DEGRADES.")
    run_ivec2 = session.run(opt="ivec2", vector_size=256)
    print(f"-> IVEC2 phase-2 AVL = {M.avl(run_ivec2.phases[2]):.1f}: "
          f"interchange fixes the vector length.")

    print()
    print("=" * 72)
    print("STEP 5 -- attack phase 1: VEC1 loop fission (Figure 7)")
    print("=" * 72)
    print(report.format_table(figures.figure7(session).rows()))

    print()
    print("=" * 72)
    print("RESULT -- speed-up ladder vs scalar VECTOR_SIZE=16 (Figure 11)")
    print("=" * 72)
    f11 = figures.figure11(session)
    print(report.format_table(f11.rows()))
    best = f11.at(240, "vec1")
    print(f"\n-> final speed-up at VECTOR_SIZE = 240: {best:.2f}x "
          f"(paper: 7.6x; ideal for 8 lanes: 8x)")

    print()
    print("vector occupancy after optimization (Figure 10):")
    print(report.format_table(figures.figure10(session).rows()))


if __name__ == "__main__":
    main()
