#!/usr/bin/env python3
"""Trace-driven analysis: the Extrae/Vehave/Paraver workflow in miniature.

Runs the mini-app on the RISC-V VEC model with the tracer attached,
exports the trace to the Paraver-like text format, reads it back, and
derives the per-phase metrics *from the trace alone* -- the workflow the
paper's performance analysts use to find vectorization bottlenecks.

Run:  python examples/trace_analysis.py
"""

import tempfile
from pathlib import Path

from repro import MiniApp, box_mesh
from repro.experiments import report
from repro.machine import Machine, RISCV_VEC
from repro.trace import Tracer, paraver, phase_stats, timeline


def main() -> None:
    app = MiniApp(box_mesh(6, 6, 6), vector_size=216, opt="vec1")
    tracer = Tracer()
    machine = Machine(RISCV_VEC, tracer=tracer)
    run = app.run_timed(RISCV_VEC, machine=machine)

    print(f"collected {len(tracer.blocks)} block events and "
          f"{len(tracer.vector_instrs)} vector-instruction batches")

    path = Path(tempfile.gettempdir()) / "miniapp.prv"
    paraver.dump(tracer, path)
    print(f"exported Paraver-like trace to {path} "
          f"({path.stat().st_size/1024:.0f} KiB)")

    reloaded = paraver.load(path)
    stats = phase_stats(reloaded)

    rows = [["phase", "cycles", "vector instrs", "AVL",
             "arith", "mem", "ctrl-lane", "vsetvl"]]
    for p in sorted(stats):
        s = stats[p]
        h = s.hierarchy
        rows.append([
            str(p), f"{s.cycles:,.0f}", f"{s.vector_instrs:,.0f}",
            f"{s.avl:.0f}", f"{h.arithmetic:,.0f}", f"{h.memory:,.0f}",
            f"{h.control_lane:,.0f}", f"{h.vector_config:,.0f}",
        ])
    print()
    print(report.format_table(rows))

    print("\nphase timeline (dominant phase per time bucket):")
    tl = timeline(reloaded, buckets=64)
    print("  " + "".join(str(p) for _, p in tl))

    # cross-check the trace analysis against the hardware counters
    # (the text format rounds timestamps to whole cycles, hence the
    # per-mille tolerance; the in-memory trace matches exactly)
    exact = phase_stats(tracer)
    for p, pc in run.phases.items():
        assert abs(exact[p].cycles - pc.cycles_total) < 1e-6 * max(1.0, pc.cycles_total)
        assert abs(stats[p].cycles - pc.cycles_total) < 2e-3 * max(1.0, pc.cycles_total)
    print("\ntrace-derived cycles match the hardware counters: OK")


if __name__ == "__main__":
    main()
