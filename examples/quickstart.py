#!/usr/bin/env python3
"""Quickstart: compile and run the CFD mini-app on the RISC-V vector model.

Builds a small hexahedral mesh, compiles the eight assembly phases at the
fully-optimized level (VEC1 = constant bounds + loop interchange + loop
fission), executes them on the simulated RISC-V VEC prototype, and prints
the paper's §2.2 metrics per phase alongside the compiler's vectorization
remarks.

Run:  python examples/quickstart.py
"""

from repro import MiniApp, box_mesh
from repro.experiments import report
from repro.machine import RISCV_VEC
from repro.metrics.metrics import PhaseMetrics

VECTOR_SIZE = 240  # the paper's sweet spot (Vitruvius FSM: multiple of 40)


def main() -> None:
    mesh = box_mesh(8, 8, 15)  # 960 elements, 1584 nodes
    print(f"mesh: {mesh.nelem} HEX08 elements, {mesh.npoin} nodes")

    app = MiniApp(mesh, vector_size=VECTOR_SIZE, opt="vec1")
    print(f"\ncompiler remarks (VECTOR_SIZE = {VECTOR_SIZE}):")
    for r in app.remarks:
        mark = "+" if r.status == "vectorized" else "-"
        print(f"  {mark} phase {r.phase} loop '{r.loop_var}': {r.status}")

    run = app.run_timed(RISCV_VEC)
    print(f"\ntotal cycles on {RISCV_VEC.name}: {run.total_cycles:,.0f}"
          f"  ({RISCV_VEC.cycles_to_seconds(run.total_cycles)*1e3:.1f} ms "
          f"at {RISCV_VEC.frequency_mhz:g} MHz)")

    rows = [["phase", "cycles", "%", "M_v", "A_v", "vCPI", "AVL", "E_v"]]
    fr = run.cycle_fractions()
    for p in run.phase_ids():
        m = PhaseMetrics.from_counters(run.phases[p], RISCV_VEC.vl_max)
        rows.append([
            str(p), f"{m.cycles:,.0f}", f"{100*fr[p]:.1f}%",
            f"{m.m_v:.2f}", f"{m.a_v:.2f}", f"{m.vcpi:.1f}",
            f"{m.avl:.0f}", f"{m.e_v:.2f}",
        ])
    print()
    print(report.format_table(rows))

    scalar = MiniApp(mesh, vector_size=16, opt="scalar").run_timed(RISCV_VEC)
    print(f"\nspeed-up vs scalar VECTOR_SIZE=16: "
          f"{scalar.total_cycles / run.total_cycles:.2f}x "
          f"(paper: 7.6x at VECTOR_SIZE = 240)")


if __name__ == "__main__":
    main()
