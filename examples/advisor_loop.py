#!/usr/bin/env python3
"""The co-design advisor: re-deriving the paper's optimizations
automatically.

The paper's methodology (Section 3) is a human loop: profile, find the
limiting phase, read the vectorization remarks, refactor, repeat.
``repro.codesign`` encodes the loop's decision rules (the Section-7
"lessons learned"); this example lets it drive the mini-app from the
vanilla auto-vectorized build to the fully optimized one and prints each
iteration's findings -- the same VEC2 -> IVEC2 -> VEC1 ladder the
authors applied by hand, including the deliberate VEC2 regression.

Run:  python examples/advisor_loop.py
"""

from repro.cfd.mesh import box_mesh
from repro.codesign import render_findings, run_codesign_loop
from repro.experiments import report
from repro.machine import RISCV_VEC


def main() -> None:
    mesh = box_mesh(8, 8, 15)
    print(f"mesh: {mesh.nelem} elements; machine: {RISCV_VEC.name}; "
          f"VECTOR_SIZE = 240\n")

    result = run_codesign_loop(mesh, RISCV_VEC, vector_size=240)

    for i, step in enumerate(result.steps, start=1):
        print("=" * 72)
        print(f"ITERATION {i}: build '{step.opt}' -- "
              f"{step.total_cycles:,.0f} cycles "
              f"({step.speedup_vs_start:.2f}x vs start)")
        print("=" * 72)
        top = [f for f in step.findings if f.severity >= 2] or step.findings[:3]
        print(render_findings(top))
        if step.next_opt:
            print(f"\n-> advisor recommends the '{step.next_opt}' refactor\n")
        else:
            print("\n-> no further code transformation recommended\n")

    rows = [["build", "cycles", "speed-up vs vanilla"]]
    for s in result.steps:
        rows.append([s.opt, f"{s.total_cycles:,.0f}",
                     f"{s.speedup_vs_start:.2f}x"])
    print(report.format_table(rows))
    print(f"\nsequence: {' -> '.join(result.sequence)}  "
          f"(the paper's exact ladder)")
    print(f"final speed-up over vanilla auto-vectorization: "
          f"{result.final_speedup:.2f}x")


if __name__ == "__main__":
    main()
