"""The seeded chaos campaign: inject every fault kind, prove detection.

:func:`run_chaos_campaign` executes the optimization-ladder sweep on a
tiny mesh over and over, each stage arming exactly one seeded fault from
the :class:`~repro.faults.plan.FaultPlan`, and classifies the outcome:

``recovered``
    the fault left a trace (retry / timeout / invalid / broken-pool
    event, or a re-simulation where a cache hit was due) **and** the
    final counters are bit-identical to the clean baseline;
``detected``
    the fault was flagged (failed / quarantined / validation verdict)
    but the run could not be transparently healed — the operator is
    told, nothing poisoned slips into artifacts;
``silent``
    the fault fired and nothing noticed — the one outcome the
    robustness layer exists to rule out.  A campaign with any silent
    fault exits non-zero.

Alongside the sweep stages, targeted drills corrupt in-memory state
directly (emulator vector registers, cache accounting, a phase array
between kernel and golden reference) to exercise the validators the
sweep path cannot reach.  Two always-on solver drills
(:data:`~repro.faults.plan.SOLVER_FAULT_KINDS`) put the Krylov path
under fire: a seeded zeroed operator row that the solver must refuse to
call converged (with breakdown guards keeping the residual history
finite), and a seeded torn ELL-gather slot — FLOP-conserving, so only
the solver phase-output digests and the solver golden check can pin it.  With ``pass_faults=True`` the campaign also
arms the *compiler-model* faults: one sweep per
:data:`~repro.faults.plan.PASS_FAULT_KINDS`, where a
:class:`~repro.faults.injector.PassFaultyWorker` simulates the seeded
target from kernels tampered by a mis-legalized transformation pass.
These faults conserve FLOPs by construction, so detection rests on the
per-phase golden output digest ladder
(:func:`~repro.validation.invariants.check_phase_digest_ladder`) plus
the ``golden_check(mutate=...)`` drill.  Everything — fault plan, strike
points, backoff jitter — derives from one integer seed, and the report
contains no timestamps or wall-clock times, so two same-seed campaigns
produce byte-identical reports.
"""

from __future__ import annotations

import json
import os
import shutil
import sys
import tempfile
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.experiments.config import MeshSpec, resolve_mesh
from repro.experiments.executor import (
    ExecutionPlan,
    ExecutionResult,
    RunEvent,
    execute_plan,
)
from repro.experiments.journal import replay_journal
from repro.faults.injector import (
    FaultyWorker,
    InterruptingWorker,
    flip_float64_bit,
    inject_cache_miss_drift,
    inject_vreg_nan,
)
from repro.faults.plan import FaultPlan, FaultSpec
from repro.metrics.counters import counters_to_dict

#: stage classifications, best to worst.  ``rejected`` is the service
#: campaign's third safe outcome: the fault (e.g. a submission flood)
#: was shed with an explicit refusal — load was lost *visibly*, by
#: contract, which is as much a success as recovery.  ``degraded`` is
#: the telemetry plane's outcome: the service kept running but an SLO
#: was breached, the breach was *detected and journaled* as a
#: first-class event — degradation the operator was told about, not
#: degradation that slipped by.
RECOVERED, DETECTED, CLEAN, SILENT = "recovered", "detected", "clean", "silent"
REJECTED = "rejected"
DEGRADED = "degraded"


@dataclass
class StageReport:
    """Outcome of one campaign stage."""

    name: str
    kind: str
    target: str
    classification: str
    evidence: list[str] = field(default_factory=list)

    def to_dict(self) -> dict:
        return {"name": self.name, "kind": self.kind, "target": self.target,
                "classification": self.classification,
                "evidence": list(self.evidence)}


@dataclass
class ChaosReport:
    """Outcome of a whole campaign; serializes deterministically."""

    seed: int
    mesh_dims: tuple[int, int, int]
    plan_size: int
    stages: list[StageReport] = field(default_factory=list)

    @property
    def counts(self) -> dict[str, int]:
        out = {RECOVERED: 0, DETECTED: 0, DEGRADED: 0, REJECTED: 0,
               CLEAN: 0, SILENT: 0}
        for st in self.stages:
            out[st.classification] = out.get(st.classification, 0) + 1
        return out

    @property
    def ok(self) -> bool:
        return self.counts.get(SILENT, 0) == 0

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "mesh_dims": list(self.mesh_dims),
            "plan_size": self.plan_size,
            "ok": self.ok,
            "counts": self.counts,
            "stages": [st.to_dict() for st in self.stages],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"

    def to_markdown(self) -> str:
        """GitHub-flavored classification table (the CI job summary)."""
        lines = [
            f"### Chaos campaign — seed {self.seed}, "
            f"mesh {'x'.join(str(d) for d in self.mesh_dims)}, "
            f"{self.plan_size} runs/sweep",
            "",
            "| stage | fault | target | outcome |",
            "| --- | --- | --- | --- |",
        ]
        for st in self.stages:
            badge = {"silent": "**SILENT**", "detected": "detected",
                     "recovered": "recovered", "rejected": "rejected",
                     "degraded": "degraded", "clean": "clean"}.get(
                         st.classification, st.classification)
            lines.append(f"| {st.name} | {st.kind} | {st.target or '-'} "
                         f"| {badge} |")
        c = self.counts
        lines += [
            "",
            f"**{c[RECOVERED]} recovered · {c[DETECTED]} detected · "
            f"{c[DEGRADED]} degraded · {c[REJECTED]} rejected · "
            f"{c[CLEAN]} clean · {c[SILENT]} silent** — "
            + ("campaign ok" if self.ok
               else "FAIL: fault(s) silently absorbed"),
            "",
        ]
        return "\n".join(lines)


def _fault_event_kinds(events: list[RunEvent], key: str) -> set[str]:
    """Event kinds that constitute evidence of a noticed fault."""
    notice = {"retry", "timeout", "invalid", "failed", "quarantined"}
    return {ev.kind for ev in events if ev.kind in notice and
            (ev.key == key or not key)}


def _counters_match(result: ExecutionResult, baseline: dict[str, dict],
                    keys) -> bool:
    return all(k in result.runs and
               counters_to_dict(result.runs[k]) == baseline[k]
               for k in keys)


def run_chaos_campaign(seed: int = 0,
                       mesh: MeshSpec = "tiny",
                       out_dir: str | os.PathLike | None = None,
                       jobs: int = 2,
                       timeout_s: float = 2.0,
                       verbose: bool = False,
                       pass_faults: bool = False,
                       service_faults: bool = False,
                       backend: str = "numpy") -> ChaosReport:
    """Run the full seeded campaign; see the module docstring.

    With ``pass_faults=True`` the three compiler-model fault kinds are
    armed as additional sweep stages.  With ``service_faults=True`` the
    sweep-service drills (hung worker, torn store shard, submission
    flood, worker failure storm, kill-mid-sweep + resume) run as extra
    stages — see :mod:`repro.service.chaos`.  The kill stage spawns a
    real ``repro serve`` subprocess and SIGKILLs it, so its evidence
    strings are not byte-deterministic; campaigns compared byte-for-byte
    should leave it off.  ``backend`` selects the kernel
    execution backend for every semantic stage (digest ladders, golden
    drills); honest results are byte-identical across backends, so the
    report does not depend on the choice — only the wall-clock does.
    When *out_dir* is given the report is written there as
    ``chaos-report.json`` (plus ``chaos-summary.md``, the markdown
    classification table).  All scratch state (caches, journals, strike
    markers, digest files) lives in a temporary directory and is
    removed afterwards.
    """
    dims = resolve_mesh(mesh)
    plan = ExecutionPlan.ladder(mesh=dims)
    keys = [cfg.key() for cfg in plan]
    fplan = FaultPlan.generate(seed, keys)
    pplan = (FaultPlan.generate_pass_faults(seed, plan.configs)
             if pass_faults else None)
    report = ChaosReport(seed=seed, mesh_dims=dims, plan_size=len(plan))
    solver_specs: list[FaultSpec] = []

    def note(msg: str) -> None:
        if verbose:
            print(f"[chaos] {msg}", file=sys.stderr, flush=True)

    scratch = Path(tempfile.mkdtemp(prefix="repro-chaos-"))
    try:
        # -- stage 0: clean baseline (also the bit-identical yardstick) ---
        base_cache = scratch / "baseline"
        events: list[RunEvent] = []
        note("baseline sweep")
        base = execute_plan(plan, cache_dir=base_cache, jobs=1,
                            validate=True, on_event=events.append)
        baseline = {k: counters_to_dict(run) for k, run in base.runs.items()}
        clean = (not base.failed and not base.invalid_keys()
                 and len(base.runs) == len(plan))
        report.stages.append(StageReport(
            name="baseline", kind="none", target="",
            classification=CLEAN if clean else SILENT,
            evidence=[f"{len(base.runs)}/{len(plan)} runs valid",
                      f"validation verdicts ok: "
                      f"{sorted(base.invalid_keys()) or 'all'}"]))

        # -- worker-fault sweeps ------------------------------------------
        def sweep_stage(name: str, kind: str, *, sweep_jobs: int,
                        expect_detected: bool = False) -> None:
            spec = fplan.spec_for(kind)
            note(f"stage {name}: {kind} on {spec.target_key}")
            cache = scratch / name
            worker = FaultyWorker(fplan, scratch / f"{name}.markers",
                                  kinds=(kind,), cache_dir=cache,
                                  hang_s=2 * timeout_s)
            evs: list[RunEvent] = []
            res = execute_plan(plan, cache_dir=cache, jobs=sweep_jobs,
                               timeout_s=timeout_s, retries=2,
                               backoff_s=0.01, validate=True,
                               worker=worker, on_event=evs.append)
            noticed = _fault_event_kinds(evs, spec.target_key)
            evidence = [f"fault events on target: {sorted(noticed)}"]
            if expect_detected:
                # the fault survives per-run checks by design; the
                # cross-run verdict must still flag it.
                flagged = spec.target_key in res.invalid_keys()
                evidence.append(
                    f"cross-run verdict flagged target: {flagged}")
                cls = DETECTED if flagged else SILENT
            elif _counters_match(res, baseline, keys) and noticed:
                cls = RECOVERED
                evidence.append("all counters bit-identical to baseline")
            elif noticed or res.failed or res.quarantined:
                cls = DETECTED
                evidence.append(
                    f"failed={sorted(res.failed)} "
                    f"quarantined={sorted(res.quarantined)}")
            else:
                cls = SILENT
                evidence.append("no event, no verdict, counters drifted")
            report.stages.append(StageReport(
                name=name, kind=kind, target=spec.target_key,
                classification=cls, evidence=evidence))

        sweep_stage("worker-crash", "crash", sweep_jobs=1)
        sweep_stage("nan-counter", "nan_counter", sweep_jobs=1)
        sweep_stage("negative-counter", "negative_counter", sweep_jobs=1)
        sweep_stage("flop-drift", "flop_drift", sweep_jobs=1,
                    expect_detected=True)
        sweep_stage("worker-hang", "hang", sweep_jobs=max(2, jobs))
        sweep_stage("worker-kill", "kill", sweep_jobs=max(2, jobs))

        # -- torn cache entry: worker tears a stored entry mid-sweep ------
        spec = fplan.spec_for("torn_cache")
        note(f"stage torn-cache: tearing {spec.victim_key}")
        cache = scratch / "torn-cache"
        worker = FaultyWorker(fplan, scratch / "torn.markers",
                              kinds=("torn_cache",), cache_dir=cache)
        execute_plan(plan, cache_dir=cache, jobs=1, worker=worker)
        evs2: list[RunEvent] = []
        res2 = execute_plan(plan, cache_dir=cache, jobs=1, validate=True,
                            on_event=evs2.append)
        resim = [ev.key for ev in evs2 if ev.kind == "done"]
        healed = (_counters_match(res2, baseline, keys)
                  and resim == [spec.victim_key])
        report.stages.append(StageReport(
            name="torn-cache", kind="torn_cache", target=spec.victim_key,
            classification=RECOVERED if healed else SILENT,
            evidence=[f"re-simulated after discarding torn entry: {resim}",
                      f"counters bit-identical to baseline: "
                      f"{_counters_match(res2, baseline, keys)}"]))

        # -- bit-flipped cache entry: digest must catch silent rot --------
        note("stage bitflip-cache")
        cache = scratch / "bitflip"
        shutil.copytree(base_cache, cache)
        victim = sorted(cache.glob("*.json"))[seed % len(plan)]
        data = bytearray(victim.read_bytes())
        data[len(data) // 2] ^= 0x10  # flip a digit inside some number
        victim.write_bytes(bytes(data))
        evs3: list[RunEvent] = []
        res3 = execute_plan(plan, cache_dir=cache, jobs=1, validate=True,
                            on_event=evs3.append)
        resim = [ev.key for ev in evs3 if ev.kind == "done"]
        healed = _counters_match(res3, baseline, keys) and len(resim) == 1
        report.stages.append(StageReport(
            name="bitflip-cache", kind="bitflip_cache",
            target=victim.name,
            classification=RECOVERED if healed else SILENT,
            evidence=[f"digest rejected entry, re-simulated: {resim}"]))

        # -- journal resume: kill the sweep mid-flight, resume it ---------
        note("stage journal-resume")
        cache = scratch / "resume"
        journal = scratch / "resume.journal"
        stop_after = max(1, len(plan) // 2)
        interrupted = False
        try:
            execute_plan(plan, cache_dir=cache, jobs=1, journal=journal,
                         worker=InterruptingWorker(stop_after))
        except KeyboardInterrupt:
            interrupted = True
        jstate = replay_journal(journal)
        evs4: list[RunEvent] = []
        res4 = execute_plan(plan, cache_dir=cache, jobs=1, journal=journal,
                            validate=True, on_event=evs4.append)
        resumed = sum(1 for ev in evs4 if ev.kind == "done")
        hits = sum(1 for ev in evs4 if ev.kind == "cache_hit")
        healed = (interrupted and jstate is not None and jstate.interrupted
                  and hits == stop_after
                  and resumed == len(plan) - stop_after
                  and _counters_match(res4, baseline, keys))
        report.stages.append(StageReport(
            name="journal-resume", kind="interrupt", target="",
            classification=RECOVERED if healed else SILENT,
            evidence=[
                f"interrupted after {stop_after} runs: {interrupted}",
                f"journal recorded interrupted segment: "
                f"{jstate is not None and jstate.interrupted}",
                f"resume recalled {hits} runs, re-simulated only "
                f"{resumed}"]))

        # -- pass-fault sweeps: the compiler model itself lies ------------
        if pplan is not None:
            from repro.faults.injector import (
                PassFaultyWorker,
                pass_fault_mutator,
            )
            from repro.faults.plan import PASS_FAULT_KINDS, PASS_FAULT_RUNGS
            from repro.validation.golden import golden_check as _gcheck
            from repro.validation.invariants import check_phase_digest_ladder
            from repro.validation.probe import Probe as _Probe

            for kind in PASS_FAULT_KINDS:
                spec = pplan.spec_for(kind)
                rung = PASS_FAULT_RUNGS[kind]
                name = "pass-" + kind.removeprefix(
                    "mislegalized_").replace("_", "-")
                note(f"stage {name}: {kind} on {spec.target_key}")
                cache = scratch / name
                ddir = scratch / f"{name}.digests"
                worker = PassFaultyWorker(kind, spec.target_key,
                                          scratch / f"{name}.markers", ddir,
                                          backend=backend)
                evs5: list[RunEvent] = []
                res = execute_plan(plan, cache_dir=cache, jobs=1,
                                   validate=True, worker=worker,
                                   on_event=evs5.append)
                digests = {}
                for path in sorted(ddir.glob("*.json")):
                    rec = json.loads(path.read_text())
                    digests[rec["key"]] = rec["phase_digests"]
                dviol = check_phase_digest_ladder(digests)
                digest_flagged = spec.target_key in dviol
                verdict_flagged = spec.target_key in res.invalid_keys()
                # the drill: the same tampered pipeline must also fail
                # the golden reference cross-check on its rung.
                drill = _gcheck(_Probe(opt=rung, backend=backend),
                                mutate=pass_fault_mutator(kind))
                # counter-side signature: these faults conserve FLOPs,
                # which is exactly why the digest invariant must exist.
                t_run = res.runs.get(spec.target_key)
                b_run = base.runs.get(spec.target_key)
                flops_conserved = vl_changed = None
                if t_run is not None and b_run is not None:
                    lo, hi = sorted((t_run.total_flops, b_run.total_flops))
                    flops_conserved = hi - lo <= 1e-6 * max(1.0, abs(hi))
                    pids = set(t_run.phases) | set(b_run.phases)
                    vl_changed = any(
                        getattr(t_run.phases.get(p), "vl_hist", None)
                        != getattr(b_run.phases.get(p), "vl_hist", None)
                        for p in pids)
                noticed = digest_flagged or verdict_flagged
                cls = DETECTED if noticed and not drill.ok else SILENT
                evidence = [
                    f"digest ladder flagged target: {digest_flagged}"
                    + (f" ({dviol[spec.target_key][0]})"
                       if digest_flagged else ""),
                    f"counter verdicts flagged target: {verdict_flagged}",
                    f"golden drill on {rung}: "
                    f"{len(drill.violations)} violation(s)"
                    + (f", first: {drill.violations[0]}"
                       if drill.violations else ""),
                    f"FLOPs conserved vs baseline: {flops_conserved}; "
                    f"vl histogram changed: {vl_changed}",
                ]
                report.stages.append(StageReport(
                    name=name, kind=kind, target=spec.target_key,
                    classification=cls, evidence=evidence))

        # -- golden drills: clean pass + poisoned phase array -------------
        from repro.validation.golden import golden_check
        from repro.validation.probe import Probe

        rung = ["vanilla", "vec2", "ivec2", "vec1"][seed % 4]
        note(f"stage golden ({rung})")
        g_clean = golden_check(Probe(opt=rung, backend=backend))
        report.stages.append(StageReport(
            name="golden-clean", kind="none", target=rung,
            classification=CLEAN if g_clean.ok else SILENT,
            evidence=[f"violations: {g_clean.violations[:3]}"]))

        def poison(inst, phase: int, chunk_index: int) -> None:
            # bit 40 of the mantissa: a ~2^-12 relative kick — far above
            # the 1e-9 tolerance, small enough not to blow up phases 5-8.
            if phase == 4 and chunk_index == 0:
                arr = np.asarray(inst.data("gpvel"))
                flip_float64_bit(arr, index=0, bit=40)
        g_bad = golden_check(Probe(opt=rung, backend=backend),
                             corrupt=poison)
        pinned = any("phase 4" in v for v in g_bad.violations)
        report.stages.append(StageReport(
            name="golden-bitflip", kind="bitflip_lane", target=rung,
            classification=DETECTED if (not g_bad.ok and pinned) else SILENT,
            evidence=[f"violations: {len(g_bad.violations)}, "
                      f"pinned to struck phase: {pinned}"]))

        # -- emulator drill: NaN-poisoned vector register lane ------------
        from repro.isa.emulator import VectorEmulator, li, vsetvl

        emu = VectorEmulator(vl_max=16)
        emu.execute([li("a0", 8.0), vsetvl("t0", "a0")])
        inject_vreg_nan(emu, reg=3, lane=seed % 8)
        emu_viol = emu.validate_state()
        report.stages.append(StageReport(
            name="emulator-nan-lane", kind="nan_lane", target="v3",
            classification=DETECTED if emu_viol else SILENT,
            evidence=emu_viol[:3]))

        # -- cache drill: impossible miss accounting ----------------------
        from repro.machine.cache import MemoryHierarchy
        from repro.machine.machines import get_machine

        hier = MemoryHierarchy(get_machine("riscv_vec").memory)
        hier.access(np.arange(256, dtype=np.int64) * 8)
        assert not hier.check_invariants()
        inject_cache_miss_drift(hier.l1, delta=hier.l1.accesses + 1)
        cache_viol = hier.check_invariants()
        report.stages.append(StageReport(
            name="cache-miss-drift", kind="miss_drift", target="L1",
            classification=DETECTED if cache_viol else SILENT,
            evidence=cache_viol[:3]))

        # -- solver drills: the Krylov path (phases 9-12) under fire ------
        from repro.cfd.solver_path import SOLVE_TOL, SolverWorkload
        from repro.cfd.solver_phases import SPMV_PHASE
        from repro.faults.injector import (
            inject_nonconverging_krylov,
            inject_torn_spmv_gather,
        )
        from repro.validation.digests import solver_phase_digests
        from repro.validation.golden import solver_golden_check

        sprobe = Probe(backend=backend)
        sapp = sprobe.build_app()
        honest_workload, rhs = sapp.build_solver()

        # nonconverging_krylov: a seeded row of the shifted operator is
        # zeroed — a singular, inconsistent system no Krylov method can
        # solve.  The solver must stall and *report* it: converged=False
        # with every residual finite (the Jacobi zero-diagonal guard and
        # the breakdown guards are exactly what keeps NaN/Inf out).
        note("stage solver-nonconverging")
        bad_amatr, victim_row = inject_nonconverging_krylov(
            sapp.pattern, honest_workload.amatr, seed)
        sick = SolverWorkload(sapp.pattern, bad_amatr, sapp.vector_size,
                              opt=sapp.opt, flags=sapp.flags,
                              pipeline=sapp.pipeline)
        stall = sick.reference_solve(rhs, method="bicgstab")
        finite = (all(np.isfinite(v) for v in stall.history)
                  and np.isfinite(stall.residual))
        surfaced = not stall.converged
        report.stages.append(StageReport(
            name="solver-nonconverging", kind="nonconverging_krylov",
            target=f"row {victim_row}",
            classification=DETECTED if (surfaced and finite) else SILENT,
            evidence=[
                f"converged=False surfaced: {surfaced} after "
                f"{stall.iterations} iteration(s)",
                f"relative residual stalled at {stall.residual:.3e} "
                f"(tol {SOLVE_TOL:g})",
                f"breakdown guards kept the history finite: {finite}",
            ]))
        solver_specs.append(FaultSpec(kind="nonconverging_krylov",
                                      target_key=f"row {victim_row}"))

        # torn_spmv_gather: one populated slot of the ELL gather table
        # re-pointed at the wrong column.  FLOP- and VL-conserving by
        # construction, so counters stay green — the solver phase-output
        # digests must diverge at the SpMV phase and the solver golden
        # check must fail on the same workload.
        note("stage solver-torn-gather")
        honest_digests = solver_phase_digests(sprobe)
        torn = SolverWorkload(sapp.pattern, honest_workload.amatr,
                              sapp.vector_size, opt=sapp.opt,
                              flags=sapp.flags, pipeline=sapp.pipeline)
        slot, row, old_col, new_col = inject_torn_spmv_gather(
            torn.context.ellval, torn.context.ellcol,
            torn.context.sizes.nrow, seed)
        torn_digests = solver_phase_digests(sprobe, workload=torn)
        diverged = sorted(p for p in honest_digests
                          if torn_digests.get(p) != honest_digests[p])
        pinned = diverged == [SPMV_PHASE]
        g_torn = solver_golden_check(sprobe, workload=torn)
        target = f"ellcol[{slot},{row}] {old_col}->{new_col}"
        report.stages.append(StageReport(
            name="solver-torn-gather", kind="torn_spmv_gather",
            target=target,
            classification=(DETECTED if (pinned and not g_torn.ok)
                            else SILENT),
            evidence=[
                f"digests diverged at phase(s) {diverged}, pinned to "
                f"SpMV alone: {pinned}",
                f"solver golden check: {len(g_torn.violations)} "
                f"violation(s)"
                + (f", first: {g_torn.violations[0]}"
                   if g_torn.violations else ""),
                "FLOP/VL-conserving fault: counter invariants blind by "
                "construction, digest ladder is the detector",
            ]))
        solver_specs.append(FaultSpec(kind="torn_spmv_gather",
                                      target_key=target))

        # -- service drills: the supervised sweep service under fire ------
        if service_faults:
            from repro.service.chaos import append_service_stages

            append_service_stages(report, seed=seed, mesh=mesh,
                                  scratch=scratch / "service",
                                  verbose=verbose)
    finally:
        shutil.rmtree(scratch, ignore_errors=True)

    if out_dir is not None:
        out = Path(out_dir)
        out.mkdir(parents=True, exist_ok=True)
        (out / "chaos-report.json").write_text(report.to_json())
        (out / "chaos-summary.md").write_text(report.to_markdown())
        plan_dict = fplan.to_dict()
        if pplan is not None:
            plan_dict["pass_specs"] = [s.to_dict() for s in pplan.specs]
        if solver_specs:
            plan_dict["solver_specs"] = [s.to_dict() for s in solver_specs]
        (out / "fault-plan.json").write_text(
            json.dumps(plan_dict, indent=2, sort_keys=True) + "\n")
    return report
