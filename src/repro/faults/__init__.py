"""Seeded fault injection + chaos campaigns for the reproduction stack.

The robustness counterpart of :mod:`repro.validation`: where validation
*checks* results, this package deliberately *breaks* the stack —
poisoned emulator lanes, drifted cache accounting, crashing / hanging /
lying sweep workers, torn cache files, interrupted sweeps — and
:func:`run_chaos_campaign` proves every injected fault is either
recovered transparently or loudly detected, never silently absorbed
into an artifact.  Everything is derived from one integer seed, so a
failing campaign replays exactly (see ``repro chaos --seed N``).
"""

from repro.faults.plan import (
    PASS_FAULT_KINDS,
    PASS_FAULT_RUNGS,
    WORKER_FAULT_KINDS,
    FaultPlan,
    FaultSpec,
)
from repro.faults.injector import (
    FaultyWorker,
    InterruptingWorker,
    PassFaultyWorker,
    flip_float64_bit,
    inject_cache_miss_drift,
    inject_vreg_nan,
    mislegalize_fission,
    mislegalize_interchange,
    mislegalize_trip_count,
    pass_fault_mutator,
)
from repro.faults.chaos import ChaosReport, StageReport, run_chaos_campaign

__all__ = [
    "ChaosReport",
    "FaultPlan",
    "FaultSpec",
    "FaultyWorker",
    "InterruptingWorker",
    "PASS_FAULT_KINDS",
    "PASS_FAULT_RUNGS",
    "PassFaultyWorker",
    "StageReport",
    "WORKER_FAULT_KINDS",
    "flip_float64_bit",
    "inject_cache_miss_drift",
    "inject_vreg_nan",
    "mislegalize_fission",
    "mislegalize_interchange",
    "mislegalize_trip_count",
    "pass_fault_mutator",
    "run_chaos_campaign",
]
