"""Seeded fault plans: *what* to break, *where*, reproducibly.

A chaos campaign is only useful if a failure it surfaces can be replayed
bit-for-bit, so every fault the harness injects is described by a
:class:`FaultSpec` and the set of specs for a campaign is derived from a
single integer seed via :meth:`FaultPlan.generate`.  The same seed over
the same plan yields the same faults, the same strike points, and — with
the executor's deterministic backoff jitter — the same recovery
schedule.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Sequence

#: fault kinds understood by :class:`repro.faults.injector.FaultyWorker`.
WORKER_FAULT_KINDS: tuple[str, ...] = (
    "crash",             # worker raises mid-run
    "kill",              # worker process dies hard (os._exit -> broken pool)
    "hang",              # worker stalls past the sweep's timeout_s
    "nan_counter",       # payload counter poisoned with NaN
    "negative_counter",  # payload counter sign-flipped
    "flop_drift",        # payload FLOPs silently scaled (ladder-only bug)
    "torn_cache",        # a .repro_cache entry truncated mid-sweep
)

#: pass-layer fault kinds ("mis-legalized vectorization"): each models a
#: transformation-pass bug — the pass applies despite a blocker its
#: legality analysis should have caught — injected either through
#: ``golden_check(mutate=...)`` (the drill) or through a
#: :class:`repro.faults.injector.PassFaultyWorker` sweep (the campaign).
#: Every kind listed here must have an injector in
#: :data:`repro.faults.injector.PASS_FAULT_MUTATORS`; resolving a
#: stubbed kind raises instead of being skipped.
PASS_FAULT_KINDS: tuple[str, ...] = (
    "mislegalized_trip_count",   # promoted loop bound off by one
    "mislegalized_interchange",  # interchange despite the T2 guard blocker
    "mislegalized_fission",      # fission across the T4 order dependence
)

#: the optimization rung whose pipeline each pass-fault kind tampers
#: with: the rung where the mis-legalized pass is the *newest* member,
#: so the fault models that rung's own transformation going wrong.
PASS_FAULT_RUNGS: dict[str, str] = {
    "mislegalized_trip_count": "vec2",
    "mislegalized_interchange": "ivec2",
    "mislegalized_fission": "vec1",
}

#: solver-path fault kinds: each models the Krylov half of the timed
#: cycle (phases 9-12) going wrong in a way per-run counter invariants
#: cannot see.  ``nonconverging_krylov`` zeroes a seeded row of the
#: shifted operator (a singular, inconsistent system — the solver must
#: stall and *report* it, with breakdown guards keeping the residual
#: history finite); ``torn_spmv_gather`` re-points one seeded populated
#: slot of the ELL gather table at the wrong column (FLOP-conserving,
#: so only the solver phase-output digests can pin it).  Every kind
#: listed here must have an injector in
#: :data:`repro.faults.injector.SOLVER_FAULT_INJECTORS`; resolving a
#: stubbed kind raises instead of being skipped.
SOLVER_FAULT_KINDS: tuple[str, ...] = (
    "nonconverging_krylov",
    "torn_spmv_gather",
)


@dataclass(frozen=True)
class FaultSpec:
    """One planned fault.

    ``kind``
        one of :data:`WORKER_FAULT_KINDS` (worker faults) or a drill
        name used by the chaos campaign (``golden_nan`` etc.).
    ``target_key``
        the :meth:`RunConfig.key` the fault strikes on (empty string:
        the first run the worker sees).
    ``victim_key``
        for ``torn_cache``: the *other* config whose cache entry is
        truncated when the fault strikes.
    """

    kind: str
    target_key: str = ""
    victim_key: str = ""

    def to_dict(self) -> dict:
        return {"kind": self.kind, "target_key": self.target_key,
                "victim_key": self.victim_key}


@dataclass(frozen=True)
class FaultPlan:
    """A seeded set of faults for one chaos campaign."""

    seed: int
    specs: tuple[FaultSpec, ...] = ()

    @classmethod
    def generate(cls, seed: int, keys: Sequence[str],
                 kinds: Sequence[str] = WORKER_FAULT_KINDS) -> "FaultPlan":
        """Pick one deterministic strike target per fault kind.

        Targets are drawn with :class:`random.Random(seed)` so the plan
        is a pure function of ``(seed, keys, kinds)``.  ``torn_cache``
        always strikes on the *last* key (so earlier entries exist on
        disk to tear) and tears a seeded victim among the others.
        """
        rng = random.Random(seed)
        keys = list(keys)
        if not keys:
            raise ValueError("cannot generate a fault plan for an empty sweep")
        specs: list[FaultSpec] = []
        for kind in kinds:
            if kind == "torn_cache":
                victim = rng.choice(keys[:-1]) if len(keys) > 1 else keys[0]
                specs.append(FaultSpec(kind=kind, target_key=keys[-1],
                                       victim_key=victim))
            else:
                specs.append(FaultSpec(kind=kind, target_key=rng.choice(keys)))
        return cls(seed=seed, specs=tuple(specs))

    @classmethod
    def generate_pass_faults(cls, seed: int, configs) -> "FaultPlan":
        """One deterministic strike target per pass-fault kind.

        Each kind strikes a seeded config of its rung (see
        :data:`PASS_FAULT_RUNGS`): the fault models *that rung's* newest
        transformation mis-legalizing, so the target must actually run
        the tampered pass.  Pure function of ``(seed, configs)``.
        """
        rng = random.Random(seed)
        configs = list(configs)
        if not configs:
            raise ValueError("cannot generate a fault plan for an empty sweep")
        specs: list[FaultSpec] = []
        for kind in PASS_FAULT_KINDS:
            rung = PASS_FAULT_RUNGS[kind]
            candidates = [cfg.key() for cfg in configs if cfg.opt == rung]
            if not candidates:
                raise ValueError(
                    f"pass fault {kind!r} targets rung {rung!r} but the "
                    f"sweep has no such config")
            specs.append(FaultSpec(kind=kind, target_key=rng.choice(candidates)))
        return cls(seed=seed, specs=tuple(specs))

    def spec_for(self, kind: str) -> FaultSpec:
        for spec in self.specs:
            if spec.kind == kind:
                return spec
        raise KeyError(f"fault plan has no {kind!r} spec")

    def to_dict(self) -> dict:
        return {"seed": self.seed,
                "specs": [s.to_dict() for s in self.specs]}
