"""Fault injectors: low-level corruption primitives + faulty workers.

Two layers live here:

* **primitives** that corrupt in-memory state directly —
  :func:`flip_float64_bit`, :func:`inject_vreg_nan`,
  :func:`inject_cache_miss_drift` — used by the chaos drills to prove
  :meth:`VectorEmulator.validate_state` and the cache invariants catch
  poisoned lanes and impossible accounting;
* **workers** — :class:`FaultyWorker`, :class:`InterruptingWorker` —
  drop-in replacements for ``simulate_to_dict`` handed to
  ``execute_plan(worker=...)``.  ``FaultyWorker`` is picklable (it must
  cross a ``ProcessPoolExecutor`` boundary) and strikes **once** per
  spec: strike claims go through an ``O_CREAT | O_EXCL`` marker file so
  exactly one process wins even when the sweep fans out, and every retry
  after the strike computes honestly — which is precisely what lets the
  chaos harness distinguish *recovered* from *silently absorbed*.
"""

from __future__ import annotations

import os
import time
from pathlib import Path
from typing import Optional

import numpy as np

from repro.experiments.config import RunConfig
from repro.experiments.executor import cache_path, simulate_to_dict
from repro.faults.plan import FaultPlan, FaultSpec

#: exit status used by the ``kill`` fault (mirrors a SIGKILLed worker
#: from the pool's point of view: the process vanishes without a result).
KILL_EXIT_STATUS = 13


# ---------------------------------------------------------------------------
# Corruption primitives
# ---------------------------------------------------------------------------


def flip_float64_bit(arr: np.ndarray, index: int, bit: int) -> None:
    """Flip one bit of one float64 element in place.

    ``bit`` 62 (top exponent bit) turns a normal value into a huge or
    tiny one; flipping exponent bits 52..62 all at once yields NaN/Inf.
    This is the classic single-event-upset model for memory faults.
    """
    if not 0 <= bit < 64:
        raise ValueError(f"bit must be in [0, 64), got {bit}")
    flat = arr.reshape(-1).view(np.uint64)
    flat[index] ^= np.uint64(1) << np.uint64(bit)


def inject_vreg_nan(emu, reg: int, lane: int) -> None:
    """NaN-poison one lane of one vector register of a
    :class:`~repro.isa.emulator.VectorEmulator`."""
    emu.vregs[reg, lane] = np.nan


def inject_cache_miss_drift(cache, delta: int) -> None:
    """Perturb a cache level's miss count by ``delta`` (models broken
    accounting: e.g. ``+accesses`` makes misses exceed accesses)."""
    cache.misses += delta


def mislegalize_trip_count(kernels: list, delta: int = -1) -> list:
    """Tamper with pass-promoted trip counts (a mis-legalized
    transformation).

    Models a :class:`~repro.compiler.transforms.ConstantTripCount` bug:
    the promoted compile-time bound is off by ``delta``, so every loop
    the pass legalized runs the wrong number of iterations (``-1``:
    the last chunk element is never gathered).  Handed to
    ``golden_check(mutate=...)``, which must *detect* the semantic
    change and pin it to the first phase that consumes the bound.
    """
    from dataclasses import replace

    from repro.compiler.ir import Extent
    from repro.compiler.transforms.base import rewrite_loops
    from repro.compiler.transforms.passes import PROMOTED_NAME

    def tamper(loop):
        if loop.extent.kind == "param" and loop.extent.name == PROMOTED_NAME:
            ext = Extent(max(loop.extent.value + delta, 1), "param",
                         PROMOTED_NAME)
            return (replace(loop, extent=ext,
                            body=rewrite_loops(loop.body, tamper)),)
        return None

    return [replace(k, body=rewrite_loops(k.body, tamper)) for k in kernels]


# ---------------------------------------------------------------------------
# Faulty sweep workers
# ---------------------------------------------------------------------------


class FaultyWorker:
    """A ``simulate_to_dict`` wrapper that injects the faults of a
    :class:`FaultPlan` — each exactly once.

    Parameters
    ----------
    plan:
        the seeded fault plan; only specs whose ``kind`` is in *kinds*
        are armed (arming one kind per sweep keeps stages attributable).
    marker_dir:
        directory for the strike-once marker files; share it across the
        retries of one sweep, refresh it between sweeps.
    cache_dir:
        the sweep's cache directory (needed by ``torn_cache``).
    parent_pid:
        pid of the orchestrating process; the ``kill`` fault refuses to
        ``os._exit`` there and degrades to a crash so a serial sweep is
        never taken down.
    hang_s:
        stall duration for the ``hang`` fault (set it above the sweep's
        ``timeout_s``).
    """

    def __init__(self, plan: FaultPlan, marker_dir: str | os.PathLike,
                 kinds: Optional[tuple[str, ...]] = None,
                 cache_dir: str | os.PathLike = "",
                 parent_pid: Optional[int] = None,
                 hang_s: float = 4.0):
        armed = plan.specs if kinds is None else tuple(
            s for s in plan.specs if s.kind in kinds)
        self.specs = armed
        self.marker_dir = str(marker_dir)
        self.cache_dir = str(cache_dir)
        self.parent_pid = os.getpid() if parent_pid is None else parent_pid
        self.hang_s = hang_s

    def _claim(self, spec: FaultSpec) -> bool:
        """Atomically claim one strike; loser processes pass through."""
        Path(self.marker_dir).mkdir(parents=True, exist_ok=True)
        marker = Path(self.marker_dir) / f"{spec.kind}.struck"
        try:
            os.close(os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY))
            return True
        except FileExistsError:
            return False

    def _tear_cache_entry(self, victim_key: str) -> None:
        """Truncate the victim's cache entry to half its bytes, in place
        under its *final* name — the torn write the durable cache path
        is designed to make impossible, forced from outside."""
        for path in Path(self.cache_dir).glob(f"*-{victim_key}.json"):
            data = path.read_bytes()
            path.write_bytes(data[: max(1, len(data) // 2)])

    def __call__(self, cfg: RunConfig) -> dict:
        key = cfg.key()
        for spec in self.specs:
            if spec.target_key and spec.target_key != key:
                continue
            if not self._claim(spec):
                continue
            if spec.kind == "crash":
                raise RuntimeError(f"injected fault: worker crash on {key}")
            if spec.kind == "kill":
                if os.getpid() != self.parent_pid:
                    os._exit(KILL_EXIT_STATUS)
                raise RuntimeError(
                    f"injected fault: worker kill on {key} (in-process)")
            if spec.kind == "hang":
                time.sleep(self.hang_s)
                continue  # then compute honestly: only the stall is the fault
            payload = simulate_to_dict(cfg)
            if spec.kind == "nan_counter":
                payload["1"]["cycles_total"] = float("nan")
            elif spec.kind == "negative_counter":
                payload["1"]["cycles_total"] = -abs(
                    payload["1"]["cycles_total"]) - 1.0
            elif spec.kind == "flop_drift":
                for phase in payload.values():
                    phase["flops"] = phase["flops"] * 1.01
            elif spec.kind == "torn_cache":
                self._tear_cache_entry(spec.victim_key)
            else:
                raise ValueError(f"unknown fault kind {spec.kind!r}")
            return payload
        return simulate_to_dict(cfg)


class InterruptingWorker:
    """Completes ``stop_after`` runs, then raises ``KeyboardInterrupt`` —
    the journal-resume drill's stand-in for Ctrl-C / SIGINT mid-sweep.
    Serial-only (``jobs=1``): the interrupt must hit the orchestrator."""

    def __init__(self, stop_after: int):
        self.stop_after = stop_after
        self.calls = 0

    def __call__(self, cfg: RunConfig) -> dict:
        if self.calls >= self.stop_after:
            raise KeyboardInterrupt("injected fault: sweep interrupted")
        self.calls += 1
        return simulate_to_dict(cfg)
