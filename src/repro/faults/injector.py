"""Fault injectors: low-level corruption primitives + faulty workers.

Two layers live here:

* **primitives** that corrupt in-memory state directly —
  :func:`flip_float64_bit`, :func:`inject_vreg_nan`,
  :func:`inject_cache_miss_drift` — used by the chaos drills to prove
  :meth:`VectorEmulator.validate_state` and the cache invariants catch
  poisoned lanes and impossible accounting;
* **workers** — :class:`FaultyWorker`, :class:`InterruptingWorker` —
  drop-in replacements for ``simulate_to_dict`` handed to
  ``execute_plan(worker=...)``.  ``FaultyWorker`` is picklable (it must
  cross a ``ProcessPoolExecutor`` boundary) and strikes **once** per
  spec: strike claims go through an ``O_CREAT | O_EXCL`` marker file so
  exactly one process wins even when the sweep fans out, and every retry
  after the strike computes honestly — which is precisely what lets the
  chaos harness distinguish *recovered* from *silently absorbed*.
"""

from __future__ import annotations

import os
import random
import time
from dataclasses import replace
from pathlib import Path
from typing import Callable, Optional

import numpy as np

from repro.experiments.config import RunConfig
from repro.experiments.executor import simulate_to_dict
from repro.faults.plan import FaultPlan, FaultSpec

#: exit status used by the ``kill`` fault (mirrors a SIGKILLed worker
#: from the pool's point of view: the process vanishes without a result).
KILL_EXIT_STATUS = 13


# ---------------------------------------------------------------------------
# Corruption primitives
# ---------------------------------------------------------------------------


def flip_float64_bit(arr: np.ndarray, index: int, bit: int) -> None:
    """Flip one bit of one float64 element in place.

    ``bit`` 62 (top exponent bit) turns a normal value into a huge or
    tiny one; flipping exponent bits 52..62 all at once yields NaN/Inf.
    This is the classic single-event-upset model for memory faults.
    """
    if not 0 <= bit < 64:
        raise ValueError(f"bit must be in [0, 64), got {bit}")
    flat = arr.reshape(-1).view(np.uint64)
    flat[index] ^= np.uint64(1) << np.uint64(bit)


def inject_vreg_nan(emu, reg: int, lane: int) -> None:
    """NaN-poison one lane of one vector register of a
    :class:`~repro.isa.emulator.VectorEmulator`."""
    emu.vregs[reg, lane] = np.nan


def inject_cache_miss_drift(cache, delta: int) -> None:
    """Perturb a cache level's miss count by ``delta`` (models broken
    accounting: e.g. ``+accesses`` makes misses exceed accesses)."""
    cache.misses += delta


def claim_strike(marker_dir: str | os.PathLike, kind: str) -> bool:
    """Atomically claim one strike of fault *kind*; exactly one caller
    wins per marker directory (``O_CREAT | O_EXCL``), even when workers
    fan out across processes.  Losers pass through and compute honestly."""
    Path(marker_dir).mkdir(parents=True, exist_ok=True)
    marker = Path(marker_dir) / f"{kind}.struck"
    try:
        os.close(os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY))
        return True
    except FileExistsError:
        return False


def mislegalize_trip_count(kernels: list, delta: int = -1) -> list:
    """Tamper with pass-promoted trip counts (a mis-legalized
    transformation).

    Models a :class:`~repro.compiler.transforms.ConstantTripCount` bug:
    the promoted compile-time bound is off by ``delta``, so every loop
    the pass legalized runs the wrong number of iterations (``-1``:
    the last chunk element is never gathered).  Handed to
    ``golden_check(mutate=...)``, which must *detect* the semantic
    change and pin it to the first phase that consumes the bound.
    """
    from repro.compiler.ir import Extent
    from repro.compiler.transforms.base import rewrite_loops
    from repro.compiler.transforms.passes import PROMOTED_NAME

    def tamper(loop):
        if loop.extent.kind == "param" and loop.extent.name == PROMOTED_NAME:
            ext = Extent(max(loop.extent.value + delta, 1), "param",
                         PROMOTED_NAME)
            return (replace(loop, extent=ext,
                            body=rewrite_loops(loop.body, tamper)),)
        return None

    return [replace(k, body=rewrite_loops(k.body, tamper)) for k in kernels]


def mislegalize_interchange(kernels: list) -> list:
    """Apply :class:`~repro.compiler.transforms.LoopInterchange` with its
    legality precondition disabled (a mis-legalized transformation).

    Models an interchange pass whose legality analysis is broken: the
    T2 control-flow blocker is ignored, so kernels that mix the vec-var
    loop with data-dependent guards (the phase-8 valid-element check)
    are interchanged anyway.  Sinking the vec loop below a guard hoists
    the guard out of the per-element context; the buggy compiler
    "proves" it loop-invariant and evaluates it once, for lane 0 — so a
    chunk whose first element is valid scatters *every* lane, padding
    included.  Handed to ``golden_check(mutate=...)`` on the ``ivec2``
    rung this deviates far above tolerance in phase 8 (padding lanes
    double-count the replicated last element's contributions).
    """
    from repro.compiler.ir import If, Loop
    from repro.compiler.transforms.base import pin_var_in_cond
    from repro.compiler.transforms.passes import LoopInterchange

    class _UncheckedInterchange(LoopInterchange):
        """Interchange without legality: the fault, not a real pass."""

        def _legality(self, target):
            return []  # the bug under injection: every blocker ignored

        def _sink(self, var, extent, body):
            if not any(isinstance(s, (Loop, If)) for s in body):
                return (Loop(var, extent, body),)
            out = []
            for s in body:
                if isinstance(s, Loop):
                    out.append(s.with_body(self._sink(var, extent, s.body)))
                elif isinstance(s, If):
                    # the guard is hoisted and frozen to lane 0 — the
                    # exact hazard the T2 blocker exists to prevent.
                    out.append(If(pin_var_in_cond(s.cond, var),
                                  self._sink(var, extent, s.body),
                                  est_taken=s.est_taken))
                else:
                    out.append(Loop(var, extent, (s,)))
            return tuple(out)

    p = _UncheckedInterchange()
    return [p.run(k)[0] for k in kernels]


def mislegalize_fission(kernels: list) -> list:
    """Apply a :class:`~repro.compiler.transforms.LoopFission` that splits
    across a loop-carried-order dependence (a mis-legalized
    transformation).

    The legal pass splits *after* the last guard, so the guarded fixup
    (``WORK A``) still runs before the straight-line tail; this buggy
    version splits at the *first* guard and emits the guarded half
    **before** the gather half — reordering dependent accesses, which is
    precisely what the T4-fission-dependence blocker forbids.  On the
    mini-app the padding-lane fixup (``elvisc = 1.0``) now runs before
    the property gather overwrites it, so ``golden_check(mutate=...)``
    deviates in phase 1 on every rung.
    """
    from repro.compiler.ir import If
    from repro.compiler.transforms.base import rewrite_loops

    struck: list = []

    def split(loop):
        if loop.var != "ivect" or struck:
            return None
        first_if = next((i for i, s in enumerate(loop.body)
                         if isinstance(s, If)), None)
        if first_if is None or first_if == 0:
            return None
        struck.append(loop.var)
        head, tail = loop.body[:first_if], loop.body[first_if:]
        return (replace(loop, body=tail), replace(loop, body=head))

    return [replace(k, body=rewrite_loops(k.body, split)) for k in kernels]


#: every implemented pass-fault kind -> its kernel mutator.  The chaos
#: campaign and the ``repro chaos --validate`` drill iterate
#: ``PASS_FAULT_KINDS`` and resolve each kind here, so a kind listed in
#: the vocabulary but missing an injector fails loudly instead of being
#: skipped.
PASS_FAULT_MUTATORS: dict[str, Callable[[list], list]] = {
    "mislegalized_trip_count": mislegalize_trip_count,
    "mislegalized_interchange": mislegalize_interchange,
    "mislegalized_fission": mislegalize_fission,
}


def pass_fault_mutator(kind: str) -> Callable[[list], list]:
    """The kernel mutator implementing one pass-fault kind; raises
    ``NotImplementedError`` for a listed-but-unimplemented kind."""
    try:
        return PASS_FAULT_MUTATORS[kind]
    except KeyError:
        raise NotImplementedError(
            f"pass fault kind {kind!r} has no injector; implemented: "
            f"{sorted(PASS_FAULT_MUTATORS)}") from None


# ---------------------------------------------------------------------------
# Solver-path fault injectors
# ---------------------------------------------------------------------------


def inject_nonconverging_krylov(pattern, amatr: np.ndarray,
                                seed: int) -> tuple[np.ndarray, int]:
    """Zero one seeded row of the (shifted) operator.

    The result is a singular — and, against a generic RHS, inconsistent
    — system: no Krylov method can drive the residual below the floor,
    so an honest solver must stall to ``maxiter`` (or break down) and
    **say so** via ``converged=False``, with the Jacobi zero-diagonal
    guard and the breakdown guards keeping every history entry finite.
    Returns ``(tampered_copy, victim_row)``; pure function of ``seed``.
    """
    rng = random.Random(seed)
    row = rng.randrange(pattern.n)
    bad = np.array(amatr, dtype=np.float64, copy=True)
    bad[pattern.row_of_entry() == row] = 0.0
    return bad, row


def inject_torn_spmv_gather(ellval: np.ndarray, ellcol: np.ndarray,
                            nrow: int, seed: int) -> tuple[int, int, int, int]:
    """Re-point one seeded *populated* slot of the ELL gather table at
    the wrong column, in place (a torn index load in the SpMV gather).

    Only slots with a nonzero coefficient are candidates — tearing a
    zero-padding slot would multiply the mis-gathered value by 0.0 and
    change nothing.  The fault conserves FLOPs and vector lengths by
    construction (same loop trip counts, same arithmetic, wrong
    address), so counter invariants are blind to it; detection rests on
    the solver phase-output digests diverging at the SpMV phase.
    Returns ``(slot, row, old_col, new_col)``; pure function of
    ``(ellval pattern, seed)``.
    """
    rng = random.Random(seed)
    slots, rows = np.nonzero(ellval[:, :nrow])
    if len(slots) == 0:
        raise ValueError("cannot tear an all-zero gather table")
    pick = rng.randrange(len(slots))
    slot, row = int(slots[pick]), int(rows[pick])
    old = int(ellcol[slot, row])
    new = (old + 1 + rng.randrange(max(nrow - 1, 1))) % max(nrow, 2)
    ellcol[slot, row] = new
    return slot, row, old, new


#: every implemented solver-fault kind -> its injector (the solver twin
#: of :data:`PASS_FAULT_MUTATORS`): the chaos campaign iterates
#: :data:`repro.faults.plan.SOLVER_FAULT_KINDS` and resolves each kind
#: here, so a kind in the vocabulary without an injector fails loudly.
SOLVER_FAULT_INJECTORS: dict[str, Callable] = {
    "nonconverging_krylov": inject_nonconverging_krylov,
    "torn_spmv_gather": inject_torn_spmv_gather,
}


def solver_fault_injector(kind: str) -> Callable:
    """The injector implementing one solver-fault kind; raises
    ``NotImplementedError`` for a listed-but-unimplemented kind."""
    try:
        return SOLVER_FAULT_INJECTORS[kind]
    except KeyError:
        raise NotImplementedError(
            f"solver fault kind {kind!r} has no injector; implemented: "
            f"{sorted(SOLVER_FAULT_INJECTORS)}") from None


# ---------------------------------------------------------------------------
# Faulty sweep workers
# ---------------------------------------------------------------------------


class FaultyWorker:
    """A ``simulate_to_dict`` wrapper that injects the faults of a
    :class:`FaultPlan` — each exactly once.

    Parameters
    ----------
    plan:
        the seeded fault plan; only specs whose ``kind`` is in *kinds*
        are armed (arming one kind per sweep keeps stages attributable).
    marker_dir:
        directory for the strike-once marker files; share it across the
        retries of one sweep, refresh it between sweeps.
    cache_dir:
        the sweep's cache directory (needed by ``torn_cache``).
    parent_pid:
        pid of the orchestrating process; the ``kill`` fault refuses to
        ``os._exit`` there and degrades to a crash so a serial sweep is
        never taken down.
    hang_s:
        stall duration for the ``hang`` fault (set it above the sweep's
        ``timeout_s``).
    """

    def __init__(self, plan: FaultPlan, marker_dir: str | os.PathLike,
                 kinds: Optional[tuple[str, ...]] = None,
                 cache_dir: str | os.PathLike = "",
                 parent_pid: Optional[int] = None,
                 hang_s: float = 4.0):
        armed = plan.specs if kinds is None else tuple(
            s for s in plan.specs if s.kind in kinds)
        self.specs = armed
        self.marker_dir = str(marker_dir)
        self.cache_dir = str(cache_dir)
        self.parent_pid = os.getpid() if parent_pid is None else parent_pid
        self.hang_s = hang_s

    def _claim(self, spec: FaultSpec) -> bool:
        """Atomically claim one strike; loser processes pass through."""
        return claim_strike(self.marker_dir, spec.kind)

    def _tear_cache_entry(self, victim_key: str) -> None:
        """Truncate the victim's cache entry to half its bytes, in place
        under its *final* name — the torn write the durable cache path
        is designed to make impossible, forced from outside."""
        for path in Path(self.cache_dir).glob(f"*-{victim_key}.json"):
            data = path.read_bytes()
            path.write_bytes(data[: max(1, len(data) // 2)])

    def __call__(self, cfg: RunConfig) -> dict:
        key = cfg.key()
        for spec in self.specs:
            if spec.target_key and spec.target_key != key:
                continue
            if not self._claim(spec):
                continue
            if spec.kind == "crash":
                raise RuntimeError(f"injected fault: worker crash on {key}")
            if spec.kind == "kill":
                if os.getpid() != self.parent_pid:
                    os._exit(KILL_EXIT_STATUS)
                raise RuntimeError(
                    f"injected fault: worker kill on {key} (in-process)")
            if spec.kind == "hang":
                time.sleep(self.hang_s)
                continue  # then compute honestly: only the stall is the fault
            payload = simulate_to_dict(cfg)
            if spec.kind == "nan_counter":
                payload["1"]["cycles_total"] = float("nan")
            elif spec.kind == "negative_counter":
                payload["1"]["cycles_total"] = -abs(
                    payload["1"]["cycles_total"]) - 1.0
            elif spec.kind == "flop_drift":
                for phase in payload.values():
                    phase["flops"] = phase["flops"] * 1.01
            elif spec.kind == "torn_cache":
                self._tear_cache_entry(spec.victim_key)
            else:
                raise ValueError(f"unknown fault kind {spec.kind!r}")
            return payload
        return simulate_to_dict(cfg)


class PassFaultyWorker:
    """A sweep worker whose *compiler* lies: the target config is
    simulated from kernels tampered by one mis-legalized pass.

    Where :class:`FaultyWorker` corrupts payloads after an honest
    simulation, this worker re-enacts a compiler bug end to end: on the
    (strike-once) target it takes the honestly transformed kernels,
    applies the pass-fault mutator for *kind* (see
    :data:`PASS_FAULT_MUTATORS`), re-vectorizes and re-lowers the
    tampered IR, and reports the counters of that wrong-but-plausible
    program.  Every call also writes the config's per-phase golden
    output digests (:func:`repro.validation.digests.phase_output_digests`)
    — computed from the *same* kernels the payload came from — to
    ``digest_dir/<key>.json``, giving the campaign the cross-rung
    evidence trail the counter invariants cannot provide (these faults
    conserve FLOPs by construction).

    Picklable: plain-data attributes only, all imports deferred to call
    time, so it crosses a ``ProcessPoolExecutor`` boundary like the
    other workers.
    """

    def __init__(self, kind: str, target_key: str,
                 marker_dir: str | os.PathLike,
                 digest_dir: str | os.PathLike,
                 field_seed: int = 0,
                 backend: str = "numpy"):
        if kind not in PASS_FAULT_MUTATORS:
            pass_fault_mutator(kind)  # raises NotImplementedError loudly
        self.kind = kind
        self.target_key = target_key
        self.marker_dir = str(marker_dir)
        self.digest_dir = str(digest_dir)
        self.field_seed = field_seed
        self.backend = backend

    def _simulate(self, cfg: RunConfig, mutate) -> tuple[dict, dict]:
        """Counters + probe digests for *cfg*, from mutated kernels."""
        import json

        from repro.experiments.executor import build_miniapp
        from repro.machine.cpu import Machine
        from repro.machine.machines import get_machine
        from repro.metrics.counters import counters_to_dict
        from repro.validation.digests import phase_output_digests
        from repro.validation.probe import Probe

        probe = Probe(opt=cfg.opt, field_seed=self.field_seed,
                      backend=self.backend)
        if mutate is None:
            payload = simulate_to_dict(cfg)
            digests = phase_output_digests(probe)
        else:
            from repro.compiler.program import compile_kernels

            app = build_miniapp(cfg)
            result = compile_kernels(mutate(list(app.kernels)), app.flags)
            params = get_machine(cfg.machine)
            machine = Machine(params, cache_enabled=cfg.cache_enabled)
            app.kernels = result.kernels
            app.compiled = result.compiled
            payload = counters_to_dict(app.run_timed(params, machine=machine))
            digests = phase_output_digests(probe, mutate=mutate)
        out = Path(self.digest_dir)
        out.mkdir(parents=True, exist_ok=True)
        (out / f"{cfg.key()}.json").write_text(json.dumps(
            {"key": cfg.key(), "opt": cfg.opt,
             "phase_digests": {str(p): d for p, d in sorted(digests.items())}},
            sort_keys=True) + "\n")
        return payload, digests

    def __call__(self, cfg: RunConfig) -> dict:
        mutate = None
        if cfg.key() == self.target_key and claim_strike(self.marker_dir,
                                                         self.kind):
            mutate = pass_fault_mutator(self.kind)
        payload, _ = self._simulate(cfg, mutate)
        return payload


class DelayedWorker:
    """An honest ``simulate_to_dict`` with a fixed per-run stall.

    The service kill drill needs a window in which SIGKILL reliably
    lands *mid-sweep*; stretching every run by ``delay_s`` provides it
    without touching results.  Picklable (plain data only) so it crosses
    the pool boundary; also the implementation behind the ``repro serve
    --worker-delay`` chaos hook.
    """

    def __init__(self, delay_s: float):
        self.delay_s = float(delay_s)

    def __call__(self, cfg: RunConfig) -> dict:
        if self.delay_s > 0:
            time.sleep(self.delay_s)
        return simulate_to_dict(cfg)


class AlwaysCrashWorker:
    """Crashes on every call — the worker-failure storm that must trip
    the service's circuit breaker.  Picklable."""

    def __call__(self, cfg: RunConfig) -> dict:
        raise RuntimeError(
            f"injected fault: worker failure storm on {cfg.key()}")


class InterruptingWorker:
    """Completes ``stop_after`` runs, then raises ``KeyboardInterrupt`` —
    the journal-resume drill's stand-in for Ctrl-C / SIGINT mid-sweep.
    Serial-only (``jobs=1``): the interrupt must hit the orchestrator."""

    def __init__(self, stop_after: int):
        self.stop_after = stop_after
        self.calls = 0

    def __call__(self, cfg: RunConfig) -> dict:
        if self.calls >= self.stop_after:
            raise KeyboardInterrupt("injected fault: sweep interrupted")
        self.calls += 1
        return simulate_to_dict(cfg)
