"""repro -- reproduction of "Exploiting long vectors with a CFD code:
a co-design show case" (Blancafort et al., IPPS 2024).

The package simulates the paper's entire stack in Python:

* :mod:`repro.isa` -- the RVV-like vector instruction model;
* :mod:`repro.machine` -- cycle-accounting machine models (RISC-V VEC
  prototype, NEC SX-Aurora, Intel AVX-512) with line-accurate caches;
* :mod:`repro.compiler` -- a loop-nest IR and an auto-vectorizing
  compiler model with LLVM-like legality/cost behaviour and remarks;
* :mod:`repro.cfd` -- the Alya-like Navier-Stokes assembly mini-app
  (mesh, elements, the eight instrumented phases, CSR + Krylov solver);
* :mod:`repro.metrics` -- the paper's §2.2 metrics and Table-6
  regression;
* :mod:`repro.trace` -- Extrae/Vehave/Paraver-style tracing;
* :mod:`repro.experiments` -- the harness regenerating every table and
  figure of the evaluation.

Quickstart::

    from repro.cfd import MiniApp, box_mesh
    from repro.machine import RISCV_VEC

    app = MiniApp(box_mesh(8, 8, 15), vector_size=240, opt="vec1")
    counters = app.run_timed(RISCV_VEC)
    print(counters.total_cycles)
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
