"""repro -- reproduction of "Exploiting long vectors with a CFD code:
a co-design show case" (Blancafort et al., IPPS 2024).

The package simulates the paper's entire stack in Python:

* :mod:`repro.isa` -- the RVV-like vector instruction model;
* :mod:`repro.machine` -- cycle-accounting machine models (RISC-V VEC
  prototype, NEC SX-Aurora, Intel AVX-512) with line-accurate caches;
* :mod:`repro.compiler` -- a loop-nest IR and an auto-vectorizing
  compiler model with LLVM-like legality/cost behaviour and remarks;
* :mod:`repro.cfd` -- the Alya-like Navier-Stokes assembly mini-app
  (mesh, elements, the eight instrumented phases, CSR + Krylov solver);
* :mod:`repro.metrics` -- the paper's §2.2 metrics and Table-6
  regression;
* :mod:`repro.obs` -- the observability spine: one ambient tracer
  through every layer (machine phase spans on the cycle clock, emulator
  instruction streams, executor progress) plus its aggregate twin, the
  lock-safe :class:`~repro.obs.metrics.MetricsRegistry`, with Paraver /
  Chrome ``trace_event`` exporters, terminal renderers, the per-phase
  cycle regression gate behind ``repro bench --baseline``, per-tenant
  SLO verdicts over the sweep service (``repro top``, the ``metrics``
  wire verb), and cross-process trace correlation
  (``repro submit --trace`` / ``repro trace --job``);
* :mod:`repro.trace` -- Extrae/Vehave/Paraver-style trace files and
  analysis (the exporter side of :mod:`repro.obs`);
* :mod:`repro.experiments` -- the harness regenerating every table and
  figure of the evaluation;
* :mod:`repro.backends` -- pluggable kernel execution: the
  ``"interpreter"`` semantics oracle and the default ``"numpy"``
  whole-array lowering, byte-identical and ~10x faster (``get_backend``,
  ``BACKENDS``, every ``backend=`` keyword and ``--backend`` flag);
* :mod:`repro.validation` -- counter invariants + golden-reference
  cross-checks (``execute_plan(validate=True)``, ``--validate``),
  configured by the shared :class:`~repro.validation.Probe` spec;
* :mod:`repro.faults` -- seeded fault injection and the chaos campaign
  proving the stack detects or recovers from every injected fault
  (``repro chaos``).

Quickstart (the stable public API lives right here)::

    from repro import RunConfig, Session

    session = Session(mesh_dims=(8, 8, 15))
    counters = session.run(RunConfig(opt="vec1", vector_size=240,
                                     mesh_dims=(8, 8, 15)))
    print(counters.total_cycles)

or, one level lower::

    from repro import MiniApp, box_mesh, get_machine

    app = MiniApp(box_mesh(8, 8, 15), vector_size=240, opt="vec1")
    counters = app.run_timed(get_machine("riscv_vec"))
    print(counters.total_cycles)
"""

__version__ = "1.5.0"

from repro import obs
from repro.backends import BACKENDS, ExecutionBackend, get_backend
from repro.cfd.assembly import MiniApp
from repro.cfd.mesh import box_mesh
from repro.experiments.config import RunConfig
from repro.experiments.executor import ExecutionPlan, SweepError, execute_plan
from repro.experiments.runner import Session
from repro.machine.machines import get_machine
from repro.validation.probe import Probe

__all__ = [
    "BACKENDS",
    "ExecutionBackend",
    "ExecutionPlan",
    "MiniApp",
    "Probe",
    "RunConfig",
    "Session",
    "SweepError",
    "__version__",
    "box_mesh",
    "execute_plan",
    "get_machine",
    "get_backend",
    "obs",
]
