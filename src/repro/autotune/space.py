"""Candidate pass-schedule enumeration for the autotuner.

The search space is the cross product of the dependency-legal base
schedules (:func:`~repro.compiler.transforms.legal_schedules`, the
interchange x fission x const-trip-count vocabulary the backend
equivalence gate already sweeps) with the machine's strip-mine family:
for every base schedule, one variant per candidate strip size with
``strip-mine:S`` appended last.

Strip sizes come from the machine model, not from a hard-coded list:
multiples of the Vitruvius FSM group (``lanes * fsm_depth``, 40 elements
on the RISC-V prototype -- the paper's mod-40 VECTOR_SIZE discipline),
or of the lane count on machines without the FSM quirk, strictly below
the usable vector length (a strip the size of the full VL is the
identity).  The ``smoke`` profile keeps only the first (paper-canonical)
strip size so CI runs stay small.
"""

from __future__ import annotations

from repro.compiler.transforms import legal_schedules
from repro.machine.params import MachineParams

#: candidate-sweep profiles (mirrors ``repro bench --profile``).
PROFILES = ("smoke", "standard")


def strip_sizes(params: MachineParams, vector_size: int,
                profile: str = "standard") -> tuple[int, ...]:
    """Candidate strip sizes for one machine at one VECTOR_SIZE.

    Multiples of the FSM group (or lane count when ``fsm_depth`` is
    ``None``) strictly below ``min(vector_size, vl_max)``.  Machines
    without a vector unit have no strip family at all.
    """
    if profile not in PROFILES:
        raise ValueError(f"unknown profile {profile!r}; known: {PROFILES}")
    vpu = params.vpu
    if vpu is None:
        return ()
    usable = min(vector_size, vpu.vl_max)
    basis = vpu.fsm_group_elems or vpu.lanes
    sizes = tuple(range(basis, usable, basis))
    return sizes[:1] if profile == "smoke" else sizes


def enumerate_candidates(params: MachineParams, vector_size: int,
                         profile: str = "standard"
                         ) -> tuple[tuple[str, ...], ...]:
    """Every candidate schedule, deterministic order.

    Base schedules first (shortest first, then lexicographic -- the
    ``legal_schedules()`` order), then one strip-mined variant per base
    per strip size, grouped by strip size.  Every candidate constructs
    via ``pipeline_from_names``; whether it is *worth timing* is the
    cost model's call (:mod:`repro.autotune.costmodel`), not the
    enumerator's.
    """
    bases = legal_schedules()
    out: list[tuple[str, ...]] = list(bases)
    for size in strip_sizes(params, vector_size, profile):
        spelling = f"strip-mine:{size}"
        out.extend(base + (spelling,) for base in bases)
    return tuple(out)


def schedule_label(schedule: tuple[str, ...]) -> str:
    """Human-readable candidate name (``baseline`` for the empty one)."""
    return "+".join(schedule) if schedule else "baseline"
