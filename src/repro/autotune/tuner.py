"""The pass-schedule autotuner: enumerate, prune, validate, time, pick.

``run_autotune`` turns the paper's three hand-chosen transformations
into a *discovered* result:

1. **enumerate** candidate schedules from the machine model
   (:mod:`repro.autotune.space`);
2. **prune** with the static cost model
   (:mod:`repro.autotune.costmodel`) -- pruned candidates are recorded
   with their reason and are *never* executed;
3. **validate** every survivor against the phase-output digest ladder
   (assembly phases *and* the solver phases 9-12, at the tuned
   VECTOR_SIZE): a candidate whose transformed kernels are not
   bit-identical to the honest baseline is marked ``invalid`` and may
   not win;
4. **time** the valid survivors through the cached parallel executor
   (one :func:`~repro.experiments.executor.execute_plan` call, so disk
   cache, process fan-out, retry and journal semantics are inherited);
5. **select** per-phase and total winners by measured cycles
   (deterministic tie-break: fewer passes, then lexicographic).

Every stage runs under an ``autotune`` observability span and bumps the
``autotune_candidates_total{status=...}`` counter on the ambient metrics
registry, so ``repro trace`` / ``repro top`` see tuning like any other
workload.
"""

from __future__ import annotations

import os
from typing import Callable, Iterable, Optional, Sequence

from repro.autotune.costmodel import ScheduleCostModel
from repro.autotune.report import (
    VEC1_PASSES,
    AutotuneReport,
    CandidateOutcome,
)
from repro.autotune.space import enumerate_candidates, schedule_label
from repro.backends import DEFAULT_BACKEND
from repro.compiler.transforms import pipeline_from_names
from repro.experiments.config import RunConfig
from repro.experiments.executor import (
    MODEL_VERSION,
    ExecutionPlan,
    execute_plan,
    simulate_to_dict,
)
from repro.machine.machines import get_machine
from repro.metrics.counters import RunCounters
from repro.obs.metrics import active as _metrics_active
from repro.obs.tracer import event as _obs_event, span as _obs_span
from repro.validation.digests import (
    phase_output_digests,
    solver_phase_digests,
)
from repro.validation.probe import Probe


class AutotuneError(RuntimeError):
    """A candidate sweep that cannot produce a trustworthy report."""


#: timing hook signature: configs -> {cfg key: RunCounters}.
TimeRuns = Callable[[Sequence[RunConfig]], dict]


def _count(status: str) -> None:
    registry = _metrics_active()
    if registry is not None:
        registry.counter("autotune_candidates_total", status=status).inc()


def candidate_config(schedule: tuple[str, ...], *, machine: str,
                     vector_size: int, mesh_dims: tuple[int, int, int],
                     seed: int, backend: str) -> RunConfig:
    """The run configuration that times one candidate schedule.

    Candidates run on the ``vanilla`` rung with an explicit pass list,
    so the schedule -- not a preset -- decides the generated code; the
    empty schedule maps to ``passes=None`` (the baseline cache key).
    """
    return RunConfig(machine=machine, opt="vanilla",
                     vector_size=vector_size, mesh_dims=mesh_dims,
                     field_seed=seed, backend=backend,
                     passes=schedule or None)


def validate_schedule(schedule: tuple[str, ...], *, vector_size: int,
                      backend: str = DEFAULT_BACKEND) -> bool:
    """True when the schedule round-trips the full digest ladder.

    Compares the candidate's per-phase output digests -- assembly
    phases and the solver phases 9-12 -- against the honest baseline at
    the same VECTOR_SIZE (digests are only comparable at equal vector
    sizes).  Bit-identical or it may not win.
    """
    honest = Probe(opt="vanilla", vector_size=vector_size, backend=backend)
    probe = Probe(opt="vanilla", vector_size=vector_size, backend=backend,
                  passes=schedule)
    return (phase_output_digests(probe) == phase_output_digests(honest)
            and solver_phase_digests(probe) == solver_phase_digests(honest))


def schedule_remarks(schedule: tuple[str, ...],
                     baseline_kernels: Iterable) -> list:
    """Transform remarks of one schedule over the baseline kernels,
    as JSON-ready dicts (``not-applicable`` remarks are summarized by
    the counts; ``applied`` / ``illegal`` are listed in full)."""
    _, remarks = pipeline_from_names(schedule).run_all(baseline_kernels)
    return [{"phase": r.phase, "kernel": r.kernel, "pass": r.pass_name,
             "status": r.status, "reason": r.reason}
            for r in remarks if r.status != "not-applicable"]


def _pick_winner(timed: list, cycles_of: Callable) -> dict:
    """Winner + runner-up by measured cycles, deterministic tie-break
    (fewer passes first, then lexicographic schedule)."""
    ranked = sorted(timed, key=lambda c: (cycles_of(c), len(c.schedule),
                                          c.schedule))
    best = ranked[0]
    out = {"schedule": list(best.schedule), "label": best.label,
           "cycles": cycles_of(best)}
    if len(ranked) > 1:
        out["runner_up"] = ranked[1].label
    return out


def _vec1_verdict(winners_per_phase: dict) -> dict:
    """Did the per-phase winners rediscover the paper's schedule?

    ``subset_ok``: every winning schedule draws only on the VEC1 pass
    set (no strip variant won anywhere); ``union_equals_vec1``: across
    the phases, all three paper passes are part of some winner -- the
    hand-chosen ladder emerges from the union of per-phase optima.
    """
    union: set[str] = set()
    subset_ok = True
    for w in winners_per_phase.values():
        bases = {s.partition(":")[0] for s in w["schedule"]}
        union |= bases
        if not bases <= VEC1_PASSES:
            subset_ok = False
    union_ok = union == set(VEC1_PASSES)
    return {"subset_ok": subset_ok, "union_equals_vec1": union_ok,
            "rediscovered": subset_ok and union_ok}


def run_autotune(mesh_dims: tuple[int, int, int] = (4, 3, 3), *,
                 machine: str = "riscv_vec",
                 vector_size: int = 240,
                 profile: str = "smoke",
                 seed: int = 0,
                 backend: str = DEFAULT_BACKEND,
                 cache_dir: str | os.PathLike = ".repro_cache",
                 jobs: int = 1,
                 use_disk: bool = True,
                 worker=None,
                 time_runs: Optional[TimeRuns] = None) -> AutotuneReport:
    """Discover the best pass schedule per phase on one machine model.

    *worker* overrides the executor's simulation callable (test hook:
    a spy worker proves pruned candidates are never timed);
    *time_runs* replaces the whole timing stage (the service path: the
    CLI submits the candidate plan as an ``autotune`` job and feeds the
    fetched payloads back in).  Both default to the local cached
    executor.
    """
    params = get_machine(machine)
    model = ScheduleCostModel(params=params, vector_size=vector_size)

    with _obs_span("autotune", cat="autotune", machine=machine,
                   profile=profile, vector_size=vector_size):
        with _obs_span("autotune enumerate", cat="autotune"):
            schedules = enumerate_candidates(params, vector_size, profile)

        outcomes: list[CandidateOutcome] = []
        survivors: list[CandidateOutcome] = []
        with _obs_span("autotune prune", cat="autotune",
                       candidates=len(schedules)):
            for sched in schedules:
                outcome = CandidateOutcome(
                    schedule=sched, status="timed",
                    predicted=model.predict(sched))
                reason = model.prune_reason(sched)
                if reason is not None:
                    outcome.status = "pruned"
                    outcome.prune_reason = reason
                    _count("pruned")
                else:
                    survivors.append(outcome)
                outcomes.append(outcome)

        with _obs_span("autotune validate", cat="autotune",
                       survivors=len(survivors)):
            for outcome in survivors:
                ok = validate_schedule(outcome.schedule,
                                       vector_size=vector_size,
                                       backend=backend)
                outcome.digest_ok = ok
                if not ok:
                    outcome.status = "invalid"
                    _count("invalid")
                    _obs_event("autotune digest mismatch", cat="autotune",
                               schedule=schedule_label(outcome.schedule))
            survivors = [c for c in survivors if c.status == "timed"]

        configs = {
            c.schedule: candidate_config(
                c.schedule, machine=machine, vector_size=vector_size,
                mesh_dims=mesh_dims, seed=seed, backend=backend)
            for c in survivors}
        with _obs_span("autotune time", cat="autotune",
                       candidates=len(configs)):
            if time_runs is not None:
                runs = time_runs(list(configs.values()))
            else:
                result = execute_plan(
                    ExecutionPlan.from_configs(configs.values()),
                    cache_dir=cache_dir, jobs=jobs, use_disk=use_disk,
                    worker=worker or simulate_to_dict)
                if result.failed:
                    raise AutotuneError(
                        f"{len(result.failed)} candidate run(s) failed "
                        f"permanently: {sorted(result.failed)}")
                runs = result.runs

        from repro.experiments.executor import build_miniapp
        baseline = build_miniapp(candidate_config(
            (), machine=machine, vector_size=vector_size,
            mesh_dims=mesh_dims, seed=seed, backend=backend))
        for outcome in survivors:
            key = configs[outcome.schedule].key()
            counters: RunCounters = runs[key]
            outcome.cycles_total = counters.total_cycles
            outcome.phase_cycles = {
                str(pid): counters.phases[pid].cycles_total
                for pid in counters.phase_ids()}
            outcome.remarks = schedule_remarks(outcome.schedule,
                                               baseline.baseline_kernels)
            _count("timed")
            _obs_event("autotune candidate timed", cat="autotune",
                       schedule=schedule_label(outcome.schedule),
                       cycles=outcome.cycles_total)

        with _obs_span("autotune select", cat="autotune"):
            if not survivors:
                raise AutotuneError(
                    "no candidate survived pruning + validation; "
                    "nothing to rank")
            phase_ids = sorted({pid for c in survivors
                                for pid in c.phase_cycles}, key=int)
            winners_per_phase = {
                pid: _pick_winner(
                    [c for c in survivors if pid in c.phase_cycles],
                    lambda c, p=pid: c.phase_cycles[p])
                for pid in phase_ids}
            winner_total = _pick_winner(survivors,
                                        lambda c: c.cycles_total)
            vec1 = _vec1_verdict(winners_per_phase)

    statuses = [c.status for c in outcomes]
    return AutotuneReport(
        machine=machine, mesh_dims=tuple(mesh_dims),
        vector_size=vector_size, profile=profile, seed=seed,
        backend=backend, model_version=MODEL_VERSION,
        candidates=outcomes,
        winners_per_phase=winners_per_phase,
        winner_total=winner_total,
        vec1_family=vec1,
        counts={"enumerated": len(outcomes),
                "pruned": statuses.count("pruned"),
                "invalid": statuses.count("invalid"),
                "timed": statuses.count("timed")})
