"""Static schedule cost model: prune before you time.

The codesign advisor recommends *one next pass* from measured findings;
the autotuner needs the complementary static view: given a machine model
and a candidate schedule, decide -- before spending a simulation --
whether the candidate can possibly win, and predict a relative cost for
ranking the survivors.

Pruning is conservative and every decision carries a reason string that
lands verbatim in the :class:`~repro.autotune.report.AutotuneReport`:

* **non-canonical order** -- the pass dependence rules admit several
  orderings of the same pass set (``loop-fission`` commutes with the
  VEC2/IVEC2 pair at array granularity); only the canonical
  paper-ladder order is timed, the permutations are duplicates.
* **strip legality, statically** -- ``strip-mine`` variants whose
  preconditions (compile-time trip count via ``const-trip-count``,
  divisibility of VECTOR_SIZE) are already refutable from the machine
  model and VECTOR_SIZE alone never reach the executor.
* **strip profitability** -- on machines without the Vitruvius FSM
  partial-group penalty (``fsm_depth is None``) a software strip can
  only add per-strip issue/configuration overhead on top of the
  hardware's own ``vl_max`` stripping, so the whole family is pruned.

The ``predict`` score mirrors the machine model's cost structure (FSM
group flush, per-strip issue overhead, L1 footprint) but is a *ranking
heuristic*: winners are decided by measured cycles, and the report keeps
both numbers so a mispredicting cost model is visible, not silent.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.machine.params import MachineParams

#: canonical pass order (the paper's cumulative ladder, strip last).
CANONICAL_ORDER: dict[str, int] = {
    "const-trip-count": 0,
    "loop-interchange": 1,
    "loop-fission": 2,
    "strip-mine": 3,
}

#: bytes per double and a conservative live-array count for the
#: per-strip working-set footprint estimate.
_BYTES_PER_ELEM = 8
_LIVE_ARRAYS = 16


def base_names(schedule: tuple[str, ...]) -> tuple[str, ...]:
    """Registry base names with any ``:arg`` parameters stripped."""
    return tuple(s.partition(":")[0] for s in schedule)


def strip_size(schedule: tuple[str, ...]) -> Optional[int]:
    """The strip size of the schedule's ``strip-mine`` spelling, if any."""
    for s in schedule:
        base, sep, arg = s.partition(":")
        if base == "strip-mine":
            return int(arg) if sep else 40
    return None


def canonical_form(schedule: tuple[str, ...]) -> tuple[str, ...]:
    """The schedule's passes in canonical ladder order."""
    return tuple(sorted(schedule, key=lambda s: CANONICAL_ORDER[
        s.partition(":")[0]]))


@dataclass(frozen=True)
class ScheduleCostModel:
    """Machine-model-fed pruning + ranking for candidate schedules."""

    params: MachineParams
    vector_size: int

    # -- pruning -----------------------------------------------------------

    def prune_reason(self, schedule: tuple[str, ...]) -> Optional[str]:
        """Why this candidate must not be timed, or ``None`` to keep it."""
        order = [CANONICAL_ORDER[b] for b in base_names(schedule)]
        if any(b <= a for a, b in zip(order, order[1:])):
            canon = "+".join(canonical_form(schedule))
            return (f"non-canonical pass order: commutes with "
                    f"'{canon}' under the pipeline's array-granularity "
                    f"dependence rules; only the canonical order is timed")
        size = strip_size(schedule)
        if size is None:
            return None
        vpu = self.params.vpu
        if vpu is None:
            return (f"{self.params.name} has no vector unit: "
                    f"strip-mining only adds loop overhead")
        if "const-trip-count" not in base_names(schedule):
            return ("strip-mine requires a compile-time trip count "
                    "(T5-runtime-trip-count on every target without "
                    "const-trip-count)")
        if self.vector_size % size:
            return (f"strip {size} does not divide VECTOR_SIZE "
                    f"{self.vector_size} (T5-indivisible: a remainder "
                    f"strip breaks the mod-{size} discipline)")
        usable = min(self.vector_size, vpu.vl_max)
        if size >= usable:
            return (f"strip {size} >= usable vector length {usable}: "
                    f"the hardware already strips at vl_max")
        if vpu.fsm_depth is None:
            return (f"{self.params.name} has no FSM partial-group "
                    f"penalty: software strips only add per-strip issue "
                    f"overhead on top of hardware vl_max stripping")
        return None

    # -- ranking heuristic -------------------------------------------------

    def predict(self, schedule: tuple[str, ...]) -> float:
        """Predicted relative cost (lower is better), deterministic.

        Not a cycle count -- a unitless score mirroring the machine
        model's cost structure, reported next to the measured cycles so
        cost-model mispredictions are visible in the winner report.
        """
        cost = 100.0
        vpu = self.params.vpu
        if vpu is None:
            return cost
        bases = set(base_names(schedule))
        usable = min(self.vector_size, vpu.vl_max)
        if "const-trip-count" in bases:
            # alias/trip-count fix: unlocks vectorization (VEC2).
            cost -= 10.0
        if "loop-interchange" in bases:
            # long-AVL benefit grows with usable VL over the lane count.
            cost -= 25.0 * (1.0 - vpu.lanes / max(usable, vpu.lanes))
        if "loop-fission" in bases:
            # the straight-line tail becomes a vector candidate (VEC1).
            cost -= 20.0
        size = strip_size(schedule)
        if size:
            n_strips = -(-usable // size)
            cost += n_strips * (vpu.issue_overhead + vpu.config_cycles
                                + vpu.strip_stall_cycles) / 10.0
            group = vpu.fsm_group_elems
            if group and usable % group and size % group == 0:
                # the strip restores FSM-group alignment the full VL lacks.
                cost -= 2.0 * vpu.fsm_flush_cycles * (usable // group)
        footprint = (size or usable) * _BYTES_PER_ELEM * _LIVE_ARRAYS
        if footprint > self.params.memory.l1.size_bytes:
            cost += 5.0
        return round(cost, 3)
