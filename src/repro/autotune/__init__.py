"""Pass-schedule autotuner: the paper's transforms as a discovered result.

The search (``repro autotune``) enumerates legal pass schedules --
interchange x fission x const-trip-count x the machine's ``strip-mine``
family -- prunes them with a static cost model fed by the machine model,
digest-validates every survivor, times the rest through the cached
parallel executor, and reports per-phase winners deterministically.
See :mod:`repro.autotune.tuner` for the pipeline and
:mod:`repro.autotune.report` for the byte-stable report contract.
"""

from repro.autotune.costmodel import ScheduleCostModel
from repro.autotune.report import (
    SCHEMA,
    VEC1_PASSES,
    AutotuneReport,
    CandidateOutcome,
)
from repro.autotune.space import (
    enumerate_candidates,
    schedule_label,
    strip_sizes,
)
from repro.autotune.tuner import (
    AutotuneError,
    candidate_config,
    run_autotune,
    validate_schedule,
)

__all__ = [
    "SCHEMA",
    "VEC1_PASSES",
    "AutotuneError",
    "AutotuneReport",
    "CandidateOutcome",
    "ScheduleCostModel",
    "candidate_config",
    "enumerate_candidates",
    "run_autotune",
    "schedule_label",
    "strip_sizes",
    "validate_schedule",
]
