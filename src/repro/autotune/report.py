"""The autotune winner report: byte-deterministic per seed.

One :class:`AutotuneReport` records everything the tuner decided and
why: every enumerated candidate with its status (``timed`` / ``pruned``
/ ``invalid``), the static cost-model prediction, the prune reason, the
digest-ladder verdict, the measured per-phase cycles and transform
remarks for timed candidates, the per-phase and total winners, and the
VEC1-family verdict (did the search independently rediscover the
paper's hand-chosen schedule?).

Determinism is a contract, not an accident: no wall-clock timestamps,
no host names, key-sorted JSON, and every number is a deterministic
model output -- CI runs the tuner twice and diffs the reports
byte-for-byte.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.autotune.space import schedule_label

#: report schema version (bump when the payload shape changes).
SCHEMA = "repro-autotune-v1"

#: the paper's hand-chosen pass set (the VEC1 rung).
VEC1_PASSES = frozenset(
    {"const-trip-count", "loop-interchange", "loop-fission"})


@dataclass
class CandidateOutcome:
    """One candidate schedule's journey through the tuner."""

    schedule: tuple[str, ...]
    status: str  # timed | pruned | invalid | failed
    predicted: float
    prune_reason: str = ""
    digest_ok: bool | None = None
    error: str = ""
    cycles_total: float | None = None
    #: phase id (str) -> cycles_total, timed candidates only.
    phase_cycles: dict = field(default_factory=dict)
    #: transform remarks: list of {phase, kernel, pass, status, reason}.
    remarks: list = field(default_factory=list)

    @property
    def label(self) -> str:
        return schedule_label(self.schedule)

    def to_dict(self) -> dict:
        out = {
            "schedule": list(self.schedule),
            "label": self.label,
            "status": self.status,
            "predicted": self.predicted,
        }
        if self.prune_reason:
            out["prune_reason"] = self.prune_reason
        if self.digest_ok is not None:
            out["digest_ok"] = self.digest_ok
        if self.error:
            out["error"] = self.error
        if self.cycles_total is not None:
            out["cycles_total"] = self.cycles_total
        if self.phase_cycles:
            out["phase_cycles"] = dict(self.phase_cycles)
        if self.remarks:
            out["remarks"] = list(self.remarks)
        return out


@dataclass
class AutotuneReport:
    """The deterministic result of one ``run_autotune`` call."""

    machine: str
    mesh_dims: tuple[int, int, int]
    vector_size: int
    profile: str
    seed: int
    backend: str
    model_version: str
    candidates: list  # list[CandidateOutcome], enumeration order
    #: phase id (str) -> {"schedule": [...], "label": ..., "cycles": ...}.
    winners_per_phase: dict = field(default_factory=dict)
    winner_total: dict = field(default_factory=dict)
    #: VEC1-family verdict over the per-phase winners.
    vec1_family: dict = field(default_factory=dict)
    counts: dict = field(default_factory=dict)

    # ------------------------------------------------------------------

    def timed(self) -> list:
        return [c for c in self.candidates if c.status == "timed"]

    def to_dict(self) -> dict:
        return {
            "schema": SCHEMA,
            "machine": self.machine,
            "mesh": list(self.mesh_dims),
            "vector_size": self.vector_size,
            "profile": self.profile,
            "seed": self.seed,
            "backend": self.backend,
            "model_version": self.model_version,
            "counts": dict(self.counts),
            "candidates": [c.to_dict() for c in self.candidates],
            "winners": {
                "per_phase": dict(self.winners_per_phase),
                "total": dict(self.winner_total),
            },
            "vec1_family": dict(self.vec1_family),
        }

    def to_json(self) -> str:
        """Canonical byte-deterministic serialization (CI diffs this)."""
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"

    # -- rendering ---------------------------------------------------------

    def winner_rows(self) -> list:
        """Winner table rows (header included), ASCII/markdown-ready."""
        rows = [["phase", "winning schedule", "cycles", "runner-up"]]
        for pid in sorted(self.winners_per_phase, key=int):
            w = self.winners_per_phase[pid]
            rows.append([pid, w["label"], f"{w['cycles']:,.0f}",
                         w.get("runner_up", "-")])
        if self.winner_total:
            rows.append(["total", self.winner_total["label"],
                         f"{self.winner_total['cycles']:,.0f}",
                         self.winner_total.get("runner_up", "-")])
        return rows

    def winner_table_markdown(self) -> str:
        """GitHub-flavoured markdown winner table (CI step summary)."""
        rows = self.winner_rows()
        lines = [
            f"### Autotune winners — {self.machine}, "
            f"VECTOR_SIZE={self.vector_size}, {self.profile} profile",
            "",
            "| " + " | ".join(rows[0]) + " |",
            "|" + "|".join(" --- " for _ in rows[0]) + "|",
        ]
        lines.extend("| " + " | ".join(r) + " |" for r in rows[1:])
        fam = self.vec1_family
        verdict = ("rediscovered the paper's VEC1-family schedule"
                   if fam.get("rediscovered")
                   else "did NOT converge on the paper's VEC1 family")
        counts = self.counts
        lines += ["",
                  f"{counts.get('timed', 0)} timed / "
                  f"{counts.get('pruned', 0)} pruned / "
                  f"{counts.get('invalid', 0)} invalid of "
                  f"{counts.get('enumerated', 0)} enumerated — "
                  f"search {verdict}."]
        return "\n".join(lines) + "\n"
