"""Pluggable kernel-execution backends.

Public surface:

* :class:`ExecutionBackend` / :class:`KernelExecutor` -- the protocols;
* :data:`BACKENDS`, :func:`get_backend`, :func:`register_backend`,
  :data:`DEFAULT_BACKEND` -- the registry;
* :class:`InterpreterBackend` (``"interpreter"``) -- the element-by-
  element semantics oracle;
* :class:`NumpyBackend` (``"numpy"``, default) -- whole-array execution,
  byte-identical to the oracle and ~an order of magnitude faster.

See :mod:`repro.backends.base` for the design rationale and
:mod:`repro.backends.numpy_backend` for the bit-exactness argument.
"""

from repro.backends.base import (
    BACKENDS,
    DEFAULT_BACKEND,
    ExecutionBackend,
    KernelExecutor,
    get_backend,
    register_backend,
)
from repro.backends.interp import INTERPRETER_BACKEND, InterpreterBackend
from repro.backends.numpy_backend import (
    NUMPY_BACKEND,
    NumpyBackend,
    NumpyExecutor,
    plan_kernel,
)

__all__ = [
    "BACKENDS",
    "DEFAULT_BACKEND",
    "ExecutionBackend",
    "KernelExecutor",
    "get_backend",
    "register_backend",
    "InterpreterBackend",
    "INTERPRETER_BACKEND",
    "NumpyBackend",
    "NumpyExecutor",
    "NUMPY_BACKEND",
    "plan_kernel",
]
