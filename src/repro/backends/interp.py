"""The oracle backend: the tree-walking interpreter, unchanged.

Thin adapter only -- :class:`~repro.compiler.interpreter.Interpreter`
already satisfies the :class:`~repro.backends.base.KernelExecutor`
protocol, so this module just gives it a registry name.  Semantics are
deliberately untouched: this is the reference every other backend is
measured against, byte for byte.
"""

from __future__ import annotations

from typing import Mapping, Optional

from repro.backends.base import register_backend
from repro.compiler.interpreter import Interpreter
from repro.compiler.ir import Kernel
from repro.compiler.program import KernelInstance


class InterpreterBackend:
    """Element-by-element reference execution (the semantics oracle)."""

    name = "interpreter"

    def executor(self, instance: KernelInstance,
                 params: Optional[Mapping[str, float]] = None) -> Interpreter:
        return Interpreter(instance, params)

    def run_kernel(self, kernel: Kernel, instance: KernelInstance,
                   params: Optional[Mapping[str, float]] = None) -> None:
        self.executor(instance, params).run(kernel)


INTERPRETER_BACKEND = register_backend(InterpreterBackend())
