"""Execution-backend protocol and registry.

An *execution backend* answers one question: given a loop-nest
:class:`~repro.compiler.ir.Kernel` and a bound
:class:`~repro.compiler.program.KernelInstance`, who actually computes
the numbers?  The repo grew up with a single answer -- the tree-walking
:class:`~repro.compiler.interpreter.Interpreter`, element by element --
which is a fine semantics oracle and a terrible way to run thousands of
golden checks (ROADMAP: "order of magnitude off sweep wall-clock").

This module defines the seam: :class:`ExecutionBackend` produces
per-instance *executors* (anything with ``run(kernel)``), and the
:data:`BACKENDS` registry maps names to implementations so the switch
can be threaded through ``golden_check`` / ``phase_output_digests`` /
chaos / ``RunConfig`` as a plain string.  Two backends ship:

* ``"interpreter"`` -- the unchanged oracle;
* ``"numpy"``       -- a lowering of each kernel to whole-array NumPy
  operations (:mod:`repro.backends.numpy_backend`), byte-identical to
  the oracle on every shipped kernel (the frozen equivalence fixture
  pins this) and more than an order of magnitude faster.

``"numpy"`` is the default everywhere precisely *because* the fixture
gate proves byte-identity; any semantic divergence is a test failure,
not a tolerance question.
"""

from __future__ import annotations

from typing import Mapping, Optional, Protocol, runtime_checkable

from repro.compiler.ir import Kernel
from repro.compiler.program import KernelInstance


@runtime_checkable
class KernelExecutor(Protocol):
    """What a backend hands out per :class:`KernelInstance`: an object
    that executes kernels against that instance's bound arrays."""

    def run(self, kernel: Kernel) -> None:  # pragma: no cover - protocol
        ...


@runtime_checkable
class ExecutionBackend(Protocol):
    """The pluggable execution seam.

    Implementations are stateless factories: :meth:`executor` builds a
    fresh executor bound to one instance (one chunk of the mesh), and
    :meth:`run_kernel` is the one-shot convenience.  ``name`` is the
    registry spelling used by ``backend=`` keywords, ``RunConfig`` and
    the ``--backend`` CLI flag.
    """

    name: str

    def executor(self, instance: KernelInstance,
                 params: Optional[Mapping[str, float]] = None
                 ) -> KernelExecutor:  # pragma: no cover - protocol
        ...

    def run_kernel(self, kernel: Kernel, instance: KernelInstance,
                   params: Optional[Mapping[str, float]] = None
                   ) -> None:  # pragma: no cover - protocol
        ...


#: registry: backend name -> implementation (populated on import of
#: :mod:`repro.backends`; third parties may register their own).
BACKENDS: dict[str, ExecutionBackend] = {}

#: the default for every ``backend=`` keyword in the validation stack.
DEFAULT_BACKEND = "numpy"


def register_backend(backend: ExecutionBackend) -> ExecutionBackend:
    """Add *backend* to :data:`BACKENDS` under its ``name``."""
    BACKENDS[backend.name] = backend
    return backend


def get_backend(spec: "str | ExecutionBackend | None") -> ExecutionBackend:
    """Resolve a backend spec: a registry name, an already-constructed
    backend (returned as-is), or ``None`` for :data:`DEFAULT_BACKEND`."""
    if spec is None:
        spec = DEFAULT_BACKEND
    if isinstance(spec, str):
        try:
            return BACKENDS[spec]
        except KeyError:
            raise ValueError(
                f"unknown execution backend {spec!r}; known: "
                f"{sorted(BACKENDS)}") from None
    if isinstance(spec, ExecutionBackend):
        return spec
    raise TypeError(f"not an execution backend: {spec!r}")
