"""Whole-array NumPy execution of loop-nest kernels, byte-identical to
the interpreter.

The lowering turns each :class:`~repro.compiler.ir.Kernel` into a cached
*execution plan* and then evaluates statements over a broadcast **grid**
instead of one element at a time:

* every loop the legality analysis clears is joined to the grid as one
  trailing axis (``ivect`` chunk loops, unrolled ``inode``/``idime``
  nests, gauss loops without scratch reuse);
* affine index maps evaluate to integer index arrays over the grid
  (:func:`repro.compiler.program.eval_index`, shared with the machine
  model's address streams), ``Indirect`` gathers become fancy indexing;
* ``If`` guards become boolean masks ANDed down the statement tree;
* loops the analysis refuses (e.g. the gauss loops of phases 3/6/7,
  whose bodies reuse ``xjacm``/``gpaux`` scratch across iterations) stay
  ordinary Python loops around vectorized bodies.

**Why this is bit-exact, not merely close.**  Elementwise IEEE-754
double arithmetic is identical between Python floats and ``np.float64``
-- the only way a whole-array execution can diverge from the oracle is
by *reordering* floating-point accumulation.  So the plan never uses
axis reductions (``np.sum``'s pairwise summation would re-associate);
scatter-accumulates lower to ``np.ufunc.at`` over indices flattened in
iteration order (grid axes are outermost-first, so a C-order ravel *is*
loop order), which applies duplicate-index additions one at a time in
exactly the interpreter's sequence.  The legality rules below refuse
any loop whose vectorization could reorder reads relative to writes or
interleave statements on a shared location; everything else is provably
order-preserving.  The frozen fixture in
``tests/fixtures/backend_equivalence.json`` pins the result.

Known (documented) divergence: the interpreter raises Python's
``ZeroDivisionError`` / ``math`` domain errors where NumPy produces
``inf``/``nan`` under ``np.errstate`` suppression.  No shipped kernel
hits either on valid data; the golden checks would catch it if one did.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass
from typing import Mapping, Optional, Union

import numpy as np

from repro.backends.base import register_backend
from repro.compiler.ir import (
    Affine,
    Assign,
    BinOp,
    Cond,
    Const,
    Expr,
    If,
    IndexExpr,
    Indirect,
    Kernel,
    Load,
    Loop,
    Param,
    Ref,
    Stmt,
    Unary,
    walk_loops,
)
from repro.compiler.program import KernelInstance, eval_index

_BINOPS = {
    "add": np.add,
    "sub": np.subtract,
    "mul": np.multiply,
    "div": np.divide,
    # NaN-propagating by construction; the interpreter pins the same
    # semantics (see repro.compiler.interpreter._nan_min/_nan_max).
    "min": np.minimum,
    "max": np.maximum,
}

_COMPARES = {
    "lt": np.less,
    "le": np.less_equal,
    "gt": np.greater,
    "ge": np.greater_equal,
    "eq": np.equal,
    "ne": np.not_equal,
}

_UNARY = {"neg": np.negative, "abs": np.abs, "sqrt": np.sqrt}


# ---------------------------------------------------------------------------
# Execution plans
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class PlanAssign:
    stmt: Assign
    #: True when the store's index tuple is provably duplicate-free over
    #: the vectorized grid (every vectorized loop var is *resolved* by
    #: some affine dim); accumulates may then use buffered fancy ``+=``
    #: instead of the much slower ordered ``np.add.at``.
    unique: bool


@dataclass(frozen=True)
class PlanIf:
    stmt: If
    body: tuple["PlanNode", ...]


@dataclass(frozen=True)
class PlanLoop:
    stmt: Loop
    #: the legality verdict: join this loop to the grid, or iterate it.
    vectorize: bool
    body: tuple["PlanNode", ...]


PlanNode = Union[PlanAssign, PlanIf, PlanLoop]

#: kernel -> plan cache.  Plans depend only on kernel structure, so one
#: plan serves every chunk/instance; weak keys let mutated throwaway
#: kernel lists (chaos drills) be collected.
_PLANS: "weakref.WeakKeyDictionary[Kernel, tuple[PlanNode, ...]]" = (
    weakref.WeakKeyDictionary())


@dataclass(frozen=True)
class _Write:
    """One Assign writing some array, with the extents of every loop var
    bound *inside* the candidate subtree (outer vars stay symbolic)."""

    stmt: Assign
    extents: Mapping[str, int]


def _resolves(ref: Ref, v: str, loop_vars: frozenset[str]) -> bool:
    """True if some affine dim of *ref* pins down *v*: nonzero coef on
    ``v`` and no other loop variable in the dim (named index constants
    like the chunk base are runtime constants, not loop vars, so they
    do not spoil resolution).  A resolved var is recoverable from the
    store location, which is what the ordering proofs need."""
    for e in ref.idx:
        if not isinstance(e, Affine):
            continue
        if e.coef(v) == 0:
            continue
        if all(u == v or u not in loop_vars for u, _ in e.terms):
            return True
    return False


def _dim_range(aff: Affine, extents: Mapping[str, int]
               ) -> tuple[int, int, frozenset]:
    """Value range of one affine dim over the bounded loop vars, plus
    the residue of symbolic terms (outer loop vars / index constants).
    Two dims are comparable only when their residues match -- symbolic
    terms are then equal at any instant and cancel."""
    lo = hi = aff.const
    sym = []
    for u, c in aff.terms:
        if u in extents:
            span = c * (extents[u] - 1)
            lo += min(0, span)
            hi += max(0, span)
        else:
            sym.append((u, c))
    return lo, hi, frozenset(sym)


def _ranges_disjoint(a: _Write, b: _Write) -> bool:
    """True if the two writes can never touch the same element: some dim
    where both index ranges are provably non-overlapping (e.g. phase 8's
    two ``rhsid`` accumulates hitting columns 0..2 vs column 3)."""
    for ea, eb in zip(a.stmt.ref.idx, b.stmt.ref.idx):
        if not (isinstance(ea, Affine) and isinstance(eb, Affine)):
            continue
        alo, ahi, asym = _dim_range(ea, a.extents)
        blo, bhi, bsym = _dim_range(eb, b.extents)
        if asym == bsym and (ahi < blo or bhi < alo):
            return True
    return False


class _Planner:
    """Per-kernel legality analysis + plan construction.

    A loop over ``v`` may join the grid iff, within its subtree:

    1. no array is both loaded and stored (vectorizing would let a read
       see pre-iteration values -- this is what keeps the scratch-reuse
       gauss loops of phases 3/6/7 sequential);
    2. any two stores to the same array are range-disjoint, or share the
       identical index tuple *and* resolve ``v`` (either way the
       per-location operation sequence survives statement-at-a-time
       execution);
    3. every store either resolves ``v`` (its location pins the lane, so
       per-location order is inherited from the remaining vars), or is
       an accumulate whose nested loops are all themselves vectorizable
       -- then the whole sub-nest flattens to one grid and the ordered
       ``np.add.at`` replays the interpreter's accumulation sequence
       exactly.  A non-resolving *plain* store could drop "last write
       wins" semantics, so it refuses the loop outright.
    """

    def __init__(self, kernel: Kernel):
        self.kernel = kernel
        self.loop_vars = frozenset(l.var for l in walk_loops(kernel.body))
        self._verdicts: dict[int, bool] = {}

    def plan(self) -> tuple[PlanNode, ...]:
        return tuple(self._plan_stmt(s, ()) for s in self.kernel.body)

    # -- plan construction -------------------------------------------------

    def _plan_stmt(self, s: Stmt, vec_stack: tuple[str, ...]) -> PlanNode:
        if isinstance(s, Assign):
            unique = all(_resolves(s.ref, v, self.loop_vars)
                         for v in vec_stack)
            return PlanAssign(s, unique)
        if isinstance(s, If):
            return PlanIf(s, tuple(self._plan_stmt(b, vec_stack)
                                   for b in s.body))
        if isinstance(s, Loop):
            vec = self._vectorizable(s)
            inner = vec_stack + (s.var,) if vec else vec_stack
            return PlanLoop(s, vec, tuple(self._plan_stmt(b, inner)
                                          for b in s.body))
        raise TypeError(f"cannot plan {s!r}")  # pragma: no cover

    # -- legality ----------------------------------------------------------

    def _vectorizable(self, loop: Loop) -> bool:
        key = id(loop)
        if key not in self._verdicts:
            self._verdicts[key] = self._check(loop)
        return self._verdicts[key]

    def _check(self, loop: Loop) -> bool:
        v = loop.var
        reads: set[str] = set()
        writes: dict[str, list[_Write]] = {}
        nested: list[Loop] = []
        self._collect(loop.body, {v: loop.extent.value}, reads, writes,
                      nested)
        for name, ws in writes.items():
            if name in reads:
                return False
            for i in range(len(ws)):
                for j in range(i + 1, len(ws)):
                    a, b = ws[i], ws[j]
                    same_ref = (a.stmt.ref.idx == b.stmt.ref.idx
                                and _resolves(a.stmt.ref, v, self.loop_vars))
                    if not (same_ref or _ranges_disjoint(a, b)):
                        return False
            for w in ws:
                if _resolves(w.stmt.ref, v, self.loop_vars):
                    continue
                if not w.stmt.accumulate:
                    return False
                if not all(self._vectorizable(l) for l in nested):
                    return False
        return True

    def _collect(self, stmts, extents: dict[str, int], reads: set[str],
                 writes: dict[str, list[_Write]],
                 nested: list[Loop]) -> None:
        for s in stmts:
            if isinstance(s, Assign):
                writes.setdefault(s.ref.array.name, []).append(
                    _Write(s, dict(extents)))
                for e in s.ref.idx:
                    self._index_reads(e, reads)
                self._expr_reads(s.expr, reads)
            elif isinstance(s, If):
                self._expr_reads(s.cond.lhs, reads)
                self._expr_reads(s.cond.rhs, reads)
                self._collect(s.body, extents, reads, writes, nested)
            elif isinstance(s, Loop):
                nested.append(s)
                self._collect(s.body, {**extents, s.var: s.extent.value},
                              reads, writes, nested)

    def _expr_reads(self, e: Expr, reads: set[str]) -> None:
        if isinstance(e, Load):
            reads.add(e.ref.array.name)
            for idx in e.ref.idx:
                self._index_reads(idx, reads)
        elif isinstance(e, BinOp):
            self._expr_reads(e.lhs, reads)
            self._expr_reads(e.rhs, reads)
        elif isinstance(e, Unary):
            self._expr_reads(e.x, reads)

    def _index_reads(self, e: IndexExpr, reads: set[str]) -> None:
        if isinstance(e, Indirect):
            reads.add(e.array.name)
            for sub in e.idx:
                self._index_reads(sub, reads)


def plan_kernel(kernel: Kernel) -> tuple[PlanNode, ...]:
    """The (cached) execution plan of *kernel*."""
    plan = _PLANS.get(kernel)
    if plan is None:
        from repro.obs.tracer import span as _obs_span

        with _obs_span(f"lower {kernel.name}", cat="backend",
                       phase=kernel.phase, backend="numpy"):
            plan = _Planner(kernel).plan()
        _PLANS[kernel] = plan
    return plan


# ---------------------------------------------------------------------------
# Execution
# ---------------------------------------------------------------------------


class NumpyExecutor:
    """Grid-evaluate planned kernels against one :class:`KernelInstance`."""

    def __init__(self, instance: KernelInstance,
                 params: Optional[Mapping[str, float]] = None):
        self.instance = instance
        self.params = dict(params or {})

    # -- values ------------------------------------------------------------

    def _eval(self, expr: Expr, env: dict) -> "np.ndarray | float":
        if isinstance(expr, Const):
            return expr.value
        if isinstance(expr, Param):
            try:
                return self.params[expr.name]
            except KeyError:
                raise KeyError(
                    f"parameter {expr.name!r} not provided") from None
        if isinstance(expr, Load):
            data = self.instance.data(expr.ref.array.name)
            idx = tuple(eval_index(e, env, self.instance)
                        for e in expr.ref.idx)
            return data[idx]
        if isinstance(expr, BinOp):
            return _BINOPS[expr.op](self._eval(expr.lhs, env),
                                    self._eval(expr.rhs, env))
        if isinstance(expr, Unary):
            return _UNARY[expr.op](self._eval(expr.x, env))
        raise TypeError(f"unknown expression {expr!r}")  # pragma: no cover

    def _cond(self, cond: Cond, env: dict) -> "np.ndarray | np.bool_":
        return _COMPARES[cond.op](self._eval(cond.lhs, env),
                                  self._eval(cond.rhs, env))

    # -- statements --------------------------------------------------------

    def _assign(self, node: PlanAssign, env: dict, mask, shape) -> None:
        stmt = node.stmt
        data = self.instance.ensure_data(stmt.ref.array)
        val = self._eval(stmt.expr, env)
        idx = tuple(eval_index(e, env, self.instance) for e in stmt.ref.idx)
        if shape == ():
            # fully sequential context: plain element update.
            pos = tuple(int(i) for i in idx)
            if stmt.accumulate:
                data[pos] += val
            else:
                data[pos] = val
            return
        bidx = tuple(np.broadcast_to(i, shape) for i in idx)
        vals = np.broadcast_to(np.asarray(val), shape)
        if mask is not None:
            m = np.broadcast_to(mask, shape)
            # boolean selection flattens in C order == iteration order.
            bidx = tuple(i[m] for i in bidx)
            vals = vals[m]
        if stmt.accumulate:
            if node.unique:
                data[bidx] += vals
            else:
                # duplicate target locations: apply additions one at a
                # time in flattened-grid (= loop) order.
                np.add.at(data, tuple(i.ravel() for i in bidx), vals.ravel())
        else:
            data[bidx] = vals

    def _exec(self, node: PlanNode, env: dict, mask, shape) -> None:
        if isinstance(node, PlanAssign):
            self._assign(node, env, mask, shape)
        elif isinstance(node, PlanIf):
            cond = np.asarray(self._cond(node.stmt.cond, env), dtype=bool)
            if shape == ():
                if cond:
                    for b in node.body:
                        self._exec(b, env, None, ())
                return
            new_mask = cond if mask is None else (mask & cond)
            if not new_mask.any():
                return
            for b in node.body:
                self._exec(b, env, new_mask, shape)
        else:
            loop = node.stmt
            if node.vectorize:
                # join the loop to the grid: existing axes get a new
                # trailing axis (views), the new var spans it.
                inner = {k: (val[..., None] if isinstance(val, np.ndarray)
                             else val) for k, val in env.items()}
                inner[loop.var] = np.arange(loop.extent.value,
                                            dtype=np.int64)
                inner_mask = mask[..., None] if mask is not None else None
                for b in node.body:
                    self._exec(b, inner, inner_mask,
                               shape + (loop.extent.value,))
            else:
                for i in range(loop.extent.value):
                    env[loop.var] = i
                    for b in node.body:
                        self._exec(b, env, mask, shape)
                env.pop(loop.var, None)

    def run(self, kernel: Kernel) -> None:
        from repro.obs.tracer import span as _obs_span

        self.params = {**kernel.param_dict(), **self.params}
        plan = plan_kernel(kernel)
        # masked-out lanes may divide by zero / sqrt negatives before
        # their results are discarded -- silence the (unused) warnings.
        with _obs_span(kernel.name, cat="ir", phase=kernel.phase,
                       backend="numpy"):
            with np.errstate(divide="ignore", invalid="ignore",
                             over="ignore"):
                env: dict = {}
                for node in plan:
                    self._exec(node, env, None, ())


class NumpyBackend:
    """Vectorized whole-array execution (the default backend)."""

    name = "numpy"

    def executor(self, instance: KernelInstance,
                 params: Optional[Mapping[str, float]] = None
                 ) -> NumpyExecutor:
        return NumpyExecutor(instance, params)

    def run_kernel(self, kernel: Kernel, instance: KernelInstance,
                   params: Optional[Mapping[str, float]] = None) -> None:
        self.executor(instance, params).run(kernel)


NUMPY_BACKEND = register_backend(NumpyBackend())
