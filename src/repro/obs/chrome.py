"""Chrome ``trace_event`` export: flamegraphs in ``chrome://tracing``.

Converts a :class:`~repro.obs.tracer.Tracer` into the Trace Event
Format consumed by ``chrome://tracing`` / Perfetto: one JSON object with
a ``traceEvents`` list of complete (``"X"``), instant (``"i"``) and
counter (``"C"``) events plus ``"M"`` metadata naming the rows.

Clock-domain mapping (one pid per domain, so the two timelines never
interleave):

* pid 1 -- the **simulated machine**: SIM-domain records, timestamped in
  cycles (1 "us" == 1 cycle).  Phase spans on tid 1, per-block spans on
  tid 2, a granted-``vl`` counter track from the Vehave batches.  These
  are fully deterministic: two runs of the same config export
  byte-identical files, which CI exploits.
* pid 2 -- the **harness** (wall clock, microseconds since the tracer's
  epoch): executor/interpreter spans and progress events.  Only written
  with ``include_wall=True``, because wall timestamps differ run to run.

Raw events merged from per-worker trace files (``tracer.raw_events``)
pass through unchanged; they already carry worker pids.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Optional

from repro.obs.tracer import SIM, WALL, Tracer

PID_SIM = 1
PID_WALL = 2
#: the transformation pass pipeline: deterministic ordinal timestamps
#: (pass application order), so the compile stage shows up in the trace
#: without breaking byte-identical re-runs the way wall clocks would.
PID_COMPILE = 3


def _args(pairs: tuple) -> dict:
    return {k: v for k, v in pairs}


def _meta(pid: int, tid: Optional[int], key: str, name: str) -> dict:
    ev = {"ph": "M", "pid": pid, "name": key, "args": {"name": name}}
    if tid is not None:
        ev["tid"] = tid
    return ev


def to_events(tracer: Tracer, include_wall: bool = False) -> list[dict]:
    """The ``traceEvents`` list for *tracer*."""
    events: list[dict] = [
        _meta(PID_SIM, None, "process_name", "simulated machine (cycles)"),
        _meta(PID_SIM, 1, "thread_name", "phases"),
        _meta(PID_SIM, 2, "thread_name", "blocks"),
    ]
    if include_wall:
        events += [
            _meta(PID_WALL, None, "process_name", "harness (wall clock)"),
            _meta(PID_WALL, 1, "thread_name", "spans"),
        ]

    # the compile stage: pass spans + transform-remark events on their
    # own ordinal-time track (one tick per pass application).
    comp_spans = [s for s in tracer.spans if s.cat == "pass"]
    comp_points = [p for p in tracer.points if p.cat == "pass"]
    if comp_spans or comp_points:
        events += [
            _meta(PID_COMPILE, None, "process_name",
                  "compile pipeline (ordinal)"),
            _meta(PID_COMPILE, 1, "thread_name", "passes"),
        ]
        for i, s in enumerate(comp_spans):
            ev = {"ph": "X", "name": s.name, "cat": s.cat,
                  "pid": PID_COMPILE, "tid": 1, "ts": i, "dur": 1,
                  "args": _args(s.args)}
            if s.phase is not None:
                ev["args"]["phase"] = s.phase
            events.append(ev)
        for i, p in enumerate(comp_points):
            events.append({"ph": "i", "name": p.name, "cat": p.cat,
                           "pid": PID_COMPILE, "tid": 1, "ts": i, "s": "t",
                           "args": _args(p.args)})

    for s in tracer.spans:
        if s.cat == "pass":
            continue  # exported above, on the ordinal compile track
        if s.domain == SIM:
            pid, tid, ts, dur = PID_SIM, 1, s.t0, s.dur
        elif include_wall:
            pid, tid = PID_WALL, 1
            ts, dur = s.t0 * 1e6, s.dur * 1e6
        else:
            continue
        ev = {"ph": "X", "name": s.name, "cat": s.cat, "pid": pid,
              "tid": tid, "ts": ts, "dur": dur, "args": _args(s.args)}
        if s.phase is not None:
            ev["args"]["phase"] = s.phase
        events.append(ev)

    # per-block spans on the machine's block row (SIM domain).
    for b in tracer.blocks:
        events.append({"ph": "X", "name": b.label, "cat": b.kind,
                       "pid": PID_SIM, "tid": 2, "ts": b.t_start,
                       "dur": b.cycles, "args": {"phase": b.phase}})

    # granted-vl counter track from the Vehave batches.
    for e in tracer.vector_instrs:
        if e.opcode == "vsetvl":
            events.append({"ph": "C", "name": "granted vl", "pid": PID_SIM,
                           "ts": e.t, "args": {"vl": e.vl}})

    if include_wall:
        for p in tracer.points:
            if p.domain != WALL or p.cat == "pass":
                continue
            events.append({"ph": "i", "name": p.name, "cat": p.cat,
                           "pid": PID_WALL, "tid": 1, "ts": p.t * 1e6,
                           "s": "t", "args": _args(p.args)})
        for c in tracer.counters:
            events.append({"ph": "C", "name": c.name, "pid": PID_WALL,
                           "ts": c.t * 1e6, "args": {"value": c.value}})

    events.extend(tracer.raw_events)
    return events


def dumps(tracer: Tracer, include_wall: bool = False,
          meta: Optional[dict] = None) -> str:
    """Serialize *tracer* as a Chrome trace JSON document.

    Key-sorted and without wall-clock data by default, so the same
    simulation always produces the same bytes.
    """
    doc = {
        "traceEvents": to_events(tracer, include_wall=include_wall),
        "displayTimeUnit": "ms",
        "otherData": {"exporter": "repro.obs.chrome",
                      **(meta or {})},
    }
    return json.dumps(doc, sort_keys=True, indent=None,
                      separators=(",", ":")) + "\n"


def dump(tracer: Tracer, path: str | Path, include_wall: bool = False,
         meta: Optional[dict] = None) -> Path:
    path = Path(path)
    path.write_text(dumps(tracer, include_wall=include_wall, meta=meta))
    return path


def loads(text: str) -> list[dict]:
    """Parse a Chrome trace document back to its ``traceEvents`` list."""
    doc = json.loads(text)
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        raise ValueError("not a Chrome trace_event document")
    events = doc["traceEvents"]
    if not isinstance(events, list):
        raise ValueError("traceEvents must be a list")
    return events


def load(path: str | Path) -> list[dict]:
    return loads(Path(path).read_text())


def phase_span_names(events: list[dict]) -> list[str]:
    """Names of the SIM-domain phase spans in an exported event list."""
    return [e["name"] for e in events
            if e.get("ph") == "X" and e.get("pid") == PID_SIM
            and e.get("tid") == 1]
