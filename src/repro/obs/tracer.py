"""The tracing spine: an Extrae-style span/event tracer.

One :class:`Tracer` threads through every layer of the stack:

* **spans** -- timed regions (``with tracer.span("phase6"): ...`` or the
  ambient module-level :func:`repro.obs.span`), in one of two clock
  domains: ``wall`` (seconds since the tracer's epoch, measured with
  ``time.perf_counter``) and ``sim`` (simulated machine cycles, stamped
  explicitly via :meth:`Tracer.span_at` by the cycle-accounting
  :class:`~repro.machine.cpu.Machine`);
* **point events** and **counter samples** -- instantaneous markers
  (executor progress, cache hits, retries);
* **instruction events** -- the Vehave-grade per-instruction stream from
  :class:`~repro.isa.emulator.VectorEmulator`: opcode, granted vector
  length, and lane occupancy;
* the **legacy hook interface** of the seed ``repro.trace`` module
  (``on_block`` / ``on_vector_instrs``), so the tracer plugs unchanged
  into :class:`~repro.machine.cpu.Machine` and feeds the Paraver
  exporter and the trace-analysis cross-checks.

Scoping is contextvar-based: :func:`use` installs a tracer for the
current context (and its threads' children via copy_context), and every
instrumented layer picks it up ambiently through :func:`current` /
:func:`active`.  When no tracer is installed -- the default -- the
ambient API degrades to a shared no-op whose cost is one contextvar read
and one attribute check, so instrumentation can stay in hot paths
permanently ("zero-cost when disabled").
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterator, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.trace.events import BlockEvent, VectorInstrEvent

#: clock domains a record can live in.
WALL = "wall"
SIM = "sim"


@dataclass(frozen=True)
class SpanRecord:
    """One closed span (timed region)."""

    name: str
    cat: str                 #: category: "phase", "ir", "run", "executor", ...
    domain: str              #: WALL (seconds) or SIM (cycles)
    t0: float
    t1: float
    phase: Optional[int] = None
    args: tuple = ()         #: sorted (key, value) pairs, hashable/JSON-safe

    @property
    def dur(self) -> float:
        return self.t1 - self.t0


@dataclass(frozen=True)
class PointEvent:
    """One instantaneous event."""

    name: str
    cat: str
    domain: str
    t: float
    args: tuple = ()


@dataclass(frozen=True)
class CounterSample:
    """One sample of a named counter series."""

    name: str
    domain: str
    t: float
    value: float


@dataclass(frozen=True)
class InstrEvent:
    """One executed vector instruction (the Vehave stream)."""

    opcode: str
    vl: int
    vl_max: int

    @property
    def occupancy(self) -> float:
        """Fraction of the machine's lanes this instruction filled."""
        return self.vl / self.vl_max if self.vl_max else 0.0


def _freeze_args(kwargs: dict[str, Any]) -> tuple:
    return tuple(sorted(kwargs.items()))


class _OpenSpan:
    """Context manager produced by :meth:`Tracer.span`."""

    __slots__ = ("tracer", "name", "cat", "phase", "args", "t0")

    def __init__(self, tracer: "Tracer", name: str, cat: str,
                 phase: Optional[int], args: tuple):
        self.tracer = tracer
        self.name = name
        self.cat = cat
        self.phase = phase
        self.args = args

    def __enter__(self) -> "_OpenSpan":
        self.t0 = time.perf_counter() - self.tracer.epoch
        return self

    def __exit__(self, *exc) -> None:
        self.tracer.spans.append(SpanRecord(
            name=self.name, cat=self.cat, domain=WALL, t0=self.t0,
            t1=time.perf_counter() - self.tracer.epoch,
            phase=self.phase, args=self.args))


class _NoopSpan:
    """Shared, allocation-free stand-in when tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc) -> None:
        return None


NOOP_SPAN = _NoopSpan()


@dataclass
class Tracer:
    """Collects spans, events, counters and instruction streams.

    Also implements the seed ``repro.trace.Tracer`` interface (``blocks``
    / ``vector_instrs`` lists and the ``on_block`` / ``on_vector_instrs``
    machine hooks), which it absorbed in the observability refactor; the
    Paraver exporter and trace analysis consume those fields unchanged.
    """

    blocks: list["BlockEvent"] = field(default_factory=list)
    vector_instrs: list["VectorInstrEvent"] = field(default_factory=list)
    enabled: bool = True
    spans: list[SpanRecord] = field(default_factory=list)
    points: list[PointEvent] = field(default_factory=list)
    counters: list[CounterSample] = field(default_factory=list)
    instrs: list[InstrEvent] = field(default_factory=list)
    #: raw Chrome trace_event dicts merged from per-worker trace files.
    raw_events: list[dict] = field(default_factory=list)
    #: wall-clock epoch; WALL-domain timestamps are relative to this.
    epoch: float = field(default_factory=time.perf_counter)

    # -- span / event / counter API ------------------------------------------

    def span(self, name: str, cat: str = "span",
             phase: Optional[int] = None, **args):
        """A wall-clock span as a context manager."""
        if not self.enabled:
            return NOOP_SPAN
        return _OpenSpan(self, name, cat, phase, _freeze_args(args))

    def span_at(self, name: str, cat: str, t0: float, t1: float,
                phase: Optional[int] = None, domain: str = SIM,
                **args) -> None:
        """Record an already-closed span with explicit timestamps.

        This is how the simulated machine stamps phase spans on the
        cycle clock (``domain=SIM``) -- deterministic across hosts,
        unlike wall time.
        """
        if not self.enabled:
            return
        self.spans.append(SpanRecord(name=name, cat=cat, domain=domain,
                                     t0=t0, t1=t1, phase=phase,
                                     args=_freeze_args(args)))

    def event(self, name: str, cat: str = "event", t: Optional[float] = None,
              domain: str = WALL, **args) -> None:
        """Record an instantaneous event (wall clock unless stamped)."""
        if not self.enabled:
            return
        if t is None:
            t = time.perf_counter() - self.epoch
        self.points.append(PointEvent(name=name, cat=cat, domain=domain,
                                      t=t, args=_freeze_args(args)))

    def counter(self, name: str, value: float, t: Optional[float] = None,
                domain: str = WALL) -> None:
        """Sample a named counter series."""
        if not self.enabled:
            return
        if t is None:
            t = time.perf_counter() - self.epoch
        self.counters.append(CounterSample(name=name, domain=domain,
                                           t=t, value=float(value)))

    def instr(self, opcode: str, vl: int, vl_max: int) -> None:
        """Record one executed vector instruction (the Vehave stream)."""
        if not self.enabled:
            return
        self.instrs.append(InstrEvent(opcode=opcode, vl=vl, vl_max=vl_max))

    def ingest(self, events: list[dict]) -> None:
        """Absorb raw Chrome trace_event dicts (merged worker traces)."""
        if not self.enabled:
            return
        self.raw_events.extend(events)

    # -- machine hook interface (seed trace.Tracer API) ----------------------

    def on_block(self, phase: int, label: str, kind: str,
                 t_start: float, cycles: float) -> None:
        if self.enabled:
            # deferred import: repro.trace re-exports this class, so a
            # top-level import would be circular.
            from repro.trace.events import BlockEvent

            self.blocks.append(BlockEvent(phase, label, kind, t_start, cycles))

    def on_vector_instrs(self, phase: int, t: float,
                         records: list[tuple[str, int, int]]) -> None:
        """records: (opcode, vl, dynamic count) batches."""
        if not self.enabled:
            return
        from repro.trace.events import VectorInstrEvent

        for opcode, vl, count in records:
            self.vector_instrs.append(VectorInstrEvent(phase, opcode, vl, count, t))

    # -- views ---------------------------------------------------------------

    def phases(self) -> list[int]:
        return sorted({b.phase for b in self.blocks})

    def phase_cycles(self, phase: int) -> float:
        return sum(b.cycles for b in self.blocks if b.phase == phase)

    def total_cycles(self) -> float:
        return sum(b.cycles for b in self.blocks)

    def phase_spans(self) -> list[SpanRecord]:
        """The SIM-domain spans stamped per executed phase kernel."""
        return [s for s in self.spans if s.domain == SIM and s.phase is not None]

    def vl_histogram(self, phase: Optional[int] = None) -> dict[int, int]:
        """AVL distribution {granted vl: dynamic vector instructions},
        aggregated from the Vehave-grade streams (machine batches and
        per-instruction emulator events)."""
        hist: dict[int, int] = {}
        for e in self.vector_instrs:
            if phase is not None and e.phase != phase:
                continue
            if e.opcode != "vsetvl":
                hist[e.vl] = hist.get(e.vl, 0) + e.count
        if phase is None:
            for i in self.instrs:
                if i.opcode != "vsetvl":
                    hist[i.vl] = hist.get(i.vl, 0) + 1
        return hist

    def clear(self) -> None:
        self.blocks.clear()
        self.vector_instrs.clear()
        self.spans.clear()
        self.points.clear()
        self.counters.clear()
        self.instrs.clear()
        self.raw_events.clear()


#: the ambient tracer slot; the default is a shared *disabled* tracer so
#: every layer can call ``active()`` / ``span()`` unconditionally.
NULL_TRACER = Tracer(enabled=False)
_CURRENT: ContextVar[Tracer] = ContextVar("repro_obs_tracer",
                                          default=NULL_TRACER)


def current() -> Tracer:
    """The tracer installed in this context (possibly disabled)."""
    return _CURRENT.get()


def active() -> Optional[Tracer]:
    """The installed tracer if tracing is on, else ``None`` -- the
    one-branch check hot paths use to stay zero-cost when disabled."""
    t = _CURRENT.get()
    return t if t.enabled else None


@contextmanager
def use(tracer: Tracer) -> Iterator[Tracer]:
    """Install *tracer* as the ambient tracer for this context."""
    token = _CURRENT.set(tracer)
    try:
        yield tracer
    finally:
        _CURRENT.reset(token)


def span(name: str, cat: str = "span", phase: Optional[int] = None, **args):
    """Ambient span: records into the installed tracer, no-op otherwise."""
    t = _CURRENT.get()
    if not t.enabled:
        return NOOP_SPAN
    return t.span(name, cat=cat, phase=phase, **args)


def event(name: str, cat: str = "event", **args) -> None:
    """Ambient instantaneous event."""
    t = _CURRENT.get()
    if t.enabled:
        t.event(name, cat=cat, **args)


def counter(name: str, value: float) -> None:
    """Ambient counter sample."""
    t = _CURRENT.get()
    if t.enabled:
        t.counter(name, value)
