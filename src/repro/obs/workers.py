"""Cross-process trace capture for the sweep executor.

A process pool breaks the contextvar scoping: workers run in their own
interpreters, so the coordinator's tracer never sees what happened
inside a simulation.  The bridge is file-based, like Extrae's per-rank
``.mpit`` files:

* the coordinator exports ``REPRO_TRACE_DIR`` before spawning workers;
* :class:`TracedWorker` wraps the pool's worker callable -- inside the
  worker it installs a fresh ambient tracer (which the simulated
  :class:`~repro.machine.cpu.Machine` picks up), runs the simulation,
  and dumps one Chrome-format trace file per run into the directory;
* after the pool drains, :func:`merge_worker_traces` ingests every
  per-worker file back into the coordinator's tracer, rewriting pids so
  each worker process gets its own row group in ``chrome://tracing``.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Callable

from repro.obs import chrome
from repro.obs.tracer import Tracer, use

#: environment variable carrying the per-worker trace directory.
TRACE_DIR_ENV = "REPRO_TRACE_DIR"

#: worker pids are remapped to this base + (order of first appearance),
#: keeping coordinator pids 1/2 (see repro.obs.chrome) distinct.
WORKER_PID_BASE = 100


class TracedWorker:
    """Picklable wrapper adding per-run trace capture to a worker.

    Transparent when ``REPRO_TRACE_DIR`` is unset: the wrapped worker is
    called directly and no tracer is installed, so payloads stay
    byte-identical to an untraced sweep.
    """

    def __init__(self, worker: Callable):
        self.worker = worker

    def __call__(self, cfg):
        trace_dir = os.environ.get(TRACE_DIR_ENV)
        if not trace_dir:
            return self.worker(cfg)
        tracer = Tracer()
        with use(tracer):
            with tracer.span(f"run {cfg.key()}", cat="run"):
                payload = self.worker(cfg)
        chrome.dump(tracer, trace_path(trace_dir, cfg.key()),
                    include_wall=True,
                    meta={"worker_pid": os.getpid(), "key": cfg.key()})
        return payload


def trace_path(trace_dir: str | os.PathLike, key: str) -> Path:
    """Per-run trace file location (pid-stamped: retries don't collide)."""
    return Path(trace_dir) / f"worker-{os.getpid()}-{key}.json"


def _merge_order(path: Path) -> tuple[str, str]:
    """Sort key for merging: the run's config key first, pid second.

    Filenames are ``worker-<pid>-<key>.json``; sorting raw filenames
    would order by pid, and worker pids differ run to run — the merged
    event order (and therefore the remapped pids) would too.  Keying by
    the config key makes two identical sweeps merge identically
    regardless of which OS pids the pool happened to get.
    """
    parts = path.name[:-len(".json")].split("-", 2)
    if len(parts) == 3:
        return (parts[2], parts[1])
    return (path.name, "")  # foreign filename: stable fallback


def merge_worker_traces(tracer: Tracer, trace_dir: str | os.PathLike) -> int:
    """Ingest every per-worker trace file into *tracer*.

    Worker pids are remapped to stable small ids in *config-key* order
    (see :func:`_merge_order`) so merged traces — including the pid
    remap itself — are byte-deterministic across identical sweeps.
    Returns the number of files merged; unreadable files are skipped (a
    lost trace must never fail the sweep that produced it).
    """
    merged = 0
    next_pid = WORKER_PID_BASE
    for path in sorted(Path(trace_dir).glob("worker-*.json"),
                       key=_merge_order):
        try:
            events = chrome.load(path)
        except (OSError, ValueError):
            continue
        # fresh map per file: every run file keeps its own row group,
        # even though each worker wrote pid 1/2 locally.
        pid_map: dict[int, int] = {}
        for ev in events:
            pid = ev.get("pid")
            if isinstance(pid, int):
                if pid not in pid_map:
                    pid_map[pid] = next_pid
                    next_pid += 1
                ev = {**ev, "pid": pid_map[pid]}
            tracer.raw_events.append(ev)
        merged += 1
    return merged
