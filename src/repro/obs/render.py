"""Terminal rendering of traces: phase timeline and vl histograms.

A text-mode substitute for the Paraver gradient views the paper reads:
``render_timeline`` shows which phase dominates each slice of the run,
``render_vl_hist`` shows the AVL distribution -- the artifact that makes
the Vitruvius mod-40 FSM effect visible straight from a sweep.
"""

from __future__ import annotations

from typing import Mapping, Optional

from repro.obs.tracer import Tracer
from repro.trace.analysis import timeline

#: glyph per phase id for the timeline strip.
# assembly phases 1-8 render as digits; solver phases 9-12
# (spmv, dot, axpy, precond) as s/d/a/p.
_PHASE_GLYPHS = "·12345678sdap"


def render_timeline(tracer: Tracer, buckets: int = 64) -> str:
    """One-line dominant-phase timeline plus a legend."""
    tl = timeline(tracer, buckets=buckets)
    if not tl:
        return "(empty trace)"
    strip = "".join(
        _PHASE_GLYPHS[p] if 0 < p < len(_PHASE_GLYPHS) else "?"
        for _, p in tl)
    total = tracer.total_cycles()
    return (f"phase timeline ({total:,.0f} cycles, {len(tl)} buckets)\n"
            f"  |{strip}|\n"
            f"  legend: glyph = dominant phase in that time slice "
            f"(1-8 assembly, s/d/a/p = solver spmv/dot/axpy/precond)")


def mod40_fraction(hist: Mapping[int, float]) -> float:
    """Fraction of dynamic vector instructions whose granted vl is a
    multiple of 40 (the Vitruvius FSM's fast lengths, paper §2.3)."""
    total = sum(hist.values())
    if not total:
        return 0.0
    return sum(c for vl, c in hist.items() if vl % 40 == 0) / total


def render_vl_hist(hist: Mapping[int, float], title: str = "vl histogram",
                   width: int = 40, top: Optional[int] = None) -> str:
    """ASCII bar chart of a {granted vl: dynamic count} histogram."""
    if not hist:
        return f"{title}: (no vector instructions)"
    items = sorted(hist.items())
    if top is not None and len(items) > top:
        items = sorted(items, key=lambda kv: -kv[1])[:top]
        items.sort()
    peak = max(c for _, c in items)
    total = sum(hist.values())
    lines = [f"{title} ({total:,.0f} vector instructions, "
             f"{100 * mod40_fraction(hist):.0f}% at vl % 40 == 0)"]
    for vl, count in items:
        bar = "#" * max(1, int(round(width * count / peak)))
        tag = " *" if vl % 40 == 0 else ""
        lines.append(f"  vl {vl:>4} | {bar} {count:,.0f}{tag}")
    lines.append("  (* = multiple of 40: fastest through the Vitruvius FSM)")
    return "\n".join(lines)


def render_phase_vl_hists(per_phase: Mapping[int, Mapping[int, float]],
                          width: int = 30) -> str:
    """Per-phase AVL distributions, one block per phase."""
    blocks = []
    for phase in sorted(per_phase):
        hist = per_phase[phase]
        if not hist:
            continue
        blocks.append(render_vl_hist(hist, title=f"phase {phase}",
                                     width=width))
    return "\n".join(blocks) if blocks else "(no vector instructions)"
