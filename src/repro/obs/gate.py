"""Performance-regression gate over per-phase cycle counts.

``repro bench`` stamps every run's per-phase cycle counts into its JSON
report; this module diffs a fresh report against a committed baseline
(``BENCH_report.json``) and reports every phase whose cycle count moved
by more than a threshold.  Because the timing model is deterministic,
*any* drift is a model change: the gate is how future perf PRs prove a
speed-up (or get caught regressing one) -- the same role the paper's
per-phase cycle tables play in the co-design loop.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Mapping

from repro.metrics.counters import RunCounters

#: default relative tolerance: a phase moving >= 10% fails the gate.
DEFAULT_THRESHOLD = 0.10


@dataclass(frozen=True)
class Breach:
    """One per-phase cycle count outside the gate's tolerance."""

    key: str          #: run cache key
    phase: int
    baseline: float
    current: float

    @property
    def ratio(self) -> float:
        return self.current / self.baseline if self.baseline else float("inf")

    def describe(self) -> str:
        direction = "regression" if self.current > self.baseline else "speed-up"
        return (f"{self.key} phase {self.phase}: {self.baseline:,.0f} -> "
                f"{self.current:,.0f} cycles ({self.ratio:.3f}x, {direction})")


def phase_cycles_payload(runs: Mapping[str, RunCounters]) -> dict:
    """The ``phase_cycles`` section of a bench report:
    ``{run key: {phase id: cycles_total}}``, JSON-ready."""
    return {
        key: {str(pid): run.phases[pid].cycles_total
              for pid in run.phase_ids()}
        for key, run in sorted(runs.items())
    }


def compare_phase_cycles(current: Mapping, baseline: Mapping,
                         threshold: float = DEFAULT_THRESHOLD) -> list[Breach]:
    """Diff two ``phase_cycles`` sections; returns the breaches.

    Only keys present in both reports are compared (a baseline recorded
    on a different profile simply gates fewer runs); a phase present on
    one side only is a breach -- phases must not appear or vanish
    silently.
    """
    breaches: list[Breach] = []
    for key in sorted(set(current) & set(baseline)):
        cur, base = current[key], baseline[key]
        for pid in sorted(set(cur) | set(base), key=int):
            c = float(cur.get(pid, 0.0))
            b = float(base.get(pid, 0.0))
            if pid not in cur or pid not in base:
                breaches.append(Breach(key=key, phase=int(pid),
                                       baseline=b, current=c))
                continue
            if b == 0.0:
                if c != 0.0:
                    breaches.append(Breach(key=key, phase=int(pid),
                                           baseline=b, current=c))
                continue
            if abs(c - b) / b > threshold:
                breaches.append(Breach(key=key, phase=int(pid),
                                       baseline=b, current=c))
    return breaches


def check_report(current: Mapping, baseline_path: str | Path,
                 threshold: float = DEFAULT_THRESHOLD) -> list[Breach]:
    """Gate a fresh bench report payload against a baseline file.

    Raises ``ValueError`` when the baseline is unusable (missing,
    malformed, no ``phase_cycles`` section, or recorded on a different
    mesh) -- a broken gate must fail loudly, not pass vacuously.
    """
    path = Path(baseline_path)
    try:
        baseline = json.loads(path.read_text())
    except FileNotFoundError:
        raise ValueError(f"baseline {path} does not exist") from None
    except json.JSONDecodeError as exc:
        raise ValueError(f"baseline {path} is not valid JSON: {exc}") from None
    if not isinstance(baseline, dict) or "phase_cycles" not in baseline:
        raise ValueError(
            f"baseline {path} has no phase_cycles section "
            f"(regenerate it with a current 'repro bench')")
    if baseline.get("mesh") != current.get("mesh"):
        raise ValueError(
            f"baseline mesh {baseline.get('mesh')} != current mesh "
            f"{current.get('mesh')}: re-run bench with --mesh matching "
            f"the baseline")
    common = set(current["phase_cycles"]) & set(baseline["phase_cycles"])
    if not common:
        raise ValueError(
            "baseline and current reports share no run keys; nothing "
            "would be gated (profile mismatch?)")
    return compare_phase_cycles(current["phase_cycles"],
                                baseline["phase_cycles"],
                                threshold=threshold)
