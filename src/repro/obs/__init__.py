"""Unified observability layer: the tracing spine of the reproduction.

The paper's co-design loop runs on instrumentation -- Extrae phase
events, PAPI counters, Vehave per-instruction traces, Paraver timelines.
This package is that toolchain for the simulated stack, one tracer
threaded through every layer:

* :mod:`repro.obs.tracer` -- the contextvar-scoped span/event/counter
  :class:`Tracer` (wall + sim clocks, zero-cost when disabled) that
  absorbed the seed ``repro.trace`` tracer;
* :mod:`repro.obs.chrome` -- Chrome ``trace_event`` export for
  ``chrome://tracing`` flamegraphs;
* :mod:`repro.obs.render` -- terminal timeline and vl-histogram views;
* :mod:`repro.obs.workers` -- per-worker trace files merged across the
  executor's process pool;
* :mod:`repro.obs.gate` -- the ``repro bench --baseline`` per-phase
  cycle regression gate;
* :mod:`repro.obs.metrics` -- the aggregate view: a lock-safe registry
  of counters/gauges/histograms with its own ambient slot
  (``metrics.use`` / ``metrics.active``), published into by the sweep
  service and executor (see :mod:`repro.service.telemetry`).

The Paraver exporter and trace analysis stay in :mod:`repro.trace`
(they operate on the same tracer).

Typical use::

    from repro import obs

    tracer = obs.Tracer()
    with obs.use(tracer):                   # ambient for this context
        counters = app.run_timed(params)    # machine records phase spans
    obs.chrome.dump(tracer, "t.json")       # open in chrome://tracing
"""

from repro.obs import chrome, gate, metrics, render, workers
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import (
    NULL_TRACER,
    CounterSample,
    InstrEvent,
    PointEvent,
    SpanRecord,
    Tracer,
    active,
    counter,
    current,
    event,
    span,
    use,
)

__all__ = [
    "CounterSample",
    "InstrEvent",
    "MetricsRegistry",
    "NULL_TRACER",
    "PointEvent",
    "SpanRecord",
    "Tracer",
    "active",
    "chrome",
    "counter",
    "current",
    "event",
    "gate",
    "metrics",
    "render",
    "span",
    "use",
    "workers",
]
