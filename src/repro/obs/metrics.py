"""Lock-safe in-process metrics registry: the aggregate view of the
event stream.

The tracing spine (:mod:`repro.obs.tracer`) answers *when* — a timeline
of spans.  This module answers *how much* — monotonic counters, gauges,
and fixed-bucket histograms that the sweep service, admission
controller, circuit breaker, result store, and executor all publish
into.  Production HPC tooling treats these as two views of one event
stream (Paraver's trace-then-aggregate model); here the same
instrumentation points feed both.

Design rules, all load-bearing:

* **determinism** — bucket bounds are fixed at histogram creation and
  :meth:`MetricsRegistry.snapshot` emits key-sorted series, so two
  identical sessions produce identical snapshots (modulo wall-clock
  sums, which callers wanting byte-stability must exclude — see
  ``sum`` handling in :meth:`Histogram.to_dict`);
* **lock safety** — one registry lock guards every mutation and the
  snapshot, so a snapshot taken mid-flood is a consistent cut, never a
  torn read;
* **zero-cost when disabled** — like the tracer, the ambient slot
  (:func:`use` / :func:`active`) defaults to ``None``; hot paths pay one
  contextvar read and one ``is None`` branch, allocate nothing, and the
  PR 3 byte-identity tests extend to cover this registry.

Quantiles are *bucket-bound estimates*: :meth:`Histogram.quantile`
returns the upper bound of the first bucket whose cumulative count
covers the requested fraction.  That is deterministic given the bucket
counts — exactly what the per-tenant SLO verdicts need — and honest
about its resolution (it never invents sub-bucket precision).
"""

from __future__ import annotations

import math
import threading
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Iterator, Optional, Sequence

#: default histogram bucket upper bounds (seconds): coarse on purpose,
#: so identical sessions land in identical buckets despite wall jitter.
DEFAULT_BUCKETS: tuple[float, ...] = (0.5, 2.0, 10.0, 60.0, 600.0)

#: queue-wait bounds: an idle service dispatches well inside the first
#: bucket, so p50/p95 estimates are stable run to run.
QUEUE_WAIT_BUCKETS: tuple[float, ...] = (0.5, 2.0, 10.0, 60.0)

#: job wall-time bounds (whole sweeps, not single runs).
JOB_WALL_BUCKETS: tuple[float, ...] = (1.0, 10.0, 60.0, 600.0)


def series_key(name: str, labels: dict) -> str:
    """Canonical series identity: ``name{k=v,...}`` with sorted keys."""
    if not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


class Counter:
    """Monotonic counter; negative increments are a programming error."""

    __slots__ = ("_lock", "value")

    def __init__(self, lock: threading.Lock):
        self._lock = lock
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter increment must be >= 0, got {amount}")
        with self._lock:
            self.value += amount


class Gauge:
    """A value that goes up and down (queue depth, token level)."""

    __slots__ = ("_lock", "value")

    def __init__(self, lock: threading.Lock):
        self._lock = lock
        self.value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value -= amount


class Histogram:
    """Fixed-bucket histogram with exact, deterministic bucket bounds.

    ``bounds`` are upper bounds of the finite buckets; one implicit
    ``+inf`` bucket catches the rest.  Counts, total count and sum are
    tracked; quantiles are bucket-bound estimates (see module docstring).
    """

    __slots__ = ("_lock", "bounds", "counts", "count", "sum")

    def __init__(self, lock: threading.Lock,
                 bounds: Sequence[float] = DEFAULT_BUCKETS):
        bounds = tuple(float(b) for b in bounds)
        if not bounds or list(bounds) != sorted(set(bounds)):
            raise ValueError(f"bucket bounds must be strictly increasing "
                             f"and non-empty, got {bounds}")
        self._lock = lock
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)  # +1: the +inf bucket
        self.count = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        value = float(value)
        if math.isnan(value):
            raise ValueError("cannot observe NaN")
        with self._lock:
            for i, bound in enumerate(self.bounds):
                if value <= bound:
                    self.counts[i] += 1
                    break
            else:
                self.counts[-1] += 1
            self.count += 1
            self.sum += value

    def quantile(self, q: float) -> Optional[float]:
        """Upper bound of the bucket covering quantile *q* (``None`` when
        empty; ``inf`` when it lands in the overflow bucket)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        with self._lock:
            if self.count == 0:
                return None
            need = q * self.count
            cum = 0
            for i, bound in enumerate(self.bounds):
                cum += self.counts[i]
                if cum >= need:
                    return bound
            return math.inf

    def to_dict(self) -> dict:
        """JSON form.  ``sum`` is rounded to microseconds — it is a
        wall-clock aggregate and inherently non-deterministic; callers
        needing byte-stable documents drop it (see
        :func:`repro.service.telemetry.stable_status`)."""
        with self._lock:
            return {
                "buckets": [[b, n] for b, n in zip(self.bounds, self.counts)]
                           + [["+inf", self.counts[-1]]],
                "count": self.count,
                "sum": round(self.sum, 6),
            }


class MetricsRegistry:
    """Registry of named, labelled instruments behind one lock.

    ``counter`` / ``gauge`` / ``histogram`` get-or-create: the first call
    fixes the instrument's identity (and, for histograms, its bucket
    bounds — a re-registration with different bounds raises, because two
    writers silently disagreeing on buckets is how dashboards lie).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    # -- instruments -------------------------------------------------------

    def counter(self, name: str, **labels) -> Counter:
        key = series_key(name, labels)
        with self._lock:
            inst = self._counters.get(key)
            if inst is None:
                inst = self._counters[key] = Counter(self._lock)
        return inst

    def gauge(self, name: str, **labels) -> Gauge:
        key = series_key(name, labels)
        with self._lock:
            inst = self._gauges.get(key)
            if inst is None:
                inst = self._gauges[key] = Gauge(self._lock)
        return inst

    def histogram(self, name: str,
                  bounds: Sequence[float] = DEFAULT_BUCKETS,
                  **labels) -> Histogram:
        key = series_key(name, labels)
        bounds = tuple(float(b) for b in bounds)
        with self._lock:
            inst = self._histograms.get(key)
            if inst is None:
                inst = self._histograms[key] = Histogram(
                    threading.Lock(), bounds)
            elif inst.bounds != bounds:
                raise ValueError(
                    f"histogram {key!r} already registered with bounds "
                    f"{inst.bounds}, got {bounds}")
        return inst

    # -- snapshot ----------------------------------------------------------

    def snapshot(self) -> dict:
        """Key-sorted consistent cut of every series (JSON-able)."""
        with self._lock:
            counters = {k: self._counters[k].value
                        for k in sorted(self._counters)}
            gauges = {k: self._gauges[k].value for k in sorted(self._gauges)}
            hist_items = sorted(self._histograms.items())
        # histogram serialization takes each histogram's own lock.
        return {
            "counters": counters,
            "gauges": gauges,
            "histograms": {k: h.to_dict() for k, h in hist_items},
        }

    def counter_value(self, name: str, **labels) -> float:
        with self._lock:
            inst = self._counters.get(series_key(name, labels))
            return inst.value if inst is not None else 0.0


#: the ambient registry slot; ``None`` (the default) means "metrics
#: disabled" and costs hot paths one contextvar read to find out.
_CURRENT: ContextVar[Optional[MetricsRegistry]] = ContextVar(
    "repro_obs_metrics", default=None)


def active() -> Optional[MetricsRegistry]:
    """The installed registry, or ``None`` when metrics are disabled."""
    return _CURRENT.get()


@contextmanager
def use(registry: MetricsRegistry) -> Iterator[MetricsRegistry]:
    """Install *registry* as the ambient metrics sink for this context."""
    token = _CURRENT.set(registry)
    try:
        yield registry
    finally:
        _CURRENT.reset(token)
