"""Paraver trace export / import (``.prv`` + ``.pcf`` + ``.row``).

The BSC workflow visualizes both Extrae traces and re-arranged Vehave
traces in Paraver.  This module writes the simulator's trace in a
Paraver-flavoured text format and parses it back, so traces can be
stored, diffed and post-processed outside the simulator; it also writes
the ``.pcf`` (semantic config: state and event names) and ``.row``
(row labels) companions a real Paraver load expects.

Format (one record per line, ``:``-separated like ``.prv``):

* header: ``#Paraver (repro):<total_cycles>:1:1:1``
* state record (block): ``1:1:1:1:<t_start>:<t_end>:<phase>:<kind>:<label>``
* event record (vector instr batch):
  ``2:1:1:1:<t>:<opcode>:<vl>:<count>:<phase>``

String fields (kind, label, opcode) are percent-escaped at write time
-- ``%`` -> ``%25``, ``:`` -> ``%3A``, newline -> ``%0A`` -- so a label
containing the field separator round-trips instead of corrupting the
record (the seed writer dropped such payloads on ``loads``).

Compatibility caveats: timestamps are simulated cycles (not ns), there
is a single application/task/thread, and the state/event encodings are
repro-specific -- Paraver itself opens the files, but BSC cfgs written
for Extrae traces won't apply directly.
"""

from __future__ import annotations

from pathlib import Path

from repro.trace.events import BlockEvent, VectorInstrEvent
from repro.trace.tracer import Tracer

HEADER_PREFIX = "#Paraver (repro)"
STATE_RECORD = "1"
EVENT_RECORD = "2"

#: paraver event-type id we emit vector-instruction events under (.pcf).
VECTOR_EVENT_TYPE = 77000001


def escape_field(text: str) -> str:
    """Percent-escape a string field so it survives ``:`` splitting."""
    return (text.replace("%", "%25").replace(":", "%3A")
            .replace("\n", "%0A").replace("\r", "%0D"))


def unescape_field(text: str) -> str:
    """Inverse of :func:`escape_field`."""
    return (text.replace("%0D", "\r").replace("%0A", "\n")
            .replace("%3A", ":").replace("%25", "%"))


def dumps(tracer: Tracer) -> str:
    """Serialize a trace to the Paraver-like text format."""
    total = tracer.total_cycles()
    lines = [f"{HEADER_PREFIX}:{total:.0f}:1:1:1"]
    for b in tracer.blocks:
        lines.append(
            f"{STATE_RECORD}:1:1:1:{b.t_start:.0f}:{b.t_end:.0f}:{b.phase}"
            f":{escape_field(b.kind)}:{escape_field(b.label)}")
    for e in tracer.vector_instrs:
        lines.append(
            f"{EVENT_RECORD}:1:1:1:{e.t:.0f}:{escape_field(e.opcode)}"
            f":{e.vl}:{e.count}:{e.phase}")
    return "\n".join(lines) + "\n"


def dump(tracer: Tracer, path: str | Path, with_config: bool = False) -> None:
    """Write the ``.prv`` file; with ``with_config=True`` also write the
    ``.pcf`` / ``.row`` companions next to it."""
    path = Path(path)
    path.write_text(dumps(tracer))
    if with_config:
        path.with_suffix(".pcf").write_text(dumps_pcf(tracer))
        path.with_suffix(".row").write_text(dumps_row())


def loads(text: str) -> Tracer:
    """Parse a trace back into a :class:`Tracer`."""
    tracer = Tracer()
    lines = text.strip().splitlines()
    if not lines or not lines[0].startswith(HEADER_PREFIX):
        raise ValueError("not a repro Paraver trace (bad header)")
    for line in lines[1:]:
        if not line.strip():
            continue
        parts = line.split(":")
        if parts[0] == STATE_RECORD:
            if len(parts) != 9:
                raise ValueError(f"malformed state record: {line!r}")
            _, _, _, _, t0, t1, phase, kind, label = parts
            tracer.blocks.append(BlockEvent(
                phase=int(phase), label=unescape_field(label),
                kind=unescape_field(kind),
                t_start=float(t0), cycles=float(t1) - float(t0)))
        elif parts[0] == EVENT_RECORD:
            if len(parts) != 9:
                raise ValueError(f"malformed event record: {line!r}")
            _, _, _, _, t, opcode, vl, count, phase = parts
            tracer.vector_instrs.append(VectorInstrEvent(
                phase=int(phase), opcode=unescape_field(opcode), vl=int(vl),
                count=int(count), t=float(t)))
        else:
            raise ValueError(f"unknown record type {parts[0]!r}")
    return tracer


def load(path: str | Path) -> Tracer:
    return loads(Path(path).read_text())


# ---------------------------------------------------------------------------
# .pcf / .row companions
# ---------------------------------------------------------------------------


def dumps_pcf(tracer: Tracer) -> str:
    """The semantic config: phase state names + vector-event values."""
    from repro.cfd.phases import PHASE_NAMES
    from repro.cfd.solver_phases import SOLVER_PHASE_NAMES

    names = {**PHASE_NAMES, **SOLVER_PHASE_NAMES}
    lines = [
        "DEFAULT_OPTIONS", "", "LEVEL               THREAD",
        "UNITS               CYCLES", "", "STATES",
        "0    Idle",
    ]
    for pid in sorted({b.phase for b in tracer.blocks} | set(names)):
        name = names.get(pid, f"phase {pid}")
        lines.append(f"{pid}    phase {pid}: {name}")
    opcodes = sorted({e.opcode for e in tracer.vector_instrs})
    lines += ["", "EVENT_TYPE",
              f"0    {VECTOR_EVENT_TYPE}    Vector instruction (opcode)"]
    if opcodes:
        lines.append("VALUES")
        for i, opcode in enumerate(opcodes, start=1):
            lines.append(f"{i}      {opcode}")
    return "\n".join(lines) + "\n"


def dumps_row() -> str:
    """Row labels for the single simulated application/task/thread."""
    return ("LEVEL CPU SIZE 1\n"
            "CPU 1\n\n"
            "LEVEL NODE SIZE 1\n"
            "simulated-machine\n\n"
            "LEVEL THREAD SIZE 1\n"
            "THREAD 1.1.1\n")
