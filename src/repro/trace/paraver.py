"""Paraver-like trace export / import.

The BSC workflow visualizes both Extrae traces and re-arranged Vehave
traces in Paraver.  This module writes the simulator's trace in a
Paraver-flavoured text format and parses it back, so traces can be
stored, diffed and post-processed outside the simulator.

Format (one record per line, ``:``-separated like ``.prv``):

* header: ``#Paraver (repro):<total_cycles>:1:1:1``
* state record (block): ``1:1:1:1:<t_start>:<t_end>:<phase>``
* event record (vector instr batch):
  ``2:1:1:1:<t>:<EVT_OPCODE>:<opcode>:<vl>:<count>:<phase>``
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable

from repro.trace.events import BlockEvent, VectorInstrEvent
from repro.trace.tracer import Tracer

HEADER_PREFIX = "#Paraver (repro)"
STATE_RECORD = "1"
EVENT_RECORD = "2"


def dumps(tracer: Tracer) -> str:
    """Serialize a trace to the Paraver-like text format."""
    total = tracer.total_cycles()
    lines = [f"{HEADER_PREFIX}:{total:.0f}:1:1:1"]
    for b in tracer.blocks:
        lines.append(
            f"{STATE_RECORD}:1:1:1:{b.t_start:.0f}:{b.t_end:.0f}:{b.phase}:{b.kind}:{b.label}")
    for e in tracer.vector_instrs:
        lines.append(
            f"{EVENT_RECORD}:1:1:1:{e.t:.0f}:{e.opcode}:{e.vl}:{e.count}:{e.phase}")
    return "\n".join(lines) + "\n"


def dump(tracer: Tracer, path: str | Path) -> None:
    Path(path).write_text(dumps(tracer))


def loads(text: str) -> Tracer:
    """Parse a trace back into a :class:`Tracer`."""
    tracer = Tracer()
    lines = text.strip().splitlines()
    if not lines or not lines[0].startswith(HEADER_PREFIX):
        raise ValueError("not a repro Paraver trace (bad header)")
    for line in lines[1:]:
        if not line.strip():
            continue
        parts = line.split(":")
        if parts[0] == STATE_RECORD:
            _, _, _, _, t0, t1, phase, kind, label = parts
            tracer.blocks.append(BlockEvent(
                phase=int(phase), label=label, kind=kind,
                t_start=float(t0), cycles=float(t1) - float(t0)))
        elif parts[0] == EVENT_RECORD:
            _, _, _, _, t, opcode, vl, count, phase = parts
            tracer.vector_instrs.append(VectorInstrEvent(
                phase=int(phase), opcode=opcode, vl=int(vl),
                count=int(count), t=float(t)))
        else:
            raise ValueError(f"unknown record type {parts[0]!r}")
    return tracer


def load(path: str | Path) -> Tracer:
    return loads(Path(path).read_text())
