"""Trace analysis: derive the §2.2 metrics from trace events.

This is the second, independent path to the paper's numbers: instead of
reading hardware counters, aggregate the (Extrae-like) block events and
(Vehave-like) vector-instruction events.  The test suite checks both
paths agree -- the same sanity the authors get from combining tools.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.isa.hierarchy import HierarchyCounts
from repro.isa.instructions import OPCODES
from repro.trace.tracer import Tracer


@dataclass(frozen=True)
class PhaseTraceStats:
    """Per-phase aggregates computed purely from trace events."""

    phase: int
    cycles: float
    vector_instrs: float
    vl_sum: float
    hierarchy: HierarchyCounts

    @property
    def avl(self) -> float:
        return self.vl_sum / self.vector_instrs if self.vector_instrs else 0.0


def phase_stats(tracer: Tracer) -> dict[int, PhaseTraceStats]:
    """Aggregate a trace into per-phase statistics."""
    cycles: Counter = Counter()
    for b in tracer.blocks:
        cycles[b.phase] += b.cycles
    vec: dict[int, float] = Counter()
    vl_sum: dict[int, float] = Counter()
    hier: dict[int, HierarchyCounts] = {}
    for e in tracer.vector_instrs:
        h = hier.setdefault(e.phase, HierarchyCounts())
        h.add(OPCODES[e.opcode], e.count)
        if OPCODES[e.opcode].is_vector:
            vec[e.phase] += e.count
            vl_sum[e.phase] += e.vl * e.count
    phases = sorted(set(cycles) | set(vec))
    return {
        p: PhaseTraceStats(
            phase=p,
            cycles=float(cycles.get(p, 0.0)),
            vector_instrs=float(vec.get(p, 0.0)),
            vl_sum=float(vl_sum.get(p, 0.0)),
            hierarchy=hier.get(p, HierarchyCounts()),
        )
        for p in phases
    }


def timeline(tracer: Tracer, buckets: int = 40) -> list[tuple[float, int]]:
    """Coarse phase timeline: dominant phase per time bucket.

    A text-mode substitute for a Paraver phase-gradient view; returns
    (bucket start time, dominant phase) pairs.
    """
    total = tracer.total_cycles()
    if total <= 0 or not tracer.blocks:
        return []
    width = total / buckets
    out = []
    for i in range(buckets):
        lo, hi = i * width, (i + 1) * width
        weights: Counter = Counter()
        for b in tracer.blocks:
            overlap = min(hi, b.t_end) - max(lo, b.t_start)
            if overlap > 0:
                weights[b.phase] += overlap
        if weights:
            out.append((lo, weights.most_common(1)[0][0]))
    return out
