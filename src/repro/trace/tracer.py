"""Extrae-like execution tracer.

A :class:`Tracer` attaches to a :class:`repro.machine.cpu.Machine` and
records every executed block as a timed :class:`BlockEvent`, plus every
vector instruction batch as a :class:`VectorInstrEvent` (the Vehave
view).  The trace can then be exported to the Paraver-like text format
(:mod:`repro.trace.paraver`) or analyzed directly
(:mod:`repro.trace.analysis`); the analysis results are checked against
the hardware counters in the test suite, the same cross-validation the
paper's authors rely on when combining Extrae and Vehave data.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.trace.events import BlockEvent, VectorInstrEvent


@dataclass
class Tracer:
    """Collects block and vector-instruction events."""

    blocks: list[BlockEvent] = field(default_factory=list)
    vector_instrs: list[VectorInstrEvent] = field(default_factory=list)
    enabled: bool = True

    # -- Machine hook interface ------------------------------------------

    def on_block(self, phase: int, label: str, kind: str,
                 t_start: float, cycles: float) -> None:
        if self.enabled:
            self.blocks.append(BlockEvent(phase, label, kind, t_start, cycles))

    def on_vector_instrs(self, phase: int, t: float,
                         records: list[tuple[str, int, int]]) -> None:
        """records: (opcode, vl, dynamic count) batches."""
        if not self.enabled:
            return
        for opcode, vl, count in records:
            self.vector_instrs.append(VectorInstrEvent(phase, opcode, vl, count, t))

    # -- views ---------------------------------------------------------------

    def phases(self) -> list[int]:
        return sorted({b.phase for b in self.blocks})

    def phase_cycles(self, phase: int) -> float:
        return sum(b.cycles for b in self.blocks if b.phase == phase)

    def total_cycles(self) -> float:
        return sum(b.cycles for b in self.blocks)

    def clear(self) -> None:
        self.blocks.clear()
        self.vector_instrs.clear()
