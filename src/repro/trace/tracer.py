"""Extrae-like execution tracer (absorbed into :mod:`repro.obs`).

The seed block/vector-instruction tracer grew into the unified
observability spine: :class:`repro.obs.tracer.Tracer` carries the
original machine-hook interface (``on_block`` / ``on_vector_instrs``,
the ``blocks`` / ``vector_instrs`` event lists consumed by
:mod:`repro.trace.paraver` and :mod:`repro.trace.analysis`) *plus* the
span/event/counter API, contextvar scoping, and the Vehave-grade
per-instruction stream.  This module re-exports it so existing imports
(``from repro.trace import Tracer``) keep working.
"""

from __future__ import annotations

from repro.obs.tracer import Tracer

__all__ = ["Tracer"]
