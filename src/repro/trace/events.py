"""Trace event records.

Two event families mirror the paper's tooling:

* :class:`BlockEvent` -- what Extrae-style instrumentation sees: a timed
  region (block) of one phase with its cycle cost;
* :class:`VectorInstrEvent` -- what the Vehave emulator records: every
  vector instruction with its opcode and granted vector length (batched
  by repeat count, since homogeneous repeats carry no extra
  information).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa.instructions import OPCODES, InstrSpec


@dataclass(frozen=True)
class BlockEvent:
    """One executed block (timed region) of the compiled program."""

    phase: int
    label: str
    kind: str          # 'scalar' | 'vector'
    t_start: float     # cycle timestamp at block entry
    cycles: float

    @property
    def t_end(self) -> float:
        return self.t_start + self.cycles


@dataclass(frozen=True)
class VectorInstrEvent:
    """A batch of identical dynamic vector instructions."""

    phase: int
    opcode: str
    vl: int
    count: int
    t: float           # cycle timestamp of the issuing block

    @property
    def spec(self) -> InstrSpec:
        return OPCODES[self.opcode]

    @property
    def elements(self) -> int:
        return self.vl * self.count
