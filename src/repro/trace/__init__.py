"""Tracing toolchain analogues: Extrae-like tracer, Vehave-like vector
trace, Paraver-like export, and trace-based analysis."""

from repro.trace.events import BlockEvent, VectorInstrEvent
from repro.trace.tracer import Tracer
from repro.trace.analysis import PhaseTraceStats, phase_stats, timeline
from repro.trace import paraver

__all__ = [
    "BlockEvent",
    "VectorInstrEvent",
    "Tracer",
    "PhaseTraceStats",
    "phase_stats",
    "timeline",
    "paraver",
]
