"""Instruction model for the simulated vector ISA.

The simulated ISA follows the structure of the RISC-V vector extension
(RVV 0.7.1) as used by the paper's RISC-V VEC prototype, but is kept
architecture-neutral so the same compiled programs run on the NEC
SX-Aurora and Intel AVX-512 machine models (the RVV vector-length-agnostic
programming model makes this natural: the binary asks the machine for a
vector length with ``vsetvl`` and the machine answers with at most its
``vl_max``).

Instructions are classified following the paper's Figure 1 hierarchy::

    instructions
    ├── scalar
    ├── vector configuration        (vsetvl)
    └── vector
        ├── arithmetic              (vfadd, vfmul, vfmadd, ...)
        ├── memory                  (unit-stride / strided / indexed)
        └── control lane            (moves, slides, sign extensions)

Only descriptors live here; timing is the machine model's job
(:mod:`repro.machine`), and counting/classification helpers are in
:mod:`repro.isa.hierarchy`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional


class InstrClass(enum.Enum):
    """Top level of the Figure-1 instruction hierarchy."""

    SCALAR = "scalar"
    VECTOR_CONFIG = "vector_config"
    VECTOR = "vector"


class VectorKind(enum.Enum):
    """Second level of the hierarchy, below ``VECTOR``."""

    ARITHMETIC = "arithmetic"
    MEMORY = "memory"
    CONTROL_LANE = "control_lane"


class MemPattern(enum.Enum):
    """Memory access pattern of a (scalar or vector) memory instruction.

    The distinction matters to the machine model: unit-stride accesses
    stream at full bandwidth, strided accesses are slower, and indexed
    (gather/scatter) accesses are the slowest and the hardest on the
    memory system -- the paper attributes the growth of phase 8's cost
    with VECTOR_SIZE to "the complexity of indexed memory accesses".
    """

    UNIT_STRIDE = "unit_stride"
    STRIDED = "strided"
    INDEXED = "indexed"


class ScalarOp(enum.Enum):
    """Coarse scalar instruction categories used for CPI accounting."""

    ALU = "alu"            # integer add/sub/shift/compare, address generation
    MUL = "mul"            # integer multiply (array index linearization)
    FP = "fp"              # scalar floating point
    FDIV = "fdiv"          # scalar FP divide / sqrt (long latency)
    LOAD = "load"
    STORE = "store"
    BRANCH = "branch"


@dataclass(frozen=True)
class InstrSpec:
    """Static description of one instruction opcode.

    A single ``InstrSpec`` stands for *every* dynamic instance of that
    opcode; the dynamic state (vector length, addresses) is supplied by
    the program representation at execution time.
    """

    opcode: str
    iclass: InstrClass
    vkind: Optional[VectorKind] = None
    mem_pattern: Optional[MemPattern] = None
    is_store: bool = False
    #: floating point operations per *element* (2 for FMA, 1 for add/mul).
    flops_per_elem: int = 0
    #: True for long-latency arithmetic (divide, square root).
    long_latency: bool = False
    #: element width in bytes (the paper works in double precision).
    ew_bytes: int = 8

    def __post_init__(self) -> None:
        if self.iclass is InstrClass.VECTOR and self.vkind is None:
            raise ValueError(f"vector instruction {self.opcode!r} needs a VectorKind")
        if self.iclass is not InstrClass.VECTOR and self.vkind is not None:
            raise ValueError(f"non-vector instruction {self.opcode!r} cannot have a VectorKind")
        if self.vkind is VectorKind.MEMORY and self.mem_pattern is None:
            raise ValueError(f"vector memory instruction {self.opcode!r} needs a MemPattern")

    @property
    def is_vector(self) -> bool:
        return self.iclass is InstrClass.VECTOR

    @property
    def is_memory(self) -> bool:
        return self.vkind is VectorKind.MEMORY

    @property
    def is_arith(self) -> bool:
        return self.vkind is VectorKind.ARITHMETIC


def _v(opcode: str, vkind: VectorKind, **kw) -> InstrSpec:
    return InstrSpec(opcode=opcode, iclass=InstrClass.VECTOR, vkind=vkind, **kw)


# --------------------------------------------------------------------------
# Opcode registry.  Names follow RVV 0.7.1 mnemonics where one exists.
# --------------------------------------------------------------------------

VSETVL = InstrSpec("vsetvl", InstrClass.VECTOR_CONFIG)

# Vector arithmetic ('.vv' register-register and '.vf' register-scalar forms
# share one spec: timing and classification are identical, and using the
# '.vf' forms for loop-invariant scalars is what keeps the control-lane
# instruction count at zero, as observed in the paper's Figure 3).
VFADD = _v("vfadd", VectorKind.ARITHMETIC, flops_per_elem=1)
VFSUB = _v("vfsub", VectorKind.ARITHMETIC, flops_per_elem=1)
VFMUL = _v("vfmul", VectorKind.ARITHMETIC, flops_per_elem=1)
VFMADD = _v("vfmadd", VectorKind.ARITHMETIC, flops_per_elem=2)
VFDIV = _v("vfdiv", VectorKind.ARITHMETIC, flops_per_elem=1, long_latency=True)
VFSQRT = _v("vfsqrt", VectorKind.ARITHMETIC, flops_per_elem=1, long_latency=True)
VFMIN = _v("vfmin", VectorKind.ARITHMETIC, flops_per_elem=1)
VFMAX = _v("vfmax", VectorKind.ARITHMETIC, flops_per_elem=1)
VFNEG = _v("vfneg", VectorKind.ARITHMETIC, flops_per_elem=0)
VFABS = _v("vfabs", VectorKind.ARITHMETIC, flops_per_elem=0)

# Vector memory.
VLE = _v("vle", VectorKind.MEMORY, mem_pattern=MemPattern.UNIT_STRIDE)
VSE = _v("vse", VectorKind.MEMORY, mem_pattern=MemPattern.UNIT_STRIDE, is_store=True)
VLSE = _v("vlse", VectorKind.MEMORY, mem_pattern=MemPattern.STRIDED)
VSSE = _v("vsse", VectorKind.MEMORY, mem_pattern=MemPattern.STRIDED, is_store=True)
VLXE = _v("vlxe", VectorKind.MEMORY, mem_pattern=MemPattern.INDEXED)
VSXE = _v("vsxe", VectorKind.MEMORY, mem_pattern=MemPattern.INDEXED, is_store=True)

# Vector control lane (present for completeness; the CFD kernels emit none,
# matching the paper's observation, but reductions would use vslide).
VMV = _v("vmv", VectorKind.CONTROL_LANE)
VBROADCAST = _v("vfmv_v_f", VectorKind.CONTROL_LANE)
VSLIDEDOWN = _v("vslidedown", VectorKind.CONTROL_LANE)
VEXT = _v("vext", VectorKind.CONTROL_LANE)

#: All vector + config opcodes, by mnemonic.
OPCODES: dict[str, InstrSpec] = {
    spec.opcode: spec
    for spec in (
        VSETVL,
        VFADD, VFSUB, VFMUL, VFMADD, VFDIV, VFSQRT, VFMIN, VFMAX, VFNEG, VFABS,
        VLE, VSE, VLSE, VSSE, VLXE, VSXE,
        VMV, VBROADCAST, VSLIDEDOWN, VEXT,
    )
}

#: Map an arithmetic IR operator name to its vector opcode.
ARITH_OPCODES: dict[str, InstrSpec] = {
    "add": VFADD,
    "sub": VFSUB,
    "mul": VFMUL,
    "fma": VFMADD,
    "div": VFDIV,
    "sqrt": VFSQRT,
    "min": VFMIN,
    "max": VFMAX,
    "neg": VFNEG,
    "abs": VFABS,
}

#: Vector load opcode for each access pattern.
LOAD_OPCODES: dict[MemPattern, InstrSpec] = {
    MemPattern.UNIT_STRIDE: VLE,
    MemPattern.STRIDED: VLSE,
    MemPattern.INDEXED: VLXE,
}

#: Vector store opcode for each access pattern.
STORE_OPCODES: dict[MemPattern, InstrSpec] = {
    MemPattern.UNIT_STRIDE: VSE,
    MemPattern.STRIDED: VSSE,
    MemPattern.INDEXED: VSXE,
}
