"""Functional vector-ISA emulator (the Vehave analogue).

The paper's software development vehicle includes Vehave, an emulator
that executes RVV vector instructions on machines without a vector unit
and records what ran (§2.1.2).  This module is that tool for the
simulated ISA: a register-level machine that *functionally executes*
vector programs -- vector register file, scalar registers, flat memory,
and the RVV 0.7.1-style ``vsetvl`` contract:

    granted_vl = min(requested_avl, vl_max)

which is the vector-length-agnostic (VLA) property the paper leans on
for portability: the same binary runs on any vector length.  The test
suite proves it the strong way -- a strip-mined program produces
bit-identical memory on a 256-element machine and an 8-element machine.

Instructions are simple tuples assembled with the helpers below; every
executed vector instruction is recorded with its granted vector length,
exactly the (opcode, vl) stream Vehave traces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Union

import numpy as np

from repro.isa.instructions import OPCODES, InstrSpec

#: number of architectural vector registers (RVV: v0..v31).
NUM_VREGS = 32

Operand = Union[int, float, str]


@dataclass(frozen=True)
class Instr:
    """One assembled instruction.

    Fields are opcode-dependent; see the assembler helpers.  Scalar
    register operands are named strings (``"a0"``), vector registers are
    integers 0..31.
    """

    opcode: str
    dst: Optional[Operand] = None
    srcs: tuple[Operand, ...] = ()

    def __post_init__(self) -> None:
        if self.opcode not in OPCODES and self.opcode not in ("li",):
            raise ValueError(f"unknown opcode {self.opcode!r}")


# -- assembler helpers --------------------------------------------------------


def li(reg: str, value: float) -> Instr:
    """Load immediate into a scalar register."""
    return Instr("li", dst=reg, srcs=(value,))


def vsetvl(rd: str, avl: Operand) -> Instr:
    """rd = granted vl for requested application vector length *avl*."""
    return Instr("vsetvl", dst=rd, srcs=(avl,))


def vle(vd: int, base: Operand) -> Instr:
    return Instr("vle", dst=vd, srcs=(base,))


def vse(vs: int, base: Operand) -> Instr:
    return Instr("vse", dst=None, srcs=(vs, base))


def vlse(vd: int, base: Operand, stride: Operand) -> Instr:
    return Instr("vlse", dst=vd, srcs=(base, stride))


def vsse(vs: int, base: Operand, stride: Operand) -> Instr:
    return Instr("vsse", dst=None, srcs=(vs, base, stride))


def vlxe(vd: int, base: Operand, vidx: int) -> Instr:
    return Instr("vlxe", dst=vd, srcs=(base, vidx))


def vsxe(vs: int, base: Operand, vidx: int) -> Instr:
    return Instr("vsxe", dst=None, srcs=(vs, base, vidx))


def vop(opcode: str, vd: int, *srcs: Operand) -> Instr:
    """Arithmetic / control-lane instruction ('.vv' or '.vf' forms:
    integer operands are vector registers, strings are scalar regs)."""
    return Instr(opcode, dst=vd, srcs=tuple(srcs))


# -- the machine ---------------------------------------------------------------


@dataclass
class ExecutedRecord:
    """What Vehave logs: one executed vector instruction + granted vl."""

    opcode: str
    vl: int

    @property
    def spec(self) -> InstrSpec:
        return OPCODES[self.opcode]


class VectorEmulator:
    """Functional execution of vector programs (element indices address
    the flat double-precision memory)."""

    def __init__(self, vl_max: int, mem_size: int = 4096, tracer=None):
        from repro.obs.tracer import active as _obs_active

        if vl_max <= 0:
            raise ValueError("vl_max must be positive")
        self.vl_max = vl_max
        self.mem = np.zeros(mem_size)
        self.vregs = np.zeros((NUM_VREGS, vl_max))
        self.sregs: dict[str, float] = {}
        self.vl = 0
        self.trace: list[ExecutedRecord] = []
        #: observability hook: every executed instruction is streamed to
        #: the tracer with its opcode, granted vl and lane occupancy --
        #: the Vehave-grade per-instruction view.  ``None`` (no explicit
        #: tracer, no ambient one) keeps the step loop entirely free.
        self.tracer = tracer if tracer is not None else _obs_active()

    # -- register access ---------------------------------------------------

    def sreg(self, name: str) -> float:
        try:
            return self.sregs[name]
        except KeyError:
            raise KeyError(f"scalar register {name!r} not initialized") from None

    def _value(self, op: Operand) -> float:
        return self.sreg(op) if isinstance(op, str) else float(op)

    def _vec(self, op: Operand) -> np.ndarray:
        if not isinstance(op, (int, np.integer)):
            raise TypeError(f"expected a vector register, got {op!r}")
        if not 0 <= op < NUM_VREGS:
            raise ValueError(f"vector register v{op} out of range")
        return self.vregs[op]

    def _operand(self, op: Operand) -> np.ndarray:
        """A source operand: vector register slice or scalar broadcast."""
        if isinstance(op, str) or isinstance(op, float):
            return np.full(self.vl, self._value(op))
        return self._vec(op)[: self.vl]

    def _addr(self, base: Operand, offsets: np.ndarray) -> np.ndarray:
        addrs = (int(self._value(base)) + offsets).astype(np.int64)
        if addrs.size and (addrs.min() < 0 or addrs.max() >= self.mem.size):
            raise IndexError("vector memory access out of bounds")
        return addrs

    # -- execution ------------------------------------------------------------

    def execute(self, program: Iterable[Instr]) -> None:
        for instr in program:
            self.step(instr)

    def step(self, instr: Instr) -> None:
        op = instr.opcode
        if op == "li":
            self.sregs[instr.dst] = float(instr.srcs[0])
            return
        if op == "vsetvl":
            requested = int(self._value(instr.srcs[0]))
            self.vl = max(0, min(requested, self.vl_max))  # the VLA contract
            if instr.dst is not None:
                self.sregs[instr.dst] = float(self.vl)
            self.trace.append(ExecutedRecord(op, self.vl))
            if self.tracer is not None:
                self.tracer.instr(op, self.vl, self.vl_max)
            return

        vl = self.vl
        if op == "vle":
            addrs = self._addr(instr.srcs[0], np.arange(vl))
            self._vec(instr.dst)[:vl] = self.mem[addrs]
        elif op == "vlse":
            stride = int(self._value(instr.srcs[1]))
            addrs = self._addr(instr.srcs[0], stride * np.arange(vl))
            self._vec(instr.dst)[:vl] = self.mem[addrs]
        elif op == "vlxe":
            idx = self._vec(instr.srcs[1])[:vl].astype(np.int64)
            addrs = self._addr(instr.srcs[0], idx)
            self._vec(instr.dst)[:vl] = self.mem[addrs]
        elif op == "vse":
            addrs = self._addr(instr.srcs[1], np.arange(vl))
            self.mem[addrs] = self._vec(instr.srcs[0])[:vl]
        elif op == "vsse":
            stride = int(self._value(instr.srcs[2]))
            addrs = self._addr(instr.srcs[1], stride * np.arange(vl))
            self.mem[addrs] = self._vec(instr.srcs[0])[:vl]
        elif op == "vsxe":
            idx = self._vec(instr.srcs[2])[:vl].astype(np.int64)
            addrs = self._addr(instr.srcs[1], idx)
            # RVV scatters with repeated indices write in element order.
            np.put(self.mem, addrs, self._vec(instr.srcs[0])[:vl])
        elif op in ("vfadd", "vfsub", "vfmul", "vfdiv", "vfmin", "vfmax"):
            a = self._operand(instr.srcs[0])
            b = self._operand(instr.srcs[1])
            fn = {"vfadd": np.add, "vfsub": np.subtract, "vfmul": np.multiply,
                  "vfdiv": np.divide, "vfmin": np.minimum,
                  "vfmax": np.maximum}[op]
            self._vec(instr.dst)[:vl] = fn(a, b)
        elif op == "vfmadd":
            # vd[i] = a[i]*b[i] + c[i]
            a, b, c = (self._operand(s) for s in instr.srcs)
            self._vec(instr.dst)[:vl] = a * b + c
        elif op == "vfsqrt":
            self._vec(instr.dst)[:vl] = np.sqrt(self._operand(instr.srcs[0]))
        elif op == "vfneg":
            self._vec(instr.dst)[:vl] = -self._operand(instr.srcs[0])
        elif op == "vfabs":
            self._vec(instr.dst)[:vl] = np.abs(self._operand(instr.srcs[0]))
        elif op == "vmv":
            self._vec(instr.dst)[:vl] = self._vec(instr.srcs[0])[:vl]
        elif op == "vfmv_v_f":
            self._vec(instr.dst)[:vl] = self._value(instr.srcs[0])
        elif op == "vslidedown":
            offset = int(self._value(instr.srcs[1]))
            src = self._vec(instr.srcs[0])
            shifted = np.zeros(vl)
            take = max(0, vl - offset)
            if take:
                shifted[:take] = src[offset:offset + take]
            self._vec(instr.dst)[:vl] = shifted
        elif op == "vext":
            # element extract/shift used for index scaling; modelled as
            # copy (byte/element scaling is implicit in this emulator).
            self._vec(instr.dst)[:vl] = self._vec(instr.srcs[0])[:vl]
        else:  # pragma: no cover - defensive
            raise ValueError(f"unhandled opcode {op!r}")
        # tail elements (>= vl) stay undisturbed, per RVV semantics.
        self.trace.append(ExecutedRecord(op, vl))
        if self.tracer is not None:
            self.tracer.instr(op, vl, self.vl_max)

    # -- validation ------------------------------------------------------------

    def validate_state(self) -> list[str]:
        """Architectural-state sanity check, returned as a list of
        violations (empty when healthy).

        This is the detection side of the fault-injection harness
        (:mod:`repro.faults`): a soft error that flips a mantissa bit to
        produce Inf, poisons a lane with NaN, or corrupts the granted
        vector length must be *reported* here rather than laundered into
        downstream counters.
        """
        out: list[str] = []
        if not 0 <= self.vl <= self.vl_max:
            out.append(f"vl={self.vl} outside [0, vl_max={self.vl_max}]")
        bad_lanes = int(np.count_nonzero(~np.isfinite(self.vregs)))
        if bad_lanes:
            out.append(f"{bad_lanes} non-finite vector register lane(s)")
        bad_mem = int(np.count_nonzero(~np.isfinite(self.mem)))
        if bad_mem:
            out.append(f"{bad_mem} non-finite memory word(s)")
        over = sum(1 for r in self.trace if not 0 <= r.vl <= self.vl_max)
        if over:
            out.append(
                f"{over} trace record(s) with vl outside [0, {self.vl_max}]")
        return out

    # -- convenience -----------------------------------------------------------

    def avl_of_trace(self) -> float:
        """Average vector length of the executed vector instructions."""
        vec = [r for r in self.trace if r.spec.is_vector]
        return sum(r.vl for r in vec) / len(vec) if vec else 0.0


def run_strip_mined_axpy(machine: VectorEmulator, n: int, a_addr: int,
                         x_addr: int, y_addr: int, alpha: float) -> None:
    """Drive a VLA strip-mined ``a = alpha*x + y`` kernel on *machine*.

    The scalar loop plays the role of the compiler-emitted strip-mining
    code: each iteration requests the *remaining* trip count with
    ``vsetvl`` and advances by whatever the machine granted -- so the
    identical instruction sequence runs on a 256-element machine (one
    strip) and an 8-element machine (many strips), the paper's
    vector-length-agnostic portability argument in miniature."""
    machine.step(li("alpha", alpha))
    done = 0
    while done < n:
        machine.step(li("rem", n - done))
        machine.step(vsetvl("vl", "rem"))
        granted = int(machine.sreg("vl"))
        assert granted > 0
        machine.step(vle(1, x_addr + done))
        machine.step(vle(2, y_addr + done))
        machine.step(vop("vfmadd", 3, 1, "alpha", 2))
        machine.step(vse(3, a_addr + done))
        done += granted
