"""Simulated vector ISA: instruction descriptors and the Figure-1 hierarchy."""

from repro.isa.instructions import (
    ARITH_OPCODES,
    LOAD_OPCODES,
    OPCODES,
    STORE_OPCODES,
    InstrClass,
    InstrSpec,
    MemPattern,
    ScalarOp,
    VectorKind,
    VSETVL,
)
from repro.isa.hierarchy import HierarchyCounts, classify, is_counted_as_vector
from repro.isa.emulator import Instr, VectorEmulator

__all__ = [
    "ARITH_OPCODES",
    "LOAD_OPCODES",
    "OPCODES",
    "STORE_OPCODES",
    "InstrClass",
    "InstrSpec",
    "MemPattern",
    "ScalarOp",
    "VectorKind",
    "VSETVL",
    "HierarchyCounts",
    "classify",
    "is_counted_as_vector",
    "Instr",
    "VectorEmulator",
]
