"""Figure-1 instruction hierarchy: classification and counting.

The paper classifies every executed instruction into a tree (its Figure 1)
and reports counts at the "scalar / vector-configuration / vector" level
and, inside vector, at the "arithmetic / memory / control-lane" level.
This module provides the classification of :class:`~repro.isa.instructions.
InstrSpec` objects and a small counter container used by traces and tests.

The machine model keeps its own richer counters
(:class:`repro.metrics.counters.PhaseCounters`); this module is the
authoritative definition of *which bucket an opcode belongs to*.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa.instructions import InstrClass, InstrSpec

#: Ordered bucket names as they appear in the paper's Figure 3 legend.
VECTOR_BUCKETS = ("arithmetic", "memory", "control_lane")

#: All leaf bucket names of the hierarchy tree.
LEAF_BUCKETS = ("scalar", "vector_config") + VECTOR_BUCKETS


def classify(spec: InstrSpec) -> str:
    """Return the leaf bucket name of *spec* in the Figure-1 hierarchy."""
    if spec.iclass is InstrClass.SCALAR:
        return "scalar"
    if spec.iclass is InstrClass.VECTOR_CONFIG:
        return "vector_config"
    assert spec.vkind is not None
    return spec.vkind.value


def is_counted_as_vector(spec: InstrSpec) -> bool:
    """Whether *spec* contributes to the paper's ``i_v`` count.

    Vector-configuration instructions set up the vector length for
    subsequent vector instructions but execute on the scalar core; the
    paper's hierarchy keeps them outside the "Vector" box, so they count
    toward ``i_t`` but not ``i_v``.
    """
    return spec.iclass is InstrClass.VECTOR


@dataclass
class HierarchyCounts:
    """Instruction counts at every node of the Figure-1 tree."""

    scalar: int = 0
    vector_config: int = 0
    arithmetic: int = 0
    memory: int = 0
    control_lane: int = 0

    @property
    def vector(self) -> int:
        """Total instructions in the "Vector" box (``i_v``)."""
        return self.arithmetic + self.memory + self.control_lane

    @property
    def total(self) -> int:
        """All instructions (``i_t``)."""
        return self.scalar + self.vector_config + self.vector

    def add(self, spec: InstrSpec, count: int = 1) -> None:
        bucket = classify(spec)
        setattr(self, bucket, getattr(self, bucket) + count)

    def merged(self, other: "HierarchyCounts") -> "HierarchyCounts":
        return HierarchyCounts(
            scalar=self.scalar + other.scalar,
            vector_config=self.vector_config + other.vector_config,
            arithmetic=self.arithmetic + other.arithmetic,
            memory=self.memory + other.memory,
            control_lane=self.control_lane + other.control_lane,
        )

    def as_dict(self) -> dict[str, int]:
        return {name: getattr(self, name) for name in LEAF_BUCKETS}
