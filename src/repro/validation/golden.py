"""Golden-reference validation: IR kernels vs NumPy semantics, per phase.

The reproduction's timing results are only meaningful if the compiled
kernels compute the same mathematics as the paper's mini-app.  This
module turns the test-suite argument (``executed kernels == reference``)
into a runtime validator: :func:`golden_check` executes the IR kernels
of one optimization rung chunk by chunk -- through any registered
execution backend (:mod:`repro.backends`) -- and, **after every phase**,
compares that phase's output arrays -- and ultimately the assembled
global RHS and CSR matrix -- against :mod:`repro.cfd.reference` within
tolerance.

Golden checks run on a small probe mesh described by a shared
:class:`~repro.validation.probe.Probe` spec (the semantics of a rung do
not depend on mesh size or VECTOR_SIZE beyond tail padding, which the
probe exercises).  The default backend is the vectorized ``"numpy"``
lowering, proven byte-identical to the ``"interpreter"`` oracle by the
frozen equivalence fixture; sweeps that used to take minutes take
seconds.  The chaos harness (:mod:`repro.faults`) additionally injects
numeric faults through the ``corrupt`` hook to prove a poisoned lane is
*detected* and pinned to the phase it struck.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

import numpy as np

from repro.backends import DEFAULT_BACKEND, get_backend
from repro.cfd.assembly import MiniApp
from repro.cfd.reference import PHASE_OUTPUTS, REF_PHASES
from repro.compiler.ir import Kernel
from repro.validation.probe import (
    PROBE_MESH,
    PROBE_VECTOR_SIZE,
    Probe,
    resolve_probe,
)

#: corruption hook: (instance, phase_id, chunk_index) -> None, called
#: after the backend ran the phase and before the cross-check.
CorruptHook = Callable[[object, int, int], None]

#: kernel-mutation hook: kernels -> kernels, applied before
#: execution (the chaos harness's entry point for mis-legalized
#: transformation faults: a pass product is tampered with and the
#: golden check must catch the semantic change).
MutateHook = Callable[[list[Kernel]], list[Kernel]]


@dataclass
class GoldenReport:
    """Outcome of one golden-reference cross-check."""

    opt: str
    vector_size: int
    mesh_dims: tuple[int, int, int]
    rtol: float
    atol: float
    backend: str = DEFAULT_BACKEND
    #: worst absolute deviation seen per phase (diagnostics).
    max_abs_error: dict[int, float] = field(default_factory=dict)
    violations: list[str] = field(default_factory=list)
    #: pipeline stages validated (``transformed=True`` mode): each entry
    #: is the pass list of one validated prefix, shortest first.
    stages: list[tuple[str, ...]] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def to_dict(self) -> dict:
        return {
            "opt": self.opt,
            "vector_size": self.vector_size,
            "mesh_dims": list(self.mesh_dims),
            "backend": self.backend,
            "ok": self.ok,
            "violations": list(self.violations),
            "max_abs_error": {str(p): e for p, e in
                              sorted(self.max_abs_error.items())},
            "stages": [list(s) for s in self.stages],
        }


def _check_kernels(report: GoldenReport, app: MiniApp,
                   kernels: list[Kernel], *, stage: str = "",
                   max_violations: int = 20,
                   corrupt: Optional[CorruptHook] = None) -> None:
    """Execute *kernels* (via ``report.backend``) against the NumPy
    reference on *app*'s probe mesh, appending violations (labelled
    *stage*) to *report*."""
    ctx = app.context
    backend = get_backend(report.backend)

    # Backend side: globals bound by reference into each instance.
    gdata = app.global_float_data()
    globals_data = {**gdata, "elpos": app.elpos}

    # Reference side: private copies of the float globals (both sides
    # scatter-accumulate into their own rhsid/amatr) + gather tables.
    ref_data: dict[str, np.ndarray] = {
        **{name: arr.copy() for name, arr in gdata.items()},
        "lnods": ctx.lnods, "ltype": ctx.ltype, "lmate": ctx.lmate,
        "kfl_sgs": ctx.kfl_sgs, "elpos": app.elpos,
    }
    local_arrays = [a for a in ctx.arrays.values() if a.scope == "local"]
    where = f"stage {stage} " if stage else ""

    for chunk in app.chunks:
        inst = ctx.instance_for_chunk(chunk, with_data=True,
                                      globals_data=globals_data)
        # fresh chunk-local scratch, mirroring the instance's zeroed data.
        for arr in local_arrays:
            ref_data[arr.name] = np.zeros(arr.shape)
        executor = backend.executor(inst, ctx.params)
        for kern in kernels:
            phase = kern.phase
            executor.run(kern)
            if corrupt is not None:
                corrupt(inst, phase, chunk.index)
            REF_PHASES[phase - 1](ref_data, ctx.params, chunk.elements)
            for name in PHASE_OUTPUTS[phase]:
                got = np.asarray(inst.data(name), dtype=np.float64)
                want = np.asarray(ref_data[name], dtype=np.float64)
                diff = np.abs(got - want)
                err = float(diff.max()) if diff.size else 0.0
                report.max_abs_error[phase] = max(
                    report.max_abs_error.get(phase, 0.0), err)
                bad = ~np.isclose(got, want, rtol=report.rtol,
                                  atol=report.atol, equal_nan=False)
                if bad.any() and len(report.violations) < max_violations:
                    report.violations.append(
                        f"{where}chunk {chunk.index} phase {phase} "
                        f"{name!r}: {int(bad.sum())} element(s) deviate, "
                        f"max abs error {err:.3e}")


def golden_check(opt: "str | Probe" = "vanilla",
                 vector_size: Optional[int] = None,
                 mesh_dims: Optional[tuple[int, int, int]] = None,
                 *,
                 probe: Optional[Probe] = None,
                 backend: Optional[str] = None,
                 field_seed: Optional[int] = None,
                 rtol: Optional[float] = None,
                 atol: Optional[float] = None,
                 max_violations: int = 20,
                 corrupt: Optional[CorruptHook] = None,
                 transformed: bool = False,
                 mutate: Optional[MutateHook] = None) -> GoldenReport:
    """Cross-check one optimization rung against the golden reference.

    The probe configuration is a :class:`Probe` -- pass one positionally
    (``golden_check(Probe(opt="vec1", backend="interpreter"))``) or as
    ``probe=``; a bare rung string selects the default probe for that
    rung.  ``backend=`` overrides the probe's execution backend.  The
    remaining per-field keywords (``vector_size``, ``mesh_dims``,
    ``field_seed``, ``rtol``, ``atol``) are deprecated shims that warn
    and fold into a Probe.

    Runs the IR kernels (through the selected backend) and the NumPy
    reference side by side over every chunk of the probe mesh, comparing
    each phase's output arrays (see
    :data:`repro.cfd.reference.PHASE_OUTPUTS`) after the phase executes.
    Both sides start from byte-identical field data, so agreement is
    expected to machine precision.

    With ``transformed=True``, every *prefix* of the rung's pass
    pipeline is validated separately -- the baseline kernels, then the
    kernels after each pass in turn -- so a mis-legalized transformation
    is pinned to the pass that introduced it, not just to the rung.
    ``mutate`` rewrites the (final-stage) kernel list before execution;
    the chaos harness uses it to prove tampered pass output is
    *detected*.
    """
    spec = resolve_probe(opt, probe, backend=backend,
                         caller="golden_check",
                         vector_size=vector_size, mesh_dims=mesh_dims,
                         field_seed=field_seed, rtol=rtol, atol=atol)
    report = GoldenReport(opt=spec.opt, vector_size=spec.vector_size,
                          mesh_dims=spec.mesh_dims, rtol=spec.rtol,
                          atol=spec.atol, backend=spec.backend)
    app = spec.build_app()

    if transformed:
        for prefix in app.pipeline.prefixes():
            kernels, _ = prefix.run_all(app.baseline_kernels)
            names = prefix.pass_names
            if mutate is not None and len(names) == len(app.pipeline):
                kernels = mutate(list(kernels))
            report.stages.append(names)
            _check_kernels(report, app, list(kernels),
                           stage=f"[{' -> '.join(names) or 'baseline'}]",
                           max_violations=max_violations, corrupt=corrupt)
        return report

    kernels = list(app.kernels)
    if mutate is not None:
        kernels = mutate(kernels)
    _check_kernels(report, app, kernels, max_violations=max_violations,
                   corrupt=corrupt)
    return report


# ---------------------------------------------------------------------------
# the solver path (phases 9-12)
# ---------------------------------------------------------------------------

#: fixed tolerances for the end-to-end IR-vs-NumPy solve comparison.
#: Scalar recurrences (alpha, beta, omega) are fed by kernel-computed
#: dots that differ from NumPy's pairwise sums at machine epsilon, so
#: the *iterates* drift slightly over a solve even though every single
#: kernel agrees to the probe tolerance -- hence looser than Probe.rtol.
SOLVE_X_RTOL = 1e-6
SOLVE_X_ATOL = 1e-9

#: slack on the true-residual check: the IR solution must satisfy the
#: solve within this multiple of the convergence tolerance.
SOLVE_RESIDUAL_SLACK = 10.0


def solver_golden_check(opt: "str | Probe" = "vanilla",
                        *,
                        probe: Optional[Probe] = None,
                        backend: Optional[str] = None,
                        method: str = "bicgstab",
                        max_violations: int = 20,
                        workload=None,
                        mutate: Optional[MutateHook] = None) -> GoldenReport:
    """Cross-check the IR solver kernels against the NumPy solver
    reference (`PHASE_OUTPUTS`-style, phases 9-12).

    Two stages, both recorded in the returned :class:`GoldenReport`:

    1. **per-kernel** -- the compiled SpMV / dot / axpy / Jacobi-apply
       kernels run chunk by chunk (through the probe's backend) on
       seeded vectors, against
       :data:`repro.cfd.solver_phases.SOLVER_REF_PHASES`, compared to
       the probe tolerance after every kernel;
    2. **end-to-end** -- :meth:`SolverWorkload.ir_solve` (every vector
       op through the kernels) against :func:`repro.cfd.solver.cg` /
       ``bicgstab`` on the assembled shifted system: the converged
       flags must agree, the IR solution must match the reference
       within :data:`SOLVE_X_RTOL`/:data:`SOLVE_X_ATOL`, and its true
       residual must actually satisfy the solve.

    ``workload=`` substitutes a pre-built (possibly fault-injected)
    :class:`~repro.cfd.solver_path.SolverWorkload`; ``mutate`` rewrites
    the solver kernel list before execution (the chaos harness's entry
    points for torn-gather / mis-legalization drills).
    """
    from repro.cfd.solver import SolveResult  # noqa: F401  (doc anchor)
    from repro.cfd.solver_path import SOLVE_TOL
    from repro.cfd.solver_phases import (
        SOLVER_PHASE_OUTPUTS,
        SOLVER_REF_PHASES,
        seeded_solver_inputs,
    )

    spec = resolve_probe(opt, probe, backend=backend,
                         caller="solver_golden_check")
    report = GoldenReport(opt=spec.opt, vector_size=spec.vector_size,
                          mesh_dims=spec.mesh_dims, rtol=spec.rtol,
                          atol=spec.atol, backend=spec.backend)
    app = spec.build_app()
    if workload is None:
        workload, b = app.build_solver()
    else:
        _, b = app.build_solver()
    kernels = sorted(workload.kernels, key=lambda k: k.phase)
    if mutate is not None:
        kernels = mutate(list(kernels))
        workload.kernels = kernels
        workload.kernels_by_phase = {k.phase: k for k in kernels}

    # -- stage 1: per-kernel, chunk by chunk ----------------------------
    report.stages.append(("solver-kernels",))
    be = get_backend(report.backend)
    ctx = workload.context
    ir_data = seeded_solver_inputs(ctx, spec.field_seed)
    ref_data = {name: arr.copy() for name, arr in ir_data.items()}
    for chunk in ctx.chunks():
        inst = ctx.instance_for_chunk(chunk, globals_data=ir_data)
        executor = be.executor(inst, ctx.params)
        rows = chunk.elements
        for kern in kernels:
            phase = kern.phase
            executor.run(kern)
            SOLVER_REF_PHASES[phase](ref_data, ctx.params, rows)
            for name in SOLVER_PHASE_OUTPUTS[phase]:
                got = np.asarray(inst.data(name), dtype=np.float64)
                want = np.asarray(ref_data[name], dtype=np.float64)
                diff = np.abs(got - want)
                err = float(diff.max()) if diff.size else 0.0
                report.max_abs_error[phase] = max(
                    report.max_abs_error.get(phase, 0.0), err)
                bad = ~np.isclose(got, want, rtol=report.rtol,
                                  atol=report.atol, equal_nan=False)
                if bad.any() and len(report.violations) < max_violations:
                    report.violations.append(
                        f"solver chunk {chunk.index} phase {phase} "
                        f"{name!r}: {int(bad.sum())} element(s) deviate, "
                        f"max abs error {err:.3e}")

    # -- stage 2: end-to-end IR solve vs NumPy solver reference ---------
    report.stages.append((f"solver-e2e:{method}",))
    ir = workload.ir_solve(b, method=method, backend=report.backend)
    ref = workload.reference_solve(b, method=method)
    if bool(ir.converged) != bool(ref.converged):
        report.violations.append(
            f"solver e2e {method}: converged flag mismatch "
            f"(ir={ir.converged} after {ir.iterations} it, "
            f"ref={ref.converged} after {ref.iterations} it)")
    if not np.allclose(ir.x, ref.x, rtol=SOLVE_X_RTOL, atol=SOLVE_X_ATOL,
                       equal_nan=False):
        err = float(np.abs(ir.x - ref.x).max())
        report.violations.append(
            f"solver e2e {method}: IR solution deviates from the NumPy "
            f"reference, max abs error {err:.3e}")
    if ref.converged:
        from repro.cfd.csr import spmv as _csr_spmv

        true_res = float(np.linalg.norm(
            b - _csr_spmv(workload.pattern, workload.amatr, ir.x)))
        bnorm = float(np.linalg.norm(b)) or 1.0
        if true_res / bnorm > SOLVE_RESIDUAL_SLACK * SOLVE_TOL:
            report.violations.append(
                f"solver e2e {method}: IR solution does not satisfy the "
                f"system (true residual {true_res / bnorm:.3e})")
    return report
