"""Golden-reference validation: IR kernels vs NumPy semantics, per phase.

The reproduction's timing results are only meaningful if the compiled
kernels compute the same mathematics as the paper's mini-app.  This
module turns the test-suite argument (``executed kernels == reference``)
into a runtime validator: :func:`golden_check` executes the IR kernels
of one optimization rung chunk by chunk -- through any registered
execution backend (:mod:`repro.backends`) -- and, **after every phase**,
compares that phase's output arrays -- and ultimately the assembled
global RHS and CSR matrix -- against :mod:`repro.cfd.reference` within
tolerance.

Golden checks run on a small probe mesh described by a shared
:class:`~repro.validation.probe.Probe` spec (the semantics of a rung do
not depend on mesh size or VECTOR_SIZE beyond tail padding, which the
probe exercises).  The default backend is the vectorized ``"numpy"``
lowering, proven byte-identical to the ``"interpreter"`` oracle by the
frozen equivalence fixture; sweeps that used to take minutes take
seconds.  The chaos harness (:mod:`repro.faults`) additionally injects
numeric faults through the ``corrupt`` hook to prove a poisoned lane is
*detected* and pinned to the phase it struck.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

import numpy as np

from repro.backends import DEFAULT_BACKEND, get_backend
from repro.cfd.assembly import MiniApp
from repro.cfd.reference import PHASE_OUTPUTS, REF_PHASES
from repro.compiler.ir import Kernel
from repro.validation.probe import (
    PROBE_MESH,
    PROBE_VECTOR_SIZE,
    Probe,
    resolve_probe,
)

#: corruption hook: (instance, phase_id, chunk_index) -> None, called
#: after the backend ran the phase and before the cross-check.
CorruptHook = Callable[[object, int, int], None]

#: kernel-mutation hook: kernels -> kernels, applied before
#: execution (the chaos harness's entry point for mis-legalized
#: transformation faults: a pass product is tampered with and the
#: golden check must catch the semantic change).
MutateHook = Callable[[list[Kernel]], list[Kernel]]


@dataclass
class GoldenReport:
    """Outcome of one golden-reference cross-check."""

    opt: str
    vector_size: int
    mesh_dims: tuple[int, int, int]
    rtol: float
    atol: float
    backend: str = DEFAULT_BACKEND
    #: worst absolute deviation seen per phase (diagnostics).
    max_abs_error: dict[int, float] = field(default_factory=dict)
    violations: list[str] = field(default_factory=list)
    #: pipeline stages validated (``transformed=True`` mode): each entry
    #: is the pass list of one validated prefix, shortest first.
    stages: list[tuple[str, ...]] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def to_dict(self) -> dict:
        return {
            "opt": self.opt,
            "vector_size": self.vector_size,
            "mesh_dims": list(self.mesh_dims),
            "backend": self.backend,
            "ok": self.ok,
            "violations": list(self.violations),
            "max_abs_error": {str(p): e for p, e in
                              sorted(self.max_abs_error.items())},
            "stages": [list(s) for s in self.stages],
        }


def _check_kernels(report: GoldenReport, app: MiniApp,
                   kernels: list[Kernel], *, stage: str = "",
                   max_violations: int = 20,
                   corrupt: Optional[CorruptHook] = None) -> None:
    """Execute *kernels* (via ``report.backend``) against the NumPy
    reference on *app*'s probe mesh, appending violations (labelled
    *stage*) to *report*."""
    ctx = app.context
    backend = get_backend(report.backend)

    # Backend side: globals bound by reference into each instance.
    gdata = app.global_float_data()
    globals_data = {**gdata, "elpos": app.elpos}

    # Reference side: private copies of the float globals (both sides
    # scatter-accumulate into their own rhsid/amatr) + gather tables.
    ref_data: dict[str, np.ndarray] = {
        **{name: arr.copy() for name, arr in gdata.items()},
        "lnods": ctx.lnods, "ltype": ctx.ltype, "lmate": ctx.lmate,
        "kfl_sgs": ctx.kfl_sgs, "elpos": app.elpos,
    }
    local_arrays = [a for a in ctx.arrays.values() if a.scope == "local"]
    where = f"stage {stage} " if stage else ""

    for chunk in app.chunks:
        inst = ctx.instance_for_chunk(chunk, with_data=True,
                                      globals_data=globals_data)
        # fresh chunk-local scratch, mirroring the instance's zeroed data.
        for arr in local_arrays:
            ref_data[arr.name] = np.zeros(arr.shape)
        executor = backend.executor(inst, ctx.params)
        for kern in kernels:
            phase = kern.phase
            executor.run(kern)
            if corrupt is not None:
                corrupt(inst, phase, chunk.index)
            REF_PHASES[phase - 1](ref_data, ctx.params, chunk.elements)
            for name in PHASE_OUTPUTS[phase]:
                got = np.asarray(inst.data(name), dtype=np.float64)
                want = np.asarray(ref_data[name], dtype=np.float64)
                diff = np.abs(got - want)
                err = float(diff.max()) if diff.size else 0.0
                report.max_abs_error[phase] = max(
                    report.max_abs_error.get(phase, 0.0), err)
                bad = ~np.isclose(got, want, rtol=report.rtol,
                                  atol=report.atol, equal_nan=False)
                if bad.any() and len(report.violations) < max_violations:
                    report.violations.append(
                        f"{where}chunk {chunk.index} phase {phase} "
                        f"{name!r}: {int(bad.sum())} element(s) deviate, "
                        f"max abs error {err:.3e}")


def golden_check(opt: "str | Probe" = "vanilla",
                 vector_size: Optional[int] = None,
                 mesh_dims: Optional[tuple[int, int, int]] = None,
                 *,
                 probe: Optional[Probe] = None,
                 backend: Optional[str] = None,
                 field_seed: Optional[int] = None,
                 rtol: Optional[float] = None,
                 atol: Optional[float] = None,
                 max_violations: int = 20,
                 corrupt: Optional[CorruptHook] = None,
                 transformed: bool = False,
                 mutate: Optional[MutateHook] = None) -> GoldenReport:
    """Cross-check one optimization rung against the golden reference.

    The probe configuration is a :class:`Probe` -- pass one positionally
    (``golden_check(Probe(opt="vec1", backend="interpreter"))``) or as
    ``probe=``; a bare rung string selects the default probe for that
    rung.  ``backend=`` overrides the probe's execution backend.  The
    remaining per-field keywords (``vector_size``, ``mesh_dims``,
    ``field_seed``, ``rtol``, ``atol``) are deprecated shims that warn
    and fold into a Probe.

    Runs the IR kernels (through the selected backend) and the NumPy
    reference side by side over every chunk of the probe mesh, comparing
    each phase's output arrays (see
    :data:`repro.cfd.reference.PHASE_OUTPUTS`) after the phase executes.
    Both sides start from byte-identical field data, so agreement is
    expected to machine precision.

    With ``transformed=True``, every *prefix* of the rung's pass
    pipeline is validated separately -- the baseline kernels, then the
    kernels after each pass in turn -- so a mis-legalized transformation
    is pinned to the pass that introduced it, not just to the rung.
    ``mutate`` rewrites the (final-stage) kernel list before execution;
    the chaos harness uses it to prove tampered pass output is
    *detected*.
    """
    spec = resolve_probe(opt, probe, backend=backend,
                         caller="golden_check",
                         vector_size=vector_size, mesh_dims=mesh_dims,
                         field_seed=field_seed, rtol=rtol, atol=atol)
    report = GoldenReport(opt=spec.opt, vector_size=spec.vector_size,
                          mesh_dims=spec.mesh_dims, rtol=spec.rtol,
                          atol=spec.atol, backend=spec.backend)
    app = spec.build_app()

    if transformed:
        for prefix in app.pipeline.prefixes():
            kernels, _ = prefix.run_all(app.baseline_kernels)
            names = prefix.pass_names
            if mutate is not None and len(names) == len(app.pipeline):
                kernels = mutate(list(kernels))
            report.stages.append(names)
            _check_kernels(report, app, list(kernels),
                           stage=f"[{' -> '.join(names) or 'baseline'}]",
                           max_violations=max_violations, corrupt=corrupt)
        return report

    kernels = list(app.kernels)
    if mutate is not None:
        kernels = mutate(kernels)
    _check_kernels(report, app, kernels, max_violations=max_violations,
                   corrupt=corrupt)
    return report
