"""Structural counter invariants.

These are the cheap, always-on checks of the validation layer: they need
no second simulation, only the counters themselves plus the machine
description, and they catch the corruption modes the fault harness
injects -- NaN/Inf poisoning, sign flips, impossible vector lengths,
perturbed cache accounting, and FLOP drift between optimization rungs
that must be pure performance transformations.

Every check returns a list of human-readable violations; an empty list
means the record is consistent.
"""

from __future__ import annotations

import math
from typing import Mapping, Optional

from repro.metrics.counters import COUNTER_FIELDS, PhaseCounters, RunCounters

#: relative tolerance for floating-point identity checks (vl bookkeeping,
#: FLOP conservation across the optimization ladder).
RTOL = 1e-9


def vl_max_for(machine: str) -> Optional[int]:
    """Maximum vector length of a machine, or ``None`` for scalar-only."""
    from repro.machine.machines import get_machine

    params = get_machine(machine)
    return params.vpu.vl_max if params.vpu is not None else None


def _close(a: float, b: float, rtol: float = RTOL) -> bool:
    return abs(a - b) <= rtol * max(1.0, abs(a), abs(b))


def check_phase_counters(pc: PhaseCounters,
                         vl_max: Optional[int] = None) -> list[str]:
    """Invariants of one phase record."""
    out: list[str] = []
    p = f"phase {pc.phase}"
    for f in COUNTER_FIELDS:
        v = getattr(pc, f)
        if not math.isfinite(v):
            out.append(f"{p}: {f} is non-finite ({v!r})")
        elif v < 0:
            out.append(f"{p}: {f} is negative ({v!r})")
    for vl, count in pc.vl_hist.items():
        if not math.isfinite(count) or count < 0:
            out.append(f"{p}: vl_hist[{vl}] has invalid count {count!r}")
        if vl < 0 or (vl_max is not None and vl > vl_max):
            out.append(f"{p}: vl_hist key {vl} outside [0, {vl_max}]")
    if out:
        return out  # derived checks below assume finite inputs
    if pc.cycles_vector > pc.cycles_total * (1 + RTOL):
        out.append(f"{p}: vector cycles ({pc.cycles_vector}) exceed total "
                   f"cycles ({pc.cycles_total})")
    if pc.instr_scalar_mem > pc.instr_scalar * (1 + RTOL):
        out.append(f"{p}: scalar memory instructions exceed scalar "
                   f"instructions")
    # vl bookkeeping: the histogram is the ground truth the AVL metrics
    # are computed from, so it must agree with i_v and vl_sum exactly.
    hist_instrs = float(sum(pc.vl_hist.values()))
    hist_vl_sum = float(sum(vl * n for vl, n in pc.vl_hist.items()))
    if not _close(hist_instrs, pc.i_v):
        out.append(f"{p}: vl_hist totals {hist_instrs} instructions but "
                   f"i_v = {pc.i_v}")
    if not _close(hist_vl_sum, pc.vl_sum):
        out.append(f"{p}: vl_hist implies vl_sum {hist_vl_sum} but "
                   f"recorded vl_sum = {pc.vl_sum}")
    if vl_max is not None and pc.i_v > 0:
        avl = pc.vl_sum / pc.i_v
        if avl > vl_max * (1 + RTOL):
            out.append(f"{p}: AVL {avl:.2f} exceeds vl_max {vl_max}")
    return out


def check_run_counters(run: RunCounters,
                       vl_max: Optional[int] = None) -> list[str]:
    """Invariants of a whole-run record (all phases)."""
    out: list[str] = []
    for pid in run.phase_ids():
        out.extend(check_phase_counters(run.phases[pid], vl_max=vl_max))
    return out


def validate_run(cfg, run: RunCounters) -> list[str]:
    """Invariant check for one executed configuration (resolves the
    machine's ``vl_max`` from the config)."""
    return check_run_counters(run, vl_max=vl_max_for(cfg.machine))


def check_phase_digest_ladder(
        digests: Mapping[str, Mapping]) -> dict[str, list[str]]:
    """Semantic conservation across the optimization ladder.

    *digests* maps run keys to per-phase golden output fingerprints
    (``{phase: sha256}``, phases int- or str-keyed; see
    :func:`repro.validation.digests.phase_output_digests`).  Honest runs
    all fingerprint identically on the fixed probe, so any run deviating
    from the per-phase majority digest is flagged, with the first
    divergent phase named — this is the check that catches a
    mis-legalized interchange or fission, which conserves FLOPs (so
    :func:`check_flop_ladder` stays green) while computing the wrong
    answer.  Returns violations keyed by run key; fewer than three runs
    cannot form a majority and return no verdict.
    """
    if len(digests) < 3:
        return {}
    norm = {key: {str(p): d for p, d in fp.items()}
            for key, fp in digests.items()}
    phases = sorted({p for fp in norm.values() for p in fp}, key=int)
    out: dict[str, list[str]] = {}
    for phase in phases:
        votes: dict[str, int] = {}
        for fp in norm.values():
            d = fp.get(phase, "")
            votes[d] = votes.get(d, 0) + 1
        majority = max(votes.items(), key=lambda kv: (kv[1], kv[0]))[0]
        for key in sorted(norm):
            if norm[key].get(phase, "") != majority:
                out.setdefault(key, []).append(
                    f"phase {phase} output digest "
                    f"{norm[key].get(phase, '')[:12] or '<missing>'} deviates "
                    f"from the ladder majority {majority[:12]} "
                    f"({votes.get(majority, 0)}/{len(norm)} runs agree)")
    return out


def check_flop_ladder(runs: Mapping, rtol: float = 1e-6) -> dict[str, list[str]]:
    """FLOP conservation across the optimization ladder.

    *runs* maps :class:`~repro.experiments.config.RunConfig` to its
    :class:`RunCounters`.  Every optimization rung is a pure performance
    transformation, so configs differing **only** in ``opt`` must
    perform identical arithmetic: their total FLOP counts must agree.
    Returns violations keyed by :meth:`RunConfig.key` -- every member of
    a drifting group is flagged (the drifting rung cannot be identified
    without a majority vote, so the whole group is suspect).
    """
    groups: dict[tuple, list] = {}
    for cfg, run in runs.items():
        # solve=True runs add the solver-kernel arithmetic (phases 9-12)
        # on top of assembly, so they ladder separately from
        # assembly-only runs of the same shape.
        ladder = (cfg.machine, cfg.vector_size, cfg.mesh_dims,
                  cfg.cache_enabled, cfg.field_seed,
                  getattr(cfg, "solve", False))
        groups.setdefault(ladder, []).append((cfg, run))
    out: dict[str, list[str]] = {}
    for members in groups.values():
        if len(members) < 2:
            continue
        flops = {cfg.opt: run.total_flops for cfg, run in members}
        lo, hi = min(flops.values()), max(flops.values())
        if hi - lo > rtol * max(1.0, abs(hi)):
            detail = ", ".join(f"{opt}={flops[opt]:.6g}"
                               for opt in sorted(flops))
            msg = f"FLOP drift across optimization ladder: {detail}"
            for cfg, _run in members:
                out.setdefault(cfg.key(), []).append(msg)
    return out
