"""The shared probe specification for semantic validation.

``golden_check`` and ``phase_output_digests`` used to duplicate the same
pile of keywords (``opt``, ``vector_size``, ``mesh_dims``,
``field_seed``, tolerances) -- :class:`Probe` collapses them into one
frozen, hashable value object that *is* the validation configuration:
what rung (or explicit pass schedule) to compile, on what probe mesh,
from which seeded fields, executed by which backend, compared how.

Being frozen and hashable, a ``Probe`` doubles as the memoization key of
the honest digest cache, and ``replace(probe, ...)`` gives cheap
variants (the chaos campaign swaps ``opt`` per rung, the equivalence
gate swaps ``backend``).

The old keyword spellings survive as deprecation shims:
``golden_check("vec1", vector_size=16)`` still works but warns; the
supported form is ``golden_check(Probe(opt="vec1", vector_size=16))``.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, replace
from typing import Optional

from repro.backends import DEFAULT_BACKEND

#: default probe: 12 elements; VECTOR_SIZE=8 pads the tail chunk, so the
#: padding path is validated too (mirrors tests/cfd/test_semantics.py).
PROBE_MESH: tuple[int, int, int] = (3, 2, 2)
PROBE_VECTOR_SIZE = 8


@dataclass(frozen=True)
class Probe:
    """One semantic-validation configuration.

    Every field has the pinned-probe default, so ``Probe(opt="vec1")``
    is the usual spelling.  ``passes`` overrides the rung's pass
    schedule (same contract as ``RunConfig.passes``); ``backend`` names
    the :mod:`repro.backends` implementation that executes the kernels.
    """

    opt: str = "vanilla"
    vector_size: int = PROBE_VECTOR_SIZE
    mesh_dims: tuple[int, int, int] = PROBE_MESH
    field_seed: int = 0
    rtol: float = 1e-9
    atol: float = 1e-12
    backend: str = DEFAULT_BACKEND
    passes: Optional[tuple[str, ...]] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "mesh_dims", tuple(self.mesh_dims))
        if self.passes is not None:
            object.__setattr__(self, "passes", tuple(self.passes))

    def build_app(self):
        """The compiled mini-app this probe validates (imports deferred:
        validation sits above cfd in the layer diagram)."""
        from repro.cfd.assembly import MiniApp
        from repro.cfd.mesh import box_mesh

        return MiniApp(box_mesh(*self.mesh_dims), self.vector_size,
                       self.opt, field_seed=self.field_seed,
                       passes=self.passes)


def resolve_probe(opt_or_probe: "str | Probe", probe: Optional[Probe],
                  *, backend: Optional[str] = None, caller: str = "",
                  **legacy) -> Probe:
    """Normalize the ``(opt | Probe, probe=, legacy kwargs)`` calling
    conventions of the validation entry points to one :class:`Probe`.

    A non-``None`` legacy keyword (``vector_size``, ``mesh_dims``,
    ``field_seed``, ``rtol``, ``atol``) emits a ``DeprecationWarning``
    and is folded into the probe; mixing them with an explicit ``Probe``
    is a ``TypeError``.  ``backend=`` is first-class (not deprecated)
    and overrides the probe's.
    """
    if isinstance(opt_or_probe, Probe):
        if probe is not None:
            raise TypeError("pass the Probe positionally or as probe=, "
                            "not both")
        probe = opt_or_probe
    used = {k: v for k, v in legacy.items() if v is not None}
    if probe is not None:
        if used:
            raise TypeError(
                f"cannot combine probe= with the deprecated keyword(s) "
                f"{sorted(used)}; set them on the Probe instead")
        return replace(probe, backend=backend) if backend else probe
    if used:
        warnings.warn(
            f"the {sorted(used)} keyword(s) of {caller or 'this function'} "
            f"are deprecated; pass a Probe(...) instead",
            DeprecationWarning, stacklevel=3)
    if backend is not None:
        used["backend"] = backend
    return Probe(opt=opt_or_probe, **used)
