"""Validation layer: prove the reproduction *detects* corruption.

The paper's measurements come from a fragile stack -- a 50 MHz FPGA
prototype, a research compiler, hand-instrumented phase counters --
where one silent mis-measurement poisons every downstream table.  This
package is the reproduction's answer: every simulated run can be
cross-checked against cheap structural invariants
(:mod:`repro.validation.invariants`) and, per optimization rung, against
the NumPy golden reference of the eight phases
(:mod:`repro.validation.golden`).

The sweep executor threads these checks through
``execute_plan(validate=True)``; the :mod:`repro.faults` chaos harness
proves they fire on injected faults.
"""

from repro.validation.invariants import (
    check_flop_ladder,
    check_phase_counters,
    check_phase_digest_ladder,
    check_run_counters,
    validate_run,
    vl_max_for,
)
from repro.validation.digests import phase_output_digests, solver_phase_digests
from repro.validation.golden import GoldenReport, golden_check, solver_golden_check
from repro.validation.probe import PROBE_MESH, PROBE_VECTOR_SIZE, Probe

__all__ = [
    "GoldenReport",
    "PROBE_MESH",
    "PROBE_VECTOR_SIZE",
    "Probe",
    "check_flop_ladder",
    "check_phase_counters",
    "check_phase_digest_ladder",
    "check_run_counters",
    "golden_check",
    "phase_output_digests",
    "solver_golden_check",
    "solver_phase_digests",
    "validate_run",
    "vl_max_for",
]
