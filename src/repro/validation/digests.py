"""Per-phase golden output digests: the cross-rung semantic fingerprint.

Every optimization rung is a pure performance transformation, so the
*interpreted* outputs of each phase on a fixed probe configuration are
bit-identical across the whole ladder — scalar through vec1 produce the
same bytes phase by phase (the legal passes only restructure loops whose
iterations are independent, and iteration order within a phase's
accumulates is preserved).  :func:`phase_output_digests` turns that into
a comparable fingerprint: one SHA-256 per phase over the phase's output
arrays (:data:`repro.cfd.reference.PHASE_OUTPUTS`), accumulated chunk by
chunk on the golden probe mesh.

This is the invariant that catches the pass faults the counter checks
cannot: a mis-legalized interchange or fission conserves FLOPs by
construction (same arithmetic, wrong order/guard), so the FLOP-ladder
check stays green — but the first phase whose semantics changed diverges
from the majority digest, pinning both the struck run and the phase
(see :func:`repro.validation.invariants.check_phase_digest_ladder`).

The digest is a pure function of ``(kernels, field_seed)`` on the fixed
probe; notably it does **not** depend on the run's own mesh or
VECTOR_SIZE (different probe vector sizes pad differently and are *not*
comparable, which is why the probe size is pinned).
"""

from __future__ import annotations

import hashlib
from functools import lru_cache
from typing import Optional

import numpy as np

from repro.validation.golden import (
    MutateHook,
    PROBE_MESH,
    PROBE_VECTOR_SIZE,
)


def _compute_digests(opt: str, field_seed: int,
                     mesh_dims: tuple[int, int, int], vector_size: int,
                     mutate: Optional[MutateHook]) -> dict[int, str]:
    from repro.cfd.assembly import MiniApp
    from repro.cfd.mesh import box_mesh
    from repro.cfd.reference import PHASE_OUTPUTS
    from repro.compiler.interpreter import Interpreter

    app = MiniApp(box_mesh(*mesh_dims), vector_size, opt,
                  field_seed=field_seed)
    kernels = list(app.kernels)
    if mutate is not None:
        kernels = mutate(kernels)
    gdata = app.global_float_data()
    globals_data = {**gdata, "elpos": app.elpos}
    hashers = {phase: hashlib.sha256() for phase in PHASE_OUTPUTS}
    for chunk in app.chunks:
        inst = app.context.instance_for_chunk(chunk, with_data=True,
                                              globals_data=globals_data)
        interp = Interpreter(inst, app.context.params)
        for kern in kernels:
            interp.run(kern)
            for name in PHASE_OUTPUTS[kern.phase]:
                arr = np.ascontiguousarray(
                    np.asarray(inst.data(name), dtype=np.float64))
                hashers[kern.phase].update(arr.tobytes())
    return {phase: h.hexdigest() for phase, h in sorted(hashers.items())}


@lru_cache(maxsize=32)
def _honest_digests(opt: str, field_seed: int,
                    mesh_dims: tuple[int, int, int],
                    vector_size: int) -> tuple[tuple[int, str], ...]:
    """Memoized honest-pipeline digests (the interpreter is slow and a
    chaos campaign fingerprints the same rungs many times over)."""
    return tuple(sorted(_compute_digests(opt, field_seed, mesh_dims,
                                         vector_size, None).items()))


def phase_output_digests(opt: str,
                         *,
                         field_seed: int = 0,
                         mutate: Optional[MutateHook] = None,
                         mesh_dims: tuple[int, int, int] = PROBE_MESH,
                         vector_size: int = PROBE_VECTOR_SIZE
                         ) -> dict[int, str]:
    """SHA-256 fingerprint of every phase's interpreted outputs.

    Interprets the (optionally ``mutate``-tampered) kernels of one rung
    on the golden probe, hashing each phase's output arrays across all
    chunks.  Honest rungs all return the same digests; a tampered
    pipeline diverges at the first semantically-changed phase.
    """
    if mutate is None:
        return dict(_honest_digests(opt, field_seed, tuple(mesh_dims),
                                    vector_size))
    return _compute_digests(opt, field_seed, tuple(mesh_dims), vector_size,
                            mutate)
