"""Per-phase golden output digests: the cross-rung semantic fingerprint.

Every optimization rung is a pure performance transformation, so the
executed outputs of each phase on a fixed probe configuration are
bit-identical across the whole ladder — scalar through vec1 produce the
same bytes phase by phase (the legal passes only restructure loops whose
iterations are independent, and iteration order within a phase's
accumulates is preserved).  :func:`phase_output_digests` turns that into
a comparable fingerprint: one SHA-256 per phase over the phase's output
arrays (:data:`repro.cfd.reference.PHASE_OUTPUTS`), accumulated chunk by
chunk on the golden probe mesh.

This is the invariant that catches the pass faults the counter checks
cannot: a mis-legalized interchange or fission conserves FLOPs by
construction (same arithmetic, wrong order/guard), so the FLOP-ladder
check stays green — but the first phase whose semantics changed diverges
from the majority digest, pinning both the struck run and the phase
(see :func:`repro.validation.invariants.check_phase_digest_ladder`).

Execution goes through a registered backend (:mod:`repro.backends`);
the digest is *backend-invariant* by construction — the vectorized
``"numpy"`` default is byte-identical to the ``"interpreter"`` oracle,
and ``tests/backends/test_equivalence_fixture.py`` freezes that claim.
The digest is a pure function of ``(kernels, field_seed)`` on the fixed
probe; notably it does **not** depend on the run's own mesh or
VECTOR_SIZE (different probe vector sizes pad differently and are *not*
comparable, which is why the probe size is pinned).
"""

from __future__ import annotations

import hashlib
from dataclasses import replace
from functools import lru_cache
from typing import Optional

import numpy as np

from repro.validation.golden import MutateHook
from repro.validation.probe import Probe, resolve_probe


def _compute_digests(probe: Probe,
                     mutate: Optional[MutateHook]) -> dict[int, str]:
    from repro.backends import get_backend
    from repro.cfd.reference import PHASE_OUTPUTS

    backend = get_backend(probe.backend)
    app = probe.build_app()
    kernels = list(app.kernels)
    if mutate is not None:
        kernels = mutate(kernels)
    gdata = app.global_float_data()
    globals_data = {**gdata, "elpos": app.elpos}
    hashers = {phase: hashlib.sha256() for phase in PHASE_OUTPUTS}
    for chunk in app.chunks:
        inst = app.context.instance_for_chunk(chunk, with_data=True,
                                              globals_data=globals_data)
        executor = backend.executor(inst, app.context.params)
        for kern in kernels:
            executor.run(kern)
            for name in PHASE_OUTPUTS[kern.phase]:
                arr = np.ascontiguousarray(
                    np.asarray(inst.data(name), dtype=np.float64))
                hashers[kern.phase].update(arr.tobytes())
    return {phase: h.hexdigest() for phase, h in sorted(hashers.items())}


@lru_cache(maxsize=64)
def _honest_digests(probe: Probe) -> tuple[tuple[int, str], ...]:
    """Memoized honest-pipeline digests, keyed by the (frozen, hashable)
    probe -- a chaos campaign fingerprints the same rungs many times
    over.  Tolerances are irrelevant to digests, so they are normalized
    out of the key to avoid duplicate cache entries."""
    return tuple(sorted(_compute_digests(probe, None).items()))


def phase_output_digests(opt: "str | Probe" = "vanilla",
                         *,
                         probe: Optional[Probe] = None,
                         backend: Optional[str] = None,
                         mutate: Optional[MutateHook] = None,
                         field_seed: Optional[int] = None,
                         mesh_dims: Optional[tuple[int, int, int]] = None,
                         vector_size: Optional[int] = None
                         ) -> dict[int, str]:
    """SHA-256 fingerprint of every phase's executed outputs.

    Accepts the same :class:`Probe` conventions as ``golden_check``: a
    probe (positional or ``probe=``), a bare rung string, or the
    deprecated per-field keywords.  ``backend=`` overrides the probe's
    execution backend; honest digests are identical whichever backend
    computes them.

    Runs the (optionally ``mutate``-tampered) kernels of one rung on the
    golden probe, hashing each phase's output arrays across all chunks.
    Honest rungs all return the same digests; a tampered pipeline
    diverges at the first semantically-changed phase.
    """
    spec = resolve_probe(opt, probe, backend=backend,
                         caller="phase_output_digests",
                         field_seed=field_seed, mesh_dims=mesh_dims,
                         vector_size=vector_size)
    if mutate is None:
        key = replace(spec, rtol=Probe.rtol, atol=Probe.atol)
        return dict(_honest_digests(key))
    return _compute_digests(spec, mutate)


# ---------------------------------------------------------------------------
# the solver path (phases 9-12)
# ---------------------------------------------------------------------------


def _compute_solver_digests(probe: Probe, mutate: Optional[MutateHook],
                            workload=None) -> dict[int, str]:
    from repro.backends import get_backend
    from repro.cfd.solver_phases import (
        SOLVER_PHASE_OUTPUTS,
        seeded_solver_inputs,
    )

    backend = get_backend(probe.backend)
    app = probe.build_app()
    if workload is None:
        workload, _ = app.build_solver()
    kernels = sorted(workload.kernels, key=lambda k: k.phase)
    if mutate is not None:
        kernels = mutate(list(kernels))
    ctx = workload.context
    data = seeded_solver_inputs(ctx, probe.field_seed)
    hashers = {phase: hashlib.sha256() for phase in SOLVER_PHASE_OUTPUTS}
    for chunk in ctx.chunks():
        inst = ctx.instance_for_chunk(chunk, globals_data=data)
        executor = backend.executor(inst, ctx.params)
        for kern in kernels:
            executor.run(kern)
            for name in SOLVER_PHASE_OUTPUTS[kern.phase]:
                arr = np.ascontiguousarray(
                    np.asarray(inst.data(name), dtype=np.float64))
                hashers[kern.phase].update(arr.tobytes())
    return {phase: h.hexdigest() for phase, h in sorted(hashers.items())}


@lru_cache(maxsize=64)
def _honest_solver_digests(probe: Probe) -> tuple[tuple[int, str], ...]:
    return tuple(sorted(_compute_solver_digests(probe, None).items()))


def solver_phase_digests(opt: "str | Probe" = "vanilla",
                         *,
                         probe: Optional[Probe] = None,
                         backend: Optional[str] = None,
                         mutate: Optional[MutateHook] = None,
                         workload=None) -> dict[int, str]:
    """SHA-256 fingerprint of every solver phase's executed outputs.

    The solver twin of :func:`phase_output_digests`: the compiled SpMV /
    dot / axpy / Jacobi-apply kernels (phases 9-12) run chunk by chunk
    on seeded vectors over the probe's assembled (diagonal-shifted)
    matrix, hashing each phase's output arrays
    (:data:`repro.cfd.solver_phases.SOLVER_PHASE_OUTPUTS`).  Honest
    rungs and honest backends all return the same digests; a tampered
    kernel list (``mutate``) or a fault-injected workload (``workload=``,
    e.g. a torn ELL gather table) diverges at the struck phase --
    FLOP-conserving faults included, exactly like the assembly ladder.
    """
    spec = resolve_probe(opt, probe, backend=backend,
                         caller="solver_phase_digests")
    if mutate is None and workload is None:
        key = replace(spec, rtol=Probe.rtol, atol=Probe.atol)
        return dict(_honest_solver_digests(key))
    return _compute_solver_digests(spec, mutate, workload=workload)
