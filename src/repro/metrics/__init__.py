"""Performance metrics (§2.2) and the Table-6 regression analysis."""

from repro.metrics.counters import PhaseCounters, RunCounters, merge_runs
from repro.metrics.metrics import (
    PhaseMetrics,
    avl,
    dcm_per_kiloinstruction,
    mem_instruction_ratio,
    occupancy,
    vcpi,
    vector_activity,
    vector_mix,
)
from repro.metrics.regression import (
    RegressionResult,
    cycles_vs_memory_model,
    linear_regression,
)
from repro.metrics.roofline import (
    RooflinePoint,
    machine_ridge,
    phase_roofline,
    render_roofline,
    run_roofline,
)

__all__ = [
    "PhaseCounters",
    "RunCounters",
    "merge_runs",
    "PhaseMetrics",
    "avl",
    "dcm_per_kiloinstruction",
    "mem_instruction_ratio",
    "occupancy",
    "vcpi",
    "vector_activity",
    "vector_mix",
    "RegressionResult",
    "cycles_vs_memory_model",
    "linear_regression",
    "RooflinePoint",
    "machine_ridge",
    "phase_roofline",
    "render_roofline",
    "run_roofline",
]
