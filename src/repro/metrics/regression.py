"""Multiple linear regression (the paper's Table-6 analysis).

The paper explains the anomalous VECTOR_SIZE scaling of phases 1 and 8
by regressing their cycle counts on two predictors -- L1 data-cache
misses per kilo-instruction and the percentage of memory instructions --
and reporting the coefficient of determination (R^2 = 0.903 and 0.966).
This module implements ordinary least squares with an intercept and the
same R^2 computation, NumPy only.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class RegressionResult:
    """OLS fit summary."""

    coefficients: np.ndarray   # (k,) slopes, predictor order preserved
    intercept: float
    r_squared: float
    predictions: np.ndarray
    residuals: np.ndarray

    @property
    def cod(self) -> float:
        """Coefficient of determination (paper notation)."""
        return self.r_squared


def linear_regression(X: np.ndarray, y: np.ndarray) -> RegressionResult:
    """Fit ``y ~ 1 + X`` by ordinary least squares.

    ``X`` has shape (n_samples, n_predictors); ``y`` has shape
    (n_samples,).  Requires at least one more sample than predictors.
    """
    X = np.asarray(X, dtype=float)
    y = np.asarray(y, dtype=float)
    if X.ndim == 1:
        X = X[:, None]
    n, k = X.shape
    if y.shape != (n,):
        raise ValueError(f"y must have shape ({n},), got {y.shape}")
    if n < k + 1:
        raise ValueError(f"need at least {k + 1} samples for {k} predictors, got {n}")
    A = np.column_stack([np.ones(n), X])
    beta, *_ = np.linalg.lstsq(A, y, rcond=None)
    pred = A @ beta
    resid = y - pred
    ss_res = float(resid @ resid)
    ss_tot = float(((y - y.mean()) ** 2).sum())
    r2 = 1.0 - ss_res / ss_tot if ss_tot > 0 else 1.0
    return RegressionResult(
        coefficients=beta[1:],
        intercept=float(beta[0]),
        r_squared=r2,
        predictions=pred,
        residuals=resid,
    )


def cycles_vs_memory_model(cycles: np.ndarray, dcm_per_ki: np.ndarray,
                           mem_ratio: np.ndarray) -> RegressionResult:
    """The exact Table-6 model: cycles ~ L1-DCM/ki + %memory-instructions."""
    X = np.column_stack([dcm_per_ki, mem_ratio])
    return linear_regression(X, np.asarray(cycles, dtype=float))
