"""Hardware-counter records.

These mirror what the paper collects through PAPI/Extrae on the real
prototype and through the Vehave emulator: total and vector cycles
(``c_t``, ``c_v``), total and vector instruction counts (``i_t``,
``i_v``), L1/L2 data-cache misses, and the vector-length histogram from
which the average vector length (AVL) is computed.

One :class:`PhaseCounters` exists per mini-app phase (the paper's 8
phases); :class:`RunCounters` is the per-execution collection.
"""

from __future__ import annotations

import json
import math
from collections import Counter
from dataclasses import dataclass, field
from typing import Iterable


@dataclass
class PhaseCounters:
    """Counters for one instrumented phase of one run."""

    phase: int
    cycles_total: float = 0.0
    #: cycles spent executing vector instructions (including their memory
    #: stalls), the paper's ``c_v``.
    cycles_vector: float = 0.0
    instr_scalar: float = 0.0
    instr_vconfig: float = 0.0
    instr_vector_arith: float = 0.0
    instr_vector_mem: float = 0.0
    instr_vector_ctrl: float = 0.0
    #: scalar memory instructions (subset of ``instr_scalar``).
    instr_scalar_mem: float = 0.0
    #: sum of vl over all vector instructions (AVL numerator).
    vl_sum: float = 0.0
    #: histogram {vl: dynamic instruction count}.
    vl_hist: Counter = field(default_factory=Counter)
    flops: float = 0.0
    l1_misses: int = 0
    l2_misses: int = 0
    #: element-level data accesses (scalar accesses + vector elements).
    mem_element_accesses: float = 0.0

    # ------------------------------------------------------------------
    # Derived quantities (the §2.2 notation).
    # ------------------------------------------------------------------

    @property
    def i_v(self) -> float:
        """Vector instructions (arith + memory + control lane)."""
        return self.instr_vector_arith + self.instr_vector_mem + self.instr_vector_ctrl

    @property
    def i_t(self) -> float:
        """Total instructions."""
        return self.instr_scalar + self.instr_vconfig + self.i_v

    @property
    def c_t(self) -> float:
        return self.cycles_total

    @property
    def c_v(self) -> float:
        return self.cycles_vector

    @property
    def instr_mem(self) -> float:
        """All memory instructions, scalar or vector."""
        return self.instr_scalar_mem + self.instr_vector_mem

    def merge(self, other: "PhaseCounters") -> None:
        """Accumulate *other* into this record (phases must match)."""
        if other.phase != self.phase:
            raise ValueError(f"phase mismatch: {self.phase} vs {other.phase}")
        self.cycles_total += other.cycles_total
        self.cycles_vector += other.cycles_vector
        self.instr_scalar += other.instr_scalar
        self.instr_vconfig += other.instr_vconfig
        self.instr_vector_arith += other.instr_vector_arith
        self.instr_vector_mem += other.instr_vector_mem
        self.instr_vector_ctrl += other.instr_vector_ctrl
        self.instr_scalar_mem += other.instr_scalar_mem
        self.vl_sum += other.vl_sum
        self.vl_hist.update(other.vl_hist)
        self.flops += other.flops
        self.l1_misses += other.l1_misses
        self.l2_misses += other.l2_misses
        self.mem_element_accesses += other.mem_element_accesses


@dataclass
class RunCounters:
    """All phase counters of one mini-app execution."""

    phases: dict[int, PhaseCounters] = field(default_factory=dict)

    def phase(self, phase_id: int) -> PhaseCounters:
        if phase_id not in self.phases:
            self.phases[phase_id] = PhaseCounters(phase=phase_id)
        return self.phases[phase_id]

    def phase_ids(self) -> list[int]:
        return sorted(self.phases)

    @property
    def total_cycles(self) -> float:
        return sum(p.cycles_total for p in self.phases.values())

    @property
    def total_instructions(self) -> float:
        return sum(p.i_t for p in self.phases.values())

    @property
    def total_flops(self) -> float:
        return sum(p.flops for p in self.phases.values())

    def aggregate(self) -> PhaseCounters:
        """Merge every phase into one whole-run record (phase id 0)."""
        agg = PhaseCounters(phase=0)
        for p in self.phases.values():
            clone = PhaseCounters(**{**p.__dict__, "phase": 0, "vl_hist": Counter(p.vl_hist)})
            agg.merge(clone)
        return agg

    def cycle_fractions(self) -> dict[int, float]:
        """Fraction of total cycles spent in each phase (Table 3 shape)."""
        total = self.total_cycles
        if total == 0:
            return {pid: 0.0 for pid in self.phase_ids()}
        return {pid: self.phases[pid].cycles_total / total for pid in self.phase_ids()}


def merge_runs(runs: Iterable[RunCounters]) -> RunCounters:
    """Combine several runs (e.g. repeated timesteps) into one record."""
    out = RunCounters()
    for run in runs:
        for pid, pc in run.phases.items():
            out.phase(pid).merge(pc)
    return out


# ---------------------------------------------------------------------------
# JSON serialization (the executor's disk-cache and worker wire format).
# ---------------------------------------------------------------------------

#: the scalar fields persisted per phase, in canonical order.
COUNTER_FIELDS: tuple[str, ...] = (
    "cycles_total", "cycles_vector", "instr_scalar", "instr_vconfig",
    "instr_vector_arith", "instr_vector_mem", "instr_vector_ctrl",
    "instr_scalar_mem", "vl_sum", "flops", "l1_misses", "l2_misses",
    "mem_element_accesses",
)


def counters_to_dict(run: RunCounters) -> dict:
    """Plain-data (JSON/pickle-safe) form of a :class:`RunCounters`."""
    out = {}
    for pid, pc in run.phases.items():
        rec = {f: getattr(pc, f) for f in COUNTER_FIELDS}
        rec["vl_hist"] = {str(k): v for k, v in pc.vl_hist.items()}
        out[str(pid)] = rec
    return out


def _finite_number(field_name: str, value) -> float | int:
    """Accept only finite real numbers: a corrupted-but-parseable payload
    (NaN/Inf smuggled through JSON via ``Infinity`` literals, or a bit
    flip that decoded to ``inf``) must never round-trip into artifacts."""
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise TypeError(f"{field_name}: expected a number, got {value!r}")
    if not math.isfinite(value):
        raise ValueError(f"{field_name}: non-finite value {value!r}")
    return value


def counters_from_dict(data: dict) -> RunCounters:
    """Inverse of :func:`counters_to_dict`.

    Keys starting with ``__`` are reserved for payload metadata (cache
    digest, validation verdict) and skipped.  Non-finite counter values
    raise ``ValueError`` so damaged payloads are rejected at the parse
    boundary instead of flowing into tables and figures.
    """
    run = RunCounters()
    for pid_s, rec in data.items():
        if pid_s.startswith("__"):
            continue
        pc = PhaseCounters(phase=int(pid_s))
        for f in COUNTER_FIELDS:
            setattr(pc, f, _finite_number(f, rec[f]))
        pc.vl_hist = Counter(
            {int(k): _finite_number(f"vl_hist[{k}]", v)
             for k, v in rec["vl_hist"].items()})
        run.phases[int(pid_s)] = pc
    return run


def counters_to_json(run: RunCounters) -> str:
    """Canonical JSON text: key-sorted so identical counters always
    serialize to identical bytes, whichever process produced them."""
    return json.dumps(counters_to_dict(run), sort_keys=True)


def counters_from_json(text: str) -> RunCounters:
    """Parse :func:`counters_to_json` output (raises ``ValueError`` /
    ``KeyError`` / ``TypeError`` on malformed payloads)."""
    data = json.loads(text)
    if not isinstance(data, dict):
        raise TypeError(f"counter payload must be an object, got {type(data).__name__}")
    return counters_from_dict(data)
