"""The paper's §2.2 performance metrics.

Defined verbatim on the hardware counters:

* ``M_v = i_v / i_t`` -- vector instruction mix;
* ``A_v = c_v / c_t`` -- vector activity;
* ``C_v = c_v / i_v`` -- cycles per vector instruction (vCPI);
* ``avl = (1/i_v) * sum(vl_k)`` -- average vector length (AVL);
* ``E_v = avl / vl_max`` -- vector occupancy.

All functions are total: a phase with no vector instructions yields 0
for every vector metric (matching how the paper plots non-vectorized
phases).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.metrics.counters import PhaseCounters


def vector_mix(c: PhaseCounters) -> float:
    """M_v: fraction of executed instructions that are vector."""
    return c.i_v / c.i_t if c.i_t else 0.0


def vector_activity(c: PhaseCounters) -> float:
    """A_v: fraction of cycles spent executing vector instructions."""
    return c.c_v / c.c_t if c.c_t else 0.0


def vcpi(c: PhaseCounters) -> float:
    """C_v: cycles per vector instruction."""
    return c.c_v / c.i_v if c.i_v else 0.0


def avl(c: PhaseCounters) -> float:
    """Average vector length of the executed vector instructions."""
    return c.vl_sum / c.i_v if c.i_v else 0.0


def occupancy(c: PhaseCounters, vl_max: int) -> float:
    """E_v: average vector length relative to the machine maximum."""
    if vl_max <= 0:
        raise ValueError("vl_max must be positive")
    return avl(c) / vl_max


def dcm_per_kiloinstruction(c: PhaseCounters, level: int = 1) -> float:
    """Data-cache misses per thousand executed instructions.

    One of the two regressors in the paper's Table-6 analysis.
    """
    misses = c.l1_misses if level == 1 else c.l2_misses
    return 1000.0 * misses / c.i_t if c.i_t else 0.0


def mem_instruction_ratio(c: PhaseCounters) -> float:
    """Fraction of executed instructions that access memory.

    The second Table-6 regressor ("percentage of memory instructions").
    """
    return c.instr_mem / c.i_t if c.i_t else 0.0


@dataclass(frozen=True)
class PhaseMetrics:
    """All §2.2 metrics for one phase, precomputed."""

    phase: int
    m_v: float
    a_v: float
    vcpi: float
    avl: float
    e_v: float
    cycles: float
    instructions: float
    flops: float
    l1_misses: int
    l2_misses: int
    dcm_per_ki: float
    mem_ratio: float

    @classmethod
    def from_counters(cls, c: PhaseCounters, vl_max: int) -> "PhaseMetrics":
        return cls(
            phase=c.phase,
            m_v=vector_mix(c),
            a_v=vector_activity(c),
            vcpi=vcpi(c),
            avl=avl(c),
            e_v=occupancy(c, vl_max),
            cycles=c.c_t,
            instructions=c.i_t,
            flops=c.flops,
            l1_misses=c.l1_misses,
            l2_misses=c.l2_misses,
            dcm_per_ki=dcm_per_kiloinstruction(c),
            mem_ratio=mem_instruction_ratio(c),
        )
