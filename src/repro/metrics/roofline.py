"""Roofline analysis on the simulated counters.

A standard co-design companion to the paper's §2.2 metrics: each phase
is placed on the machine's roofline from its measured FLOP count and
memory traffic, revealing whether it is compute- or bandwidth-bound and
how far from the achievable ceiling it runs.  The paper reads the same
information off the vector-activity/vCPI pairs (e.g. "this high
percentage of memory accesses causes the mini-app not to take fully
advantage of the computing power of the VPU"); the roofline makes it
quantitative.

Traffic is counted at element granularity (8 B per access) as seen by
the core -- the appropriate denominator for an L1-level roofline of a
gather-heavy kernel.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.machine.params import MachineParams
from repro.metrics.counters import PhaseCounters, RunCounters


@dataclass(frozen=True)
class RooflinePoint:
    """One phase's position on the roofline."""

    phase: int
    #: arithmetic intensity [FLOP / byte].
    intensity: float
    #: achieved throughput [FLOP / cycle].
    achieved: float
    #: the machine ceiling at this intensity [FLOP / cycle].
    ceiling: float
    #: True when the bandwidth slope (not the FLOP peak) limits the phase.
    memory_bound: bool

    @property
    def efficiency(self) -> float:
        """Achieved fraction of the attainable ceiling (0..1)."""
        return self.achieved / self.ceiling if self.ceiling else 0.0


def machine_ridge(machine: MachineParams) -> float:
    """Arithmetic intensity of the ridge point [FLOP/byte]."""
    return machine.peak_flops_per_cycle / machine.memory.bandwidth_bytes_per_cycle


def phase_roofline(pc: PhaseCounters, machine: MachineParams) -> RooflinePoint:
    """Place one phase on *machine*'s roofline."""
    bytes_moved = pc.mem_element_accesses * 8.0
    intensity = pc.flops / bytes_moved if bytes_moved else 0.0
    achieved = pc.flops / pc.cycles_total if pc.cycles_total else 0.0
    bw_ceiling = intensity * machine.memory.bandwidth_bytes_per_cycle
    ceiling = min(machine.peak_flops_per_cycle, bw_ceiling) if bytes_moved \
        else machine.peak_flops_per_cycle
    return RooflinePoint(
        phase=pc.phase,
        intensity=intensity,
        achieved=achieved,
        ceiling=ceiling,
        memory_bound=bool(bytes_moved) and bw_ceiling < machine.peak_flops_per_cycle,
    )


def run_roofline(run: RunCounters, machine: MachineParams
                 ) -> dict[int, RooflinePoint]:
    """Roofline points for every phase of a run."""
    return {p: phase_roofline(pc, machine) for p, pc in run.phases.items()}


def render_roofline(points: dict[int, RooflinePoint],
                    machine: MachineParams, width: int = 40) -> str:
    """ASCII roofline table with efficiency bars."""
    lines = [
        f"roofline: {machine.name} "
        f"(peak {machine.peak_flops_per_cycle:g} FLOP/cyc, "
        f"bw {machine.memory.bandwidth_bytes_per_cycle:g} B/cyc, "
        f"ridge {machine_ridge(machine):.2f} FLOP/B)",
        "",
        f"{'phase':>5}  {'FLOP/B':>7}  {'achieved':>9}  {'ceiling':>8}  "
        f"{'bound':>6}  efficiency",
    ]
    for p in sorted(points):
        pt = points[p]
        bar = "#" * int(round(width * min(pt.efficiency, 1.0)))
        lines.append(
            f"{p:>5}  {pt.intensity:>7.3f}  {pt.achieved:>9.3f}  "
            f"{pt.ceiling:>8.3f}  {'mem' if pt.memory_bound else 'fp':>6}  "
            f"{bar} {100 * pt.efficiency:.0f}%")
    return "\n".join(lines)
