"""The closed co-design loop: iterate advisor-driven optimization.

``run_codesign_loop`` automates the paper's Section-3 cycle end to end:
start from the vanilla auto-vectorized build, measure, analyze, and
**apply** the transformation pass the advisor recommends -- the
recommended :class:`~repro.compiler.transforms.Pass` is appended to the
pipeline and the mini-app recompiled, with no hand refactor in between.
On the mini-app this reproduces the exact VEC2 -> IVEC2 -> VEC1 sequence
the authors applied by hand -- including the VEC2 intermediate step
being a (deliberate) performance regression on the way to IVEC2.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cfd.assembly import MiniApp
from repro.cfd.mesh import Mesh
from repro.codesign.advisor import Advisor, Finding, recommend_next_pass
from repro.compiler.transforms import OPT_PASSES, opt_for_passes
from repro.machine.params import MachineParams


@dataclass
class CodesignStep:
    """One iteration of the loop."""

    opt: str
    #: the pass schedule this step was compiled with.
    passes: tuple[str, ...]
    total_cycles: float
    speedup_vs_start: float
    findings: list[Finding]
    #: the pass the advisor recommends applying next (``None`` at the
    #: end state), and the rung label the extended schedule maps to.
    next_pass: str | None
    next_opt: str | None


@dataclass
class CodesignResult:
    steps: list[CodesignStep] = field(default_factory=list)

    @property
    def sequence(self) -> list[str]:
        return [s.opt for s in self.steps]

    @property
    def pass_sequence(self) -> list[str]:
        """The passes applied between steps, in application order."""
        return [s.next_pass for s in self.steps if s.next_pass]

    @property
    def final_speedup(self) -> float:
        return self.steps[-1].speedup_vs_start if self.steps else 1.0


def run_codesign_loop(mesh: Mesh, machine: MachineParams,
                      vector_size: int = 240, start_opt: str = "vanilla",
                      max_steps: int = 6, cache_enabled: bool = True
                      ) -> CodesignResult:
    """Iterate measure -> analyze -> apply-pass until convergence."""
    advisor = Advisor(machine)
    result = CodesignResult()
    if start_opt not in OPT_PASSES:
        raise ValueError(
            f"unknown optimization level {start_opt!r}; known: "
            f"{tuple(OPT_PASSES)}")
    passes = tuple(OPT_PASSES[start_opt])
    opt = start_opt
    baseline: float | None = None
    for _ in range(max_steps):
        app = MiniApp(mesh, vector_size=vector_size, opt=opt, passes=passes)
        run = app.run_timed(machine, cache_enabled=cache_enabled)
        cycles = run.total_cycles
        if baseline is None:
            baseline = cycles
        findings = advisor.analyze(app.remarks, run, vector_size)
        next_cls = recommend_next_pass(findings, passes)
        next_passes = passes + (next_cls.name,) if next_cls else None
        next_opt = opt_for_passes(next_passes) if next_passes else None
        result.steps.append(CodesignStep(
            opt=app.opt, passes=passes, total_cycles=cycles,
            speedup_vs_start=baseline / cycles,
            findings=findings,
            next_pass=next_cls.name if next_cls else None,
            next_opt=next_opt,
        ))
        if next_passes is None:
            break
        passes = next_passes
        opt = next_opt or app.opt
    return result
