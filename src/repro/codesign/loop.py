"""The closed co-design loop: iterate advisor-driven optimization.

``run_codesign_loop`` automates the paper's Section-3 cycle end to end:
start from the vanilla auto-vectorized build, measure, analyze, apply
the recommended transformation, and repeat until the advisor stops
recommending code changes.  On the mini-app this reproduces the exact
VEC2 -> IVEC2 -> VEC1 sequence the authors applied by hand -- including
the VEC2 intermediate step being a (deliberate) performance regression
on the way to IVEC2.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cfd.assembly import MiniApp
from repro.cfd.mesh import Mesh
from repro.codesign.advisor import Advisor, Finding, recommend_next_opt
from repro.machine.params import MachineParams


@dataclass
class CodesignStep:
    """One iteration of the loop."""

    opt: str
    total_cycles: float
    speedup_vs_start: float
    findings: list[Finding]
    next_opt: str | None


@dataclass
class CodesignResult:
    steps: list[CodesignStep] = field(default_factory=list)

    @property
    def sequence(self) -> list[str]:
        return [s.opt for s in self.steps]

    @property
    def final_speedup(self) -> float:
        return self.steps[-1].speedup_vs_start if self.steps else 1.0


def run_codesign_loop(mesh: Mesh, machine: MachineParams,
                      vector_size: int = 240, start_opt: str = "vanilla",
                      max_steps: int = 6, cache_enabled: bool = True
                      ) -> CodesignResult:
    """Iterate measure -> analyze -> refactor until convergence."""
    advisor = Advisor(machine)
    result = CodesignResult()
    opt: str | None = start_opt
    baseline: float | None = None
    for _ in range(max_steps):
        assert opt is not None
        app = MiniApp(mesh, vector_size=vector_size, opt=opt)
        run = app.run_timed(machine, cache_enabled=cache_enabled)
        cycles = run.total_cycles
        if baseline is None:
            baseline = cycles
        findings = advisor.analyze(app.remarks, run, vector_size)
        next_opt = recommend_next_opt(findings, opt)
        result.steps.append(CodesignStep(
            opt=opt, total_cycles=cycles,
            speedup_vs_start=baseline / cycles,
            findings=findings, next_opt=next_opt,
        ))
        if next_opt is None:
            break
        opt = next_opt
    return result
