"""The paper's co-design methodology as executable rules."""

from repro.codesign.advisor import (
    Advisor,
    Finding,
    Severity,
    recommend_next_opt,
    render_findings,
)
from repro.codesign.loop import CodesignResult, CodesignStep, run_codesign_loop

__all__ = [
    "Advisor",
    "Finding",
    "Severity",
    "recommend_next_opt",
    "render_findings",
    "CodesignResult",
    "CodesignStep",
    "run_codesign_loop",
]
