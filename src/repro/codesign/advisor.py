"""The co-design advisor: the paper's methodology as executable rules.

Section 3 of the paper describes an iterative loop: profile, find the
phase that limits performance, diagnose *why* the compiler's
vectorization is absent or suboptimal there, refactor, repeat.  Section 7
distills the outcome into "lessons learned" for application developers:

1. *provide loop limits at compile time instead of non-constant
   variables* (the VEC2 fix);
2. *use the longer dimension in the most inner loop* (the IVEC2 fix);
3. *splitting loops into smaller units of work may aid the compiler*
   (the VEC1 fix) -- with the caveat that it is not always beneficial;
plus the hardware-facing insight that vector lengths should match the
FSM granularity (VECTOR_SIZE = 240 on Vitruvius).

This module encodes those rules over the artifacts the methodology
consumes -- vectorization remarks and per-phase hardware counters -- and
emits ranked findings with concrete recommendations.  On the mini-app it
re-derives the paper's exact optimization sequence (see
``tests/codesign``), and it works on any kernel built from the IR.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, Optional

from repro.cfd.assembly import MiniApp
from repro.compiler.transforms import (
    ConstantTripCount,
    LoopFission,
    LoopInterchange,
    Pass,
)
from repro.compiler.vectorizer import VecRemark
from repro.machine.params import MachineParams
from repro.metrics import metrics as M
from repro.metrics.counters import RunCounters


class Severity(enum.IntEnum):
    INFO = 0
    MINOR = 1
    MAJOR = 2
    CRITICAL = 3


@dataclass(frozen=True)
class Finding:
    """One diagnosis + recommendation for a phase."""

    phase: int
    category: str
    severity: Severity
    message: str
    recommendation: str
    #: estimated fraction of total cycles at stake.
    cycles_share: float = 0.0

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (f"[{self.severity.name}] phase {self.phase} "
                f"({self.category}, {100 * self.cycles_share:.1f}% of cycles): "
                f"{self.message}\n    -> {self.recommendation}")


#: cycle share above which a phase counts as a hotspot worth attacking.
HOTSPOT_SHARE = 0.10
#: occupancy below which a vectorized phase is flagged as underfilled.
LOW_OCCUPANCY = 0.25


class Advisor:
    """Analyze one compiled+measured mini-app configuration."""

    def __init__(self, machine: MachineParams):
        self.machine = machine

    # ------------------------------------------------------------------

    def analyze(self, remarks: Iterable[VecRemark], run: RunCounters,
                vector_size: int) -> list[Finding]:
        """Produce ranked findings from remarks + counters."""
        findings: list[Finding] = []
        shares = run.cycle_fractions()
        by_phase: dict[int, list[VecRemark]] = {}
        for r in remarks:
            by_phase.setdefault(r.phase, []).append(r)

        for phase in sorted(run.phases):
            pc = run.phases[phase]
            share = shares.get(phase, 0.0)
            phase_remarks = by_phase.get(phase, [])
            hot = share >= HOTSPOT_SHARE
            sev_hot = Severity.CRITICAL if share >= 0.2 else Severity.MAJOR

            # lesson 1: compile-time loop limits (R1 blockers).
            r1 = [r for r in phase_remarks
                  if any(b.code == "R1-runtime-trip-count" for b in r.blockers)]
            if r1:
                findings.append(Finding(
                    phase=phase, category="runtime-trip-count",
                    severity=sev_hot if hot else Severity.MINOR,
                    message=(f"loop '{r1[0].loop_var}' cannot be vectorized: "
                             f"its trip count is a dummy argument re-loaded "
                             f"every iteration"),
                    recommendation=("provide the loop limit at compile time "
                                    "(declare it as a constant/parameter "
                                    "instead of a dummy argument)"),
                    cycles_share=share,
                ))

            # lesson 3: mixed bodies (multi-versioned loops).
            mixed = [r for r in phase_remarks if r.status == "multi_versioned"]
            if mixed:
                findings.append(Finding(
                    phase=phase, category="mixed-loop-body",
                    severity=sev_hot if hot else Severity.MINOR,
                    message=(f"loop '{mixed[0].loop_var}' mixes vectorizable "
                             f"data movement with non-vectorizable work; the "
                             f"runtime always takes the scalar version"),
                    recommendation=("split the loop into smaller units of work "
                                    "(loop fission) so the straight-line part "
                                    "vectorizes; keep loops sharing data "
                                    "together"),
                    cycles_share=share,
                ))

            # lesson 2: vectorized but with a tiny vector length.
            if pc.i_v > 0:
                occ = M.occupancy(pc, self.machine.vl_max)
                avl = M.avl(pc)
                usable = min(vector_size, self.machine.vl_max)
                if occ < LOW_OCCUPANCY and avl < 0.5 * usable:
                    findings.append(Finding(
                        phase=phase, category="low-avl",
                        severity=sev_hot if hot else Severity.MINOR,
                        message=(f"vector instructions run with AVL = "
                                 f"{avl:.1f} of {self.machine.vl_max} "
                                 f"available elements"),
                        recommendation=("use the longer dimension "
                                        "(VECTOR_SIZE) as the innermost loop "
                                        "so the vectorizer can request long "
                                        "vector lengths (loop interchange)"),
                        cycles_share=share,
                    ))

            # inherent limits: may-alias scatters.
            r3 = [r for r in phase_remarks
                  if any(b.code == "R3-may-alias-scatter" for b in r.blockers)]
            if r3 and hot:
                findings.append(Finding(
                    phase=phase, category="scatter",
                    severity=Severity.INFO,
                    message=(f"loop '{r3[0].loop_var}' scatters through a "
                             f"runtime index array; elements of a chunk may "
                             f"conflict, so vectorization is illegal"),
                    recommendation=("consider a conflict-free assembly "
                                    "(colouring) or hardware scatter-conflict "
                                    "detection; otherwise this phase stays "
                                    "scalar"),
                    cycles_share=share,
                ))

            # memory-bound vectorized hotspots.
            if pc.i_v > 0 and hot:
                mem_ratio = pc.instr_vector_mem / pc.i_v
                if mem_ratio > 0.7:
                    findings.append(Finding(
                        phase=phase, category="memory-bound",
                        severity=Severity.INFO,
                        message=(f"{100 * mem_ratio:.0f}% of the phase's "
                                 f"vector instructions access memory"),
                        recommendation=("the phase is bandwidth-limited; "
                                        "expect vCPI to track memory, not "
                                        "FMA, latency"),
                        cycles_share=share,
                    ))

        # hardware-facing lesson: match the FSM granularity.
        vpu = self.machine.vpu
        if vpu is not None and vpu.fsm_group_elems:
            group = vpu.fsm_group_elems
            usable = min(vector_size, vpu.vl_max)
            if usable % group != 0:
                best = (usable // group) * group
                findings.append(Finding(
                    phase=0, category="fsm-granularity",
                    severity=Severity.MINOR,
                    message=(f"VECTOR_SIZE = {vector_size} yields vector "
                             f"lengths that are not a multiple of the VPU's "
                             f"{group}-element FSM group"),
                    recommendation=(f"prefer VECTOR_SIZE = {best or group} "
                                    f"(multiples of {group} maximize "
                                    f"elements/cycle on {self.machine.name})"),
                    cycles_share=0.0,
                ))

        findings.sort(key=lambda f: (f.severity, f.cycles_share), reverse=True)
        return findings

    # ------------------------------------------------------------------

    def analyze_miniapp(self, app: MiniApp, *, cache_enabled: bool = True
                        ) -> list[Finding]:
        """Convenience: run the mini-app on this machine and analyze it."""
        run = app.run_timed(self.machine, cache_enabled=cache_enabled)
        return self.analyze(app.remarks, run, app.vector_size)


#: the paper's optimization ladder: current level -> (next level, category
#: of the finding that motivates it).
NEXT_STEP: dict[str, tuple[str, str]] = {
    "vanilla": ("vec2", "runtime-trip-count"),
    "vec2": ("ivec2", "low-avl"),
    "ivec2": ("vec1", "mixed-loop-body"),
}

#: finding category -> the transformation pass that fixes it (the
#: executable form of the paper's three lessons learned).
CATEGORY_PASS: dict[str, type[Pass]] = {
    "runtime-trip-count": ConstantTripCount,
    "low-avl": LoopInterchange,
    "mixed-loop-body": LoopFission,
}


def _with_prereqs(cls: type[Pass],
                  applied: frozenset[str]) -> type[Pass]:
    """The first unapplied prerequisite of *cls*, or *cls* itself --
    recommending ``loop-interchange`` before ``const-trip-count`` ran
    would only produce an illegal remark."""
    for req in cls.requires:
        if req.name not in applied:
            return _with_prereqs(req, applied)
    return cls


def recommend_next_pass(findings: list[Finding],
                        current_passes: Iterable[str]) -> Optional[type[Pass]]:
    """The transformation pass the top actionable finding calls for.

    This is what lets the co-design loop *apply* its own advice: the
    returned pass class is appended to the pipeline and the mini-app is
    recompiled, no hand refactor in between.  Returns ``None`` when no
    finding maps to an unapplied pass (the vec1 end state).
    """
    applied = frozenset(current_passes)
    actionable = [f for f in findings if f.category in CATEGORY_PASS]
    for f in sorted(actionable, key=lambda f: (f.severity, f.cycles_share),
                    reverse=True):
        cls = _with_prereqs(CATEGORY_PASS[f.category], applied)
        if cls.name not in applied:
            return cls
    return None


def recommend_next_opt(findings: list[Finding], current_opt: str
                       ) -> Optional[str]:
    """Map the top actionable finding to the next optimization level.

    Returns ``None`` when the findings no longer motivate a code change
    (the vec1 end state).
    """
    if current_opt not in NEXT_STEP:
        return None
    next_opt, expected_category = NEXT_STEP[current_opt]
    actionable = [f for f in findings
                  if f.category in ("runtime-trip-count", "low-avl",
                                    "mixed-loop-body")]
    if not actionable:
        return None
    top = max(actionable, key=lambda f: (f.severity, f.cycles_share))
    if top.category == expected_category:
        return next_opt
    # the ladder is cumulative: any actionable finding still points at
    # the canonical next step.
    return next_opt


def render_findings(findings: list[Finding]) -> str:
    """Human-readable report."""
    if not findings:
        return "no findings: the configuration looks well vectorized."
    return "\n".join(str(f) for f in findings)
