"""NumPy reference semantics of the eight mini-app phases.

Each ``ref_phaseN`` mirrors the corresponding IR kernel in
:mod:`repro.cfd.phases` exactly (same formulas, same array names), but
written as whole-chunk NumPy operations.  This is the fast numerical
path used by the assembly driver and the oracle the IR interpreter is
tested against: ``interpreter(phaseN kernel) == ref_phaseN`` for every
optimization variant, which is the reproduction's proof that VEC2, IVEC2
and VEC1 are pure performance transformations.

All functions mutate the ``data`` mapping in place (array name ->
ndarray), using the chunk's element ids ``elems`` to index the padded
global mesh arrays.
"""

from __future__ import annotations

from typing import Mapping, MutableMapping

import numpy as np

from repro.cfd.elements import HEX08, NDIME, NGAUS

Data = MutableMapping[str, np.ndarray]


def ref_phase1(d: Data, params: Mapping[str, float], elems: np.ndarray) -> None:
    """Gather element-level data (properties, subscales, local dt)."""
    mate = d["lmate"][elems]
    d["eldens"][:] = d["densi_mat"][mate]
    d["elvisc"][:] = d["visco_mat"][mate]
    invalid = d["ltype"][elems] != HEX08
    d["eldens"][invalid] = 1.0
    d["elvisc"][invalid] = 1.0
    d["eldtinv"][:] = d["dtinv_fld"][elems]
    d["elchale"][:] = d["chale_fld"][elems]
    d["elsgs"][:] = d["tesgs"][elems]
    tracked = d["kfl_sgs"][elems] != 0
    d["elsgs_old"][tracked] = d["tesgs_old"][elems][tracked]


def ref_phase2(d: Data, params: Mapping[str, float], elems: np.ndarray) -> None:
    """Gather nodal unknowns and coordinates through the connectivity."""
    nodes = d["lnods"][elems]                # (V, pnode)
    d["elunk"][:] = d["unkno"][nodes]        # (V, pnode, ndofn)
    d["elold"][:] = d["unkno_old"][nodes]    # (V, pnode, ndime)
    d["elcod"][:] = d["coord"][nodes]        # (V, pnode, ndime)


def ref_phase3(d: Data, params: Mapping[str, float], elems: np.ndarray) -> None:
    """Jacobian, determinant, inverse, Cartesian derivatives, volumes."""
    elcod = d["elcod"]
    deriv = d["deriv"]
    weigp = d["weigp"]
    for g in range(NGAUS):
        xj = np.einsum("vai,ja->vij", elcod, deriv[:, :, g])
        d["xjacm"][:] = xj
        det = (
            xj[:, 0, 0] * (xj[:, 1, 1] * xj[:, 2, 2] - xj[:, 2, 1] * xj[:, 1, 2])
            - xj[:, 0, 1] * (xj[:, 1, 0] * xj[:, 2, 2] - xj[:, 2, 0] * xj[:, 1, 2])
            + xj[:, 0, 2] * (xj[:, 1, 0] * xj[:, 2, 1] - xj[:, 2, 0] * xj[:, 1, 1])
        )
        d["gpdet"][:, g] = det
        d["gpvol"][:, g] = weigp[g] * det
        invdet = 1.0 / det
        d["gpnve"][:] = invdet  # scratch reuse, as in the kernel
        xji = d["xjaci"]
        for i in range(NDIME):
            for j in range(NDIME):
                r0, r1 = (j + 1) % 3, (j + 2) % 3
                c0, c1 = (i + 1) % 3, (i + 2) % 3
                xji[:, i, j] = (
                    xj[:, r0, c0] * xj[:, r1, c1] - xj[:, r0, c1] * xj[:, r1, c0]
                ) * invdet
        d["gpcar"][:, :, :, g] = np.einsum("vji,ja->via", xji, deriv[:, :, g])


def ref_phase4(d: Data, params: Mapping[str, float], elems: np.ndarray) -> None:
    """Velocity, pressure and velocity gradient at the Gauss points."""
    elunk = d["elunk"]
    shapf = d["shapf"]
    for g in range(NGAUS):
        d["gpvel"][:, :, g] = np.einsum("a,vad->vd", shapf[:, g], elunk[:, :, :NDIME])
        d["gpold"][:, :, g] = np.einsum("a,vad->vd", shapf[:, g], d["elold"])
        d["gppre"][:, g] = elunk[:, :, 3] @ shapf[:, g]
        # gpgve[v, j, i] = du_i/dx_j
        d["gpgve"][:, :, :, g] = np.einsum(
            "vja,vad->vjd", d["gpcar"][:, :, :, g], elunk[:, :, :NDIME])


def ref_phase5(d: Data, params: Mapping[str, float], elems: np.ndarray) -> None:
    """Stabilization parameters + elemental accumulator initialization."""
    v0 = d["gpvel"][:, :, 0]
    d["gpnve"][:] = np.sqrt(np.einsum("vd,vd->v", v0, v0))
    h = d["elchale"]
    d["tau1"][:] = 1.0 / (
        (params["tau_c1"] * d["elvisc"]) / (h * h)
        + (params["tau_c2"] * (d["eldens"] * d["gpnve"])) / h
    )
    d["tau2"][:] = (h * h) / (params["tau_c1"] * d["tau1"])
    d["elauu"][:] = 0.0
    d["elrbu"][:] = 0.0
    d["elrbp"][:] = 0.0


def ref_phase6(d: Data, params: Mapping[str, float], elems: np.ndarray) -> None:
    """Convective term + VMS stabilization contributions."""
    shapf = d["shapf"]
    for g in range(NGAUS):
        gpcar = d["gpcar"][:, :, :, g]           # (V, ndime, pnode)
        gpvel = d["gpvel"][:, :, g]              # (V, ndime)
        gpadv = gpvel + 0.5 * (d["elsgs"][:, :, g] + d["elsgs_old"][:, :, g])
        d["gpadv"][:] = gpadv
        gpaux = np.einsum("vd,vda->va", gpadv, gpcar)
        d["gpaux"][:] = gpaux
        gprhs = (
            d["eldens"][:, None] * (d["eldtinv"][:, None] * d["gpold"][:, :, g])
            - d["eldens"][:, None]
            * np.einsum("vj,vjd->vd", gpvel, d["gpgve"][:, :, :, g])
        )
        d["gprhs"][:] = gprhs
        w = d["gpvol"][:, g]
        test = shapf[None, :, g] + d["tau1"][:, None] * gpaux   # (V, pnode)
        # elauu[v, j, i] += w rho (a.grad N_i) (N_j + tau1 (a.grad N_j))
        d["elauu"] += np.einsum(
            "v,vi,vj->vji", w * d["eldens"], gpaux, test)
        # grad-div stabilization
        divshape = gpcar.sum(axis=1)             # (V, pnode)
        d["elauu"] += np.einsum(
            "v,vj,vi->vji", w * d["tau2"], divshape, divshape)
        # elrbu[v, d, i] += w rhs_d (N_i + tau1 (a.grad N_i))
        d["elrbu"] += np.einsum("v,vd,vi->vdi", w, gprhs, test)
        # elrbp[v, a] += w tau1 (grad N_a . rhs)
        d["elrbp"] += (w * d["tau1"])[:, None] * np.einsum(
            "vda,vd->va", gpcar, gprhs)


def ref_phase7(d: Data, params: Mapping[str, float], elems: np.ndarray) -> None:
    """Viscous term (semi-implicit elemental matrix, full stress form)."""
    for g in range(NGAUS):
        gpcar = d["gpcar"][:, :, :, g]
        w = d["gpvol"][:, g] * d["elvisc"]
        lap = np.einsum("vdi,vdj->vji", gpcar, gpcar)
        divshape = gpcar.sum(axis=1)                 # (V, pnode)
        d["gpaux"][:] = divshape
        bulk = (1.0 / 3.0) * np.einsum("vi,vj->vji", divshape, divshape)
        d["elauu"] += w[:, None, None] * (lap + bulk)


def ref_phase8(d: Data, params: Mapping[str, float], elems: np.ndarray) -> None:
    """Valid-element check + scatter into the global RHS and CSR matrix."""
    valid = d["ltype"][elems] == HEX08
    nodes = d["lnods"][elems][valid]             # (nv, pnode)
    # momentum RHS: elrbu[v, d, a] -> rhsid[node, d]
    vals_u = d["elrbu"][valid].transpose(0, 2, 1)   # (nv, pnode, ndime)
    np.add.at(d["rhsid"], (nodes[:, :, None], np.arange(NDIME)[None, None, :]),
              vals_u)
    # continuity RHS: elrbp[v, a] -> rhsid[node, 3]
    np.add.at(d["rhsid"], (nodes, NDIME), d["elrbp"][valid])
    # elemental matrix: elauu[v, j, i] -> amatr[elpos[e, j, i]]
    pos = d["elpos"][elems][valid]               # (nv, pnode, pnode)
    np.add.at(d["amatr"], pos.ravel(), d["elauu"][valid].ravel())


#: reference implementations in phase order.
REF_PHASES = (
    ref_phase1, ref_phase2, ref_phase3, ref_phase4,
    ref_phase5, ref_phase6, ref_phase7, ref_phase8,
)

#: stable output arrays of each phase, used by the golden-reference
#: validator (:mod:`repro.validation.golden`) for its per-phase
#: cross-check.  Pure per-Gauss-point scratch (``xjacm``, ``xjaci``,
#: ``gpadv``, ``gprhs``, ``gpaux``) is excluded: only the final Gauss
#: iteration survives and fused kernels may legally skip the stores.
PHASE_OUTPUTS: dict[int, tuple[str, ...]] = {
    1: ("eldens", "elvisc", "eldtinv", "elchale", "elsgs", "elsgs_old"),
    2: ("elunk", "elold", "elcod"),
    3: ("gpdet", "gpvol", "gpcar"),
    4: ("gpvel", "gpold", "gppre", "gpgve"),
    5: ("gpnve", "tau1", "tau2", "elauu", "elrbu", "elrbp"),
    6: ("elauu", "elrbu", "elrbp"),
    7: ("elauu",),
    8: ("rhsid", "amatr"),
}


def run_reference_chunk(d: Data, params: Mapping[str, float],
                        elems: np.ndarray) -> None:
    """Run all eight phases on one chunk."""
    for fn in REF_PHASES:
        fn(d, params, elems)
