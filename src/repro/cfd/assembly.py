"""Mini-app driver: chunked Navier-Stokes assembly, timed or numeric.

``MiniApp`` binds everything together for one configuration
(mesh, VECTOR_SIZE, optimization level):

* builds the canonical baseline IR kernels, runs the transformation
  pass pipeline for the requested optimization level (or an explicit
  pass list), then the auto-vectorizer, and lowers the result to
  machine programs;
* ``run_timed(machine)`` executes the compiled program chunk by chunk on
  a machine model, returning the per-phase hardware counters the paper's
  tables and figures are computed from;
* ``run_numeric()`` executes the NumPy reference semantics, producing
  the assembled global RHS and CSR matrix (the input to the algebraic
  solver substrate);
* ``run_interpreted()`` executes the IR through the reference
  interpreter -- slow, used by the tests to pin IR semantics to the
  NumPy reference on small meshes;
* ``build_solver()`` / ``solve()`` / ``run_timed_solve()`` extend the
  cycle to the algebraic solver: the assembled operator (with the
  semi-implicit diagonal shift) is lowered to the IR solver kernels
  (:mod:`repro.cfd.solver_path`), so the full assemble+solve path runs
  through the same compiler, backends, machine model and tracer.

Optimization levels are cumulative, in paper order:
``scalar`` (vectorization disabled) -> ``vanilla`` (auto-vectorization)
-> ``vec2`` -> ``ivec2`` -> ``vec1``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.cfd.csr import CSRPattern, build_pattern
from repro.cfd.fields import make_global_fields
from repro.cfd.kernel_context import MiniAppContext
from repro.cfd.mesh import Mesh
from repro.cfd.phases import KernelConfig, build_baseline_kernels
from repro.cfd.reference import run_reference_chunk
from repro.compiler.flags import PAPER_FLAGS, SCALAR_FLAGS, CompilerFlags
from repro.compiler.interpreter import Interpreter
from repro.compiler.program import CompiledKernel, compile_kernels
from repro.compiler.transforms import (
    PassPipeline,
    TransformRemark,
    opt_for_passes,
    pipeline_for_opt,
    pipeline_from_names,
)
from repro.compiler.vectorizer import VecRemark
from repro.machine.cpu import Machine
from repro.machine.params import MachineParams
from repro.metrics.counters import RunCounters

#: optimization levels in cumulative paper order.
OPT_LEVELS = ("scalar", "vanilla", "vec2", "ivec2", "vec1")


def kernel_config_for(opt: str, vector_size: int) -> KernelConfig:
    """Map an optimization level to the code-transformation switches."""
    if opt not in OPT_LEVELS:
        raise ValueError(f"unknown optimization level {opt!r}; known: {OPT_LEVELS}")
    return KernelConfig(
        vector_size=vector_size,
        phase2_const_bound=opt in ("vec2", "ivec2", "vec1"),
        phase2_interchanged=opt in ("ivec2", "vec1"),
        phase1_fissioned=opt == "vec1",
    )


@dataclass
class AssembledSystem:
    """Output of the numeric assembly."""

    pattern: CSRPattern
    amatr: np.ndarray       # CSR values
    rhsid: np.ndarray       # (npoin, ndofn)


class MiniApp:
    """One mini-app configuration, compiled and ready to run."""

    def __init__(self, mesh: Mesh, vector_size: int, opt: str = "vanilla",
                 flags: Optional[CompilerFlags] = None,
                 params: Optional[dict[str, float]] = None,
                 field_seed: int = 0,
                 passes: Optional[tuple[str, ...]] = None):
        self.mesh = mesh
        self.vector_size = vector_size
        self.pipeline: PassPipeline
        if passes is not None:
            # explicit pass schedule: the rung label is derived (for
            # flag selection and display), not prescribed.
            self.pipeline = pipeline_from_names(passes, name="custom")
            opt = opt_for_passes(passes) or opt
        else:
            self.pipeline = pipeline_for_opt(opt)
        self.opt = opt
        self.config = kernel_config_for(opt, vector_size)
        if flags is None:
            flags = SCALAR_FLAGS if opt == "scalar" else PAPER_FLAGS
        self.flags = flags
        self.pattern = build_pattern(mesh)
        self.context = MiniAppContext(mesh, vector_size, nnz=self.pattern.nnz,
                                      params=params)
        self.field_seed = field_seed
        # pad elpos rows for the padded tail (never scattered: the
        # validity check skips padded elements).
        pad = self.context.padded_nelem - mesh.nelem
        self.elpos = (
            np.concatenate([self.pattern.elpos,
                            np.repeat(self.pattern.elpos[-1:], pad, axis=0)])
            if pad else self.pattern.elpos
        )

        result = compile_kernels(
            build_baseline_kernels(self.context.arrays, vector_size),
            self.flags, pipeline=self.pipeline)
        self.baseline_kernels = result.baseline
        self.kernels = result.kernels
        self.transform_remarks: list[TransformRemark] = result.transform_remarks
        self.remarks: list[VecRemark] = result.vec_remarks
        self.compiled: list[CompiledKernel] = result.compiled
        self._solver = None  # lazily-built SolverWorkload

    # ------------------------------------------------------------------

    @property
    def chunks(self):
        return self.context.chunks()

    def global_float_data(self) -> dict[str, np.ndarray]:
        """Fresh float-valued global arrays (+ amatr) for a numeric run."""
        data = make_global_fields(self.mesh, self.context.padded_nelem,
                                  nmate=self.context.sizes.nmate,
                                  dtinv=self.context.params["dtinv"],
                                  seed=self.field_seed)
        data["amatr"] = np.zeros(self.pattern.nnz)
        data.update(self.context.basis_data())
        return data

    # ------------------------------------------------------------------

    def run_timed(self, machine_params: MachineParams, *,
                  cache_enabled: bool = True,
                  machine: Optional[Machine] = None) -> RunCounters:
        """Execute the compiled mini-app on a machine model.

        Returns the per-phase counters accumulated over every chunk of
        the mesh (one full assembly sweep).
        """
        from repro.obs.tracer import span as _obs_span

        m = machine or Machine(machine_params, cache_enabled=cache_enabled)
        run = RunCounters()
        globals_data = {"elpos": self.elpos}
        with _obs_span(f"run_timed {self.opt} vs{self.vector_size}",
                       cat="run", opt=self.opt,
                       vector_size=self.vector_size):
            for chunk in self.chunks:
                inst = self.context.instance_for_chunk(
                    chunk, globals_data=globals_data)
                m.execute_program(self.compiled, inst, run)
        return run

    def run_numeric(self, field_overrides: Optional[dict[str, np.ndarray]] = None
                    ) -> AssembledSystem:
        """Assemble the system with the NumPy reference semantics.

        ``field_overrides`` replaces selected global arrays (e.g. an
        updated ``unkno`` between time steps of a driver loop); shapes
        must match the defaults from :meth:`global_float_data`.
        """
        gdata = self.global_float_data()
        if field_overrides:
            for name, arr in field_overrides.items():
                if name not in gdata:
                    raise KeyError(f"unknown global field {name!r}")
                if gdata[name].shape != arr.shape:
                    raise ValueError(
                        f"{name}: shape {arr.shape} != {gdata[name].shape}")
                gdata[name] = np.asarray(arr, dtype=np.float64)
        # chunk-local scratch arrays, shared across chunks like Fortran's.
        local = {
            name: np.zeros(arr.shape)
            for name, arr in self.context.arrays.items()
            if arr.scope == "local"
        }
        data: dict[str, np.ndarray] = {
            **gdata,
            "lnods": self.context.lnods,
            "ltype": self.context.ltype,
            "lmate": self.context.lmate,
            "kfl_sgs": self.context.kfl_sgs,
            "elpos": self.elpos,
            **local,
        }
        for chunk in self.chunks:
            run_reference_chunk(data, self.context.params, chunk.elements)
        return AssembledSystem(pattern=self.pattern, amatr=data["amatr"],
                               rhsid=data["rhsid"])

    def run_interpreted(self) -> AssembledSystem:
        """Assemble the system by interpreting the IR kernels (slow)."""
        gdata = self.global_float_data()
        globals_data = {**gdata, "elpos": self.elpos}
        shared = None
        for chunk in self.chunks:
            inst = self.context.instance_for_chunk(
                chunk, with_data=True, globals_data=globals_data)
            interp = Interpreter(inst, self.context.params)
            for kern in self.kernels:
                interp.run(kern)
            shared = inst
        assert shared is not None
        return AssembledSystem(pattern=self.pattern,
                               amatr=shared.data("amatr"),
                               rhsid=shared.data("rhsid"))

    # -- the solver path -----------------------------------------------

    def build_solver(self):
        """Assemble (NumPy reference semantics), shift the diagonal, and
        compile the solver kernels for this configuration.

        Returns ``(workload, b)``: the
        :class:`~repro.cfd.solver_path.SolverWorkload` over the shifted
        operator, and the x-momentum RHS it solves against.  Cached:
        the system is a pure function of (mesh, field_seed), and the
        kernels of (vector_size, pipeline, flags).
        """
        from repro.cfd.solver_path import SolverWorkload, shift_diagonal

        if self._solver is None:
            system = self.run_numeric()
            shifted = shift_diagonal(self.pattern, system.amatr)
            workload = SolverWorkload(
                self.pattern, shifted, self.vector_size, opt=self.opt,
                flags=self.flags, pipeline=self.pipeline)
            self._solver = (workload, system.rhsid[:, 0].copy())
        return self._solver

    def solve(self, method: str = "bicgstab", *, backend: str | None = None,
              tol: float | None = None, maxiter: int | None = None):
        """IR-orchestrated Krylov solve of the assembled shifted system
        (every vector op through the solver kernels on *backend*)."""
        from repro.cfd.solver_path import SOLVE_MAXITER, SOLVE_TOL

        workload, b = self.build_solver()
        return workload.ir_solve(b, method=method, backend=backend,
                                 tol=SOLVE_TOL if tol is None else tol,
                                 maxiter=SOLVE_MAXITER if maxiter is None else maxiter)

    def reference_solve(self, method: str = "bicgstab", *,
                        tol: float | None = None,
                        maxiter: int | None = None):
        """NumPy reference Krylov solve of the same shifted system."""
        from repro.cfd.solver_path import SOLVE_MAXITER, SOLVE_TOL

        workload, b = self.build_solver()
        return workload.reference_solve(
            b, method=method,
            tol=SOLVE_TOL if tol is None else tol,
            maxiter=SOLVE_MAXITER if maxiter is None else maxiter)

    def run_timed_solve(self, machine_params: MachineParams, *,
                        cache_enabled: bool = True,
                        machine: Optional[Machine] = None,
                        method: str = "bicgstab"
                        ) -> tuple[RunCounters, dict]:
        """Time the full assemble+solve cycle on one machine model.

        The assembly sweep charges phases 1-8 as in :meth:`run_timed`;
        the solver kernels then charge phases 9-12, one representative
        iteration per iteration of the (backend-independent) NumPy
        reference solve.  Returns the counters plus the convergence
        record ``{"method", "iterations", "residual", "converged"}``.
        """
        m = machine or Machine(machine_params, cache_enabled=cache_enabled)
        run = self.run_timed(machine_params, cache_enabled=cache_enabled,
                             machine=m)
        workload, _ = self.build_solver()
        ref = self.reference_solve(method)
        workload.run_timed(m, run, iterations=max(ref.iterations, 1))
        info = {
            "method": method,
            "iterations": int(ref.iterations),
            "residual": float(ref.residual),
            "converged": bool(ref.converged),
        }
        return run, info
