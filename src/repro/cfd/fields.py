"""Global field initialization for the mini-app.

Provides the mesh-level data the gather phases read: nodal unknowns
(a smooth Taylor-Green-like velocity field plus a pressure mode, so the
assembled operators are well conditioned and non-trivial), per-element
tracked subscales, local time steps, and the material property tables.

Fields are deterministic functions of the node coordinates (plus a
seeded perturbation), so every run of a given mesh reproduces the same
assembled system bit-for-bit.
"""

from __future__ import annotations

import numpy as np

from repro.cfd.elements import NDIME, NDOFN, NGAUS
from repro.cfd.mesh import Mesh


def taylor_green_unkno(coord: np.ndarray, amplitude: float = 1.0) -> np.ndarray:
    """Velocity + pressure unknowns from a 3-D Taylor-Green-like mode."""
    # Incommensurate frequencies + phase shifts keep the field non-zero
    # on grid-aligned node coordinates.
    freqs = (1.7, 1.3, 1.1)
    x, y, z = (freqs[i] * np.pi * coord[:, i] + 0.3 * (i + 1)
               for i in range(NDIME))
    unkno = np.empty((coord.shape[0], NDOFN))
    unkno[:, 0] = amplitude * np.cos(x) * np.sin(y) * np.sin(z)
    unkno[:, 1] = -0.5 * amplitude * np.sin(x) * np.cos(y) * np.sin(z)
    unkno[:, 2] = -0.5 * amplitude * np.sin(x) * np.sin(y) * np.cos(z)
    unkno[:, 3] = 0.0625 * amplitude * (np.cos(2 * x) + np.cos(2 * y)) * (
        np.cos(2 * z) + 2.0)
    return unkno


def make_global_fields(mesh: Mesh, padded_nelem: int,
                       nmate: int = 1,
                       density: float = 1.0,
                       viscosity: float = 0.01,
                       dtinv: float = 10.0,
                       seed: int = 0) -> dict[str, np.ndarray]:
    """All float-valued global arrays, padded to *padded_nelem*."""
    rng = np.random.default_rng(seed)
    pad = padded_nelem - mesh.nelem

    def padded(a: np.ndarray) -> np.ndarray:
        if pad == 0:
            return a
        return np.concatenate([a, np.repeat(a[-1:], pad, axis=0)])

    tesgs = 1e-3 * rng.standard_normal((mesh.nelem, NDIME, NGAUS))
    tesgs_old = 1e-3 * rng.standard_normal((mesh.nelem, NDIME, NGAUS))
    dtinv_fld = dtinv * (1.0 + 0.1 * rng.random(mesh.nelem))
    # per-element characteristic length h = (bounding-box volume)^(1/3)
    elcod = mesh.coord[mesh.lnods]                      # (nelem, 8, 3)
    box = elcod.max(axis=1) - elcod.min(axis=1)
    chale_fld = np.cbrt(np.prod(box, axis=1))
    unkno = taylor_green_unkno(mesh.coord)
    # previous-step velocity: slightly relaxed current field
    unkno_old = 0.95 * unkno[:, :NDIME] + 1e-3 * rng.standard_normal(
        (mesh.npoin, NDIME))
    return {
        "coord": mesh.coord,
        "unkno": unkno,
        "unkno_old": unkno_old,
        "densi_mat": density * (1.0 + 0.05 * np.arange(nmate)),
        "visco_mat": viscosity * (1.0 + 0.05 * np.arange(nmate)),
        "tesgs": padded(tesgs),
        "tesgs_old": padded(tesgs_old),
        "dtinv_fld": padded(dtinv_fld),
        "chale_fld": padded(chale_fld),
        "rhsid": np.zeros((mesh.npoin, NDOFN)),
    }
