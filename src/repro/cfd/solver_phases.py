"""The Krylov solver substrate as loop-nest IR kernels (phases 9-12).

The paper times only the eight assembly phases, but section 2.3 names
the algebraic solver as the second structural half of a CFD code.  This
module lowers the solver's vector primitives to the same loop-nest IR
the assembly phases use, so the full assemble+solve cycle runs through
the compiler pass pipeline, the auto-vectorizer, both execution
backends, the machine model, the tracer and the validation stack:

9.  **SpMV** over a padded ELL layout -- the CSR indirect gather
    (``x[ellcol[jnz, row]]``), the kernel class the related work calls
    out as resisting vectorization (Autovesk);  the kernel also folds
    the Jacobi diagonal-reciprocal computation into a guarded head so
    the row loop is *fissionable* (like phase 1) while the gather
    reduction is *not interchange-legal* (the guard and the
    ``yout``-carried reduction block ``LoopInterchange``);
10. **dot** -- a stride-0 reduction whose trip count is, like phase 2's,
    a runtime dummy argument: it vectorizes only after
    ``ConstantTripCount`` (and under ``-ffp-contract=fast``);
11. **axpy** -- the streaming BLAS-1 update ``w = y + alpha x``;
12. **Jacobi apply** -- ``z = r * dinv`` (multiply by the reciprocal
    computed in the SpMV head, exactly like
    :func:`repro.cfd.solver.jacobi_preconditioner`).

The matrix is stored in padded ELL form: rows are chunked by
VECTOR_SIZE (the solver's "elements" are matrix rows), every row is
padded to the mesh's maximal row length with zero values gathering
column 0, and slot order within a row follows CSR column order -- so a
row's sequential accumulation reproduces :func:`repro.cfd.csr.spmv`'s
``np.add.reduceat`` segment sums.

``SolverWorkload`` packages the compiled kernels with a
:class:`SolverContext` (layout + per-row-chunk instances) and provides
both the *semantic* path -- :meth:`SolverWorkload.ir_solve`, a
host-orchestrated CG/BiCGSTAB whose every vector operation runs through
the IR kernels on a pluggable backend -- and the *timed* path --
:meth:`SolverWorkload.run_timed`, which charges one representative
preconditioned-Krylov iteration per solver iteration into phases 9-12
of a :class:`~repro.metrics.counters.RunCounters`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional

import numpy as np

from repro.cfd.csr import CSRPattern, diagonal
from repro.cfd.kernel_context import CHUNK_BASE
from repro.cfd.mesh import Chunk
from repro.cfd.phases import (
    C,
    L,
    P,
    R,
    add,
    div,
    mul,
    _loop,
    _vec_dummy_extent,
    _vec_extent,
)
from repro.compiler.ir import (
    Affine,
    Array,
    Assign,
    Cond,
    Extent,
    If,
    Indirect,
    Kernel,
    Load,
    Loop,
    Ref,
    Stmt,
    Unary,
    var,
)
from repro.compiler.program import KernelInstance, MemoryLayout

#: the chunk-local matrix row id as a global-array index (the solver's
#: analogue of the assembly phases' ``ELEM``).
ROW = Affine((("ivect", 1), (CHUNK_BASE, 1)))

#: solver phase ids, continuing the paper's 1-8 assembly numbering.
SPMV_PHASE = 9
DOT_PHASE = 10
AXPY_PHASE = 11
PRECOND_PHASE = 12


@dataclass(frozen=True)
class SolverSizes:
    """Problem dimensions needed to declare the solver arrays."""

    vector_size: int
    nrow: int          # true matrix dimension (mesh nodes)
    padded_nrow: int   # rows padded to a whole number of chunks
    rowlen: int        # ELL row length (max CSR row nnz)


def declare_solver_arrays(sz: SolverSizes) -> dict[str, Array]:
    """All solver arrays, keyed by name (column-major shapes).

    Everything is ``global`` scope: the vectors persist across row
    chunks (a chunk updates its row slice of each), and ``dotacc``
    accumulates across chunks.  ``ellval``/``ellcol`` are laid out
    ``(rowlen, padded_nrow)`` column-major, so the gather loop's loads
    are unit-stride along ``jnz`` -- the value stream and the index
    vector stream the long-vector ISA can actually use.
    """
    g = lambda name, shape, dtype="f8": Array(name, shape, dtype, scope="global")
    arrays = [
        g("ellval", (sz.rowlen, sz.padded_nrow)),
        g("ellcol", (sz.rowlen, sz.padded_nrow), "i8"),
        g("diagv", (sz.padded_nrow,)),
        g("dinv", (sz.padded_nrow,)),
        g("xvec", (sz.padded_nrow,)),
        g("yvec", (sz.padded_nrow,)),
        g("yout", (sz.padded_nrow,)),
        g("wvec", (sz.padded_nrow,)),
        g("rvec", (sz.padded_nrow,)),
        g("zvec", (sz.padded_nrow,)),
        g("dotacc", (1,)),
    ]
    return {a.name: a for a in arrays}


# ---------------------------------------------------------------------------
# the four solver kernels
# ---------------------------------------------------------------------------


def solver_spmv(A: dict[str, Array], vs: int) -> Kernel:
    """Phase 9: ELL SpMV with the Jacobi reciprocal folded into a
    guarded head.

    The head (``dinv``) carries data-dependent control flow -- the
    ``|diag| > 0`` guard of :func:`repro.cfd.solver.jacobi_preconditioner`
    -- so the row loop as written cannot vectorize; ``LoopFission`` can
    split it off (the head and the gather tail touch disjoint outputs),
    after which the tail is a clean gather reduction.  ``LoopInterchange``
    stays illegal on every rung: before fission the guard blocks it,
    after fission the ``yout``-carried reduction does.
    """
    rowlen = A["ellval"].shape[0]
    gather = Load(Ref(A["xvec"], (Indirect(A["ellcol"], (var("jnz"), ROW)),)))
    head: list[Stmt] = [
        Assign(R(A["dinv"], ROW), C(1.0)),
        If(
            Cond("gt", Unary("abs", L(A["diagv"], ROW)), C(0.0)),
            (Assign(R(A["dinv"], ROW), div(C(1.0), L(A["diagv"], ROW))),),
            est_taken=0.99,
        ),
    ]
    tail: list[Stmt] = [
        Assign(R(A["yout"], ROW), C(0.0)),
        _loop("jnz", Extent(rowlen, "const"), [
            Assign(R(A["yout"], ROW),
                   mul(L(A["ellval"], "jnz", ROW), gather),
                   accumulate=True),
        ]),
    ]
    body: tuple[Stmt, ...] = (_loop("ivect", _vec_extent(vs), head + tail),)
    return Kernel(name="solver_spmv_ell", phase=SPMV_PHASE, body=body)


def solver_dot(A: dict[str, Array], vs: int) -> Kernel:
    """Phase 10: ``dotacc += xvec . yvec`` over one row chunk.

    Canonical form keeps the original sin of phase 2: the trip count is
    a runtime dummy, so the vanilla vectorizer refuses; after
    ``ConstantTripCount`` the stride-0 accumulate vectorizes as a
    strip-mined reduction (legal only under ``-ffp-contract=fast``,
    like the paper's reduction loops).
    """
    body: tuple[Stmt, ...] = (
        _loop("ivect", _vec_dummy_extent(vs), [
            Assign(R(A["dotacc"], 0),
                   mul(L(A["xvec"], ROW), L(A["yvec"], ROW)),
                   accumulate=True),
        ]),
    )
    return Kernel(name="solver_dot", phase=DOT_PHASE, body=body)


def solver_axpy(A: dict[str, Array], vs: int) -> Kernel:
    """Phase 11: ``wvec = yvec + alpha * xvec`` (streaming BLAS-1)."""
    body: tuple[Stmt, ...] = (
        _loop("ivect", _vec_extent(vs), [
            Assign(R(A["wvec"], ROW),
                   add(L(A["yvec"], ROW), mul(P("alpha"), L(A["xvec"], ROW)))),
        ]),
    )
    return Kernel(name="solver_axpy", phase=AXPY_PHASE, body=body,
                  params=(("alpha", 1.0),))


def solver_precond(A: dict[str, Array], vs: int) -> Kernel:
    """Phase 12: Jacobi apply ``zvec = rvec * dinv`` (reciprocal
    multiply; ``dinv`` is produced by the SpMV head)."""
    body: tuple[Stmt, ...] = (
        _loop("ivect", _vec_extent(vs), [
            Assign(R(A["zvec"], ROW), mul(L(A["rvec"], ROW), L(A["dinv"], ROW))),
        ]),
    )
    return Kernel(name="solver_precond_jacobi", phase=PRECOND_PHASE, body=body)


#: solver phase builders, keyed by phase id (a parallel registry to
#: ``repro.cfd.phases.PHASE_BUILDERS``).
SOLVER_PHASE_BUILDERS: dict[int, object] = {
    SPMV_PHASE: solver_spmv,
    DOT_PHASE: solver_dot,
    AXPY_PHASE: solver_axpy,
    PRECOND_PHASE: solver_precond,
}

#: human-readable solver phase names (span labels, Paraver states,
#: summary sections), continuing ``repro.cfd.phases.PHASE_NAMES``.
SOLVER_PHASE_NAMES: dict[int, str] = {
    SPMV_PHASE: "solver spmv (ELL gather)",
    DOT_PHASE: "solver dot (reduction)",
    AXPY_PHASE: "solver axpy",
    PRECOND_PHASE: "solver jacobi apply",
}

#: arrays each solver phase writes -- the solver analogue of
#: ``repro.cfd.reference.PHASE_OUTPUTS`` (golden checks + digest rungs).
SOLVER_PHASE_OUTPUTS: dict[int, tuple[str, ...]] = {
    SPMV_PHASE: ("dinv", "yout"),
    DOT_PHASE: ("dotacc",),
    AXPY_PHASE: ("wvec",),
    PRECOND_PHASE: ("zvec",),
}


def build_solver_kernels(arrays: dict[str, Array],
                         vector_size: int) -> list[Kernel]:
    """The four solver kernels in canonical baseline form (pre-pass)."""
    return [SOLVER_PHASE_BUILDERS[p](arrays, vector_size)
            for p in sorted(SOLVER_PHASE_BUILDERS)]


# ---------------------------------------------------------------------------
# NumPy reference semantics (the golden-check oracle side)
# ---------------------------------------------------------------------------


def ref_solver_spmv(d: dict[str, np.ndarray], params: Mapping[str, float],
                    rows: np.ndarray) -> None:
    diag = d["diagv"][rows]
    inv = np.ones_like(diag)
    nz = np.abs(diag) > 0.0
    inv[nz] = 1.0 / diag[nz]
    d["dinv"][rows] = inv
    val = d["ellval"][:, rows]
    col = d["ellcol"][:, rows]
    d["yout"][rows] = np.sum(val * d["xvec"][col], axis=0)


def ref_solver_dot(d: dict[str, np.ndarray], params: Mapping[str, float],
                   rows: np.ndarray) -> None:
    d["dotacc"][0] += float(d["xvec"][rows] @ d["yvec"][rows])


def ref_solver_axpy(d: dict[str, np.ndarray], params: Mapping[str, float],
                    rows: np.ndarray) -> None:
    alpha = float(params.get("alpha", 1.0))
    d["wvec"][rows] = d["yvec"][rows] + alpha * d["xvec"][rows]


def ref_solver_precond(d: dict[str, np.ndarray], params: Mapping[str, float],
                       rows: np.ndarray) -> None:
    d["zvec"][rows] = d["rvec"][rows] * d["dinv"][rows]


#: reference implementations keyed by phase id.
SOLVER_REF_PHASES: dict[int, object] = {
    SPMV_PHASE: ref_solver_spmv,
    DOT_PHASE: ref_solver_dot,
    AXPY_PHASE: ref_solver_axpy,
    PRECOND_PHASE: ref_solver_precond,
}


# ---------------------------------------------------------------------------
# ELL construction + solver context
# ---------------------------------------------------------------------------


def build_ell(pattern: CSRPattern, amatr: np.ndarray, vector_size: int
              ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Padded ELL form of a CSR matrix: ``(ellval, ellcol, diagv)``.

    Shapes are ``(rowlen, padded_nrow)`` with slot order = CSR column
    order, zero-padding at the row end gathering column 0 (a real,
    always-valid address whose contribution is ``0.0 * x[0]``).  Padded
    rows past ``pattern.n`` get a unit diagonal so the Jacobi head stays
    benign.
    """
    if amatr.shape != (pattern.nnz,):
        raise ValueError(f"amatr must have shape ({pattern.nnz},)")
    n = pattern.n
    counts = np.diff(pattern.indptr)
    rowlen = max(int(counts.max()) if n else 1, 1)
    nchunks = -(-n // vector_size)
    padded = nchunks * vector_size
    ellval = np.zeros((rowlen, padded))
    ellcol = np.zeros((rowlen, padded), dtype=np.int64)
    rows = pattern.row_of_entry()
    slot = np.arange(pattern.nnz, dtype=np.int64) - pattern.indptr[rows]
    ellval[slot, rows] = amatr
    ellcol[slot, rows] = pattern.indices
    diagv = np.zeros(padded)
    diagv[:n] = diagonal(pattern, amatr)
    diagv[n:] = 1.0
    return ellval, ellcol, diagv


def seeded_solver_inputs(context: "SolverContext", seed: int
                         ) -> dict[str, np.ndarray]:
    """Deterministic input vectors for solver-kernel golden checks and
    digest rungs: seeded ``xvec``/``yvec``/``rvec`` over the real rows
    (padded tail stays zero), everything else fresh from
    :meth:`SolverContext.solver_data`."""
    data = context.solver_data()
    rng = np.random.default_rng(seed + 0x50F7)
    n = context.sizes.nrow
    for name in ("xvec", "yvec", "rvec"):
        data[name][:n] = rng.standard_normal(n)
    return data


class SolverContext:
    """Shared memory layout + per-row-chunk instances for one matrix."""

    def __init__(self, pattern: CSRPattern, amatr: np.ndarray,
                 vector_size: int,
                 params: Optional[dict[str, float]] = None):
        self.pattern = pattern
        self.vector_size = vector_size
        self.ellval, self.ellcol, self.diagv = build_ell(
            pattern, amatr, vector_size)
        self.sizes = SolverSizes(
            vector_size=vector_size,
            nrow=pattern.n,
            padded_nrow=self.ellval.shape[1],
            rowlen=self.ellval.shape[0],
        )
        self.arrays = declare_solver_arrays(self.sizes)
        self.layout = MemoryLayout()
        self.params: dict[str, float] = {"alpha": 1.0, **(params or {})}
        for arr in self.arrays.values():
            self.layout.place(arr)

    def chunks(self) -> list[Chunk]:
        """Contiguous VECTOR_SIZE row chunks over the padded row range."""
        out = []
        vs = self.vector_size
        for ci in range(self.sizes.padded_nrow // vs):
            start = ci * vs
            ids = np.arange(start, start + vs, dtype=np.int64)
            n_real = max(0, min(vs, self.sizes.nrow - start))
            out.append(Chunk(index=ci, elements=ids, n_real=n_real))
        return out

    def solver_data(self) -> dict[str, np.ndarray]:
        """Fresh float/vector global data for a semantic run (shared by
        reference across chunk instances, like the mini-app's globals)."""
        z = lambda: np.zeros(self.sizes.padded_nrow)
        return {
            "ellval": self.ellval.copy(),
            "ellcol": self.ellcol.copy(),
            "diagv": self.diagv.copy(),
            "dinv": z(), "xvec": z(), "yvec": z(), "yout": z(),
            "wvec": z(), "rvec": z(), "zvec": z(),
            "dotacc": np.zeros(1),
        }

    def instance_for_chunk(self, chunk: Chunk, *, with_data: bool = False,
                           globals_data: Optional[dict[str, np.ndarray]] = None
                           ) -> KernelInstance:
        """Build the kernel instance for one row chunk.

        The timing path only needs the integer gather table (``ellcol``,
        held by the context); ``with_data`` additionally binds zeroed
        float data; ``globals_data`` supplies shared arrays (bound by
        reference, so vector updates persist across chunks).
        """
        inst = KernelInstance(
            params=self.params,
            layout=self.layout,
            index_consts={CHUNK_BASE: int(chunk.elements[0])},
        )
        gdata = globals_data or {}
        for arr in self.arrays.values():
            if arr.name in gdata:
                inst.bind(arr, gdata[arr.name])
            elif arr.name == "ellcol":
                inst.bind(arr, self.ellcol)
            elif with_data:
                inst.ensure_data(arr)
            else:
                inst.bind(arr)
        return inst
