"""The Alya-like CFD substrate: mesh, elements, assembly mini-app, solver."""

from repro.cfd.elements import HEX08, NDIME, NDOFN, NGAUS, PNODE, hex08_basis
from repro.cfd.mesh import Chunk, Mesh, box_mesh
from repro.cfd.csr import CSRPattern, build_pattern, diagonal, spmv, to_dense
from repro.cfd.solver import SolveResult, bicgstab, cg, jacobi_preconditioner
from repro.cfd.kernel_context import MiniAppContext, Sizes, stabilization_params
from repro.cfd.phases import KernelConfig, build_kernels
from repro.cfd.assembly import OPT_LEVELS, AssembledSystem, MiniApp, kernel_config_for

__all__ = [
    "HEX08", "NDIME", "NDOFN", "NGAUS", "PNODE", "hex08_basis",
    "Chunk", "Mesh", "box_mesh",
    "CSRPattern", "build_pattern", "diagonal", "spmv", "to_dense",
    "SolveResult", "bicgstab", "cg", "jacobi_preconditioner",
    "MiniAppContext", "Sizes", "stabilization_params",
    "KernelConfig", "build_kernels",
    "OPT_LEVELS", "AssembledSystem", "MiniApp", "kernel_config_for",
]
