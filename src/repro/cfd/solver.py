"""Krylov solvers over the CSR substrate.

The second structural half of a CFD code (paper section 2.3): after the
mini-app assembles the global matrix and RHS, an algebraic solver
produces the update.  The assembled momentum operator (convection +
grad-div stabilization + viscosity) is nonsymmetric, so the workhorse is
BiCGSTAB with Jacobi preconditioning; CG is provided for symmetric
systems (pure-viscous operators) and for testing.

All vector arithmetic is NumPy; the only matrix operation is
:func:`repro.cfd.csr.spmv`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from repro.cfd.csr import CSRPattern, diagonal, spmv


@dataclass
class SolveResult:
    x: np.ndarray
    iterations: int
    residual: float
    converged: bool
    history: list[float]


def jacobi_preconditioner(pattern: CSRPattern, data: np.ndarray
                          ) -> Callable[[np.ndarray], np.ndarray]:
    """Return the Jacobi (diagonal) preconditioner application."""
    diag = diagonal(pattern, data)
    safe = np.where(np.abs(diag) > 0.0, diag, 1.0)
    inv = 1.0 / safe
    return lambda r: inv * r


def cg(pattern: CSRPattern, data: np.ndarray, b: np.ndarray,
       x0: Optional[np.ndarray] = None, tol: float = 1e-10,
       maxiter: int = 1000,
       precond: Optional[Callable[[np.ndarray], np.ndarray]] = None
       ) -> SolveResult:
    """Preconditioned conjugate gradients (SPD systems)."""
    x = np.zeros_like(b) if x0 is None else x0.copy()
    r = b - spmv(pattern, data, x)
    M = precond or (lambda v: v)
    z = M(r)
    p = z.copy()
    rz = float(r @ z)
    bnorm = float(np.linalg.norm(b)) or 1.0
    history = [float(np.linalg.norm(r)) / bnorm]
    if history[-1] < tol:
        return SolveResult(x, 0, history[-1], True, history)
    # breakdown guard: rz = 0 with a nonzero residual means the
    # preconditioned residual is A-orthogonal to itself (indefinite M or
    # exact cancellation); alpha and beta would divide by zero.
    if rz == 0.0:
        return SolveResult(x, 0, history[-1], False, history)
    for it in range(1, maxiter + 1):
        Ap = spmv(pattern, data, p)
        pAp = float(p @ Ap)
        if pAp == 0.0:
            return SolveResult(x, it, history[-1], False, history)
        alpha = rz / pAp
        x += alpha * p
        r -= alpha * Ap
        res = float(np.linalg.norm(r)) / bnorm
        history.append(res)
        if res < tol:
            return SolveResult(x, it, res, True, history)
        z = M(r)
        rz_new = float(r @ z)
        if rz_new == 0.0:
            return SolveResult(x, it, res, False, history)
        p = z + (rz_new / rz) * p
        rz = rz_new
    return SolveResult(x, maxiter, history[-1], False, history)


def bicgstab(pattern: CSRPattern, data: np.ndarray, b: np.ndarray,
             x0: Optional[np.ndarray] = None, tol: float = 1e-10,
             maxiter: int = 1000,
             precond: Optional[Callable[[np.ndarray], np.ndarray]] = None
             ) -> SolveResult:
    """Preconditioned BiCGSTAB (general nonsymmetric systems)."""
    x = np.zeros_like(b) if x0 is None else x0.copy()
    r = b - spmv(pattern, data, x)
    r0 = r.copy()
    M = precond or (lambda v: v)
    rho = alpha = omega = 1.0
    v = np.zeros_like(b)
    p = np.zeros_like(b)
    bnorm = float(np.linalg.norm(b)) or 1.0
    history = [float(np.linalg.norm(r)) / bnorm]
    if history[-1] < tol:
        return SolveResult(x, 0, history[-1], True, history)
    for it in range(1, maxiter + 1):
        rho_new = float(r0 @ r)
        if rho_new == 0.0:
            return SolveResult(x, it, history[-1], False, history)
        beta = (rho_new / rho) * (alpha / omega) if it > 1 else 0.0
        p = r + beta * (p - omega * v) if it > 1 else r.copy()
        phat = M(p)
        v = spmv(pattern, data, phat)
        denom = float(r0 @ v)
        if denom == 0.0:
            return SolveResult(x, it, history[-1], False, history)
        alpha = rho_new / denom
        s = r - alpha * v
        if float(np.linalg.norm(s)) / bnorm < tol:
            x += alpha * phat
            history.append(float(np.linalg.norm(s)) / bnorm)
            return SolveResult(x, it, history[-1], True, history)
        shat = M(s)
        t = spmv(pattern, data, shat)
        tt = float(t @ t)
        if tt == 0.0:
            return SolveResult(x, it, history[-1], False, history)
        omega = float(t @ s) / tt
        x += alpha * phat + omega * shat
        r = s - omega * t
        rho = rho_new
        res = float(np.linalg.norm(r)) / bnorm
        history.append(res)
        if res < tol:
            return SolveResult(x, it, res, True, history)
        if omega == 0.0:
            return SolveResult(x, it, res, False, history)
    return SolveResult(x, maxiter, history[-1], False, history)
