"""The eight mini-app phases as loop-nest IR kernels.

The mini-app isolates the matrix + RHS assembly of Alya's Nastin module
(incompressible Navier-Stokes, VMS-stabilized finite elements on HEX08
meshes) and splits it into the paper's eight instrumented phases:

1. gather per-element data (properties, subscales, local time step) --
   contains the mixed vectorizable / non-vectorizable body of the VEC1
   story (Algorithm 3/4);
2. gather nodal unknowns and coordinates -- the VEC2/IVEC2 loops
   (Algorithms 1/2);
3. Jacobian, determinant, inverse and Cartesian shape-function
   derivatives at the integration points;
4. velocity, pressure and velocity-gradient at the integration points;
5. elemental arrays for the time-integration scheme: stabilization
   parameters (tau_1, tau_2) and zero-initialization of the elemental
   matrix / RHS accumulators;
6. convective term + VMS stabilization contributions to the elemental
   momentum matrix and right-hand sides (the dominant phase);
7. viscous term contribution to the elemental matrices (semi-implicit
   scheme);
8. valid-element check and scatter of elemental contributions into the
   global RHS vector and CSR matrix.

Each builder returns the **canonical baseline** form of its phase as an
:class:`~repro.compiler.ir.Kernel` -- the code as the Fortran mini-app
was originally written (phase 2's trip count a runtime dummy argument,
phase 1 one mixed loop).  The paper's cumulative optimizations (VEC2
constant bound, IVEC2 interchange, VEC1 fission) are **not** hand
variants anymore: they are IR-to-IR passes in
:mod:`repro.compiler.transforms`, applied by a
:class:`~repro.compiler.transforms.PassPipeline` before vectorization.
:class:`KernelConfig` survives as a thin shim translating the historic
boolean switches into a pass list.  The *numerics* of every rung are
identical -- the test suite verifies this through the IR interpreter
against the NumPy reference, and a frozen counters fixture pins the
pipeline output to the pre-refactor hand-written variants.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cfd.elements import HEX08, NDIME, NDOFN, NGAUS, PNODE
from repro.cfd.kernel_context import CHUNK_BASE
from repro.compiler.ir import (
    Affine,
    Array,
    Assign,
    BinOp,
    Cond,
    Const,
    Expr,
    Extent,
    If,
    IndexExpr,
    Indirect,
    Kernel,
    Load,
    Loop,
    Param,
    Ref,
    Stmt,
    Unary,
    var,
)


@dataclass(frozen=True)
class KernelConfig:
    """Which of the paper's code transformations are applied.

    Historic boolean interface, kept as a thin shim: the booleans no
    longer select hand-written kernel variants, they translate --
    via :meth:`pass_names` -- into the ordered pass list a
    :class:`~repro.compiler.transforms.PassPipeline` applies to the
    canonical baseline kernels.  The old ``__post_init__`` coupling
    ("IVEC2 requires VEC2") now lives where it belongs: as the pipeline
    dependency ``LoopInterchange.requires = (ConstantTripCount,)``,
    enforced when the pipeline is built, with an error naming the
    missing pass.
    """

    vector_size: int
    #: VEC2 -- phase 2's loop bound becomes a compile-time constant.
    phase2_const_bound: bool = False
    #: IVEC2 -- phase 2's loops interchanged (ivect innermost).
    phase2_interchanged: bool = False
    #: VEC1 -- phase 1's mixed loop fissioned into two loops.
    phase1_fissioned: bool = False

    def pass_names(self) -> tuple[str, ...]:
        """The transformation-pass spelling of this config, in the
        paper's cumulative order."""
        from repro.compiler.transforms import (
            ConstantTripCount,
            LoopFission,
            LoopInterchange,
        )

        names: list[str] = []
        if self.phase2_const_bound:
            names.append(ConstantTripCount.name)
        if self.phase2_interchanged:
            names.append(LoopInterchange.name)
        if self.phase1_fissioned:
            names.append(LoopFission.name)
        return tuple(names)


# ---------------------------------------------------------------------------
# small expression helpers
# ---------------------------------------------------------------------------


def _ix(x) -> IndexExpr:
    if isinstance(x, str):
        return var(x)
    if isinstance(x, int):
        return Affine((), x)
    return x


def R(arr: Array, *idx) -> Ref:
    return Ref(arr, tuple(_ix(i) for i in idx))


def L(arr: Array, *idx) -> Load:
    return Load(R(arr, *idx))


def C(v: float) -> Const:
    return Const(float(v))


def P(name: str) -> Param:
    return Param(name)


def add(a: Expr, b: Expr) -> BinOp:
    return BinOp("add", a, b)


def sub(a: Expr, b: Expr) -> BinOp:
    return BinOp("sub", a, b)


def mul(a: Expr, b: Expr) -> BinOp:
    return BinOp("mul", a, b)


def div(a: Expr, b: Expr) -> BinOp:
    return BinOp("div", a, b)


def sqrt(a: Expr) -> Unary:
    return Unary("sqrt", a)


def fsum(terms: list[Expr]) -> Expr:
    """Left-folded sum; mul terms contract to FMAs under -ffp-contract."""
    acc = terms[0]
    for t in terms[1:]:
        acc = add(acc, t)
    return acc


#: the chunk-local element id as a global-array row index.
ELEM = Affine((("ivect", 1), (CHUNK_BASE, 1)))


def _node(A: dict[str, Array]) -> Indirect:
    """Global node id of (element, inode) through the connectivity."""
    return Indirect(A["lnods"], (ELEM, var("inode")))


def _vec_extent(vs: int) -> Extent:
    """The chunk-element extent as a compile-time-known parameter."""
    return Extent(vs, "param", "VECTOR_SIZE")


def _vec_dummy_extent(vs: int) -> Extent:
    """The chunk-element extent as the original runtime dummy argument
    ``VECTOR_DIM`` (the phase-2 vectorization blocker that
    :class:`~repro.compiler.transforms.ConstantTripCount` removes)."""
    return Extent(vs, "runtime_dummy", "VECTOR_DIM")


def _loop(varname: str, extent, body: list[Stmt]) -> Loop:
    if isinstance(extent, int):
        extent = Extent(extent, "const")
    return Loop(varname, extent, tuple(body))


# ---------------------------------------------------------------------------
# Phase 1 -- gather element-level data (Algorithms 3 / 4)
# ---------------------------------------------------------------------------


def phase1(A: dict[str, Array], vs: int) -> Kernel:
    mate = Indirect(A["lmate"], (ELEM,))
    work_a: list[Stmt] = [
        # WORK A: property gathers + the data-dependent special-element
        # handling that keeps the compiler from vectorizing the loop.
        Assign(R(A["eldens"], "ivect"), L(A["densi_mat"], mate)),
        Assign(R(A["elvisc"], "ivect"), L(A["visco_mat"], mate)),
        If(
            Cond("ne", L(A["ltype"], ELEM), C(HEX08)),
            (
                # fall back to unit properties for non-HEX08 / padding
                # elements (they are skipped at scatter time anyway, but
                # must not poison the arithmetic phases with infinities).
                Assign(R(A["eldens"], "ivect"), C(1.0)),
                Assign(R(A["elvisc"], "ivect"), C(1.0)),
            ),
            est_taken=0.02,
        ),
        # subscale-history gather, guarded by the per-element tracking
        # flag: data-dependent control flow the compiler cannot vectorize
        # and the other half of WORK A (it caps the VEC1 fission gain at
        # ~2x, as the paper observes).
        If(
            Cond("ne", L(A["kfl_sgs"], ELEM), C(0)),
            tuple(
                Assign(R(A["elsgs_old"], "ivect", d, g),
                       L(A["tesgs_old"], ELEM, d, g))
                for g in range(NGAUS) for d in range(NDIME)
            ),
            est_taken=0.9,
        ),
    ]
    work_b: list[Stmt] = [
        # WORK B: straight data movement from the global structures --
        # local time step, characteristic length, and the VMS subscale
        # tracked at every integration point (manually unrolled over
        # (idime, igaus) in the Fortran original).
        Assign(R(A["eldtinv"], "ivect"), L(A["dtinv_fld"], ELEM)),
        Assign(R(A["elchale"], "ivect"), L(A["chale_fld"], ELEM)),
    ] + [
        Assign(R(A["elsgs"], "ivect", d, g), L(A["tesgs"], ELEM, d, g))
        for g in range(NGAUS) for d in range(NDIME)
    ]
    # canonical form: ONE mixed loop (Algorithm 3).  The VEC1 fission
    # into the WORK A / WORK B pair (Algorithm 4) is performed by the
    # LoopFission pass.
    body: tuple[Stmt, ...] = (_loop("ivect", _vec_extent(vs),
                                    work_a + work_b),)
    return Kernel(name="phase1_gather_element", phase=1, body=body)


# ---------------------------------------------------------------------------
# Phase 2 -- gather nodal unknowns and coordinates (Algorithms 1 / 2)
# ---------------------------------------------------------------------------


def phase2(A: dict[str, Array], vs: int) -> Kernel:
    node = _node(A)
    unk_stmt = Assign(R(A["elunk"], "ivect", "inode", "idofn"),
                      Load(Ref(A["unkno"], (node, var("idofn")))))
    old_stmt = Assign(R(A["elold"], "ivect", "inode", "idime"),
                      Load(Ref(A["unkno_old"], (node, var("idime")))))
    cod_stmt = Assign(R(A["elcod"], "ivect", "inode", "idime"),
                      Load(Ref(A["coord"], (node, var("idime")))))
    # canonical form (Algorithm 1): ivect outermost with a *runtime
    # dummy* trip count -- the original vectorization blocker.  The VEC2
    # promotion of VECTOR_DIM to a compile-time parameter and the IVEC2
    # interchange (Algorithm 2, ivect innermost) are performed by the
    # ConstantTripCount and LoopInterchange passes.
    body: tuple[Stmt, ...] = (
        _loop("ivect", _vec_dummy_extent(vs), [
            _loop("inode", PNODE, [
                _loop("idofn", NDOFN, [unk_stmt]),
                _loop("idime", NDIME, [old_stmt]),
                _loop("idime", NDIME, [cod_stmt]),
            ]),
        ]),
    )
    return Kernel(name="phase2_gather_nodal", phase=2, body=body)


# ---------------------------------------------------------------------------
# Phase 3 -- Jacobian / determinant / inverse / Cartesian derivatives
# ---------------------------------------------------------------------------


def phase3(A: dict[str, Array], vs: int) -> Kernel:
    iv = _vec_extent(vs)
    xj = lambda i, j: L(A["xjacm"], "ivect", i, j)

    det_expr = fsum([
        mul(xj(0, 0), sub(mul(xj(1, 1), xj(2, 2)), mul(xj(2, 1), xj(1, 2)))),
        Unary("neg", mul(xj(0, 1), sub(mul(xj(1, 0), xj(2, 2)),
                                       mul(xj(2, 0), xj(1, 2))))),
        mul(xj(0, 2), sub(mul(xj(1, 0), xj(2, 1)), mul(xj(2, 0), xj(1, 1)))),
    ])

    def cofactor(i: int, j: int) -> Expr:
        # inverse[i, j] = cofactor(j, i) / det  (adjugate transpose)
        r = [(j + 1) % 3, (j + 2) % 3]
        c = [(i + 1) % 3, (i + 2) % 3]
        return sub(mul(xj(r[0], c[0]), xj(r[1], c[1])),
                   mul(xj(r[0], c[1]), xj(r[1], c[0])))

    inverse_stmts = [
        Assign(R(A["xjaci"], "ivect", i, j),
               mul(cofactor(i, j), L(A["gpnve"], "ivect")))
        for i in range(NDIME) for j in range(NDIME)
    ]

    body = (
        _loop("igaus", NGAUS, [
            # J_ij = sum_a elcod(a, i) * dN_a/dxi_j
            _loop("idime", NDIME, [
                _loop("jdime", NDIME, [
                    _loop("ivect", iv, [
                        Assign(R(A["xjacm"], "ivect", "idime", "jdime"), C(0.0)),
                    ]),
                ]),
            ]),
            _loop("inode", PNODE, [
                _loop("idime", NDIME, [
                    _loop("jdime", NDIME, [
                        _loop("ivect", iv, [
                            Assign(
                                R(A["xjacm"], "ivect", "idime", "jdime"),
                                mul(L(A["elcod"], "ivect", "inode", "idime"),
                                    L(A["deriv"], "jdime", "inode", "igaus")),
                                accumulate=True,
                            ),
                        ]),
                    ]),
                ]),
            ]),
            _loop("ivect", iv, [
                Assign(R(A["gpdet"], "ivect", "igaus"), det_expr),
            ]),
            _loop("ivect", iv, [
                Assign(R(A["gpvol"], "ivect", "igaus"),
                       mul(L(A["weigp"], "igaus"), L(A["gpdet"], "ivect", "igaus"))),
                # reciprocal determinant, staged in gpnve (scratch reuse,
                # like the Fortran original's temporary).
                Assign(R(A["gpnve"], "ivect"),
                       div(C(1.0), L(A["gpdet"], "ivect", "igaus"))),
            ]),
            _loop("ivect", iv, inverse_stmts),
            # dN_a/dx_i = sum_j (J^-1)_ij^T * dN_a/dxi_j = sum_j xjaci(j,i)...
            _loop("inode", PNODE, [
                _loop("idime", NDIME, [
                    _loop("ivect", iv, [
                        Assign(
                            R(A["gpcar"], "ivect", "idime", "inode", "igaus"),
                            fsum([
                                mul(L(A["xjaci"], "ivect", j, "idime"),
                                    L(A["deriv"], j, "inode", "igaus"))
                                for j in range(NDIME)
                            ]),
                        ),
                    ]),
                ]),
            ]),
        ]),
    )
    return Kernel(name="phase3_jacobian", phase=3, body=body)


# ---------------------------------------------------------------------------
# Phase 4 -- fields at the integration points
# ---------------------------------------------------------------------------


def phase4(A: dict[str, Array], vs: int) -> Kernel:
    iv = _vec_extent(vs)
    body = (
        _loop("igaus", NGAUS, [
            _loop("idime", NDIME, [
                _loop("ivect", iv, [
                    Assign(R(A["gpvel"], "ivect", "idime", "igaus"), C(0.0)),
                ]),
            ]),
            _loop("idime", NDIME, [
                _loop("ivect", iv, [
                    Assign(R(A["gpold"], "ivect", "idime", "igaus"), C(0.0)),
                ]),
            ]),
            _loop("ivect", iv, [
                Assign(R(A["gppre"], "ivect", "igaus"), C(0.0)),
            ]),
            _loop("idime", NDIME, [
                _loop("jdime", NDIME, [
                    _loop("ivect", iv, [
                        Assign(R(A["gpgve"], "ivect", "jdime", "idime", "igaus"),
                               C(0.0)),
                    ]),
                ]),
            ]),
            _loop("inode", PNODE, [
                _loop("idime", NDIME, [
                    _loop("ivect", iv, [
                        Assign(
                            R(A["gpvel"], "ivect", "idime", "igaus"),
                            mul(L(A["shapf"], "inode", "igaus"),
                                L(A["elunk"], "ivect", "inode", "idime")),
                            accumulate=True,
                        ),
                    ]),
                ]),
                _loop("idime", NDIME, [
                    _loop("ivect", iv, [
                        Assign(
                            R(A["gpold"], "ivect", "idime", "igaus"),
                            mul(L(A["shapf"], "inode", "igaus"),
                                L(A["elold"], "ivect", "inode", "idime")),
                            accumulate=True,
                        ),
                    ]),
                ]),
                _loop("ivect", iv, [
                    Assign(
                        R(A["gppre"], "ivect", "igaus"),
                        mul(L(A["shapf"], "inode", "igaus"),
                            L(A["elunk"], "ivect", "inode", 3)),
                        accumulate=True,
                    ),
                ]),
                # velocity gradient du_i/dx_j
                _loop("idime", NDIME, [
                    _loop("jdime", NDIME, [
                        _loop("ivect", iv, [
                            Assign(
                                R(A["gpgve"], "ivect", "jdime", "idime", "igaus"),
                                mul(L(A["gpcar"], "ivect", "jdime", "inode", "igaus"),
                                    L(A["elunk"], "ivect", "inode", "idime")),
                                accumulate=True,
                            ),
                        ]),
                    ]),
                ]),
            ]),
        ]),
    )
    return Kernel(name="phase4_gauss_fields", phase=4, body=body)


# ---------------------------------------------------------------------------
# Phase 5 -- time-integration elemental arrays (stabilization + init)
# ---------------------------------------------------------------------------


def phase5(A: dict[str, Array], vs: int) -> Kernel:
    iv = _vec_extent(vs)
    v0 = lambda d: L(A["gpvel"], "ivect", d, 0)
    body = (
        # |u| at the first integration point.
        _loop("ivect", iv, [
            Assign(R(A["gpnve"], "ivect"),
                   sqrt(fsum([mul(v0(d), v0(d)) for d in range(NDIME)]))),
        ]),
        # tau1 = 1 / (c1 nu / h^2 + c2 rho |u| / h)     (Codina),
        # with the per-element characteristic length gathered in phase 1
        _loop("ivect", iv, [
            Assign(
                R(A["tau1"], "ivect"),
                div(C(1.0),
                    add(div(mul(P("tau_c1"), L(A["elvisc"], "ivect")),
                            mul(L(A["elchale"], "ivect"),
                                L(A["elchale"], "ivect"))),
                        div(mul(P("tau_c2"),
                                mul(L(A["eldens"], "ivect"),
                                    L(A["gpnve"], "ivect"))),
                            L(A["elchale"], "ivect")))),
            ),
        ]),
        # tau2 = h^2 / (c1 tau1)
        _loop("ivect", iv, [
            Assign(R(A["tau2"], "ivect"),
                   div(mul(L(A["elchale"], "ivect"), L(A["elchale"], "ivect")),
                       mul(P("tau_c1"), L(A["tau1"], "ivect")))),
        ]),
        # zero the elemental accumulators for this chunk.
        _loop("inode", PNODE, [
            _loop("jnode", PNODE, [
                _loop("ivect", iv, [
                    Assign(R(A["elauu"], "ivect", "jnode", "inode"), C(0.0)),
                ]),
            ]),
            _loop("idime", NDIME, [
                _loop("ivect", iv, [
                    Assign(R(A["elrbu"], "ivect", "idime", "inode"), C(0.0)),
                ]),
            ]),
            _loop("ivect", iv, [
                Assign(R(A["elrbp"], "ivect", "inode"), C(0.0)),
            ]),
        ]),
    )
    # tau_fact1/2/3 are supplied by the kernel instance (see
    # repro.cfd.kernel_context.stabilization_params).
    return Kernel(name="phase5_time_integration", phase=5, body=body)


# ---------------------------------------------------------------------------
# Phase 6 -- convective term + VMS stabilization (the dominant phase)
# ---------------------------------------------------------------------------


def phase6(A: dict[str, Array], vs: int) -> Kernel:
    iv = _vec_extent(vs)
    gpc = lambda d, n: L(A["gpcar"], "ivect", d, n, "igaus")
    gpv = lambda d: L(A["gpvel"], "ivect", d, "igaus")
    body = (
        _loop("igaus", NGAUS, [
            # advection velocity = resolved velocity + tracked subscale
            _loop("idime", NDIME, [
                _loop("ivect", iv, [
                    Assign(R(A["gpadv"], "ivect", "idime"),
                           add(L(A["gpvel"], "ivect", "idime", "igaus"),
                               mul(C(0.5),
                                   add(L(A["elsgs"], "ivect", "idime", "igaus"),
                                       L(A["elsgs_old"], "ivect", "idime",
                                         "igaus"))))),
                ]),
            ]),
            # gpaux_a = (a . grad) N_a
            _loop("inode", PNODE, [
                _loop("ivect", iv, [
                    Assign(
                        R(A["gpaux"], "ivect", "inode"),
                        fsum([
                            mul(L(A["gpadv"], "ivect", d), gpc(d, "inode"))
                            for d in range(NDIME)
                        ]),
                    ),
                ]),
            ]),
            # momentum residual RHS at the Gauss point:
            # rho*dtinv*u_i - rho*(u . grad)u_i
            _loop("idime", NDIME, [
                _loop("ivect", iv, [
                    Assign(
                        R(A["gprhs"], "ivect", "idime"),
                        sub(
                            # BDF1 time term uses the previous-step velocity
                            mul(L(A["eldens"], "ivect"),
                                mul(L(A["eldtinv"], "ivect"),
                                    L(A["gpold"], "ivect", "idime", "igaus"))),
                            mul(L(A["eldens"], "ivect"),
                                fsum([
                                    mul(gpv(j),
                                        L(A["gpgve"], "ivect", j, "idime", "igaus"))
                                    for j in range(NDIME)
                                ])),
                        ),
                    ),
                ]),
            ]),
            # Galerkin + SUPG convection matrix:
            # elauu_ji += w rho (a.grad N_i)(N_j + tau1 (a.grad N_j))
            _loop("inode", PNODE, [
                _loop("jnode", PNODE, [
                    _loop("ivect", iv, [
                        Assign(
                            R(A["elauu"], "ivect", "jnode", "inode"),
                            mul(mul(L(A["gpvol"], "ivect", "igaus"),
                                    L(A["eldens"], "ivect")),
                                mul(L(A["gpaux"], "ivect", "inode"),
                                    add(L(A["shapf"], "jnode", "igaus"),
                                        mul(L(A["tau1"], "ivect"),
                                            L(A["gpaux"], "ivect", "jnode"))))),
                            accumulate=True,
                        ),
                    ]),
                ]),
            ]),
            # grad-div stabilization: elauu_ji += w tau2 (div N_j)(div N_i)
            _loop("inode", PNODE, [
                _loop("jnode", PNODE, [
                    _loop("ivect", iv, [
                        Assign(
                            R(A["elauu"], "ivect", "jnode", "inode"),
                            mul(mul(L(A["gpvol"], "ivect", "igaus"),
                                    L(A["tau2"], "ivect")),
                                mul(fsum([gpc(d, "jnode") for d in range(NDIME)]),
                                    fsum([gpc(d, "inode") for d in range(NDIME)]))),
                            accumulate=True,
                        ),
                    ]),
                ]),
            ]),
            # momentum RHS: elrbu_i += w rhs_d (N_i + tau1 (a.grad N_i))
            _loop("inode", PNODE, [
                _loop("idime", NDIME, [
                    _loop("ivect", iv, [
                        Assign(
                            R(A["elrbu"], "ivect", "idime", "inode"),
                            mul(mul(L(A["gpvol"], "ivect", "igaus"),
                                    L(A["gprhs"], "ivect", "idime")),
                                add(L(A["shapf"], "inode", "igaus"),
                                    mul(L(A["tau1"], "ivect"),
                                        L(A["gpaux"], "ivect", "inode")))),
                            accumulate=True,
                        ),
                    ]),
                ]),
            ]),
            # continuity RHS (pressure stabilization):
            # elrbp_a += w tau1 (grad N_a . rhs)
            _loop("inode", PNODE, [
                _loop("ivect", iv, [
                    Assign(
                        R(A["elrbp"], "ivect", "inode"),
                        mul(mul(L(A["gpvol"], "ivect", "igaus"),
                                L(A["tau1"], "ivect")),
                            fsum([
                                mul(gpc(d, "inode"), L(A["gprhs"], "ivect", d))
                                for d in range(NDIME)
                            ])),
                        accumulate=True,
                    ),
                ]),
            ]),
        ]),
    )
    return Kernel(name="phase6_convective", phase=6, body=body)


# ---------------------------------------------------------------------------
# Phase 7 -- viscous term (semi-implicit elemental matrices)
# ---------------------------------------------------------------------------


def phase7(A: dict[str, Array], vs: int) -> Kernel:
    iv = _vec_extent(vs)
    gpc = lambda d, n: L(A["gpcar"], "ivect", d, n, "igaus")

    def divN(n: str) -> Expr:
        return fsum([gpc(d, n) for d in range(NDIME)])

    body = (
        _loop("igaus", NGAUS, [
            # precompute div N_a at this Gauss point (gpaux is free again
            # after phase 6, the usual Fortran scratch reuse)
            _loop("inode", PNODE, [
                _loop("ivect", iv, [
                    Assign(R(A["gpaux"], "ivect", "inode"), divN("inode")),
                ]),
            ]),
            # full stress form at block level:
            # elauu_ji += w mu [ (grad N_i . grad N_j)
            #                    + 1/3 (div N_i)(div N_j) ]
            # (Laplacian + bulk/cross term of the symmetric gradient);
            # the FP density of this loop is what lets the compiler
            # vectorize phase 7 even at VECTOR_SIZE = 16 (Table 4).
            _loop("inode", PNODE, [
                _loop("jnode", PNODE, [
                    _loop("ivect", iv, [
                        Assign(
                            R(A["elauu"], "ivect", "jnode", "inode"),
                            mul(mul(L(A["gpvol"], "ivect", "igaus"),
                                    L(A["elvisc"], "ivect")),
                                add(
                                    fsum([
                                        mul(gpc(d, "inode"), gpc(d, "jnode"))
                                        for d in range(NDIME)
                                    ]),
                                    mul(C(1.0 / 3.0),
                                        mul(L(A["gpaux"], "ivect", "inode"),
                                            L(A["gpaux"], "ivect", "jnode"))),
                                )),
                            accumulate=True,
                        ),
                    ]),
                ]),
            ]),
        ]),
    )
    return Kernel(name="phase7_viscous", phase=7, body=body)


# ---------------------------------------------------------------------------
# Phase 8 -- valid-element check + global scatter
# ---------------------------------------------------------------------------


def phase8(A: dict[str, Array], vs: int) -> Kernel:
    node = _node(A)
    # elauu(ivect, jnode, inode) is the (test=jnode, trial=inode) entry;
    # elpos(e, r, c) holds the CSR slot of (row=lnods(e,r), col=lnods(e,c)).
    pos = Indirect(A["elpos"], (ELEM, var("jnode"), var("inode")))
    body = (
        _loop("ivect", _vec_extent(vs), [
            If(
                Cond("eq", L(A["ltype"], ELEM), C(HEX08)),
                (
                    _loop("inode", PNODE, [
                        _loop("idime", NDIME, [
                            Assign(Ref(A["rhsid"], (node, var("idime"))),
                                   L(A["elrbu"], "ivect", "idime", "inode"),
                                   accumulate=True),
                        ]),
                        Assign(Ref(A["rhsid"], (node, Affine((), NDIME))),
                               L(A["elrbp"], "ivect", "inode"),
                               accumulate=True),
                        _loop("jnode", PNODE, [
                            Assign(Ref(A["amatr"], (pos,)),
                                   L(A["elauu"], "ivect", "jnode", "inode"),
                                   accumulate=True),
                        ]),
                    ]),
                ),
                est_taken=0.98,
            ),
        ]),
    )
    return Kernel(name="phase8_scatter", phase=8, body=body)


#: phase builders in execution order.
PHASE_BUILDERS = (phase1, phase2, phase3, phase4, phase5, phase6, phase7, phase8)

#: human-readable phase names, used by the observability layer (span
#: labels, Paraver .pcf states, summary sections) -- the paper's Table-3
#: row captions.
PHASE_NAMES: dict[int, str] = {
    1: "gather element data",
    2: "gather nodal unknowns",
    3: "jacobian + cartesian derivatives",
    4: "gauss-point fields",
    5: "stabilization + accumulator init",
    6: "convective + VMS (dominant)",
    7: "viscous term",
    8: "valid-element check + scatter",
}


def build_baseline_kernels(arrays: dict[str, Array],
                           vector_size: int) -> list[Kernel]:
    """All eight phase kernels in canonical baseline form (pre-pass)."""
    return [builder(arrays, vector_size) for builder in PHASE_BUILDERS]


def build_kernels(arrays: dict[str, Array], cfg: KernelConfig) -> list[Kernel]:
    """All eight phase kernels for one configuration (baseline kernels
    run through the pass pipeline the config's booleans spell)."""
    from repro.compiler.transforms import pipeline_from_names

    pipeline = pipeline_from_names(cfg.pass_names())
    kernels, _ = pipeline.run_all(
        build_baseline_kernels(arrays, cfg.vector_size))
    return kernels
