"""The assemble+solve path: compiled solver kernels + Krylov drivers.

:class:`SolverWorkload` is the solver-side twin of
:class:`~repro.cfd.assembly.MiniApp`: it compiles the four solver-phase
kernels (:mod:`repro.cfd.solver_phases`) through the same pass pipeline
/ vectorizer / code generator, and exposes

* :meth:`SolverWorkload.ir_solve` -- a host-orchestrated CG / BiCGSTAB
  in which **every vector operation** (SpMV, dot products, axpys, the
  Jacobi apply, even the residual norms) executes through the IR
  kernels on a pluggable backend; only the scalar recurrences
  (``alpha``, ``beta``, ``omega``, breakdown guards) live on the host,
  mirroring :mod:`repro.cfd.solver` statement for statement;
* :meth:`SolverWorkload.reference_solve` -- the plain NumPy
  :func:`repro.cfd.solver.cg` / :func:`~repro.cfd.solver.bicgstab` on
  the same matrix (the golden-check oracle);
* :meth:`SolverWorkload.run_timed` -- charges the compiled kernels into
  a machine model, one representative preconditioned-CG iteration
  (1 SpMV, 2 dots, 3 axpys, 1 Jacobi apply) per solver iteration, so
  ``solve=True`` runs produce per-solver-kernel cycle counts, VL
  histograms and SIM-domain trace spans exactly like the assembly
  phases.

The solved system is the assembled momentum operator with a unit
diagonal shift (:data:`DIAGONAL_SHIFT`) -- the semi-implicit mass term
that makes the operator safely nonsingular, matching what the solver
test-bench does with assembled matrices.
"""

from __future__ import annotations

import math
from typing import Mapping, Optional

import numpy as np

from repro.cfd.csr import CSRPattern
from repro.cfd.solver import SolveResult, bicgstab, cg, jacobi_preconditioner
from repro.cfd.solver_phases import (
    AXPY_PHASE,
    DOT_PHASE,
    PRECOND_PHASE,
    SPMV_PHASE,
    SolverContext,
    build_solver_kernels,
)
from repro.compiler.flags import PAPER_FLAGS, SCALAR_FLAGS, CompilerFlags
from repro.compiler.program import CompiledKernel, compile_kernels
from repro.compiler.transforms import (
    PassPipeline,
    TransformRemark,
    pipeline_for_opt,
)
from repro.compiler.vectorizer import VecRemark
from repro.machine.cpu import Machine
from repro.metrics.counters import RunCounters

#: diagonal shift applied to the assembled operator before solving --
#: the semi-implicit mass contribution; keeps the Neumann-like operator
#: nonsingular and the Jacobi preconditioner effective.
DIAGONAL_SHIFT = 1.0

#: solver defaults for the timed/validated path.
SOLVE_TOL = 1e-8
SOLVE_MAXITER = 200

#: kernel mix of the representative timed iteration (phase id, repeats):
#: one preconditioned-CG iteration -- 1 SpMV, 2 dots, 3 axpys, 1 apply.
TIMED_ITERATION_MIX: tuple[tuple[int, int], ...] = (
    (SPMV_PHASE, 1),
    (DOT_PHASE, 2),
    (AXPY_PHASE, 3),
    (PRECOND_PHASE, 1),
)


def shift_diagonal(pattern: CSRPattern, amatr: np.ndarray,
                   shift: float = DIAGONAL_SHIFT) -> np.ndarray:
    """CSR values with *shift* added to every diagonal entry."""
    out = np.asarray(amatr, dtype=np.float64).copy()
    rows = pattern.row_of_entry()
    out[pattern.indices == rows] += shift
    return out


class SolverWorkload:
    """One matrix + one configuration of the compiled solver kernels."""

    def __init__(self, pattern: CSRPattern, amatr: np.ndarray,
                 vector_size: int, opt: str = "vanilla",
                 flags: Optional[CompilerFlags] = None,
                 pipeline: Optional[PassPipeline] = None,
                 params: Optional[dict[str, float]] = None):
        self.pattern = pattern
        self.amatr = np.asarray(amatr, dtype=np.float64)
        self.vector_size = vector_size
        self.opt = opt
        # mirror MiniApp's opt -> (flags, pipeline) derivation so a bare
        # SolverWorkload(opt="ivec2") compiles the same program the
        # assemble+solve path would.
        if flags is None:
            flags = SCALAR_FLAGS if opt == "scalar" else PAPER_FLAGS
        self.flags = flags
        self.pipeline = (pipeline if pipeline is not None
                         else pipeline_for_opt(opt))
        self.context = SolverContext(pattern, self.amatr, vector_size,
                                     params=params)
        result = compile_kernels(
            build_solver_kernels(self.context.arrays, vector_size),
            self.flags, pipeline=self.pipeline)
        self.baseline_kernels = result.baseline
        self.kernels = result.kernels
        self.transform_remarks: list[TransformRemark] = result.transform_remarks
        self.remarks: list[VecRemark] = result.vec_remarks
        self.compiled: list[CompiledKernel] = result.compiled
        self.kernels_by_phase = {k.phase: k for k in self.kernels}
        self.compiled_by_phase = {c.phase: c for c in self.compiled}

    # -- semantic path --------------------------------------------------

    def reference_solve(self, b: np.ndarray, method: str = "bicgstab",
                        tol: float = SOLVE_TOL,
                        maxiter: int = SOLVE_MAXITER) -> SolveResult:
        """Plain NumPy Krylov solve of the same system (the oracle)."""
        solver = {"cg": cg, "bicgstab": bicgstab}[method]
        precond = jacobi_preconditioner(self.pattern, self.amatr)
        return solver(self.pattern, self.amatr, b, tol=tol,
                      maxiter=maxiter, precond=precond)

    def ir_solve(self, b: np.ndarray, method: str = "bicgstab",
                 tol: float = SOLVE_TOL, maxiter: int = SOLVE_MAXITER,
                 backend: "str | None" = None) -> SolveResult:
        """Krylov solve with every vector operation through the IR
        kernels on *backend* (mirrors :mod:`repro.cfd.solver`)."""
        ops = _KernelOps(self, backend)
        if method == "cg":
            return _ir_cg(ops, b, tol, maxiter)
        if method == "bicgstab":
            return _ir_bicgstab(ops, b, tol, maxiter)
        raise ValueError(f"unknown solver method {method!r}")

    # -- timed path -----------------------------------------------------

    def run_timed(self, machine: Machine, run: RunCounters,
                  iterations: int) -> RunCounters:
        """Charge *iterations* representative Krylov iterations into
        *run* on *machine* (phases 9-12).

        The iteration count comes from the backend-independent NumPy
        reference solve, so modeled solver cycles stay a pure function
        of the configuration -- same contract as the assembly phases.
        """
        from repro.obs.tracer import span as _obs_span

        chunks = self.context.chunks()
        insts = [self.context.instance_for_chunk(c) for c in chunks]
        program: list[CompiledKernel] = []
        for phase, repeats in TIMED_ITERATION_MIX:
            program.extend([self.compiled_by_phase[phase]] * repeats)
        with _obs_span(f"solve {self.opt} vs{self.vector_size}",
                       cat="run", opt=self.opt,
                       vector_size=self.vector_size,
                       iterations=iterations):
            for _ in range(max(int(iterations), 0)):
                for inst in insts:
                    machine.execute_program(program, inst, run)
        return run


# ---------------------------------------------------------------------------
# host-orchestrated Krylov drivers over the IR kernels
# ---------------------------------------------------------------------------


class _KernelOps:
    """Vector-primitive API over the compiled solver kernels.

    One shared data dict is bound (by reference) into one instance per
    row chunk; each primitive copies its operands into the canonical
    kernel arrays, runs the kernel over every chunk through the backend,
    and reads the result back.  Padded tail rows hold zeros, so they
    contribute exact zeros to dots and SpMV outputs.
    """

    def __init__(self, workload: SolverWorkload, backend: "str | None"):
        from repro.backends import get_backend

        self.w = workload
        self.backend = get_backend(backend)
        self.n = workload.context.sizes.nrow
        self.data = workload.context.solver_data()
        self.insts = [
            workload.context.instance_for_chunk(c, globals_data=self.data)
            for c in workload.context.chunks()
        ]

    def _run(self, phase: int, params: Optional[Mapping[str, float]] = None
             ) -> None:
        kern = self.w.kernels_by_phase[phase]
        merged = dict(self.w.context.params)
        if params:
            merged.update(params)
        for inst in self.insts:
            self.backend.run_kernel(kern, inst, merged)

    def _set(self, name: str, values: np.ndarray) -> None:
        arr = self.data[name]
        arr[:self.n] = values
        arr[self.n:] = 0.0

    def spmv(self, x: np.ndarray) -> np.ndarray:
        self._set("xvec", x)
        self._run(SPMV_PHASE)
        return self.data["yout"][:self.n].copy()

    def dot(self, a: np.ndarray, b: np.ndarray) -> float:
        self._set("xvec", a)
        self._set("yvec", b)
        self.data["dotacc"][0] = 0.0
        self._run(DOT_PHASE)
        return float(self.data["dotacc"][0])

    def axpy(self, y: np.ndarray, alpha: float, x: np.ndarray) -> np.ndarray:
        """``y + alpha * x`` through the phase-11 kernel."""
        self._set("xvec", x)
        self._set("yvec", y)
        self._run(AXPY_PHASE, {"alpha": float(alpha)})
        return self.data["wvec"][:self.n].copy()

    def precond(self, r: np.ndarray) -> np.ndarray:
        """Jacobi apply through the phase-12 kernel (``dinv`` is
        populated by the SpMV head, which every solve runs first)."""
        self._set("rvec", r)
        self._run(PRECOND_PHASE)
        return self.data["zvec"][:self.n].copy()

    def norm(self, v: np.ndarray) -> float:
        return math.sqrt(max(self.dot(v, v), 0.0))


def _ir_cg(ops: _KernelOps, b: np.ndarray, tol: float,
           maxiter: int) -> SolveResult:
    x = np.zeros_like(b)
    r = ops.axpy(b, -1.0, ops.spmv(x))
    z = ops.precond(r)
    p = z.copy()
    rz = ops.dot(r, z)
    bnorm = ops.norm(b) or 1.0
    history = [ops.norm(r) / bnorm]
    if history[-1] < tol:
        return SolveResult(x, 0, history[-1], True, history)
    if rz == 0.0:
        return SolveResult(x, 0, history[-1], False, history)
    for it in range(1, maxiter + 1):
        Ap = ops.spmv(p)
        pAp = ops.dot(p, Ap)
        if pAp == 0.0:
            return SolveResult(x, it, history[-1], False, history)
        alpha = rz / pAp
        x = ops.axpy(x, alpha, p)
        r = ops.axpy(r, -alpha, Ap)
        res = ops.norm(r) / bnorm
        history.append(res)
        if res < tol:
            return SolveResult(x, it, res, True, history)
        z = ops.precond(r)
        rz_new = ops.dot(r, z)
        if rz_new == 0.0:
            return SolveResult(x, it, res, False, history)
        p = ops.axpy(z, rz_new / rz, p)
        rz = rz_new
    return SolveResult(x, maxiter, history[-1], False, history)


def _ir_bicgstab(ops: _KernelOps, b: np.ndarray, tol: float,
                 maxiter: int) -> SolveResult:
    x = np.zeros_like(b)
    r = ops.axpy(b, -1.0, ops.spmv(x))
    r0 = r.copy()
    rho = alpha = omega = 1.0
    v = np.zeros_like(b)
    p = np.zeros_like(b)
    bnorm = ops.norm(b) or 1.0
    history = [ops.norm(r) / bnorm]
    if history[-1] < tol:
        return SolveResult(x, 0, history[-1], True, history)
    for it in range(1, maxiter + 1):
        rho_new = ops.dot(r0, r)
        if rho_new == 0.0:
            return SolveResult(x, it, history[-1], False, history)
        if it > 1:
            beta = (rho_new / rho) * (alpha / omega)
            p = ops.axpy(r, beta, ops.axpy(p, -omega, v))
        else:
            p = r.copy()
        phat = ops.precond(p)
        v = ops.spmv(phat)
        denom = ops.dot(r0, v)
        if denom == 0.0:
            return SolveResult(x, it, history[-1], False, history)
        alpha = rho_new / denom
        s = ops.axpy(r, -alpha, v)
        if ops.norm(s) / bnorm < tol:
            x = ops.axpy(x, alpha, phat)
            history.append(ops.norm(s) / bnorm)
            return SolveResult(x, it, history[-1], True, history)
        shat = ops.precond(s)
        t = ops.spmv(shat)
        tt = ops.dot(t, t)
        if tt == 0.0:
            return SolveResult(x, it, history[-1], False, history)
        omega = ops.dot(t, s) / tt
        x = ops.axpy(ops.axpy(x, alpha, phat), omega, shat)
        r = ops.axpy(s, -omega, t)
        rho = rho_new
        res = ops.norm(r) / bnorm
        history.append(res)
        if res < tol:
            return SolveResult(x, it, res, True, history)
        if omega == 0.0:
            return SolveResult(x, it, res, False, history)
    return SolveResult(x, maxiter, history[-1], False, history)
