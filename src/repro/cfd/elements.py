"""Finite-element reference data: trilinear hexahedra (Q1/HEX08).

Shape functions and their parametric derivatives are evaluated at the
2x2x2 Gauss-Legendre points, the standard choice for HEX08 elements and
the configuration the Alya Nastin assembly uses for the paper's
mini-app (``pnode = 8`` nodes, ``ngaus = 8`` integration points,
``ndime = 3``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: spatial dimensions.
NDIME = 3
#: nodes per hexahedral element.
PNODE = 8
#: Gauss points per element (2x2x2).
NGAUS = 8
#: degrees of freedom per node (3 velocity components + pressure).
NDOFN = 4
#: Alya element-type code for the 8-node hexahedron.
HEX08 = 37

#: reference-element node coordinates in [-1, 1]^3, Alya/VTK ordering.
_NODE_XI = np.array([
    [-1.0, -1.0, -1.0],
    [+1.0, -1.0, -1.0],
    [+1.0, +1.0, -1.0],
    [-1.0, +1.0, -1.0],
    [-1.0, -1.0, +1.0],
    [+1.0, -1.0, +1.0],
    [+1.0, +1.0, +1.0],
    [-1.0, +1.0, +1.0],
])


def gauss_points_1d() -> tuple[np.ndarray, np.ndarray]:
    """Two-point Gauss-Legendre rule on [-1, 1]."""
    g = 1.0 / np.sqrt(3.0)
    return np.array([-g, g]), np.array([1.0, 1.0])


@dataclass(frozen=True)
class ElementBasis:
    """Shape-function tables for HEX08.

    Attributes use Alya's layout conventions:

    * ``shapf[inode, igaus]`` -- shape function N_inode at Gauss point;
    * ``deriv[idime, inode, igaus]`` -- dN_inode/dxi_idime;
    * ``weigp[igaus]`` -- quadrature weight.
    """

    shapf: np.ndarray
    deriv: np.ndarray
    weigp: np.ndarray

    def __post_init__(self) -> None:
        assert self.shapf.shape == (PNODE, NGAUS)
        assert self.deriv.shape == (NDIME, PNODE, NGAUS)
        assert self.weigp.shape == (NGAUS,)


def shape_q1(xi: np.ndarray) -> np.ndarray:
    """Q1 shape functions at parametric point *xi* (shape (3,))."""
    vals = np.empty(PNODE)
    for a in range(PNODE):
        na = _NODE_XI[a]
        vals[a] = 0.125 * np.prod(1.0 + na * xi)
    return vals


def shape_q1_deriv(xi: np.ndarray) -> np.ndarray:
    """Q1 parametric derivatives at *xi*: shape (NDIME, PNODE)."""
    out = np.empty((NDIME, PNODE))
    for a in range(PNODE):
        na = _NODE_XI[a]
        for d in range(NDIME):
            term = 0.125 * na[d]
            for o in range(NDIME):
                if o != d:
                    term *= 1.0 + na[o] * xi[o]
            out[d, a] = term
    return out


def hex08_basis() -> ElementBasis:
    """Build the HEX08 shape-function tables at the 2x2x2 Gauss points."""
    pts, wts = gauss_points_1d()
    shapf = np.empty((PNODE, NGAUS))
    deriv = np.empty((NDIME, PNODE, NGAUS))
    weigp = np.empty(NGAUS)
    g = 0
    # Gauss-point ordering: z fastest would also work; use x fastest to
    # match the tensor-product convention used by the mesh tests.
    for kz in range(2):
        for ky in range(2):
            for kx in range(2):
                xi = np.array([pts[kx], pts[ky], pts[kz]])
                shapf[:, g] = shape_q1(xi)
                deriv[:, :, g] = shape_q1_deriv(xi)
                weigp[g] = wts[kx] * wts[ky] * wts[kz]
                g += 1
    return ElementBasis(shapf=shapf, deriv=deriv, weigp=weigp)
