"""CSR sparse-matrix substrate.

The mini-app's phase 8 scatters elemental 8x8 blocks into a global
nodal matrix stored in CSR form.  This module builds the sparsity
pattern from the mesh connectivity, precomputes the per-element scatter
positions (``elpos``), and provides the SpMV needed by the algebraic
solver (:mod:`repro.cfd.solver`), the second of the two primary
operations CFD codes are structured around ("matrix and RHS assembly"
and "algebraic linear solver", paper section 2.3).

Construction is NumPy-vectorized throughout: the element node-pair keys
are sorted/uniqued to obtain row-major, column-sorted CSR order, and the
scatter positions fall out of a single ``searchsorted``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cfd.elements import PNODE
from repro.cfd.mesh import Mesh


@dataclass
class CSRPattern:
    """Sparsity pattern of the assembled nodal matrix."""

    n: int                  # matrix dimension (number of mesh nodes)
    indptr: np.ndarray      # (n + 1,)
    indices: np.ndarray     # (nnz,) column ids, sorted within each row
    elpos: np.ndarray       # (nelem, pnode, pnode) CSR slot of (row, col)

    @property
    def nnz(self) -> int:
        return int(self.indices.size)

    def row_of_entry(self) -> np.ndarray:
        """Row index of every stored entry (expanded from indptr)."""
        counts = np.diff(self.indptr)
        return np.repeat(np.arange(self.n, dtype=np.int64), counts)


def build_pattern(mesh: Mesh) -> CSRPattern:
    """Nodal CSR pattern + per-element scatter positions for *mesh*.

    ``elpos[e, r, c]`` is the CSR slot of matrix entry
    ``(lnods[e, r], lnods[e, c])``.
    """
    n = mesh.npoin
    ln = mesh.lnods                                  # (nelem, 8)
    rows = np.repeat(ln, PNODE, axis=1)              # (nelem, 64) r index
    cols = np.tile(ln, (1, PNODE))                   # (nelem, 64) c index
    keys = rows.astype(np.int64) * n + cols
    unique = np.unique(keys)
    indices = (unique % n).astype(np.int64)
    urows = unique // n
    indptr = np.searchsorted(urows, np.arange(n + 1), side="left").astype(np.int64)
    elpos = np.searchsorted(unique, keys).reshape(mesh.nelem, PNODE, PNODE)
    return CSRPattern(n=n, indptr=indptr, indices=indices, elpos=elpos.astype(np.int64))


def spmv(pattern: CSRPattern, data: np.ndarray, x: np.ndarray) -> np.ndarray:
    """y = A @ x for a CSR matrix with values *data* over *pattern*."""
    if data.shape != (pattern.nnz,):
        raise ValueError(f"data must have shape ({pattern.nnz},)")
    if x.shape != (pattern.n,):
        raise ValueError(f"x must have shape ({pattern.n},)")
    prod = data * x[pattern.indices]
    # row-segmented sum
    out = np.add.reduceat(prod, pattern.indptr[:-1])
    # rows with zero entries: reduceat repeats the next segment; mask them.
    empty = np.diff(pattern.indptr) == 0
    if empty.any():
        out = np.where(empty, 0.0, out)
    return out


def diagonal(pattern: CSRPattern, data: np.ndarray) -> np.ndarray:
    """Extract the matrix diagonal (for Jacobi preconditioning)."""
    diag = np.zeros(pattern.n)
    rows = pattern.row_of_entry()
    mask = pattern.indices == rows
    diag[rows[mask]] = data[mask]
    return diag


def to_dense(pattern: CSRPattern, data: np.ndarray) -> np.ndarray:
    """Dense matrix (tests / small problems only)."""
    out = np.zeros((pattern.n, pattern.n))
    rows = pattern.row_of_entry()
    out[rows, pattern.indices] = data
    return out
