"""Mini-app working storage: array declarations and chunk instances.

Declares every array the eight phases touch, in two groups mirroring the
Fortran mini-app:

* **global** (mesh-level) arrays: coordinates, nodal unknowns,
  connectivity, property tables, subscales, the global RHS and the CSR
  matrix -- allocated once, addresses fixed for the whole run;
* **local** (element-level) working arrays sized by VECTOR_SIZE --
  allocated once and reused by every chunk, exactly like Alya's
  elemental scratch arrays, so growing VECTOR_SIZE grows the kernel's
  resident working set (the capacity effect behind the paper's phase-1/
  phase-8 analysis in Table 6).

A :class:`MiniAppContext` owns the shared
:class:`~repro.compiler.program.MemoryLayout` and builds one
:class:`~repro.compiler.program.KernelInstance` per chunk: same arrays,
same addresses, different chunk-base index constant and (for the
interpreter/reference paths) different gather data.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cfd.elements import NDIME, NDOFN, NGAUS, PNODE, hex08_basis
from repro.cfd.mesh import Chunk, Mesh
from repro.compiler.ir import Array
from repro.compiler.program import KernelInstance, MemoryLayout

#: the Affine index-constant name carrying the chunk's first element id.
CHUNK_BASE = "__chunk0__"


@dataclass(frozen=True)
class Sizes:
    """Problem dimensions needed to declare the arrays."""

    vector_size: int
    npoin: int
    nelem: int
    nmate: int
    nnz: int  # CSR non-zeros of the assembled matrix

    @property
    def vs(self) -> int:
        return self.vector_size


def declare_arrays(sz: Sizes) -> dict[str, Array]:
    """All mini-app arrays, keyed by name (column-major shapes)."""
    V = sz.vs
    g = lambda name, shape, dtype="f8": Array(name, shape, dtype, scope="global")
    l = lambda name, shape, dtype="f8": Array(name, shape, dtype, scope="local")
    arrays = [
        # -- global mesh data --------------------------------------------
        g("coord", (sz.npoin, NDIME)),
        g("unkno", (sz.npoin, NDOFN)),
        g("unkno_old", (sz.npoin, NDIME)),
        g("lnods", (sz.nelem, PNODE), "i8"),
        g("ltype", (sz.nelem,), "i8"),
        g("lmate", (sz.nelem,), "i8"),
        g("densi_mat", (sz.nmate,)),
        g("visco_mat", (sz.nmate,)),
        g("tesgs", (sz.nelem, NDIME, NGAUS)),
        g("tesgs_old", (sz.nelem, NDIME, NGAUS)),
        g("kfl_sgs", (sz.nelem,), "i8"),
        g("dtinv_fld", (sz.nelem,)),
        g("chale_fld", (sz.nelem,)),
        g("shapf", (PNODE, NGAUS)),
        g("deriv", (NDIME, PNODE, NGAUS)),
        g("weigp", (NGAUS,)),
        g("rhsid", (sz.npoin, NDOFN)),
        g("elpos", (sz.nelem, PNODE, PNODE), "i8"),
        g("amatr", (sz.nnz,)),
        # -- chunk-local working arrays ------------------------------------
        l("eldens", (V,)),
        l("elvisc", (V,)),
        l("eldtinv", (V,)),
        l("elchale", (V,)),
        l("elsgs", (V, NDIME, NGAUS)),
        l("elsgs_old", (V, NDIME, NGAUS)),
        l("elunk", (V, PNODE, NDOFN)),
        l("elold", (V, PNODE, NDIME)),
        l("elcod", (V, PNODE, NDIME)),
        l("xjacm", (V, NDIME, NDIME)),
        l("xjaci", (V, NDIME, NDIME)),
        l("gpdet", (V, NGAUS)),
        l("gpvol", (V, NGAUS)),
        l("gpcar", (V, NDIME, PNODE, NGAUS)),
        l("gpvel", (V, NDIME, NGAUS)),
        l("gpold", (V, NDIME, NGAUS)),
        l("gpgve", (V, NDIME, NDIME, NGAUS)),
        l("gppre", (V, NGAUS)),
        l("gpadv", (V, NDIME)),
        l("gpaux", (V, PNODE)),
        l("gprhs", (V, NDIME)),
        l("gpnve", (V,)),
        l("tau1", (V,)),
        l("tau2", (V,)),
        l("elauu", (V, PNODE, PNODE)),
        l("elrbu", (V, NDIME, PNODE)),
        l("elrbp", (V, PNODE)),
    ]
    return {a.name: a for a in arrays}


def stabilization_params(chale: float = 0.1, c1: float = 4.0,
                         c2: float = 2.0) -> dict[str, float]:
    """Codina stabilization factors precomputed from the element length.

    tau1 = 1 / (c1 nu / h^2 + c2 rho |u| / h); tau2 = h^2 / (c1 tau1).
    """
    return {
        "tau_fact1": c1 / (chale * chale),
        "tau_fact2": c2 / chale,
        "tau_fact3": (chale * chale) / c1,
    }


#: default physical / numerical parameters of the mini-app.
DEFAULT_PARAMS: dict[str, float] = {
    "dtinv": 10.0,      # inverse time step
    "chale": 0.1,       # characteristic element length
    "tau_c1": 4.0,      # Codina stabilization constants
    "tau_c2": 2.0,
    **stabilization_params(),
}


class MiniAppContext:
    """Shared memory layout + per-chunk instances for one configuration."""

    def __init__(self, mesh: Mesh, vector_size: int, nnz: int,
                 params: dict[str, float] | None = None):
        self.mesh = mesh
        self.vector_size = vector_size
        # Pad the element-indexed global arrays to a whole number of
        # chunks (Alya pads its data structures the same way); padded
        # entries replicate the last element's geometry but carry an
        # invalid ltype so the phase-8 validity check skips them.
        nchunks = -(-mesh.nelem // vector_size)
        self.padded_nelem = nchunks * vector_size
        pad = self.padded_nelem - mesh.nelem
        self.lnods = np.concatenate(
            [mesh.lnods, np.repeat(mesh.lnods[-1:], pad, axis=0)]) if pad else mesh.lnods
        self.ltype = np.concatenate(
            [mesh.ltype, np.zeros(pad, dtype=np.int64)]) if pad else mesh.ltype
        self.lmate = np.concatenate(
            [mesh.lmate, np.repeat(mesh.lmate[-1:], pad)]) if pad else mesh.lmate
        # subscale tracking is active for every element in this setup
        # (the compiler still cannot prove it and keeps the guard).
        self.kfl_sgs = np.ones(self.padded_nelem, dtype=np.int64)
        self.sizes = Sizes(
            vector_size=vector_size,
            npoin=mesh.npoin,
            nelem=self.padded_nelem,
            nmate=max(mesh.nmate, 1),
            nnz=nnz,
        )
        self.arrays = declare_arrays(self.sizes)
        self.layout = MemoryLayout()
        self.params = {**DEFAULT_PARAMS, **(params or {})}
        # Place globals first, then locals, with fixed deterministic order.
        for arr in self.arrays.values():
            if arr.scope == "global":
                self.layout.place(arr)
        for arr in self.arrays.values():
            if arr.scope == "local":
                self.layout.place(arr)

    def chunks(self) -> list[Chunk]:
        """Contiguous VECTOR_SIZE chunks over the padded element range."""
        out = []
        vs = self.vector_size
        for ci in range(self.padded_nelem // vs):
            start = ci * vs
            ids = np.arange(start, start + vs, dtype=np.int64)
            n_real = max(0, min(vs, self.mesh.nelem - start))
            out.append(Chunk(index=ci, elements=ids, n_real=n_real))
        return out

    def instance_for_chunk(self, chunk: Chunk, *, with_data: bool = False,
                           globals_data: dict[str, np.ndarray] | None = None
                           ) -> KernelInstance:
        """Build the kernel instance for one chunk.

        The timing path only needs the integer gather tables (``lnods``,
        ``ltype``, ``lmate``, ``elpos``); ``with_data`` additionally binds
        float data so the interpreter / reference semantics can run.
        ``globals_data`` supplies shared global arrays (bound by
        reference, so scatter-accumulates persist across chunks).
        """
        inst = KernelInstance(
            params=self.params,
            layout=self.layout,
            index_consts={CHUNK_BASE: int(chunk.elements[0])},
        )
        gdata = globals_data or {}
        for arr in self.arrays.values():
            if arr.name in gdata:
                inst.bind(arr, gdata[arr.name])
            elif arr.dtype == "i8" and arr.scope == "global":
                inst.bind(arr, self._global_int_data(arr.name))
            elif with_data:
                inst.ensure_data(arr)
            else:
                inst.bind(arr)
        return inst

    def _global_int_data(self, name: str) -> np.ndarray:
        if name == "lnods":
            return self.lnods
        if name == "ltype":
            return self.ltype
        if name == "lmate":
            return self.lmate
        if name == "kfl_sgs":
            return self.kfl_sgs
        if name == "elpos":
            raise ValueError(
                "elpos must be supplied via globals_data (built by repro.cfd.csr)")
        raise KeyError(name)

    def basis_data(self) -> dict[str, np.ndarray]:
        """Shape-function tables as global data arrays."""
        basis = hex08_basis()
        return {"shapf": basis.shapf, "deriv": basis.deriv, "weigp": basis.weigp}
