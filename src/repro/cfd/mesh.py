"""Unstructured hexahedral meshes.

A structured box of ``nx x ny x nz`` hexahedral cells is generated and
then treated as *unstructured*: elements carry an explicit connectivity
table ``lnods`` (element -> 8 global node ids), element-type codes
``ltype`` and material ids ``lmate``, exactly the data structures the
Alya mini-app gathers from in phases 1-2 and scatters into in phase 8.
Optional node renumbering randomizes node ids to emulate the indirection
patterns of a genuinely unstructured mesh (scattered gather addresses).

The mesh is processed in *chunks* of ``VECTOR_SIZE`` elements -- the
compile-time packing parameter at the heart of the paper's study.  A
trailing partial chunk is padded by repeating the last element, as Alya
does, so kernels always see full chunks.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cfd.elements import HEX08, NDIME, PNODE


@dataclass(frozen=True)
class Chunk:
    """One VECTOR_SIZE pack of elements."""

    index: int
    #: global element ids, length = VECTOR_SIZE (padded at the tail).
    elements: np.ndarray
    #: number of genuine (non-padding) elements.
    n_real: int

    @property
    def size(self) -> int:
        return int(self.elements.size)


@dataclass
class Mesh:
    """An unstructured hexahedral mesh."""

    coord: np.ndarray   # (npoin, 3) float64
    lnods: np.ndarray   # (nelem, 8) int64, global node ids
    ltype: np.ndarray   # (nelem,) int64, element type codes
    lmate: np.ndarray   # (nelem,) int64, material ids
    dims: tuple[int, int, int] = (0, 0, 0)

    def __post_init__(self) -> None:
        self.coord = np.ascontiguousarray(self.coord, dtype=np.float64)
        self.lnods = np.ascontiguousarray(self.lnods, dtype=np.int64)
        self.ltype = np.ascontiguousarray(self.ltype, dtype=np.int64)
        self.lmate = np.ascontiguousarray(self.lmate, dtype=np.int64)
        if self.coord.ndim != 2 or self.coord.shape[1] != NDIME:
            raise ValueError(f"coord must be (npoin, {NDIME})")
        if self.lnods.ndim != 2 or self.lnods.shape[1] != PNODE:
            raise ValueError(f"lnods must be (nelem, {PNODE})")
        if self.lnods.size and (self.lnods.min() < 0 or self.lnods.max() >= self.npoin):
            raise ValueError("lnods references nodes outside coord")
        if self.ltype.shape != (self.nelem,) or self.lmate.shape != (self.nelem,):
            raise ValueError("ltype/lmate must have one entry per element")

    @property
    def npoin(self) -> int:
        return self.coord.shape[0]

    @property
    def nelem(self) -> int:
        return self.lnods.shape[0]

    @property
    def nmate(self) -> int:
        return int(self.lmate.max()) + 1 if self.nelem else 0

    def chunks(self, vector_size: int) -> list[Chunk]:
        """Split the element range into VECTOR_SIZE packs (tail padded)."""
        if vector_size <= 0:
            raise ValueError("vector_size must be positive")
        out: list[Chunk] = []
        for ci, start in enumerate(range(0, self.nelem, vector_size)):
            stop = min(start + vector_size, self.nelem)
            ids = np.arange(start, stop, dtype=np.int64)
            n_real = ids.size
            if n_real < vector_size:
                pad = np.full(vector_size - n_real, ids[-1], dtype=np.int64)
                ids = np.concatenate([ids, pad])
            out.append(Chunk(index=ci, elements=ids, n_real=n_real))
        return out

    def element_volume_total(self) -> float:
        """Total mesh volume via the midpoint Jacobian (sanity metric)."""
        from repro.cfd.elements import hex08_basis

        basis = hex08_basis()
        elcod = self.coord[self.lnods]  # (nelem, 8, 3)
        vol = 0.0
        for g in range(basis.weigp.size):
            jac = np.einsum("eai,ja->eij", elcod, basis.deriv[:, :, g])
            vol += basis.weigp[g] * np.abs(np.linalg.det(jac)).sum()
        return float(vol)


def box_mesh(nx: int, ny: int, nz: int,
             lengths: tuple[float, float, float] = (1.0, 1.0, 1.0),
             renumber_seed: int | None = None) -> Mesh:
    """Generate a box of ``nx*ny*nz`` HEX08 elements.

    With ``renumber_seed`` the node ids are randomly permuted, producing
    scattered gather/scatter index streams like a real unstructured mesh
    (the default keeps lexicographic ids, which already makes neighbour
    elements share cache lines the way a well-ordered mesh does).
    """
    if min(nx, ny, nz) < 1:
        raise ValueError("need at least one element per direction")
    npx, npy, npz = nx + 1, ny + 1, nz + 1
    xs = np.linspace(0.0, lengths[0], npx)
    ys = np.linspace(0.0, lengths[1], npy)
    zs = np.linspace(0.0, lengths[2], npz)
    # node id = ix + iy*npx + iz*npx*npy
    ids = np.arange(npx * npy * npz)
    coord = np.stack([
        xs[ids % npx],
        ys[(ids // npx) % npy],
        zs[ids // (npx * npy)],
    ], axis=1)

    def nid(ix: np.ndarray, iy: np.ndarray, iz: np.ndarray) -> np.ndarray:
        return ix + iy * npx + iz * npx * npy

    # element id = ex + ey*nx + ez*nx*ny
    eids = np.arange(nx * ny * nz)
    ex = eids % nx
    ey = (eids // nx) % ny
    ez = eids // (nx * ny)
    lnods = np.stack([
        nid(ex, ey, ez),
        nid(ex + 1, ey, ez),
        nid(ex + 1, ey + 1, ez),
        nid(ex, ey + 1, ez),
        nid(ex, ey, ez + 1),
        nid(ex + 1, ey, ez + 1),
        nid(ex + 1, ey + 1, ez + 1),
        nid(ex, ey + 1, ez + 1),
    ], axis=1).astype(np.int64)

    if renumber_seed is not None:
        rng = np.random.default_rng(renumber_seed)
        perm = rng.permutation(coord.shape[0])
        inv = np.empty_like(perm)
        inv[perm] = np.arange(perm.size)
        coord = coord[perm]
        lnods = inv[lnods]

    nelem = lnods.shape[0]
    ltype = np.full(nelem, HEX08, dtype=np.int64)
    lmate = np.zeros(nelem, dtype=np.int64)
    return Mesh(coord=coord, lnods=lnods, ltype=ltype, lmate=lmate,
                dims=(nx, ny, nz))
