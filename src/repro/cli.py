"""Command-line interface: ``python -m repro <command>``.

Gives the reproduction the ergonomics of the original toolchain -- one
command per artifact or workflow:

* ``info``                      -- the Table-2 platform summary;
* ``table N`` / ``figure N``    -- regenerate one paper artifact;
* ``sweep``                     -- the Figure-11 speed-up ladder;
* ``bench``                     -- time the sweep executor, write BENCH_report.json;
  with ``--baseline PATH`` it also gates the fresh per-phase cycle
  counts against a committed report and exits non-zero on a breach;
  ``--schedule NAME[,NAME...]`` replays discovered pass schedules
  (e.g. from ``repro autotune``) as extra gated runs;
* ``autotune``                  -- discover the best pass schedule per
  phase: enumerate legal schedules (interchange x fission x
  const-trip-count x strip-mine), prune with the machine-model cost
  model, digest-validate survivors, time them through the cached
  executor, and write a byte-deterministic AUTOTUNE_report.json;
  ``--socket`` times candidates through a running sweep service
  instead (submitted as an ``autotune``-kind job);
* ``remarks``                   -- the compiler's vectorization remarks;
* ``passes``                    -- run the transformation pass pipeline
  and show each kernel before/after every applied pass, with the
  transform remarks (the ``-fopt-info`` of the modelled compiler);
* ``advise``                    -- the co-design advisor's findings;
* ``codesign``                  -- run the full iterative loop;
* ``trace``                     -- run under the observability tracer;
  exports Paraver text (``.prv`` + ``.pcf``/``.row``) and, with
  ``--out``, a Chrome ``trace_event`` JSON for ``chrome://tracing``;
* ``chaos``                     -- seeded fault-injection campaign + report;
  with ``--service-faults`` the sweep-service drills (kill-mid-sweep,
  torn store shard, submission flood, hung worker, breaker storm) run
  as extra stages;
* ``serve``                     -- run the supervised sweep service on a
  unix socket: durable job queue, admission control, circuit breaker,
  content-addressed result store (see ``repro.service``);
* ``submit``                    -- submit a sweep to a running service
  (``--ladder`` for the full rung ladder) and optionally wait/stream;
* ``jobs``                      -- inspect a running service: job table
  (+ a one-line health summary), single-job view, results, health,
  drain, shutdown;
* ``top``                       -- live terminal dashboard over the
  service's ``metrics``/``health`` verbs: queue depth, tenant table,
  breaker state, SLO verdicts; ``--once --json`` emits the curated
  byte-deterministic snapshot for scripting and CI diffs.

``submit --trace`` stamps a trace id that travels through the journal,
worker processes, and result store; ``trace --job ID --state-dir DIR``
then renders the job's single cross-process timeline (client-submit →
queue-wait → worker-execute → store-write).

Sweep-shaped commands (``table`` / ``figure`` / ``sweep`` / ``report`` /
``bench``) accept ``--jobs/-j N`` to fan uncached simulations across a
process pool (``-j 0`` means one worker per CPU), ``--validate`` to
cross-check every run against the counter invariants (a violation
aborts the command instead of rendering a poisoned artifact), and
``--journal PATH`` to checkpoint the sweep so an interrupted command
resumes without re-running completed work.  Results print as ASCII
tables (see ``repro.experiments.report``); progress and validation
diagnostics go to stderr, so artifact output is byte-identical at any
job count and with or without ``--validate`` (when no fault fires).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Optional, Sequence

from repro.experiments import figures as F
from repro.experiments import report, tables as T
from repro.experiments.config import RunConfig, resolve_mesh
from repro.experiments.runner import Session

_TABLES = {1: T.table1, 2: T.table2, 3: T.table3, 4: T.table4,
           5: T.table5, 6: T.table6}
_FIGURES = {2: F.figure2, 3: F.figure3, 4: F.figure4, 5: F.figure5,
            6: F.figure6, 7: F.figure7, 8: F.figure8, 9: F.figure9,
            10: F.figure10, 11: F.figure11, 12: F.figure12, 13: F.figure13}


def _mesh_dims(name: str) -> tuple[int, int, int]:
    return resolve_mesh(name)


def _add_mesh(p: argparse.ArgumentParser) -> None:
    p.add_argument("--mesh", choices=("tiny", "quick", "full"),
                   default="quick",
                   help="mesh preset: tiny=64 elements, quick=960, full=7680")


def _add_backend(p: argparse.ArgumentParser) -> None:
    # choices come from the live registry, so a backend registered via
    # repro.backends.register_backend is selectable here too — and an
    # unknown name gets argparse's friendly error listing the registry
    # keys instead of a bare KeyError deep in the stack.
    from repro.backends import BACKENDS, DEFAULT_BACKEND

    p.add_argument("--backend", choices=sorted(BACKENDS),
                   default=DEFAULT_BACKEND,
                   help="kernel execution backend for semantic paths "
                        "(golden checks, digest ladders); results are "
                        "byte-identical, numpy is ~10x faster")


def _add_jobs(p: argparse.ArgumentParser) -> None:
    p.add_argument("-j", "--jobs", type=int, default=1, metavar="N",
                   help="parallel simulation workers (0 = one per CPU)")


def _add_validate(p: argparse.ArgumentParser) -> None:
    p.add_argument("--validate", action="store_true",
                   help="cross-check every run against the counter "
                        "invariants; abort on any violation")
    p.add_argument("--journal", default=None, metavar="PATH",
                   help="checkpoint sweep progress to PATH; re-running "
                        "with the same journal resumes an interrupted "
                        "sweep")
    _add_backend(p)


def _add_common(p: argparse.ArgumentParser) -> None:
    _add_mesh(p)
    p.add_argument("--machine", default="riscv_vec",
                   choices=("riscv_vec", "riscv_vec_next", "sx_aurora",
                            "mn4_avx512", "a64fx"))
    p.add_argument("--opt", default="vec1",
                   choices=("scalar", "vanilla", "vec2", "ivec2", "vec1"))
    p.add_argument("--vs", type=int, default=240, help="VECTOR_SIZE")
    _add_backend(p)


def _run_config(args) -> RunConfig:
    """The one RunConfig a single-run command describes."""
    return RunConfig.from_kwargs(mesh=args.mesh, machine=args.machine,
                                 opt=args.opt, vs=args.vs,
                                 field_seed=getattr(args, "seed", 0),
                                 backend=getattr(args, "backend", "numpy"),
                                 solve=getattr(args, "solve", False))


def _jobs(args) -> int:
    from repro.experiments.executor import default_jobs

    n = getattr(args, "jobs", 1)
    return default_jobs() if n <= 0 else n


def _session(args) -> Session:
    return Session(mesh_dims=_mesh_dims(args.mesh), verbose=True,
                   jobs=_jobs(args),
                   validate=getattr(args, "validate", False),
                   journal=getattr(args, "journal", None),
                   backend=getattr(args, "backend", "numpy"))


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Exploiting long vectors with a CFD "
                    "code' (IPPS 2024)")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="platform summary (Table 2)")

    p = sub.add_parser("table", help="regenerate a paper table (1-6)")
    p.add_argument("number", type=int, choices=sorted(_TABLES))
    _add_mesh(p)
    _add_jobs(p)
    _add_validate(p)

    p = sub.add_parser("figure", help="regenerate a paper figure (2-13)")
    p.add_argument("number", type=int, choices=sorted(_FIGURES))
    _add_mesh(p)
    _add_jobs(p)
    _add_validate(p)

    p = sub.add_parser("sweep", help="speed-up ladder (Figure 11)")
    _add_mesh(p)
    _add_jobs(p)
    _add_validate(p)

    p = sub.add_parser("report", help="the full evaluation report "
                                      "(every table and figure)")
    _add_mesh(p)
    _add_jobs(p)
    _add_validate(p)
    p.add_argument("-o", "--output", default=None,
                   help="write to a file instead of stdout")

    p = sub.add_parser("chaos", help="seeded fault-injection campaign: "
                                     "prove every fault is detected or "
                                     "recovered")
    p.add_argument("--seed", type=int, default=0,
                   help="campaign seed (same seed = same faults, same "
                        "report)")
    p.add_argument("--mesh", choices=("tiny", "quick", "full"),
                   default="tiny",
                   help="mesh preset for the chaos sweeps (default tiny)")
    _add_jobs(p)
    p.add_argument("-o", "--output", default="chaos",
                   help="directory for chaos-report.json + "
                        "fault-plan.json")
    p.add_argument("-v", "--verbose", action="store_true",
                   help="log each stage to stderr")
    p.add_argument("--pass-faults", action="store_true",
                   help="also arm the compiler-model faults: one sweep "
                        "per mis-legalized pass kind, classified like "
                        "worker faults (detection via the per-phase "
                        "output digest ladder)")
    p.add_argument("--validate", action="store_true",
                   help="additionally golden-check every pipeline stage "
                        "of every rung (transformed mode) and prove "
                        "every implemented pass-fault kind is detected")
    p.add_argument("--service-faults", action="store_true",
                   help="also drill the sweep service: kill-mid-sweep, "
                        "torn store shard, submission flood, hung "
                        "worker, circuit-breaker storm — every fault "
                        "must classify recovered/detected/rejected")
    p.add_argument("--service-only", action="store_true",
                   help="run only the service drills (fast CI path); "
                        "implies --service-faults")
    p.add_argument("--no-kill", action="store_true",
                   help="skip the subprocess SIGKILL drill (keeps the "
                        "service report byte-deterministic)")
    _add_backend(p)

    p = sub.add_parser("serve", help="run the supervised sweep service "
                                     "(durable queue + result store) on "
                                     "a unix socket")
    p.add_argument("--state-dir", default="sweep-service", metavar="DIR",
                   help="service state: journal, result store, run cache "
                        "(default ./sweep-service); restarting on the "
                        "same dir resumes in-flight jobs")
    p.add_argument("--socket", default=None, metavar="PATH",
                   help="unix socket path (default STATE_DIR/service.sock)")
    _add_jobs(p)
    p.add_argument("--timeout-s", type=float, default=30.0,
                   help="per-run wall-clock budget (default 30)")
    p.add_argument("--retries", type=int, default=1,
                   help="per-run retry budget (default 1)")
    p.add_argument("--validate", action="store_true",
                   help="cross-check every run against the counter "
                        "invariants")
    p.add_argument("--worker-delay", type=float, default=0.0,
                   metavar="SECONDS", help=argparse.SUPPRESS)  # chaos hook

    p = sub.add_parser("submit", help="submit a sweep to a running "
                                      "service")
    p.add_argument("--socket", default="sweep-service/service.sock",
                   metavar="PATH", help="service socket path")
    p.add_argument("--tenant", default="default",
                   help="tenant name for admission control / accounting")
    p.add_argument("--priority", type=float, default=0.0,
                   help="scheduling priority (higher runs first; queued "
                        "jobs age upward so low priority never starves)")
    p.add_argument("--ladder", action="store_true",
                   help="submit the full optimization ladder for --mesh "
                        "instead of the single --machine/--opt/--vs run")
    p.add_argument("--wait", action="store_true",
                   help="block until the job reaches a terminal state")
    p.add_argument("--stream", action="store_true",
                   help="stream run events live until the job finishes")
    p.add_argument("--trace", action="store_true",
                   help="stamp a trace id on the submission; the service "
                        "propagates it through journal, workers, and "
                        "store, and exports the job's cross-process "
                        "timeline for 'repro trace --job'")
    p.add_argument("--solve", action="store_true",
                   help="time the full assemble+solve cycle: the run "
                        "adds the Krylov solver kernels (phases 9-12) "
                        "and a __solve__ convergence record to the "
                        "payload")
    _add_common(p)

    p = sub.add_parser("jobs", help="inspect a running sweep service")
    p.add_argument("--socket", default="sweep-service/service.sock",
                   metavar="PATH", help="service socket path")
    p.add_argument("--job", default=None, metavar="ID",
                   help="show one job instead of the whole table")
    p.add_argument("--results", action="store_true",
                   help="with --job: fetch the completed payloads (JSON)")
    p.add_argument("--health", action="store_true",
                   help="print the service health document (JSON)")
    p.add_argument("--drain", action="store_true",
                   help="stop admissions; queued jobs finish, then the "
                        "service exits")
    p.add_argument("--shutdown", action="store_true",
                   help="stop the service after the running job")

    p = sub.add_parser("top", help="live dashboard over a running sweep "
                                   "service (metrics + health + SLOs)")
    p.add_argument("--socket", default="sweep-service/service.sock",
                   metavar="PATH", help="service socket path")
    p.add_argument("--interval", type=float, default=2.0, metavar="S",
                   help="refresh interval in seconds (default 2)")
    p.add_argument("--once", action="store_true",
                   help="print one snapshot and exit (no screen refresh)")
    p.add_argument("--json", action="store_true",
                   help="with --once: emit the curated deterministic "
                        "status JSON (byte-identical across identical "
                        "sessions) instead of the rendered dashboard")

    p = sub.add_parser("bench", help="time the sweep executor (serial vs "
                                     "parallel) and write a JSON report")
    _add_mesh(p)
    _add_jobs(p)
    p.add_argument("--profile", choices=("smoke", "standard"),
                   default="standard",
                   help="smoke = 3 runs, standard = the full ~50-run sweep")
    p.add_argument("-o", "--output", default="BENCH_report.json",
                   help="benchmark report path (JSON)")
    p.add_argument("--baseline", default=None, metavar="PATH",
                   help="gate the fresh per-phase cycle counts against "
                        "this committed bench report; exit 1 on any "
                        "phase drifting past --threshold")
    p.add_argument("--threshold", type=float, default=None, metavar="FRAC",
                   help="relative per-phase tolerance for --baseline "
                        "(default 0.10 = 10%%)")
    p.add_argument("--schedule", action="append", default=None,
                   metavar="NAME[,NAME...]",
                   help="replay a discovered pass schedule as an extra "
                        "benchmarked (and --baseline gated) run; "
                        "comma-separate passes within one schedule, "
                        "repeat the flag for several schedules "
                        "(e.g. --schedule const-trip-count,loop-"
                        "interchange,loop-fission)")

    p = sub.add_parser("autotune", help="discover the best pass schedule "
                                        "per phase; write a deterministic "
                                        "winner report")
    p.add_argument("--preset", choices=("tiny", "quick", "full"),
                   default=None,
                   help="mesh preset shorthand; overrides --mesh")
    _add_mesh(p)
    p.add_argument("--machine", default="riscv_vec",
                   choices=("riscv_vec", "riscv_vec_next", "sx_aurora",
                            "mn4_avx512", "a64fx"))
    p.add_argument("--vs", type=int, default=240, help="VECTOR_SIZE")
    p.add_argument("--profile", choices=("smoke", "standard"),
                   default="standard",
                   help="smoke = one strip size per family (CI), "
                        "standard = every legal strip size")
    p.add_argument("--seed", type=int, default=0,
                   help="field seed for the timed candidates (default 0); "
                        "the report is byte-deterministic per seed")
    _add_jobs(p)
    _add_backend(p)
    p.add_argument("-o", "--output", default="AUTOTUNE_report.json",
                   help="winner report path (JSON)")
    p.add_argument("--summary", default=None, metavar="PATH",
                   help="also write the winner table as GitHub-flavoured "
                        "markdown (CI publishes it to the step summary)")
    p.add_argument("--socket", default=None, metavar="PATH",
                   help="time candidates through a running sweep service "
                        "at this socket (submits one 'autotune'-kind "
                        "job) instead of the local executor")
    p.add_argument("--tenant", default="default",
                   help="tenant name for --socket submissions")

    p = sub.add_parser("remarks", help="compiler vectorization remarks")
    _add_common(p)

    p = sub.add_parser("passes", help="show the transformation pass "
                                      "pipeline: before/after IR + "
                                      "transform remarks")
    _add_common(p)
    p.add_argument("--preset", choices=("tiny", "quick", "full"),
                   default=None,
                   help="mesh preset shorthand; overrides --mesh")
    p.add_argument("--full", action="store_true",
                   help="print full right-hand sides instead of eliding "
                        "them to '...'")
    p.add_argument("-v", "--verbose", action="store_true",
                   help="also print not-applicable remarks")

    p = sub.add_parser("advise", help="co-design advisor findings")
    _add_common(p)

    p = sub.add_parser("codesign", help="run the iterative co-design loop")
    _add_common(p)

    p = sub.add_parser("trace", help="run under the observability tracer; "
                                     "export Paraver text and Chrome JSON")
    _add_common(p)
    p.add_argument("--preset", choices=("tiny", "quick", "full"),
                   default=None,
                   help="mesh preset shorthand; overrides --mesh")
    p.add_argument("--seed", type=int, default=0,
                   help="field seed for the traced run (default 0)")
    p.add_argument("--solve", action="store_true",
                   help="trace the full assemble+solve cycle: the "
                        "Krylov solver kernels (phases 9-12) run as "
                        "timed SIM spans after assembly")
    p.add_argument("-o", "--output", default="miniapp.prv",
                   help="Paraver trace path (.pcf/.row written alongside)")
    p.add_argument("--out", default=None, metavar="PATH",
                   help="also export a Chrome trace_event JSON "
                        "(open in chrome://tracing or Perfetto)")
    p.add_argument("--job", default=None, metavar="ID",
                   help="render a traced service job's cross-process "
                        "timeline (from STATE_DIR/traces/ID.json) "
                        "instead of running a new traced simulation")
    p.add_argument("--state-dir", default="sweep-service", metavar="DIR",
                   help="service state dir for --job (default "
                        "./sweep-service)")

    p = sub.add_parser("roofline", help="per-phase roofline analysis")
    _add_common(p)

    return parser


def _cmd_info() -> int:
    print(report.render(T.table2()))
    return 0


def _cmd_table(args) -> int:
    fn = _TABLES[args.number]
    if args.number in (1, 2):
        obj = fn()
    else:
        obj = fn(_session(args))
    print(report.render(obj))
    return 0


def _cmd_figure(args) -> int:
    obj = _FIGURES[args.number](_session(args))
    print(obj.title)
    print(report.format_table(obj.rows()))
    return 0


def _cmd_report(args) -> int:
    from repro.experiments.summary import evaluation_report

    text = evaluation_report(_session(args))
    if args.output:
        from pathlib import Path

        Path(args.output).write_text(text + "\n")
        print(f"report written to {args.output}")
    else:
        print(text)
    return 0


def _cmd_sweep(args) -> int:
    fig = F.figure11(_session(args))
    print(report.format_series_barchart(fig))
    return 0


def _append_bench_history(report_path, payload: dict):
    """Append one machine/preset-keyed line to ``BENCH_history.jsonl``
    next to the report, so successive ``repro bench`` runs accumulate a
    local performance timeline.  Best-effort: an unwritable history file
    never fails the bench that produced it.  Returns the history path,
    or ``None`` if the append failed."""
    import platform

    entry = {
        "timestamp": payload["timestamp"],
        "host": platform.node() or "unknown",
        "machine": platform.machine() or "unknown",
        "mesh": payload["mesh"],
        "profile": payload["profile"],
        "configs": payload["configs"],
        "jobs": payload["jobs"],
        "serial_s": payload["serial_s"],
        "parallel_s": payload["parallel_s"],
        "warm_s": payload["warm_s"],
        "speedup": payload["speedup"],
    }
    history = report_path.parent / "BENCH_history.jsonl"
    try:
        with history.open("a", encoding="utf-8") as fh:
            fh.write(json.dumps(entry, sort_keys=True) + "\n")
    except OSError:
        return None
    return history


def _cmd_bench(args) -> int:
    """Cold serial vs cold parallel vs warm recall over one plan."""
    import tempfile
    from pathlib import Path

    from repro.experiments.executor import ExecutionPlan, execute_plan
    from repro.obs import gate

    jobs = _jobs(args)
    dims = _mesh_dims(args.mesh)
    plan = (ExecutionPlan.smoke(dims) if args.profile == "smoke"
            else ExecutionPlan.standard(dims))

    # --schedule NAME[,NAME...]: replay discovered pass schedules (the
    # autotune ledger) as extra runs; their per-phase cycles join
    # phase_cycles, so a committed baseline gates them like any rung.
    schedules: list[tuple[str, ...]] = []
    if args.schedule:
        from repro.compiler.transforms import (
            PipelineError,
            pipeline_from_names,
        )

        for spec in args.schedule:
            names = tuple(s.strip() for s in spec.split(",") if s.strip())
            try:
                pipeline_from_names(names)  # legality: spelling + registry
            except PipelineError as exc:
                print(f"[bench] bad --schedule {spec!r}: {exc}",
                      file=sys.stderr, flush=True)
                return 2
            schedules.append(names)
        extras = [RunConfig(opt="vanilla", vector_size=240, mesh_dims=dims,
                            passes=names or None) for names in schedules]
        plan = ExecutionPlan.from_configs(list(plan) + extras)

    def timed(cache_dir, n):
        t0 = time.perf_counter()
        res = execute_plan(plan, cache_dir=cache_dir, jobs=n)
        return time.perf_counter() - t0, res

    with tempfile.TemporaryDirectory(prefix="repro-bench-") as td:
        print(f"[bench] {len(plan)} configs, mesh {dims}, jobs={jobs}",
              file=sys.stderr, flush=True)
        serial_s, serial_res = timed(Path(td) / "serial", 1)
        parallel_s, parallel_res = timed(Path(td) / "parallel", jobs)
        warm_s, warm_res = timed(Path(td) / "parallel", jobs)

    payload = {
        "paper": "Exploiting long vectors with a CFD code (IPPS 2024)",
        "mesh": list(dims),
        "profile": args.profile,
        "schedules": [list(s) for s in schedules],
        "configs": len(plan),
        "jobs": jobs,
        "serial_s": round(serial_s, 3),
        "parallel_s": round(parallel_s, 3),
        "warm_s": round(warm_s, 3),
        "speedup": round(serial_s / parallel_s, 3) if parallel_s else None,
        "cold_cache_hits": serial_res.stats.cache_hits,
        "cold_simulated": serial_res.stats.simulated,
        "warm_cache_hits": warm_res.stats.cache_hits,
        "warm_simulated": warm_res.stats.simulated,
        "retries": parallel_res.stats.retries,
        "failures": parallel_res.stats.failures,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        # per-phase cycle counts: what --baseline gates a future PR on.
        "phase_cycles": gate.phase_cycles_payload(serial_res.runs),
    }
    Path(args.output).write_text(json.dumps(payload, indent=2) + "\n")
    history = _append_bench_history(Path(args.output), payload)
    rows = [["", "wall-clock [s]", "simulated", "cache hits"],
            ["serial (j=1)", f"{serial_s:.2f}",
             str(serial_res.stats.simulated), str(serial_res.stats.cache_hits)],
            [f"parallel (j={jobs})", f"{parallel_s:.2f}",
             str(parallel_res.stats.simulated),
             str(parallel_res.stats.cache_hits)],
            ["warm recall", f"{warm_s:.2f}", str(warm_res.stats.simulated),
             str(warm_res.stats.cache_hits)]]
    print(report.format_table(rows))
    print(f"\nspeedup (serial/parallel): {payload['speedup']}x"
          f" -- report written to {args.output}"
          + (f", history appended to {history}" if history else ""))
    if schedules:
        print("replayed schedule(s): "
              + ", ".join("+".join(s) or "baseline" for s in schedules))

    if args.baseline:
        threshold = (gate.DEFAULT_THRESHOLD if args.threshold is None
                     else args.threshold)
        try:
            breaches = gate.check_report(payload, args.baseline,
                                         threshold=threshold)
        except ValueError as exc:
            print(f"[bench] unusable baseline: {exc}",
                  file=sys.stderr, flush=True)
            return 2
        gated = len(set(payload["phase_cycles"]))
        if breaches:
            print(f"\nFAIL: {len(breaches)} phase cycle count(s) drifted "
                  f"past {threshold:.0%} vs {args.baseline}:")
            for b in breaches:
                print(f"  {b.describe()}")
            return 1
        print(f"\ngate: {gated} run(s) within {threshold:.0%} "
              f"of {args.baseline}")
    return 0


def _service_time_runs(socket: str, tenant: str):
    """Timing stage for ``repro autotune --socket``: submit the candidate
    plan to a running sweep service as one ``autotune``-kind job, wait,
    and fold the fetched payloads back into RunCounters."""
    from repro.metrics.counters import counters_from_dict
    from repro.service import ServiceClient

    def time_runs(configs):
        client = ServiceClient(socket)
        resp = client.submit(list(configs), tenant=tenant, kind="autotune")
        if not resp.get("ok"):
            raise RuntimeError(
                f"service rejected the candidate plan: "
                f"{resp.get('rejected', resp.get('error'))}")
        job_id = resp["job_id"]
        print(f"[autotune] candidates submitted as job {job_id} "
              f"(kind autotune)", file=sys.stderr, flush=True)
        view = client.wait(job_id)
        if view.get("status") != "done":
            raise RuntimeError(
                f"autotune job {job_id} finished {view.get('status')!r}: "
                f"{view.get('error', '')}")
        fetched = client.fetch(job_id)
        return {key: counters_from_dict(payload)
                for key, payload in fetched["results"].items()}

    return time_runs


def _cmd_autotune(args) -> int:
    from pathlib import Path

    from repro.autotune import AutotuneError, run_autotune

    if args.preset:
        args.mesh = args.preset
    dims = _mesh_dims(args.mesh)
    time_runs = (_service_time_runs(args.socket, args.tenant)
                 if args.socket else None)
    print(f"[autotune] machine {args.machine}, mesh {dims}, "
          f"VECTOR_SIZE {args.vs}, {args.profile} profile, "
          f"seed {args.seed}", file=sys.stderr, flush=True)
    try:
        rep = run_autotune(dims, machine=args.machine, vector_size=args.vs,
                           profile=args.profile, seed=args.seed,
                           backend=args.backend, jobs=_jobs(args),
                           time_runs=time_runs)
    except (AutotuneError, RuntimeError, ValueError) as exc:
        print(f"[autotune] {exc}", file=sys.stderr, flush=True)
        return 1
    Path(args.output).write_text(rep.to_json())
    if args.summary:
        Path(args.summary).write_text(rep.winner_table_markdown())

    counts = rep.counts
    print(f"candidates: {counts['enumerated']} enumerated, "
          f"{counts['pruned']} pruned, {counts['invalid']} invalid, "
          f"{counts['timed']} timed")
    print()
    print(report.format_table(rep.winner_rows()))
    fam = rep.vec1_family
    print(f"\nVEC1 family verdict: subset_ok={fam['subset_ok']} "
          f"union_equals_vec1={fam['union_equals_vec1']} "
          f"rediscovered={fam['rediscovered']}")
    print(f"report written to {args.output}")
    return 0


def _cmd_chaos(args) -> int:
    from repro.faults import run_chaos_campaign

    if args.service_only:
        from repro.service.chaos import run_service_campaign

        rep = run_service_campaign(seed=args.seed, mesh=args.mesh,
                                   out_dir=args.output,
                                   verbose=args.verbose,
                                   include_kill=not args.no_kill)
    else:
        jobs = max(2, _jobs(args))  # kill/hang stages need a real pool
        rep = run_chaos_campaign(seed=args.seed, mesh=args.mesh,
                                 out_dir=args.output, jobs=jobs,
                                 verbose=args.verbose,
                                 pass_faults=args.pass_faults,
                                 service_faults=args.service_faults,
                                 backend=args.backend)
    rows = [["stage", "fault", "target", "outcome"]]
    for st in rep.stages:
        rows.append([st.name, st.kind, st.target or "-", st.classification])
    print(report.format_table(rows))
    counts = rep.counts
    print(f"\nseed {rep.seed}: {counts['recovered']} recovered, "
          f"{counts['detected']} detected, "
          f"{counts.get('degraded', 0)} degraded, "
          f"{counts['rejected']} rejected, "
          f"{counts['clean']} clean, {counts['silent']} silent "
          f"-- report written to {args.output}/chaos-report.json")
    if not rep.ok:
        print("FAIL: injected fault(s) were silently absorbed",
              file=sys.stderr, flush=True)
        return 1
    if args.validate:
        from repro.faults.injector import pass_fault_mutator
        from repro.faults.plan import PASS_FAULT_KINDS, PASS_FAULT_RUNGS
        from repro.validation.golden import golden_check
        from repro.validation.probe import Probe

        vrows = [["rung", "pipeline stages", "outcome"]]
        stages_ok = True
        for rung in ("vanilla", "vec2", "ivec2", "vec1"):
            g = golden_check(Probe(opt=rung, backend=args.backend),
                             transformed=True)
            stages_ok &= g.ok
            vrows.append([rung, str(len(g.stages)),
                          "ok" if g.ok else "FAIL"])
        # every kind in the vocabulary is drilled; a listed-but-stubbed
        # kind raises in pass_fault_mutator instead of being skipped.
        drills_ok = True
        for kind in PASS_FAULT_KINDS:
            rung = PASS_FAULT_RUNGS[kind]
            bad = golden_check(Probe(opt=rung, backend=args.backend),
                               mutate=pass_fault_mutator(kind))
            drills_ok &= not bad.ok
            vrows.append([f"{rung} + {kind}", "fault drill",
                          "detected" if not bad.ok else "SILENT"])
        print()
        print(report.format_table(vrows))
        if not stages_ok or not drills_ok:
            print("FAIL: pass-pipeline golden validation",
                  file=sys.stderr, flush=True)
            return 1
    return 0


def _make_app(args):
    from repro.experiments.executor import build_miniapp

    return build_miniapp(_run_config(args))


def _cmd_remarks(args) -> int:
    app = _make_app(args)
    for r in app.remarks:
        print(r)
    return 0


def _cmd_passes(args) -> int:
    from repro.compiler.irprint import format_kernel

    if args.preset:
        args.mesh = args.preset
    app = _make_app(args)
    names = list(app.pipeline.pass_names)
    print(f"pass pipeline for opt={app.opt!r}: {names or '(empty)'}")
    if not names:
        print("no transformation passes scheduled at this rung; the "
              "canonical baseline kernels go straight to the vectorizer.")
        return 0
    kernels = list(app.baseline_kernels)
    for p in app.pipeline:
        for i, kern in enumerate(kernels):
            new, remark = p.run(kern)
            kernels[i] = new
            if remark.status == "applied":
                print(f"\n== {remark}")
                print("-- before:")
                print(format_kernel(kern, elide_exprs=not args.full))
                print("-- after:")
                print(format_kernel(new, elide_exprs=not args.full))
            elif remark.status == "illegal" or args.verbose:
                print(f"\n== {remark}")
    return 0


def _cmd_advise(args) -> int:
    from repro.codesign import Advisor, render_findings
    from repro.machine.machines import get_machine

    app = _make_app(args)
    advisor = Advisor(get_machine(args.machine))
    print(render_findings(advisor.analyze_miniapp(app)))
    return 0


def _cmd_codesign(args) -> int:
    from repro.cfd.mesh import box_mesh
    from repro.codesign import run_codesign_loop
    from repro.machine.machines import get_machine

    cfg = _run_config(args)
    # the loop starts from the auto-vectorized baseline unless the user
    # explicitly asks to start mid-ladder (vec2 / ivec2).
    start = cfg.opt if cfg.opt in ("vec2", "ivec2") else "vanilla"
    result = run_codesign_loop(box_mesh(*cfg.mesh_dims),
                               get_machine(cfg.machine),
                               vector_size=cfg.vector_size, start_opt=start)
    rows = [["step", "cycles", "speed-up vs start", "next"]]
    for s in result.steps:
        rows.append([s.opt, f"{s.total_cycles:,.0f}",
                     f"{s.speedup_vs_start:.2f}x", s.next_opt or "-"])
    print(report.format_table(rows))
    print(f"\nfinal: {result.final_speedup:.2f}x over {result.sequence[0]}")
    return 0


#: logical stage order of a traced service job — the render sorts by
#: stage first so the timeline reads submit → queue → execute → store
#: even though worker-process spans carry their own wall epoch.
_TRACE_STAGE_ORDER = {"client": 0, "service": 1, "worker": 2,
                      "run": 2, "store": 3}


def _cmd_trace_job(args) -> int:
    """Render a traced service job's single cross-process timeline from
    the trace file the service exported at job completion."""
    from pathlib import Path

    path = Path(args.state_dir) / "traces" / f"{args.job}.json"
    if not path.exists():
        print(f"no trace for job {args.job}: {path} not found "
              f"(was the job submitted with --trace?)",
              file=sys.stderr, flush=True)
        return 1
    doc = json.loads(path.read_text())
    meta = doc.get("otherData", {})
    events = doc.get("traceEvents", [])
    trace_id = meta.get("trace_id", "")

    spans = []
    for ev in events:
        if ev.get("ph") != "X":
            continue
        cat = ev.get("cat", "")
        if cat not in _TRACE_STAGE_ORDER:
            continue  # SIM phase/block spans: not part of the job story
        spans.append(ev)
    spans.sort(key=lambda e: (_TRACE_STAGE_ORDER.get(e.get("cat", ""), 9),
                              e.get("ts", 0), str(e.get("name", ""))))
    ids = sorted({str(e.get("args", {}).get("trace", ""))
                  for e in spans} - {""})

    print(f"job {args.job} — trace {trace_id or '?'} "
          f"(tenant {meta.get('tenant', '?')}, {len(spans)} span(s) "
          f"across {len({e.get('pid') for e in spans})} process row(s))")
    rows = [["stage", "span", "t [ms]", "dur [ms]", "pid"]]
    for ev in spans:
        rows.append([ev.get("cat", "?"), str(ev.get("name", "?")),
                     f"{ev.get('ts', 0) / 1e3:.3f}",
                     f"{ev.get('dur', 0) / 1e3:.3f}",
                     str(ev.get("pid", "?"))])
    print(report.format_table(rows))
    if ids and (len(ids) > 1 or (trace_id and ids != [trace_id])):
        print(f"\nWARNING: spans carry {len(ids)} distinct trace id(s): "
              f"{', '.join(ids)}", file=sys.stderr, flush=True)
        return 1
    print(f"\nall spans share trace id {trace_id or (ids[0] if ids else '?')}"
          f" — full Chrome trace at {path}")
    return 0


def _cmd_trace(args) -> int:
    from repro import obs
    from repro.machine.machines import get_machine
    from repro.obs import chrome, render
    from repro.trace import paraver, phase_stats

    if args.job:
        return _cmd_trace_job(args)
    if args.preset:
        args.mesh = args.preset
    tracer = obs.Tracer()
    solve_info = None
    # build the app *inside* the tracer context so the transformation
    # pass spans/remarks land in the trace alongside the run.
    with obs.use(tracer):
        app = _make_app(args)
        if getattr(args, "solve", False):
            _, solve_info = app.run_timed_solve(get_machine(args.machine))
        else:
            app.run_timed(get_machine(args.machine))
    paraver.dump(tracer, args.output, with_config=True)
    written = [str(args.output)]
    if args.out:
        chrome.dump(tracer, args.out,
                    meta={"mesh": args.mesh, "machine": args.machine,
                          "opt": args.opt, "vector_size": args.vs,
                          "field_seed": args.seed})
        written.append(str(args.out))

    remarks = [p for p in tracer.points if p.cat == "pass"]
    if remarks:
        print(f"transform pipeline ({len(remarks)} remark(s)):")
        for p in remarks:
            a = dict(p.args)
            print(f"  phase {a.get('phase')} [{a.get('pass_name')}] "
                  f"{a.get('status')}: {a.get('reason')}")
        print()

    stats = phase_stats(tracer)
    rows = [["phase", "cycles", "vector instrs", "AVL"]]
    for p in sorted(stats):
        s = stats[p]
        rows.append([str(p), f"{s.cycles:,.0f}", f"{s.vector_instrs:,.0f}",
                     f"{s.avl:.0f}"])
    print(report.format_table(rows))
    if solve_info:
        print(f"\nsolver: {solve_info['method']} "
              f"converged={solve_info['converged']} "
              f"iterations={solve_info['iterations']} "
              f"final relative residual={solve_info['residual']:.3e}")
    print()
    print(render.render_timeline(tracer))
    hist = tracer.vl_histogram()
    if hist:
        print()
        print(render.render_vl_hist(
            hist, f"granted-vl histogram ({args.opt} vs{args.vs})", top=8))
    print(f"\ntrace written to {', '.join(written)}")
    return 0


def _cmd_roofline(args) -> int:
    from repro.machine.machines import get_machine
    from repro.metrics.roofline import render_roofline, run_roofline

    app = _make_app(args)
    machine = get_machine(args.machine)
    run = app.run_timed(machine)
    print(render_roofline(run_roofline(run, machine), machine))
    return 0


def _cmd_serve(args) -> int:
    from repro.service import SweepServer, SweepService, default_socket_path

    worker = None
    if args.worker_delay > 0:
        from repro.faults.injector import DelayedWorker

        worker = DelayedWorker(args.worker_delay)
    service = SweepService(args.state_dir, jobs=_jobs(args),
                           timeout_s=args.timeout_s, retries=args.retries,
                           validate=args.validate, worker=worker)
    sock = args.socket or default_socket_path(args.state_dir)
    server = SweepServer(service, sock)
    print(f"[serve] sweep service on {sock} (state: {args.state_dir}, "
          f"resumed {service.resumed_jobs} in-flight job(s))",
          file=sys.stderr, flush=True)
    server.serve_forever()
    print("[serve] drained, journal closed", file=sys.stderr, flush=True)
    return 0


def _submit_configs(args) -> list[RunConfig]:
    if args.ladder:
        from repro.experiments.executor import ExecutionPlan

        return list(ExecutionPlan.ladder(mesh=_mesh_dims(args.mesh)))
    return [_run_config(args)]


def _cmd_submit(args) -> int:
    from repro.service import ServiceClient

    client = ServiceClient(args.socket)
    resp = client.submit(_submit_configs(args), tenant=args.tenant,
                         priority=args.priority, trace=args.trace)
    if not resp.get("ok"):
        # an explicit rejection is the admission contract, not a crash.
        print(f"rejected: {resp.get('rejected', resp.get('error'))}",
              file=sys.stderr, flush=True)
        return 1
    job_id = resp["job_id"]
    print(f"submitted {job_id} (queue depth {resp['queued']})"
          + (f", trace {resp['trace_id']} — inspect with "
             f"'repro trace --job {job_id}'"
             if resp.get("trace_id") else ""))
    if args.stream:
        for rec in client.stream(job_id):
            if "event" in rec:
                ev = rec["event"]
                key = ev.get("key", "")
                print(f"  {ev.get('kind', '?'):<12} {key}")
            elif "done" in rec:
                return _print_job(rec["job"])
        return 1
    if args.wait:
        return _print_job(client.wait(job_id))
    return 0


def _print_job(view: dict) -> int:
    print(f"{view['job_id']}: {view['status']} — "
          f"{view['completed']}/{view['total']} completed "
          f"({view['from_store']} from store, "
          f"{view['recomputed']} computed)"
          + (f"; error: {view['error']}" if view.get("error") else ""))
    return 0 if view["status"] == "done" else 1


def _cmd_jobs(args) -> int:
    from repro.service import ServiceClient

    client = ServiceClient(args.socket)
    if args.drain:
        resp = client.drain()
        print(f"draining (queue depth {resp.get('queue_depth')}, "
              f"running {resp.get('running') or '-'})")
        return 0
    if args.shutdown:
        client.shutdown()
        print("shutdown requested")
        return 0
    if args.health:
        print(json.dumps(client.health(), indent=2, sort_keys=True))
        return 0
    if args.job and args.results:
        resp = client.fetch(args.job)
        if not resp.get("ok"):
            print(resp.get("error"), file=sys.stderr, flush=True)
            return 1
        results = resp["results"]
        print(json.dumps(results, indent=2, sort_keys=True))
        # solver convergence digest (stderr: stdout stays pipeable JSON)
        for key in sorted(results):
            info = (results[key] or {}).get("__solve__")
            if info:
                print(f"{key}: solver {info.get('method')} "
                      f"converged={info.get('converged')} "
                      f"iterations={info.get('iterations')} "
                      f"residual={info.get('residual'):.3e}",
                      file=sys.stderr, flush=True)
        return 0
    if args.job:
        resp = client.poll(args.job)
        if not resp.get("ok"):
            print(resp.get("error"), file=sys.stderr, flush=True)
            return 1
        return _print_job(resp["job"])
    views = client.jobs().get("jobs", [])
    if not views:
        print("no jobs")
        return 0
    rows = [["job", "tenant", "kind", "prio", "status", "done", "store",
             "computed"]]
    for v in views:
        rows.append([v["job_id"], v["tenant"], v.get("kind", "sweep"),
                     f"{v['priority']:g}",
                     v["status"], f"{v['completed']}/{v['total']}",
                     str(v["from_store"]), str(v["recomputed"])])
    print(report.format_table(rows))
    # one health line under the table: the service-side view the job
    # rows alone can't show (queue, breaker, liveness, SLO state).
    h = client.health()
    breaker = h.get("breaker", {})
    print(f"\nservice {h.get('status', '?')} — "
          f"queue {h.get('queue_depth', '?')}, "
          f"running {h.get('running') or '-'}, "
          f"breaker {breaker.get('state', '?')} "
          f"({breaker.get('trips', 0)} trip(s)), "
          f"rejected {h.get('rejected_total', 0)}, "
          f"slo breaches {h.get('slo_breaches', 0)}")
    return 0


def _render_top(health: dict, metrics: dict) -> str:
    """One dashboard frame: service line, tenant/SLO table, counters."""
    lines = []
    breaker = health.get("breaker", {})
    store = health.get("store", {})
    jobs = health.get("jobs", {})
    lines.append(
        f"sweep service: {health.get('status', '?')} — "
        f"queue {health.get('queue_depth', '?')}, "
        f"running {health.get('running') or '-'}, "
        f"breaker {breaker.get('state', '?')} "
        f"({breaker.get('trips', 0)} trip(s))")
    lines.append(
        f"jobs: " + (", ".join(f"{k}={v}" for k, v in sorted(jobs.items()))
                     or "none")
        + f"; store: {store.get('objects', 0)} object(s), "
          f"{store.get('dedup_hits', 0)} dedup hit(s); "
          f"rejected {health.get('rejected_total', 0)}, "
          f"slo breaches {health.get('slo_breaches', 0)}")
    lines.append("")

    counters = metrics.get("metrics", {}).get("counters", {})

    def _count(name: str, tenant: str) -> str:
        return f"{counters.get(f'{name}{{tenant={tenant}}}', 0):g}"

    slo = metrics.get("slo", {})
    rows = [["tenant", "submit", "reject", "done", "failed",
             "wait p95 [s]", "rate", "slo"]]
    for tenant in sorted(slo):
        v = slo[tenant]
        wait, rate = v.get("queue_wait", {}), v.get("completion_rate", {})
        rows.append([
            tenant,
            _count("service_submits_total", tenant),
            _count("service_rejects_total", tenant),
            _count("service_jobs_done_total", tenant),
            _count("service_jobs_failed_total", tenant),
            str(wait.get("p95_s", "-")),
            "-" if rate.get("rate") is None else f"{rate['rate']:.2f}",
            "ok" if v.get("ok") else "BREACH",
        ])
    if len(rows) > 1:
        lines.append(report.format_table(rows))
    else:
        lines.append("no tenants yet — waiting for submissions")
    policy = metrics.get("slo_policy", {})
    if policy:
        lines.append(
            f"\nslo policy: queue-wait p95 <= "
            f"{policy.get('queue_wait_p95_s')}s, completion rate >= "
            f"{policy.get('completion_rate_min')} "
            f"(judged after {policy.get('min_events')} event(s))")
    return "\n".join(lines)


def _cmd_top(args) -> int:
    from repro.service import ServiceClient, ServiceError, stable_status

    client = ServiceClient(args.socket)
    if args.json and not args.once:
        print("--json requires --once (the curated snapshot is for "
              "scripting, not the refresh loop)", file=sys.stderr, flush=True)
        return 2
    try:
        while True:
            health = client.health()
            metrics = client.metrics()
            if args.json:
                print(json.dumps(stable_status(health, metrics),
                                 indent=2, sort_keys=True))
                return 0
            frame = _render_top(health, metrics)
            if args.once:
                print(frame)
                return 0
            # home + clear-to-end keeps the frame flicker-free.
            print(f"\x1b[H\x1b[2J{frame}", flush=True)
            time.sleep(args.interval)
    except ServiceError as exc:
        print(str(exc), file=sys.stderr, flush=True)
        return 1
    except KeyboardInterrupt:  # pragma: no cover - interactive stop
        return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "info": lambda: _cmd_info(),
        "table": lambda: _cmd_table(args),
        "figure": lambda: _cmd_figure(args),
        "sweep": lambda: _cmd_sweep(args),
        "report": lambda: _cmd_report(args),
        "bench": lambda: _cmd_bench(args),
        "autotune": lambda: _cmd_autotune(args),
        "chaos": lambda: _cmd_chaos(args),
        "remarks": lambda: _cmd_remarks(args),
        "passes": lambda: _cmd_passes(args),
        "advise": lambda: _cmd_advise(args),
        "codesign": lambda: _cmd_codesign(args),
        "trace": lambda: _cmd_trace(args),
        "roofline": lambda: _cmd_roofline(args),
        "serve": lambda: _cmd_serve(args),
        "submit": lambda: _cmd_submit(args),
        "jobs": lambda: _cmd_jobs(args),
        "top": lambda: _cmd_top(args),
    }
    return handlers[args.command]()


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
