"""Command-line interface: ``python -m repro <command>``.

Gives the reproduction the ergonomics of the original toolchain -- one
command per artifact or workflow:

* ``info``                      -- the Table-2 platform summary;
* ``table N`` / ``figure N``    -- regenerate one paper artifact;
* ``sweep``                     -- the Figure-11 speed-up ladder;
* ``remarks``                   -- the compiler's vectorization remarks;
* ``advise``                    -- the co-design advisor's findings;
* ``codesign``                  -- run the full iterative loop;
* ``trace``                     -- run with the tracer, export Paraver text.

Results print as ASCII tables (see ``repro.experiments.report``).
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.experiments import figures as F
from repro.experiments import report, tables as T
from repro.experiments.config import FULL_MESH, QUICK_MESH
from repro.experiments.runner import Session

_TABLES = {1: T.table1, 2: T.table2, 3: T.table3, 4: T.table4,
           5: T.table5, 6: T.table6}
_FIGURES = {2: F.figure2, 3: F.figure3, 4: F.figure4, 5: F.figure5,
            6: F.figure6, 7: F.figure7, 8: F.figure8, 9: F.figure9,
            10: F.figure10, 11: F.figure11, 12: F.figure12, 13: F.figure13}


def _mesh_dims(name: str) -> tuple[int, int, int]:
    return QUICK_MESH if name == "quick" else FULL_MESH


def _add_common(p: argparse.ArgumentParser) -> None:
    p.add_argument("--mesh", choices=("quick", "full"), default="quick",
                   help="mesh preset: quick=960 elements, full=7680")
    p.add_argument("--machine", default="riscv_vec",
                   choices=("riscv_vec", "riscv_vec_next", "sx_aurora",
                            "mn4_avx512", "a64fx"))
    p.add_argument("--opt", default="vec1",
                   choices=("scalar", "vanilla", "vec2", "ivec2", "vec1"))
    p.add_argument("--vs", type=int, default=240, help="VECTOR_SIZE")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Exploiting long vectors with a CFD "
                    "code' (IPPS 2024)")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="platform summary (Table 2)")

    p = sub.add_parser("table", help="regenerate a paper table (1-6)")
    p.add_argument("number", type=int, choices=sorted(_TABLES))
    p.add_argument("--mesh", choices=("quick", "full"), default="quick")

    p = sub.add_parser("figure", help="regenerate a paper figure (2-13)")
    p.add_argument("number", type=int, choices=sorted(_FIGURES))
    p.add_argument("--mesh", choices=("quick", "full"), default="quick")

    p = sub.add_parser("sweep", help="speed-up ladder (Figure 11)")
    p.add_argument("--mesh", choices=("quick", "full"), default="quick")

    p = sub.add_parser("report", help="the full evaluation report "
                                      "(every table and figure)")
    p.add_argument("--mesh", choices=("quick", "full"), default="quick")
    p.add_argument("-o", "--output", default=None,
                   help="write to a file instead of stdout")

    p = sub.add_parser("remarks", help="compiler vectorization remarks")
    _add_common(p)

    p = sub.add_parser("advise", help="co-design advisor findings")
    _add_common(p)

    p = sub.add_parser("codesign", help="run the iterative co-design loop")
    _add_common(p)

    p = sub.add_parser("trace", help="run traced, export Paraver-like text")
    _add_common(p)
    p.add_argument("-o", "--output", default="miniapp.prv")

    p = sub.add_parser("roofline", help="per-phase roofline analysis")
    _add_common(p)

    return parser


def _cmd_info() -> int:
    print(report.render(T.table2()))
    return 0


def _cmd_table(args) -> int:
    fn = _TABLES[args.number]
    if args.number in (1, 2):
        obj = fn()
    else:
        obj = fn(Session(mesh_dims=_mesh_dims(args.mesh), verbose=True))
    print(report.render(obj))
    return 0


def _cmd_figure(args) -> int:
    session = Session(mesh_dims=_mesh_dims(args.mesh), verbose=True)
    obj = _FIGURES[args.number](session)
    print(obj.title)
    print(report.format_table(obj.rows()))
    return 0


def _cmd_report(args) -> int:
    from repro.experiments.summary import evaluation_report

    session = Session(mesh_dims=_mesh_dims(args.mesh), verbose=True)
    text = evaluation_report(session)
    if args.output:
        from pathlib import Path

        Path(args.output).write_text(text + "\n")
        print(f"report written to {args.output}")
    else:
        print(text)
    return 0


def _cmd_sweep(args) -> int:
    session = Session(mesh_dims=_mesh_dims(args.mesh), verbose=True)
    fig = F.figure11(session)
    print(report.format_series_barchart(fig))
    return 0


def _make_app(args):
    from repro.cfd.assembly import MiniApp
    from repro.cfd.mesh import box_mesh

    return MiniApp(box_mesh(*_mesh_dims(args.mesh)), vector_size=args.vs,
                   opt=args.opt)


def _cmd_remarks(args) -> int:
    app = _make_app(args)
    for r in app.remarks:
        print(r)
    return 0


def _cmd_advise(args) -> int:
    from repro.codesign import Advisor, render_findings
    from repro.machine.machines import get_machine

    app = _make_app(args)
    advisor = Advisor(get_machine(args.machine))
    print(render_findings(advisor.analyze_miniapp(app)))
    return 0


def _cmd_codesign(args) -> int:
    from repro.cfd.mesh import box_mesh
    from repro.codesign import run_codesign_loop
    from repro.machine.machines import get_machine

    # the loop starts from the auto-vectorized baseline unless the user
    # explicitly asks to start mid-ladder (vec2 / ivec2).
    start = args.opt if args.opt in ("vec2", "ivec2") else "vanilla"
    result = run_codesign_loop(box_mesh(*_mesh_dims(args.mesh)),
                               get_machine(args.machine), vector_size=args.vs,
                               start_opt=start)
    rows = [["step", "cycles", "speed-up vs start", "next"]]
    for s in result.steps:
        rows.append([s.opt, f"{s.total_cycles:,.0f}",
                     f"{s.speedup_vs_start:.2f}x", s.next_opt or "-"])
    print(report.format_table(rows))
    print(f"\nfinal: {result.final_speedup:.2f}x over {result.sequence[0]}")
    return 0


def _cmd_trace(args) -> int:
    from repro.machine.cpu import Machine
    from repro.machine.machines import get_machine
    from repro.trace import Tracer, paraver, phase_stats

    app = _make_app(args)
    tracer = Tracer()
    machine = Machine(get_machine(args.machine), tracer=tracer)
    app.run_timed(get_machine(args.machine), machine=machine)
    paraver.dump(tracer, args.output)
    stats = phase_stats(tracer)
    rows = [["phase", "cycles", "vector instrs", "AVL"]]
    for p in sorted(stats):
        s = stats[p]
        rows.append([str(p), f"{s.cycles:,.0f}", f"{s.vector_instrs:,.0f}",
                     f"{s.avl:.0f}"])
    print(report.format_table(rows))
    print(f"\ntrace written to {args.output}")
    return 0


def _cmd_roofline(args) -> int:
    from repro.machine.machines import get_machine
    from repro.metrics.roofline import render_roofline, run_roofline

    app = _make_app(args)
    machine = get_machine(args.machine)
    run = app.run_timed(machine)
    print(render_roofline(run_roofline(run, machine), machine))
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "info": lambda: _cmd_info(),
        "table": lambda: _cmd_table(args),
        "figure": lambda: _cmd_figure(args),
        "sweep": lambda: _cmd_sweep(args),
        "report": lambda: _cmd_report(args),
        "remarks": lambda: _cmd_remarks(args),
        "advise": lambda: _cmd_advise(args),
        "codesign": lambda: _cmd_codesign(args),
        "trace": lambda: _cmd_trace(args),
        "roofline": lambda: _cmd_roofline(args),
    }
    return handlers[args.command]()


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
