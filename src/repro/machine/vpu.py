"""Vector-processing-unit timing model.

Reproduces the timing facts the paper reports for the RISC-V VEC
prototype (Vitruvius VPU):

* A vector FMA with vl = 256 takes ~32 cycles: 8 lanes each hosting one
  FPU, so 256 elements / 8 lanes = 32 cycles; shorter vector lengths take
  proportionally fewer cycles.
* The element state machine advances in groups of ``lanes * fsm_depth``
  elements (8 x 5 = 40); a vector length that is *not* a multiple of 40
  pays a flush penalty on the trailing partial group.  This is why
  VECTOR_SIZE = 240 outperforms 256 ("performance are maximized when the
  vector length is a multiple of 8 ... and 5", footnote 4).
* Decoding/issuing/dispatching a vector instruction has a fixed overhead;
  with tiny vector lengths (the AVL = 4 situation created by the VEC2
  optimization) this overhead dominates and vectorization *loses* to
  scalar execution.

The NEC SX-Aurora and AVX-512 models use the same formulas with
``fsm_depth = None`` (no grouping quirk) and their own lane counts.
"""

from __future__ import annotations

import math

from repro.isa.instructions import InstrSpec, MemPattern, VectorKind
from repro.machine.params import VPUParams


class VPUModel:
    """Cycle cost of individual vector instructions on one VPU."""

    def __init__(self, params: VPUParams):
        self.params = params

    # -- execution-stage costs (no issue overhead) ------------------------

    def arith_exec_cycles(self, vl: int, long_latency: bool = False) -> float:
        """Execution cycles of an arithmetic vector instruction."""
        p = self.params
        if vl <= 0:
            return 0.0
        group = p.fsm_group_elems
        if group is None:
            cycles = math.ceil(vl / p.lanes)
        else:
            full, rem = divmod(vl, group)
            cycles = full * p.fsm_depth
            if rem:
                cycles += math.ceil(rem / p.lanes) + p.fsm_flush_cycles
        if long_latency:
            cycles *= p.long_latency_factor
        return float(cycles)

    def mem_exec_cycles(self, vl: int, pattern: MemPattern) -> float:
        """Execution cycles of a vector memory instruction (cache-hit)."""
        p = self.params
        if vl <= 0:
            return 0.0
        rate = {
            MemPattern.UNIT_STRIDE: p.mem_unit_elems_per_cycle,
            MemPattern.STRIDED: p.mem_strided_elems_per_cycle,
            MemPattern.INDEXED: p.mem_indexed_elems_per_cycle,
        }[pattern]
        group = p.fsm_group_elems
        if group is None or pattern is not MemPattern.UNIT_STRIDE:
            return math.ceil(vl / rate)
        # Unit-stride streams move through the same element FSM as
        # arithmetic on Vitruvius; the 64 B/cycle bandwidth (8 elem/cycle)
        # matches the 40-elements-per-5-cycles group rate.
        full, rem = divmod(vl, group)
        cycles = full * p.fsm_depth
        if rem:
            cycles += math.ceil(rem / p.lanes) + p.fsm_flush_cycles
        return float(cycles)

    # -- full per-instruction cost ----------------------------------------

    def instr_cycles(self, spec: InstrSpec, vl: int) -> float:
        """Total cycles attributed to one dynamic vector instruction."""
        p = self.params
        if spec.vkind is VectorKind.ARITHMETIC:
            return p.issue_overhead + self.arith_exec_cycles(vl, spec.long_latency)
        if spec.vkind is VectorKind.MEMORY:
            assert spec.mem_pattern is not None
            return p.issue_overhead + self.mem_exec_cycles(vl, spec.mem_pattern)
        if spec.vkind is VectorKind.CONTROL_LANE:
            return p.issue_overhead + p.control_lane_cycles
        raise ValueError(f"not a vector instruction: {spec.opcode}")

    def config_cycles(self) -> float:
        """Cycles of a vsetvl vector-configuration instruction."""
        return self.params.config_cycles

    def elements_per_cycle(self, spec: InstrSpec, vl: int) -> float:
        """Throughput in elements/cycle for one instruction (diagnostics)."""
        cycles = self.instr_cycles(spec, vl)
        return vl / cycles if cycles else 0.0
