"""Set-associative LRU cache simulator.

This is a line-accurate functional cache model: it is fed the *actual*
byte addresses touched by the compiled mini-app (global mesh arrays,
chunk-local working arrays, CSR coefficients), so capacity and conflict
behaviour emerge from the real data layout.  That realism is what lets
the reproduction recover the paper's phase-1/phase-8 results: their cost
per element grows with VECTOR_SIZE because the chunk working set
overflows L1, and Table 6 shows the cycle counts of those phases are
explained (R^2 > 0.9) by L1 data-cache misses plus memory-instruction
ratio.

Performance notes (the simulator itself follows the HPC guidance this
repo was built under): addresses are produced in NumPy batches by the
code generator, collapsed to cache-line indices and consecutive-duplicate
deduplicated vectorially, and only the surviving line stream runs through
the per-access LRU loop.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.machine.params import CacheParams, MemoryParams


def addresses_to_lines(addrs: np.ndarray, line_bytes: int) -> np.ndarray:
    """Convert byte addresses to cache-line indices."""
    return np.asarray(addrs, dtype=np.int64) // line_bytes


def dedup_consecutive(lines: np.ndarray) -> np.ndarray:
    """Drop consecutive duplicate line indices.

    Repeated accesses to the line just touched are guaranteed hits and do
    not move any LRU state, so removing them preserves the miss count
    exactly while shrinking the stream (unit-stride element accesses
    collapse by ~8x for 64-byte lines).
    """
    lines = np.asarray(lines, dtype=np.int64)
    if lines.size <= 1:
        return lines
    keep = np.empty(lines.size, dtype=bool)
    keep[0] = True
    np.not_equal(lines[1:], lines[:-1], out=keep[1:])
    return lines[keep]


class Cache:
    """One set-associative LRU cache level."""

    def __init__(self, params: CacheParams):
        self.params = params
        self._n_sets = params.n_sets
        self._assoc = params.assoc
        self._sets: list[list[int]] = [[] for _ in range(self._n_sets)]
        self.accesses = 0
        self.misses = 0

    def reset(self) -> None:
        for s in self._sets:
            s.clear()
        self.accesses = 0
        self.misses = 0

    def access_lines(self, lines: np.ndarray) -> np.ndarray:
        """Access a stream of line indices; return the missed lines.

        The returned array preserves stream order so it can be fed to the
        next level directly.
        """
        n_sets = self._n_sets
        assoc = self._assoc
        sets = self._sets
        missed: list[int] = []
        append = missed.append
        for line in lines.tolist():
            ways = sets[line % n_sets]
            if line in ways:
                if ways[-1] != line:  # move to MRU position
                    ways.remove(line)
                    ways.append(line)
            else:
                append(line)
                ways.append(line)
                if len(ways) > assoc:
                    del ways[0]
        self.accesses += int(lines.size)
        self.misses += len(missed)
        return np.asarray(missed, dtype=np.int64)

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    def check_invariants(self, label: str = "cache") -> list[str]:
        """Accounting sanity: ``0 <= misses <= accesses``.  Returns the
        violations (empty when healthy) — the detection hook for the
        fault-injection harness's perturbed-counter experiments."""
        out: list[str] = []
        if self.misses < 0:
            out.append(f"{label}: negative miss count {self.misses}")
        if self.accesses < 0:
            out.append(f"{label}: negative access count {self.accesses}")
        if self.misses > self.accesses:
            out.append(
                f"{label}: misses ({self.misses}) exceed accesses "
                f"({self.accesses})")
        return out


class MemoryHierarchy:
    """L1 (+ optional L2) hierarchy with penalty accounting.

    ``access`` returns the total stall cycles implied by the misses; hit
    costs are part of the instruction timing and are *not* charged here.
    """

    def __init__(self, params: MemoryParams, enabled: bool = True):
        self.params = params
        self.enabled = enabled
        self.l1 = Cache(params.l1)
        self.l2: Optional[Cache] = Cache(params.l2) if params.l2 is not None else None
        #: element-level access count (before line collapsing), for the
        #: misses-per-kilo-instruction style metrics.
        self.element_accesses = 0

    def reset(self) -> None:
        self.l1.reset()
        if self.l2 is not None:
            self.l2.reset()
        self.element_accesses = 0

    def access(self, addrs: np.ndarray, *, already_lines: bool = False) -> float:
        """Run a batch of byte addresses through the hierarchy.

        Returns the stall penalty in cycles.  ``already_lines`` skips the
        address->line conversion for callers that generate line streams
        directly.
        """
        addrs = np.asarray(addrs, dtype=np.int64)
        self.element_accesses += int(addrs.size)
        if not self.enabled or addrs.size == 0:
            return 0.0
        if already_lines:
            lines = dedup_consecutive(addrs)
        else:
            lines = dedup_consecutive(addresses_to_lines(addrs, self.params.l1.line_bytes))
        l1_missed = self.l1.access_lines(lines)
        penalty = l1_missed.size * self.params.l1.miss_penalty
        if self.l2 is not None and l1_missed.size:
            l2_missed = self.l2.access_lines(l1_missed)
            penalty += l2_missed.size * self.params.l2.miss_penalty
        return penalty

    def check_invariants(self) -> list[str]:
        """Hierarchy-wide accounting invariants (empty when healthy):
        per-level sanity plus inclusion (L2 is only fed L1's missed
        lines, so cumulative L2 accesses equal cumulative L1 misses)."""
        out = self.l1.check_invariants("L1")
        if self.l2 is not None:
            out += self.l2.check_invariants("L2")
            if self.l2.accesses != self.l1.misses:
                out.append(
                    f"L2 accesses ({self.l2.accesses}) != L1 misses "
                    f"({self.l1.misses})")
        if self.element_accesses < 0:
            out.append(f"negative element access count {self.element_accesses}")
        if self.enabled and self.l1.accesses > self.element_accesses:
            out.append(
                f"L1 accesses ({self.l1.accesses}) exceed element accesses "
                f"({self.element_accesses})")
        return out

    @property
    def l1_misses(self) -> int:
        return self.l1.misses

    @property
    def l2_misses(self) -> int:
        return self.l2.misses if self.l2 is not None else 0
