"""Simulated hardware: cache hierarchy, VPU timing, machine presets."""

from repro.machine.params import (
    CacheParams,
    MachineParams,
    MemoryParams,
    ScalarParams,
    VPUParams,
)
from repro.machine.cache import Cache, MemoryHierarchy, addresses_to_lines, dedup_consecutive
from repro.machine.vpu import VPUModel
from repro.machine.cpu import Machine, strip_lengths
from repro.machine.machines import MACHINES, MN4_AVX512, RISCV_VEC, SX_AURORA, get_machine

__all__ = [
    "CacheParams",
    "MachineParams",
    "MemoryParams",
    "ScalarParams",
    "VPUParams",
    "Cache",
    "MemoryHierarchy",
    "addresses_to_lines",
    "dedup_consecutive",
    "VPUModel",
    "Machine",
    "strip_lengths",
    "MACHINES",
    "MN4_AVX512",
    "RISCV_VEC",
    "SX_AURORA",
    "get_machine",
]
