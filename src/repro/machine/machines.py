"""Platform presets (the paper's Table 2, per core).

Three machines are modelled:

* ``RISCV_VEC`` -- the EPI RISC-V prototype: SemiDynamics Avispado scalar
  core + BSC Vitruvius VPU (RVV 0.7.1), 16-kbit registers = 256 double
  precision elements, 8 lanes, 50 MHz on the VCU128 FPGA, 1 MB L2.
  Includes the FSM grouping quirk (40-element groups) responsible for the
  VECTOR_SIZE = 240 sweet spot.
* ``SX_AURORA`` -- one NEC SX-Aurora VE20B vector core: same 256-element
  vector length, 32 FMA pipes per instruction stream (a VL=256 FMA
  graduates in 8 cycles), 120 B/cycle of bandwidth, and a comparatively
  weak scalar unit -- which is why the paper sees non-vectorized phase 8
  dominate at large VECTOR_SIZE on this platform.
* ``MN4_AVX512`` -- one Intel Xeon Platinum 8160 core (MareNostrum 4):
  AVX-512, vl_max = 8 doubles, two FMA ports, a strong superscalar
  pipeline, 11.2 B/cycle of sustained memory bandwidth.

Timing parameters not stated in the paper (cache penalties, scalar CPI)
are set to representative textbook values; EXPERIMENTS.md discusses their
calibration.  The experiments only depend on intra-machine cycle ratios.
"""

from __future__ import annotations

from dataclasses import replace

from repro.machine.params import (
    CacheParams,
    MachineParams,
    MemoryParams,
    ScalarParams,
    VPUParams,
)

KIB = 1024
MIB = 1024 * KIB

RISCV_VEC = MachineParams(
    name="RISC-V VEC",
    isa="RISC-V + RVV v0.7.1",
    frequency_mhz=50.0,
    cores_per_socket=1,
    peak_flops_per_cycle=16.0,
    compiler="flang 18.0.0",
    os="Ubuntu 21.04",
    scalar=ScalarParams(
        cpi_alu=1.0,
        cpi_mul=1.5,
        cpi_fp=1.4,
        cpi_fdiv=10.0,
        cpi_load=1.0,
        cpi_store=1.0,
        cpi_branch=1.5,
    ),
    memory=MemoryParams(
        l1=CacheParams("L1d", 32 * KIB, line_bytes=64, assoc=8, miss_penalty=10.0),
        l2=CacheParams("L2", 1 * MIB, line_bytes=64, assoc=8, miss_penalty=40.0),
        bandwidth_bytes_per_cycle=64.0,
    ),
    vpu=VPUParams(
        vl_max=256,
        lanes=8,
        # decode + issue + dispatch to the decoupled VPU; with tiny
        # vector lengths (the VEC2 AVL=4 case) this fixed cost dominates
        # and vectorization loses to scalar execution.
        issue_overhead=12.0,
        fsm_depth=5,            # 8 lanes x 5 = 40-element FSM groups
        fsm_flush_cycles=2.0,
        long_latency_factor=4.0,
        mem_unit_elems_per_cycle=8.0,      # 64 B/cycle
        mem_strided_elems_per_cycle=2.0,
        mem_indexed_elems_per_cycle=1.0,
        # 256-element accesses pipeline line fetches: little of the miss
        # latency reaches the critical path.
        vector_miss_exposure=0.15,
        strip_stall_cycles=25.0,
    ),
)

SX_AURORA = MachineParams(
    name="SX-Aurora",
    isa="VE20B",
    frequency_mhz=1600.0,
    cores_per_socket=8,
    peak_flops_per_cycle=192.0,
    compiler="nfort 5.0.2",
    os="VEOS",
    # The VE scalar unit is served by the same ISA but is not the machine's
    # strength; non-vector code runs noticeably worse than on x86.
    scalar=ScalarParams(
        cpi_alu=1.2,
        cpi_mul=2.5,
        cpi_fp=2.5,
        cpi_fdiv=16.0,
        cpi_load=1.8,
        cpi_store=1.8,
        cpi_branch=2.0,
    ),
    memory=MemoryParams(
        l1=CacheParams("L1d", 32 * KIB, line_bytes=128, assoc=8, miss_penalty=12.0),
        l2=CacheParams("L2", 512 * KIB, line_bytes=128, assoc=8, miss_penalty=45.0),
        bandwidth_bytes_per_cycle=120.0,
    ),
    vpu=VPUParams(
        vl_max=256,
        lanes=32,               # a VL=256 FMA graduates in 8 cycles
        issue_overhead=6.0,
        fsm_depth=None,         # no Vitruvius FSM quirk
        long_latency_factor=4.0,
        mem_unit_elems_per_cycle=15.0,     # 120 B/cycle
        mem_strided_elems_per_cycle=4.0,
        mem_indexed_elems_per_cycle=1.5,
        vector_miss_exposure=0.2,
        strip_stall_cycles=8.0,
    ),
)

MN4_AVX512 = MachineParams(
    name="MareNostrum 4",
    isa="Intel x86",
    frequency_mhz=2100.0,
    cores_per_socket=24,
    peak_flops_per_cycle=32.0,
    compiler="ifort 2018.4",
    os="Suse 12 SP2",
    # Wide out-of-order core: several scalar instructions retire per cycle.
    scalar=ScalarParams(
        cpi_alu=0.35,
        cpi_mul=0.8,
        cpi_fp=0.5,
        cpi_fdiv=6.0,
        cpi_load=0.5,
        cpi_store=0.6,
        cpi_branch=0.5,
    ),
    memory=MemoryParams(
        l1=CacheParams("L1d", 32 * KIB, line_bytes=64, assoc=8, miss_penalty=10.0),
        l2=CacheParams("L2", 1 * MIB, line_bytes=64, assoc=16, miss_penalty=45.0),
        bandwidth_bytes_per_cycle=11.2,
    ),
    vpu=VPUParams(
        vl_max=8,               # AVX-512: 8 double-precision elements
        lanes=8,
        issue_overhead=0.0,     # SIMD instructions issue like scalar ones
        fsm_depth=None,
        long_latency_factor=6.0,
        mem_unit_elems_per_cycle=16.0,     # two 64 B loads per cycle from L1
        mem_strided_elems_per_cycle=4.0,
        mem_indexed_elems_per_cycle=2.0,   # AVX-512 gathers
        control_lane_cycles=1.0,
        config_cycles=0.0,      # no vsetvl on x86; config is free
        # 8-element SIMD accesses cannot hide much miss latency (the
        # out-of-order window helps some).
        vector_miss_exposure=0.8,
        strip_stall_cycles=0.0,   # SIMD is not decoupled on x86
    ),
)

#: Fujitsu A64FX (Fugaku) -- the Arm SVE platform of the paper's related
#: work (Sato et al. / Banchelli et al., §6).  512-bit SVE = 8 double
#: precision elements, two FMA pipes, HBM2 bandwidth.  Included to
#: extend the portability matrix beyond the paper's three platforms.
A64FX = MachineParams(
    name="A64FX",
    isa="Armv8.2-A + SVE",
    frequency_mhz=2200.0,
    cores_per_socket=48,
    peak_flops_per_cycle=32.0,
    compiler="fcc 4.5",
    os="RHEL 8",
    scalar=ScalarParams(
        cpi_alu=0.6,
        cpi_mul=1.0,
        cpi_fp=0.8,
        cpi_fdiv=9.0,
        cpi_load=0.7,
        cpi_store=0.8,
        cpi_branch=0.8,
    ),
    memory=MemoryParams(
        l1=CacheParams("L1d", 64 * KIB, line_bytes=256, assoc=4, miss_penalty=11.0),
        l2=CacheParams("L2", 8 * MIB, line_bytes=256, assoc=16, miss_penalty=35.0),
        bandwidth_bytes_per_cycle=46.0,   # ~1 TB/s HBM2 shared by 48 cores... per-core L2 path
    ),
    vpu=VPUParams(
        vl_max=8,                # 512-bit SVE, double precision
        lanes=8,
        issue_overhead=0.0,
        fsm_depth=None,
        long_latency_factor=6.0,
        mem_unit_elems_per_cycle=16.0,
        mem_strided_elems_per_cycle=3.0,
        mem_indexed_elems_per_cycle=1.0,  # SVE gathers are slow on A64FX
        control_lane_cycles=1.0,
        config_cycles=0.5,       # whilelt predication
        vector_miss_exposure=0.7,
        strip_stall_cycles=0.0,
    ),
)

#: The co-design feedback loop, closed: the paper ends by reporting the
#: multiple-of-40 insight "to the hardware team designing the RISC-V VEC
#: system, encouraging addressing this micro-architectural insight in
#: future RISC-V VEC prototypes".  This preset models such a next
#: prototype: the element FSM drains partial groups at full lane rate
#: with no flush penalty, so the full 256-element vector length is the
#: optimum again (see benchmarks/test_next_prototype.py).
RISCV_VEC_NEXT = replace(
    RISCV_VEC,
    name="RISC-V VEC (next)",
    vpu=replace(RISCV_VEC.vpu, fsm_depth=None, fsm_flush_cycles=0.0),
)

#: machines keyed by short name, as used by the experiment configs.
MACHINES: dict[str, MachineParams] = {
    "riscv_vec": RISCV_VEC,
    "riscv_vec_next": RISCV_VEC_NEXT,
    "sx_aurora": SX_AURORA,
    "mn4_avx512": MN4_AVX512,
    "a64fx": A64FX,
}


def get_machine(name: str) -> MachineParams:
    """Look up a machine preset by short name (case-insensitive)."""
    key = name.lower()
    if key not in MACHINES:
        raise KeyError(f"unknown machine {name!r}; known: {sorted(MACHINES)}")
    return MACHINES[key]
