"""Hardware parameter records for the machine models.

All quantities are per core, matching the paper's Table 2 ("All the
entries are measured per core").  Timing is expressed in cycles; the
frequency is only used to convert to wall-clock time when a caller asks
for it (the paper compares cycle counts within a machine and speed-up
ratios across machines, never absolute seconds across machines).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class CacheParams:
    """One cache level (set-associative, LRU, write-allocate)."""

    name: str
    size_bytes: int
    line_bytes: int = 64
    assoc: int = 4
    #: extra cycles paid per miss *at this level* (latency to next level).
    miss_penalty: float = 10.0

    def __post_init__(self) -> None:
        if self.size_bytes % (self.line_bytes * self.assoc):
            raise ValueError(
                f"{self.name}: size {self.size_bytes} not divisible by "
                f"line_bytes*assoc = {self.line_bytes * self.assoc}"
            )

    @property
    def n_sets(self) -> int:
        return self.size_bytes // (self.line_bytes * self.assoc)


@dataclass(frozen=True)
class MemoryParams:
    """Cache hierarchy + main-memory characteristics."""

    l1: CacheParams
    l2: Optional[CacheParams] = None
    #: sustained bandwidth, bytes per cycle (Table 2 row "Bandwidth").
    bandwidth_bytes_per_cycle: float = 64.0


@dataclass(frozen=True)
class VPUParams:
    """Vector-unit timing model.

    The execution time of a vector instruction is::

        cycles = issue_overhead + exec_cycles(kind, pattern, vl)

    For the RISC-V VEC prototype, ``exec_cycles`` follows the Vitruvius
    FSM: elements are processed in groups of ``lanes * fsm_depth``
    (8 lanes x depth 5 = 40 elements per 5-cycle group); a *partial*
    trailing group still pays a flush penalty on top of its per-lane
    cycles.  This is the micro-architectural reason the paper gives for
    vector lengths that are multiples of 40 (hence VECTOR_SIZE = 240)
    outperforming the full 256-element vector length.

    Machines without the quirk (NEC SX-Aurora, AVX-512) set
    ``fsm_depth = None`` and use plain ``ceil(vl / lanes)`` throughput.
    """

    vl_max: int
    lanes: int
    issue_overhead: float = 8.0
    fsm_depth: Optional[int] = 5
    fsm_flush_cycles: float = 2.0
    #: multiplier on execution cycles for long-latency ops (div, sqrt).
    long_latency_factor: float = 4.0
    #: elements per cycle for each vector memory pattern (cache-hit case).
    mem_unit_elems_per_cycle: float = 8.0
    mem_strided_elems_per_cycle: float = 2.0
    mem_indexed_elems_per_cycle: float = 1.0
    #: cycles for a control-lane instruction (independent of vl).
    control_lane_cycles: float = 4.0
    #: cycles for a vsetvl vector-configuration instruction.
    config_cycles: float = 1.0
    #: fraction of cache-miss latency a vector memory access exposes
    #: (long vectors pipeline and overlap much of the miss latency).
    #: This is the *floor*; the effective exposure rises toward 1.0 as
    #: the vector length shrinks (a 4-element access hides nothing):
    #: ``exposure(vl) = clamp(floor * vl_max / vl, floor, 1.0)``.
    vector_miss_exposure: float = 0.5
    #: scalar-core stall per executed strip of a vectorized loop: the
    #: decoupled VPU's round-trip before dependent scalar bookkeeping can
    #: proceed.  Constant per strip, so it amortizes over long vectors
    #: but dominates tiny-AVL loops -- the mechanism behind the paper's
    #: VEC2 slowdown ("decoding, issuing and dispatching vector
    #: instructions ... computing only 4 elements produces significant
    #: overhead").
    strip_stall_cycles: float = 0.0

    def miss_exposure(self, vl: float) -> float:
        """Effective miss-latency exposure for accesses of length *vl*."""
        base = self.vector_miss_exposure
        if vl <= 0:
            return 1.0
        return max(base, min(1.0, base * self.vl_max / vl))

    @property
    def fsm_group_elems(self) -> Optional[int]:
        if self.fsm_depth is None:
            return None
        return self.lanes * self.fsm_depth

    def __post_init__(self) -> None:
        if self.vl_max <= 0 or self.lanes <= 0:
            raise ValueError("vl_max and lanes must be positive")
        if self.fsm_depth is not None and self.fsm_depth <= 0:
            raise ValueError("fsm_depth must be positive or None")


@dataclass(frozen=True)
class ScalarParams:
    """Scalar-pipeline CPI model (coarse, per instruction category)."""

    cpi_alu: float = 1.0
    cpi_mul: float = 2.0
    cpi_fp: float = 2.0
    cpi_fdiv: float = 12.0
    cpi_load: float = 1.0       # cache-hit cost; misses add penalties
    cpi_store: float = 1.0
    cpi_branch: float = 1.5


@dataclass(frozen=True)
class MachineParams:
    """Everything the simulator needs to know about one platform."""

    name: str
    isa: str
    frequency_mhz: float
    scalar: ScalarParams
    memory: MemoryParams
    vpu: Optional[VPUParams] = None
    #: Table-2 row "Throughput [FLOP/cycle]" (reporting only).
    peak_flops_per_cycle: float = 0.0
    compiler: str = ""
    os: str = ""
    cores_per_socket: int = 1

    @property
    def has_vpu(self) -> bool:
        return self.vpu is not None

    @property
    def vl_max(self) -> int:
        if self.vpu is None:
            raise ValueError(f"{self.name} has no vector unit")
        return self.vpu.vl_max

    @property
    def peak_gflops(self) -> float:
        """Peak double-precision GFLOPS per core."""
        return self.peak_flops_per_cycle * self.frequency_mhz / 1e3

    def cycles_to_seconds(self, cycles: float) -> float:
        return cycles / (self.frequency_mhz * 1e6)
