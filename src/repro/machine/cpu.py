"""The machine: executes compiled kernels and accumulates counters.

``Machine.execute_kernel`` walks the blocks produced by
:mod:`repro.compiler.codegen` against one :class:`~repro.compiler.program.
KernelInstance` (a chunk of mesh elements) and charges cycles and
instruction counts into :class:`~repro.metrics.counters.RunCounters`.

Two performance properties of the implementation matter:

* block iteration repeats are *analytically* accounted (all iterations of
  a homogeneous block cost the same base cycles), so simulation cost is
  proportional to the number of distinct blocks and strips, not to the
  dynamic instruction count;
* cache behaviour, which is *not* homogeneous across iterations, is
  simulated from the real address streams evaluated in NumPy batches.

Vector length selection follows the RVV vector-length-agnostic model:
the program asks for the remaining trip count and the machine grants at
most its ``vl_max``, so one compiled program runs unmodified on machines
with 256-element vectors (RISC-V VEC, SX-Aurora) and 8-element vectors
(AVX-512), as the paper's portability study requires.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.isa.instructions import ScalarOp
from repro.machine.cache import MemoryHierarchy
from repro.machine.params import MachineParams
from repro.machine.vpu import VPUModel
from repro.metrics.counters import PhaseCounters, RunCounters
from repro.compiler.program import (
    AccessDesc,
    Block,
    CompiledKernel,
    KernelInstance,
    ScalarBlock,
    VectorBlock,
    byte_addresses,
    loop_grid,
)


def strip_lengths(total_trip: int, vl_max: int) -> list[int]:
    """Vector lengths granted strip by strip (VLA semantics)."""
    full, rem = divmod(total_trip, vl_max)
    return [vl_max] * full + ([rem] if rem else [])


class Machine:
    """One simulated core (scalar pipeline + optional VPU + caches).

    An optional *tracer* (duck-typed: ``on_block`` / ``on_vector_instrs``,
    see :class:`repro.obs.tracer.Tracer`) receives timed events for
    every executed block -- the simulation-side equivalent of running
    under Extrae + Vehave.  When no tracer is passed explicitly, the
    ambient :func:`repro.obs.active` tracer (if any) is picked up, so a
    ``with obs.use(tracer):`` scope observes every machine it encloses
    -- including machines built deep inside executor workers.  Phase
    kernels are additionally stamped as SIM-domain spans on the cycle
    clock (:meth:`~repro.obs.tracer.Tracer.span_at`), the timeline the
    Chrome/Paraver exporters render.
    """

    def __init__(self, params: MachineParams, cache_enabled: bool = True,
                 tracer=None):
        from repro.obs.tracer import active as _obs_active

        self.params = params
        self.vpu: Optional[VPUModel] = VPUModel(params.vpu) if params.vpu else None
        self.mem = MemoryHierarchy(params.memory, enabled=cache_enabled)
        self.tracer = tracer if tracer is not None else _obs_active()
        #: span hook, pre-resolved so the no-tracer hot path stays free
        #: and legacy duck-typed tracers without span_at keep working.
        self._span_at = getattr(self.tracer, "span_at", None)
        #: running cycle clock (advances as blocks execute).
        self.clock = 0.0
        self._cpi = {
            ScalarOp.ALU: params.scalar.cpi_alu,
            ScalarOp.MUL: params.scalar.cpi_mul,
            ScalarOp.FP: params.scalar.cpi_fp,
            ScalarOp.FDIV: params.scalar.cpi_fdiv,
            ScalarOp.LOAD: params.scalar.cpi_load,
            ScalarOp.STORE: params.scalar.cpi_store,
            ScalarOp.BRANCH: params.scalar.cpi_branch,
        }

    def reset_memory(self) -> None:
        self.mem.reset()

    # ------------------------------------------------------------------

    def _access_penalty(self, desc: AccessDesc, env_vars: tuple[str, ...],
                        env_extents: tuple[int, ...], instance: KernelInstance,
                        counters: PhaseCounters) -> float:
        """Feed one access descriptor's address stream to the caches."""
        env = loop_grid(env_vars, env_extents)
        addrs = np.broadcast_to(
            byte_addresses(desc.ref, env, instance), env_extents or (1,)
        ).reshape(-1)
        if desc.weight < 1.0:
            addrs = addrs[: int(round(addrs.size * desc.weight))]
        l1_before = self.mem.l1_misses
        l2_before = self.mem.l2_misses
        penalty = self.mem.access(addrs)
        counters.l1_misses += self.mem.l1_misses - l1_before
        counters.l2_misses += self.mem.l2_misses - l2_before
        counters.mem_element_accesses += addrs.size
        return penalty

    # ------------------------------------------------------------------

    def _exec_scalar_block(self, block: ScalarBlock, instance: KernelInstance,
                           counters: PhaseCounters) -> None:
        trips = block.trips
        cycles_per_iter = 0.0
        instr_per_iter = 0.0
        mem_instr_per_iter = 0.0
        for op, n in block.counts:
            cycles_per_iter += n * self._cpi[op]
            instr_per_iter += n
            if op in (ScalarOp.LOAD, ScalarOp.STORE):
                mem_instr_per_iter += n
        cycles = trips * cycles_per_iter
        for desc in block.accesses:
            cycles += self._access_penalty(
                desc, block.loop_vars, block.loop_extents, instance, counters)
        counters.cycles_total += cycles
        counters.instr_scalar += trips * instr_per_iter
        counters.instr_scalar_mem += trips * mem_instr_per_iter
        counters.flops += trips * block.flops_per_iter

    def _exec_vector_block(self, block: VectorBlock, instance: KernelInstance,
                           counters: PhaseCounters) -> None:
        if self.vpu is None:
            raise RuntimeError(
                f"machine {self.params.name!r} has no VPU but the program "
                f"contains vector block {block.label!r}"
            )
        vpu = self.vpu
        repeats = block.repeats
        vls = strip_lengths(block.total_trip, self.params.vpu.vl_max)

        # Per-repeat base cost is identical across repeats: compute once.
        cycles_vec = 0.0
        n_arith = n_mem = n_ctrl = 0
        vl_sum = 0.0
        flops = 0.0
        for vl in vls:
            for desc in block.instrs:
                c = vpu.instr_cycles(desc.spec, vl)
                cycles_vec += c
                vl_sum += vl
                counters.vl_hist[vl] += repeats
                if desc.spec.is_arith:
                    n_arith += 1
                    flops += desc.spec.flops_per_elem * vl
                elif desc.spec.is_memory:
                    n_mem += 1
                else:
                    n_ctrl += 1
        n_strips = len(vls)
        config_cycles = n_strips * (
            vpu.config_cycles() + self.params.vpu.strip_stall_cycles)

        if self.tracer is not None:
            records = [("vsetvl", vl, repeats) for vl in vls]
            records += [
                (desc.spec.opcode, vl, repeats)
                for vl in vls for desc in block.instrs
            ]
            self.tracer.on_vector_instrs(block.phase, self.clock, records)

        scalar_cycles = 0.0
        scalar_instr = 0.0
        scalar_mem_instr = 0.0
        for op, n in block.scalar_counts_per_strip:
            scalar_cycles += n * self._cpi[op] * n_strips
            scalar_instr += n * n_strips
            if op in (ScalarOp.LOAD, ScalarOp.STORE):
                scalar_mem_instr += n * n_strips

        counters.cycles_total += repeats * (cycles_vec + config_cycles + scalar_cycles)
        counters.cycles_vector += repeats * cycles_vec
        counters.instr_vector_arith += repeats * n_arith
        counters.instr_vector_mem += repeats * n_mem
        counters.instr_vector_ctrl += repeats * n_ctrl
        counters.instr_vconfig += repeats * n_strips
        counters.instr_scalar += repeats * scalar_instr
        counters.instr_scalar_mem += repeats * scalar_mem_instr
        counters.vl_sum += repeats * vl_sum
        counters.flops += repeats * flops

        # Cache simulation over the full (repeats x trip) address stream.
        vl_avg = block.total_trip / n_strips
        exposure = self.params.vpu.miss_exposure(vl_avg)
        env_vars = block.loop_vars + (block.vec_var,)
        env_extents = block.loop_extents + (block.total_trip,)
        for desc in block.instrs:
            if desc.access is None:
                continue
            penalty = self._access_penalty(
                desc.access, env_vars, env_extents, instance, counters)
            counters.cycles_total += penalty * exposure
            counters.cycles_vector += penalty * exposure

    # ------------------------------------------------------------------

    def execute_kernel(self, compiled: CompiledKernel, instance: KernelInstance,
                       run: RunCounters) -> None:
        """Execute one compiled kernel over one instance (chunk)."""
        counters = run.phase(compiled.phase)
        kernel_t0 = self.clock
        for block in compiled.blocks:
            t0 = self.clock
            before = counters.cycles_total
            if isinstance(block, VectorBlock):
                self._exec_vector_block(block, instance, counters)
                kind = "vector"
            else:
                self._exec_scalar_block(block, instance, counters)
                kind = "scalar"
            delta = counters.cycles_total - before
            self.clock += delta
            if self.tracer is not None:
                self.tracer.on_block(block.phase, block.label, kind, t0, delta)
        if self._span_at is not None:
            self._span_at(compiled.name, cat="phase", t0=kernel_t0,
                          t1=self.clock, phase=compiled.phase)

    def execute_program(self, kernels: list[CompiledKernel],
                        instance: KernelInstance, run: RunCounters) -> None:
        for k in kernels:
            self.execute_kernel(k, instance, run)
