"""Loop-nest intermediate representation.

The mini-app's eight phases are expressed in this IR twice over: once to
*execute* (the reference interpreter, used as a semantics oracle in the
tests) and once to *compile* (the auto-vectorizer + code generator that
produce timed machine programs).  The IR deliberately models the aspects
of the Fortran source that drive the paper's story:

* loop extents carry a *kind*: a compile-time constant, a compile-time-
  known parameter, or a **runtime dummy argument** re-loaded from memory
  at every iteration -- the phase-2 blocker that the VEC2 transformation
  removes by turning ``VECTOR_DIM`` into a constant;
* array references use Fortran (column-major) layout with affine index
  expressions plus *indirect* (gather/scatter) indices through integer
  arrays, so the vectorizer can distinguish unit-stride, strided and
  indexed accesses;
* ``If`` nodes model data-dependent control flow (the phase-1 "WORK A"
  and the phase-8 valid-element check), which this compiler -- like the
  paper's -- cannot vectorize.

Everything is a plain frozen dataclass; kernels are built per
VECTOR_SIZE, mirroring Alya where VECTOR_SIZE is a compile-time
configurable parameter.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterator, Optional, Union

# ---------------------------------------------------------------------------
# Arrays
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Array:
    """A named array with a concrete shape.

    ``scope`` distinguishes persistent mesh-level data ("global") from the
    chunk-local working arrays of the mini-app ("local"); the memory
    layout engine uses it to place globals once and reuse local buffers
    across chunks, as the Fortran code does.
    """

    name: str
    shape: tuple[int, ...]
    dtype: str = "f8"  # 'f8' or 'i8'
    scope: str = "local"  # 'local' | 'global'

    def __post_init__(self) -> None:
        if any(d <= 0 for d in self.shape):
            raise ValueError(f"array {self.name!r} has non-positive dims {self.shape}")
        if self.dtype not in ("f8", "i8"):
            raise ValueError(f"array {self.name!r}: unsupported dtype {self.dtype}")
        if self.scope not in ("local", "global"):
            raise ValueError(f"array {self.name!r}: unsupported scope {self.scope}")

    @property
    def size(self) -> int:
        n = 1
        for d in self.shape:
            n *= d
        return n

    @property
    def itemsize(self) -> int:
        return 8

    @property
    def nbytes(self) -> int:
        return self.size * self.itemsize

    @property
    def strides_elems(self) -> tuple[int, ...]:
        """Column-major (Fortran) strides in elements."""
        strides = []
        acc = 1
        for d in self.shape:
            strides.append(acc)
            acc *= d
        return tuple(strides)


# ---------------------------------------------------------------------------
# Index expressions
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Affine:
    """``const + sum(coef * loop_var)`` over zero-based loop variables."""

    terms: tuple[tuple[str, int], ...] = ()
    const: int = 0

    def __post_init__(self) -> None:
        names = [v for v, _ in self.terms]
        if len(names) != len(set(names)):
            raise ValueError(f"duplicate loop var in affine terms {self.terms}")

    def coef(self, var: str) -> int:
        for v, c in self.terms:
            if v == var:
                return c
        return 0

    def vars(self) -> set[str]:
        return {v for v, _ in self.terms}

    def shifted(self, const_delta: int) -> "Affine":
        return Affine(self.terms, self.const + const_delta)


@dataclass(frozen=True)
class Indirect:
    """An index read from an integer array: ``scale * arr[idx...] + offset``.

    The canonical use is the mesh connectivity gather:
    ``coord(lnods(ivect, inode), idime)`` -- dimension 0 of ``coord`` is
    indexed by ``Indirect(lnods, (ivect, inode))``.
    """

    array: Array
    idx: tuple["IndexExpr", ...]
    scale: int = 1
    offset: int = 0

    def __post_init__(self) -> None:
        if self.array.dtype != "i8":
            raise ValueError(f"indirect index array {self.array.name!r} must be integer")
        if len(self.idx) != len(self.array.shape):
            raise ValueError(
                f"indirect through {self.array.name!r}: {len(self.idx)} indices "
                f"for rank {len(self.array.shape)}"
            )

    def vars(self) -> set[str]:
        out: set[str] = set()
        for e in self.idx:
            out |= e.vars()
        return out


IndexExpr = Union[Affine, Indirect]


def var(name: str, coef: int = 1) -> Affine:
    """Shorthand: an affine index that is just ``coef * name``."""
    return Affine(((name, coef),))


def const_idx(value: int) -> Affine:
    """Shorthand: a constant index."""
    return Affine((), value)


@dataclass(frozen=True)
class Ref:
    """A (possibly indirect) reference into an array, one index per dim."""

    array: Array
    idx: tuple[IndexExpr, ...]

    def __post_init__(self) -> None:
        if len(self.idx) != len(self.array.shape):
            raise ValueError(
                f"ref to {self.array.name!r}: {len(self.idx)} indices for rank "
                f"{len(self.array.shape)}"
            )

    def vars(self) -> set[str]:
        out: set[str] = set()
        for e in self.idx:
            out |= e.vars()
        return out

    def has_indirect(self) -> bool:
        return any(isinstance(e, Indirect) for e in self.idx)

    def stride_along(self, var_name: str) -> Optional[int]:
        """Element stride of this ref along *var_name*.

        Returns ``None`` when the dependence is indirect (gather/scatter)
        or otherwise non-affine in *var_name*; returns 0 when the ref does
        not depend on it.
        """
        stride = 0
        for dim_stride, e in zip(self.array.strides_elems, self.idx):
            if isinstance(e, Indirect):
                if var_name in e.vars():
                    return None
                continue
            c = e.coef(var_name)
            stride += dim_stride * c
        return stride


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


class Expr:
    """Base class for value expressions (all subclasses are frozen)."""

    def vars(self) -> set[str]:
        raise NotImplementedError


@dataclass(frozen=True)
class Const(Expr):
    value: float

    def vars(self) -> set[str]:
        return set()


@dataclass(frozen=True)
class Param(Expr):
    """A loop-invariant scalar runtime parameter (viscosity, dt, ...)."""

    name: str

    def vars(self) -> set[str]:
        return set()


@dataclass(frozen=True)
class Load(Expr):
    ref: Ref

    def vars(self) -> set[str]:
        return self.ref.vars()


@dataclass(frozen=True)
class BinOp(Expr):
    op: str  # add | sub | mul | div | min | max
    lhs: Expr
    rhs: Expr

    _OPS = frozenset({"add", "sub", "mul", "div", "min", "max"})

    def __post_init__(self) -> None:
        if self.op not in self._OPS:
            raise ValueError(f"unknown binop {self.op!r}")

    def vars(self) -> set[str]:
        return self.lhs.vars() | self.rhs.vars()


@dataclass(frozen=True)
class Unary(Expr):
    op: str  # neg | abs | sqrt
    x: Expr

    _OPS = frozenset({"neg", "abs", "sqrt"})

    def __post_init__(self) -> None:
        if self.op not in self._OPS:
            raise ValueError(f"unknown unary op {self.op!r}")

    def vars(self) -> set[str]:
        return self.x.vars()


def add(a: Expr, b: Expr) -> BinOp:
    return BinOp("add", a, b)


def sub(a: Expr, b: Expr) -> BinOp:
    return BinOp("sub", a, b)


def mul(a: Expr, b: Expr) -> BinOp:
    return BinOp("mul", a, b)


def div(a: Expr, b: Expr) -> BinOp:
    return BinOp("div", a, b)


def sqrt(a: Expr) -> Unary:
    return Unary("sqrt", a)


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Extent:
    """A loop trip count and how the compiler sees it.

    kind:
      * ``const``          -- literal constant (e.g. ``pnode = 8``)
      * ``param``          -- compile-time-known named parameter
                              (VECTOR_SIZE after the VEC2 refactor)
      * ``runtime_dummy``  -- a dummy argument whose value is re-fetched
                              from memory every iteration; the vectorizer
                              must refuse (the original phase-2 situation)
    """

    value: int
    kind: str = "const"
    name: Optional[str] = None

    _KINDS = frozenset({"const", "param", "runtime_dummy"})

    def __post_init__(self) -> None:
        if self.kind not in self._KINDS:
            raise ValueError(f"unknown extent kind {self.kind!r}")
        if self.value <= 0:
            raise ValueError("extent must be positive")

    @property
    def compile_time_known(self) -> bool:
        return self.kind in ("const", "param")


class Stmt:
    """Base class for statements."""


@dataclass(frozen=True)
class Assign(Stmt):
    """``ref = expr`` or, with ``accumulate``, ``ref = ref + expr``."""

    ref: Ref
    expr: Expr
    accumulate: bool = False


@dataclass(frozen=True)
class Cond:
    op: str  # lt | le | gt | ge | eq | ne
    lhs: Expr
    rhs: Expr

    _OPS = frozenset({"lt", "le", "gt", "ge", "eq", "ne"})

    def __post_init__(self) -> None:
        if self.op not in self._OPS:
            raise ValueError(f"unknown comparison {self.op!r}")

    def vars(self) -> set[str]:
        return self.lhs.vars() | self.rhs.vars()


@dataclass(frozen=True)
class If(Stmt):
    """Data-dependent guard.  ``est_taken`` is the static cost-model
    estimate of how often the branch is taken (the timing path multiplies
    the body cost by it; the interpreter evaluates the condition for
    real)."""

    cond: Cond
    body: tuple[Stmt, ...]
    est_taken: float = 1.0


@dataclass(frozen=True)
class Loop(Stmt):
    var: str
    extent: Extent
    body: tuple[Stmt, ...]
    #: set by the vectorizer.
    vectorized: bool = False

    def with_body(self, body: tuple[Stmt, ...]) -> "Loop":
        return replace(self, body=body)


@dataclass(frozen=True)
class Kernel:
    """One mini-app phase: a named list of top-level statements."""

    name: str
    phase: int
    body: tuple[Stmt, ...]
    #: default values for Param expressions.
    params: tuple[tuple[str, float], ...] = ()

    def param_dict(self) -> dict[str, float]:
        return dict(self.params)

    def arrays(self) -> dict[str, Array]:
        """All arrays referenced anywhere in the kernel, by name."""
        found: dict[str, Array] = {}

        def visit_ref(ref: Ref) -> None:
            register(ref.array)
            for e in ref.idx:
                visit_index(e)

        def visit_index(e: IndexExpr) -> None:
            if isinstance(e, Indirect):
                register(e.array)
                for sub_e in e.idx:
                    visit_index(sub_e)

        def register(arr: Array) -> None:
            prev = found.get(arr.name)
            if prev is not None and prev != arr:
                raise ValueError(f"conflicting definitions of array {arr.name!r}")
            found[arr.name] = arr

        def visit_expr(e: Expr) -> None:
            if isinstance(e, Load):
                visit_ref(e.ref)
            elif isinstance(e, BinOp):
                visit_expr(e.lhs)
                visit_expr(e.rhs)
            elif isinstance(e, Unary):
                visit_expr(e.x)

        def visit_stmt(s: Stmt) -> None:
            if isinstance(s, Assign):
                visit_ref(s.ref)
                visit_expr(s.expr)
            elif isinstance(s, Loop):
                for b in s.body:
                    visit_stmt(b)
            elif isinstance(s, If):
                visit_expr(s.cond.lhs)
                visit_expr(s.cond.rhs)
                for b in s.body:
                    visit_stmt(b)

        for s in self.body:
            visit_stmt(s)
        return found


def walk_loops(stmts: tuple[Stmt, ...]) -> Iterator[Loop]:
    """Yield every Loop in *stmts*, depth-first, outermost first."""
    for s in stmts:
        if isinstance(s, Loop):
            yield s
            yield from walk_loops(s.body)
        elif isinstance(s, If):
            yield from walk_loops(s.body)


def innermost_loops(stmts: tuple[Stmt, ...]) -> Iterator[Loop]:
    """Yield loops that contain no nested loop (vectorization candidates)."""
    for loop in walk_loops(stmts):
        if not any(isinstance(b, Loop) for b in loop.body) and not any(
            isinstance(b, If) and any(isinstance(x, Loop) for x in b.body)
            for b in loop.body
        ):
            yield loop
