"""IR-to-IR transformation passes: the paper's refactors as a compiler.

The paper's three code transformations -- VEC2 (constant trip count),
IVEC2 (loop interchange) and VEC1 (loop fission) -- are expressed here
as real compiler passes over the loop-nest IR instead of hand-duplicated
kernel bodies.  Each pass carries an explicit legality precondition
(reusing the dependence machinery of :mod:`repro.compiler.analysis`) and
emits a structured :class:`TransformRemark` alongside the vectorizer's
remarks, so ``repro passes`` can show *why* a kernel was or was not
rewritten.  :class:`PassPipeline` orders passes, enforces inter-pass
dependencies (``LoopInterchange.requires = (ConstantTripCount,)``), and
maps the paper's OPT rungs to ordered pass lists.
"""

from repro.compiler.transforms.base import (
    Pass,
    PipelineError,
    TransformRemark,
)
from repro.compiler.transforms.passes import (
    ConstantTripCount,
    LoopFission,
    LoopInterchange,
    StripMine,
)
from repro.compiler.transforms.pipeline import (
    OPT_PASSES,
    PASS_REGISTRY,
    PassPipeline,
    legal_schedules,
    opt_for_passes,
    pipeline_for_opt,
    pipeline_from_names,
)

__all__ = [
    "ConstantTripCount",
    "LoopFission",
    "LoopInterchange",
    "OPT_PASSES",
    "PASS_REGISTRY",
    "Pass",
    "PassPipeline",
    "PipelineError",
    "StripMine",
    "TransformRemark",
    "legal_schedules",
    "opt_for_passes",
    "pipeline_for_opt",
    "pipeline_from_names",
]
