"""The paper's three code transformations as legality-checked IR passes.

* :class:`ConstantTripCount` (**VEC2**): promote ``runtime_dummy`` loop
  bounds -- dummy arguments the compiler must re-load from memory every
  iteration, poisoning alias analysis (rule R1) -- to the compile-time
  parameter ``VECTOR_SIZE``.
* :class:`LoopInterchange` (**IVEC2**): sink the chunk-element loop
  (``ivect``, the long dimension) to the innermost position so the
  vectorizer sees long-trip-count candidates instead of 3/4-iteration
  copy loops.  Sinking through a multi-statement body distributes the
  loop, so the legality check includes the distribution dependences.
* :class:`LoopFission` (**VEC1**): split a loop that mixes
  data-dependent control flow (which the modelled compiler cannot
  if-convert) with a straight-line tail into two loops, so the tail
  becomes a clean vectorization candidate (the paper's WORK A / WORK B
  split, Algorithms 3/4).
* :class:`StripMine`: tile the chunk-element loop into fixed-size
  strips (``do is = 0, N/S - 1; do ivect = 0, S - 1``), the transform
  behind the paper's mod-40 VECTOR_SIZE variants -- on the Vitruvius
  FSM a vector length that is a multiple of ``lanes * fsm_depth = 40``
  avoids the partial-group flush, so the autotuner explores strip sizes
  from that family.  The rewrite is a pure re-indexing that preserves
  iteration order exactly, so every per-phase output digest (accumulates
  included) is bit-identical.

Every pass rewrites *any* kernel exhibiting the pattern -- the phase
numbers of the mini-app are nowhere in this module; on the mini-app the
patterns happen to live in phases 2 (VEC2/IVEC2) and 1 (VEC1), which is
exactly how the passes reproduce the paper's hand refactors.
"""

from __future__ import annotations

from dataclasses import replace
from typing import ClassVar

from repro.compiler.analysis import Blocker
from repro.compiler.ir import (
    Affine,
    Assign,
    BinOp,
    Cond,
    Expr,
    Extent,
    If,
    IndexExpr,
    Indirect,
    Kernel,
    Load,
    Loop,
    Ref,
    Stmt,
    Unary,
    walk_loops,
)
from repro.compiler.transforms.base import (
    Pass,
    PipelineError,
    TransformRemark,
    contains_control_flow,
    independence_blockers,
    rewrite_loops,
)

#: the parameter name a promoted trip count is bound to (what the VEC2
#: refactor renames ``VECTOR_DIM`` to in the Fortran source).
PROMOTED_NAME = "VECTOR_SIZE"


class ConstantTripCount(Pass):
    """VEC2: turn runtime-dummy loop bounds into compile-time parameters."""

    name = "const-trip-count"

    def run(self, kernel: Kernel) -> tuple[Kernel, TransformRemark]:
        targets = [lp for lp in walk_loops(kernel.body)
                   if lp.extent.kind == "runtime_dummy"]
        if not targets:
            return kernel, self._remark(
                kernel, "not-applicable",
                reason="no loop bound is a runtime dummy argument")

        def promote(loop: Loop):
            if loop.extent.kind != "runtime_dummy":
                return None  # recurse
            ext = Extent(loop.extent.value, "param", PROMOTED_NAME)
            body = rewrite_loops(loop.body, promote)
            return (replace(loop, extent=ext, body=body),)

        new_body = rewrite_loops(kernel.body, promote)
        names = ", ".join(
            f"'{lp.extent.name or lp.var}' (loop '{lp.var}')" for lp in targets)
        return replace(kernel, body=new_body), self._remark(
            kernel, "applied", loop_var=targets[0].var,
            reason=f"trip count {names} promoted to compile-time "
                   f"parameter {PROMOTED_NAME}")


class LoopInterchange(Pass):
    """IVEC2: sink the chunk-element loop to the innermost position."""

    name = "loop-interchange"
    requires = (ConstantTripCount,)

    def _target(self, kernel: Kernel) -> Loop | None:
        """The outermost vec-var loop that still encloses other loops."""
        for lp in walk_loops(kernel.body):
            if lp.var == self.vec_var and next(walk_loops(lp.body), None):
                return lp
        return None

    def _legality(self, target: Loop) -> list[Blocker]:
        blockers: list[Blocker] = []
        if not target.extent.compile_time_known:
            blockers.append(Blocker(
                "T1-runtime-trip-count",
                f"trip count of loop '{target.var}' is a runtime dummy "
                f"argument; run {ConstantTripCount.name} (VEC2) first",
            ))
        if contains_control_flow(target.body):
            blockers.append(Blocker(
                "T2-control-flow",
                f"loop '{target.var}' encloses data-dependent control "
                f"flow; sinking it would hoist the guard out of the "
                f"per-element context",
            ))
        blockers.extend(self._distribution_blockers(target.body))
        return blockers

    def _distribution_blockers(self, body: tuple[Stmt, ...]) -> list[Blocker]:
        """Sinking through a multi-statement body distributes the vec
        loop over the statements; collect the dependences that forbids,
        at every nesting level the sink will cross."""
        blockers: list[Blocker] = []
        if len(body) > 1:
            blockers.extend(independence_blockers(
                [(s,) for s in body], "T3-distribution-dependence"))
        for s in body:
            if isinstance(s, Loop):
                blockers.extend(self._distribution_blockers(s.body))
        return blockers

    def _sink(self, var: str, extent: Extent,
              body: tuple[Stmt, ...]) -> tuple[Stmt, ...]:
        """Statements equivalent to ``Loop(var, extent, body)`` with
        *var* pushed to the innermost position (distributing over
        multi-statement bodies as needed)."""
        if not any(isinstance(s, Loop) for s in body):
            return (Loop(var, extent, body),)
        out: list[Stmt] = []
        for s in body:
            if isinstance(s, Loop):
                out.append(s.with_body(self._sink(var, extent, s.body)))
            else:
                out.append(Loop(var, extent, (s,)))
        return tuple(out)

    def run(self, kernel: Kernel) -> tuple[Kernel, TransformRemark]:
        target = self._target(kernel)
        if target is None:
            return kernel, self._remark(
                kernel, "not-applicable",
                reason=f"no '{self.vec_var}' loop encloses another loop "
                       f"(already innermost)")
        blockers = tuple(self._legality(target))
        if blockers:
            return kernel, self._remark(
                kernel, "illegal", loop_var=target.var,
                reason="; ".join(b.reason for b in blockers),
                blockers=blockers)
        inner_vars = [lp.var for lp in walk_loops(target.body)]

        def interchange(loop: Loop):
            if loop is not target:
                return None
            return self._sink(loop.var, loop.extent, loop.body)

        new_body = rewrite_loops(kernel.body, interchange)
        return replace(kernel, body=new_body), self._remark(
            kernel, "applied", loop_var=target.var,
            reason=f"loop '{target.var}' sunk below "
                   f"{', '.join(repr(v) for v in inner_vars)} "
                   f"(long dimension now innermost)")


class LoopFission(Pass):
    """VEC1: split a mixed control-flow/straight-line loop in two."""

    name = "loop-fission"

    @staticmethod
    def _split_point(body: tuple[Stmt, ...]) -> int | None:
        """Index after the last ``If``, when a straight-line tail
        follows it; ``None`` when the body is not a mixed candidate."""
        last_if = max((i for i, s in enumerate(body)
                       if contains_control_flow((s,))), default=-1)
        if last_if < 0 or last_if == len(body) - 1:
            return None
        return last_if + 1

    def run(self, kernel: Kernel) -> tuple[Kernel, TransformRemark]:
        target: Loop | None = None
        for lp in walk_loops(kernel.body):
            if lp.var == self.vec_var and self._split_point(lp.body) is not None:
                target = lp
                break
        if target is None:
            return kernel, self._remark(
                kernel, "not-applicable",
                reason=f"no '{self.vec_var}' loop mixes control flow "
                       f"with a straight-line tail")
        cut = self._split_point(target.body)
        assert cut is not None
        head, tail = target.body[:cut], target.body[cut:]
        blockers = tuple(independence_blockers(
            [head, tail], "T4-fission-dependence"))
        if blockers:
            return kernel, self._remark(
                kernel, "illegal", loop_var=target.var,
                reason="; ".join(b.reason for b in blockers),
                blockers=blockers)

        def fission(loop: Loop):
            if loop is not target:
                return None
            return (replace(loop, body=head), replace(loop, body=tail))

        new_body = rewrite_loops(kernel.body, fission)
        return replace(kernel, body=new_body), self._remark(
            kernel, "applied", loop_var=target.var,
            reason=f"split into a mixed head ({len(head)} stmt(s), kept "
                   f"scalar) and a straight-line tail ({len(tail)} "
                   f"stmt(s), now a vectorization candidate)")


class StripMine(Pass):
    """Tile the chunk-element loop into fixed-size strips.

    ``Loop(ivect, N, body)`` becomes ``Loop(ivect_strip, N/S,
    (Loop(ivect, S, body'),))`` where *body'* rewrites every affine
    index term ``(ivect, c)`` by adding ``(ivect_strip, c*S)``, i.e.
    the flat element index is recovered as ``ivect_strip*S + ivect``.
    The strip-major/element-minor iteration order equals the original
    linear order, so the rewrite is digest-preserving even through
    accumulates.

    Legality: the target trip count must be compile-time known
    (T5-runtime-trip-count) and divisible by the strip size
    (T5-indivisible) -- the paper's mod-40 VECTOR_SIZE discipline,
    where the remainder-free family is exactly the multiples of the
    Vitruvius FSM group (``lanes * fsm_depth``).
    """

    name = "strip-mine"
    parameterized: ClassVar[bool] = True

    def __init__(self, strip: int = 40, vec_var: str = "ivect"):
        super().__init__(vec_var=vec_var)
        if strip < 2:
            raise PipelineError(
                f"strip-mine strip size must be >= 2, got {strip}")
        self.strip = strip
        self.strip_var = f"{vec_var}_strip"

    @property
    def spelling(self) -> str:
        return f"{self.name}:{self.strip}"

    @classmethod
    def parse_spelling_arg(cls, arg: str) -> dict:
        try:
            strip = int(arg)
        except ValueError:
            raise PipelineError(
                f"strip-mine parameter must be an integer strip size, "
                f"got {arg!r}") from None
        if strip < 2:
            raise PipelineError(
                f"strip-mine strip size must be >= 2, got {strip}")
        return {"strip": strip}

    # -- targets and legality ----------------------------------------------

    def _targets(self, kernel: Kernel) -> list[Loop]:
        return [lp for lp in walk_loops(kernel.body)
                if lp.var == self.vec_var
                and not (lp.extent.compile_time_known
                         and lp.extent.value <= self.strip)]

    def _legality(self, kernel: Kernel,
                  targets: list[Loop]) -> list[Blocker]:
        blockers: list[Blocker] = []
        if any(lp.var == self.strip_var for lp in walk_loops(kernel.body)):
            blockers.append(Blocker(
                "T5-already-stripped",
                f"loop variable '{self.strip_var}' already exists; "
                f"strip-mining twice would shadow it",
            ))
        for lp in targets:
            if not lp.extent.compile_time_known:
                blockers.append(Blocker(
                    "T5-runtime-trip-count",
                    f"trip count of loop '{lp.var}' is a runtime dummy "
                    f"argument; strip bounds would need a runtime "
                    f"remainder loop -- run {ConstantTripCount.name} "
                    f"(VEC2) first",
                ))
            elif lp.extent.value % self.strip:
                blockers.append(Blocker(
                    "T5-indivisible",
                    f"trip count {lp.extent.value} of loop '{lp.var}' is "
                    f"not a multiple of strip size {self.strip}; the "
                    f"remainder strip would break the mod-{self.strip} "
                    f"VECTOR_SIZE discipline",
                ))
        return blockers

    # -- index rewriting ---------------------------------------------------

    def _shift_index(self, e: IndexExpr) -> IndexExpr:
        if isinstance(e, Affine):
            coef = e.coef(self.vec_var)
            if coef == 0:
                return e
            return Affine(e.terms + ((self.strip_var, coef * self.strip),),
                          e.const)
        if isinstance(e, Indirect):
            return replace(e, idx=tuple(self._shift_index(i) for i in e.idx))
        return e

    def _shift_ref(self, ref: Ref) -> Ref:
        return Ref(ref.array, tuple(self._shift_index(i) for i in ref.idx))

    def _shift_expr(self, e: Expr) -> Expr:
        if isinstance(e, Load):
            return Load(self._shift_ref(e.ref))
        if isinstance(e, BinOp):
            return replace(e, lhs=self._shift_expr(e.lhs),
                           rhs=self._shift_expr(e.rhs))
        if isinstance(e, Unary):
            return replace(e, x=self._shift_expr(e.x))
        return e

    def _shift_stmts(self, stmts: tuple[Stmt, ...]) -> tuple[Stmt, ...]:
        out: list[Stmt] = []
        for s in stmts:
            if isinstance(s, Assign):
                out.append(replace(s, ref=self._shift_ref(s.ref),
                                   expr=self._shift_expr(s.expr)))
            elif isinstance(s, If):
                cond = Cond(s.cond.op, self._shift_expr(s.cond.lhs),
                            self._shift_expr(s.cond.rhs))
                out.append(replace(s, cond=cond,
                                   body=self._shift_stmts(s.body)))
            elif isinstance(s, Loop):
                out.append(s.with_body(self._shift_stmts(s.body)))
            else:
                out.append(s)
        return tuple(out)

    # -- the rewrite -------------------------------------------------------

    def run(self, kernel: Kernel) -> tuple[Kernel, TransformRemark]:
        targets = self._targets(kernel)
        if not targets:
            return kernel, self._remark(
                kernel, "not-applicable",
                reason=f"no '{self.vec_var}' loop has a trip count larger "
                       f"than strip size {self.strip}")
        blockers = tuple(self._legality(kernel, targets))
        if blockers:
            return kernel, self._remark(
                kernel, "illegal", loop_var=targets[0].var,
                reason="; ".join(b.reason for b in blockers),
                blockers=blockers)

        target_ids = {id(lp) for lp in targets}

        def strip(loop: Loop):
            if id(loop) not in target_ids:
                return None  # recurse
            n_strips = loop.extent.value // self.strip
            inner = Loop(self.vec_var, Extent(self.strip, "const"),
                         self._shift_stmts(rewrite_loops(loop.body, strip)),
                         vectorized=loop.vectorized)
            return (Loop(self.strip_var, Extent(n_strips, "const"), (inner,)),)

        new_body = rewrite_loops(kernel.body, strip)
        trips = ", ".join(str(lp.extent.value) for lp in targets)
        return replace(kernel, body=new_body), self._remark(
            kernel, "applied", loop_var=targets[0].var,
            reason=f"loop '{self.vec_var}' (trip {trips}) tiled into "
                   f"strips of {self.strip} under '{self.strip_var}'")
