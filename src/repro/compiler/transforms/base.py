"""Pass protocol, transform remarks, and dependence helpers.

A :class:`Pass` is an IR-to-IR rewrite with an explicit legality
precondition.  ``run(kernel)`` never raises on an inapplicable or
illegal kernel -- it returns the kernel unchanged together with a
:class:`TransformRemark` explaining the decision, mirroring how the
vectorizer reports blockers instead of failing.  Pipeline-level
*structural* errors (a pass scheduled before its prerequisites) do
raise: they are programming errors in the pipeline spec, not properties
of the code being compiled.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, ClassVar, Optional

from repro.compiler.analysis import Blocker, _index_refs, refs_in_expr
from repro.compiler.ir import (
    Affine,
    Assign,
    BinOp,
    Cond,
    Expr,
    If,
    IndexExpr,
    Indirect,
    Kernel,
    Load,
    Loop,
    Ref,
    Stmt,
    Unary,
)


@dataclass(frozen=True)
class TransformRemark:
    """One transformation decision (the pass-pipeline analogue of
    :class:`~repro.compiler.vectorizer.VecRemark`)."""

    pass_name: str
    kernel: str
    phase: int
    status: str  # applied | not-applicable | illegal
    loop_var: str = ""
    reason: str = ""
    blockers: tuple[Blocker, ...] = ()

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        head = f"{self.kernel}/phase{self.phase} [{self.pass_name}]: {self.status}"
        if self.loop_var:
            head += f" (loop '{self.loop_var}')"
        if self.reason:
            head += f" -- {self.reason}"
        return head


class PipelineError(ValueError):
    """A structurally invalid pass pipeline (ordering/dependency bug)."""


class Pass:
    """Base class for IR-to-IR transformation passes.

    Subclasses set ``name`` (the registry spelling), ``requires`` (pass
    classes that must run earlier in the same pipeline) and implement
    :meth:`run`.  ``vec_var`` names the chunk-element loop variable the
    paper's transformations revolve around.
    """

    name: ClassVar[str] = "pass"
    requires: ClassVar[tuple[type["Pass"], ...]] = ()
    #: parameterized passes take a ``name:arg`` spelling (e.g.
    #: ``strip-mine:40``) and are excluded from the default
    #: ``legal_schedules()`` vocabulary -- their schedule space is a
    #: family, not a single point.
    parameterized: ClassVar[bool] = False

    def __init__(self, vec_var: str = "ivect"):
        self.vec_var = vec_var

    @property
    def spelling(self) -> str:
        """The registry spelling that reconstructs this instance via
        ``pipeline_from_names`` (parameterized passes append ``:arg``)."""
        return self.name

    @classmethod
    def parse_spelling_arg(cls, arg: str) -> dict:
        """Constructor kwargs for the ``:arg`` suffix of a spelling."""
        raise PipelineError(
            f"pass '{cls.name}' takes no ':' parameter (got "
            f"'{cls.name}:{arg}')")

    def run(self, kernel: Kernel) -> tuple[Kernel, TransformRemark]:
        raise NotImplementedError

    # -- remark helpers ----------------------------------------------------

    def _remark(self, kernel: Kernel, status: str, *, loop_var: str = "",
                reason: str = "",
                blockers: tuple[Blocker, ...] = ()) -> TransformRemark:
        return TransformRemark(pass_name=self.name, kernel=kernel.name,
                               phase=kernel.phase, status=status,
                               loop_var=loop_var, reason=reason,
                               blockers=blockers)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(vec_var={self.vec_var!r})"


# ---------------------------------------------------------------------------
# Statement rewriting
# ---------------------------------------------------------------------------

#: a rewrite hook: Loop -> replacement statements, or None to recurse.
LoopRewrite = Callable[[Loop], Optional[tuple[Stmt, ...]]]


def rewrite_loops(stmts: tuple[Stmt, ...], fn: LoopRewrite) -> tuple[Stmt, ...]:
    """Apply *fn* to every loop, outermost first; a ``None`` result
    recurses into the loop body, a tuple splices replacement statements
    in place (and is not re-visited)."""
    out: list[Stmt] = []
    for s in stmts:
        if isinstance(s, Loop):
            replacement = fn(s)
            if replacement is not None:
                out.extend(replacement)
            else:
                out.append(s.with_body(rewrite_loops(s.body, fn)))
        elif isinstance(s, If):
            from dataclasses import replace

            out.append(replace(s, body=rewrite_loops(s.body, fn)))
        else:
            out.append(s)
    return tuple(out)


def pin_var_in_index(e: IndexExpr, var: str) -> IndexExpr:
    """*e* with loop variable *var* pinned to iteration 0 (loop vars are
    zero-based, so pinning just drops the affine term)."""
    if isinstance(e, Affine):
        terms = tuple((v, c) for v, c in e.terms if v != var)
        return Affine(terms, e.const) if terms != e.terms else e
    if isinstance(e, Indirect):
        return replace(e, idx=tuple(pin_var_in_index(i, var) for i in e.idx))
    return e


def pin_var_in_expr(e: Expr, var: str) -> Expr:
    """*e* with every occurrence of loop variable *var* pinned to
    iteration 0.

    This models a compiler wrongly treating a value as loop-invariant:
    the expression is evaluated once, for the first lane, instead of per
    iteration.  The chaos fault model uses it to build the
    ``mislegalized_interchange`` injector (a hoisted guard frozen to
    lane 0); it has no legitimate role in the legal passes.
    """
    if isinstance(e, Load):
        return Load(Ref(e.ref.array,
                        tuple(pin_var_in_index(i, var) for i in e.ref.idx)))
    if isinstance(e, BinOp):
        return replace(e, lhs=pin_var_in_expr(e.lhs, var),
                       rhs=pin_var_in_expr(e.rhs, var))
    if isinstance(e, Unary):
        return replace(e, x=pin_var_in_expr(e.x, var))
    return e


def pin_var_in_cond(cond: Cond, var: str) -> Cond:
    """*cond* with loop variable *var* pinned to iteration 0 on both
    sides (see :func:`pin_var_in_expr`)."""
    return Cond(cond.op, pin_var_in_expr(cond.lhs, var),
                pin_var_in_expr(cond.rhs, var))


# ---------------------------------------------------------------------------
# Array-granularity read/write sets (the dependence currency of the
# legality checks; conservative, like the vectorizer's alias rules)
# ---------------------------------------------------------------------------


def _ref_arrays(ref: Ref) -> set[str]:
    """The stored-to array plus any integer index arrays it gathers
    through (index arrays are *reads* even on a store)."""
    return {r.array.name for r in _index_refs(ref)}


def stmt_writes(stmts: tuple[Stmt, ...]) -> set[str]:
    """Names of arrays written anywhere in *stmts*."""
    out: set[str] = set()
    for s in stmts:
        if isinstance(s, Assign):
            out.add(s.ref.array.name)
        elif isinstance(s, Loop):
            out |= stmt_writes(s.body)
        elif isinstance(s, If):
            out |= stmt_writes(s.body)
    return out


def stmt_reads(stmts: tuple[Stmt, ...]) -> set[str]:
    """Names of arrays read anywhere in *stmts* (including index arrays
    and accumulate targets, which are read-modify-write)."""
    out: set[str] = set()
    for s in stmts:
        if isinstance(s, Assign):
            for ref in refs_in_expr(s.expr):
                out.add(ref.array.name)
            out |= _ref_arrays(s.ref)
            if s.accumulate:
                out.add(s.ref.array.name)
        elif isinstance(s, Loop):
            out |= stmt_reads(s.body)
        elif isinstance(s, If):
            for ref in refs_in_expr(s.cond.lhs):
                out.add(ref.array.name)
            for ref in refs_in_expr(s.cond.rhs):
                out.add(ref.array.name)
            out |= stmt_reads(s.body)
    return out


def independence_blockers(groups: list[tuple[Stmt, ...]],
                          code: str) -> list[Blocker]:
    """Blockers for reordering/distributing *groups* relative to each
    other: any array one group writes and another touches is a
    (conservative, array-granularity) dependence."""
    rw = [(stmt_writes(g), stmt_reads(g)) for g in groups]
    blockers: list[Blocker] = []
    for i in range(len(groups)):
        for j in range(i + 1, len(groups)):
            w_i, r_i = rw[i]
            w_j, r_j = rw[j]
            shared = (w_i & (r_j | w_j)) | (w_j & r_i)
            if shared:
                blockers.append(Blocker(
                    code,
                    f"statement groups {i} and {j} share written array(s) "
                    f"{sorted(shared)}; splitting them would reorder "
                    f"dependent accesses",
                ))
    return blockers


def contains_control_flow(stmts: tuple[Stmt, ...]) -> bool:
    """True when an ``If`` appears anywhere in *stmts* (recursively)."""
    for s in stmts:
        if isinstance(s, If):
            return True
        if isinstance(s, Loop) and contains_control_flow(s.body):
            return True
    return False
