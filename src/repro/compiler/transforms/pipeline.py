"""Ordered pass pipelines and the OPT-rung -> pass-list mapping.

A :class:`PassPipeline` is the compiler's transform schedule: an ordered
list of :class:`~repro.compiler.transforms.base.Pass` instances whose
inter-pass dependencies (``Pass.requires``) are validated at
construction time -- scheduling ``loop-interchange`` without
``const-trip-count`` raises a :class:`PipelineError` naming the missing
pass, which is the pipeline-level home of the old
``KernelConfig.__post_init__`` "IVEC2 requires VEC2" coupling.

:data:`OPT_PASSES` maps the paper's cumulative optimization rungs to
pass lists; :func:`pipeline_for_opt` / :func:`pipeline_from_names` build
pipelines from a rung or an explicit spelling (the ``RunConfig.passes``
experiment knob).

Each pass application is stamped as a wall-clock span (category
``"pass"``) on the ambient observability tracer, with the resulting
:class:`TransformRemark` attached as a point event, so ``repro trace``
shows the transform stage of the compilation alongside the simulated
phases.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.compiler.ir import Kernel
from repro.compiler.transforms.base import Pass, PipelineError, TransformRemark
from repro.compiler.transforms.passes import (
    ConstantTripCount,
    LoopFission,
    LoopInterchange,
    StripMine,
)
from repro.obs.tracer import event as _obs_event, span as _obs_span

#: registry spelling -> pass class (the CLI/--passes vocabulary).
#: Parameterized passes (``StripMine``) are spelled ``name:arg``
#: (e.g. ``strip-mine:40``); the base name keys the registry.
PASS_REGISTRY: dict[str, type[Pass]] = {
    ConstantTripCount.name: ConstantTripCount,
    LoopInterchange.name: LoopInterchange,
    LoopFission.name: LoopFission,
    StripMine.name: StripMine,
}

#: the paper's cumulative OPT rungs as ordered pass lists.
OPT_PASSES: dict[str, tuple[str, ...]] = {
    "scalar": (),
    "vanilla": (),
    "vec2": (ConstantTripCount.name,),
    "ivec2": (ConstantTripCount.name, LoopInterchange.name),
    "vec1": (ConstantTripCount.name, LoopInterchange.name, LoopFission.name),
}


class PassPipeline:
    """An ordered, dependency-checked list of transformation passes."""

    def __init__(self, passes: Sequence[Pass] = (), name: str = ""):
        self.passes: tuple[Pass, ...] = tuple(passes)
        self.name = name
        self._check_dependencies()

    def _check_dependencies(self) -> None:
        seen: list[type[Pass]] = []
        for p in self.passes:
            for req in type(p).requires:
                if not any(issubclass(s, req) for s in seen):
                    raise PipelineError(
                        f"pass '{p.name}' requires pass '{req.name}' to run "
                        f"earlier in the pipeline (the paper's rungs are "
                        f"cumulative: {p.name} builds on {req.name}); got "
                        f"{list(self.pass_names) or '[]'}")
            seen.append(type(p))

    @property
    def pass_names(self) -> tuple[str, ...]:
        return tuple(p.spelling for p in self.passes)

    def __len__(self) -> int:
        return len(self.passes)

    def __iter__(self):
        return iter(self.passes)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        label = f" {self.name!r}" if self.name else ""
        return f"PassPipeline({label} {list(self.pass_names)})"

    # ------------------------------------------------------------------

    def run(self, kernel: Kernel) -> tuple[Kernel, list[TransformRemark]]:
        """Run every pass over *kernel* in order, collecting remarks."""
        remarks: list[TransformRemark] = []
        for p in self.passes:
            with _obs_span(f"pass {p.name}", cat="pass", phase=kernel.phase,
                           kernel=kernel.name):
                kernel, remark = p.run(kernel)
            remarks.append(remark)
            _obs_event("transform remark", cat="pass",
                       pass_name=remark.pass_name, kernel=remark.kernel,
                       phase=remark.phase, status=remark.status,
                       reason=remark.reason)
        return kernel, remarks

    def run_all(self, kernels: Iterable[Kernel]
                ) -> tuple[list[Kernel], list[TransformRemark]]:
        """Run the pipeline over every kernel of a program."""
        out: list[Kernel] = []
        remarks: list[TransformRemark] = []
        for kern in kernels:
            k, r = self.run(kern)
            out.append(k)
            remarks.extend(r)
        return out, remarks

    # ------------------------------------------------------------------

    def prefixes(self) -> list["PassPipeline"]:
        """Every leading sub-pipeline, shortest first (baseline included);
        the per-stage granularity ``golden_check(transformed=True)``
        validates at."""
        return [PassPipeline(self.passes[:n],
                             name=f"{self.name}[:{n}]" if self.name else "")
                for n in range(len(self.passes) + 1)]


def pipeline_from_names(names: Sequence[str], name: str = "",
                        vec_var: str = "ivect") -> PassPipeline:
    """Build a pipeline from registry spellings (``RunConfig.passes``).

    A spelling is a registry name, optionally followed by ``:arg`` for
    parameterized passes -- ``strip-mine:40`` builds
    ``StripMine(strip=40)``.  ``PassPipeline.pass_names`` round-trips
    the spellings.
    """
    passes = []
    for spelling in names:
        base, sep, arg = spelling.partition(":")
        try:
            cls = PASS_REGISTRY[base]
        except KeyError:
            raise PipelineError(
                f"unknown pass {base!r}; known: {sorted(PASS_REGISTRY)}"
            ) from None
        kwargs = cls.parse_spelling_arg(arg) if sep else {}
        passes.append(cls(vec_var=vec_var, **kwargs))
    return PassPipeline(passes, name=name)


def pipeline_for_opt(opt: str) -> PassPipeline:
    """The ordered pass list of one paper OPT rung."""
    try:
        names = OPT_PASSES[opt]
    except KeyError:
        raise ValueError(
            f"unknown optimization level {opt!r}; known: "
            f"{tuple(OPT_PASSES)}") from None
    return pipeline_from_names(names, name=opt)


def legal_schedules(
    names: Sequence[str] | None = None,
) -> tuple[tuple[str, ...], ...]:
    """Every dependency-legal pass schedule over a spelling vocabulary.

    Enumerates all permutations of all subsets of *names* and keeps
    those that construct without :class:`PipelineError` -- the
    exhaustive ``RunConfig.passes`` vocabulary the backend equivalence
    gate sweeps.  *names* defaults to the non-parameterized registry
    (parameterized spellings like ``strip-mine:40`` describe a family,
    not a point; the autotuner passes them explicitly).  Deterministic:
    shortest first, then lexicographic.
    """
    from itertools import permutations

    if names is None:
        names = sorted(n for n, cls in PASS_REGISTRY.items()
                       if not cls.parameterized)
    else:
        names = sorted(names)
    out: list[tuple[str, ...]] = []
    for r in range(len(names) + 1):
        for combo in permutations(names, r):
            try:
                pipeline_from_names(combo)
            except PipelineError:
                continue
            out.append(tuple(combo))
    out.sort(key=lambda s: (len(s), s))
    return tuple(out)


def opt_for_passes(names: Sequence[str]) -> str | None:
    """The rung label an explicit pass list corresponds to, if any."""
    spelled = tuple(names)
    for opt, passes in OPT_PASSES.items():
        if passes == spelled and opt != "scalar":
            return opt
    return None
