"""A compact, Fortran-flavoured pretty-printer for the loop-nest IR.

Used by ``repro passes`` to show a kernel before and after each
transformation pass -- the textual diff makes the effect of a pass
(promoted bounds, sunk loops, fissioned bodies) legible the way
``-fopt-info`` dumps are.
"""

from __future__ import annotations

from repro.compiler.ir import (
    Affine,
    Assign,
    BinOp,
    Cond,
    Const,
    Expr,
    Extent,
    If,
    IndexExpr,
    Indirect,
    Kernel,
    Load,
    Loop,
    Param,
    Ref,
    Stmt,
    Unary,
)

_BINOP = {"add": "+", "sub": "-", "mul": "*", "div": "/"}


def format_index(expr: IndexExpr) -> str:
    if isinstance(expr, Affine):
        parts = []
        for v, c in expr.terms:
            parts.append(v if c == 1 else f"{c}*{v}")
        if expr.const or not parts:
            parts.append(str(expr.const))
        return "+".join(parts)
    if isinstance(expr, Indirect):
        inner = ", ".join(format_index(e) for e in expr.idx)
        out = f"{expr.array.name}({inner})"
        if expr.scale != 1:
            out = f"{expr.scale}*{out}"
        if expr.offset:
            out = f"{out}+{expr.offset}"
        return out
    return repr(expr)


def format_ref(ref: Ref) -> str:
    return f"{ref.array.name}({', '.join(format_index(i) for i in ref.idx)})"


def format_expr(expr: Expr) -> str:
    if isinstance(expr, Const):
        v = expr.value
        return str(int(v)) if v == int(v) else f"{v:g}"
    if isinstance(expr, Param):
        return expr.name
    if isinstance(expr, Load):
        return format_ref(expr.ref)
    if isinstance(expr, BinOp):
        op = _BINOP.get(expr.op)
        lhs, rhs = format_expr(expr.lhs), format_expr(expr.rhs)
        if op is None:
            return f"{expr.op}({lhs}, {rhs})"
        return f"({lhs} {op} {rhs})"
    if isinstance(expr, Unary):
        return f"{expr.op}({format_expr(expr.x)})"
    return repr(expr)


def format_cond(cond: Cond) -> str:
    return f"{format_expr(cond.lhs)} .{cond.op}. {format_expr(cond.rhs)}"


def format_extent(extent: Extent) -> str:
    if extent.kind == "const":
        return str(extent.value)
    label = extent.name or "?"
    if extent.kind == "param":
        return f"{label}[param={extent.value}]"
    return f"{label}[runtime dummy={extent.value}]"


def _format_stmt(stmt: Stmt, depth: int, lines: list[str],
                 elide_exprs: bool) -> None:
    pad = "  " * depth
    if isinstance(stmt, Loop):
        vec = "  ! vectorized" if stmt.vectorized else ""
        lines.append(f"{pad}do {stmt.var} = 1, "
                     f"{format_extent(stmt.extent)}{vec}")
        for s in stmt.body:
            _format_stmt(s, depth + 1, lines, elide_exprs)
        lines.append(f"{pad}end do")
    elif isinstance(stmt, If):
        lines.append(f"{pad}if ({format_cond(stmt.cond)}) then")
        for s in stmt.body:
            _format_stmt(s, depth + 1, lines, elide_exprs)
        lines.append(f"{pad}end if")
    elif isinstance(stmt, Assign):
        op = "=+" if stmt.accumulate else "="
        rhs = "..." if elide_exprs else format_expr(stmt.expr)
        lines.append(f"{pad}{format_ref(stmt.ref)} {op} {rhs}")
    else:  # pragma: no cover - no other statement kinds exist today
        lines.append(f"{pad}{stmt!r}")


def format_kernel(kernel: Kernel, *, elide_exprs: bool = False) -> str:
    """Render a kernel as indented pseudo-Fortran.

    ``elide_exprs=True`` replaces right-hand sides with ``...`` so the
    *loop structure* -- what the passes actually change -- dominates the
    output.
    """
    lines = [f"kernel {kernel.name} (phase {kernel.phase})"]
    for s in kernel.body:
        _format_stmt(s, 1, lines, elide_exprs)
    return "\n".join(lines)
