"""Code generation: lower a (vectorized) kernel to machine blocks.

The lowering follows what a Fortran compiler at ``-O3`` would produce:

* every scalar loop contributes per-iteration control instructions
  (induction update + compare/branch); a loop whose bound is a
  ``runtime_dummy`` extent also re-loads the bound each iteration, the
  phase-2 pathology;
* straight-line statements in a scalar context lower to scalar loads /
  stores / FP ops with per-reference address generation;
* a loop marked ``vectorized`` lowers to a strip-mined vector loop:
  per strip one ``vsetvl``, one vector memory instruction per reference
  (unit-stride / strided / indexed according to the reference's stride
  along the vectorized variable), the contracted arithmetic mix, plus a
  few scalar bookkeeping instructions; loop-invariant (stride-0)
  operands fold into ``.vf``-style vector-scalar forms, costing one
  scalar load per strip -- which is why the compiled kernels execute no
  control-lane vector instructions, matching the paper's Figure 3;
* indexed vector accesses additionally load their index vector
  (unit-stride) and scale it to byte offsets with one control-lane shift,
  the one place control-lane instructions can appear (post-IVEC2 code);
* ``If`` guards scale the guarded work by their estimated taken fraction
  and contribute the compare/branch cost.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

from repro.isa.instructions import (
    ARITH_OPCODES,
    LOAD_OPCODES,
    STORE_OPCODES,
    MemPattern,
    ScalarOp,
    VSLIDEDOWN,
    VEXT,
)
from repro.compiler.analysis import refs_in_expr
from repro.compiler.flags import CompilerFlags
from repro.compiler.ir import (
    Assign,
    If,
    Indirect,
    Kernel,
    Load,
    Loop,
    Ref,
    Stmt,
)
from repro.compiler.program import (
    AccessDesc,
    CompiledKernel,
    ScalarBlock,
    VectorBlock,
    VectorInstrDesc,
)
from repro.compiler.vectorizer import expr_op_mix


def _pattern_for_stride(stride: int | None) -> MemPattern:
    if stride is None:
        return MemPattern.INDEXED
    if stride in (0, 1):
        return MemPattern.UNIT_STRIDE
    return MemPattern.STRIDED


@dataclass
class _Ctx:
    loop_vars: tuple[str, ...] = ()
    loop_extents: tuple[int, ...] = ()
    weight: float = 1.0

    def inner(self, var: str, extent: int) -> "_Ctx":
        return _Ctx(self.loop_vars + (var,), self.loop_extents + (extent,), self.weight)

    def guarded(self, taken: float) -> "_Ctx":
        return _Ctx(self.loop_vars, self.loop_extents, self.weight * taken)


class _Lowering:
    def __init__(self, kernel: Kernel, flags: CompilerFlags):
        self.kernel = kernel
        self.flags = flags
        self.out = CompiledKernel(name=kernel.name, phase=kernel.phase)

    # -- scalar statement groups ------------------------------------------

    def _scalar_assign_block(self, stmts: list[Assign], ctx: _Ctx, label: str) -> None:
        counts: dict[ScalarOp, float] = defaultdict(float)
        flops = 0.0
        accesses: list[AccessDesc] = []
        for stmt in stmts:
            loads = list(refs_in_expr(stmt.expr))
            if stmt.accumulate:
                loads.append(stmt.ref)
            mix = expr_op_mix(stmt.expr, self.flags)
            fp = mix.fp_ops + (1 if stmt.accumulate else 0)
            counts[ScalarOp.LOAD] += len(loads)
            counts[ScalarOp.STORE] += 1
            counts[ScalarOp.FP] += fp
            counts[ScalarOp.FDIV] += mix.long
            # address generation: one ALU op per memory reference;
            # indirect (gathered) references additionally pay the index
            # scaling / linearization arithmetic.
            n_indirect = sum(1 for r in loads if r.has_indirect())
            if stmt.ref.has_indirect():
                n_indirect += 1
            counts[ScalarOp.ALU] += len(loads) + 1 + n_indirect
            counts[ScalarOp.MUL] += n_indirect
            flops += 2 * mix.fma + mix.plain + mix.long + (1 if stmt.accumulate else 0)
            accesses.extend(AccessDesc(r, False, ctx.weight) for r in loads)
            accesses.append(AccessDesc(stmt.ref, True, ctx.weight))
        w = ctx.weight
        self.out.blocks.append(ScalarBlock(
            phase=self.kernel.phase,
            loop_vars=ctx.loop_vars,
            loop_extents=ctx.loop_extents,
            counts=tuple((op, w * c) for op, c in counts.items()),
            flops_per_iter=w * flops,
            accesses=tuple(accesses),
            label=label,
        ))

    def _loop_control_block(self, loop: Loop, ctx: _Ctx) -> None:
        counts: dict[ScalarOp, float] = {
            ScalarOp.ALU: 1.0,
            ScalarOp.BRANCH: 1.0,
        }
        if loop.extent.kind == "runtime_dummy":
            # the dummy bound is re-loaded from memory each iteration.
            counts[ScalarOp.LOAD] = 1.0
        w = ctx.weight
        inner = ctx.inner(loop.var, loop.extent.value)
        self.out.blocks.append(ScalarBlock(
            phase=self.kernel.phase,
            loop_vars=inner.loop_vars,
            loop_extents=inner.loop_extents,
            counts=tuple((op, w * c) for op, c in counts.items()),
            flops_per_iter=0.0,
            accesses=(),
            label=f"loop-control({loop.var})",
        ))

    def _if_cost_block(self, guard: If, ctx: _Ctx) -> None:
        loads = list(refs_in_expr(guard.cond.lhs)) + list(refs_in_expr(guard.cond.rhs))
        counts: dict[ScalarOp, float] = {
            ScalarOp.LOAD: float(len(loads)),
            ScalarOp.ALU: float(len(loads)),
            ScalarOp.BRANCH: 1.0,
        }
        w = ctx.weight
        self.out.blocks.append(ScalarBlock(
            phase=self.kernel.phase,
            loop_vars=ctx.loop_vars,
            loop_extents=ctx.loop_extents,
            counts=tuple((op, w * c) for op, c in counts.items()),
            flops_per_iter=0.0,
            accesses=tuple(AccessDesc(r, False, w) for r in loads),
            label="if-guard",
        ))

    # -- vector loops -------------------------------------------------------

    def _vector_block(self, loop: Loop, ctx: _Ctx) -> None:
        instrs: list[VectorInstrDesc] = []
        scalar_counts: dict[ScalarOp, float] = defaultdict(float)
        # strip control: induction update, bound check, branch.
        scalar_counts[ScalarOp.ALU] += 2.0
        scalar_counts[ScalarOp.BRANCH] += 1.0
        uniform_loads: list[Ref] = []

        def emit_mem(ref: Ref, is_store: bool) -> None:
            stride = ref.stride_along(loop.var)
            if stride == 0 and not is_store:
                # loop-invariant operand: folds into a .vf vector-scalar
                # form; costs one scalar load per strip.
                uniform_loads.append(ref)
                return
            pattern = _pattern_for_stride(stride)
            if pattern is MemPattern.INDEXED:
                # load the index vector, then shift element indices to
                # byte offsets (one control-lane op).
                for e in ref.idx:
                    if isinstance(e, Indirect) and loop.var in e.vars():
                        idx_ref = Ref(e.array, e.idx)
                        idx_stride = idx_ref.stride_along(loop.var)
                        idx_pat = _pattern_for_stride(idx_stride)
                        instrs.append(VectorInstrDesc(
                            LOAD_OPCODES[idx_pat], AccessDesc(idx_ref, False, ctx.weight),
                        ))
                        instrs.append(VectorInstrDesc(VEXT))
                opcode = STORE_OPCODES[pattern] if is_store else LOAD_OPCODES[pattern]
                instrs.append(VectorInstrDesc(opcode, AccessDesc(ref, is_store, ctx.weight)))
            else:
                opcode = STORE_OPCODES[pattern] if is_store else LOAD_OPCODES[pattern]
                instrs.append(VectorInstrDesc(opcode, AccessDesc(ref, is_store, ctx.weight)))
                if ref.has_indirect():
                    # gather base that is uniform along the vector var
                    # (e.g. lnods(elem, inode) inside the idofn loop):
                    # one scalar index load per strip.
                    for e in ref.idx:
                        if isinstance(e, Indirect):
                            uniform_loads.append(Ref(e.array, e.idx))
                    scalar_counts[ScalarOp.LOAD] += 1.0
            # base-address setup per strip: linearizing the enclosing
            # multi-dimensional indices costs a multiply + adds.
            scalar_counts[ScalarOp.ALU] += 2.0
            scalar_counts[ScalarOp.MUL] += 1.0

        for stmt in loop.body:
            assert isinstance(stmt, Assign), "vectorized loops contain only assigns"
            # loads: direct refs of the expression (gather index loads are
            # handled inside emit_mem).
            for lref in _direct_refs(stmt.expr):
                emit_mem(lref, is_store=False)
            if stmt.accumulate:
                emit_mem(stmt.ref, is_store=False)
            mix = expr_op_mix(stmt.expr, self.flags)
            for _ in range(mix.fma):
                instrs.append(VectorInstrDesc(ARITH_OPCODES["fma"]))
            plain = mix.plain + (1 if stmt.accumulate else 0)
            for _ in range(plain):
                instrs.append(VectorInstrDesc(ARITH_OPCODES["add"]))
            for _ in range(mix.long):
                instrs.append(VectorInstrDesc(ARITH_OPCODES["div"]))
            store_stride = stmt.ref.stride_along(loop.var)
            if store_stride == 0:
                # reduction into a scalar: log2(vl)-ish control-lane
                # shuffle tree + one scalar store per strip.
                for _ in range(4):
                    instrs.append(VectorInstrDesc(VSLIDEDOWN))
                scalar_counts[ScalarOp.STORE] += 1.0
            else:
                emit_mem(stmt.ref, is_store=True)

        scalar_counts[ScalarOp.LOAD] += float(len(uniform_loads))
        w = ctx.weight
        self.out.blocks.append(VectorBlock(
            phase=self.kernel.phase,
            loop_vars=ctx.loop_vars,
            loop_extents=ctx.loop_extents,
            vec_var=loop.var,
            total_trip=loop.extent.value,
            instrs=tuple(instrs),
            scalar_counts_per_strip=tuple((op, w * c) for op, c in scalar_counts.items()),
            label=f"vector({loop.var})",
        ))
        if uniform_loads:
            # uniform operands are fetched once per repeat of the strip
            # loop; their addresses still hit the cache.
            self.out.blocks.append(ScalarBlock(
                phase=self.kernel.phase,
                loop_vars=ctx.loop_vars,
                loop_extents=ctx.loop_extents,
                counts=((ScalarOp.ALU, w * len(uniform_loads)),),
                flops_per_iter=0.0,
                accesses=tuple(AccessDesc(r, False, w) for r in uniform_loads),
                label=f"uniform-operands({loop.var})",
            ))

    # -- driver --------------------------------------------------------------

    def lower_stmts(self, stmts: tuple[Stmt, ...], ctx: _Ctx) -> None:
        pending: list[Assign] = []

        def flush() -> None:
            if pending:
                self._scalar_assign_block(list(pending), ctx, label="straight-line")
                pending.clear()

        for s in stmts:
            if isinstance(s, Assign):
                pending.append(s)
            elif isinstance(s, Loop):
                flush()
                if s.vectorized:
                    # per-iteration loop control is replaced by the strip
                    # loop accounted inside the vector block.
                    self._vector_block(s, ctx)
                else:
                    self._loop_control_block(s, ctx)
                    self.lower_stmts(s.body, ctx.inner(s.var, s.extent.value))
            elif isinstance(s, If):
                flush()
                self._if_cost_block(s, ctx)
                self.lower_stmts(s.body, ctx.guarded(s.est_taken))
            else:  # pragma: no cover - defensive
                raise TypeError(f"cannot lower {s!r}")
        flush()


def _direct_refs(expr) -> list[Ref]:
    """Refs loaded directly by *expr* (excluding gather index arrays,
    which codegen materializes with the gather instruction itself)."""
    out: list[Ref] = []
    if isinstance(expr, Load):
        out.append(expr.ref)
    elif hasattr(expr, "lhs"):
        out.extend(_direct_refs(expr.lhs))
        out.extend(_direct_refs(expr.rhs))
    elif hasattr(expr, "x"):
        out.extend(_direct_refs(expr.x))
    return out


def lower_kernel(kernel: Kernel, flags: CompilerFlags) -> CompiledKernel:
    """Lower *kernel* (already run through the vectorizer) to blocks."""
    lowering = _Lowering(kernel, flags)
    lowering.lower_stmts(kernel.body, _Ctx())
    return lowering.out
