"""The modelled auto-vectorizing compiler: IR, analysis, vectorizer, codegen."""

from repro.compiler.flags import PAPER_FLAGS, SCALAR_FLAGS, CompilerFlags
from repro.compiler.vectorizer import VecRemark, VectorizationResult, vectorize_kernel
from repro.compiler.codegen import lower_kernel
from repro.compiler.program import (
    CompiledKernel,
    CompileResult,
    KernelInstance,
    MemoryLayout,
    ScalarBlock,
    VectorBlock,
    compile_kernels,
)
from repro.compiler.interpreter import Interpreter, run_kernel
from repro.compiler.transforms import (
    OPT_PASSES,
    PASS_REGISTRY,
    Pass,
    PassPipeline,
    PipelineError,
    TransformRemark,
    pipeline_for_opt,
    pipeline_from_names,
)

__all__ = [
    "PAPER_FLAGS",
    "SCALAR_FLAGS",
    "CompilerFlags",
    "VecRemark",
    "VectorizationResult",
    "vectorize_kernel",
    "lower_kernel",
    "CompiledKernel",
    "KernelInstance",
    "MemoryLayout",
    "ScalarBlock",
    "VectorBlock",
    "Interpreter",
    "run_kernel",
    "CompileResult",
    "compile_kernels",
    "OPT_PASSES",
    "PASS_REGISTRY",
    "Pass",
    "PassPipeline",
    "PipelineError",
    "TransformRemark",
    "pipeline_for_opt",
    "pipeline_from_names",
]
