"""The modelled auto-vectorizing compiler: IR, analysis, vectorizer, codegen."""

from repro.compiler.flags import PAPER_FLAGS, SCALAR_FLAGS, CompilerFlags
from repro.compiler.vectorizer import VecRemark, VectorizationResult, vectorize_kernel
from repro.compiler.codegen import lower_kernel
from repro.compiler.program import (
    CompiledKernel,
    KernelInstance,
    MemoryLayout,
    ScalarBlock,
    VectorBlock,
)
from repro.compiler.interpreter import Interpreter, run_kernel

__all__ = [
    "PAPER_FLAGS",
    "SCALAR_FLAGS",
    "CompilerFlags",
    "VecRemark",
    "VectorizationResult",
    "vectorize_kernel",
    "lower_kernel",
    "CompiledKernel",
    "KernelInstance",
    "MemoryLayout",
    "ScalarBlock",
    "VectorBlock",
    "Interpreter",
    "run_kernel",
]
