"""Reference interpreter for the loop-nest IR.

Executes a kernel *by the book*: loops iterate, conditions are evaluated
for real, assignments read and write the bound NumPy arrays element by
element.  It is deliberately simple and slow -- its only job is to be an
unarguable semantics oracle.  The test suite checks that:

* the interpreter and the NumPy reference implementations of the CFD
  phases (:mod:`repro.cfd.reference`) compute identical values, which
  pins the IR kernels to the actual mathematics; and
* code transformations (VEC2's constant bound, IVEC2's interchange,
  VEC1's fission) leave kernel semantics unchanged -- the paper's
  correctness requirement for every proposed refactor.
"""

from __future__ import annotations

import math
from typing import Mapping

from repro.compiler.ir import (
    Affine,
    Assign,
    BinOp,
    Cond,
    Const,
    Expr,
    If,
    IndexExpr,
    Indirect,
    Kernel,
    Load,
    Loop,
    Param,
    Ref,
    Stmt,
    Unary,
)
from repro.compiler.program import KernelInstance

def _nan_min(a: float, b: float) -> float:
    """``np.minimum`` semantics: propagate NaN, first operand on ties.

    Python's builtin ``min`` returns the *non*-NaN operand whenever the
    NaN comes first (``min(nan, 1.0) == 1.0`` but ``min(1.0, nan) ==
    nan``), which silently un-poisons half the lanes a chaos campaign
    injects.  Both backends pin the IEEE-style propagating behaviour.
    """
    return a if (a < b or math.isnan(a)) else b


def _nan_max(a: float, b: float) -> float:
    """``np.maximum`` semantics: propagate NaN, first operand on ties."""
    return a if (a > b or math.isnan(a)) else b


_BINOPS = {
    "add": lambda a, b: a + b,
    "sub": lambda a, b: a - b,
    "mul": lambda a, b: a * b,
    "div": lambda a, b: a / b,
    "min": _nan_min,
    "max": _nan_max,
}

_COMPARES = {
    "lt": lambda a, b: a < b,
    "le": lambda a, b: a <= b,
    "gt": lambda a, b: a > b,
    "ge": lambda a, b: a >= b,
    "eq": lambda a, b: a == b,
    "ne": lambda a, b: a != b,
}


class Interpreter:
    """Evaluate kernels against a :class:`KernelInstance`."""

    def __init__(self, instance: KernelInstance, params: Mapping[str, float] | None = None):
        self.instance = instance
        self.params = dict(params or {})

    # -- indices ----------------------------------------------------------

    def eval_index(self, expr: IndexExpr, env: Mapping[str, int]) -> int:
        if isinstance(expr, Affine):
            val = expr.const
            for v, c in expr.terms:
                if v in env:
                    val += c * env[v]
                else:
                    val += c * self.instance.index_consts[v]
            return val
        if isinstance(expr, Indirect):
            idx = tuple(self.eval_index(e, env) for e in expr.idx)
            data = self.instance.data(expr.array.name)
            return int(expr.scale * data[idx] + expr.offset)
        raise TypeError(f"unknown index expr {expr!r}")

    def ref_index(self, ref: Ref, env: Mapping[str, int]) -> tuple[int, ...]:
        return tuple(self.eval_index(e, env) for e in ref.idx)

    # -- expressions -------------------------------------------------------

    def eval_expr(self, expr: Expr, env: Mapping[str, int]) -> float:
        if isinstance(expr, Const):
            return expr.value
        if isinstance(expr, Param):
            try:
                return self.params[expr.name]
            except KeyError:
                raise KeyError(f"parameter {expr.name!r} not provided") from None
        if isinstance(expr, Load):
            data = self.instance.data(expr.ref.array.name)
            return float(data[self.ref_index(expr.ref, env)])
        if isinstance(expr, BinOp):
            return _BINOPS[expr.op](
                self.eval_expr(expr.lhs, env), self.eval_expr(expr.rhs, env))
        if isinstance(expr, Unary):
            x = self.eval_expr(expr.x, env)
            if expr.op == "neg":
                return -x
            if expr.op == "abs":
                return abs(x)
            if expr.op == "sqrt":
                return math.sqrt(x)
        raise TypeError(f"unknown expression {expr!r}")

    def eval_cond(self, cond: Cond, env: Mapping[str, int]) -> bool:
        return _COMPARES[cond.op](
            self.eval_expr(cond.lhs, env), self.eval_expr(cond.rhs, env))

    # -- statements ----------------------------------------------------------

    def exec_stmt(self, stmt: Stmt, env: dict[str, int]) -> None:
        if isinstance(stmt, Assign):
            data = self.instance.ensure_data(stmt.ref.array)
            idx = self.ref_index(stmt.ref, env)
            val = self.eval_expr(stmt.expr, env)
            if stmt.accumulate:
                data[idx] += val
            else:
                data[idx] = val
        elif isinstance(stmt, Loop):
            for i in range(stmt.extent.value):
                env[stmt.var] = i
                for s in stmt.body:
                    self.exec_stmt(s, env)
            env.pop(stmt.var, None)
        elif isinstance(stmt, If):
            if self.eval_cond(stmt.cond, env):
                for s in stmt.body:
                    self.exec_stmt(s, env)
        else:  # pragma: no cover - defensive
            raise TypeError(f"cannot execute {stmt!r}")

    def run(self, kernel: Kernel) -> None:
        from repro.obs.tracer import span as _obs_span

        merged = {**kernel.param_dict(), **self.params}
        self.params = merged
        env: dict[str, int] = {}
        # IR-block span: interpretation is wall-clock work, so kernel
        # spans land on the harness timeline (no-op when tracing is off).
        with _obs_span(kernel.name, cat="ir", phase=kernel.phase,
                       backend="interpreter"):
            for s in kernel.body:
                self.exec_stmt(s, env)


def run_kernel(kernel: Kernel, instance: KernelInstance,
               params: Mapping[str, float] | None = None) -> None:
    """Convenience wrapper: interpret *kernel* over *instance*."""
    Interpreter(instance, params).run(kernel)
