"""The auto-vectorizer: legality + cost model + remarks.

Mirrors the workflow the paper follows with the EPI LLVM compiler: each
innermost loop is checked for legality (:mod:`repro.compiler.analysis`),
then a profitability estimate decides whether vector code is emitted.
Every decision is recorded as a *vectorization remark*, the same artifact
("LLVM vectorization remarks") the authors inspect to understand why
phase 2 was left scalar.

Cost-model behaviour reproduced from the paper:

* arithmetic loops must clear a profitability threshold, so at
  VECTOR_SIZE = 16 only the FP-dense phase-7 loops (and a couple of
  phase-3/6 loops) vectorize, while from VECTOR_SIZE = 64 on everything
  legal does (Table 4);
* pure data-movement loops bypass the threshold entirely (see
  ``CompilerFlags.copy_loops_bypass_cost_model``) -- this is what makes
  the compiler happily vectorize the 4-element phase-2 copy loops after
  VEC2, producing the AVL = 4 slowdown;
* loops whose only blocker is control flow but which contain vectorizable
  copies are *multi-versioned*: vector code exists in the binary but the
  runtime guard always picks the scalar version -- the phase-1 behaviour
  the authors diagnosed with the Vehave emulator.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from repro.compiler.analysis import Blocker, body_is_pure_copy, check_loop, refs_in_expr
from repro.compiler.flags import CompilerFlags
from repro.compiler.ir import (
    Assign,
    BinOp,
    Expr,
    If,
    Kernel,
    Load,
    Loop,
    Stmt,
    Unary,
)


@dataclass(frozen=True)
class BodyCost:
    """Per-iteration operation counts of a loop body."""

    unit_loads: int = 0
    strided_loads: int = 0
    indexed_loads: int = 0
    unit_stores: int = 0
    strided_stores: int = 0
    indexed_stores: int = 0
    fp_ops: int = 0        # after FMA contraction
    long_ops: int = 0      # div / sqrt

    @property
    def mem_ops(self) -> int:
        return (self.unit_loads + self.strided_loads + self.indexed_loads
                + self.unit_stores + self.strided_stores + self.indexed_stores)

    @property
    def total_vector_instrs(self) -> int:
        return self.mem_ops + self.fp_ops + self.long_ops


@dataclass(frozen=True)
class VecRemark:
    """One vectorization remark (what ``-Rpass=loop-vectorize`` prints)."""

    kernel: str
    phase: int
    loop_var: str
    status: str  # vectorized | blocked | unprofitable | multi_versioned | disabled
    reason: str = ""
    est_speedup: float = 0.0
    blockers: tuple[Blocker, ...] = ()

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        head = f"{self.kernel}/phase{self.phase} loop '{self.loop_var}': {self.status}"
        if self.reason:
            head += f" ({self.reason})"
        return head


@dataclass(frozen=True)
class OpMix:
    """FP-operation mix of an expression after FMA contraction."""

    fma: int = 0     # contracted multiply-adds (2 FLOPs each)
    plain: int = 0   # standalone add/sub/mul/min/max/neg/abs (1 FLOP)
    long: int = 0    # div / sqrt

    @property
    def fp_ops(self) -> int:
        return self.fma + self.plain

    @property
    def flops(self) -> int:
        return 2 * self.fma + self.plain + self.long


def expr_op_mix(expr: Expr, flags: CompilerFlags) -> OpMix:
    """Count the FP operations of *expr*, contracting mul+add into FMA
    when ``-ffp-contract=fast`` is in effect."""
    fma = plain = long_ops = 0

    def walk(e: Expr) -> None:
        nonlocal fma, plain, long_ops
        if isinstance(e, BinOp):
            if e.op == "div":
                long_ops += 1
                walk(e.lhs)
                walk(e.rhs)
                return
            if (
                flags.ffp_contract_fast
                and e.op in ("add", "sub")
                and isinstance(e.lhs, BinOp)
                and e.lhs.op == "mul"
            ):
                # a*b + c contracts to one FMA.
                fma += 1
                walk(e.lhs.lhs)
                walk(e.lhs.rhs)
                walk(e.rhs)
                return
            if (
                flags.ffp_contract_fast
                and e.op == "add"
                and isinstance(e.rhs, BinOp)
                and e.rhs.op == "mul"
            ):
                fma += 1
                walk(e.lhs)
                walk(e.rhs.lhs)
                walk(e.rhs.rhs)
                return
            plain += 1
            walk(e.lhs)
            walk(e.rhs)
        elif isinstance(e, Unary):
            if e.op == "sqrt":
                long_ops += 1
            elif e.op in ("neg", "abs"):
                plain += 1
            walk(e.x)

    walk(expr)
    return OpMix(fma=fma, plain=plain, long=long_ops)


def count_expr_ops(expr: Expr, flags: CompilerFlags) -> tuple[int, int]:
    """Return (fp_ops, long_ops) of *expr* after FMA contraction."""
    mix = expr_op_mix(expr, flags)
    return mix.fp_ops, mix.long


def body_cost(loop: Loop, flags: CompilerFlags) -> BodyCost:
    """Operation counts per iteration of *loop* along its own variable."""
    unit_l = strided_l = indexed_l = 0
    unit_s = strided_s = indexed_s = 0
    fp = long_ops = 0
    for stmt in loop.body:
        if not isinstance(stmt, Assign):
            continue
        f, lo = count_expr_ops(stmt.expr, flags)
        fp += f
        long_ops += lo
        if stmt.accumulate:
            fp += 1  # the read-modify-write add
        for lref in refs_in_expr(stmt.expr):
            s = lref.stride_along(loop.var)
            if s is None:
                indexed_l += 1
            elif s in (0, 1):
                unit_l += 1
            else:
                strided_l += 1
        if stmt.accumulate:
            # the target is also read.
            s = stmt.ref.stride_along(loop.var)
            if s is None:
                indexed_l += 1
            elif s in (0, 1):
                unit_l += 1
            else:
                strided_l += 1
        s = stmt.ref.stride_along(loop.var)
        if s is None:
            indexed_s += 1
        elif s in (0, 1):
            unit_s += 1
        else:
            strided_s += 1
    return BodyCost(
        unit_loads=unit_l, strided_loads=strided_l, indexed_loads=indexed_l,
        unit_stores=unit_s, strided_stores=strided_s, indexed_stores=indexed_s,
        fp_ops=fp, long_ops=long_ops,
    )


def estimate_speedup(loop: Loop, flags: CompilerFlags) -> float:
    """Cost-model estimate of vector/scalar speed-up for *loop*."""
    cost = body_cost(loop, flags)
    trip = loop.extent.value

    # Scalar estimate: address generation + access per memory op, FP ops
    # expose in-order FPU latency (3 cycles), long ops are expensive,
    # ~2 cycles loop control.  The relatively high scalar FP weight is
    # what makes FP-dense loops (phase 7) profitable even at trip 16.
    scalar_per_iter = (
        1.5 * (cost.unit_loads + cost.unit_stores)
        + 2.0 * (cost.strided_loads + cost.strided_stores)
        + 4.0 * (cost.indexed_loads + cost.indexed_stores)
        + 3.0 * cost.fp_ops
        + 3.0 * cost.long_ops
        + 2.0
    )
    scalar_total = scalar_per_iter * trip

    # Vector estimate, strip-mined by the assumed vector length.
    import math

    strips = max(1, math.ceil(trip / flags.assumed_vl))
    vl = trip / strips
    ovh = flags.assumed_issue_overhead
    per_strip = (
        (cost.unit_loads + cost.unit_stores) * (ovh + vl / flags.assumed_mem_rate)
        + (cost.strided_loads + cost.strided_stores) * (ovh + vl / 2.0)
        + (cost.indexed_loads + cost.indexed_stores)
        * (ovh + vl / flags.assumed_indexed_rate)
        + cost.fp_ops * (ovh + vl / flags.assumed_arith_rate)
        + cost.long_ops * (ovh + 4.0 * vl / flags.assumed_arith_rate)
        + 4.0  # vsetvl + strip control
    )
    vector_total = per_strip * strips + flags.assumed_loop_overhead
    if vector_total <= 0:
        return 0.0
    return scalar_total / vector_total


@dataclass
class VectorizationResult:
    kernel: Kernel
    remarks: list[VecRemark]

    def remark_for(self, loop_var: str) -> Optional[VecRemark]:
        for r in self.remarks:
            if r.loop_var == loop_var:
                return r
        return None

    @property
    def vectorized_vars(self) -> set[str]:
        return {r.loop_var for r in self.remarks if r.status == "vectorized"}


def vectorize_kernel(kernel: Kernel, flags: CompilerFlags) -> VectorizationResult:
    """Run the auto-vectorizer over *kernel*, returning the annotated
    kernel and the remark list."""
    remarks: list[VecRemark] = []

    def decide(loop: Loop, enclosing: tuple[Loop, ...]) -> Loop:
        if not flags.vectorize_enabled:
            remarks.append(VecRemark(
                kernel.name, kernel.phase, loop.var, "disabled",
                "auto-vectorization not enabled (-mepi/-O3 missing)",
            ))
            return loop
        blockers = tuple(check_loop(loop, enclosing, flags))
        if blockers:
            only_cf = all(b.code == "R2-control-flow" for b in blockers)
            has_copies = any(
                isinstance(s, Assign) and isinstance(s.expr, Load) and not s.accumulate
                for s in loop.body
            )
            if only_cf and has_copies:
                remarks.append(VecRemark(
                    kernel.name, kernel.phase, loop.var, "multi_versioned",
                    "vector code emitted for the straight-line part, but the "
                    "runtime guard always selects the scalar version because "
                    "the loop mixes non-vectorizable work",
                    blockers=blockers,
                ))
            else:
                remarks.append(VecRemark(
                    kernel.name, kernel.phase, loop.var, "blocked",
                    "; ".join(b.reason for b in blockers),
                    blockers=blockers,
                ))
            return loop
        if body_is_pure_copy(loop) and flags.copy_loops_bypass_cost_model:
            remarks.append(VecRemark(
                kernel.name, kernel.phase, loop.var, "vectorized",
                "data-movement loop (cost model bypassed)",
                est_speedup=estimate_speedup(loop, flags),
            ))
            return replace(loop, vectorized=True)
        speedup = estimate_speedup(loop, flags)
        threshold = (flags.small_trip_profit
                     if loop.extent.value < flags.small_trip_threshold
                     else flags.profit_threshold)
        if speedup >= threshold:
            remarks.append(VecRemark(
                kernel.name, kernel.phase, loop.var, "vectorized",
                f"estimated speed-up {speedup:.2f}x",
                est_speedup=speedup,
            ))
            return replace(loop, vectorized=True)
        remarks.append(VecRemark(
            kernel.name, kernel.phase, loop.var, "unprofitable",
            f"estimated speed-up {speedup:.2f}x below threshold "
            f"{threshold:.2f}",
            est_speedup=speedup,
        ))
        return loop

    def rewrite(stmts: tuple[Stmt, ...], enclosing: tuple[Loop, ...]) -> tuple[Stmt, ...]:
        out: list[Stmt] = []
        for s in stmts:
            if isinstance(s, Loop):
                has_inner = any(_contains_loop(b) for b in s.body)
                if has_inner:
                    new_body = rewrite(s.body, enclosing + (s,))
                    out.append(s.with_body(new_body))
                else:
                    out.append(decide(s, enclosing))
            elif isinstance(s, If):
                new_body = rewrite(s.body, enclosing)
                out.append(replace(s, body=new_body))
            else:
                out.append(s)
        return tuple(out)

    def _contains_loop(s: Stmt) -> bool:
        if isinstance(s, Loop):
            return True
        if isinstance(s, If):
            return any(_contains_loop(b) for b in s.body)
        return False

    new_body = rewrite(kernel.body, ())
    return VectorizationResult(replace(kernel, body=new_body), remarks)
