"""Compiler-flag model (the paper's Table 1).

The reproduction's compiler honours the flags that change *behaviour* in
the paper's study:

* ``-O3`` / ``-mepi`` gate the auto-vectorizer;
* ``-ffp-contract=fast`` enables FMA contraction (mul feeding add fuses
  into one ``vfmadd``);
* ``-vectorizer-use-vp-strided-load-store`` allows the vectorizer to emit
  strided vector memory accesses instead of refusing such loops;
* ``-disable-loop-idiom-memcpy`` / ``-disable-loop-idiom-memset`` keep
  pure data-movement loops visible to the vectorizer (instead of turning
  them into library calls), which is why the compiler will vectorize the
  phase-2 copy loops without applying the arithmetic profitability
  threshold;
* ``-combiner-store-merging=0`` avoids merging neighbouring scalar
  stores; we model it as a requirement for the above (store merging would
  hide the copy-loop structure).

The remaining fields parameterize the vectorizer's cost model (the real
compiler's cost model is target-specific; these are the knobs the
experiments calibrate).
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class CompilerFlags:
    opt_level: int = 3
    ffp_contract_fast: bool = True
    mepi: bool = True                       # enable the auto-vectorizer
    mcpu: str = "avispado"
    combiner_store_merging: bool = False    # =0 in Table 1
    vectorizer_use_vp_strided: bool = True
    disable_loop_idiom_memcpy: bool = True
    disable_loop_idiom_memset: bool = True

    # --- cost-model knobs (target-dependent in the real compiler) ---
    #: vector length the cost model assumes the target provides.
    assumed_vl: int = 256
    #: assumed fixed cost (cycles) of issuing one vector instruction.
    assumed_issue_overhead: float = 10.0
    #: assumed element throughput for unit-stride vector memory.
    assumed_mem_rate: float = 8.0
    #: assumed element throughput for gathers/scatters.
    assumed_indexed_rate: float = 1.0
    #: assumed element throughput for vector arithmetic.
    assumed_arith_rate: float = 8.0
    #: assumed fixed overhead of vectorizing a loop (runtime trip-count
    #: checks, prologue/epilogue); dominates at small trip counts and is
    #: part of why most loops stay scalar at VECTOR_SIZE = 16.
    assumed_loop_overhead: float = 100.0
    #: minimum estimated speed-up for vectorization to be profitable.
    profit_threshold: float = 1.2
    #: loops with fewer iterations than this face the *strict* bar below
    #: (the cost model distrusts its own estimate at tiny trip counts);
    #: this is why only the FP-densest loops vectorize at VECTOR_SIZE=16.
    small_trip_threshold: int = 24
    #: profitability bar for small-trip loops.
    small_trip_profit: float = 2.0

    @property
    def vectorize_enabled(self) -> bool:
        return self.mepi and self.opt_level >= 2

    @property
    def copy_loops_bypass_cost_model(self) -> bool:
        """Pure data-movement loops skip the profitability threshold.

        With the memcpy/memset idiom recognizers disabled (Table 1), copy
        loops reach the vectorizer, which treats memory movement as
        always worth vectorizing.  This is the mechanism behind both the
        VEC2 regression (AVL = 4 copies) and the IVEC2/VEC1 wins.
        """
        return self.disable_loop_idiom_memcpy and not self.combiner_store_merging

    def with_(self, **kw) -> "CompilerFlags":
        return replace(self, **kw)


#: flags used throughout the paper's study (Table 1).
PAPER_FLAGS = CompilerFlags()

#: vectorization disabled -- the scalar baseline build.
SCALAR_FLAGS = CompilerFlags(mepi=False)

#: Table-1 rendering (flag spelling -> description), for the T1 artifact.
TABLE1_ROWS: tuple[tuple[str, str], ...] = (
    ("-O3", "Set highest level of compiler optimization"),
    ("-ffp-contract=fast", "Allows floating-point expression contracting such as FMA"),
    ("-mepi", "Enable auto-vectorizer"),
    ("-mcpu=avispado", "Enable specific instruction code generator"),
    ("-combiner-store-merging=0", "Avoids inefficient combinations of memory operations"),
    ("-vectorizer-use-vp-strided-load-store",
     "Allows the vectorizer to use strided vector memory accesses"),
    ("-disable-loop-idiom-memcpy", "Disable transforming loops into memcpy"),
    ("-disable-loop-idiom-memset", "Disable transforming loops into memset"),
)
