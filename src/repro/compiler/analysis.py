"""Vectorization legality analysis.

Implements the legality rules of the modelled auto-vectorizer.  Each rule
corresponds to a real LLVM-vectorizer behaviour that drives part of the
paper's story:

* **runtime-dummy trip counts** (rule R1): the original phase-2 loop
  bound ``VECTOR_DIM`` is a dummy argument the compiler re-loads from
  memory at every iteration; stores inside the loop may alias that
  location, so neither hoisting nor vectorization is legal.  The VEC2
  refactor (constant bound) removes the blocker.
* **control flow** (rule R2): the modelled compiler does not if-convert,
  so the phase-1 mixed loop and the phase-8 valid-element check block
  vectorization.  The VEC1 loop fission isolates the straight-line half.
* **may-alias scatters** (rule R3): indexed stores whose index depends on
  the loop variable (the phase-8 global assembly) may carry
  intra-vector conflicts (two elements of a chunk sharing a mesh node),
  so they are rejected.
* **strided accesses** (rule R4): only legal when the Table-1 flag
  ``-vectorizer-use-vp-strided-load-store`` is given.
* **reductions** (rule R5): accumulation into a loop-invariant address is
  accepted only under ``-ffp-contract=fast`` (reassociation allowed).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.compiler.flags import CompilerFlags
from repro.compiler.ir import (
    Assign,
    BinOp,
    Expr,
    If,
    Indirect,
    Load,
    Loop,
    Ref,
    Stmt,
    Unary,
)


@dataclass(frozen=True)
class Blocker:
    """One reason a loop cannot be vectorized."""

    code: str
    reason: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.code}] {self.reason}"


def refs_in_expr(expr: Expr) -> Iterable[Ref]:
    """Yield every array reference loaded by *expr* (including index
    arrays of indirect references)."""
    if isinstance(expr, Load):
        yield expr.ref
        yield from _index_refs(expr.ref)
    elif isinstance(expr, BinOp):
        yield from refs_in_expr(expr.lhs)
        yield from refs_in_expr(expr.rhs)
    elif isinstance(expr, Unary):
        yield from refs_in_expr(expr.x)


def _index_refs(ref: Ref) -> Iterable[Ref]:
    for e in ref.idx:
        if isinstance(e, Indirect):
            yield Ref(e.array, e.idx)
            yield from _index_refs(Ref(e.array, e.idx))


def stmt_has_control_flow(stmts: tuple[Stmt, ...]) -> bool:
    return any(isinstance(s, If) for s in stmts)


def check_loop(
    loop: Loop,
    enclosing: tuple[Loop, ...],
    flags: CompilerFlags,
) -> list[Blocker]:
    """Return the legality blockers for vectorizing *loop* (innermost).

    ``enclosing`` are the loops around it, outermost first.
    """
    blockers: list[Blocker] = []

    # R1: runtime-dummy extents anywhere in the nest poison alias analysis.
    for lp in (*enclosing, loop):
        if lp.extent.kind == "runtime_dummy":
            name = lp.extent.name or lp.var
            blockers.append(Blocker(
                "R1-runtime-trip-count",
                f"trip count '{name}' of loop '{lp.var}' is a dummy argument "
                f"re-loaded from memory each iteration; stores in the loop may "
                f"alias it",
            ))
            break

    # R2: no if-conversion.
    if stmt_has_control_flow(loop.body):
        blockers.append(Blocker(
            "R2-control-flow",
            f"loop '{loop.var}' contains data-dependent control flow",
        ))

    for stmt in loop.body:
        if not isinstance(stmt, Assign):
            continue
        ref = stmt.ref
        stride = ref.stride_along(loop.var)

        # R3: scatter stores that may alias.
        if stride is None:
            blockers.append(Blocker(
                "R3-may-alias-scatter",
                f"store to '{ref.array.name}' is indexed through a runtime "
                f"index array along '{loop.var}'; elements may conflict",
            ))
            continue

        # R4: strided stores need the vp-strided flag.
        if stride not in (0, 1) and not flags.vectorizer_use_vp_strided:
            blockers.append(Blocker(
                "R4-strided-store",
                f"store to '{ref.array.name}' has stride {stride} along "
                f"'{loop.var}' and strided vector accesses are disabled",
            ))

        # R5: reductions (loop-invariant accumulate target).
        if stride == 0:
            if stmt.accumulate:
                if not flags.ffp_contract_fast:
                    blockers.append(Blocker(
                        "R5-reduction",
                        f"reduction into '{ref.array.name}' requires FP "
                        f"reassociation (-ffp-contract=fast)",
                    ))
            else:
                blockers.append(Blocker(
                    "R5-uniform-store",
                    f"store to loop-invariant address in '{ref.array.name}'",
                ))

        # R4 for loads.
        for lref in refs_in_expr(stmt.expr):
            lstride = lref.stride_along(loop.var)
            if lstride not in (None, 0, 1) and not flags.vectorizer_use_vp_strided:
                blockers.append(Blocker(
                    "R4-strided-load",
                    f"load from '{lref.array.name}' has stride {lstride} along "
                    f"'{loop.var}' and strided vector accesses are disabled",
                ))

    return blockers


def body_is_pure_copy(loop: Loop) -> bool:
    """True when the loop body only moves data (no FP arithmetic).

    Such loops are the ones the memcpy idiom recognizer would normally
    swallow; with the Table-1 flags they reach the vectorizer, which
    vectorizes them without consulting the arithmetic cost model.
    """
    for stmt in loop.body:
        if not isinstance(stmt, Assign):
            return False
        if stmt.accumulate:
            return False
        if not isinstance(stmt.expr, Load):
            return False
    return bool(loop.body)
