"""Compiled-program representation and address evaluation.

The code generator lowers a (vectorized) kernel into a list of *blocks*:

* :class:`ScalarBlock` -- a scalar loop nest with per-iteration
  instruction counts and the list of memory accesses each iteration
  performs;
* :class:`VectorBlock` -- a vectorized innermost loop (plus its enclosing
  scalar nest), holding the per-strip vector instruction sequence.

Blocks are *symbolic*: they reference IR :class:`~repro.compiler.ir.Ref`
objects rather than concrete addresses.  At execution time the machine
model pairs a block with a :class:`KernelInstance` -- the set of array
bindings (base addresses plus, for integer index arrays, the actual
data) -- and evaluates byte-address streams with NumPy.  This keeps the
simulator fast (the guides this repo follows: vectorize the inner loops
of *your own* code too) while staying line-accurate for the cache model:
the addresses fed to the cache are the real mesh-dependent addresses.

A note on ordering: within one block, the cache sees each access
descriptor's full stream in turn rather than a per-iteration interleave.
Working-set behaviour (the quantity the paper's Table 6 ties to phase
1/8 performance) is preserved; fine-grained interleaving effects are
below this model's resolution.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.isa.instructions import InstrSpec, ScalarOp
from repro.compiler.ir import Affine, Array, IndexExpr, Indirect, Ref

# ---------------------------------------------------------------------------
# Memory layout / kernel instance
# ---------------------------------------------------------------------------


class MemoryLayout:
    """Sequential allocator assigning base byte addresses to arrays."""

    def __init__(self, start: int = 0x10_0000, align: int = 64):
        self._next = start
        self._align = align
        self.bases: dict[str, int] = {}

    def place(self, array: Array) -> int:
        if array.name in self.bases:
            return self.bases[array.name]
        base = self._next
        self.bases[array.name] = base
        self._next = -(-(base + array.nbytes) // self._align) * self._align
        return base


@dataclass
class ArrayBinding:
    array: Array
    base_addr: int
    #: actual contents; required for integer index arrays (gather targets)
    #: and by the reference interpreter, optional for timing-only floats.
    data: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        if self.data is not None:
            if tuple(self.data.shape) != self.array.shape:
                raise ValueError(
                    f"{self.array.name}: data shape {self.data.shape} != "
                    f"declared {self.array.shape}"
                )


class KernelInstance:
    """Array bindings + scalar parameters for one kernel invocation."""

    def __init__(self, params: Optional[dict[str, float]] = None,
                 layout: Optional[MemoryLayout] = None,
                 index_consts: Optional[dict[str, int]] = None):
        self.bindings: dict[str, ArrayBinding] = {}
        self.params: dict[str, float] = dict(params or {})
        self.layout = layout or MemoryLayout()
        #: named integer constants usable in Affine index terms (e.g. the
        #: chunk's base element id); lets one compiled kernel serve every
        #: chunk of the mesh.
        self.index_consts: dict[str, int] = dict(index_consts or {})

    def bind(self, array: Array, data: Optional[np.ndarray] = None) -> ArrayBinding:
        base = self.layout.place(array)
        if data is not None:
            data = np.asarray(data)
            if data.dtype != np.dtype("int64" if array.dtype == "i8" else "float64"):
                data = data.astype("int64" if array.dtype == "i8" else "float64")
        binding = ArrayBinding(array, base, data)
        self.bindings[array.name] = binding
        return binding

    def binding(self, name: str) -> ArrayBinding:
        try:
            return self.bindings[name]
        except KeyError:
            raise KeyError(f"array {name!r} is not bound in this instance") from None

    def data(self, name: str) -> np.ndarray:
        b = self.binding(name)
        if b.data is None:
            raise ValueError(f"array {name!r} has no data bound")
        return b.data

    def ensure_data(self, array: Array) -> np.ndarray:
        """Bind zero-initialized data for *array* if none exists yet."""
        b = self.bindings.get(array.name)
        if b is None:
            b = self.bind(array)
        if b.data is None:
            dtype = "int64" if array.dtype == "i8" else "float64"
            b.data = np.zeros(array.shape, dtype=dtype)
        return b.data


# ---------------------------------------------------------------------------
# Address evaluation
# ---------------------------------------------------------------------------


def eval_index(expr: IndexExpr, env: dict[str, np.ndarray],
               instance: KernelInstance) -> np.ndarray:
    """Evaluate one index expression over a grid environment.

    ``env`` maps loop variables to broadcast-compatible integer arrays;
    the result broadcasts over them.
    """
    if isinstance(expr, Affine):
        out: np.ndarray | int = expr.const
        for v, c in expr.terms:
            if v in env:
                out = out + c * env[v]
            elif v in instance.index_consts:
                out = out + c * instance.index_consts[v]
            else:
                raise KeyError(f"loop variable {v!r} not bound in environment")
        return np.asarray(out, dtype=np.int64)
    if isinstance(expr, Indirect):
        idx = tuple(eval_index(e, env, instance) for e in expr.idx)
        data = instance.data(expr.array.name)
        vals = data[tuple(np.broadcast_arrays(*idx))] if len(idx) > 1 else data[idx[0]]
        return np.asarray(expr.scale * vals + expr.offset, dtype=np.int64)
    raise TypeError(f"unknown index expression {expr!r}")


def element_offsets(ref: Ref, env: dict[str, np.ndarray],
                    instance: KernelInstance) -> np.ndarray:
    """Flat element offsets of *ref* over the environment grid
    (column-major linearization)."""
    off: np.ndarray | int = 0
    for stride, e in zip(ref.array.strides_elems, ref.idx):
        off = off + stride * eval_index(e, env, instance)
    return np.asarray(off, dtype=np.int64)


def byte_addresses(ref: Ref, env: dict[str, np.ndarray],
                   instance: KernelInstance) -> np.ndarray:
    """Flat byte addresses of *ref* over the environment grid."""
    base = instance.binding(ref.array.name).base_addr
    return base + ref.array.itemsize * element_offsets(ref, env, instance)


def loop_grid(loop_vars: tuple[str, ...], loop_extents: tuple[int, ...],
              extra: Optional[dict[str, np.ndarray]] = None) -> dict[str, np.ndarray]:
    """Build the meshgrid environment of a loop nest.

    Axes are ordered outermost-first, so flattening results in iteration
    order (innermost fastest).
    """
    env: dict[str, np.ndarray] = {}
    n = len(loop_vars)
    for axis, (v, e) in enumerate(zip(loop_vars, loop_extents)):
        shape = [1] * n
        shape[axis] = e
        env[v] = np.arange(e, dtype=np.int64).reshape(shape)
    if extra:
        env.update(extra)
    return env


# ---------------------------------------------------------------------------
# Blocks
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class AccessDesc:
    """One memory access per (innermost) iteration of a block."""

    ref: Ref
    is_store: bool
    #: fraction of iterations that perform this access (If guards).
    weight: float = 1.0


@dataclass(frozen=True)
class ScalarBlock:
    """A scalar loop nest with homogeneous iterations."""

    phase: int
    loop_vars: tuple[str, ...]
    loop_extents: tuple[int, ...]
    #: scalar instruction counts per innermost iteration, by category.
    counts: tuple[tuple[ScalarOp, float], ...]
    flops_per_iter: float
    accesses: tuple[AccessDesc, ...] = ()
    label: str = ""

    @property
    def trips(self) -> int:
        n = 1
        for e in self.loop_extents:
            n *= e
        return n

    def counts_dict(self) -> dict[ScalarOp, float]:
        return dict(self.counts)


@dataclass(frozen=True)
class VectorInstrDesc:
    """One vector instruction emitted per strip."""

    spec: InstrSpec
    access: Optional[AccessDesc] = None

    def __post_init__(self) -> None:
        if self.spec.is_memory and self.access is None:
            raise ValueError(f"{self.spec.opcode}: vector memory instr needs an access")


@dataclass(frozen=True)
class VectorBlock:
    """A vectorized innermost loop under an enclosing scalar nest."""

    phase: int
    loop_vars: tuple[str, ...]       # enclosing scalar loops, outermost first
    loop_extents: tuple[int, ...]
    vec_var: str
    total_trip: int                  # logical trip count of the vector loop
    instrs: tuple[VectorInstrDesc, ...]
    #: scalar bookkeeping instructions per strip (loop control, address
    #: generation feeding the vector unit).
    scalar_counts_per_strip: tuple[tuple[ScalarOp, float], ...] = ()
    label: str = ""

    @property
    def repeats(self) -> int:
        n = 1
        for e in self.loop_extents:
            n *= e
        return n

    def scalar_counts_dict(self) -> dict[ScalarOp, float]:
        return dict(self.scalar_counts_per_strip)


Block = ScalarBlock | VectorBlock


@dataclass
class CompiledKernel:
    """The lowered form of one phase kernel."""

    name: str
    phase: int
    blocks: list[Block] = field(default_factory=list)

    def vector_blocks(self) -> list[VectorBlock]:
        return [b for b in self.blocks if isinstance(b, VectorBlock)]

    def scalar_blocks(self) -> list[ScalarBlock]:
        return [b for b in self.blocks if isinstance(b, ScalarBlock)]


# ---------------------------------------------------------------------------
# The multi-stage compilation driver
# ---------------------------------------------------------------------------


@dataclass
class CompileResult:
    """Everything the pipeline produced for one program: the baseline
    kernels, the transformed kernels, the transform and vectorization
    remarks, and the lowered machine programs."""

    baseline: list          # list[Kernel] before any pass ran
    kernels: list           # list[Kernel] after the pass pipeline
    transform_remarks: list  # list[TransformRemark]
    vec_remarks: list       # list[VecRemark]
    compiled: list[CompiledKernel] = field(default_factory=list)


def compile_kernels(kernels, flags, pipeline=None) -> CompileResult:
    """Run the full compilation: transform -> vectorize -> lower.

    *pipeline* is a :class:`~repro.compiler.transforms.PassPipeline`
    (``None`` means no transformations -- baseline straight to the
    vectorizer).  Imports are deferred: this module sits below codegen
    and the vectorizer in the import graph.
    """
    from repro.compiler.codegen import lower_kernel
    from repro.compiler.transforms import PassPipeline
    from repro.compiler.vectorizer import vectorize_kernel

    baseline = list(kernels)
    if pipeline is None:
        pipeline = PassPipeline()
    transformed, transform_remarks = pipeline.run_all(baseline)
    result = CompileResult(baseline=baseline, kernels=transformed,
                           transform_remarks=transform_remarks,
                           vec_remarks=[])
    for kern in transformed:
        vec = vectorize_kernel(kern, flags)
        result.vec_remarks.extend(vec.remarks)
        result.compiled.append(lower_kernel(vec.kernel, flags))
    return result
