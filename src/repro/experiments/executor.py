"""Parallel, fault-tolerant, chaos-hardened sweep executor.

Every paper artifact is a projection of the same ~50 simulated runs, so
the sweep engine is the hot path of the whole reproduction.  This module
industrializes it:

* :class:`ExecutionPlan` — an explicit, deduplicated list of
  :class:`~repro.experiments.config.RunConfig`, with factories for the
  paper's standard sweep;
* :func:`execute_plan` — partitions out already-cached runs, fans the
  remainder across a ``ProcessPoolExecutor`` (workers rebuild mesh +
  mini-app from the pickled config), applies a per-run timeout with
  bounded retry and exponential backoff (deterministic jitter), survives
  a broken pool by falling back to in-process execution **without**
  resetting retry budgets, and streams structured :class:`RunEvent`
  progress;
* a versioned disk cache with **atomic, durable** writes (tmp file +
  fsync + ``os.replace`` + directory fsync), a content digest, and
  corruption recovery: a truncated, bit-flipped or malformed
  ``.repro_cache/*.json`` entry is discarded and re-simulated instead of
  crashing the command;
* optional **validation** (``validate=True``): every payload — freshly
  simulated or recalled from cache — is checked against the counter
  invariants of :mod:`repro.validation.invariants`; configs that
  repeatedly fail validation are quarantined rather than retried
  forever, and FLOP conservation is checked across the optimization
  ladder once the sweep completes.  Verdicts are recorded in the cached
  payload (``__validation__``) and surfaced on :class:`ExecutionResult`;
* an optional **journal** (``journal=<path>``): an append-only, fsynced
  checkpoint (:mod:`repro.experiments.journal`) that lets an interrupted
  sweep resume without re-running completed work and without granting
  crashed configs a fresh retry budget.

:class:`~repro.experiments.runner.Session` is a thin façade over this
module; nothing here depends on ``Session``, so workers import cheaply.
"""

from __future__ import annotations

import hashlib
import json
import os
import sys
import tempfile
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable, Optional, Sequence

from repro.experiments.config import (
    FULL_MESH,
    PLATFORMS,
    VECTOR_SIZES,
    MeshSpec,
    RunConfig,
    resolve_mesh,
)
from repro.experiments.journal import SweepJournal, replay_journal
from repro.metrics.counters import (
    RunCounters,
    counters_from_dict,
    counters_to_dict,
)
from repro.obs.metrics import active as _metrics_active
from repro.obs.tracer import active as _obs_active

#: bump when the timing model OR the cache payload schema changes so
#: stale disk caches are ignored (see EXPERIMENTS.md, "cache versioning").
MODEL_VERSION = "6"

#: optimization ladder rungs exercised by the standard sweep (paper order).
_SWEEP_OPTS: tuple[str, ...] = ("vanilla", "vec2", "ivec2", "vec1")


# ---------------------------------------------------------------------------
# Plans
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ExecutionPlan:
    """An ordered, duplicate-free list of run configurations."""

    configs: tuple[RunConfig, ...] = ()

    @classmethod
    def from_configs(cls, configs: Iterable[RunConfig]) -> "ExecutionPlan":
        """Build a plan, dropping duplicate configs but keeping order."""
        seen: set[str] = set()
        out: list[RunConfig] = []
        for cfg in configs:
            if cfg.key() not in seen:
                seen.add(cfg.key())
                out.append(cfg)
        return cls(configs=tuple(out))

    @classmethod
    def standard(cls, mesh: MeshSpec | None = None) -> "ExecutionPlan":
        """The paper's full evaluation sweep (~50 runs): the scalar
        baseline plus every optimization rung over every VECTOR_SIZE on
        the RISC-V prototype, and the vanilla/vec1 pair on the other two
        platforms (Figures 12/13)."""
        dims = resolve_mesh(mesh)
        configs: list[RunConfig] = [
            RunConfig(opt="scalar", vector_size=16, mesh_dims=dims)]
        for opt in _SWEEP_OPTS:
            for vs in VECTOR_SIZES:
                configs.append(RunConfig(opt=opt, vector_size=vs, mesh_dims=dims))
        for machine in PLATFORMS:
            if machine == "riscv_vec":
                continue  # already covered by the ladder above
            for opt in ("vanilla", "vec1"):
                for vs in VECTOR_SIZES:
                    configs.append(RunConfig(machine=machine, opt=opt,
                                             vector_size=vs, mesh_dims=dims))
        # one end-to-end assemble+solve run (phases 1-12) per sweep.
        configs.append(RunConfig(opt="vanilla", vector_size=240,
                                 mesh_dims=dims, solve=True))
        return cls.from_configs(configs)

    @classmethod
    def smoke(cls, mesh: MeshSpec | None = None) -> "ExecutionPlan":
        """A four-run plan for quick benchmarking / CI smoke tests:
        the historic three assembly runs plus one assemble+solve run
        (phases 1-12, its own ``-solve`` key)."""
        dims = resolve_mesh(mesh)
        return cls.from_configs([
            RunConfig(opt="scalar", vector_size=16, mesh_dims=dims),
            RunConfig(opt="vanilla", vector_size=16, mesh_dims=dims),
            RunConfig(opt="vanilla", vector_size=64, mesh_dims=dims),
            RunConfig(opt="vanilla", vector_size=16, mesh_dims=dims,
                      solve=True),
        ])

    @classmethod
    def ladder(cls, mesh: MeshSpec | None = None,
               vector_sizes: Sequence[int] = (16, 64)) -> "ExecutionPlan":
        """The scalar baseline plus the full optimization ladder at a
        couple of VECTOR_SIZEs — the chaos campaign's workload: small
        enough to re-run many times, rich enough to exercise the
        cross-rung FLOP-conservation check."""
        dims = resolve_mesh(mesh)
        configs: list[RunConfig] = [
            RunConfig(opt="scalar", vector_size=min(vector_sizes),
                      mesh_dims=dims)]
        for opt in _SWEEP_OPTS:
            for vs in vector_sizes:
                configs.append(RunConfig(opt=opt, vector_size=vs,
                                         mesh_dims=dims))
        return cls.from_configs(configs)

    def __len__(self) -> int:
        return len(self.configs)

    def __iter__(self):
        return iter(self.configs)


# ---------------------------------------------------------------------------
# Progress events and result records
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RunEvent:
    """One structured progress event streamed by :func:`execute_plan`.

    ``kind`` is one of ``cache_hit``, ``cache_corrupt`` (a damaged disk
    entry was discarded before re-simulation — degradation made
    observable), ``start``, ``done``, ``retry``, ``timeout``, ``failed``,
    ``invalid`` (validation verdict rejected a payload), ``quarantined``
    (repeated validation failure).

    Every event also carries a live utilization snapshot -- ``queued``
    (configs still waiting for a worker) and the running cache
    hit/miss tallies -- so a ``--jobs`` sweep's progress stream shows
    throughput and cache effectiveness, not just completions.
    """

    kind: str
    key: str
    attempt: int = 1
    wall_s: float = 0.0
    error: str = ""
    #: configs still queued (excludes in-flight pool work).
    queued: int = 0
    #: runs recalled from the disk cache so far.
    cache_hits: int = 0
    #: runs simulated from scratch so far (cache misses that completed).
    cache_misses: int = 0


#: progress callback signature.
EventCallback = Callable[[RunEvent], None]


@dataclass
class ExecutionStats:
    """Aggregate accounting for one :func:`execute_plan` call."""

    cache_hits: int = 0
    simulated: int = 0
    retries: int = 0
    failures: int = 0
    validation_failures: int = 0
    quarantined: int = 0
    #: corrupt disk-cache entries discarded (and re-simulated) this call;
    #: each one also emitted a ``cache_corrupt`` event.
    cache_corrupt: int = 0
    wall_s: float = 0.0


@dataclass
class ExecutionResult:
    """Counters by cache key, plus execution statistics and failures."""

    runs: dict[str, RunCounters] = field(default_factory=dict)
    stats: ExecutionStats = field(default_factory=ExecutionStats)
    #: cache key -> last error message, for configs that exhausted retries.
    failed: dict[str, str] = field(default_factory=dict)
    #: cache key -> reason, for configs quarantined after repeated
    #: validation failures (subset of ``failed``).
    quarantined: dict[str, str] = field(default_factory=dict)
    #: cache key -> validation verdict (``{"ok": bool, "violations":
    #: [...]}``), populated when ``validate=True``.
    validation: dict[str, dict] = field(default_factory=dict)

    def counters_for(self, cfg: RunConfig) -> RunCounters:
        return self.runs[cfg.key()]

    def invalid_keys(self) -> list[str]:
        """Keys whose validation verdict is not ok."""
        return sorted(k for k, v in self.validation.items() if not v["ok"])


class SweepError(RuntimeError):
    """Raised when a plan finishes with permanently-failed runs."""

    def __init__(self, failed: dict[str, str]):
        self.failed = dict(failed)
        detail = "; ".join(f"{k}: {v}" for k, v in self.failed.items())
        super().__init__(f"{len(self.failed)} run(s) failed permanently: {detail}")


# ---------------------------------------------------------------------------
# Versioned disk cache: atomic durable writes, digests, corruption recovery
# ---------------------------------------------------------------------------


def cache_path(cache_dir: str | os.PathLike, cfg: RunConfig) -> Path:
    """Location of one config's cached counters."""
    return Path(cache_dir) / f"v{MODEL_VERSION}-{cfg.key()}.json"


def payload_digest(payload: dict) -> str:
    """Content digest over the counter data (reserved ``__*`` metadata
    keys excluded, so verdict annotations don't perturb it)."""
    body = {k: v for k, v in payload.items() if not k.startswith("__")}
    return hashlib.sha256(
        json.dumps(body, sort_keys=True).encode()).hexdigest()


def load_cached_entry(cache_dir: str | os.PathLike,
                      cfg: RunConfig) -> tuple[Optional[RunCounters], str]:
    """Read one cached run, reporting *why* a miss is a miss.

    Returns ``(counters, "")`` on a hit, ``(None, "")`` for a simply
    missing entry, and ``(None, reason)`` when a corrupt entry —
    truncated write, bad JSON, wrong schema, missing or mismatching
    content digest, non-finite counter values — was discarded.  The
    corrupt entry is deleted so the caller re-simulates; the non-empty
    reason lets the executor surface the repair as a ``cache_corrupt``
    event instead of healing silently.
    """
    path = cache_path(cache_dir, cfg)
    try:
        text = path.read_text()
    except FileNotFoundError:
        return None, ""
    except OSError:
        return None, ""
    try:
        data = json.loads(text)
        if not isinstance(data, dict):
            raise TypeError("counter payload must be a JSON object")
        if data.get("__digest__") != payload_digest(data):
            raise ValueError("content digest mismatch")
        return counters_from_dict(data), ""
    except (json.JSONDecodeError, KeyError, TypeError, ValueError) as exc:
        try:
            path.unlink()
        except OSError:  # pragma: no cover - best-effort cleanup
            pass
        return None, f"discarded corrupt cache entry: {exc!r}"


def load_cached(cache_dir: str | os.PathLike, cfg: RunConfig) -> Optional[RunCounters]:
    """Read one cached run; a missing *or corrupt* entry returns ``None``
    (the corrupt entry is deleted).  See :func:`load_cached_entry` for
    the corruption-reporting variant the executor uses — a damaged cache
    must never crash a command *or* leak silently into artifacts.
    """
    return load_cached_entry(cache_dir, cfg)[0]


def _dump_payload(payload: dict) -> str:
    """Canonical cache text: key-sorted so identical counters serialize
    to identical bytes regardless of which process produced them."""
    return json.dumps(payload, sort_keys=True)


def store_payload(cache_dir: str | os.PathLike, cfg: RunConfig, payload: dict) -> Path:
    """Atomically and durably persist one run's counter dict.

    The tmp file is fsynced before ``os.replace`` and the directory is
    fsynced after, so a crash at any instant leaves either the old entry
    or the complete new one — never an empty or torn file under the
    final name.  A content digest is stamped into the payload so silent
    on-disk corruption (bit rot, partial overwrite) is detectable at
    load time.
    """
    target = cache_path(cache_dir, cfg)
    target.parent.mkdir(parents=True, exist_ok=True)
    payload = dict(payload)
    payload["__digest__"] = payload_digest(payload)
    fd, tmp = tempfile.mkstemp(dir=target.parent, prefix=target.name, suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as fh:
            fh.write(_dump_payload(payload))
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, target)
        try:
            dir_fd = os.open(target.parent, os.O_RDONLY)
            try:
                os.fsync(dir_fd)
            finally:
                os.close(dir_fd)
        except OSError:  # pragma: no cover - platform without dir fsync
            pass
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return target


def store_cached(cache_dir: str | os.PathLike, cfg: RunConfig,
                 run: RunCounters) -> Path:
    """Atomically persist one run's :class:`RunCounters`."""
    return store_payload(cache_dir, cfg, counters_to_dict(run))


# ---------------------------------------------------------------------------
# Simulation workers
# ---------------------------------------------------------------------------


def build_miniapp(cfg: RunConfig):
    """Construct the compiled mini-app a config describes."""
    from repro.cfd.assembly import MiniApp
    from repro.cfd.mesh import box_mesh

    return MiniApp(box_mesh(*cfg.mesh_dims), cfg.vector_size, cfg.opt,
                   field_seed=cfg.field_seed, passes=cfg.passes)


def simulate_run_with_solve(cfg: RunConfig) -> "tuple[RunCounters, dict | None]":
    """Simulate one configuration from scratch (no caches involved).

    Returns ``(counters, solve_info)``: with ``cfg.solve`` the machine
    also times the Krylov solver kernels (phases 9-12) after the
    assembly sweep and ``solve_info`` carries the convergence record;
    otherwise ``solve_info`` is ``None``.
    """
    from repro.machine.cpu import Machine
    from repro.machine.machines import get_machine

    app = build_miniapp(cfg)
    params = get_machine(cfg.machine)
    machine = Machine(params, cache_enabled=cfg.cache_enabled)
    if cfg.solve:
        return app.run_timed_solve(params, machine=machine)
    return app.run_timed(params, machine=machine), None


def simulate_run(cfg: RunConfig) -> RunCounters:
    """Simulate one configuration from scratch (no caches involved)."""
    run, _ = simulate_run_with_solve(cfg)
    return run


def simulate_to_dict(cfg: RunConfig) -> dict:
    """Pool worker: simulate and return plain data (cheap to pickle).

    ``solve=True`` payloads carry the convergence record under the
    reserved ``"__solve__"`` key -- skipped by ``counters_from_dict``
    and excluded from ``payload_digest``, so counter parsing and cache
    digests are unchanged, while ``repro jobs --results`` / ``repro
    report`` can surface iterations, residual and the converged flag.
    """
    run, info = simulate_run_with_solve(cfg)
    payload = counters_to_dict(run)
    if info is not None:
        payload["__solve__"] = info
    return payload


#: worker callable signature: RunConfig -> counter dict.
Worker = Callable[[RunConfig], dict]


# ---------------------------------------------------------------------------
# The executor
# ---------------------------------------------------------------------------


def default_jobs() -> int:
    """Worker count used for ``--jobs 0`` / unspecified parallelism."""
    return max(1, os.cpu_count() or 1)


def backoff_delay(base_s: float, key: str, attempt: int) -> float:
    """Exponential backoff with *deterministic* jitter.

    The jitter fraction is derived from a hash of (key, attempt), so a
    re-run of the same sweep produces the same schedule — chaos
    campaigns stay reproducible — while distinct configs still spread
    out instead of thundering in lockstep.
    """
    if base_s <= 0:
        return 0.0
    digest = hashlib.sha256(f"{key}#{attempt}".encode()).digest()
    frac = int.from_bytes(digest[:8], "big") / 2.0 ** 64
    return base_s * (2.0 ** (attempt - 1)) * (0.5 + frac)


def execute_plan(plan: ExecutionPlan | Sequence[RunConfig], *,
                 cache_dir: str | os.PathLike = ".repro_cache",
                 jobs: int = 1,
                 use_disk: bool = True,
                 timeout_s: Optional[float] = None,
                 retries: int = 1,
                 backoff_s: float = 0.0,
                 on_event: Optional[EventCallback] = None,
                 worker: Worker = simulate_to_dict,
                 validate: bool = False,
                 quarantine_after: int = 2,
                 journal: Optional[str | os.PathLike] = None) -> ExecutionResult:
    """Execute every config in *plan*, returning counters keyed by
    :meth:`RunConfig.key`.

    Already-cached runs are partitioned out first (``cache_hit`` events);
    the remainder runs on a process pool of *jobs* workers (``jobs <= 1``
    runs in-process).  Each run gets ``1 + retries`` attempts — with
    ``backoff_s``-scaled exponential backoff between them — and, when
    *timeout_s* is set, a per-attempt wall-clock budget.  Runs that
    exhaust their attempts are reported in ``result.failed`` rather than
    raising, so one bad configuration cannot sink a 50-run sweep.

    With ``validate=True`` every payload is checked against the counter
    invariants; a failing payload consumes an attempt, and after
    ``quarantine_after`` validation failures the config is quarantined
    (no further retries).  FLOP conservation across the optimization
    ladder is checked once all runs are in; verdicts land in
    ``result.validation``.

    With ``journal=<path>`` the sweep checkpoints its progress to an
    append-only fsynced file; a subsequent call with the same journal
    resumes — completed runs are recalled from the cache, permanently
    failed and quarantined configs are carried over without re-running,
    and interrupted configs keep their consumed retry budget.
    """
    if isinstance(plan, ExecutionPlan):
        configs = list(plan.configs)
    else:
        configs = list(ExecutionPlan.from_configs(plan).configs)

    result = ExecutionResult()
    t_start = time.monotonic()
    tracer = _obs_active()
    registry = _metrics_active()

    jstate = replay_journal(journal) if journal is not None else None
    jwriter = SweepJournal(journal) if journal is not None else None
    if jwriter is not None:
        jwriter.record("sweep_start", plan=len(configs),
                       model=MODEL_VERSION)

    def jrecord(ev: str, **fields) -> None:
        if jwriter is not None:
            jwriter.record(ev, **fields)

    #: work queue, entries: (cfg, attempt, ready_at) -- declared before
    #: ``emit`` so every event can snapshot the live queue depth.
    todo: deque = deque()

    def emit(kind: str, key: str, attempt: int = 1, wall_s: float = 0.0,
             error: str = "") -> None:
        """Deliver one progress event; a crashing callback is an
        observability problem, never a reason to abort the sweep."""
        if tracer is not None:
            tracer.event(kind, cat="executor", key=key, attempt=attempt,
                         error=error)
            tracer.counter("queue depth", len(todo))
        if registry is not None:
            registry.counter("executor_events_total", kind=kind).inc()
            registry.gauge("executor_queue_depth").set(len(todo))
        if on_event is None:
            return
        try:
            on_event(RunEvent(kind=kind, key=key, attempt=attempt,
                              wall_s=wall_s, error=error,
                              queued=len(todo),
                              cache_hits=result.stats.cache_hits,
                              cache_misses=result.stats.simulated))
        except Exception as exc:
            print(f"[repro] progress callback failed on {kind} {key}: "
                  f"{exc!r}", file=sys.stderr, flush=True)

    if validate:
        from repro.validation.invariants import check_flop_ladder, validate_run
    cfg_by_key = {cfg.key(): cfg for cfg in configs}

    def check_payload(cfg: RunConfig, counters: RunCounters) -> list[str]:
        return validate_run(cfg, counters) if validate else []

    if tracer is not None:
        tracer.event("sweep start", cat="executor", configs=len(configs),
                     jobs=jobs)

    # -- partition: cache hits, journalled failures, remaining work --------
    for cfg in configs:
        key = cfg.key()
        cached, corrupt = (load_cached_entry(cache_dir, cfg) if use_disk
                           else (None, ""))
        if corrupt:
            # the entry was already unlinked; surface the repair so
            # degradation is observable, then fall through to re-simulate.
            result.stats.cache_corrupt += 1
            emit("cache_corrupt", key, error=corrupt)
        if cached is not None and validate:
            violations = check_payload(cfg, cached)
            if violations:
                # corrupted-but-parseable entry: discard and re-simulate.
                try:
                    cache_path(cache_dir, cfg).unlink()
                except OSError:  # pragma: no cover - best-effort cleanup
                    pass
                emit("invalid", key, error="; ".join(violations))
                result.stats.validation_failures += 1
                cached = None
        if cached is not None:
            result.runs[key] = cached
            result.stats.cache_hits += 1
            if validate:
                result.validation[key] = {"ok": True, "violations": []}
            emit("cache_hit", key)
            continue
        if jstate is not None and key in jstate.quarantined:
            error = f"quarantined in journalled sweep: {jstate.quarantined[key]}"
            result.failed[key] = error
            result.quarantined[key] = error
            result.stats.failures += 1
            result.stats.quarantined += 1
            emit("quarantined", key, error=error)
            continue
        if jstate is not None and key in jstate.failed:
            error = f"failed in journalled sweep: {jstate.failed[key]}"
            result.failed[key] = error
            result.stats.failures += 1
            emit("failed", key, error=error)
            continue
        attempt = 1 + (jstate.fail_attempts.get(key, 0)
                       if jstate is not None else 0)
        if attempt > retries + 1:
            error = "retry budget exhausted in interrupted sweep"
            result.failed[key] = error
            result.stats.failures += 1
            jrecord("failed", key=key, error=error)
            emit("failed", key, attempt=attempt - 1, error=error)
            continue
        todo.append((cfg, attempt, 0.0))

    validation_fails: dict[str, int] = {}

    def quarantine(cfg: RunConfig, attempt: int, error: str) -> None:
        key = cfg.key()
        result.failed[key] = error
        result.quarantined[key] = error
        result.stats.failures += 1
        result.stats.quarantined += 1
        jrecord("quarantined", key=key, error=error)
        emit("quarantined", key, attempt=attempt, error=error)

    def handle_failure(cfg: RunConfig, attempt: int, error: str,
                       queue: deque, from_validation: bool = False) -> None:
        key = cfg.key()
        if from_validation:
            validation_fails[key] = validation_fails.get(key, 0) + 1
            if validation_fails[key] >= quarantine_after:
                quarantine(cfg, attempt,
                           f"quarantined after {validation_fails[key]} "
                           f"validation failure(s): {error}")
                return
        if attempt <= retries:
            result.stats.retries += 1
            jrecord("fail_attempt", key=key, attempt=attempt, error=error)
            emit("retry", key, attempt=attempt, error=error)
            ready_at = time.monotonic() + backoff_delay(backoff_s, key, attempt)
            queue.append((cfg, attempt + 1, ready_at))
        else:
            result.stats.failures += 1
            result.failed[key] = error
            jrecord("failed", key=key, error=error)
            emit("failed", key, attempt=attempt, error=error)

    def record(cfg: RunConfig, payload: dict, attempt: int, wall_s: float,
               queue: deque) -> None:
        key = cfg.key()
        try:
            counters = counters_from_dict(payload)
        except (KeyError, TypeError, ValueError) as exc:
            # unusable payload (e.g. NaN-poisoned counters): a detected
            # fault, charged like a validation failure.
            result.stats.validation_failures += 1
            emit("invalid", key, attempt=attempt, error=repr(exc))
            handle_failure(cfg, attempt, f"unusable payload: {exc!r}",
                           queue, from_validation=True)
            return
        violations = check_payload(cfg, counters)
        if violations:
            error = "validation failed: " + "; ".join(violations)
            result.stats.validation_failures += 1
            result.validation[key] = {"ok": False, "violations": violations}
            emit("invalid", key, attempt=attempt, error=error)
            handle_failure(cfg, attempt, error, queue, from_validation=True)
            return
        result.runs[key] = counters
        result.stats.simulated += 1
        if validate:
            result.validation[key] = {"ok": True, "violations": []}
        if use_disk:
            if validate:
                payload = {**payload, "__validation__": {"ok": True}}
            store_payload(cache_dir, cfg, payload)
        jrecord("done", key=key)
        emit("done", key, attempt=attempt, wall_s=wall_s)

    try:
        if todo:
            if jobs <= 1:
                # in-process: the ambient tracer (if any) observes the
                # simulated machines directly through contextvar pickup.
                _run_serial(todo, worker, emit, record, handle_failure, result)
            elif tracer is not None:
                _run_pool_traced(tracer, todo, worker, jobs, timeout_s,
                                 emit, record, handle_failure, result)
            else:
                _run_pool(todo, worker, jobs, timeout_s,
                          emit, record, handle_failure, result)

        # -- cross-run validation: FLOP conservation over the ladder -------
        if validate:
            ladder_runs = {cfg_by_key[k]: run for k, run in result.runs.items()
                           if k in cfg_by_key}
            for key, violations in check_flop_ladder(ladder_runs).items():
                verdict = result.validation.setdefault(
                    key, {"ok": True, "violations": []})
                verdict["ok"] = False
                verdict["violations"] = list(verdict["violations"]) + violations
                result.stats.validation_failures += 1
                emit("invalid", key, error="; ".join(violations))
                if use_disk and key in result.runs:
                    payload = counters_to_dict(result.runs[key])
                    payload["__validation__"] = {
                        "ok": False, "violations": violations}
                    store_payload(cache_dir, cfg_by_key[key], payload)

        jrecord("sweep_end")
        if tracer is not None:
            tracer.event("sweep end", cat="executor",
                         simulated=result.stats.simulated,
                         cache_hits=result.stats.cache_hits,
                         failures=result.stats.failures)
    finally:
        if jwriter is not None:
            jwriter.close()

    result.stats.wall_s = time.monotonic() - t_start
    return result


def _run_serial(queue: deque, worker: Worker,
                emit, record, handle_failure, result: ExecutionResult) -> None:
    """In-process execution path (``jobs <= 1`` and broken-pool fallback).

    Queue entries are ``(cfg, attempt, ready_at)`` so retries keep their
    consumed budget — including when this path takes over from a broken
    process pool mid-sweep — and backoff schedules are honoured.
    """
    while queue:
        cfg, attempt, ready_at = queue.popleft()
        if cfg.key() in result.runs:  # a retry may race a later success
            continue
        delay = ready_at - time.monotonic()
        if delay > 0:
            time.sleep(delay)
        emit("start", cfg.key(), attempt=attempt)
        t0 = time.monotonic()
        try:
            payload = worker(cfg)
        except Exception as exc:
            handle_failure(cfg, attempt, repr(exc), queue)
        else:
            record(cfg, payload, attempt, time.monotonic() - t0, queue)


def _run_pool_traced(tracer, queue: deque, worker: Worker, jobs: int,
                     timeout_s: Optional[float],
                     emit, record, handle_failure,
                     result: ExecutionResult) -> None:
    """Pool execution with cross-process trace capture.

    The pool's workers cannot see the coordinator's contextvar-scoped
    tracer, so each worker writes a per-run Chrome trace file into a
    temporary directory (announced via ``REPRO_TRACE_DIR``, picked up by
    :class:`repro.obs.workers.TracedWorker`); the files are merged back
    into *tracer* once the pool drains.  Trace capture must never change
    sweep outcomes: payloads pass through the wrapper untouched and a
    lost trace file is silently skipped at merge time.
    """
    import shutil

    from repro.obs.workers import (
        TRACE_DIR_ENV,
        TracedWorker,
        merge_worker_traces,
    )

    trace_dir = tempfile.mkdtemp(prefix="repro-obs-")
    previous = os.environ.get(TRACE_DIR_ENV)
    os.environ[TRACE_DIR_ENV] = trace_dir
    try:
        _run_pool(queue, TracedWorker(worker), jobs, timeout_s,
                  emit, record, handle_failure, result)
    finally:
        if previous is None:
            os.environ.pop(TRACE_DIR_ENV, None)
        else:  # pragma: no cover - nested tracing sessions
            os.environ[TRACE_DIR_ENV] = previous
        merged = merge_worker_traces(tracer, trace_dir)
        tracer.event("worker traces merged", cat="executor", files=merged)
        shutil.rmtree(trace_dir, ignore_errors=True)


def _run_pool(queue: deque, worker: Worker, jobs: int,
              timeout_s: Optional[float],
              emit, record, handle_failure, result: ExecutionResult) -> None:
    """Process-pool execution with per-run timeout and bounded retry.

    A run whose attempt exceeds *timeout_s* is abandoned (the busy worker
    cannot be killed portably, but its result is discarded) and retried.
    If the pool itself breaks — a worker segfaults or is OOM-killed — the
    pool is rebuilt once; a second break degrades to in-process execution
    (attempt counts intact) so the sweep still completes.
    """
    pool_rebuilds = 1

    while queue:
        pool = ProcessPoolExecutor(max_workers=jobs)
        pending: dict[Future, tuple[RunConfig, int, float]] = {}
        try:
            while queue or pending:
                now = time.monotonic()
                for _ in range(len(queue)):
                    if len(pending) >= jobs:
                        break
                    cfg, attempt, ready_at = queue[0]
                    if cfg.key() in result.runs:
                        queue.popleft()
                        continue
                    if ready_at > now:  # backing off: try the next entry
                        queue.rotate(-1)
                        continue
                    queue.popleft()
                    fut = pool.submit(worker, cfg)
                    pending[fut] = (cfg, attempt, now)
                    emit("start", cfg.key(), attempt=attempt)
                if not pending:
                    if not queue:
                        break
                    # everything queued is backing off: wait a beat.
                    wake = min(entry[2] for entry in queue)
                    time.sleep(min(0.05, max(0.0, wake - now)))
                    continue
                done, _ = wait(pending, timeout=0.1,
                               return_when=FIRST_COMPLETED)
                now = time.monotonic()
                for fut in done:
                    cfg, attempt, t0 = pending.pop(fut)
                    try:
                        payload = fut.result()
                    except BrokenProcessPool:
                        handle_failure(cfg, attempt, "process pool broke", queue)
                        raise
                    except Exception as exc:
                        handle_failure(cfg, attempt, repr(exc), queue)
                    else:
                        record(cfg, payload, attempt, now - t0, queue)
                if timeout_s is not None:
                    for fut in list(pending):
                        cfg, attempt, t0 = pending[fut]
                        if now - t0 > timeout_s:
                            del pending[fut]
                            fut.cancel()
                            emit("timeout", cfg.key(), attempt=attempt,
                                 wall_s=now - t0)
                            handle_failure(cfg, attempt,
                                           f"timed out after {timeout_s:g}s",
                                           queue)
        except BrokenProcessPool:
            # Re-queue everything in flight for another attempt.
            for cfg, attempt, _t0 in pending.values():
                handle_failure(cfg, attempt, "process pool broke", queue)
            if pool_rebuilds > 0:
                pool_rebuilds -= 1
                continue
            pool.shutdown(wait=False, cancel_futures=True)
            _run_serial(queue, worker, emit, record, handle_failure, result)
            return
        finally:
            pool.shutdown(wait=False, cancel_futures=True)
        break
