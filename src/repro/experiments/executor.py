"""Parallel, fault-tolerant sweep executor.

Every paper artifact is a projection of the same ~50 simulated runs, so
the sweep engine is the hot path of the whole reproduction.  This module
industrializes it:

* :class:`ExecutionPlan` — an explicit, deduplicated list of
  :class:`~repro.experiments.config.RunConfig`, with factories for the
  paper's standard sweep;
* :func:`execute_plan` — partitions out already-cached runs, fans the
  remainder across a ``ProcessPoolExecutor`` (workers rebuild mesh +
  mini-app from the pickled config), applies a per-run timeout with
  bounded retry, survives a broken pool by falling back to in-process
  execution, and streams structured :class:`RunEvent` progress;
* a versioned disk cache with **atomic** writes (tmp file +
  ``os.replace``) and corruption recovery: a truncated or malformed
  ``.repro_cache/*.json`` entry is discarded and re-simulated instead of
  crashing the command.

:class:`~repro.experiments.runner.Session` is a thin façade over this
module; nothing here depends on ``Session``, so workers import cheaply.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable, Optional, Sequence

from repro.experiments.config import (
    FULL_MESH,
    PLATFORMS,
    VECTOR_SIZES,
    MeshSpec,
    RunConfig,
    resolve_mesh,
)
from repro.metrics.counters import (
    RunCounters,
    counters_from_dict,
    counters_to_dict,
)

#: bump when the timing model changes so stale disk caches are ignored.
MODEL_VERSION = "3"

#: optimization ladder rungs exercised by the standard sweep (paper order).
_SWEEP_OPTS: tuple[str, ...] = ("vanilla", "vec2", "ivec2", "vec1")


# ---------------------------------------------------------------------------
# Plans
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ExecutionPlan:
    """An ordered, duplicate-free list of run configurations."""

    configs: tuple[RunConfig, ...] = ()

    @classmethod
    def from_configs(cls, configs: Iterable[RunConfig]) -> "ExecutionPlan":
        """Build a plan, dropping duplicate configs but keeping order."""
        seen: set[str] = set()
        out: list[RunConfig] = []
        for cfg in configs:
            if cfg.key() not in seen:
                seen.add(cfg.key())
                out.append(cfg)
        return cls(configs=tuple(out))

    @classmethod
    def standard(cls, mesh: MeshSpec | None = None) -> "ExecutionPlan":
        """The paper's full evaluation sweep (~50 runs): the scalar
        baseline plus every optimization rung over every VECTOR_SIZE on
        the RISC-V prototype, and the vanilla/vec1 pair on the other two
        platforms (Figures 12/13)."""
        dims = resolve_mesh(mesh)
        configs: list[RunConfig] = [
            RunConfig(opt="scalar", vector_size=16, mesh_dims=dims)]
        for opt in _SWEEP_OPTS:
            for vs in VECTOR_SIZES:
                configs.append(RunConfig(opt=opt, vector_size=vs, mesh_dims=dims))
        for machine in PLATFORMS:
            if machine == "riscv_vec":
                continue  # already covered by the ladder above
            for opt in ("vanilla", "vec1"):
                for vs in VECTOR_SIZES:
                    configs.append(RunConfig(machine=machine, opt=opt,
                                             vector_size=vs, mesh_dims=dims))
        return cls.from_configs(configs)

    @classmethod
    def smoke(cls, mesh: MeshSpec | None = None) -> "ExecutionPlan":
        """A three-run plan for quick benchmarking / CI smoke tests."""
        dims = resolve_mesh(mesh)
        return cls.from_configs([
            RunConfig(opt="scalar", vector_size=16, mesh_dims=dims),
            RunConfig(opt="vanilla", vector_size=16, mesh_dims=dims),
            RunConfig(opt="vanilla", vector_size=64, mesh_dims=dims),
        ])

    def __len__(self) -> int:
        return len(self.configs)

    def __iter__(self):
        return iter(self.configs)


# ---------------------------------------------------------------------------
# Progress events and result records
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RunEvent:
    """One structured progress event streamed by :func:`execute_plan`.

    ``kind`` is one of ``cache_hit``, ``start``, ``done``, ``retry``,
    ``timeout``, ``failed``.
    """

    kind: str
    key: str
    attempt: int = 1
    wall_s: float = 0.0
    error: str = ""


#: progress callback signature.
EventCallback = Callable[[RunEvent], None]


@dataclass
class ExecutionStats:
    """Aggregate accounting for one :func:`execute_plan` call."""

    cache_hits: int = 0
    simulated: int = 0
    retries: int = 0
    failures: int = 0
    wall_s: float = 0.0


@dataclass
class ExecutionResult:
    """Counters by cache key, plus execution statistics and failures."""

    runs: dict[str, RunCounters] = field(default_factory=dict)
    stats: ExecutionStats = field(default_factory=ExecutionStats)
    #: cache key -> last error message, for configs that exhausted retries.
    failed: dict[str, str] = field(default_factory=dict)

    def counters_for(self, cfg: RunConfig) -> RunCounters:
        return self.runs[cfg.key()]


class SweepError(RuntimeError):
    """Raised when a plan finishes with permanently-failed runs."""

    def __init__(self, failed: dict[str, str]):
        self.failed = dict(failed)
        detail = "; ".join(f"{k}: {v}" for k, v in self.failed.items())
        super().__init__(f"{len(self.failed)} run(s) failed permanently: {detail}")


# ---------------------------------------------------------------------------
# Versioned disk cache: atomic writes, corruption recovery
# ---------------------------------------------------------------------------


def cache_path(cache_dir: str | os.PathLike, cfg: RunConfig) -> Path:
    """Location of one config's cached counters."""
    return Path(cache_dir) / f"v{MODEL_VERSION}-{cfg.key()}.json"


def load_cached(cache_dir: str | os.PathLike, cfg: RunConfig) -> Optional[RunCounters]:
    """Read one cached run; a missing entry returns ``None``.

    A corrupt entry (truncated write, bad JSON, wrong schema) is deleted
    and ``None`` is returned so the caller re-simulates — a damaged cache
    must never crash a command.
    """
    path = cache_path(cache_dir, cfg)
    try:
        text = path.read_text()
    except FileNotFoundError:
        return None
    except OSError:
        return None
    try:
        data = json.loads(text)
        if not isinstance(data, dict):
            raise TypeError("counter payload must be a JSON object")
        return counters_from_dict(data)
    except (json.JSONDecodeError, KeyError, TypeError, ValueError):
        try:
            path.unlink()
        except OSError:  # pragma: no cover - best-effort cleanup
            pass
        return None


def _dump_payload(payload: dict) -> str:
    """Canonical cache text: key-sorted so identical counters serialize
    to identical bytes regardless of which process produced them."""
    return json.dumps(payload, sort_keys=True)


def store_payload(cache_dir: str | os.PathLike, cfg: RunConfig, payload: dict) -> Path:
    """Atomically persist one run's counter dict (tmp file + ``os.replace``)."""
    target = cache_path(cache_dir, cfg)
    target.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=target.parent, prefix=target.name, suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as fh:
            fh.write(_dump_payload(payload))
        os.replace(tmp, target)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return target


def store_cached(cache_dir: str | os.PathLike, cfg: RunConfig,
                 run: RunCounters) -> Path:
    """Atomically persist one run's :class:`RunCounters`."""
    return store_payload(cache_dir, cfg, counters_to_dict(run))


# ---------------------------------------------------------------------------
# Simulation workers
# ---------------------------------------------------------------------------


def build_miniapp(cfg: RunConfig):
    """Construct the compiled mini-app a config describes."""
    from repro.cfd.assembly import MiniApp
    from repro.cfd.mesh import box_mesh

    return MiniApp(box_mesh(*cfg.mesh_dims), cfg.vector_size, cfg.opt,
                   field_seed=cfg.field_seed)


def simulate_run(cfg: RunConfig) -> RunCounters:
    """Simulate one configuration from scratch (no caches involved)."""
    from repro.machine.cpu import Machine
    from repro.machine.machines import get_machine

    app = build_miniapp(cfg)
    params = get_machine(cfg.machine)
    machine = Machine(params, cache_enabled=cfg.cache_enabled)
    return app.run_timed(params, machine=machine)


def simulate_to_dict(cfg: RunConfig) -> dict:
    """Pool worker: simulate and return plain data (cheap to pickle)."""
    return counters_to_dict(simulate_run(cfg))


#: worker callable signature: RunConfig -> counter dict.
Worker = Callable[[RunConfig], dict]


# ---------------------------------------------------------------------------
# The executor
# ---------------------------------------------------------------------------


def default_jobs() -> int:
    """Worker count used for ``--jobs 0`` / unspecified parallelism."""
    return max(1, os.cpu_count() or 1)


def execute_plan(plan: ExecutionPlan | Sequence[RunConfig], *,
                 cache_dir: str | os.PathLike = ".repro_cache",
                 jobs: int = 1,
                 use_disk: bool = True,
                 timeout_s: Optional[float] = None,
                 retries: int = 1,
                 on_event: Optional[EventCallback] = None,
                 worker: Worker = simulate_to_dict) -> ExecutionResult:
    """Execute every config in *plan*, returning counters keyed by
    :meth:`RunConfig.key`.

    Already-cached runs are partitioned out first (``cache_hit`` events);
    the remainder runs on a process pool of *jobs* workers (``jobs <= 1``
    runs in-process).  Each run gets ``1 + retries`` attempts and, when
    *timeout_s* is set, a per-attempt wall-clock budget.  Runs that
    exhaust their attempts are reported in ``result.failed`` rather than
    raising, so one bad configuration cannot sink a 50-run sweep.
    """
    if isinstance(plan, ExecutionPlan):
        configs = list(plan.configs)
    else:
        configs = list(ExecutionPlan.from_configs(plan).configs)

    result = ExecutionResult()
    t_start = time.monotonic()

    def emit(kind: str, key: str, attempt: int = 1, wall_s: float = 0.0,
             error: str = "") -> None:
        if on_event is not None:
            on_event(RunEvent(kind=kind, key=key, attempt=attempt,
                              wall_s=wall_s, error=error))

    # -- partition out cache hits -----------------------------------------
    todo: list[RunConfig] = []
    for cfg in configs:
        cached = load_cached(cache_dir, cfg) if use_disk else None
        if cached is not None:
            result.runs[cfg.key()] = cached
            result.stats.cache_hits += 1
            emit("cache_hit", cfg.key())
        else:
            todo.append(cfg)

    def record(cfg: RunConfig, payload: dict, attempt: int, wall_s: float) -> None:
        result.runs[cfg.key()] = counters_from_dict(payload)
        result.stats.simulated += 1
        if use_disk:
            store_payload(cache_dir, cfg, payload)
        emit("done", cfg.key(), attempt=attempt, wall_s=wall_s)

    def handle_failure(cfg: RunConfig, attempt: int, error: str,
                       queue: deque) -> None:
        if attempt <= retries:
            result.stats.retries += 1
            emit("retry", cfg.key(), attempt=attempt, error=error)
            queue.append((cfg, attempt + 1))
        else:
            result.stats.failures += 1
            result.failed[cfg.key()] = error
            emit("failed", cfg.key(), attempt=attempt, error=error)

    if todo:
        if jobs <= 1:
            _run_serial(todo, worker, retries, emit, record, result)
        else:
            _run_pool(todo, worker, jobs, retries, timeout_s,
                      emit, record, handle_failure, result)

    result.stats.wall_s = time.monotonic() - t_start
    return result


def _run_serial(todo: Sequence[RunConfig], worker: Worker, retries: int,
                emit, record, result: ExecutionResult) -> None:
    """In-process execution path (``jobs <= 1`` and broken-pool fallback)."""
    queue: deque = deque((cfg, 1) for cfg in todo)
    while queue:
        cfg, attempt = queue.popleft()
        if cfg.key() in result.runs:  # a retry may race a later success
            continue
        emit("start", cfg.key(), attempt=attempt)
        t0 = time.monotonic()
        try:
            payload = worker(cfg)
        except Exception as exc:
            if attempt <= retries:
                result.stats.retries += 1
                emit("retry", cfg.key(), attempt=attempt, error=repr(exc))
                queue.append((cfg, attempt + 1))
            else:
                result.stats.failures += 1
                result.failed[cfg.key()] = repr(exc)
                emit("failed", cfg.key(), attempt=attempt, error=repr(exc))
        else:
            record(cfg, payload, attempt, time.monotonic() - t0)


def _run_pool(todo: Sequence[RunConfig], worker: Worker, jobs: int,
              retries: int, timeout_s: Optional[float],
              emit, record, handle_failure, result: ExecutionResult) -> None:
    """Process-pool execution with per-run timeout and bounded retry.

    A run whose attempt exceeds *timeout_s* is abandoned (the busy worker
    cannot be killed portably, but its result is discarded) and retried.
    If the pool itself breaks — a worker segfaults or is OOM-killed — the
    pool is rebuilt once; a second break degrades to in-process execution
    so the sweep still completes.
    """
    queue: deque = deque((cfg, 1) for cfg in todo)
    pool_rebuilds = 1

    while queue:
        pool = ProcessPoolExecutor(max_workers=jobs)
        pending: dict[Future, tuple[RunConfig, int, float]] = {}
        try:
            while queue or pending:
                while queue and len(pending) < jobs:
                    cfg, attempt = queue.popleft()
                    if cfg.key() in result.runs:
                        continue
                    fut = pool.submit(worker, cfg)
                    pending[fut] = (cfg, attempt, time.monotonic())
                    emit("start", cfg.key(), attempt=attempt)
                if not pending:
                    break
                done, _ = wait(pending, timeout=0.1,
                               return_when=FIRST_COMPLETED)
                now = time.monotonic()
                for fut in done:
                    cfg, attempt, t0 = pending.pop(fut)
                    try:
                        payload = fut.result()
                    except BrokenProcessPool:
                        handle_failure(cfg, attempt, "process pool broke", queue)
                        raise
                    except Exception as exc:
                        handle_failure(cfg, attempt, repr(exc), queue)
                    else:
                        record(cfg, payload, attempt, now - t0)
                if timeout_s is not None:
                    for fut in list(pending):
                        cfg, attempt, t0 = pending[fut]
                        if now - t0 > timeout_s:
                            del pending[fut]
                            fut.cancel()
                            emit("timeout", cfg.key(), attempt=attempt,
                                 wall_s=now - t0)
                            handle_failure(cfg, attempt,
                                           f"timed out after {timeout_s:g}s",
                                           queue)
        except BrokenProcessPool:
            # Re-queue everything in flight for another attempt.
            for cfg, attempt, _t0 in pending.values():
                handle_failure(cfg, attempt, "process pool broke", queue)
            if pool_rebuilds > 0:
                pool_rebuilds -= 1
                continue
            pool.shutdown(wait=False, cancel_futures=True)
            _run_serial([cfg for cfg, _a in queue], worker, retries,
                        emit, record, result)
            return
        finally:
            pool.shutdown(wait=False, cancel_futures=True)
        break
