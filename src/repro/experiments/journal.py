"""Durable sweep journal: checkpoint/resume for ``execute_plan``.

A sweep killed mid-flight (SIGINT, OOM, power loss) must resume without
re-running completed work and without granting crashed configs a fresh
retry budget.  The journal is an append-only JSONL file next to the run
cache; every record is flushed and fsynced before the sweep proceeds, so
the journal is never *ahead* of reality.

Record kinds (one JSON object per line):

* ``sweep_start`` -- a new ``execute_plan`` call began (resets the
  per-sweep attempt accounting);
* ``done`` / ``fail_attempt`` / ``failed`` / ``quarantined`` -- per-run
  lifecycle, keyed by :meth:`RunConfig.key`;
* ``sweep_end`` -- the sweep finished; a journal whose last segment has
  no ``sweep_end`` records an interrupted sweep.

:func:`replay_journal` folds the **last** segment into a
:class:`JournalState`; earlier segments are irrelevant because completed
runs also live in the versioned disk cache.  A torn trailing line (the
crash may have hit mid-append) is ignored, mirroring the cache's
corruption-recovery contract.
"""

from __future__ import annotations

import json
import os
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional


@dataclass
class JournalState:
    """Folded view of a journal's last sweep segment."""

    #: keys whose runs completed (their counters are in the disk cache).
    done: set = field(default_factory=set)
    #: failed attempts per key in the interrupted segment -- consumed
    #: retry budget that a resume must honour.
    fail_attempts: Counter = field(default_factory=Counter)
    #: keys that failed permanently, with the last error.
    failed: dict = field(default_factory=dict)
    #: keys quarantined for repeated validation failure.
    quarantined: dict = field(default_factory=dict)
    #: True when the segment has a ``sweep_start`` without ``sweep_end``.
    interrupted: bool = False


def replay_journal(path: str | os.PathLike) -> Optional[JournalState]:
    """Fold an existing journal; ``None`` when the file does not exist."""
    p = Path(path)
    try:
        text = p.read_text()
    except (FileNotFoundError, OSError):
        return None
    state = JournalState()
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            rec = json.loads(line)
            ev = rec["ev"]
        except (json.JSONDecodeError, TypeError, KeyError):
            continue  # torn trailing write: ignore, never crash
        if ev == "sweep_start":
            state = JournalState(interrupted=True)
        elif ev == "sweep_end":
            state.interrupted = False
        elif ev == "done":
            key = rec.get("key", "")
            state.done.add(key)
            state.failed.pop(key, None)
        elif ev == "fail_attempt":
            state.fail_attempts[rec.get("key", "")] += 1
        elif ev == "failed":
            state.failed[rec.get("key", "")] = rec.get("error", "")
        elif ev == "quarantined":
            key = rec.get("key", "")
            state.quarantined[key] = rec.get("error", "")
            state.failed[key] = rec.get("error", "")
    return state


class SweepJournal:
    """Append-only, fsynced journal writer for one ``execute_plan``."""

    def __init__(self, path: str | os.PathLike):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh = open(self.path, "a", encoding="utf-8")

    def record(self, ev: str, **fields) -> None:
        line = json.dumps({"ev": ev, **fields}, sort_keys=True)
        self._fh.write(line + "\n")
        self._fh.flush()
        try:
            os.fsync(self._fh.fileno())
        except OSError:  # pragma: no cover - e.g. journal on a pipe
            pass

    def close(self) -> None:
        try:
            self._fh.close()
        except OSError:  # pragma: no cover - best effort
            pass

    def __enter__(self) -> "SweepJournal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
