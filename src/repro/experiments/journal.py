"""Durable sweep journal: checkpoint/resume for ``execute_plan``.

A sweep killed mid-flight (SIGINT, OOM, power loss) must resume without
re-running completed work and without granting crashed configs a fresh
retry budget.  The journal is an append-only JSONL file next to the run
cache; every record is flushed and fsynced before the sweep proceeds, so
the journal is never *ahead* of reality.

Record kinds (one JSON object per line):

* ``sweep_start`` -- a new ``execute_plan`` call began (resets the
  per-sweep attempt accounting);
* ``done`` / ``fail_attempt`` / ``failed`` / ``quarantined`` -- per-run
  lifecycle, keyed by :meth:`RunConfig.key`;
* ``sweep_end`` -- the sweep finished; a journal whose last segment has
  no ``sweep_end`` records an interrupted sweep.

:func:`replay_journal` folds the **last** segment into a
:class:`JournalState`; earlier segments are irrelevant because completed
runs also live in the versioned disk cache.  A torn trailing line (the
crash may have hit mid-append) is ignored, mirroring the cache's
corruption-recovery contract — including a tail of non-UTF8 garbage,
which a power loss mid-sector can legitimately leave behind.

Opening a :class:`SweepJournal` for append first *repairs* a torn tail:
the bytes after the last newline are truncated (and the truncation
fsynced) so the next record starts on a fresh line instead of being
glued onto the torn fragment — which would corrupt an otherwise valid
record.  :func:`repair_torn_tail` is the standalone entry point.
"""

from __future__ import annotations

import json
import os
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional


@dataclass
class JournalState:
    """Folded view of a journal's last sweep segment."""

    #: keys whose runs completed (their counters are in the disk cache).
    done: set = field(default_factory=set)
    #: failed attempts per key in the interrupted segment -- consumed
    #: retry budget that a resume must honour.
    fail_attempts: Counter = field(default_factory=Counter)
    #: keys that failed permanently, with the last error.
    failed: dict = field(default_factory=dict)
    #: keys quarantined for repeated validation failure.
    quarantined: dict = field(default_factory=dict)
    #: True when the segment has a ``sweep_start`` without ``sweep_end``.
    interrupted: bool = False


def repair_torn_tail(path: str | os.PathLike) -> int:
    """Truncate a torn (newline-less) trailing fragment off a journal.

    A crash mid-append leaves the file ending in a partial record with
    no trailing newline; appending to it would splice the next record
    onto the fragment and corrupt *both*.  This trims the file back to
    its last complete line — the recovered prefix — and fsyncs the
    truncation so the repair itself is durable.  Returns the number of
    bytes removed (0 when the file is absent, empty, or healthy).
    """
    p = Path(path)
    try:
        with open(p, "rb+") as fh:
            data = fh.read()
            if not data or data.endswith(b"\n"):
                return 0
            cut = data.rfind(b"\n") + 1  # 0 when no newline at all
            fh.truncate(cut)
            fh.flush()
            try:
                os.fsync(fh.fileno())
            except OSError:  # pragma: no cover - journal on a pipe
                pass
            return len(data) - cut
    except (FileNotFoundError, OSError):
        return 0


def replay_journal(path: str | os.PathLike) -> Optional[JournalState]:
    """Fold an existing journal; ``None`` when the file does not exist.

    Corruption-tolerant by contract: a torn final line — truncated JSON,
    or raw non-UTF8 bytes — is skipped and the intact prefix is
    recovered, never an exception.
    """
    p = Path(path)
    try:
        raw = p.read_bytes()
    except (FileNotFoundError, OSError):
        return None
    state = JournalState()
    for bline in raw.split(b"\n"):
        try:
            line = bline.decode("utf-8").strip()
        except UnicodeDecodeError:
            continue  # torn binary tail: recover the prefix, never crash
        if not line:
            continue
        try:
            rec = json.loads(line)
            ev = rec["ev"]
        except (json.JSONDecodeError, TypeError, KeyError):
            continue  # torn trailing write: ignore, never crash
        if ev == "sweep_start":
            state = JournalState(interrupted=True)
        elif ev == "sweep_end":
            state.interrupted = False
        elif ev == "done":
            key = rec.get("key", "")
            state.done.add(key)
            state.failed.pop(key, None)
        elif ev == "fail_attempt":
            state.fail_attempts[rec.get("key", "")] += 1
        elif ev == "failed":
            state.failed[rec.get("key", "")] = rec.get("error", "")
        elif ev == "quarantined":
            key = rec.get("key", "")
            state.quarantined[key] = rec.get("error", "")
            state.failed[key] = rec.get("error", "")
    return state


class SweepJournal:
    """Append-only, fsynced journal writer for one ``execute_plan``.

    Opening repairs a torn trailing line first (see
    :func:`repair_torn_tail`) so new records never splice onto a crash
    fragment.
    """

    def __init__(self, path: str | os.PathLike):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.repaired_bytes = repair_torn_tail(self.path)
        self._fh = open(self.path, "a", encoding="utf-8")

    def record(self, ev: str, **fields) -> None:
        line = json.dumps({"ev": ev, **fields}, sort_keys=True)
        self._fh.write(line + "\n")
        self._fh.flush()
        try:
            os.fsync(self._fh.fileno())
        except OSError:  # pragma: no cover - e.g. journal on a pipe
            pass

    def close(self) -> None:
        try:
            self._fh.close()
        except OSError:  # pragma: no cover - best effort
            pass

    @property
    def closed(self) -> bool:
        return self._fh.closed

    def __enter__(self) -> "SweepJournal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
