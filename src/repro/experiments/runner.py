"""Experiment runner with memoized (in-memory + on-disk) results.

Every table and figure of the paper is a projection of the same ~50
simulated runs (machine x optimization x VECTOR_SIZE).  The
:class:`Session` runs each configuration once, keeps the counters in
memory, and persists them as JSON under ``.repro_cache/`` so the full
benchmark suite re-renders in seconds after the first pass.  Set the
environment variable ``REPRO_CACHE=0`` to disable the disk cache (the
in-memory memo always applies), or bump :data:`MODEL_VERSION` when the
timing model changes.
"""

from __future__ import annotations

import json
import os
from collections import Counter
from pathlib import Path
from typing import Optional

from repro.cfd.assembly import MiniApp
from repro.cfd.mesh import Mesh, box_mesh
from repro.experiments.config import FULL_MESH, RunConfig
from repro.machine.cpu import Machine
from repro.machine.machines import get_machine
from repro.metrics.counters import PhaseCounters, RunCounters

#: bump when the timing model changes so stale disk caches are ignored.
MODEL_VERSION = "3"

_COUNTER_FIELDS = (
    "cycles_total", "cycles_vector", "instr_scalar", "instr_vconfig",
    "instr_vector_arith", "instr_vector_mem", "instr_vector_ctrl",
    "instr_scalar_mem", "vl_sum", "flops", "l1_misses", "l2_misses",
    "mem_element_accesses",
)


def counters_to_dict(run: RunCounters) -> dict:
    out = {}
    for pid, pc in run.phases.items():
        rec = {f: getattr(pc, f) for f in _COUNTER_FIELDS}
        rec["vl_hist"] = {str(k): v for k, v in pc.vl_hist.items()}
        out[str(pid)] = rec
    return out


def counters_from_dict(data: dict) -> RunCounters:
    run = RunCounters()
    for pid_s, rec in data.items():
        pc = PhaseCounters(phase=int(pid_s))
        for f in _COUNTER_FIELDS:
            setattr(pc, f, rec[f])
        pc.vl_hist = Counter({int(k): v for k, v in rec["vl_hist"].items()})
        run.phases[int(pid_s)] = pc
    return run


class Session:
    """Shared run cache for one mesh configuration."""

    def __init__(self, mesh_dims: tuple[int, int, int] = FULL_MESH,
                 cache_dir: str | os.PathLike = ".repro_cache",
                 use_disk: Optional[bool] = None,
                 verbose: bool = False):
        self.mesh_dims = tuple(mesh_dims)
        self.cache_dir = Path(cache_dir)
        if use_disk is None:
            use_disk = os.environ.get("REPRO_CACHE", "1") != "0"
        self.use_disk = use_disk
        self.verbose = verbose
        self._mesh: Optional[Mesh] = None
        self._memo: dict[str, RunCounters] = {}
        self._apps: dict[tuple, MiniApp] = {}

    @property
    def mesh(self) -> Mesh:
        if self._mesh is None:
            self._mesh = box_mesh(*self.mesh_dims)
        return self._mesh

    def miniapp(self, opt: str, vector_size: int, field_seed: int = 0) -> MiniApp:
        """Build (and memoize) the compiled mini-app for a configuration."""
        key = (opt, vector_size, field_seed)
        if key not in self._apps:
            self._apps[key] = MiniApp(self.mesh, vector_size, opt,
                                      field_seed=field_seed)
        return self._apps[key]

    # ------------------------------------------------------------------

    def _disk_path(self, cfg: RunConfig) -> Path:
        return self.cache_dir / f"v{MODEL_VERSION}-{cfg.key()}.json"

    def run(self, machine: str = "riscv_vec", opt: str = "vanilla",
            vector_size: int = 240, cache_enabled: bool = True,
            field_seed: int = 0) -> RunCounters:
        """Run (or recall) one configuration; returns per-phase counters."""
        cfg = RunConfig(machine=machine, opt=opt, vector_size=vector_size,
                        mesh_dims=self.mesh_dims, cache_enabled=cache_enabled,
                        field_seed=field_seed)
        key = cfg.key()
        if key in self._memo:
            return self._memo[key]
        if self.use_disk:
            path = self._disk_path(cfg)
            if path.exists():
                run = counters_from_dict(json.loads(path.read_text()))
                self._memo[key] = run
                return run
        if self.verbose:  # pragma: no cover - console feedback
            print(f"[repro] simulating {key} ...", flush=True)
        app = self.miniapp(opt, vector_size, field_seed)
        m = Machine(get_machine(machine), cache_enabled=cache_enabled)
        run = app.run_timed(get_machine(machine), machine=m)
        self._memo[key] = run
        if self.use_disk:
            self.cache_dir.mkdir(parents=True, exist_ok=True)
            self._disk_path(cfg).write_text(json.dumps(counters_to_dict(run)))
        return run

    # -- convenience projections ------------------------------------------

    def scalar_baseline(self, machine: str = "riscv_vec",
                        vector_size: int = 16) -> RunCounters:
        """The paper's baseline: scalar build at VECTOR_SIZE = 16."""
        return self.run(machine=machine, opt="scalar", vector_size=vector_size)

    def total_cycles(self, **kw) -> float:
        return self.run(**kw).total_cycles

    def phase_cycles(self, phase: int, **kw) -> float:
        return self.run(**kw).phases[phase].cycles_total
