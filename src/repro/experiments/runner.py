"""Config-first experiment façade over the sweep executor.

Every table and figure of the paper is a projection of the same ~50
simulated runs (machine x optimization x VECTOR_SIZE).  The heavy
lifting — parallel fan-out, per-run timeout/retry, the versioned atomic
disk cache under ``.repro_cache/`` — lives in
:mod:`repro.experiments.executor`; :class:`Session` is the thin façade
the artifact generators and the CLI talk to:

* ``Session.run(cfg)`` runs (or recalls) one
  :class:`~repro.experiments.config.RunConfig` — the old keyword form
  ``run(machine=..., opt=..., vector_size=...)`` remains as a wrapper;
* ``Session.run_many(configs, jobs=N)`` is the batch entry point the
  table/figure generators use to pre-warm the cache across a process
  pool before rendering.

Results memoize in memory and persist as JSON on disk, so the full
benchmark suite re-renders in seconds after the first pass.  Set the
environment variable ``REPRO_CACHE=0`` to disable the disk cache (the
in-memory memo always applies); :data:`~repro.experiments.executor.MODEL_VERSION`
is bumped when the timing model changes so stale caches are ignored.  A
corrupt cache entry is discarded and re-simulated, never fatal.
"""

from __future__ import annotations

import os
import sys
from pathlib import Path
from typing import Iterable, Optional

from repro.cfd.assembly import MiniApp
from repro.cfd.mesh import Mesh, box_mesh
from repro.experiments.config import FULL_MESH, RunConfig
from repro.experiments.executor import (
    MODEL_VERSION,
    ExecutionPlan,
    RunEvent,
    SweepError,
    execute_plan,
    load_cached,
    simulate_run,
    store_cached,
)
from repro.machine.cpu import Machine
from repro.machine.machines import get_machine
from repro.metrics.counters import (
    COUNTER_FIELDS as _COUNTER_FIELDS,  # noqa: F401  (backwards compat)
    RunCounters,
    counters_from_dict,
    counters_to_dict,
)

__all__ = [
    "MODEL_VERSION",
    "Session",
    "counters_from_dict",
    "counters_to_dict",
]


class Session:
    """Shared run cache for one mesh configuration."""

    def __init__(self, mesh_dims: tuple[int, int, int] = FULL_MESH,
                 cache_dir: str | os.PathLike = ".repro_cache",
                 use_disk: Optional[bool] = None,
                 verbose: bool = False,
                 jobs: int = 1,
                 timeout_s: Optional[float] = None,
                 retries: int = 1,
                 validate: bool = False,
                 journal: Optional[str | os.PathLike] = None,
                 backend: str = "numpy"):
        self.mesh_dims = tuple(mesh_dims)
        #: execution backend stamped on configs built by this session
        #: (see ``RunConfig.backend``); timing results are identical
        #: across backends, only semantic validation work is affected.
        #: Resolved eagerly so a typo fails here with the registry keys
        #: listed, not as a KeyError deep inside a sweep.
        from repro.backends import get_backend

        self.backend = get_backend(backend).name
        self.cache_dir = Path(cache_dir)
        if use_disk is None:
            use_disk = os.environ.get("REPRO_CACHE", "1") != "0"
        self.use_disk = use_disk
        self.verbose = verbose
        self.jobs = max(1, jobs)
        self.timeout_s = timeout_s
        self.retries = retries
        self.validate = validate
        self.journal = journal
        self._mesh: Optional[Mesh] = None
        self._memo: dict[str, RunCounters] = {}
        self._apps: dict[tuple, MiniApp] = {}

    @property
    def mesh(self) -> Mesh:
        if self._mesh is None:
            self._mesh = box_mesh(*self.mesh_dims)
        return self._mesh

    def miniapp(self, opt: str, vector_size: int, field_seed: int = 0) -> MiniApp:
        """Build (and memoize) the compiled mini-app for a configuration."""
        key = (opt, vector_size, field_seed)
        if key not in self._apps:
            self._apps[key] = MiniApp(self.mesh, vector_size, opt,
                                      field_seed=field_seed)
        return self._apps[key]

    # ------------------------------------------------------------------

    def config(self, **kwargs) -> RunConfig:
        """A :class:`RunConfig` bound to this session's mesh (and
        execution backend, unless overridden)."""
        kwargs.setdefault("backend", self.backend)
        return RunConfig.from_kwargs(mesh=self.mesh_dims, **kwargs)

    def _disk_path(self, cfg: RunConfig) -> Path:
        from repro.experiments.executor import cache_path

        return cache_path(self.cache_dir, cfg)

    def _log_event(self, ev: RunEvent) -> None:  # pragma: no cover - console
        detail = f" attempt {ev.attempt}" if ev.attempt > 1 else ""
        suffix = f" ({ev.error})" if ev.error else ""
        util = (f" [queued {ev.queued}, hits {ev.cache_hits}, "
                f"misses {ev.cache_misses}]")
        print(f"[repro] {ev.kind} {ev.key}{detail}{suffix}{util}",
              file=sys.stderr, flush=True)

    def run(self, machine: str | RunConfig = "riscv_vec", opt: str = "vanilla",
            vector_size: int = 240, cache_enabled: bool = True,
            field_seed: int = 0) -> RunCounters:
        """Run (or recall) one configuration; returns per-phase counters.

        Config-first: pass a :class:`RunConfig` as the only argument
        (``session.run(cfg)``).  The keyword form builds one on the fly
        against this session's mesh.
        """
        if isinstance(machine, RunConfig):
            cfg = machine
        else:
            cfg = RunConfig(machine=machine, opt=opt, vector_size=vector_size,
                            mesh_dims=self.mesh_dims,
                            cache_enabled=cache_enabled, field_seed=field_seed,
                            backend=self.backend)
        key = cfg.key()
        if key in self._memo:
            return self._memo[key]
        if self.use_disk:
            cached = load_cached(self.cache_dir, cfg)
            if cached is not None:
                self._check(cfg, cached)
                self._memo[key] = cached
                return cached
        if self.verbose:  # pragma: no cover - console feedback
            print(f"[repro] simulating {key} ...", file=sys.stderr, flush=True)
        if cfg.mesh_dims == self.mesh_dims:
            app = self.miniapp(cfg.opt, cfg.vector_size, cfg.field_seed)
            m = Machine(get_machine(cfg.machine),
                        cache_enabled=cfg.cache_enabled)
            run = app.run_timed(get_machine(cfg.machine), machine=m)
        else:
            run = simulate_run(cfg)
        self._check(cfg, run)
        self._memo[key] = run
        if self.use_disk:
            store_cached(self.cache_dir, cfg, run)
        return run

    def _check(self, cfg: RunConfig, run: RunCounters) -> None:
        """Counter-invariant gate for the single-run path (the batch
        path validates inside ``execute_plan``)."""
        if not self.validate:
            return
        from repro.validation.invariants import validate_run

        violations = validate_run(cfg, run)
        if violations:
            raise SweepError({cfg.key(): "validation failed: "
                              + "; ".join(violations)})

    def run_many(self, configs: Iterable[RunConfig] | ExecutionPlan,
                 jobs: Optional[int] = None,
                 timeout_s: Optional[float] = None,
                 retries: Optional[int] = None) -> list[RunCounters]:
        """Run a batch of configurations, fanning cache misses across a
        process pool; returns counters in input order.

        This is the pre-warm entry point used by the table and figure
        generators: artifacts first ``run_many`` every config they
        project, then read individual runs from the warm memo.
        """
        if isinstance(configs, ExecutionPlan):
            configs = list(configs.configs)
        else:
            configs = list(configs)
        todo = [cfg for cfg in configs if cfg.key() not in self._memo]
        effective_jobs = self.jobs if jobs is None else max(1, jobs)
        if todo and effective_jobs <= 1 and not (self.validate or self.journal):
            # In-process: reuse this session's memoized mesh and apps.
            for cfg in todo:
                self.run(cfg)
        elif todo:
            result = execute_plan(
                ExecutionPlan.from_configs(todo),
                cache_dir=self.cache_dir,
                jobs=effective_jobs,
                use_disk=self.use_disk,
                timeout_s=self.timeout_s if timeout_s is None else timeout_s,
                retries=self.retries if retries is None else retries,
                on_event=self._log_event if self.verbose else None,
                validate=self.validate,
                journal=self.journal,
            )
            if result.failed:
                raise SweepError(result.failed)
            invalid = result.invalid_keys()
            if invalid:
                raise SweepError({
                    k: "validation failed: "
                       + "; ".join(result.validation[k]["violations"])
                    for k in invalid})
            self._memo.update(result.runs)
        return [self._memo[cfg.key()] for cfg in configs]

    # -- convenience projections ------------------------------------------

    def scalar_baseline(self, machine: str = "riscv_vec",
                        vector_size: int = 16) -> RunCounters:
        """The paper's baseline: scalar build at VECTOR_SIZE = 16."""
        return self.run(machine=machine, opt="scalar", vector_size=vector_size)

    def total_cycles(self, **kw) -> float:
        return self.run(**kw).total_cycles

    def phase_cycles(self, phase: int, **kw) -> float:
        return self.run(**kw).phases[phase].cycles_total
