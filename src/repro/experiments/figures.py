"""Generators for the paper's Figures 2-13 data series.

Figures are returned as data objects (series keyed the way the paper's
plots are legended); :mod:`repro.experiments.report` renders them as
ASCII tables / bar charts.  The benchmark suite asserts the paper's
qualitative shapes on these objects.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.config import PLATFORMS, VECTOR_SIZES
from repro.experiments.runner import Session
from repro.isa.hierarchy import VECTOR_BUCKETS
from repro.metrics import metrics as M

PHASES = tuple(range(1, 9))


def _prewarm(session: Session, opts, machine: str = "riscv_vec") -> None:
    """Batch every (opt, VECTOR_SIZE) run a figure projects through
    ``Session.run_many`` so cache misses fan out across workers."""
    session.run_many([session.config(machine=machine, opt=opt, vector_size=vs)
                      for opt in opts for vs in VECTOR_SIZES])


@dataclass
class Series:
    """A generic (x -> {label: value}) figure payload."""

    title: str
    xlabel: str
    xs: list[int]
    series: dict[str, list[float]]

    def rows(self) -> list[list[str]]:
        out = [[self.xlabel] + list(self.series.keys())]
        for i, x in enumerate(self.xs):
            out.append([str(x)] + [f"{vals[i]:.4g}" for vals in self.series.values()])
        return out

    def at(self, x: int, label: str) -> float:
        return self.series[label][self.xs.index(x)]


# -- Figure 2: total cycles, vanilla auto-vectorization ----------------------


def figure2(session: Session) -> Series:
    _prewarm(session, ["vanilla"])
    xs = list(VECTOR_SIZES)
    cycles = [session.total_cycles(opt="vanilla", vector_size=vs) for vs in xs]
    return Series(
        title="Total cycles spent in the vanilla mini-app enabling auto-vectorization",
        xlabel="VECTOR_SIZE", xs=xs, series={"total cycles": cycles})


# -- Figure 3: absolute number and type of vector instructions ---------------


def figure3(session: Session, opt: str = "vanilla") -> Series:
    _prewarm(session, [opt])
    xs = list(VECTOR_SIZES)
    series: dict[str, list[float]] = {b: [] for b in VECTOR_BUCKETS}
    for vs in xs:
        agg = session.run(opt=opt, vector_size=vs).aggregate()
        series["arithmetic"].append(agg.instr_vector_arith)
        series["memory"].append(agg.instr_vector_mem)
        series["control_lane"].append(agg.instr_vector_ctrl)
    return Series(
        title="Absolute number and type of vector instructions (auto-vectorized)",
        xlabel="VECTOR_SIZE", xs=xs, series=series)


# -- Figures 4 / 8: percentage of cycles per phase ----------------------------


def _phase_percent(session: Session, opt: str) -> Series:
    _prewarm(session, [opt])
    xs = list(VECTOR_SIZES)
    series = {f"phase {p}": [] for p in PHASES}
    for vs in xs:
        run = session.run(opt=opt, vector_size=vs)
        fr = run.cycle_fractions()
        for p in PHASES:
            series[f"phase {p}"].append(100.0 * fr.get(p, 0.0))
    return Series(title=f"Percentage of cycles per phase ({opt})",
                  xlabel="VECTOR_SIZE", xs=xs, series=series)


def figure4(session: Session) -> Series:
    """Percentage cycles per phase, vanilla auto-vectorized."""
    return _phase_percent(session, "vanilla")


def figure8(session: Session) -> Series:
    """Percentage cycles per phase after all optimizations."""
    return _phase_percent(session, "vec1")


# -- Figures 5 / 6: phase-2 cycles per optimization ---------------------------


def _phase_cycles(session: Session, phase: int, opts: list[str]) -> Series:
    _prewarm(session, opts)
    xs = list(VECTOR_SIZES)
    series = {
        opt: [session.phase_cycles(phase, opt=opt, vector_size=vs) for vs in xs]
        for opt in opts
    }
    return Series(title=f"Absolute cycles, phase {phase}",
                  xlabel="VECTOR_SIZE", xs=xs, series=series)


def figure5(session: Session) -> Series:
    """Phase-2 cycles: original vs VEC2 (the counter-productive step)."""
    return _phase_cycles(session, 2, ["vanilla", "vec2"])


def figure6(session: Session) -> Series:
    """Phase-2 cycles: original vs VEC2 vs IVEC2."""
    return _phase_cycles(session, 2, ["vanilla", "vec2", "ivec2"])


def figure7(session: Session) -> Series:
    """Phase-1 cycles: original vs VEC1 (loop fission)."""
    return _phase_cycles(session, 1, ["vanilla", "vec1"])


# -- Figure 9: percentage of cycles w.r.t. VECTOR_SIZE = 16 -------------------


def figure9(session: Session, opt: str = "vec1") -> Series:
    _prewarm(session, [opt])
    xs = list(VECTOR_SIZES)
    series = {}
    for p in PHASES:
        base = session.phase_cycles(p, opt=opt, vector_size=16)
        series[f"phase {p}"] = [
            100.0 * session.phase_cycles(p, opt=opt, vector_size=vs) / base
            for vs in xs
        ]
    return Series(title="Percentage of cycles w.r.t. VECTOR_SIZE = 16 (lower is better)",
                  xlabel="VECTOR_SIZE", xs=xs, series=series)


# -- Figure 10: vector occupancy ----------------------------------------------


def figure10(session: Session, opt: str = "vec1",
             machine: str = "riscv_vec") -> Series:
    from repro.machine.machines import get_machine

    _prewarm(session, [opt], machine=machine)
    vl_max = get_machine(machine).vl_max
    xs = list(VECTOR_SIZES)
    series = {}
    for p in PHASES:
        if p == 8:
            continue  # never vectorized; the paper omits its bar
        vals = []
        for vs in xs:
            pc = session.run(machine=machine, opt=opt, vector_size=vs).phases[p]
            vals.append(100.0 * M.occupancy(pc, vl_max))
        series[f"phase {p}"] = vals
    return Series(title="Vector occupancy (higher the better)",
                  xlabel="VECTOR_SIZE", xs=xs, series=series)


# -- Figure 11: speed-up vs scalar VECTOR_SIZE = 16 ---------------------------


def figure11(session: Session) -> Series:
    session.run_many([session.config(opt="scalar", vector_size=16)]
                     + [session.config(opt=opt, vector_size=vs)
                        for opt in ("vanilla", "vec2", "ivec2", "vec1")
                        for vs in VECTOR_SIZES])
    base = session.scalar_baseline().total_cycles
    xs = list(VECTOR_SIZES)
    series = {}
    for opt in ("vanilla", "vec2", "ivec2", "vec1"):
        series[opt] = [
            base / session.total_cycles(opt=opt, vector_size=vs) for vs in xs]
    return Series(title="Speed-up with respect to scalar VECTOR_SIZE = 16",
                  xlabel="VECTOR_SIZE", xs=xs, series=series)


# -- Figure 12: optimization speed-up across platforms ------------------------


def figure12(session: Session) -> Series:
    session.run_many([session.config(machine=machine, opt=opt, vector_size=vs)
                      for machine in PLATFORMS
                      for opt in ("vanilla", "vec1")
                      for vs in VECTOR_SIZES])
    xs = list(VECTOR_SIZES)
    series = {}
    for machine in PLATFORMS:
        vals = []
        for vs in xs:
            vanilla = session.total_cycles(machine=machine, opt="vanilla",
                                           vector_size=vs)
            best = session.total_cycles(machine=machine, opt="vec1",
                                        vector_size=vs)
            vals.append(vanilla / best)
        series[machine] = vals
    return Series(title="Speed-up of the optimizations on different HPC platforms",
                  xlabel="VECTOR_SIZE", xs=xs, series=series)


# -- Figure 13: MareNostrum 4 decomposition -----------------------------------


def figure13(session: Session, machine: str = "mn4_avx512") -> Series:
    _prewarm(session, ["vanilla", "vec1"], machine=machine)
    xs = list(VECTOR_SIZES)
    overall, phase2 = [], []
    for vs in xs:
        vanilla = session.run(machine=machine, opt="vanilla", vector_size=vs)
        best = session.run(machine=machine, opt="vec1", vector_size=vs)
        overall.append(vanilla.total_cycles / best.total_cycles)
        phase2.append(vanilla.phases[2].cycles_total / best.phases[2].cycles_total)
    return Series(title="Speed-up of the optimizations on MareNostrum 4",
                  xlabel="VECTOR_SIZE", xs=xs,
                  series={"mini-app": overall, "phase 2": phase2})
