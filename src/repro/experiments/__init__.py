"""Evaluation harness: configurations, cached runner, tables and figures."""

from repro.experiments.config import (
    FULL_MESH,
    OPTS,
    PLATFORMS,
    QUICK_MESH,
    RunConfig,
    VECTOR_SIZES,
)
from repro.experiments.runner import Session
from repro.experiments import figures, report, summary, tables

__all__ = [
    "FULL_MESH",
    "OPTS",
    "PLATFORMS",
    "QUICK_MESH",
    "RunConfig",
    "VECTOR_SIZES",
    "Session",
    "figures",
    "report",
    "summary",
    "tables",
]
