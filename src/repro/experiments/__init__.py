"""Evaluation harness: configurations, parallel executor, cached runner,
tables and figures."""

from repro.experiments.config import (
    FULL_MESH,
    MESH_PRESETS,
    OPTS,
    PLATFORMS,
    QUICK_MESH,
    RunConfig,
    VECTOR_SIZES,
    resolve_mesh,
)
from repro.experiments.executor import (
    ExecutionPlan,
    ExecutionResult,
    ExecutionStats,
    RunEvent,
    SweepError,
    execute_plan,
    simulate_run,
)
from repro.experiments.runner import Session
from repro.experiments import executor, figures, report, summary, tables

__all__ = [
    "FULL_MESH",
    "MESH_PRESETS",
    "OPTS",
    "PLATFORMS",
    "QUICK_MESH",
    "RunConfig",
    "VECTOR_SIZES",
    "resolve_mesh",
    "ExecutionPlan",
    "ExecutionResult",
    "ExecutionStats",
    "RunEvent",
    "SweepError",
    "execute_plan",
    "simulate_run",
    "Session",
    "executor",
    "figures",
    "report",
    "summary",
    "tables",
]
