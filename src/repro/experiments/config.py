"""Experiment configuration.

The paper sweeps six VECTOR_SIZE values (Section 2.3, footnote 4: 240 is
included because the Vitruvius FSM maximizes throughput at multiples of
40) over cumulative optimization levels on three platforms.  The default
mesh has 7680 elements = lcm(240, 512) * 3, so every VECTOR_SIZE divides
the element count evenly and no configuration is biased by chunk
padding.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Union

#: the six VECTOR_SIZE values studied in the paper.
VECTOR_SIZES: tuple[int, ...] = (16, 64, 128, 240, 256, 512)

#: cumulative optimization levels, paper order.
OPTS: tuple[str, ...] = ("scalar", "vanilla", "vec2", "ivec2", "vec1")

#: platforms of the portability study (Table 2 / Figure 12).
PLATFORMS: tuple[str, ...] = ("riscv_vec", "sx_aurora", "mn4_avx512")

#: default mesh: 16 x 16 x 30 = 7680 HEX08 elements (8959 nodes); every
#: VECTOR_SIZE in the sweep divides 7680.
FULL_MESH: tuple[int, int, int] = (16, 16, 30)

#: small mesh for fast runs / tests: 960 elements (VECTOR_SIZE = 256 and
#: 512 need tail padding here).
QUICK_MESH: tuple[int, int, int] = (8, 8, 15)

#: minimal mesh for chaos campaigns and validation probes: 64 elements,
#: so a full fault-injection sweep finishes in seconds.
TINY_MESH: tuple[int, int, int] = (4, 4, 4)

#: mesh presets addressable by name (the CLI's ``--mesh`` choices).
MESH_PRESETS: dict[str, tuple[int, int, int]] = {
    "tiny": TINY_MESH,
    "quick": QUICK_MESH,
    "full": FULL_MESH,
}

#: anything that names a mesh: a preset string or explicit (nx, ny, nz).
MeshSpec = Union[str, Iterable[int]]


def resolve_mesh(mesh: MeshSpec | None) -> tuple[int, int, int]:
    """Normalize a mesh spec (preset name, dims iterable, or ``None`` for
    the paper's full mesh) to an explicit ``(nx, ny, nz)`` tuple."""
    if mesh is None:
        return FULL_MESH
    if isinstance(mesh, str):
        try:
            return MESH_PRESETS[mesh]
        except KeyError:
            raise ValueError(
                f"unknown mesh preset {mesh!r}; known: {sorted(MESH_PRESETS)}"
            ) from None
    dims = tuple(int(d) for d in mesh)
    if len(dims) != 3 or any(d <= 0 for d in dims):
        raise ValueError(f"mesh dims must be 3 positive ints, got {dims}")
    return dims


def _check_registries(cfg: "RunConfig") -> None:
    """Reject configs naming unknown machines, rungs, or backends.

    Runs on the loose-input constructors (``from_kwargs`` /
    ``from_dict``) -- the paths fed by the CLI and the sweep service's
    wire format -- so bad names fail eagerly with the registry's
    spelling list instead of deep inside the first simulation.
    """
    # imported lazily: config is the bottom of the dependency stack.
    from repro.compiler.transforms import OPT_PASSES
    from repro.machine.machines import MACHINES

    if cfg.machine.lower() not in MACHINES:
        raise ValueError(
            f"unknown machine {cfg.machine!r}; known: {sorted(MACHINES)}")
    if cfg.opt not in OPT_PASSES:
        raise ValueError(
            f"unknown optimization rung {cfg.opt!r}; "
            f"known: {tuple(OPT_PASSES)}")
    from repro.backends import BACKENDS

    if cfg.backend not in BACKENDS:
        raise ValueError(
            f"unknown backend {cfg.backend!r}; known: {sorted(BACKENDS)}")


@dataclass(frozen=True)
class RunConfig:
    """One mini-app execution configuration.

    ``RunConfig`` is the single source of truth for what gets simulated:
    the executor's workers, the :class:`~repro.experiments.runner.Session`
    façade, and the CLI all construct and exchange these.
    """

    machine: str = "riscv_vec"
    opt: str = "vanilla"
    vector_size: int = 240
    mesh_dims: tuple[int, int, int] = FULL_MESH
    cache_enabled: bool = True
    field_seed: int = 0
    #: explicit transformation-pass schedule; ``None`` means "the rung
    #: ``opt`` maps to" (see ``repro.compiler.transforms.OPT_PASSES``).
    #: When set, it overrides the rung's pass list.
    passes: tuple[str, ...] | None = None
    #: kernel-execution backend for the semantic paths hanging off this
    #: config (golden checks, digest ladders, chaos drills); the timing
    #: model is backend-independent.  See ``repro.backends.BACKENDS``.
    backend: str = "numpy"
    #: time the full assemble+solve cycle: after the assembly sweep the
    #: Krylov solver kernels (SpMV / dot / axpy / Jacobi apply, phases
    #: 9-12) run through the same machine model, and the payload carries
    #: a ``__solve__`` convergence record (iterations, residual,
    #: converged).  Off by default so existing keys/caches stay stable.
    solve: bool = False

    @classmethod
    def from_kwargs(cls, mesh: MeshSpec | None = None, **kwargs) -> "RunConfig":
        """Build a config from loose keyword arguments.

        ``mesh`` accepts a preset name (``"quick"`` / ``"full"``), explicit
        dims, or ``None`` (full mesh); ``vs`` is accepted as an alias for
        ``vector_size`` (the CLI flag's spelling).  Unknown keywords raise
        ``TypeError`` so typos don't silently fall back to defaults.
        """
        if "vs" in kwargs:
            kwargs["vector_size"] = kwargs.pop("vs")
        if "mesh_dims" in kwargs:
            mesh = kwargs.pop("mesh_dims")
        if kwargs.get("passes") is not None:
            kwargs["passes"] = tuple(kwargs["passes"])
        known = {"machine", "opt", "vector_size", "cache_enabled",
                 "field_seed", "passes", "backend", "solve"}
        unknown = set(kwargs) - known
        if unknown:
            raise TypeError(f"unknown RunConfig argument(s): {sorted(unknown)}")
        cfg = cls(mesh_dims=resolve_mesh(mesh), **kwargs)
        _check_registries(cfg)
        return cfg

    def to_dict(self) -> dict:
        """JSON-able form (the sweep service's wire format); round-trips
        through :meth:`from_dict`."""
        out = {
            "machine": self.machine,
            "opt": self.opt,
            "vector_size": self.vector_size,
            "mesh_dims": list(self.mesh_dims),
            "cache_enabled": self.cache_enabled,
            "field_seed": self.field_seed,
            "backend": self.backend,
        }
        if self.passes is not None:
            out["passes"] = list(self.passes)
        if self.solve:
            out["solve"] = True
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "RunConfig":
        """Inverse of :meth:`to_dict`; unknown keys raise ``TypeError``
        (same contract as :meth:`from_kwargs`)."""
        data = dict(data)
        mesh = data.pop("mesh_dims", None)
        return cls.from_kwargs(mesh=mesh, **data)

    def key(self) -> str:
        """Stable cache key."""
        nx, ny, nz = self.mesh_dims
        key = (
            f"{self.machine}-{self.opt}-vs{self.vector_size}"
            f"-mesh{nx}x{ny}x{nz}-cache{int(self.cache_enabled)}"
            f"-seed{self.field_seed}"
        )
        if self.passes is not None:
            key += f"-passes[{','.join(self.passes)}]"
        if self.backend != "numpy":
            # timing payloads are backend-independent, but semantic
            # artifacts (digest files) are keyed per config; keep the
            # default spelling stable for existing caches/baselines.
            key += f"-be[{self.backend}]"
        if self.solve:
            # suffix only when set, so assembly-only keys (and every
            # existing cache entry / bench baseline) are unchanged.
            key += "-solve"
        return key
