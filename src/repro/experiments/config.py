"""Experiment configuration.

The paper sweeps six VECTOR_SIZE values (Section 2.3, footnote 4: 240 is
included because the Vitruvius FSM maximizes throughput at multiples of
40) over cumulative optimization levels on three platforms.  The default
mesh has 7680 elements = lcm(240, 512) * 3, so every VECTOR_SIZE divides
the element count evenly and no configuration is biased by chunk
padding.
"""

from __future__ import annotations

from dataclasses import dataclass

#: the six VECTOR_SIZE values studied in the paper.
VECTOR_SIZES: tuple[int, ...] = (16, 64, 128, 240, 256, 512)

#: cumulative optimization levels, paper order.
OPTS: tuple[str, ...] = ("scalar", "vanilla", "vec2", "ivec2", "vec1")

#: platforms of the portability study (Table 2 / Figure 12).
PLATFORMS: tuple[str, ...] = ("riscv_vec", "sx_aurora", "mn4_avx512")

#: default mesh: 16 x 16 x 30 = 7680 HEX08 elements (8959 nodes); every
#: VECTOR_SIZE in the sweep divides 7680.
FULL_MESH: tuple[int, int, int] = (16, 16, 30)

#: small mesh for fast runs / tests: 960 elements (VECTOR_SIZE = 256 and
#: 512 need tail padding here).
QUICK_MESH: tuple[int, int, int] = (8, 8, 15)


@dataclass(frozen=True)
class RunConfig:
    """One mini-app execution configuration."""

    machine: str = "riscv_vec"
    opt: str = "vanilla"
    vector_size: int = 240
    mesh_dims: tuple[int, int, int] = FULL_MESH
    cache_enabled: bool = True
    field_seed: int = 0

    def key(self) -> str:
        """Stable cache key."""
        nx, ny, nz = self.mesh_dims
        return (
            f"{self.machine}-{self.opt}-vs{self.vector_size}"
            f"-mesh{nx}x{ny}x{nz}-cache{int(self.cache_enabled)}"
            f"-seed{self.field_seed}"
        )
