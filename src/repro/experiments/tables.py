"""Generators for the paper's Tables 1-6.

Each function returns a small result object carrying the data in the
paper's layout plus ``rows()`` for plain rendering through
:mod:`repro.experiments.report`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.compiler.flags import TABLE1_ROWS
from repro.experiments.config import VECTOR_SIZES
from repro.experiments.runner import Session
from repro.machine.machines import MACHINES
from repro.metrics import metrics as M
from repro.metrics.regression import RegressionResult, cycles_vs_memory_model

PHASES = tuple(range(1, 9))


# -- Table 1 ----------------------------------------------------------------


@dataclass
class Table1:
    """Compiler options used for enabling auto-vectorization."""

    flags: tuple[tuple[str, str], ...] = TABLE1_ROWS

    def rows(self) -> list[list[str]]:
        return [["Flag", "Description"]] + [list(r) for r in self.flags]


def table1() -> Table1:
    return Table1()


# -- Table 2 ----------------------------------------------------------------


@dataclass
class Table2:
    """HPC platforms: hardware and software configuration (per core)."""

    columns: list[str]
    data: dict[str, list[str]]

    def rows(self) -> list[list[str]]:
        out = [[""] + self.columns]
        for label, vals in self.data.items():
            out.append([label] + vals)
        return out


def table2() -> Table2:
    machines = [MACHINES["riscv_vec"], MACHINES["mn4_avx512"], MACHINES["sx_aurora"]]
    data = {
        "Architecture": [m.isa for m in machines],
        "Cores per socket": [str(m.cores_per_socket) for m in machines],
        "Frequency [MHz]": [f"{m.frequency_mhz:g}" for m in machines],
        "Bandwidth [Bytes/cycle]": [
            f"{m.memory.bandwidth_bytes_per_cycle:g}" for m in machines],
        "Throughput [FLOP/cycle]": [
            f"{m.peak_flops_per_cycle:g}" for m in machines],
        "Compiler": [m.compiler for m in machines],
        "OS": [m.os for m in machines],
    }
    return Table2(columns=[m.name for m in machines], data=data)


# -- Table 3 ----------------------------------------------------------------


@dataclass
class Table3:
    """Percentage of total cycles per phase, scalar execution."""

    fractions: dict[int, float]

    def rows(self) -> list[list[str]]:
        head = ["Phase"] + [str(p) for p in PHASES]
        vals = ["% of total cycles"] + [
            f"{100 * self.fractions.get(p, 0.0):.1f}%" for p in PHASES]
        return [head, vals]


def table3(session: Session) -> Table3:
    run = session.scalar_baseline()
    return Table3(fractions=run.cycle_fractions())


# -- Table 4 ----------------------------------------------------------------


@dataclass
class Table4:
    """Vanilla vector instruction mix M_v per (VECTOR_SIZE, phase)."""

    mix: dict[int, dict[int, float]]  # vs -> phase -> M_v

    def rows(self) -> list[list[str]]:
        out = [["VECTOR_SIZE"] + [str(p) for p in PHASES]]
        for vs in sorted(self.mix):
            out.append([str(vs)] + [
                f"{100 * self.mix[vs].get(p, 0.0):.1f}%" for p in PHASES])
        return out


def table4(session: Session, opt: str = "vanilla") -> Table4:
    session.run_many([session.config(opt=opt, vector_size=vs)
                      for vs in VECTOR_SIZES])
    mix: dict[int, dict[int, float]] = {}
    for vs in VECTOR_SIZES:
        run = session.run(opt=opt, vector_size=vs)
        mix[vs] = {p: M.vector_mix(run.phases[p]) for p in run.phase_ids()}
    return Table4(mix=mix)


# -- Table 5 ----------------------------------------------------------------


@dataclass
class Table5:
    """vCPI, AVL and number of vector instructions in phase 6."""

    per_vs: dict[int, tuple[float, float, float]]  # vs -> (vcpi, avl, n)

    def rows(self) -> list[list[str]]:
        out = [["VECTOR_SIZE", "vCPI", "AVL", "Number vector instructions"]]
        for vs in sorted(self.per_vs):
            vcpi, avl, n = self.per_vs[vs]
            out.append([str(vs), f"{vcpi:.2f}", f"{avl:.0f}", f"{n:.3g}"])
        return out


def table5(session: Session, phase: int = 6, opt: str = "vanilla") -> Table5:
    session.run_many([session.config(opt=opt, vector_size=vs)
                      for vs in VECTOR_SIZES])
    per_vs = {}
    for vs in VECTOR_SIZES:
        pc = session.run(opt=opt, vector_size=vs).phases[phase]
        per_vs[vs] = (M.vcpi(pc), M.avl(pc), pc.i_v)
    return Table5(per_vs=per_vs)


# -- Table 6 ----------------------------------------------------------------


@dataclass
class Table6:
    """Coefficient of determination of the cycles ~ L1-DCM/ki + %mem model."""

    results: dict[int, RegressionResult]

    def rows(self) -> list[list[str]]:
        out = [["Phase", "CoD (R^2)"]]
        for p in sorted(self.results):
            out.append([f"Phase {p}", f"{self.results[p].r_squared:.3f}"])
        return out


def table6(session: Session, phases: tuple[int, ...] = (1, 8),
           opt: str = "vec1") -> Table6:
    """Regress per-phase cycles on the two memory predictors over the
    VECTOR_SIZE sweep (the paper's phases 1 and 8 analysis)."""
    session.run_many([session.config(opt=opt, vector_size=vs)
                      for vs in VECTOR_SIZES])
    results = {}
    for phase in phases:
        cycles, dcm, memr = [], [], []
        for vs in VECTOR_SIZES:
            pc = session.run(opt=opt, vector_size=vs).phases[phase]
            cycles.append(pc.cycles_total)
            dcm.append(M.dcm_per_kiloinstruction(pc))
            memr.append(M.mem_instruction_ratio(pc))
        results[phase] = cycles_vs_memory_model(cycles, dcm, memr)
    return Table6(results=results)
