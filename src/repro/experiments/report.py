"""Plain-text rendering of tables and figures.

The harness prints the same rows/series the paper reports, as aligned
ASCII tables, heat-shaded grids (Tables 3/4) and horizontal bar charts
(the figure reproductions).  Everything returns strings so the examples
and benchmarks can both print and assert on them.
"""

from __future__ import annotations

from typing import Sequence

#: shading ramp used for heatmap cells (low -> high).
_SHADES = " .:-=+*#%@"


def format_table(rows: Sequence[Sequence[str]], pad: int = 2) -> str:
    """Align a list of string rows into a fixed-width table."""
    if not rows:
        return ""
    ncol = max(len(r) for r in rows)
    widths = [0] * ncol
    for r in rows:
        for i, cell in enumerate(r):
            widths[i] = max(widths[i], len(str(cell)))
    sep = " " * pad
    lines = []
    for idx, r in enumerate(rows):
        line = sep.join(str(c).ljust(widths[i]) for i, c in enumerate(r)).rstrip()
        lines.append(line)
        if idx == 0:
            lines.append("-" * len(line))
    return "\n".join(lines)


def shade(value: float, lo: float, hi: float) -> str:
    """One shading character for a heat cell."""
    if hi <= lo:
        return _SHADES[0]
    t = max(0.0, min(1.0, (value - lo) / (hi - lo)))
    return _SHADES[int(round(t * (len(_SHADES) - 1)))]


def format_heatmap(xs: Sequence, ys: Sequence, values: dict,
                   fmt: str = "{:.1f}") -> str:
    """Render ``values[(y, x)]`` as a shaded grid (rows = ys)."""
    flat = [values[(y, x)] for y in ys for x in xs]
    lo, hi = min(flat), max(flat)
    rows = [[""] + [str(x) for x in xs]]
    for y in ys:
        cells = []
        for x in xs:
            v = values[(y, x)]
            cells.append(f"{fmt.format(v)} {shade(v, lo, hi)}")
        rows.append([str(y)] + cells)
    return format_table(rows)


def format_barchart(labels: Sequence[str], values: Sequence[float],
                    width: int = 48, fmt: str = "{:.3g}") -> str:
    """Horizontal bar chart, one row per label."""
    if not labels:
        return ""
    peak = max(values) if max(values) > 0 else 1.0
    lw = max(len(str(l)) for l in labels)
    lines = []
    for label, v in zip(labels, values):
        bar = "#" * max(0, int(round(width * v / peak)))
        lines.append(f"{str(label).ljust(lw)}  {bar} {fmt.format(v)}")
    return "\n".join(lines)


def format_series_barchart(series_obj, width: int = 40) -> str:
    """Render a figures.Series as grouped bars per x value."""
    lines = [series_obj.title, ""]
    peak = max(max(v) for v in series_obj.series.values())
    lw = max(len(k) for k in series_obj.series)
    for i, x in enumerate(series_obj.xs):
        lines.append(f"{series_obj.xlabel} = {x}")
        for label, vals in series_obj.series.items():
            v = vals[i]
            bar = "#" * max(0, int(round(width * v / peak))) if peak else ""
            lines.append(f"  {label.ljust(lw)}  {bar} {v:.4g}")
    return "\n".join(lines)


def render(obj) -> str:
    """Render any tables/figures result object."""
    if hasattr(obj, "rows"):
        body = format_table(obj.rows())
        title = getattr(obj, "title", None)
        return f"{title}\n{body}" if title else body
    raise TypeError(f"cannot render {type(obj).__name__}")
