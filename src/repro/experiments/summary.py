"""Full evaluation report: every table and figure in one document.

``evaluation_report`` regenerates the paper's complete evaluation
section as a single text document -- the machine-readable counterpart of
EXPERIMENTS.md.  Exposed on the CLI as ``python -m repro report``.
"""

from __future__ import annotations


from repro.experiments import figures as F
from repro.experiments import report as R
from repro.experiments import tables as T
from repro.experiments.executor import ExecutionPlan
from repro.experiments.runner import Session

#: (artifact id, paper caption) in paper order.
ARTIFACTS: tuple[tuple[str, str], ...] = (
    ("table1", "Compiler options used for enabling auto-vectorization"),
    ("table2", "HPC platforms: hardware and software configuration"),
    ("table3", "Percentage total cycles spent per phase (scalar)"),
    ("figure2", "Total cycles, vanilla mini-app with auto-vectorization"),
    ("table4", "Vanilla vector instruction mix M_v"),
    ("figure3", "Absolute number and type of vector instructions"),
    ("table5", "vCPI, AVL and number of vector instructions in phase 6"),
    ("figure4", "Percentage cycles spent per phase (vanilla)"),
    ("figure5", "Absolute cycles phase 2 (original vs VEC2)"),
    ("figure6", "Resulting cycles phase 2 (+ IVEC2)"),
    ("figure7", "Resulting cycles phase 1 (original vs VEC1)"),
    ("figure8", "Percentage total cycles per phase after optimizations"),
    ("figure9", "Percentage of cycles w.r.t. VECTOR_SIZE = 16"),
    ("figure10", "Vector occupancy"),
    ("table6", "Coefficient of determination, phases 1 and 8"),
    ("figure11", "Speed-up with respect to scalar VECTOR_SIZE = 16"),
    ("figure12", "Speed-up of optimizations on different HPC platforms"),
    ("figure13", "Speed-up of optimizations on MareNostrum 4"),
)


def render_artifact(name: str, session: Session) -> str:
    """Render one table/figure by id ('table3', 'figure11', ...)."""
    if name.startswith("table"):
        n = int(name.removeprefix("table"))
        fn = {1: T.table1, 2: T.table2, 3: T.table3, 4: T.table4,
              5: T.table5, 6: T.table6}[n]
        obj = fn() if n in (1, 2) else fn(session)
        return R.format_table(obj.rows())
    if name.startswith("figure"):
        n = int(name.removeprefix("figure"))
        fn = {2: F.figure2, 3: F.figure3, 4: F.figure4, 5: F.figure5,
              6: F.figure6, 7: F.figure7, 8: F.figure8, 9: F.figure9,
              10: F.figure10, 11: F.figure11, 12: F.figure12,
              13: F.figure13}[n]
        return R.format_table(fn(session).rows())
    raise KeyError(f"unknown artifact {name!r}")


def vl_histogram_section(session: Session, machine: str = "riscv_vec",
                         opt: str = "vec1", vector_size: int = 240) -> str:
    """Per-phase granted-vl (AVL) distributions for one configuration.

    Rendered from the per-phase ``vl_hist`` counters every run already
    records, so a warm cache answers instantly.  With ``vector_size``
    a multiple of 40 every bar lands on a Vitruvius fast length; re-run
    with e.g. ``--vs 250`` to watch the mod-40 fraction collapse.
    """
    from repro.obs.render import mod40_fraction, render_vl_hist

    run = session.run(machine=machine, opt=opt, vector_size=vector_size)
    lines = [f"granted-vl histograms: {machine}, {opt}, "
             f"VECTOR_SIZE = {vector_size}"]
    whole: dict[int, float] = {}
    for pid in run.phase_ids():
        hist = dict(run.phases[pid].vl_hist)
        if not hist:
            continue
        for vl, count in hist.items():
            whole[vl] = whole.get(vl, 0) + count
        lines.append(render_vl_hist(hist, title=f"phase {pid}", width=30))
    if not whole:
        lines.append("(no vector instructions)")
    else:
        lines.append(
            f"whole run: {100 * mod40_fraction(whole):.0f}% of dynamic "
            f"vector instructions at vl % 40 == 0 (Vitruvius fast lengths)")
    return "\n".join(lines)


def solver_convergence_section(session: Session, machine: str = "riscv_vec",
                               opt: str = "vanilla",
                               vector_size: int = 240) -> str:
    """The timed Krylov path: per-solver-kernel cycles + convergence.

    The cycle rows come from the ``solve=True`` run the standard plan
    already pre-warmed (phases 9-12 of the assemble+solve cycle); the
    convergence lines re-run the cheap NumPy reference solve, which is
    the same backend-independent solve whose iteration count priced the
    timed path.
    """
    from repro.cfd.solver_phases import SOLVER_PHASE_NAMES
    from repro.experiments.config import RunConfig
    from repro.experiments.executor import build_miniapp

    cfg = RunConfig(machine=machine, opt=opt, vector_size=vector_size,
                    mesh_dims=session.mesh_dims, solve=True,
                    backend=session.backend)
    run = session.run(cfg)
    total = sum(run.phases[p].cycles_total for p in run.phase_ids())
    rows = [["phase", "solver kernel", "cycles", "% of assemble+solve"]]
    for pid in sorted(SOLVER_PHASE_NAMES):
        if pid not in run.phases:
            continue
        pc = run.phases[pid]
        rows.append([str(pid), SOLVER_PHASE_NAMES[pid],
                     f"{pc.cycles_total:,.0f}",
                     f"{100 * pc.cycles_total / total:.1f}%"])
    lines = [R.format_table(rows), ""]
    app = build_miniapp(cfg)
    for method in ("cg", "bicgstab"):
        res = app.reference_solve(method)
        lines.append(f"{method:9s} converged={res.converged} "
                     f"iterations={res.iterations} "
                     f"final relative residual={res.residual:.3e}")
    return "\n".join(lines)


def evaluation_report(session: Session) -> str:
    """The complete evaluation section as one text document.

    Pre-warms the cache with the full standard sweep through
    ``Session.run_many`` (parallel when the session has ``jobs > 1``)
    before any artifact renders, so rendering itself is pure recall.
    """
    session.run_many(ExecutionPlan.standard(session.mesh_dims))
    nx, ny, nz = session.mesh_dims
    lines = [
        "REPRODUCTION EVALUATION REPORT",
        "paper: Exploiting long vectors with a CFD code (IPPS 2024)",
        f"mesh: {nx}x{ny}x{nz} = {nx * ny * nz} HEX08 elements",
        "",
    ]
    for name, caption in ARTIFACTS:
        kind, num = ("Table", name.removeprefix("table")) \
            if name.startswith("table") else ("Figure", name.removeprefix("figure"))
        lines.append("=" * 72)
        lines.append(f"{kind} {num}: {caption}")
        lines.append("=" * 72)
        lines.append(render_artifact(name, session))
        lines.append("")
    lines.append("=" * 72)
    lines.append("Observability: AVL distribution per phase (vec1, vs 240)")
    lines.append("=" * 72)
    lines.append(vl_histogram_section(session))
    lines.append("")
    lines.append("=" * 72)
    lines.append("Solver: the timed Krylov path (phases 9-12, vanilla, vs 240)")
    lines.append("=" * 72)
    lines.append(solver_convergence_section(session))
    lines.append("")
    # headline summary
    f11 = F.figure11(session)
    best = max(f11.series["vec1"])
    best_vs = f11.xs[f11.series["vec1"].index(best)]
    lines.append("=" * 72)
    lines.append(f"HEADLINE: {best:.2f}x over scalar at VECTOR_SIZE = {best_vs} "
                 f"(paper: 7.6x at 240)")
    lines.append("=" * 72)
    return "\n".join(lines)
