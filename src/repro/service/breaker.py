"""Circuit breaker: stop feeding work to a failing backend.

When worker or validation failures repeat, retrying harder only burns
the queue and amplifies the outage.  The breaker trips **open** after
``failure_threshold`` consecutive job failures: new submissions are
rejected explicitly (the admission contract — never a silent drop).
After ``cooldown_s`` it **half-opens**: exactly one probe job is allowed
through; a probe success closes the circuit, a probe failure re-opens it
for another cooldown.

State transitions are driven by the service loop calling
:meth:`record_success` / :meth:`record_failure` per processed job, and
by :meth:`allow` at submit/dispatch time.  The clock is injectable so
chaos drills step time instead of sleeping.  Every transition fires the
optional ``on_transition(old, new)`` hook — the telemetry plane counts
them (``breaker_transitions_total``), so a flapping breaker is visible
in ``repro top`` rather than only in the moment's ``health`` snapshot.
"""

from __future__ import annotations

import time
from typing import Callable, Optional

CLOSED, OPEN, HALF_OPEN = "closed", "open", "half_open"


class CircuitBreaker:
    def __init__(self, failure_threshold: int = 3, cooldown_s: float = 30.0,
                 clock: Callable[[], float] = time.monotonic):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        self.failure_threshold = failure_threshold
        self.cooldown_s = cooldown_s
        self._clock = clock
        self._state = CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._probe_outstanding = False
        #: total trips, for the health endpoint.
        self.trips = 0
        #: observer called as ``on_transition(old_state, new_state)``;
        #: a crashing observer must not take the breaker down with it.
        self.on_transition: Optional[Callable[[str, str], None]] = None

    def _set_state(self, new: str) -> None:
        old = self._state
        if old == new:
            return
        self._state = new
        if self.on_transition is not None:
            try:
                self.on_transition(old, new)
            except Exception:  # pragma: no cover - observer bug
                pass

    @property
    def state(self) -> str:
        """Current state, promoting OPEN -> HALF_OPEN once cooled down."""
        if (self._state == OPEN
                and self._clock() - self._opened_at >= self.cooldown_s):
            self._set_state(HALF_OPEN)
            self._probe_outstanding = False
        return self._state

    def allow(self) -> bool:
        """May one more job pass?  CLOSED: yes.  OPEN: no.  HALF_OPEN:
        only the single probe."""
        state = self.state
        if state == CLOSED:
            return True
        if state == HALF_OPEN and not self._probe_outstanding:
            self._probe_outstanding = True
            return True
        return False

    def record_success(self) -> None:
        self._consecutive_failures = 0
        self._probe_outstanding = False
        self._set_state(CLOSED)

    def record_failure(self) -> None:
        self._consecutive_failures += 1
        if self._state == HALF_OPEN:
            # failed probe: straight back to OPEN for another cooldown.
            self._trip()
        elif (self._state == CLOSED
                and self._consecutive_failures >= self.failure_threshold):
            self._trip()

    def _trip(self) -> None:
        self._set_state(OPEN)
        self._opened_at = self._clock()
        self._probe_outstanding = False
        self.trips += 1

    def describe(self) -> str:
        state = self.state
        if state == OPEN:
            remaining = self.cooldown_s - (self._clock() - self._opened_at)
            return (f"open ({self._consecutive_failures} consecutive "
                    f"failure(s); half-open probe in {max(0.0, remaining):.1f}s)")
        if state == HALF_OPEN:
            return "half-open (one probe job admitted)"
        return "closed"

    def health(self) -> dict:
        return {"state": self.state, "trips": self.trips,
                "consecutive_failures": self._consecutive_failures}
