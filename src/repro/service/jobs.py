"""Job records + the durable service journal.

One :class:`Job` is one submitted sweep: an ordered tuple of
:class:`~repro.experiments.config.RunConfig` plus tenant, priority, and
per-config completion state.  Job lifecycle is journaled to an
append-only fsynced JSONL file (the same :class:`SweepJournal` machinery
the executor uses, including torn-tail repair on open), so a service
killed at any instant resumes with zero completed results lost:

* ``service_start`` / ``service_stop`` — process lifecycle;
* ``submit`` — full job record (configs serialized via
  ``RunConfig.to_dict``);
* ``rejected`` — an admission rejection (accounting: every submission
  leaves a durable trace, admitted or not);
* ``job_start`` — a worker picked the job up;
* ``config_done`` — one config completed, with its result digest and
  provenance (``computed`` / ``store`` / ``cache``); written *after*
  the payload is durably in the result store, so the journal is never
  ahead of the data;
* ``job_done`` / ``job_failed`` — terminal states;
* ``slo_breach`` — a per-tenant SLO verdict flipped to breached (see
  :mod:`repro.service.telemetry`); journaled so degradation episodes
  are durable first-class events, not dashboard ephemera;
* ``drain`` — graceful-shutdown request accepted.

:func:`replay_service_journal` folds the file into the job table; jobs
that were queued or running when the process died come back ``queued``
with their ``completed`` maps intact — the service re-dispatches them
and every already-completed config is served from the store, not
recomputed.  The fold also tallies per-tenant submit / reject /
done / failed counts and per-source config completions, which is how
the telemetry plane's counters survive ``kill -9``
(:meth:`repro.service.telemetry.ServiceTelemetry.seed`).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Optional

from repro.experiments.config import RunConfig
from repro.experiments.journal import SweepJournal, repair_torn_tail  # noqa: F401

#: job states.
QUEUED, RUNNING, DONE, FAILED = "queued", "running", "done", "failed"


@dataclass
class Job:
    """One submitted sweep and its completion state."""

    job_id: str
    tenant: str
    priority: float
    configs: tuple[RunConfig, ...]
    status: str = QUEUED
    #: workload kind: ``sweep`` (plain submission) or ``autotune`` (a
    #: candidate-timing plan submitted by ``repro autotune``); journaled
    #: so the label survives restart.
    kind: str = "sweep"
    #: cfg key -> result digest, completed so far.
    completed: dict = field(default_factory=dict)
    #: cfg key -> provenance: ``computed`` (simulated in this job),
    #: ``store`` (cross-tenant/job dedup hit), ``cache`` (executor cache
    #: entry adopted into the store on resume).
    sources: dict = field(default_factory=dict)
    #: cfg key -> error for configs that failed permanently.
    failed: dict = field(default_factory=dict)
    error: str = ""
    #: in-memory RunEvent stream for poll/stream (not journaled; a
    #: restarted service starts this ring empty).
    events: list = field(default_factory=list)
    #: trace context stamped by a traced ``submit`` (journaled, so a
    #: resumed job keeps its correlation id across restarts).
    trace_id: str = ""
    #: service-clock instant the job entered the queue (re-stamped at
    #: requeue on resume); queue-wait = dispatch time minus this.
    submitted_at: float = 0.0
    #: per-job tracer collecting the cross-process timeline of a traced
    #: job (in-memory only; exported to state_dir/traces/ on terminal).
    tracer: Optional[object] = field(default=None, repr=False)

    @property
    def total(self) -> int:
        return len(self.configs)

    @property
    def from_store(self) -> int:
        """Configs served without recomputation (store or cache dedup)."""
        return sum(1 for s in self.sources.values() if s != "computed")

    @property
    def recomputed(self) -> int:
        return sum(1 for s in self.sources.values() if s == "computed")

    def view(self) -> dict:
        """JSON-able summary (the ``poll`` / ``jobs`` wire payload)."""
        return {
            "job_id": self.job_id,
            "tenant": self.tenant,
            "priority": self.priority,
            "kind": self.kind,
            "status": self.status,
            "total": self.total,
            "completed": len(self.completed),
            "from_store": self.from_store,
            "recomputed": self.recomputed,
            "failed": dict(self.failed),
            "error": self.error,
            "events": len(self.events),
            "trace_id": self.trace_id,
        }


@dataclass
class ServiceState:
    """Folded view of a service journal."""

    jobs: dict = field(default_factory=dict)  # job_id -> Job
    #: submission order, for deterministic re-dispatch of resumed jobs.
    order: list = field(default_factory=list)
    rejected: int = 0
    draining: bool = False
    #: per-tenant tallies, folded from the journal so the telemetry
    #: plane's counters survive restart (see ServiceTelemetry.seed).
    tenant_submits: dict = field(default_factory=dict)
    tenant_rejects: dict = field(default_factory=dict)
    tenant_done: dict = field(default_factory=dict)
    tenant_failed: dict = field(default_factory=dict)
    #: config completions by provenance (computed / store / cache).
    configs_done: dict = field(default_factory=dict)
    #: journaled SLO breach records: {"tenant": ..., "slo": ...}.
    slo_breaches: list = field(default_factory=list)

    def next_seq(self) -> int:
        best = 0
        for job_id in self.jobs:
            try:
                best = max(best, int(job_id.lstrip("j")))
            except ValueError:  # pragma: no cover - foreign id scheme
                continue
        return best + 1

    def unfinished(self) -> list:
        """Jobs to re-dispatch after a restart, submission order."""
        return [self.jobs[j] for j in self.order
                if self.jobs[j].status in (QUEUED, RUNNING)]


def replay_service_journal(path: str | os.PathLike) -> Optional[ServiceState]:
    """Fold a service journal; ``None`` when the file does not exist.

    Tolerates torn tails exactly like the sweep journal (the writer
    repairs them on open; the reader skips anything unparsable).  Jobs
    interrupted mid-flight come back ``queued`` with completion state
    intact.
    """
    from repro.experiments.journal import replay_journal  # noqa: F401
    import json
    from pathlib import Path

    p = Path(path)
    try:
        raw = p.read_bytes()
    except (FileNotFoundError, OSError):
        return None
    state = ServiceState()
    for bline in raw.split(b"\n"):
        try:
            line = bline.decode("utf-8").strip()
        except UnicodeDecodeError:
            continue  # torn binary tail: recover the prefix
        if not line:
            continue
        try:
            rec = json.loads(line)
            ev = rec["ev"]
        except (json.JSONDecodeError, TypeError, KeyError):
            continue  # torn trailing write: never crash
        if ev == "submit":
            try:
                configs = tuple(RunConfig.from_dict(c)
                                for c in rec["configs"])
            except (KeyError, TypeError, ValueError):
                continue  # unreadable job record: skip it whole
            job = Job(job_id=rec.get("job_id", ""),
                      tenant=rec.get("tenant", "default"),
                      priority=float(rec.get("priority", 0)),
                      configs=configs,
                      kind=str(rec.get("kind", "sweep") or "sweep"),
                      trace_id=str(rec.get("trace_id", "") or ""))
            state.jobs[job.job_id] = job
            state.order.append(job.job_id)
            state.tenant_submits[job.tenant] = (
                state.tenant_submits.get(job.tenant, 0) + 1)
        elif ev == "rejected":
            state.rejected += 1
            tenant = rec.get("tenant", "default")
            state.tenant_rejects[tenant] = (
                state.tenant_rejects.get(tenant, 0) + 1)
        elif ev == "job_start":
            job = state.jobs.get(rec.get("job_id", ""))
            if job is not None:
                job.status = RUNNING
        elif ev == "config_done":
            job = state.jobs.get(rec.get("job_id", ""))
            if job is not None and rec.get("key"):
                job.completed[rec["key"]] = rec.get("digest", "")
                source = rec.get("source", "computed")
                job.sources[rec["key"]] = source
                state.configs_done[source] = (
                    state.configs_done.get(source, 0) + 1)
        elif ev == "job_done":
            job = state.jobs.get(rec.get("job_id", ""))
            if job is not None:
                job.status = DONE
                state.tenant_done[job.tenant] = (
                    state.tenant_done.get(job.tenant, 0) + 1)
        elif ev == "job_failed":
            job = state.jobs.get(rec.get("job_id", ""))
            if job is not None:
                job.status = FAILED
                job.error = rec.get("error", "")
                job.failed.update(rec.get("failed", {}))
                state.tenant_failed[job.tenant] = (
                    state.tenant_failed.get(job.tenant, 0) + 1)
        elif ev == "slo_breach":
            state.slo_breaches.append({
                "tenant": rec.get("tenant", "default"),
                "slo": rec.get("slo", "")})
        elif ev == "drain":
            state.draining = True
        elif ev == "service_start":
            # a fresh process: drain state does not survive a restart.
            state.draining = False
    # jobs caught mid-flight resume from the front of the queue.
    for job in state.unfinished():
        job.status = QUEUED
    return state


class ServiceJournal(SweepJournal):
    """The service-level journal writer: same append-only fsynced
    discipline (and torn-tail repair) as the executor's sweep journal,
    different record vocabulary."""
