"""Priority scheduling with starvation aging.

Jobs carry an integer priority (higher = sooner).  A pure priority
queue starves low-priority tenants whenever a high-priority tenant
keeps the queue warm, so the scheduler ages waiting jobs: a job's
*effective* priority grows by ``aging_per_s`` for every second it has
waited.  Given enough patience every job's effective priority exceeds
any fixed submission priority — starvation is bounded, not possible.

Ties (equal effective priority) break FIFO by submission sequence.  The
queue is small (jobs, not runs), so selection is a linear scan — O(n)
with n in the tens, and trivially correct under lazy aging, where a
heap would need re-keying.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class _Entry:
    job_id: str
    priority: float
    enqueued_at: float
    seq: int


class PriorityScheduler:
    def __init__(self, aging_per_s: float = 0.1):
        self.aging_per_s = aging_per_s
        self._entries: list[_Entry] = []
        self._seq = 0

    def __len__(self) -> int:
        return len(self._entries)

    def push(self, job_id: str, priority: float, now: float) -> None:
        self._entries.append(_Entry(job_id, float(priority), now, self._seq))
        self._seq += 1

    def effective_priority(self, entry: _Entry, now: float) -> float:
        return entry.priority + max(0.0, now - entry.enqueued_at) * self.aging_per_s

    def pop(self, now: float) -> str | None:
        """Remove and return the most urgent job id (``None`` if idle)."""
        if not self._entries:
            return None
        best = max(self._entries,
                   key=lambda e: (self.effective_priority(e, now), -e.seq))
        self._entries.remove(best)
        return best.job_id

    def queued_ids(self) -> list[str]:
        """Job ids currently queued, in submission order."""
        return [e.job_id for e in sorted(self._entries, key=lambda e: e.seq)]
