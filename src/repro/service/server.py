"""Local-socket front end for :class:`~repro.service.core.SweepService`.

Wire protocol: newline-delimited JSON over an ``AF_UNIX`` stream socket.
Each connection sends one request object and reads one response line —
except ``stream``, which keeps the connection open and receives one
``{"event": ...}`` line per run event followed by a terminal
``{"done": true, "job": view}`` line.

Requests (``op`` selects the verb)::

    {"op": "submit", "configs": [RunConfig.to_dict(), ...],
     "tenant": "alice", "priority": 1, "trace_id": "8f3a...",
     "kind": "sweep"}
    {"op": "poll",   "job_id": "j00001"}
    {"op": "stream", "job_id": "j00001"}
    {"op": "jobs"}
    {"op": "fetch",  "job_id": "j00001"}
    {"op": "health"}
    {"op": "metrics"}
    {"op": "drain"}
    {"op": "shutdown"}

``trace_id`` on ``submit`` is optional trace context: the service stamps
it through the journal, worker processes, and store payloads so the
job's whole lifetime is one cross-process timeline (``repro trace
--job``).  ``metrics`` returns the telemetry plane's deterministic
registry snapshot plus per-tenant SLO verdicts.

Responses always carry ``ok``; a rejected submission is
``{"ok": false, "rejected": reason}`` — the admission layer's explicit
refusal, distinct from ``{"ok": false, "error": ...}`` (a malformed
request).  The server never kills the process on a bad request; a
request it cannot parse gets an error response and the connection moves
on — robustness at the front door, same as everywhere else.

One background thread runs the service loop (jobs execute strictly one
at a time; *within* a job the executor fans out over its process pool),
while the socket server handles each connection on its own thread.
``drain`` finishes queued work then stops the loop; ``shutdown`` stops
immediately after the running job.
"""

from __future__ import annotations

import json
import os
import socket
import socketserver
import threading
from pathlib import Path
from typing import Optional

from repro.experiments.config import RunConfig
from repro.service.core import SweepService


def _parse_configs(raw) -> list[RunConfig]:
    if not isinstance(raw, list) or not raw:
        raise ValueError("configs must be a non-empty list of config objects")
    return [RunConfig.from_dict(c) for c in raw]


class SweepServer:
    """Owns the service, its worker-loop thread, and the unix socket."""

    def __init__(self, service: SweepService, socket_path: str | os.PathLike):
        self.service = service
        self.socket_path = Path(socket_path)
        self._stop = threading.Event()
        self._loop_thread: Optional[threading.Thread] = None
        try:
            self.socket_path.unlink()  # stale socket from a killed server
        except FileNotFoundError:
            pass
        self.socket_path.parent.mkdir(parents=True, exist_ok=True)
        outer = self

        class Handler(socketserver.StreamRequestHandler):
            def handle(self) -> None:  # pragma: no cover - thin dispatch
                outer._handle(self)

        class Server(socketserver.ThreadingMixIn,
                     socketserver.UnixStreamServer):
            daemon_threads = True
            allow_reuse_address = True

        self._server = Server(str(self.socket_path), Handler)

    # -- request handling --------------------------------------------------

    def _handle(self, handler: socketserver.StreamRequestHandler) -> None:
        try:
            line = handler.rfile.readline()
            if not line:
                return
            try:
                req = json.loads(line.decode("utf-8"))
                if not isinstance(req, dict):
                    raise ValueError("request must be a JSON object")
                op = req.get("op")
            except (json.JSONDecodeError, UnicodeDecodeError, ValueError) as exc:
                self._send(handler, {"ok": False,
                                     "error": f"bad request: {exc}"})
                return
            try:
                self._dispatch(handler, op, req)
            except Exception as exc:  # a bad request never kills the server
                self._send(handler, {"ok": False,
                                     "error": f"{type(exc).__name__}: {exc}"})
        except (BrokenPipeError, ConnectionResetError):  # pragma: no cover
            pass

    def _send(self, handler, payload: dict) -> None:
        handler.wfile.write(json.dumps(payload).encode("utf-8") + b"\n")
        handler.wfile.flush()

    def _dispatch(self, handler, op: str, req: dict) -> None:
        svc = self.service
        if op == "submit":
            configs = _parse_configs(req.get("configs"))
            self._send(handler, svc.submit(
                configs, tenant=str(req.get("tenant", "default")),
                priority=float(req.get("priority", 0)),
                trace_id=str(req.get("trace_id", "") or ""),
                kind=str(req.get("kind", "sweep") or "sweep")))
        elif op == "poll":
            self._send(handler, svc.poll(str(req.get("job_id", ""))))
        elif op == "jobs":
            self._send(handler, {"ok": True, "jobs": svc.job_views()})
        elif op == "fetch":
            self._send(handler, svc.fetch(str(req.get("job_id", ""))))
        elif op == "health":
            self._send(handler, svc.health())
        elif op == "metrics":
            self._send(handler, svc.metrics())
        elif op == "stream":
            self._stream(handler, str(req.get("job_id", "")))
        elif op == "drain":
            self._send(handler, svc.drain())
        elif op == "shutdown":
            self._send(handler, {"ok": True, "status": "stopping"})
            self.stop()
        else:
            self._send(handler, {"ok": False,
                                 "error": f"unknown op {op!r}"})

    def _stream(self, handler, job_id: str) -> None:
        """Tail a job's event ring until it reaches a terminal state."""
        cursor = 0
        while True:
            chunk = self.service.stream(job_id, cursor)
            if not chunk.get("ok"):
                self._send(handler, chunk)
                return
            for ev in chunk["events"]:
                self._send(handler, {"event": ev})
            cursor = chunk["cursor"]
            job = chunk["job"]
            if job["status"] in ("done", "failed"):
                self._send(handler, {"done": True, "job": job})
                return
            if self._stop.is_set():  # pragma: no cover - shutdown race
                self._send(handler, {"done": False, "job": job})
                return
            self._stop.wait(0.05)

    # -- lifecycle ---------------------------------------------------------

    def _loop(self) -> None:
        while not self._stop.is_set():
            self.service.process_next(wait_s=0.2)
            if self.service.drained():
                self.stop()
                return

    def start(self) -> None:
        """Start the worker loop and the socket server (both background
        threads); returns immediately."""
        self._loop_thread = threading.Thread(target=self._loop,
                                             name="sweep-service-loop",
                                             daemon=True)
        self._loop_thread.start()
        threading.Thread(target=self._server.serve_forever,
                         name="sweep-service-sock", daemon=True).start()

    def stop(self) -> None:
        if self._stop.is_set():
            return
        self._stop.set()
        # shutdown() must not be called from the serve_forever thread.
        threading.Thread(target=self._server.shutdown, daemon=True).start()

    def close(self) -> None:
        """Stop, wait for the worker loop to finish its current job, then
        close the socket and the service journal.  Joining before closing
        is what keeps a mid-job ``record()`` from hitting a closed file —
        callable from any thread except the loop thread itself."""
        self.stop()
        if (self._loop_thread is not None
                and self._loop_thread is not threading.current_thread()):
            self._loop_thread.join(timeout=60.0)
        self._server.server_close()
        try:
            self.socket_path.unlink()
        except FileNotFoundError:
            pass
        self.service.close()

    def serve_forever(self) -> None:
        """Blocking entry point (the ``repro serve`` command): runs until
        drained or shut down, then closes the journal cleanly."""
        self.start()
        try:
            while not self._stop.wait(0.2):
                pass
        except KeyboardInterrupt:  # pragma: no cover - interactive stop
            pass
        finally:
            self.close()


def default_socket_path(state_dir: str | os.PathLike) -> Path:
    return Path(state_dir) / "service.sock"


def wait_for_socket(path: str | os.PathLike, timeout_s: float = 10.0) -> bool:
    """Poll until a server accepts connections on *path* (client helper
    and test utility)."""
    import time as _time

    deadline = _time.monotonic() + timeout_s
    while _time.monotonic() < deadline:
        s = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        try:
            s.connect(str(path))
            return True
        except OSError:
            _time.sleep(0.05)
        finally:
            s.close()
    return False
