"""Client for the sweep service's unix-socket protocol.

Thin and dependency-free: one connection per request (the protocol is a
single request/response line, so there is nothing to pool), JSON in,
JSON out.  ``stream`` holds its connection open and yields event dicts
until the job reaches a terminal state.  All methods surface the
server's explicit rejections untouched — a caller can always tell
*admitted*, *rejected: why*, and *error* apart.
"""

from __future__ import annotations

import json
import os
import secrets
import socket
import time
from typing import Iterable, Iterator, Optional

from repro.experiments.config import RunConfig


def new_trace_id() -> str:
    """A fresh 64-bit trace id (hex), W3C-trace-context-sized."""
    return secrets.token_hex(8)


class ServiceError(RuntimeError):
    """A transport or protocol failure (not an admission rejection)."""


class ServiceClient:
    def __init__(self, socket_path: str | os.PathLike,
                 timeout_s: float = 30.0):
        self.socket_path = str(socket_path)
        self.timeout_s = timeout_s

    # -- transport ---------------------------------------------------------

    def _connect(self) -> socket.socket:
        s = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        s.settimeout(self.timeout_s)
        try:
            s.connect(self.socket_path)
        except OSError as exc:
            s.close()
            raise ServiceError(
                f"cannot reach sweep service at {self.socket_path}: {exc}"
            ) from None
        return s

    def _request(self, op: str, **fields) -> dict:
        with self._connect() as s:
            s.sendall(json.dumps({"op": op, **fields}).encode("utf-8") + b"\n")
            line = self._read_line(s)
        if line is None:
            raise ServiceError(f"service closed the connection mid-{op}")
        return line

    @staticmethod
    def _read_line(s: socket.socket) -> Optional[dict]:
        buf = bytearray()
        while True:
            chunk = s.recv(4096)
            if not chunk:
                return None
            buf.extend(chunk)
            if b"\n" in buf:
                line, _, _rest = bytes(buf).partition(b"\n")
                return json.loads(line.decode("utf-8"))

    # -- verbs -------------------------------------------------------------

    def submit(self, configs: Iterable[RunConfig] | RunConfig,
               tenant: str = "default", priority: float = 0.0,
               trace: bool = False, trace_id: str = "",
               kind: str = "sweep") -> dict:
        """Submit a sweep; ``trace=True`` stamps a fresh trace id (or
        pass an explicit *trace_id* to join an existing trace) that the
        service propagates through journal, workers, and store — the
        response echoes it back for ``repro trace --job`` correlation.
        *kind* labels the workload (``sweep`` / ``autotune``) in the
        journal and the ``repro jobs`` table."""
        if isinstance(configs, RunConfig):
            configs = [configs]
        if trace and not trace_id:
            trace_id = new_trace_id()
        return self._request("submit",
                             configs=[c.to_dict() for c in configs],
                             tenant=tenant, priority=priority,
                             trace_id=trace_id, kind=kind)

    def poll(self, job_id: str) -> dict:
        return self._request("poll", job_id=job_id)

    def jobs(self) -> dict:
        return self._request("jobs")

    def fetch(self, job_id: str) -> dict:
        return self._request("fetch", job_id=job_id)

    def health(self) -> dict:
        return self._request("health")

    def metrics(self) -> dict:
        """The telemetry plane: registry snapshot + per-tenant SLO
        verdicts (see :mod:`repro.service.telemetry`)."""
        return self._request("metrics")

    def drain(self) -> dict:
        return self._request("drain")

    def shutdown(self) -> dict:
        return self._request("shutdown")

    def stream(self, job_id: str) -> Iterator[dict]:
        """Yield event dicts live; the final yield is the terminal
        ``{"done": ..., "job": view}`` record."""
        with self._connect() as s:
            s.sendall(json.dumps({"op": "stream", "job_id": job_id})
                      .encode("utf-8") + b"\n")
            buf = bytearray()
            while True:
                chunk = s.recv(4096)
                if not chunk:
                    return
                buf.extend(chunk)
                while b"\n" in buf:
                    line, _, rest = bytes(buf).partition(b"\n")
                    buf = bytearray(rest)
                    rec = json.loads(line.decode("utf-8"))
                    yield rec
                    if "done" in rec or rec.get("ok") is False:
                        return

    def wait(self, job_id: str, timeout_s: float = 120.0,
             poll_s: float = 0.1) -> dict:
        """Poll until the job is terminal; returns the final view."""
        deadline = time.monotonic() + timeout_s
        while True:
            resp = self.poll(job_id)
            if not resp.get("ok"):
                raise ServiceError(resp.get("error", "poll failed"))
            job = resp["job"]
            if job["status"] in ("done", "failed"):
                return job
            if time.monotonic() > deadline:
                raise ServiceError(
                    f"timed out after {timeout_s:g}s waiting for {job_id} "
                    f"({job['completed']}/{job['total']} completed)")
            time.sleep(poll_s)
