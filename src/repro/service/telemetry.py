"""Service telemetry: the metrics plane + per-tenant SLO verdicts.

:class:`ServiceTelemetry` is the one place the sweep service's moving
parts publish aggregate state: the service core reports submits /
rejects / job terminals / queue waits, the circuit breaker reports state
transitions (via its ``on_transition`` hook), the result store and the
admission controller increment their own counters through the shared
:class:`~repro.obs.metrics.MetricsRegistry`, and the executor publishes
ambient run events when a registry is installed.  Everything lands in
one lock-safe registry, exposed through the wire protocol's ``metrics``
verb and the ``repro top`` dashboard.

On top of the raw series sit **per-tenant SLO verdicts**:

* ``queue_wait`` — p50/p95 of the tenant's queue-wait histogram
  (bucket-bound estimates, deterministic given the same bucket counts)
  against ``SLOPolicy.queue_wait_p95_s``;
* ``completion_rate`` — ``done / (done + failed + rejected)`` against
  ``SLOPolicy.completion_rate_min``, evaluated only once the tenant has
  ``min_events`` accountable outcomes (a single rejection is noise, a
  flood is a breach).

A breach is a **first-class journaled event**: the service calls
:meth:`check_slos` after every rejection and job terminal; each *newly*
breached ``(tenant, slo)`` pair is journaled once (``slo_breach``) and
counted, and the breach set itself survives restart because
:func:`~repro.service.jobs.replay_service_journal` folds those records
back — which is also how every per-tenant counter survives ``kill -9``
(:meth:`seed`).

:func:`stable_status` builds the curated byte-deterministic view that
``repro top --once --json`` prints: it keeps the series that are a pure
function of the workload (counts, states, verdicts) and drops the ones
that are functions of the wall clock (histogram sums, wall-time
aggregates, token-bucket fill levels).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.obs.metrics import (
    JOB_WALL_BUCKETS,
    QUEUE_WAIT_BUCKETS,
    MetricsRegistry,
)

#: SLO identifiers (journal + verdict vocabulary).
SLO_QUEUE_WAIT = "queue_wait"
SLO_COMPLETION = "completion_rate"


@dataclass(frozen=True)
class SLOPolicy:
    """Configurable per-tenant service-level objectives."""

    #: p95 queue wait must stay at or under this many seconds.
    queue_wait_p95_s: float = 5.0
    #: done / (done + failed + rejected) must stay at or above this.
    completion_rate_min: float = 0.9
    #: completion-rate is only judged once a tenant has this many
    #: accountable outcomes — one rejected probe is not an outage.
    min_events: int = 3

    def to_dict(self) -> dict:
        return {"queue_wait_p95_s": self.queue_wait_p95_s,
                "completion_rate_min": self.completion_rate_min,
                "min_events": self.min_events}


class ServiceTelemetry:
    """The sweep service's metrics + SLO plane (one per service)."""

    def __init__(self, registry: Optional[MetricsRegistry] = None,
                 slo: Optional[SLOPolicy] = None):
        self.registry = registry or MetricsRegistry()
        self.slo = slo or SLOPolicy()
        self._tenants: set[str] = set()
        #: (tenant, slo) pairs already journaled — each breach is a
        #: first-class event exactly once per breach episode.
        self._breached: set[tuple[str, str]] = set()

    # -- publishing hooks (called by the service core) ---------------------

    def record_submit(self, tenant: str) -> None:
        self._tenants.add(tenant)
        self.registry.counter("service_submits_total", tenant=tenant).inc()

    def record_reject(self, tenant: str, reason: str) -> None:
        self._tenants.add(tenant)
        self.registry.counter("service_rejects_total", tenant=tenant).inc()
        self.registry.counter("service_rejects_by_cause_total",
                              cause=reject_cause(reason)).inc()

    def record_queue_wait(self, tenant: str, wait_s: float) -> None:
        self._tenants.add(tenant)
        self.registry.histogram("service_queue_wait_seconds",
                                bounds=QUEUE_WAIT_BUCKETS,
                                tenant=tenant).observe(wait_s)

    def record_job_done(self, tenant: str, wall_s: float) -> None:
        self._tenants.add(tenant)
        self.registry.counter("service_jobs_done_total", tenant=tenant).inc()
        self.registry.histogram("service_job_wall_seconds",
                                bounds=JOB_WALL_BUCKETS).observe(wall_s)

    def record_job_failed(self, tenant: str, wall_s: float) -> None:
        self._tenants.add(tenant)
        self.registry.counter("service_jobs_failed_total",
                              tenant=tenant).inc()
        self.registry.histogram("service_job_wall_seconds",
                                bounds=JOB_WALL_BUCKETS).observe(wall_s)

    def record_config_done(self, source: str) -> None:
        self.registry.counter("service_configs_done_total",
                              source=source).inc()

    def set_queue_depth(self, depth: int) -> None:
        self.registry.gauge("service_queue_depth").set(depth)

    def record_breaker_transition(self, old: str, new: str) -> None:
        """The breaker's ``on_transition`` hook."""
        self.registry.counter("breaker_transitions_total",
                              **{"from": old, "to": new}).inc()

    # -- restart continuity ------------------------------------------------

    def seed(self, state) -> None:
        """Replay-fold a :class:`~repro.service.jobs.ServiceState` into
        the registry, so counters survive ``kill -9`` + restart.  (The
        histograms restart empty — the journal records outcomes, not
        durations — which the snapshot makes visible rather than
        papering over.)"""
        for tenant, n in sorted(state.tenant_submits.items()):
            self._tenants.add(tenant)
            self.registry.counter("service_submits_total",
                                  tenant=tenant).inc(n)
        for tenant, n in sorted(state.tenant_rejects.items()):
            self._tenants.add(tenant)
            self.registry.counter("service_rejects_total",
                                  tenant=tenant).inc(n)
        for tenant, n in sorted(state.tenant_done.items()):
            self._tenants.add(tenant)
            self.registry.counter("service_jobs_done_total",
                                  tenant=tenant).inc(n)
        for tenant, n in sorted(state.tenant_failed.items()):
            self._tenants.add(tenant)
            self.registry.counter("service_jobs_failed_total",
                                  tenant=tenant).inc(n)
        for source, n in sorted(state.configs_done.items()):
            self.registry.counter("service_configs_done_total",
                                  source=source).inc(n)
        for breach in state.slo_breaches:
            tenant, slo = breach.get("tenant", ""), breach.get("slo", "")
            self._breached.add((tenant, slo))
            self.registry.counter("service_slo_breaches_total",
                                  slo=slo, tenant=tenant).inc()

    # -- SLO evaluation ----------------------------------------------------

    def _tenant_counts(self, tenant: str) -> tuple[float, float, float]:
        reg = self.registry
        return (reg.counter_value("service_jobs_done_total", tenant=tenant),
                reg.counter_value("service_jobs_failed_total", tenant=tenant),
                reg.counter_value("service_rejects_total", tenant=tenant))

    def slo_verdicts(self) -> dict:
        """Per-tenant verdicts, key-sorted and deterministic."""
        out: dict = {}
        for tenant in sorted(self._tenants):
            done, failed, rejected = self._tenant_counts(tenant)
            events = done + failed + rejected
            verdict: dict = {}

            hist = self.registry.histogram("service_queue_wait_seconds",
                                           bounds=QUEUE_WAIT_BUCKETS,
                                           tenant=tenant)
            p50, p95 = hist.quantile(0.5), hist.quantile(0.95)
            wait_ok = p95 is None or p95 <= self.slo.queue_wait_p95_s
            verdict[SLO_QUEUE_WAIT] = {
                "p50_s": _finite(p50), "p95_s": _finite(p95),
                "target_p95_s": self.slo.queue_wait_p95_s,
                "samples": hist.count, "ok": wait_ok,
            }

            if events >= self.slo.min_events:
                rate = done / events
                rate_ok = rate >= self.slo.completion_rate_min
            else:
                rate, rate_ok = None, True  # not enough evidence to judge
            verdict[SLO_COMPLETION] = {
                "rate": round(rate, 4) if rate is not None else None,
                "target_min": self.slo.completion_rate_min,
                "events": int(events), "ok": rate_ok,
            }
            verdict["ok"] = wait_ok and rate_ok
            out[tenant] = verdict
        return out

    def check_slos(self,
                   journal: Optional[Callable[..., None]] = None) -> dict:
        """Evaluate every tenant; journal + count each *new* breach.

        *journal* is called as ``journal("slo_breach", tenant=...,
        slo=..., value=..., target=...)`` — the service passes its
        journal's ``record`` method, making breaches durable first-class
        events that replay folds back into :meth:`seed`.
        """
        verdicts = self.slo_verdicts()
        for tenant, verdict in verdicts.items():
            for slo_name in (SLO_QUEUE_WAIT, SLO_COMPLETION):
                part = verdict[slo_name]
                if part["ok"]:
                    # recovery clears the episode: a later breach of the
                    # same SLO is a new event, journaled again.
                    self._breached.discard((tenant, slo_name))
                    continue
                if (tenant, slo_name) in self._breached:
                    continue
                self._breached.add((tenant, slo_name))
                value = (part["p95_s"] if slo_name == SLO_QUEUE_WAIT
                         else part["rate"])
                target = (part["target_p95_s"]
                          if slo_name == SLO_QUEUE_WAIT
                          else part["target_min"])
                self.registry.counter("service_slo_breaches_total",
                                      slo=slo_name, tenant=tenant).inc()
                if journal is not None:
                    journal("slo_breach", tenant=tenant, slo=slo_name,
                            value=value, target=target)
        return verdicts

    def breach_count(self) -> int:
        return len(self._breached)


def _finite(value: Optional[float]) -> Optional[float]:
    """JSON-safe quantile: ``inf`` (overflow bucket) becomes ``None``-free
    sentinel the dashboards can render."""
    if value is None:
        return None
    return value if value != float("inf") else "inf"


def reject_cause(reason: str) -> str:
    """Classify a rejection reason string into a stable cause label."""
    if reason.startswith("queue full"):
        return "queue_full"
    if reason.startswith("tenant rate limit"):
        return "tenant_rate"
    if reason.startswith("service rate limit"):
        return "global_rate"
    if reason.startswith("circuit breaker"):
        return "breaker"
    if reason.startswith("service draining"):
        return "draining"
    if reason.startswith("empty submission"):
        return "empty"
    return "other"


# ---------------------------------------------------------------------------
# The curated deterministic view (`repro top --once --json`)
# ---------------------------------------------------------------------------

#: registry counter names included in the stable view verbatim — each is
#: a pure function of the submitted workload, never of the wall clock.
_STABLE_COUNTER_PREFIXES = (
    "service_submits_total",
    "service_rejects_total",
    "service_rejects_by_cause_total",
    "service_jobs_done_total",
    "service_jobs_failed_total",
    "service_configs_done_total",
    "service_slo_breaches_total",
    "breaker_transitions_total",
    "store_",
)


def stable_status(health: dict, metrics: dict) -> dict:
    """Project ``health`` + ``metrics`` wire responses onto the
    byte-deterministic subset: two identical seeded serve/submit sessions
    produce identical bytes.  Wall-clock aggregates (histogram sums,
    job wall-time estimates) and time-refilled token levels are excluded
    by construction; queue-wait quantiles survive because an idle
    service dispatches inside the first histogram bucket, so the
    bucket-bound estimate is a constant.
    """
    counters = {
        key: value
        for key, value in metrics.get("metrics", {}).get("counters", {}).items()
        if key.startswith(_STABLE_COUNTER_PREFIXES)
    }
    slo = metrics.get("slo", {})
    breaker = health.get("breaker", {})
    store = health.get("store", {})
    return {
        "status": health.get("status"),
        "queue_depth": health.get("queue_depth"),
        "jobs": dict(sorted(health.get("jobs", {}).items())),
        "rejected_total": health.get("rejected_total"),
        "breaker": {"state": breaker.get("state"),
                    "trips": breaker.get("trips")},
        "store": {"objects": store.get("objects"),
                  "links": store.get("links"),
                  "puts": store.get("puts"),
                  "dedup_hits": store.get("dedup_hits"),
                  "hits": store.get("hits")},
        "counters": counters,
        "slo": slo,
    }
