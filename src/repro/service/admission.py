"""Admission control: token buckets + per-tenant rate limiting.

A service that accepts every submission melts under flood; one that
drops submissions silently is worse.  The admission layer's contract is
an **explicit decision** for every submit: admitted, or rejected with a
reason the client can act on (``tenant rate limit``, ``service rate
limit``, ``queue full``).  Nothing is ever dropped on the floor — the
chaos campaign's submission-flood stage fails if admitted + rejected
does not account for every request.

Clocks are injectable (``clock=``) so tests and the flood drill control
time instead of sleeping through it.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable


@dataclass(frozen=True)
class Decision:
    """One admission verdict; ``reason`` is non-empty iff rejected."""

    admitted: bool
    reason: str = ""

    def to_dict(self) -> dict:
        return {"admitted": self.admitted, "reason": self.reason}


class TokenBucket:
    """Classic token bucket: ``capacity`` burst, ``refill_per_s`` sustain."""

    def __init__(self, capacity: float, refill_per_s: float,
                 clock: Callable[[], float] = time.monotonic):
        if capacity <= 0:
            raise ValueError(f"bucket capacity must be > 0, got {capacity}")
        self.capacity = float(capacity)
        self.refill_per_s = float(refill_per_s)
        self._clock = clock
        self._tokens = self.capacity
        self._last = clock()

    def _refill(self) -> None:
        now = self._clock()
        elapsed = max(0.0, now - self._last)
        self._last = now
        self._tokens = min(self.capacity,
                           self._tokens + elapsed * self.refill_per_s)

    def available(self) -> float:
        self._refill()
        return self._tokens

    def try_take(self, n: float = 1.0) -> bool:
        """Take *n* tokens if available; never blocks, never goes negative."""
        self._refill()
        if self._tokens >= n:
            self._tokens -= n
            return True
        return False


class AdmissionController:
    """Submit-time gate: global bucket, per-tenant buckets, queue bound.

    Checks run cheapest-reject first: queue depth (protects memory),
    then the tenant's bucket (one noisy tenant cannot starve the rest),
    then the global bucket (aggregate service protection).  A rejection
    consumes no tokens anywhere, so a rejected client retrying does not
    further punish well-behaved tenants.
    """

    def __init__(self, *,
                 tenant_burst: float = 8.0,
                 tenant_per_s: float = 2.0,
                 global_burst: float = 32.0,
                 global_per_s: float = 8.0,
                 max_queue_depth: int = 64,
                 clock: Callable[[], float] = time.monotonic):
        self.tenant_burst = tenant_burst
        self.tenant_per_s = tenant_per_s
        self.max_queue_depth = max_queue_depth
        self._clock = clock
        self._global = TokenBucket(global_burst, global_per_s, clock=clock)
        self._tenants: dict[str, TokenBucket] = {}
        #: optional MetricsRegistry; the service wires its telemetry
        #: registry in so every decision lands in the metrics plane.
        self.metrics = None

    def _tenant_bucket(self, tenant: str) -> TokenBucket:
        bucket = self._tenants.get(tenant)
        if bucket is None:
            bucket = TokenBucket(self.tenant_burst, self.tenant_per_s,
                                 clock=self._clock)
            self._tenants[tenant] = bucket
        return bucket

    def admit(self, tenant: str, queue_depth: int = 0,
              cost: float = 1.0) -> Decision:
        """Decide one submission; rejections carry an explicit reason."""
        decision = self._decide(tenant, queue_depth, cost)
        if self.metrics is not None:
            outcome = "admitted" if decision.admitted else "rejected"
            self.metrics.counter("admission_decisions_total",
                                 outcome=outcome).inc()
        return decision

    def _decide(self, tenant: str, queue_depth: int,
                cost: float) -> Decision:
        if queue_depth >= self.max_queue_depth:
            return Decision(False, f"queue full: depth {queue_depth} >= "
                                   f"limit {self.max_queue_depth}")
        bucket = self._tenant_bucket(tenant)
        if bucket.available() < cost:
            return Decision(False, f"tenant rate limit: {tenant!r} exceeded "
                                   f"{self.tenant_per_s:g}/s "
                                   f"(burst {self.tenant_burst:g})")
        if not self._global.try_take(cost):
            return Decision(False, "service rate limit: aggregate submission "
                                   "budget exhausted, retry with backoff")
        bucket.try_take(cost)
        return Decision(True)

    def health(self) -> dict:
        """Token levels for the health endpoint (rounded: diagnostics,
        not an API)."""
        return {
            "global_tokens": round(self._global.available(), 3),
            "tenants": {t: round(b.available(), 3)
                        for t, b in sorted(self._tenants.items())},
        }
