"""The supervised sweep service core.

:class:`SweepService` promotes the chaos-hardened executor into
long-running, multi-tenant infrastructure.  One instance owns a *state
directory*::

    state_dir/service.journal   durable job table (jobs.py vocabulary)
    state_dir/store/            sharded content-addressed result store
    state_dir/cache/            the executor's versioned run cache

and exposes the queue API the socket front end (:mod:`.server`) and the
CLI speak: :meth:`submit` / :meth:`poll` / :meth:`stream` /
:meth:`jobs` / :meth:`health` / :meth:`drain` / :meth:`fetch`.

Robustness properties, each proven by a chaos stage:

* **durability** — every completed run is fsynced into the store and
  journaled *before* the service acknowledges it; kill -9 at any
  instant and a restarted service re-dispatches in-flight jobs with
  every previously completed result served from the store, zero
  recomputation (``service_kill`` stage);
* **dedup** — identical configs from any tenant resolve through the
  store's link plane: a million users sweeping the same config space
  cost one simulation (baseline stage's cross-tenant drill);
* **admission control** — token-bucket rate limits per tenant and
  global, plus a queue-depth bound; every rejection is an explicit
  response with a reason, journaled, never a silent drop
  (``submission_flood`` stage);
* **circuit breaking** — repeated job failures trip the breaker; new
  work is rejected while open, one probe is admitted after the
  cooldown, and a probe success restores service
  (``worker_failure_storm`` stage);
* **bounded degradation** — per-run timeout/retry/backoff/quarantine
  are inherited from :func:`~repro.experiments.executor.execute_plan`
  (``hung_worker`` stage), and a torn store shard fails its digest
  check and is recomputed, surfaced as a ``store_corrupt`` event
  (``torn_shard`` stage).
"""

from __future__ import annotations

import json
import threading
import time
from pathlib import Path
from typing import Callable, Iterable, Optional

from repro.experiments.config import RunConfig
from repro.experiments.executor import (
    RunEvent,
    cache_path,
    execute_plan,
    simulate_to_dict,
)
from repro.obs import chrome
from repro.obs.tracer import WALL, Tracer
from repro.obs.tracer import active as _obs_active
from repro.obs.tracer import use as _obs_use
from repro.service.admission import AdmissionController, Decision
from repro.service.breaker import CircuitBreaker
from repro.service.jobs import (
    DONE,
    FAILED,
    QUEUED,
    RUNNING,
    Job,
    ServiceJournal,
    replay_service_journal,
)
from repro.service.scheduler import PriorityScheduler
from repro.service.store import ResultStore
from repro.service.telemetry import ServiceTelemetry, SLOPolicy


def _event_dict(ev: RunEvent) -> dict:
    return {"kind": ev.kind, "key": ev.key, "attempt": ev.attempt,
            "wall_s": round(ev.wall_s, 6), "error": ev.error,
            "queued": ev.queued}


class TracedJobWorker:
    """Picklable worker wrapper opening one ``worker-execute`` span per
    config on whatever tracer is ambient where the config actually runs.

    In-process (``jobs=1``) that is the job's own tracer, installed by
    :meth:`SweepService._process`; in a pool worker it is the fresh
    tracer :class:`~repro.obs.workers.TracedWorker` installs, so the
    span lands in the per-worker trace file and is merged back with a
    remapped pid — either way the span carries the job's trace id and
    the cross-process timeline stays one timeline.
    """

    def __init__(self, worker: Callable[[RunConfig], dict], trace_id: str):
        self.worker = worker
        self.trace_id = trace_id

    def __call__(self, cfg: RunConfig) -> dict:
        tracer = _obs_active()
        if tracer is None:
            return self.worker(cfg)
        with tracer.span(f"worker-execute {cfg.key()}", cat="worker",
                         trace=self.trace_id, key=cfg.key()):
            return self.worker(cfg)


class SweepService:
    """Supervised, multi-tenant job queue in front of ``execute_plan``."""

    def __init__(self, state_dir: str,  *,
                 jobs: int = 1,
                 timeout_s: Optional[float] = 30.0,
                 retries: int = 1,
                 backoff_s: float = 0.05,
                 validate: bool = False,
                 worker: Optional[Callable[[RunConfig], dict]] = None,
                 admission: Optional[AdmissionController] = None,
                 breaker: Optional[CircuitBreaker] = None,
                 scheduler: Optional[PriorityScheduler] = None,
                 telemetry: Optional[ServiceTelemetry] = None,
                 slo: Optional[SLOPolicy] = None,
                 clock: Callable[[], float] = time.monotonic):
        self.state_dir = Path(state_dir)
        self.state_dir.mkdir(parents=True, exist_ok=True)
        self.jobs_n = max(1, jobs)
        self.timeout_s = timeout_s
        self.retries = retries
        self.backoff_s = backoff_s
        self.validate = validate
        self.worker = worker or simulate_to_dict
        self.admission = admission or AdmissionController(clock=clock)
        self.breaker = breaker or CircuitBreaker(clock=clock)
        self.scheduler = scheduler or PriorityScheduler()
        self.telemetry = telemetry or ServiceTelemetry(slo=slo)
        self.clock = clock
        self.cache_dir = self.state_dir / "cache"
        self.store = ResultStore(self.state_dir / "store",
                                 metrics=self.telemetry.registry)
        self.traces_dir = self.state_dir / "traces"
        # every component publishes into the one telemetry registry.
        self.admission.metrics = self.telemetry.registry
        self.breaker.on_transition = self.telemetry.record_breaker_transition

        self._lock = threading.RLock()
        self._cond = threading.Condition(self._lock)
        self.draining = False
        self._running_job: Optional[str] = None

        # -- resume: fold the journal, requeue whatever was in flight ------
        journal_path = self.state_dir / "service.journal"
        state = replay_service_journal(journal_path)
        self._jobs: dict[str, Job] = state.jobs if state else {}
        self._order: list[str] = list(state.order) if state else []
        self._seq = state.next_seq() if state else 1
        self.rejected_total = state.rejected if state else 0
        self.resumed_jobs = 0
        self._journal = ServiceJournal(journal_path)
        self._journal.record("service_start", jobs=self.jobs_n)
        if state:
            # counters survive kill -9: the journal fold re-seeds the
            # metrics plane before any new work is accepted.
            self.telemetry.seed(state)
            now = self.clock()
            for job in state.unfinished():
                job.status = QUEUED
                job.submitted_at = now
                self.scheduler.push(job.job_id, job.priority, now)
                self.resumed_jobs += 1
        self.telemetry.set_queue_depth(len(self.scheduler))

    # -- submission --------------------------------------------------------

    def submit(self, configs: Iterable[RunConfig] | RunConfig,
               tenant: str = "default", priority: float = 0.0,
               trace_id: str = "", kind: str = "sweep") -> dict:
        """Enqueue one sweep; returns ``{"ok": True, "job_id": ...}`` or
        an explicit ``{"ok": False, "rejected": reason}`` — a submission
        is *never* silently dropped.

        *kind* labels the workload (``sweep`` by default, ``autotune``
        for candidate-timing plans submitted by ``repro autotune``); it
        is journaled, survives restart, and shows in ``repro jobs``.

        A non-empty *trace_id* (stamped by a traced
        :meth:`~repro.service.client.ServiceClient.submit`) makes this a
        **traced job**: the service opens a per-job tracer whose epoch is
        the submission instant, stamps a ``client-submit`` marker, and
        every later stage — queue wait, worker execution (in-process or
        across the pool), store writes — lands on the same timeline,
        exported to ``state_dir/traces/<job_id>.json`` at job terminal.
        """
        if isinstance(configs, RunConfig):
            configs = [configs]
        configs = tuple(configs)
        if not configs:
            return self._reject(tenant, "empty submission: no configs")
        with self._cond:
            if self.draining:
                return self._reject(tenant, "service draining: no new work "
                                            "accepted, retry after restart")
            if not self.breaker.allow():
                return self._reject(
                    tenant, f"circuit breaker {self.breaker.describe()}")
            decision: Decision = self.admission.admit(
                tenant, queue_depth=len(self.scheduler))
            if not decision.admitted:
                return self._reject(tenant, decision.reason)
            job_id = f"j{self._seq:05d}"
            self._seq += 1
            job = Job(job_id=job_id, tenant=tenant, priority=float(priority),
                      configs=configs, trace_id=str(trace_id or ""),
                      kind=str(kind or "sweep"))
            job.submitted_at = self.clock()
            if job.trace_id:
                job.tracer = Tracer()
                job.tracer.span_at("client-submit", cat="client",
                                   t0=0.0, t1=0.0, domain=WALL,
                                   trace=job.trace_id, job=job_id,
                                   tenant=tenant)
            self._jobs[job_id] = job
            self._order.append(job_id)
            self._journal.record("submit", job_id=job_id, tenant=tenant,
                                 priority=float(priority),
                                 trace_id=job.trace_id, kind=job.kind,
                                 configs=[c.to_dict() for c in configs])
            self.scheduler.push(job_id, float(priority), self.clock())
            self.telemetry.record_submit(tenant)
            self.telemetry.set_queue_depth(len(self.scheduler))
            tracer = _obs_active()
            if tracer is not None:
                tracer.event("job submitted", cat="service", job=job_id,
                             tenant=tenant, configs=len(configs))
                tracer.counter("service queue depth", len(self.scheduler))
            self._cond.notify_all()
            resp = {"ok": True, "job_id": job_id,
                    "queued": len(self.scheduler)}
            if job.trace_id:
                resp["trace_id"] = job.trace_id
            return resp

    def _reject(self, tenant: str, reason: str) -> dict:
        self.rejected_total += 1
        self._journal.record("rejected", tenant=tenant, reason=reason)
        self.telemetry.record_reject(tenant, reason)
        # a rejection can flip a tenant's completion-rate SLO: evaluate
        # now so the breach is journaled while it is happening, not at
        # the next dashboard poll.
        self.telemetry.check_slos(self._journal.record)
        tracer = _obs_active()
        if tracer is not None:
            tracer.event("submission rejected", cat="service",
                         tenant=tenant, reason=reason)
        return {"ok": False, "rejected": reason}

    # -- processing --------------------------------------------------------

    def process_next(self, wait_s: float = 0.0) -> Optional[str]:
        """Run the most urgent queued job to completion (in this thread);
        returns its id, or ``None`` when the queue stayed idle for
        *wait_s*."""
        deadline = self.clock() + wait_s
        with self._cond:
            job_id = self.scheduler.pop(self.clock())
            while job_id is None:
                remaining = deadline - self.clock()
                if remaining <= 0:
                    return None
                self._cond.wait(min(remaining, 0.2))
                job_id = self.scheduler.pop(self.clock())
            job = self._jobs[job_id]
            job.status = RUNNING
            self._running_job = job_id
            self._journal.record("job_start", job_id=job_id)
            wait_s = max(0.0, self.clock() - job.submitted_at)
            self.telemetry.record_queue_wait(job.tenant, wait_s)
            self.telemetry.set_queue_depth(len(self.scheduler))
            if job.tracer is not None:
                job.tracer.span_at("queue-wait", cat="service",
                                   t0=0.0, t1=wait_s, domain=WALL,
                                   trace=job.trace_id, job=job_id)
        try:
            self._process(job)
        finally:
            with self._lock:
                self._running_job = None
        return job_id

    def _complete(self, job: Job, key: str, digest: str, source: str) -> None:
        """Mark one config done — store linked, journal written, event
        emitted — under the service lock."""
        with self._lock:
            job.completed[key] = digest
            job.sources[key] = source
            job.events.append({"kind": "store_hit" if source != "computed"
                               else "done", "key": key, "source": source})
            self._journal.record("config_done", job_id=job.job_id, key=key,
                                 digest=digest, source=source)
            self.telemetry.record_config_done(source)

    def _process(self, job: Job) -> None:
        t_start = self.clock()
        if job.tracer is not None:
            # traced job: its own tracer becomes ambient, so the
            # executor, machine, and pool workers all land on the job's
            # timeline (a cross-process single trace).
            with _obs_use(job.tracer):
                self._process_spanned(job)
        else:
            self._process_spanned(job)
        wall_s = max(0.0, self.clock() - t_start)
        if job.status == DONE:
            self.telemetry.record_job_done(job.tenant, wall_s)
        elif job.status == FAILED:
            self.telemetry.record_job_failed(job.tenant, wall_s)
        self.telemetry.check_slos(self._journal.record)
        self._export_job_trace(job)

    def _process_spanned(self, job: Job) -> None:
        tracer = _obs_active()
        if tracer is None:
            self._process_inner(job, None)
            return
        with tracer.span("job", cat="service", job=job.job_id,
                         tenant=job.tenant):
            self._process_inner(job, tracer)

    def _export_job_trace(self, job: Job) -> None:
        """Write a traced job's merged timeline (Chrome format) to
        ``state_dir/traces/<job_id>.json`` — what ``repro trace --job``
        reads.  A failed export never fails the job."""
        if job.tracer is None:
            return
        try:
            self.traces_dir.mkdir(parents=True, exist_ok=True)
            chrome.dump(job.tracer, self.traces_dir / f"{job.job_id}.json",
                        include_wall=True,
                        meta={"trace_id": job.trace_id, "job_id": job.job_id,
                              "tenant": job.tenant})
        except OSError:  # pragma: no cover - disk trouble
            pass

    def _process_inner(self, job: Job, tracer) -> None:
        cfg_by_key = {cfg.key(): cfg for cfg in job.configs}

        # -- resumed completions: serve from the store, never recompute ----
        for key in list(job.completed):
            payload = self.store.get(job.completed[key])
            if payload is None:
                # lost or torn object: recompute this one config.
                with self._lock:
                    job.events.append({"kind": "store_corrupt", "key": key,
                                       "error": "journaled result missing "
                                                "from store"})
                    del job.completed[key]
                    job.sources.pop(key, None)
            else:
                self._complete(job, key, job.completed[key], "store")

        # -- cross-tenant / cross-job dedup through the link plane ---------
        before = self.store.stats.corrupt_discarded
        for key, cfg in cfg_by_key.items():
            if key in job.completed:
                continue
            payload = self.store.lookup(key)
            if payload is not None:
                self._complete(job, key, payload["__digest__"], "store")
        torn = self.store.stats.corrupt_discarded - before
        if torn:
            with self._lock:
                job.events.append({"kind": "store_corrupt",
                                   "error": f"{torn} torn shard object(s) "
                                            "discarded, recomputing"})
            if tracer is not None:
                tracer.event("store corruption repaired", cat="service",
                             job=job.job_id, objects=torn)

        remaining = [cfg for key, cfg in cfg_by_key.items()
                     if key not in job.completed]

        def store_write(key: str, payload: dict) -> str:
            """Put + link one payload, on the job's timeline if traced."""
            if job.tracer is not None:
                with job.tracer.span(f"store-write {key}", cat="store",
                                     trace=job.trace_id, key=key):
                    digest = self.store.put(payload, trace_id=job.trace_id)
                    self.store.link(key, digest)
            else:
                digest = self.store.put(payload)
                self.store.link(key, digest)
            return digest

        def on_event(ev: RunEvent) -> None:
            if ev.kind in ("done", "cache_hit"):
                cfg = cfg_by_key.get(ev.key)
                payload = self._cache_payload(cfg) if cfg is not None else None
                if payload is not None:
                    digest = store_write(ev.key, payload)
                    self._complete(job, ev.key, digest,
                                   "computed" if ev.kind == "done" else "cache")
                    return
            with self._lock:
                job.events.append(_event_dict(ev))
            if tracer is not None:
                tracer.counter("service run queue", ev.queued)

        worker = self.worker
        if job.trace_id:
            worker = TracedJobWorker(worker, job.trace_id)

        result = None
        if remaining:
            result = execute_plan(remaining, cache_dir=self.cache_dir,
                                  jobs=self.jobs_n, timeout_s=self.timeout_s,
                                  retries=self.retries,
                                  backoff_s=self.backoff_s,
                                  validate=self.validate, worker=worker,
                                  on_event=on_event)

        with self._lock:
            if result is not None:
                job.failed.update(result.failed)
                # anything that simulated but missed the event hook (e.g.
                # a cache write race) is reconciled from the result map.
                from repro.metrics.counters import counters_to_dict

                for key, run in result.runs.items():
                    if key not in job.completed:
                        payload = counters_to_dict(run)
                        digest = self.store.put(payload,
                                                trace_id=job.trace_id)
                        self.store.link(key, digest)
                        job.completed[key] = digest
                        job.sources[key] = "computed"
                        self._journal.record("config_done", job_id=job.job_id,
                                             key=key, digest=digest,
                                             source="computed")
                        self.telemetry.record_config_done("computed")
            if job.failed:
                job.status = FAILED
                job.error = (f"{len(job.failed)} run(s) failed permanently; "
                             f"{len(job.completed)}/{job.total} completed")
                self._journal.record("job_failed", job_id=job.job_id,
                                     error=job.error, failed=job.failed)
                self.breaker.record_failure()
            else:
                job.status = DONE
                self._journal.record("job_done", job_id=job.job_id)
                self.breaker.record_success()
            if tracer is not None:
                tracer.event("job finished", cat="service", job=job.job_id,
                             status=job.status,
                             from_store=job.from_store,
                             recomputed=job.recomputed)

    def _cache_payload(self, cfg: RunConfig) -> Optional[dict]:
        """The raw executor-cache payload for one config (digest intact)."""
        try:
            data = json.loads(cache_path(self.cache_dir, cfg).read_text())
        except (OSError, json.JSONDecodeError):
            return None
        return data if isinstance(data, dict) else None

    # -- queries -----------------------------------------------------------

    def poll(self, job_id: str) -> dict:
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None:
                return {"ok": False, "error": f"unknown job {job_id!r}"}
            return {"ok": True, "job": job.view()}

    def job_views(self) -> list[dict]:
        with self._lock:
            return [self._jobs[j].view() for j in self._order]

    def stream(self, job_id: str, cursor: int = 0) -> dict:
        """Events from *cursor* on, plus the job view; the client polls
        until ``job.status`` is terminal."""
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None:
                return {"ok": False, "error": f"unknown job {job_id!r}"}
            events = list(job.events[cursor:])
            return {"ok": True, "events": events,
                    "cursor": cursor + len(events), "job": job.view()}

    def fetch(self, job_id: str) -> dict:
        """Completed payloads for one job, straight from the store."""
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None:
                return {"ok": False, "error": f"unknown job {job_id!r}"}
            completed = dict(job.completed)
        payloads = {}
        for key, digest in completed.items():
            payload = self.store.get(digest)
            if payload is not None:
                payloads[key] = payload
        return {"ok": True, "results": payloads}

    def health(self) -> dict:
        with self._lock:
            by_status: dict[str, int] = {}
            for job in self._jobs.values():
                by_status[job.status] = by_status.get(job.status, 0) + 1
            return {
                "ok": True,
                "status": "draining" if self.draining else "serving",
                "queue_depth": len(self.scheduler),
                "running": self._running_job,
                "jobs": by_status,
                "rejected_total": self.rejected_total,
                "resumed_jobs": self.resumed_jobs,
                "breaker": self.breaker.health(),
                "admission": self.admission.health(),
                "store": self.store.health(),
                "slo_breaches": self.telemetry.breach_count(),
            }

    def metrics(self) -> dict:
        """The telemetry plane's wire payload: a deterministic key-sorted
        registry snapshot plus per-tenant SLO verdicts.  Evaluating here
        also journals any breach first seen at query time — a dashboard
        poll that discovers degradation makes it durable."""
        with self._lock:
            journal = (self._journal.record
                       if not self._journal.closed else None)
            verdicts = self.telemetry.check_slos(journal)
            return {
                "ok": True,
                "metrics": self.telemetry.registry.snapshot(),
                "slo": verdicts,
                "slo_policy": self.telemetry.slo.to_dict(),
                "queue_depth": len(self.scheduler),
            }

    def trace_export_path(self, job_id: str) -> Path:
        """Where a traced job's merged timeline lands on disk."""
        return self.traces_dir / f"{job_id}.json"

    # -- lifecycle ---------------------------------------------------------

    def drain(self) -> dict:
        """Stop accepting work; queued + running jobs finish first."""
        with self._cond:
            self.draining = True
            self._journal.record("drain")
            self._cond.notify_all()
            return {"ok": True, "status": "draining",
                    "queue_depth": len(self.scheduler),
                    "running": self._running_job}

    def drained(self) -> bool:
        with self._lock:
            return (self.draining and not len(self.scheduler)
                    and self._running_job is None)

    def close(self) -> None:
        """Close the journal (idempotent).  Callers must stop the worker
        loop first — :meth:`SweepServer.close` joins it before calling
        this — so no job is mid-record when the file goes away."""
        with self._lock:
            if self._journal.closed:
                return
            self._journal.record("service_stop")
            self._journal.close()
