"""Sharded, content-addressed result store with cross-tenant dedup.

The sweep service's durable memory.  Two planes:

* the **object plane** — one JSON payload per *content digest* (the
  executor's ``__digest__`` sha256 over the counter body), sharded by
  the first :data:`SHARD_WIDTH` hex characters so a million objects
  never melt one directory.  Identical counters from any number of
  tenants are one object: content addressing *is* the dedup.
* the **link plane** — one tiny index entry per
  :meth:`~repro.experiments.config.RunConfig.key` mapping the config to
  its digest.  Many tenants submitting the same config resolve through
  the same link; the simulation ran once.

Both planes inherit the executor cache's durability contract: atomic
fsynced writes (tmp + fsync + ``os.replace`` + directory fsync) and
digest-verified reads.  A torn or bit-rotted shard object fails its
digest check on :meth:`ResultStore.get`, is discarded, counted in
``corrupt_discarded``, and the caller re-simulates — degradation is
observable (the service emits a ``store_corrupt`` event), never silent.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Optional

from repro.experiments.executor import payload_digest

#: hex characters of the digest used as the shard directory name; 2
#: gives 256 shards, plenty for any plausible object count here.
SHARD_WIDTH = 2


@dataclass
class StoreStats:
    """One store instance's accounting (in-memory tallies + disk scan)."""

    #: payloads stored by this instance (a fresh object was written).
    puts: int = 0
    #: put() calls that found the object already present (cross-tenant /
    #: cross-job dedup: the simulation was never re-run).
    dedup_hits: int = 0
    #: lookups served from the store.
    hits: int = 0
    #: corrupt objects (digest mismatch / torn JSON) discarded on read.
    corrupt_discarded: int = 0
    #: corrupt link entries discarded on read.
    corrupt_links: int = 0

    def to_dict(self) -> dict:
        return {"puts": self.puts, "dedup_hits": self.dedup_hits,
                "hits": self.hits,
                "corrupt_discarded": self.corrupt_discarded,
                "corrupt_links": self.corrupt_links}


def _write_atomic(target: Path, text: str) -> None:
    """Atomic durable write (same discipline as the executor cache)."""
    import tempfile

    target.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=target.parent, prefix=target.name,
                               suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as fh:
            fh.write(text)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, target)
        try:
            dir_fd = os.open(target.parent, os.O_RDONLY)
            try:
                os.fsync(dir_fd)
            finally:
                os.close(dir_fd)
        except OSError:  # pragma: no cover - platform without dir fsync
            pass
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


class ResultStore:
    """Content-addressed payload store under ``root``.

    Layout::

        root/objects/<aa>/<digest>.json    one counter payload per digest
        root/links/<cfg_key>.json          {"key": ..., "digest": ...}
    """

    def __init__(self, root: str | os.PathLike, metrics=None):
        self.root = Path(root)
        self.objects = self.root / "objects"
        self.links = self.root / "links"
        self.stats = StoreStats()
        #: optional MetricsRegistry mirroring ``stats`` into the
        #: telemetry plane (``store_*_total`` counters).
        self.metrics = metrics

    def _count(self, name: str) -> None:
        if self.metrics is not None:
            self.metrics.counter(name).inc()

    # -- object plane ------------------------------------------------------

    def object_path(self, digest: str) -> Path:
        return self.objects / digest[:SHARD_WIDTH] / f"{digest}.json"

    def put(self, payload: dict, trace_id: str = "") -> str:
        """Store one counter payload; returns its content digest.

        The digest is computed over the counter body (``__*`` metadata
        keys excluded), so the same simulation result always lands on
        the same object regardless of verdict annotations.  An existing
        object is left untouched (``dedup_hits``).

        A non-empty *trace_id* is stamped into the object as
        ``__trace__`` — a ``__*`` key, so it never perturbs the digest:
        the trace context from a traced ``submit`` travels all the way
        into the durable result without forking the dedup plane.  The
        solver convergence record (``__solve__``) rides along the same
        way, so ``jobs --results`` returns it intact.
        """
        digest = payload.get("__digest__") or payload_digest(payload)
        path = self.object_path(digest)
        if path.exists():
            self.stats.dedup_hits += 1
            self._count("store_dedup_hits_total")
            return digest
        body = {k: v for k, v in payload.items() if not k.startswith("__")}
        body["__digest__"] = digest
        if "__solve__" in payload:
            body["__solve__"] = payload["__solve__"]
        if trace_id:
            body["__trace__"] = trace_id
        _write_atomic(path, json.dumps(body, sort_keys=True))
        self.stats.puts += 1
        self._count("store_puts_total")
        return digest

    def get(self, digest: str) -> Optional[dict]:
        """Fetch one payload by digest; a torn / bit-rotted shard object
        fails verification, is deleted, and returns ``None``."""
        path = self.object_path(digest)
        try:
            text = path.read_text()
        except (FileNotFoundError, OSError):
            return None
        try:
            data = json.loads(text)
            if not isinstance(data, dict):
                raise TypeError("store object must be a JSON object")
            if data.get("__digest__") != digest:
                raise ValueError("store object digest mismatch")
            if payload_digest(data) != digest:
                raise ValueError("store object content drifted")
        except (json.JSONDecodeError, TypeError, ValueError):
            self.stats.corrupt_discarded += 1
            self._count("store_corrupt_objects_total")
            try:
                path.unlink()
            except OSError:  # pragma: no cover - best-effort cleanup
                pass
            return None
        return data

    # -- link plane --------------------------------------------------------

    def link_path(self, cfg_key: str) -> Path:
        return self.links / f"{cfg_key}.json"

    def link(self, cfg_key: str, digest: str) -> None:
        """Bind a config key to its result digest (atomic, durable)."""
        _write_atomic(self.link_path(cfg_key),
                      json.dumps({"key": cfg_key, "digest": digest},
                                 sort_keys=True))

    def digest_for(self, cfg_key: str) -> Optional[str]:
        """The digest a config key resolves to, if linked."""
        try:
            text = self.link_path(cfg_key).read_text()
        except (FileNotFoundError, OSError):
            return None
        try:
            data = json.loads(text)
            digest = data["digest"]
            if not isinstance(digest, str) or not digest:
                raise ValueError("empty digest")
        except (json.JSONDecodeError, TypeError, KeyError, ValueError):
            self.stats.corrupt_links += 1
            self._count("store_corrupt_links_total")
            try:
                self.link_path(cfg_key).unlink()
            except OSError:  # pragma: no cover - best-effort cleanup
                pass
            return None
        return digest

    def lookup(self, cfg_key: str) -> Optional[dict]:
        """Resolve a config key to its payload through the link plane;
        ``None`` when unlinked or when the object failed verification."""
        digest = self.digest_for(cfg_key)
        if digest is None:
            return None
        payload = self.get(digest)
        if payload is not None:
            self.stats.hits += 1
            self._count("store_hits_total")
        return payload

    # -- accounting --------------------------------------------------------

    def object_count(self) -> int:
        return sum(1 for _ in self.objects.glob(f"*/{'*'}.json"))

    def link_count(self) -> int:
        return sum(1 for _ in self.links.glob("*.json"))

    def health(self) -> dict:
        return {"objects": self.object_count(), "links": self.link_count(),
                **self.stats.to_dict()}
