"""The supervised sweep service: a multi-tenant job queue in front of
the chaos-hardened executor.

Layers (each its own module, each independently testable):

* :mod:`.store` — sharded content-addressed result store (cross-tenant
  dedup through the digest link plane);
* :mod:`.admission` — token-bucket admission control with explicit
  rejections;
* :mod:`.breaker` — the circuit breaker;
* :mod:`.scheduler` — priority scheduling with starvation aging;
* :mod:`.jobs` — job records + the durable service journal;
* :mod:`.telemetry` — the metrics plane: one
  :class:`~repro.obs.metrics.MetricsRegistry` every component publishes
  into, plus per-tenant SLO verdicts with journaled breaches;
* :mod:`.core` — :class:`SweepService`, tying it all together;
* :mod:`.server` / :mod:`.client` — the unix-socket front end
  (``repro serve`` / ``repro submit`` / ``repro jobs``);
* :mod:`.chaos` — the service fault drills
  (``repro chaos --service-faults``).
"""

from repro.service.admission import AdmissionController, Decision, TokenBucket
from repro.service.breaker import CircuitBreaker
from repro.service.client import ServiceClient, ServiceError
from repro.service.core import SweepService
from repro.service.jobs import Job, ServiceJournal, replay_service_journal
from repro.service.scheduler import PriorityScheduler
from repro.service.server import (
    SweepServer,
    default_socket_path,
    wait_for_socket,
)
from repro.service.store import ResultStore
from repro.service.telemetry import ServiceTelemetry, SLOPolicy, stable_status

__all__ = [
    "AdmissionController",
    "CircuitBreaker",
    "Decision",
    "Job",
    "PriorityScheduler",
    "ResultStore",
    "SLOPolicy",
    "ServiceClient",
    "ServiceError",
    "ServiceJournal",
    "ServiceTelemetry",
    "SweepServer",
    "SweepService",
    "TokenBucket",
    "default_socket_path",
    "replay_service_journal",
    "stable_status",
    "wait_for_socket",
]
