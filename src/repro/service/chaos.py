"""Chaos drills for the supervised sweep service.

Extends the seeded campaign (:mod:`repro.faults.chaos`) with the
service-level fault kinds the queue front end must survive:

``hung_worker``
    a seeded worker hang inside a service job; the executor's timeout
    fires, the retry succeeds, the job completes bit-identical —
    *recovered*;
``torn_shard``
    a store shard object truncated mid-write between two service
    lifetimes; the digest check discards it, a ``store_corrupt`` event
    surfaces, the config is recomputed to the same digest — *recovered*;
``submission_flood``
    a burst far past the admission budget; every excess submission gets
    an explicit ``rejected`` response and a journal record, admitted +
    rejected accounts for every request, admitted work completes, *and*
    the telemetry plane notices: the flooding tenant's completion-rate
    SLO breach is detected and journaled as a first-class
    ``slo_breach`` event — *degraded* (visible, accounted degradation;
    shedding without the SLO verdict would be merely *rejected*);
``worker_failure_storm``
    every run crashes until the circuit breaker trips; submissions are
    refused while open, the half-open probe restores service, and the
    storm-hit tenant's SLO breach is journaled while the breaker cycle
    is counted by the metrics plane — *degraded*;
``service_kill``
    a real ``repro serve`` subprocess SIGKILLed mid-sweep; a restarted
    service resumes the job with every journaled completion served from
    the store, zero recomputation of finished work, and the telemetry
    counters (per-tenant submits, per-source completions) re-seeded
    from the journal fold — *recovered*.

Any other outcome is *silent* and fails the campaign.  All in-process
stages run on injected :class:`StepClock` time, so their evidence
strings are deterministic; the kill stage talks to a real process and
is therefore excluded from byte-for-byte report comparisons (see
``run_chaos_campaign(service_faults=...)``).
"""

from __future__ import annotations

import os
import shutil
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

from repro.experiments.config import MeshSpec, resolve_mesh
from repro.experiments.executor import (
    ExecutionPlan,
    execute_plan,
    payload_digest,
    simulate_to_dict,
)
from repro.faults.chaos import (
    CLEAN,
    DEGRADED,
    DETECTED,
    RECOVERED,
    REJECTED,
    SILENT,
    ChaosReport,
    StageReport,
)
from repro.faults.injector import AlwaysCrashWorker, FaultyWorker
from repro.faults.plan import FaultPlan
from repro.metrics.counters import counters_to_dict
from repro.service.admission import AdmissionController
from repro.service.breaker import OPEN, CircuitBreaker
from repro.service.core import SweepService
from repro.service.jobs import replay_service_journal

#: the service fault vocabulary; every kind is drilled by
#: :func:`append_service_stages` and must classify as a safe outcome.
SERVICE_FAULT_KINDS = ("hung_worker", "torn_shard", "submission_flood",
                       "worker_failure_storm", "service_kill")


class StepClock:
    """A manually-advanced monotonic clock: drills step time instead of
    sleeping through it, which keeps evidence deterministic."""

    def __init__(self, start: float = 0.0):
        self.now = float(start)

    def advance(self, dt: float) -> None:
        self.now += float(dt)

    def __call__(self) -> float:
        return self.now


def _baseline_digests(plan: ExecutionPlan, scratch: Path) -> dict[str, str]:
    """key -> content digest from one clean serial sweep: the yardstick
    every service stage's stored payloads are compared against."""
    res = execute_plan(plan, cache_dir=scratch / "service-baseline", jobs=1)
    return {key: payload_digest(counters_to_dict(run))
            for key, run in res.runs.items()}


def _digests_match(svc: SweepService, job_id: str,
                   expect: dict[str, str]) -> bool:
    job = svc._jobs.get(job_id)
    return (job is not None
            and set(job.completed) == set(expect)
            and all(job.completed[k] == expect[k] for k in expect))


def append_service_stages(report: ChaosReport, *,
                          seed: int,
                          mesh: MeshSpec = "tiny",
                          scratch: str | os.PathLike,
                          verbose: bool = False,
                          include_kill: bool = True) -> None:
    """Run the service drills and append one stage per fault kind (plus
    the dedup baseline) to *report*.  ``scratch`` holds all state dirs
    and is owned by the caller."""
    scratch = Path(scratch)
    scratch.mkdir(parents=True, exist_ok=True)
    dims = resolve_mesh(mesh)
    plan = ExecutionPlan.ladder(mesh=dims)
    configs = list(plan)
    keys = [cfg.key() for cfg in plan]

    def note(msg: str) -> None:
        if verbose:
            print(f"[chaos] {msg}", file=sys.stderr, flush=True)

    note("service baseline sweep")
    expect = _baseline_digests(plan, scratch)

    # -- baseline + cross-tenant dedup ------------------------------------
    note("stage service-dedup")
    svc = SweepService(str(scratch / "dedup"))
    r1 = svc.submit(configs, tenant="alice")
    svc.process_next()
    r2 = svc.submit(configs, tenant="bob")
    svc.process_next()
    svc.close()
    j1 = svc._jobs.get(r1.get("job_id", ""))
    j2 = svc._jobs.get(r2.get("job_id", ""))
    ok = (j1 is not None and j2 is not None
          and j1.status == "done" and j2.status == "done"
          and j2.from_store == len(plan) and j2.recomputed == 0
          and _digests_match(svc, j1.job_id, expect)
          and _digests_match(svc, j2.job_id, expect)
          and svc.store.object_count() == len(set(expect.values())))
    report.stages.append(StageReport(
        name="service-dedup", kind="none", target="",
        classification=CLEAN if ok else SILENT,
        evidence=[
            f"alice computed {j1.recomputed if j1 else '?'}/{len(plan)}, "
            f"bob served {j2.from_store if j2 else '?'}/{len(plan)} "
            f"from the store",
            f"store holds {svc.store.object_count()} object(s) for "
            f"{len(expect)} config(s) x 2 tenants",
            f"all digests match clean baseline: "
            f"{_digests_match(svc, j2.job_id, expect) if j2 else False}"]))

    # -- hung worker: executor timeout + retry inside a service job -------
    fplan = FaultPlan.generate(seed, keys)
    spec = fplan.spec_for("hang")
    note(f"stage hung-worker: hang on {spec.target_key}")
    state = scratch / "hung"
    worker = FaultyWorker(fplan, scratch / "hung.markers", kinds=("hang",),
                          cache_dir=state / "cache", hang_s=2.0)
    svc = SweepService(str(state), jobs=2, timeout_s=0.5, retries=2,
                       backoff_s=0.01, worker=worker)
    resp = svc.submit(configs, tenant="alice")
    svc.process_next()
    svc.close()
    job = svc._jobs.get(resp.get("job_id", ""))
    noticed = {ev.get("kind") for ev in (job.events if job else [])
               if ev.get("kind") in ("timeout", "retry")
               and ev.get("key") == spec.target_key}
    healed = (job is not None and job.status == "done"
              and _digests_match(svc, job.job_id, expect) and noticed)
    report.stages.append(StageReport(
        name="service-hung-worker", kind="hung_worker",
        target=spec.target_key,
        classification=RECOVERED if healed else
        (DETECTED if job is not None and job.status == "failed" else SILENT),
        evidence=[
            f"timeout/retry events on target: {sorted(noticed)}",
            f"job status: {job.status if job else 'missing'}",
            f"all digests match clean baseline: "
            f"{_digests_match(svc, job.job_id, expect) if job else False}"]))

    # -- torn shard: truncated store object between two service lives -----
    victim_key = keys[seed % len(keys)]
    note(f"stage torn-shard: tearing {victim_key}")
    state = scratch / "torn"
    svc = SweepService(str(state))
    r1 = svc.submit(configs, tenant="alice")
    svc.process_next()
    svc.close()
    digest = svc.store.digest_for(victim_key) or ""
    obj = svc.store.object_path(digest)
    data = obj.read_bytes()
    obj.write_bytes(data[:max(1, len(data) // 3)])  # the torn write
    # drop the executor cache so recovery must truly recompute — the
    # cache and the store are separate retention domains in production.
    shutil.rmtree(state / "cache", ignore_errors=True)
    svc2 = SweepService(str(state))
    r2 = svc2.submit(configs, tenant="bob")
    svc2.process_next()
    svc2.close()
    job = svc2._jobs.get(r2.get("job_id", ""))
    corrupt_events = [ev for ev in (job.events if job else [])
                      if ev.get("kind") == "store_corrupt"]
    healed = (job is not None and job.status == "done"
              and svc2.store.stats.corrupt_discarded == 1
              and corrupt_events
              and job.sources.get(victim_key) == "computed"
              and _digests_match(svc2, job.job_id, expect))
    report.stages.append(StageReport(
        name="service-torn-shard", kind="torn_shard", target=victim_key,
        classification=RECOVERED if healed else SILENT,
        evidence=[
            f"store discarded {svc2.store.stats.corrupt_discarded} torn "
            f"object(s), store_corrupt events: {len(corrupt_events)}",
            f"victim recomputed: "
            f"{job.sources.get(victim_key) if job else None}, other "
            f"{job.from_store if job else '?'} served from store",
            f"recomputed digest matches baseline: "
            f"{(job.completed.get(victim_key) == expect[victim_key]) if job else False}"]))

    # -- submission flood: explicit shedding, full accounting -------------
    note("stage submission-flood")
    clock = StepClock()
    admission = AdmissionController(tenant_burst=2.0, tenant_per_s=0.0,
                                    global_burst=4.0, global_per_s=0.0,
                                    max_queue_depth=64, clock=clock)
    svc = SweepService(str(scratch / "flood"), admission=admission,
                       clock=clock)
    one = [configs[0]]
    responses = [svc.submit(one, tenant="mallory") for _ in range(6)]
    responses += [svc.submit(one, tenant="alice") for _ in range(3)]
    responses += [svc.submit(one, tenant="carol")]
    admitted = [r for r in responses if r.get("ok")]
    rejected = [r for r in responses if not r.get("ok")]
    reasons = {r.get("rejected", "") for r in rejected}
    while svc.process_next():
        pass
    svc.close()
    done = [svc._jobs[r["job_id"]].status for r in admitted]
    accounted = (len(admitted) + len(rejected) == len(responses)
                 and svc.rejected_total == len(rejected))
    shed = (len(admitted) == 4 and len(rejected) == 6
            and all(reason for reason in reasons)
            and any("tenant rate limit" in r for r in reasons)
            and any("service rate limit" in r for r in reasons)
            and accounted and all(s == "done" for s in done))
    # the telemetry plane must have *seen* the degradation: the flooding
    # tenant's completion rate collapsed, and the breach is both live in
    # the registry and durable in the journal.
    verdicts = svc.telemetry.slo_verdicts()
    mallory = verdicts.get("mallory", {})
    breach_live = (svc.telemetry.breach_count() >= 1
                   and mallory.get("ok") is False)
    jstate = replay_service_journal(scratch / "flood" / "service.journal")
    journaled = [b for b in (jstate.slo_breaches if jstate else [])
                 if b["tenant"] == "mallory"
                 and b["slo"] == "completion_rate"]
    degraded = shed and breach_live and bool(journaled)
    report.stages.append(StageReport(
        name="service-flood", kind="submission_flood", target="",
        classification=(DEGRADED if degraded
                        else REJECTED if shed else SILENT),
        evidence=[
            f"{len(responses)} submissions: {len(admitted)} admitted, "
            f"{len(rejected)} rejected — accounted: {accounted}",
            f"rejection reasons: {sorted(reasons)}",
            f"admitted jobs all completed: "
            f"{all(s == 'done' for s in done)}",
            f"mallory completion-rate SLO breached: {breach_live} "
            f"(rate {mallory.get('completion_rate', {}).get('rate')})",
            f"breach journaled as slo_breach event: {len(journaled)}"]))

    # -- worker failure storm: the breaker trips, probes, recovers --------
    note("stage worker-failure-storm")
    clock = StepClock()
    breaker = CircuitBreaker(failure_threshold=2, cooldown_s=10.0,
                             clock=clock)
    svc = SweepService(str(scratch / "storm"), worker=AlwaysCrashWorker(),
                       retries=0, backoff_s=0.0, breaker=breaker,
                       clock=clock)
    for _ in range(2):  # two failed jobs trip the breaker
        resp = svc.submit(one, tenant="alice")
        if resp.get("ok"):
            svc.process_next()
    tripped = breaker.state == OPEN and breaker.trips == 1
    refused = svc.submit(one, tenant="alice")
    refused_openly = (not refused.get("ok")
                      and "circuit breaker" in refused.get("rejected", ""))
    clock.advance(breaker.cooldown_s + 1.0)  # cooldown -> half-open
    svc.worker = simulate_to_dict  # the backend recovers; probe honestly
    probe = svc.submit(one, tenant="alice")
    if probe.get("ok"):
        svc.process_next()
    probe_job = svc._jobs.get(probe.get("job_id", ""))
    recovered_resp = svc.submit(one, tenant="bob")
    if recovered_resp.get("ok"):
        svc.process_next()
    svc.close()
    healed = (tripped and refused_openly and probe.get("ok")
              and probe_job is not None and probe_job.status == "done"
              and breaker.state == "closed" and recovered_resp.get("ok"))
    # degradation must be on the record: alice's completion rate
    # collapsed under the storm (journaled slo_breach), and the metrics
    # plane counted the breaker's full closed→open→half-open→closed
    # cycle.
    reg = svc.telemetry.registry
    trip_count = reg.counter_value("breaker_transitions_total",
                                   **{"from": "closed", "to": "open"})
    close_count = reg.counter_value("breaker_transitions_total",
                                    **{"from": "half_open", "to": "closed"})
    cycle_counted = trip_count == 1 and close_count == 1
    jstate = replay_service_journal(scratch / "storm" / "service.journal")
    journaled = [b for b in (jstate.slo_breaches if jstate else [])
                 if b["tenant"] == "alice" and b["slo"] == "completion_rate"]
    degraded = healed and cycle_counted and bool(journaled)
    report.stages.append(StageReport(
        name="service-breaker", kind="worker_failure_storm", target="",
        classification=(DEGRADED if degraded
                        else RECOVERED if healed else SILENT),
        evidence=[
            f"breaker tripped after 2 failed jobs: {tripped}",
            f"open-state submission refused explicitly: "
            f"{refused.get('rejected', '')!r}",
            f"half-open probe restored service: "
            f"probe={probe_job.status if probe_job else 'rejected'}, "
            f"breaker={breaker.state}, "
            f"post-recovery submit admitted: "
            f"{bool(recovered_resp.get('ok'))}",
            f"metrics counted breaker cycle: {cycle_counted} "
            f"(trips {trip_count:g}, closes {close_count:g})",
            f"alice completion-rate breach journaled: {len(journaled)}"]))

    # -- service kill: SIGKILL a real server mid-sweep, then resume -------
    if include_kill:
        note("stage service-kill")
        report.stages.append(
            _kill_stage(plan, expect, scratch / "kill", note))


def _kill_stage(plan: ExecutionPlan, expect: dict[str, str],
                state: Path, note) -> StageReport:
    """SIGKILL a real ``repro serve`` process mid-sweep; a restarted
    service must finish the job serving every journaled completion from
    the store."""
    from repro.service.client import ServiceClient
    from repro.service.server import default_socket_path, wait_for_socket

    sock = default_socket_path(state)
    env = dict(os.environ)
    pkg_root = str(Path(__file__).resolve().parents[2])
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (pkg_root, env.get("PYTHONPATH")) if p)
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--state-dir", str(state),
         "--socket", str(sock), "--worker-delay", "0.2"],
        env=env, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
    evidence: list[str] = []
    pre_kill = 0
    job_id = ""
    try:
        if not wait_for_socket(sock, timeout_s=20.0):
            return StageReport(
                name="service-kill", kind="service_kill", target="",
                classification=SILENT,
                evidence=["server socket never came up"])
        client = ServiceClient(sock)
        resp = client.submit(list(plan), tenant="alice")
        if not resp.get("ok"):
            return StageReport(
                name="service-kill", kind="service_kill", target="",
                classification=SILENT,
                evidence=[f"submission refused: {resp}"])
        job_id = resp["job_id"]
        deadline = time.monotonic() + 60.0
        while time.monotonic() < deadline:
            view = client.poll(job_id).get("job", {})
            pre_kill = int(view.get("completed", 0))
            if pre_kill >= 3 or view.get("status") in ("done", "failed"):
                break
            time.sleep(0.05)
    finally:
        proc.send_signal(signal.SIGKILL)
        proc.wait(timeout=30.0)
    note(f"killed serve pid after {pre_kill} completion(s)")
    evidence.append(f"SIGKILL with {pre_kill}/{len(plan)} configs "
                    f"journaled complete")
    if pre_kill < 1 or pre_kill >= len(plan):
        evidence.append("kill did not land mid-sweep")
        return StageReport(name="service-kill", kind="service_kill",
                           target=job_id, classification=SILENT,
                           evidence=evidence)

    # the restarted service: same state dir, journal + store intact.
    svc = SweepService(str(state))
    # counters survive kill -9: the journal fold must have re-seeded the
    # telemetry registry before any new work runs — the dead process's
    # submit is already counted.
    reg = svc.telemetry.registry

    def _configs_counted() -> float:
        return (
            reg.counter_value("service_configs_done_total",
                              source="computed")
            + reg.counter_value("service_configs_done_total", source="store")
            + reg.counter_value("service_configs_done_total", source="cache"))

    seeded_submits = reg.counter_value("service_submits_total",
                                       tenant="alice")
    seeded_configs = _configs_counted()
    resumed = svc.process_next(wait_s=1.0)
    svc.close()
    job = svc._jobs.get(job_id)
    # the journal fold seeds the dead process's completions; the resumed
    # job then counts all of its configs again (store-served + recomputed),
    # so the lifetime total is seeded + one full pass over the plan.
    configs_counted = _configs_counted()
    counters_survived = (seeded_submits == 1
                         and seeded_configs >= pre_kill
                         and configs_counted == seeded_configs + len(expect)
                         and reg.counter_value("service_jobs_done_total",
                                               tenant="alice") == 1)
    ok = (svc.resumed_jobs >= 1 and resumed == job_id
          and job is not None and job.status == "done"
          and job.from_store >= pre_kill
          and counters_survived
          and _digests_match(svc, job_id, expect))
    evidence += [
        f"restart requeued {svc.resumed_jobs} in-flight job(s)",
        f"resume served {job.from_store if job else '?'} from "
        f"store/cache, recomputed {job.recomputed if job else '?'} "
        f"(>= {pre_kill} journaled completions preserved: "
        f"{job.from_store >= pre_kill if job else False})",
        f"telemetry counters survived the kill via journal replay: "
        f"{counters_survived} (submits {seeded_submits:g}, "
        f"seeded {seeded_configs:g} pre-kill completions, lifetime "
        f"configs done {configs_counted:g}/"
        f"{seeded_configs + len(expect):g})",
        f"all {len(expect)} digests match clean baseline: "
        f"{_digests_match(svc, job_id, expect)}"]
    return StageReport(name="service-kill", kind="service_kill",
                       target=job_id,
                       classification=RECOVERED if ok else SILENT,
                       evidence=evidence)


def run_service_campaign(seed: int = 0,
                         mesh: MeshSpec = "tiny",
                         out_dir: str | os.PathLike | None = None,
                         verbose: bool = False,
                         include_kill: bool = True) -> ChaosReport:
    """The service drills alone, as a standalone report (the CI service
    job's fast path; ``repro chaos --service-faults`` runs them appended
    to the full campaign instead)."""
    dims = resolve_mesh(mesh)
    plan = ExecutionPlan.ladder(mesh=dims)
    report = ChaosReport(seed=seed, mesh_dims=dims, plan_size=len(plan))
    scratch = Path(tempfile.mkdtemp(prefix="repro-service-chaos-"))
    try:
        append_service_stages(report, seed=seed, mesh=mesh, scratch=scratch,
                              verbose=verbose, include_kill=include_kill)
    finally:
        shutil.rmtree(scratch, ignore_errors=True)
    if out_dir is not None:
        out = Path(out_dir)
        out.mkdir(parents=True, exist_ok=True)
        (out / "chaos-report.json").write_text(report.to_json())
        (out / "chaos-summary.md").write_text(report.to_markdown())
    return report
