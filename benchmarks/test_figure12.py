"""Figure 12: speed-up of the optimized code over the original
auto-vectorized code, on the three platforms.

Paper: the enhancements apply to all platforms; the RISC-V gain grows
with VECTOR_SIZE (up to 1.45x); SX-Aurora follows the same trend up to
VECTOR_SIZE = 256 and then the speed-up decreases (the weight of the
non-vectorized indexed-access-heavy phase 8 grows); MareNostrum 4 sees
gains driven by phase-2 cache-miss and instruction reductions.
"""

from repro.experiments import figures, report


def test_figure12(benchmark, session):
    f = benchmark(figures.figure12, session)

    def sp(machine, vs):
        return f.series[machine][f.xs.index(vs)]

    # "performance benefits, or at the very least, no drawbacks"
    for machine in f.series:
        for vs in f.xs:
            assert sp(machine, vs) > 0.97, (machine, vs)
    # RISC-V: the gain grows with VECTOR_SIZE into the large sizes
    assert sp("riscv_vec", 16) < sp("riscv_vec", 128) < sp("riscv_vec", 256)
    assert sp("riscv_vec", 256) > 1.1
    # NEC: same trend up to 256, then decreasing (phase-8 weight)
    assert sp("sx_aurora", 64) < sp("sx_aurora", 240)
    assert sp("sx_aurora", 512) < sp("sx_aurora", 256)
    assert sp("sx_aurora", 240) > 1.1
    # MareNostrum 4 also benefits at the large sizes
    assert sp("mn4_avx512", 256) > 1.02
    print()
    print(report.format_table(f.rows()))
