"""Figure 8: percentage of cycles per phase after all optimizations.

Paper: phases 1 and 2 shrink to a narrow share; the non-vectorized
phase 8 keeps growing with VECTOR_SIZE; the other phases are roughly
constant for VECTOR_SIZE >= 128.
"""

from repro.experiments import figures, report


def test_figure8(benchmark, session):
    f = benchmark(figures.figure8, session)
    before = figures.figure4(session)

    def share(fig, phase, vs):
        return fig.series[f"phase {phase}"][fig.xs.index(vs)]

    # the optimized phases now take a much narrower share than in Fig. 4
    for vs in (240, 256, 512):
        assert share(f, 2, vs) < 0.6 * share(before, 2, vs), vs
        assert share(f, 1, vs) < share(before, 1, vs) * 1.05, vs
    # phase 8 (never vectorized) keeps growing with VECTOR_SIZE
    assert share(f, 8, 512) > share(f, 8, 64)
    # percentages are a partition
    for i in range(len(f.xs)):
        assert abs(sum(f.series[k][i] for k in f.series) - 100.0) < 0.1
    print()
    print(report.format_table(f.rows()))
