"""Table 2: HPC platforms, hardware and software configuration."""

from repro.experiments import report, tables


def test_table2(benchmark):
    t = benchmark(tables.table2)
    data = {r[0]: r[1:] for r in t.rows()[1:]}
    # per-core figures from the paper's Table 2
    assert data["Frequency [MHz]"] == ["50", "2100", "1600"]
    assert data["Bandwidth [Bytes/cycle]"] == ["64", "11.2", "120"]
    assert data["Throughput [FLOP/cycle]"] == ["16", "32", "192"]
    assert data["Cores per socket"] == ["1", "24", "8"]
    assert data["Compiler"] == ["flang 18.0.0", "ifort 2018.4", "nfort 5.0.2"]
    print()
    print(report.render(t))
