"""Figure 6: phase-2 cycles, original vs VEC2 vs IVEC2.

Paper: interchanging the loops so ivect (VECTOR_SIZE elements) is
innermost yields vector instructions with vl = VECTOR_SIZE and a
speed-up of up to 7.38x over the original at VECTOR_SIZE = 256, growing
with VECTOR_SIZE.
"""

from repro.experiments import figures, report


def test_figure6(benchmark, session):
    f = benchmark(figures.figure6, session)

    def ratio(vs):
        i = f.xs.index(vs)
        return f.series["vanilla"][i] / f.series["ivec2"][i]

    # IVEC2 beats the original everywhere
    for i, vs in enumerate(f.xs):
        assert f.series["ivec2"][i] < f.series["vanilla"][i], vs
    # the gain grows with VECTOR_SIZE ...
    assert ratio(64) < ratio(128) < ratio(240)
    # ... reaching several-fold at the large sizes (paper: 7.38x @ 256)
    assert ratio(256) > 4.0
    # and IVEC2 crushes the counter-productive VEC2
    i = f.xs.index(256)
    assert f.series["vec2"][i] / f.series["ivec2"][i] > 3.0
    print()
    print(report.format_table(f.rows()))
