"""Figure 11: speed-up with respect to scalar VECTOR_SIZE = 16, per
cumulative optimization.

Paper: vanilla auto-vectorization reaches 3-6x peaking at VECTOR_SIZE =
240; VEC2 is a regression; IVEC2 overtakes the original everywhere; the
full optimization chain reaches 7.6x at VECTOR_SIZE = 240, close to the
8x ideal of the 8-lane VPU.
"""

from repro.experiments import figures, report


def test_figure11(benchmark, session):
    f = benchmark(figures.figure11, session)

    def sp(opt, vs):
        return f.series[opt][f.xs.index(vs)]

    # peak at VECTOR_SIZE = 240 for every optimization level
    for opt in ("vanilla", "ivec2", "vec1"):
        peaks = {vs: sp(opt, vs) for vs in f.xs}
        assert max(peaks, key=peaks.get) == 240, opt
    # the headline: final speed-up lands near the paper's 7.6x,
    # below the 8-lane ideal's neighbourhood
    assert 6.5 <= sp("vec1", 240) <= 9.0
    # vanilla reaches a healthy multiple of scalar
    assert sp("vanilla", 240) > 5.0
    # VEC2 is counter-productive relative to vanilla (paper's point)
    for vs in (64, 128, 240, 256, 512):
        assert sp("vec2", vs) < sp("vanilla", vs), vs
    # cumulative ordering beyond VEC2: ivec2 > vanilla, vec1 >= ivec2
    for vs in (64, 128, 240, 256, 512):
        assert sp("ivec2", vs) > sp("vanilla", vs), vs
        assert sp("vec1", vs) >= sp("ivec2", vs), vs
    # final gain over plain auto-vectorization (paper: up to ~1.3x)
    assert sp("vec1", 240) / sp("vanilla", 240) > 1.08
    print()
    print(report.format_table(f.rows()))
