"""Figure 13: MareNostrum 4 -- overall vs phase-2 speed-up.

Paper: the overall MN4 gain is explained by phase 2 (fewer L1/L2 misses
and fewer executed instructions after IVEC2); the phase-2 speed-up is
much larger than the overall one.
"""

from repro.experiments import figures, report


def test_figure13(benchmark, session):
    f = benchmark(figures.figure13, session)

    def overall(vs):
        return f.series["mini-app"][f.xs.index(vs)]

    def phase2(vs):
        return f.series["phase 2"][f.xs.index(vs)]

    for vs in (64, 128, 240, 256, 512):
        # phase 2 improves substantially ...
        assert phase2(vs) > 1.3, vs
        # ... and drives a (smaller) overall gain
        assert phase2(vs) > overall(vs), vs
        assert overall(vs) > 0.97, vs
    # amplitude check: phase 2 is a multiple, the overall is modest
    assert max(phase2(vs) for vs in f.xs) > 2.0
    assert max(overall(vs) for vs in f.xs) < 2.0
    print()
    print(report.format_table(f.rows()))
