"""Table 4: vanilla vector instruction mix M_v per (VECTOR_SIZE, phase).

Paper: phases 1, 2 and 8 never vectorize; at VECTOR_SIZE = 16 only
phase 7 shows a substantial mix (24.6%), with traces in phases 3 and 6;
from VECTOR_SIZE = 64 phases 3-7 sit in the ~13-26% band, roughly flat
in VECTOR_SIZE.
"""

from repro.experiments import report, tables
from repro.experiments.config import VECTOR_SIZES


def test_table4(benchmark, session):
    t = benchmark(tables.table4, session)
    for vs in VECTOR_SIZES:
        row = t.mix[vs]
        assert row[1] == 0.0 and row[2] == 0.0 and row[8] == 0.0, vs
    # VS=16: phase 7 clearly vectorized, phases 4 and 5 not at all
    r16 = t.mix[16]
    assert r16[7] > 0.10
    assert r16[4] == 0.0 and r16[5] == 0.0
    assert r16[7] > r16[3] and r16[7] > r16[6]
    # VS >= 64: all compute phases vectorized with a meaningful mix
    for vs in (64, 128, 240, 256, 512):
        for phase in (3, 4, 5, 6, 7):
            assert t.mix[vs][phase] > 0.08, (vs, phase)
    # the mix is roughly flat in VECTOR_SIZE (data layout effect only)
    for phase in (3, 6, 7):
        vals = [t.mix[vs][phase] for vs in (64, 128, 240, 256)]
        assert max(vals) / min(vals) < 1.5, phase
    print()
    rows = t.rows()
    print(report.format_table(rows))
