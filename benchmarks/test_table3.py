"""Table 3: percentage of total cycles spent per phase (scalar build).

Paper: {1.3, 3.3, 19.8, 14.5, 3.5, 41.0, 14.7, 2.0}% -- phase 6
dominates, and phases 3, 4, 6, 7 together account for ~90% of cycles.
"""

from repro.experiments import report, tables


def test_table3(benchmark, session):
    t = benchmark(tables.table3, session)
    fr = t.fractions
    # phase 6 is the dominant phase by a wide margin
    assert fr[6] == max(fr.values())
    assert fr[6] > 0.30
    # the four heavy phases carry (almost) all the work
    heavy = fr[3] + fr[4] + fr[6] + fr[7]
    assert heavy > 0.85
    # gather/scatter phases are small in the scalar build
    assert fr[1] < 0.05 and fr[2] < 0.06 and fr[8] < 0.06
    print()
    print(report.render(t))
