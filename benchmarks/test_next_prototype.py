"""Beyond the paper: the co-design loop closed on the hardware side.

The paper's final lesson for hardware architects is that the prototype
runs faster at vector length 240 than at its full 256-element capacity,
and that this feedback was handed to the hardware team "encouraging
addressing this micro-architectural insight in future RISC-V VEC
prototypes".  ``RISCV_VEC_NEXT`` models such a fixed prototype (the FSM
drains partial groups without a flush penalty); this benchmark verifies
the fix does what the feedback asked:

* VECTOR_SIZE = 256 becomes at least as fast as 240 (full occupancy pays
  again);
* the software advisor stops recommending the 240 workaround;
* nothing else regresses (every configuration is at least as fast as on
  the current prototype).
"""

from repro.cfd.assembly import MiniApp
from repro.cfd.mesh import box_mesh
from repro.experiments.config import VECTOR_SIZES
from repro.machine.machines import RISCV_VEC, RISCV_VEC_NEXT


def test_next_prototype_restores_full_vector_length(benchmark):
    mesh = box_mesh(16, 16, 15)  # 3840 = lcm(240, 256): no padding bias

    def run():
        out = {}
        for machine in (RISCV_VEC, RISCV_VEC_NEXT):
            for vs in (240, 256):
                app = MiniApp(mesh, vector_size=vs, opt="vec1")
                out[(machine.name, vs)] = app.run_timed(
                    machine, cache_enabled=False).total_cycles
        return out

    r = benchmark.pedantic(run, rounds=1, iterations=1)
    # current prototype: the 240 workaround is needed
    assert r[("RISC-V VEC", 240)] < r[("RISC-V VEC", 256)]
    # next prototype: full vector length wins (or at worst ties)
    assert r[("RISC-V VEC (next)", 256)] <= r[("RISC-V VEC (next)", 240)]
    # and the fix is a pure improvement
    for vs in (240, 256):
        assert r[("RISC-V VEC (next)", vs)] <= r[("RISC-V VEC", vs)]
    print("\ncycles:", {k: f"{v:.4g}" for k, v in r.items()})


def test_advisor_drops_the_240_workaround(benchmark):
    from repro.codesign import Advisor

    mesh = box_mesh(8, 8, 15)

    def run():
        app = MiniApp(mesh, vector_size=256, opt="vec1")
        current = Advisor(RISCV_VEC).analyze_miniapp(app)
        fixed = Advisor(RISCV_VEC_NEXT).analyze_miniapp(app)
        return current, fixed

    current, fixed = benchmark.pedantic(run, rounds=1, iterations=1)
    assert any(f.category == "fsm-granularity" for f in current)
    assert not any(f.category == "fsm-granularity" for f in fixed)
