"""Beyond the paper: mesh numbering and indexed-access locality.

The paper attributes phase-8's cost growth to "the complexity of indexed
memory accesses".  Indexed access cost is a function of the mesh's node
numbering: a well-ordered (lexicographic) mesh keeps the gather/scatter
footprints of consecutive elements on shared cache lines, a randomly
renumbered mesh destroys that locality.  This experiment quantifies the
effect -- the kind of data-layout study the co-design methodology feeds
back to application developers.
"""

import pytest

from repro.cfd.assembly import MiniApp
from repro.cfd.mesh import box_mesh
from repro.experiments.config import QUICK_MESH
from repro.machine.machines import RISCV_VEC


def test_random_renumbering_hurts_gather_scatter_phases(benchmark):
    ordered = box_mesh(*QUICK_MESH)
    shuffled = box_mesh(*QUICK_MESH, renumber_seed=7)

    def run():
        out = {}
        for name, mesh in (("ordered", ordered), ("shuffled", shuffled)):
            r = MiniApp(mesh, vector_size=240, opt="vec1").run_timed(RISCV_VEC)
            out[name] = {
                "total": r.total_cycles,
                "p2_misses": r.phases[2].l1_misses,
                "p8_misses": r.phases[8].l1_misses,
                "p2": r.phases[2].cycles_total,
                "p8": r.phases[8].cycles_total,
                "p6": r.phases[6].cycles_total,
            }
        return out

    r = benchmark.pedantic(run, rounds=1, iterations=1)
    o, s = r["ordered"], r["shuffled"]
    # random node ids scatter the gather/scatter footprints: more misses
    assert s["p2_misses"] > 1.5 * o["p2_misses"]
    assert s["p8_misses"] > 1.25 * o["p8_misses"]
    # which costs cycles in exactly those phases ...
    assert s["p2"] > 1.05 * o["p2"]
    assert s["p8"] > 1.05 * o["p8"]
    # ... while the element-local compute phases are unaffected
    assert s["p6"] == pytest.approx(o["p6"], rel=0.02)
    # and the whole mini-app pays
    assert s["total"] > o["total"]
    print(f"\nordered total={o['total']:.4g}, shuffled total={s['total']:.4g} "
          f"(+{100 * (s['total'] / o['total'] - 1):.1f}%); "
          f"p8 misses x{s['p8_misses'] / o['p8_misses']:.1f}")
