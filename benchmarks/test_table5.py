"""Table 5: vCPI, AVL and vector instruction count of phase 6.

Paper: AVL equals VECTOR_SIZE (saturating at the 256-element register);
the instruction count is inversely proportional to AVL; vCPI grows with
the vector length but *sublinearly* (64 -> 128 doubles the elements but
raises vCPI by only ~1.2x), and exceeds the 32-cycle FMA latency at
vl = 256.
"""

import pytest

from repro.experiments import report, tables


def test_table5(benchmark, session):
    t = benchmark(tables.table5, session)
    # AVL = min(VECTOR_SIZE, vl_max)
    for vs in (16, 64, 128, 240, 256):
        assert t.per_vs[vs][1] == pytest.approx(vs, rel=0.02)
    assert t.per_vs[512][1] == pytest.approx(256, rel=0.02)
    # instruction count inversely proportional to AVL
    n64, n128, n256, n512 = (t.per_vs[v][2] for v in (64, 128, 256, 512))
    assert n64 / n128 == pytest.approx(2.0, rel=0.1)
    assert n128 / n256 == pytest.approx(2.0, rel=0.1)
    assert n512 == pytest.approx(n256, rel=0.02)
    # vCPI monotone increasing in the vector length
    vcpis = [t.per_vs[v][0] for v in (16, 64, 128, 240, 256, 512)]
    assert vcpis == sorted(vcpis)
    # ... but sublinear: doubling 64 -> 128 costs well under 2x
    assert t.per_vs[128][0] / t.per_vs[64][0] < 1.8
    # at vl=256 the vCPI exceeds the ~32-cycle FMA latency: memory and
    # arithmetic pipelines are not fully overlapped (paper's remark)
    assert t.per_vs[256][0] > 32.0
    print()
    print(report.render(t))
