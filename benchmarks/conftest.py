"""Shared benchmark fixtures.

The benchmark suite regenerates every table and figure of the paper on
the full 7680-element mesh.  All artifacts project the same ~50
simulated runs, which are cached in memory and on disk
(``.repro_cache/``), so the first invocation simulates (~10 minutes) and
subsequent ones re-render in seconds.

Set ``REPRO_MESH=quick`` to run the suite on the 960-element mesh
instead (faster, same qualitative shapes except where noted).
"""

from __future__ import annotations

import os

import pytest

from repro import Session
from repro.experiments.config import FULL_MESH, QUICK_MESH


@pytest.fixture(scope="session")
def session() -> Session:
    dims = QUICK_MESH if os.environ.get("REPRO_MESH") == "quick" else FULL_MESH
    return Session(mesh_dims=dims, verbose=True)
