"""Figure 5: phase-2 cycles, original vs VEC2.

Paper: making the bound a compile-time constant lets the compiler
vectorize the *short* inner copy loops (AVL = 4) -- and performance gets
WORSE: "enabling auto-vectorization of phase 2 has been
counter-productive and degraded the performance".
"""

from repro.experiments import figures, report


def test_figure5(benchmark, session):
    f = benchmark(figures.figure5, session)
    for i, vs in enumerate(f.xs):
        if vs == 16:
            continue  # the paper exempts VECTOR_SIZE = 16
        assert f.series["vec2"][i] > f.series["vanilla"][i], vs
    # the regression is significant, not marginal
    i = f.xs.index(240)
    assert f.series["vec2"][i] / f.series["vanilla"][i] > 1.15
    print()
    print(report.format_table(f.rows()))
