"""Table 6: coefficient of determination for phases 1 and 8.

Paper: regressing the per-phase cycles on L1 data-cache misses per
kilo-instruction and the percentage of memory instructions explains the
anomalous VECTOR_SIZE scaling of phase 1 (R^2 = 0.903) and phase 8
(R^2 = 0.966).
"""

from repro.experiments import report, tables


def test_table6(benchmark, session):
    t = benchmark(tables.table6, session)
    assert set(t.results) == {1, 8}
    # the memory model explains most of the variance
    assert t.results[1].r_squared > 0.75
    assert t.results[8].r_squared > 0.75
    assert t.results[1].r_squared <= 1.0
    assert t.results[8].r_squared <= 1.0
    print()
    print(report.render(t))
