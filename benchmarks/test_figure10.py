"""Figure 10: vector occupancy E_v per phase.

Paper: occupancy approaches 100% as VECTOR_SIZE nears the 256-element
register size; phase 8 is omitted (never vectorized).
"""

from repro.experiments import figures, report


def test_figure10(benchmark, session):
    f = benchmark(figures.figure10, session)
    assert "phase 8" not in f.series

    def occ(phase, vs):
        return f.series[f"phase {phase}"][f.xs.index(vs)]

    # near-full occupancy at VECTOR_SIZE = 256 for the vectorized phases
    for p in (1, 2, 3, 4, 6, 7):
        assert occ(p, 256) > 90.0, p
        # and monotone growth up to the register size
        assert occ(p, 64) < occ(p, 128) < occ(p, 256) + 1e-9, p
    # VECTOR_SIZE = 240 deliberately leaves ~6% of the register unused
    assert 90.0 < occ(6, 240) < 95.0
    # saturation: 512 cannot exceed 100%
    for p in (3, 6, 7):
        assert occ(p, 512) <= 100.0 + 1e-9
    print()
    print(report.format_table(f.rows()))
