"""Figure 7: phase-1 cycles, original vs VEC1 (loop fission).

Paper: fission lets WORK B run with vector instructions while WORK A
stays scalar, so the gain is bounded (~2x at VECTOR_SIZE = 512,
1.03-1.56x at the other sizes) -- much smaller than IVEC2's.
"""

from repro.experiments import figures, report


def test_figure7(benchmark, session):
    f = benchmark(figures.figure7, session)

    def ratio(vs):
        i = f.xs.index(vs)
        return f.series["vanilla"][i] / f.series["vec1"][i]

    # fission always helps ...
    for vs in f.xs:
        assert ratio(vs) >= 1.0, vs
    # ... modestly at VECTOR_SIZE = 16
    assert ratio(16) < 1.4
    # ... and at most around 2x (WORK A remains scalar: Amdahl)
    assert max(ratio(vs) for vs in f.xs) < 2.6
    assert max(ratio(vs) for vs in f.xs) > 1.4
    # gain grows from small to large VECTOR_SIZE
    assert ratio(16) < ratio(240)
    print()
    print(report.format_table(f.rows()))
