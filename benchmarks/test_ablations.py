"""Ablations of the design choices DESIGN.md calls out.

Each ablation switches off one micro-architectural mechanism and checks
that the corresponding paper phenomenon disappears -- evidence that the
reproduction gets the right results for the right reasons.

These run on the quick mesh (the effects are local to chunk-level
timing, not mesh scale).
"""

from dataclasses import replace

import pytest

from repro.cfd.assembly import MiniApp
from repro.cfd.mesh import box_mesh
from repro.experiments.config import QUICK_MESH
from repro.machine.machines import RISCV_VEC


@pytest.fixture(scope="module")
def mesh():
    return box_mesh(*QUICK_MESH)


def total(mesh, machine, opt, vs, cache=True):
    return MiniApp(mesh, vector_size=vs, opt=opt).run_timed(
        machine, cache_enabled=cache).total_cycles


def test_ablation_fsm_quirk_explains_240_sweet_spot(benchmark):
    """Without the 40-element FSM grouping, VECTOR_SIZE = 256 beats 240
    (full occupancy wins); with it, 240 wins -- the paper's co-design
    feedback to the hardware architects.

    Uses a mesh divisible by both 240 and 256 (no padding bias) and
    disables the cache model to isolate the VPU mechanism.
    """
    fsm_mesh = box_mesh(16, 16, 15)  # 3840 = lcm(240, 256)
    no_fsm = replace(RISCV_VEC, vpu=replace(RISCV_VEC.vpu, fsm_depth=None))

    def run():
        return {
            "with": (total(fsm_mesh, RISCV_VEC, "vec1", 240, cache=False),
                     total(fsm_mesh, RISCV_VEC, "vec1", 256, cache=False)),
            "without": (total(fsm_mesh, no_fsm, "vec1", 240, cache=False),
                        total(fsm_mesh, no_fsm, "vec1", 256, cache=False)),
        }

    r = benchmark.pedantic(run, rounds=1, iterations=1)
    with_240, with_256 = r["with"]
    wo_240, wo_256 = r["without"]
    assert with_240 < with_256          # quirk present: 240 faster
    assert wo_256 <= wo_240             # quirk removed: 256 at least as good
    print(f"\nwith FSM: 240={with_240:.3g} 256={with_256:.3g}; "
          f"without: 240={wo_240:.3g} 256={wo_256:.3g}")


def test_ablation_strip_stall_explains_vec2_regression(benchmark, mesh):
    """The VEC2 slowdown comes from the per-strip VPU round-trip: with
    the stall removed, AVL=4 vectorization is no longer clearly
    counter-productive."""
    no_stall = replace(
        RISCV_VEC,
        vpu=replace(RISCV_VEC.vpu, strip_stall_cycles=0.0, issue_overhead=4.0))

    def run():
        def p2(machine, opt):
            return MiniApp(mesh, vector_size=240, opt=opt).run_timed(
                machine).phases[2].cycles_total
        return {
            "with": (p2(RISCV_VEC, "vanilla"), p2(RISCV_VEC, "vec2")),
            "without": (p2(no_stall, "vanilla"), p2(no_stall, "vec2")),
        }

    r = benchmark.pedantic(run, rounds=1, iterations=1)
    assert r["with"][1] > r["with"][0] * 1.1          # regression present
    assert r["without"][1] < r["without"][0] * 1.1    # mostly gone
    print(f"\nvec2/vanilla phase-2 ratio: with stall "
          f"{r['with'][1]/r['with'][0]:.2f}, without "
          f"{r['without'][1]/r['without'][0]:.2f}")


def test_ablation_cache_model_drives_phase8_scaling(benchmark, mesh):
    """With the cache hierarchy disabled, phase 8's cycles become flat in
    VECTOR_SIZE -- the growth the paper regresses in Table 6 is a memory
    hierarchy effect."""

    def run():
        def p8(vs, cache):
            return MiniApp(mesh, vector_size=vs, opt="vec1").run_timed(
                RISCV_VEC, cache_enabled=cache).phases[8].cycles_total
        return {
            "cached": (p8(16, True), p8(512, True)),
            "nocache": (p8(16, False), p8(512, False)),
        }

    r = benchmark.pedantic(run, rounds=1, iterations=1)
    grow_cached = r["cached"][1] / r["cached"][0]
    grow_nocache = r["nocache"][1] / r["nocache"][0]
    assert grow_cached > grow_nocache * 1.1
    assert grow_nocache == pytest.approx(1.0, rel=0.15)
    print(f"\nphase-8 growth 16->512: cached {grow_cached:.2f}x, "
          f"no cache {grow_nocache:.2f}x")


def test_ablation_issue_overhead_bounds_small_vl(benchmark, mesh):
    """Halving the issue/dispatch overhead disproportionately helps the
    small-VECTOR_SIZE configurations."""
    cheap_issue = replace(RISCV_VEC, vpu=replace(RISCV_VEC.vpu, issue_overhead=2.0))

    def run():
        return {
            16: (total(mesh, RISCV_VEC, "vec1", 16),
                 total(mesh, cheap_issue, "vec1", 16)),
            240: (total(mesh, RISCV_VEC, "vec1", 240),
                  total(mesh, cheap_issue, "vec1", 240)),
        }

    r = benchmark.pedantic(run, rounds=1, iterations=1)
    gain16 = r[16][0] / r[16][1]
    gain240 = r[240][0] / r[240][1]
    assert gain16 >= gain240 * 0.98
    print(f"\nissue-overhead ablation gain: VS16 {gain16:.3f}x, VS240 {gain240:.3f}x")
