"""Figure 2: total cycles of the vanilla auto-vectorized mini-app per
VECTOR_SIZE.

Paper: VECTOR_SIZE strongly matters; 240 is the fastest configuration
(the Vitruvius FSM sweet spot), 16 the slowest by far.
"""

from repro.experiments import figures, report


def test_figure2(benchmark, session):
    f = benchmark(figures.figure2, session)
    cycles = dict(zip(f.xs, f.series["total cycles"]))
    assert min(cycles, key=cycles.get) == 240
    assert max(cycles, key=cycles.get) == 16
    # 256 is worse than 240 despite the higher occupancy
    assert cycles[256] > cycles[240]
    # large VECTOR_SIZE values beat small ones overall
    assert cycles[64] < cycles[16]
    print()
    print(report.format_table(f.rows()))
