"""Figure 3: absolute number and type of vector instructions per
VECTOR_SIZE (vanilla auto-vectorization).

Paper: the count decreases as VECTOR_SIZE grows (more elements per
instruction), ~70% of vector instructions are memory type, and no
control-lane vector instructions execute.
"""

from repro.experiments import figures, report


def test_figure3(benchmark, session):
    f = benchmark(figures.figure3, session)
    total = {
        vs: f.series["arithmetic"][i] + f.series["memory"][i]
        + f.series["control_lane"][i]
        for i, vs in enumerate(f.xs)
    }
    # counts shrink as VECTOR_SIZE grows (up to the vl_max saturation)
    assert total[64] > total[128] > total[240] >= total[256]
    # VECTOR_SIZE = 512 saturates at vl_max = 256: same count as 256
    assert abs(total[512] - total[256]) / total[256] < 0.05
    # memory instructions dominate the mix
    for i, vs in enumerate(f.xs):
        if total[vs] == 0:
            continue
        mem_share = f.series["memory"][i] / total[vs]
        assert mem_share > 0.5, vs
    # no control-lane instructions in the vanilla build (paper's note)
    assert all(v == 0 for v in f.series["control_lane"])
    print()
    print(report.format_table(f.rows()))
