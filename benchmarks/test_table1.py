"""Table 1: compiler options used for enabling auto-vectorization."""

from repro.experiments import report, tables


def test_table1(benchmark):
    t = benchmark(tables.table1)
    flags = dict(t.flags)
    # the paper's eight flags
    assert len(flags) == 8
    assert "-O3" in flags
    assert "-ffp-contract=fast" in flags
    assert "-mepi" in flags
    assert "-mcpu=avispado" in flags
    assert "-combiner-store-merging=0" in flags
    assert "-vectorizer-use-vp-strided-load-store" in flags
    assert "-disable-loop-idiom-memcpy" in flags
    assert "-disable-loop-idiom-memset" in flags
    print()
    print(report.render(t))
