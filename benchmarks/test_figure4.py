"""Figure 4: percentage of cycles per phase after vanilla
auto-vectorization.

Paper: the heavy phases that took ~90% of the scalar time drop to ~50%,
while the non-vectorized gather phases (1 and 2) grow dramatically with
VECTOR_SIZE -- the motivation for attacking phase 2 first.
"""

from repro.experiments import figures, report, tables


def test_figure4(benchmark, session):
    f = benchmark(figures.figure4, session)
    scalar = tables.table3(session).fractions

    def share(phase, vs):
        return f.series[f"phase {phase}"][f.xs.index(vs)]

    # the non-vectorized phases grow far beyond their scalar share
    for vs in (240, 256, 512):
        assert share(2, vs) > 100 * scalar[2] * 2.0
        assert share(8, vs) > 100 * scalar[8] * 2.0
    # gather+scatter phases become a major fraction at large VECTOR_SIZE
    unvec = share(1, 256) + share(2, 256) + share(8, 256)
    assert unvec > 25.0
    # the heavy vectorized phases no longer dominate as before
    heavy = sum(share(p, 256) for p in (3, 4, 6, 7))
    assert heavy < 75.0
    # phase 2 is the top optimization target among the gather phases
    assert share(2, 256) > share(1, 256)
    print()
    print(report.format_table(f.rows()))
