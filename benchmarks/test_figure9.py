"""Figure 9: percentage of cycles w.r.t. VECTOR_SIZE = 16 per phase.

Paper: well-vectorized phases drop toward ~20-30% of their VS=16 cost
as VECTOR_SIZE grows; phases 1 and 8 deviate from that trend (they stay
near or above their VS=16 cost), which Table 6 attributes to cache
misses and memory-instruction ratio.
"""

from repro.experiments import figures, report


def test_figure9(benchmark, session):
    f = benchmark(figures.figure9, session)

    def pct(phase, vs):
        return f.series[f"phase {phase}"][f.xs.index(vs)]

    # every phase starts at 100% by construction
    for p in range(1, 9):
        assert abs(pct(p, 16) - 100.0) < 1e-6
    # vectorized phases fall well below 100% at the sweet spot
    for p in (2, 3, 4, 6, 7):
        assert pct(p, 240) < 45.0, p
    # phases 1 and 8 deviate: they do NOT enjoy the same scaling
    assert pct(8, 512) > 70.0
    assert pct(1, 512) > 45.0
    assert pct(8, 512) > pct(6, 512)
    assert pct(1, 512) > pct(3, 512)
    print()
    print(report.format_table(f.rows()))
