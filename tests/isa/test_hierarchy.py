"""Tests for the Figure-1 instruction hierarchy."""

from hypothesis import given, strategies as st

from repro.isa.hierarchy import (
    HierarchyCounts,
    LEAF_BUCKETS,
    classify,
    is_counted_as_vector,
)
from repro.isa.instructions import OPCODES, VFMADD, VLE, VMV, VSETVL


def test_classify_leaves():
    assert classify(VSETVL) == "vector_config"
    assert classify(VFMADD) == "arithmetic"
    assert classify(VLE) == "memory"
    assert classify(VMV) == "control_lane"


def test_every_opcode_classifies_to_a_leaf():
    for spec in OPCODES.values():
        assert classify(spec) in LEAF_BUCKETS


def test_vsetvl_not_counted_in_iv():
    """Vector-configuration instructions count toward i_t, not i_v."""
    assert not is_counted_as_vector(VSETVL)
    assert is_counted_as_vector(VFMADD)
    assert is_counted_as_vector(VMV)


def test_counts_add_and_totals():
    h = HierarchyCounts()
    h.add(VFMADD, 10)
    h.add(VLE, 5)
    h.add(VSETVL, 2)
    h.add(VMV)
    assert h.vector == 16
    assert h.total == 18
    assert h.as_dict()["vector_config"] == 2


_spec_list = st.lists(
    st.sampled_from(sorted(OPCODES.values(), key=lambda s: s.opcode)),
    max_size=50,
)


@given(_spec_list, _spec_list)
def test_merged_equals_sum_of_parts(specs_a, specs_b):
    a, b = HierarchyCounts(), HierarchyCounts()
    for s in specs_a:
        a.add(s)
    for s in specs_b:
        b.add(s)
    merged = a.merged(b)
    assert merged.total == a.total + b.total
    assert merged.vector == a.vector + b.vector
    for bucket in LEAF_BUCKETS:
        assert getattr(merged, bucket) == getattr(a, bucket) + getattr(b, bucket)


@given(_spec_list)
def test_total_partitions_into_buckets(specs):
    h = HierarchyCounts()
    for s in specs:
        h.add(s)
    assert h.total == sum(h.as_dict().values())
    assert h.total == len(specs)
