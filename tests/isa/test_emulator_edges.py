"""Emulator edge cases: zero-length strips, AVL clamping, OOB accesses."""

import numpy as np
import pytest

from repro.isa.emulator import (
    VectorEmulator,
    li,
    run_strip_mined_axpy,
    vle,
    vlxe,
    vop,
    vse,
    vsetvl,
    vsse,
    vsxe,
)


def _machine(vl_max=8, mem_size=128) -> VectorEmulator:
    return VectorEmulator(vl_max=vl_max, mem_size=mem_size)


# -- vsetvl: the VLA contract at its edges ---------------------------------


def test_vsetvl_clamps_avl_above_vl_max():
    emu = _machine(vl_max=8)
    emu.execute([li("n", 1000.0), vsetvl("vl", "n")])
    assert emu.vl == 8
    assert emu.sreg("vl") == 8.0


def test_vsetvl_zero_and_negative_requests_grant_zero():
    emu = _machine()
    emu.execute([li("n", 0.0), vsetvl("vl", "n")])
    assert emu.vl == 0
    emu.execute([li("n", -3.0), vsetvl("vl", "n")])
    assert emu.vl == 0
    assert emu.validate_state() == []


def test_vl_zero_makes_vector_ops_no_ops():
    emu = _machine()
    emu.mem[:8] = np.arange(8.0)
    emu.vregs[1, :] = 7.0
    snapshot_mem = emu.mem.copy()
    snapshot_regs = emu.vregs.copy()
    emu.execute([li("n", 0.0), vsetvl("vl", "n"),
                 vle(2, 0), vop("vfadd", 3, 1, 2), vse(3, 16)])
    # zero granted lanes: nothing moves, per RVV tail-undisturbed rules.
    assert np.array_equal(emu.mem, snapshot_mem)
    assert np.array_equal(emu.vregs, snapshot_regs)
    assert [r.vl for r in emu.trace] == [0, 0, 0, 0]
    assert emu.validate_state() == []


# -- strip-mining: tails and exact multiples -------------------------------


def test_strip_mined_tail_shorter_than_vl_max():
    emu = _machine(vl_max=8, mem_size=64)
    n = 11  # strips of 8 then 3
    emu.mem[0:n] = np.arange(1.0, n + 1)          # x
    emu.mem[16:16 + n] = 2.0                      # y
    run_strip_mined_axpy(emu, n, a_addr=32, x_addr=0, y_addr=16, alpha=3.0)
    assert np.allclose(emu.mem[32:32 + n], 3.0 * np.arange(1.0, n + 1) + 2.0)
    grants = [r.vl for r in emu.trace if r.opcode == "vsetvl"]
    assert grants == [8, 3]
    assert emu.validate_state() == []


def test_strip_mined_exact_multiple_has_no_tail():
    emu = _machine(vl_max=4, mem_size=64)
    n = 8
    emu.mem[0:n] = 1.0
    emu.mem[16:16 + n] = 1.0
    run_strip_mined_axpy(emu, n, a_addr=32, x_addr=0, y_addr=16, alpha=1.0)
    grants = [r.vl for r in emu.trace if r.opcode == "vsetvl"]
    assert grants == [4, 4]
    assert np.allclose(emu.mem[32:32 + n], 2.0)


def test_single_element_strip():
    emu = _machine(vl_max=8, mem_size=64)
    emu.mem[0] = 5.0
    emu.mem[16] = 1.0
    run_strip_mined_axpy(emu, 1, a_addr=32, x_addr=0, y_addr=16, alpha=2.0)
    assert emu.mem[32] == 11.0
    assert [r.vl for r in emu.trace if r.opcode == "vsetvl"] == [1]


# -- out-of-bounds accesses -------------------------------------------------


def test_unit_stride_load_past_end_raises():
    emu = _machine(vl_max=8, mem_size=16)
    emu.execute([li("n", 8.0), vsetvl("vl", "n")])
    with pytest.raises(IndexError, match="out of bounds"):
        emu.step(vle(1, 12))  # touches addresses 12..19, mem ends at 15


def test_strided_store_past_end_raises():
    emu = _machine(vl_max=8, mem_size=16)
    emu.execute([li("n", 4.0), vsetvl("vl", "n"), li("stride", 8.0)])
    with pytest.raises(IndexError, match="out of bounds"):
        emu.step(vsse(1, 0, "stride"))  # addresses 0, 8, 16, 24


def test_indexed_load_oob_index_raises():
    emu = _machine(vl_max=4, mem_size=16)
    emu.execute([li("n", 4.0), vsetvl("vl", "n")])
    emu.vregs[2, :4] = [0.0, 1.0, 2.0, 99.0]  # index 99 is out of range
    with pytest.raises(IndexError, match="out of bounds"):
        emu.step(vlxe(1, 0, 2))


def test_indexed_store_negative_index_raises():
    emu = _machine(vl_max=4, mem_size=16)
    emu.execute([li("n", 4.0), vsetvl("vl", "n")])
    emu.vregs[2, :4] = [0.0, 1.0, -5.0, 3.0]
    with pytest.raises(IndexError, match="out of bounds"):
        emu.step(vsxe(1, 0, 2))


def test_oob_check_respects_granted_vl():
    # lanes past vl must NOT be bounds-checked (they are inactive).
    emu = _machine(vl_max=4, mem_size=16)
    emu.execute([li("n", 2.0), vsetvl("vl", "n")])
    emu.vregs[2, :] = [0.0, 1.0, 9999.0, -1.0]  # poison only inactive lanes
    emu.step(vlxe(1, 0, 2))  # active indices 0,1: fine
    assert emu.validate_state() == []
