"""Tests for the functional vector emulator (the Vehave analogue)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.isa.emulator import (
    Instr,
    VectorEmulator,
    li,
    run_strip_mined_axpy,
    vle,
    vlse,
    vlxe,
    vop,
    vse,
    vsetvl,
    vsse,
    vsxe,
)


@pytest.fixture
def m() -> VectorEmulator:
    return VectorEmulator(vl_max=16, mem_size=256)


def test_vsetvl_grants_at_most_vlmax(m):
    m.step(vsetvl("vl", 300))
    assert m.vl == 16 and m.sreg("vl") == 16
    m.step(vsetvl("vl", 5))
    assert m.vl == 5
    m.step(vsetvl("vl", 0))
    assert m.vl == 0


def test_unit_stride_roundtrip(m):
    m.mem[10:18] = np.arange(8.0)
    m.step(vsetvl("vl", 8))
    m.step(vle(1, 10))
    m.step(vse(1, 50))
    np.testing.assert_array_equal(m.mem[50:58], np.arange(8.0))


def test_strided_load_store(m):
    m.mem[: 20] = np.arange(20.0)
    m.step(vsetvl("vl", 5))
    m.step(vlse(1, 0, 4))          # 0, 4, 8, 12, 16
    np.testing.assert_array_equal(m.vregs[1][:5], [0, 4, 8, 12, 16])
    m.step(vsse(1, 100, 2))
    np.testing.assert_array_equal(m.mem[100:110:2], [0, 4, 8, 12, 16])


def test_gather_scatter(m):
    m.mem[:10] = np.arange(10.0) * 10
    m.step(vsetvl("vl", 4))
    m.vregs[2][:4] = [7, 0, 3, 3]
    m.step(vlxe(1, 0, 2))
    np.testing.assert_array_equal(m.vregs[1][:4], [70, 0, 30, 30])
    m.step(vsxe(1, 100, 2))
    assert m.mem[107] == 70 and m.mem[100] == 0
    # duplicate index 3: last write in element order wins
    assert m.mem[103] == 30


def test_arithmetic_vv_and_vf_forms(m):
    m.step(vsetvl("vl", 4))
    m.vregs[1][:4] = [1, 2, 3, 4]
    m.vregs[2][:4] = [10, 20, 30, 40]
    m.step(vop("vfadd", 3, 1, 2))
    np.testing.assert_array_equal(m.vregs[3][:4], [11, 22, 33, 44])
    m.step(li("a0", 2.0))
    m.step(vop("vfmul", 4, 1, "a0"))       # .vf form
    np.testing.assert_array_equal(m.vregs[4][:4], [2, 4, 6, 8])
    m.step(vop("vfmadd", 5, 1, "a0", 2))   # a*b + c
    np.testing.assert_array_equal(m.vregs[5][:4], [12, 24, 36, 48])


def test_sqrt_div_minmax_neg_abs(m):
    m.step(vsetvl("vl", 3))
    m.vregs[1][:3] = [4.0, 9.0, 16.0]
    m.step(vop("vfsqrt", 2, 1))
    np.testing.assert_array_equal(m.vregs[2][:3], [2, 3, 4])
    m.step(vop("vfdiv", 3, 1, 2))
    np.testing.assert_array_equal(m.vregs[3][:3], [2, 3, 4])
    m.vregs[4][:3] = [-1.0, 5.0, -2.0]
    m.step(vop("vfabs", 5, 4))
    np.testing.assert_array_equal(m.vregs[5][:3], [1, 5, 2])
    m.step(vop("vfneg", 6, 4))
    np.testing.assert_array_equal(m.vregs[6][:3], [1, -5, 2])
    m.step(vop("vfmax", 7, 4, 5))
    np.testing.assert_array_equal(m.vregs[7][:3], [1, 5, 2])


def test_tail_elements_undisturbed(m):
    m.vregs[1][:] = 7.0
    m.step(vsetvl("vl", 4))
    m.step(vop("vfmv_v_f", 1, 0.0))
    np.testing.assert_array_equal(m.vregs[1][:4], 0.0)
    np.testing.assert_array_equal(m.vregs[1][4:], 7.0)  # tail preserved


def test_vslidedown(m):
    m.step(vsetvl("vl", 6))
    m.vregs[1][:6] = [1, 2, 3, 4, 5, 6]
    m.step(li("off", 2))
    m.step(vop("vslidedown", 2, 1, "off"))
    np.testing.assert_array_equal(m.vregs[2][:6], [3, 4, 5, 6, 0, 0])


def test_out_of_bounds_access_raises(m):
    m.step(vsetvl("vl", 8))
    with pytest.raises(IndexError):
        m.step(vle(1, 255))


def test_uninitialized_scalar_register(m):
    with pytest.raises(KeyError):
        m.step(vsetvl("vl", "nope"))


def test_unknown_opcode_rejected():
    with pytest.raises(ValueError):
        Instr("vfrobnicate")


def test_trace_records_granted_vl(m):
    m.step(vsetvl("vl", 300))
    m.step(vop("vfmv_v_f", 1, 1.0))
    m.step(vsetvl("vl", 4))
    m.step(vop("vfadd", 2, 1, 1))
    vls = [(r.opcode, r.vl) for r in m.trace]
    assert ("vfmv_v_f", 16) in vls and ("vfadd", 4) in vls
    assert m.avl_of_trace() == pytest.approx((16 + 4) / 2)


# -- the VLA portability theorem, executed -----------------------------------


@settings(deadline=None, max_examples=20)
@given(n=st.integers(1, 120), alpha=st.floats(-10, 10),
       seed=st.integers(0, 100))
def test_same_binary_any_vector_length(n, alpha, seed):
    """The strip-mined kernel produces bit-identical results on machines
    with vl_max 256, 16 and 3 -- the RVV vector-length-agnostic claim."""
    rng = np.random.default_rng(seed)
    x = rng.standard_normal(n)
    y = rng.standard_normal(n)
    results = {}
    for vl_max in (256, 16, 3):
        m = VectorEmulator(vl_max=vl_max, mem_size=512)
        m.mem[0:n] = x
        m.mem[128:128 + n] = y
        run_strip_mined_axpy(m, n, a_addr=300, x_addr=0, y_addr=128,
                             alpha=alpha)
        results[vl_max] = m.mem[300:300 + n].copy()
    np.testing.assert_array_equal(results[256], results[16])
    np.testing.assert_array_equal(results[256], results[3])
    np.testing.assert_array_equal(results[256], alpha * x + y)


def test_strip_count_depends_on_vl_max():
    n = 40
    counts = {}
    for vl_max in (256, 8):
        m = VectorEmulator(vl_max=vl_max, mem_size=512)
        run_strip_mined_axpy(m, n, 300, 0, 128, 1.0)
        counts[vl_max] = sum(1 for r in m.trace if r.opcode == "vsetvl")
    assert counts[256] == 1
    assert counts[8] == 5
