"""Unit tests for the instruction descriptors."""

import pytest

from repro.isa.instructions import (
    ARITH_OPCODES,
    LOAD_OPCODES,
    OPCODES,
    STORE_OPCODES,
    InstrClass,
    InstrSpec,
    MemPattern,
    VectorKind,
    VFDIV,
    VFMADD,
    VLE,
    VLXE,
    VSE,
    VSETVL,
)


def test_registry_contains_all_specs():
    assert "vsetvl" in OPCODES
    assert "vfmadd" in OPCODES
    assert OPCODES["vle"].mem_pattern is MemPattern.UNIT_STRIDE
    # opcodes are unique
    assert len(OPCODES) == len({s.opcode for s in OPCODES.values()})


def test_fma_counts_two_flops_per_element():
    assert VFMADD.flops_per_elem == 2
    assert ARITH_OPCODES["add"].flops_per_elem == 1


def test_long_latency_flags():
    assert VFDIV.long_latency
    assert ARITH_OPCODES["sqrt"].long_latency
    assert not VFMADD.long_latency


def test_memory_specs():
    assert VLE.is_memory and not VLE.is_store
    assert VSE.is_memory and VSE.is_store
    assert VLXE.mem_pattern is MemPattern.INDEXED
    for pattern in MemPattern:
        assert LOAD_OPCODES[pattern].mem_pattern is pattern
        assert STORE_OPCODES[pattern].is_store


def test_vsetvl_is_config_not_vector():
    assert VSETVL.iclass is InstrClass.VECTOR_CONFIG
    assert not VSETVL.is_vector


def test_vector_instr_requires_kind():
    with pytest.raises(ValueError):
        InstrSpec("bogus", InstrClass.VECTOR)


def test_non_vector_instr_rejects_kind():
    with pytest.raises(ValueError):
        InstrSpec("bogus", InstrClass.SCALAR, vkind=VectorKind.ARITHMETIC)


def test_vector_memory_requires_pattern():
    with pytest.raises(ValueError):
        InstrSpec("bogus", InstrClass.VECTOR, vkind=VectorKind.MEMORY)


def test_classification_properties():
    assert VFMADD.is_arith and not VFMADD.is_memory
    assert VLE.is_vector and VLE.is_memory and not VLE.is_arith
