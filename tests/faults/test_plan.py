"""Seeded fault plans: determinism and strike-point selection."""

import pytest

from repro.experiments.config import TINY_MESH, RunConfig
from repro.faults.plan import (
    PASS_FAULT_KINDS,
    PASS_FAULT_RUNGS,
    SOLVER_FAULT_KINDS,
    WORKER_FAULT_KINDS,
    FaultPlan,
    FaultSpec,
)

KEYS = [f"cfg-{i}" for i in range(9)]

CONFIGS = [RunConfig(opt=o, vector_size=vs, mesh_dims=TINY_MESH)
           for o in ("vanilla", "vec2", "ivec2", "vec1")
           for vs in (16, 64)]


def test_same_seed_same_plan():
    assert FaultPlan.generate(0, KEYS) == FaultPlan.generate(0, KEYS)
    assert FaultPlan.generate(42, KEYS) == FaultPlan.generate(42, KEYS)


def test_different_seeds_differ():
    plans = {FaultPlan.generate(s, KEYS).specs for s in range(8)}
    assert len(plans) > 1


def test_one_spec_per_kind():
    plan = FaultPlan.generate(0, KEYS)
    assert sorted(s.kind for s in plan.specs) == sorted(WORKER_FAULT_KINDS)
    for kind in WORKER_FAULT_KINDS:
        assert plan.spec_for(kind).kind == kind


def test_targets_drawn_from_keys():
    plan = FaultPlan.generate(3, KEYS)
    for spec in plan.specs:
        assert spec.target_key in KEYS


def test_torn_cache_tears_an_earlier_entry():
    plan = FaultPlan.generate(0, KEYS)
    spec = plan.spec_for("torn_cache")
    # strikes on the last run so earlier entries exist on disk to tear.
    assert spec.target_key == KEYS[-1]
    assert spec.victim_key in KEYS[:-1]
    assert spec.victim_key != spec.target_key


def test_empty_sweep_rejected():
    with pytest.raises(ValueError):
        FaultPlan.generate(0, [])


def test_spec_for_unknown_kind():
    with pytest.raises(KeyError):
        FaultPlan.generate(0, KEYS).spec_for("gamma_ray")


def test_to_dict_roundtrip_shape():
    plan = FaultPlan.generate(5, KEYS)
    d = plan.to_dict()
    assert d["seed"] == 5
    assert len(d["specs"]) == len(WORKER_FAULT_KINDS)
    assert all({"kind", "target_key", "victim_key"} <= set(s) for s in d["specs"])


def test_pass_fault_plan_same_seed_same_plan():
    a = FaultPlan.generate_pass_faults(0, CONFIGS)
    b = FaultPlan.generate_pass_faults(0, CONFIGS)
    assert a == b


def test_pass_fault_plan_one_spec_per_kind_on_its_rung():
    plan = FaultPlan.generate_pass_faults(0, CONFIGS)
    assert sorted(s.kind for s in plan.specs) == sorted(PASS_FAULT_KINDS)
    by_key = {cfg.key(): cfg for cfg in CONFIGS}
    for spec in plan.specs:
        # each kind strikes a config of the rung whose pipeline it
        # tampers with, so the fault actually runs the bad pass.
        assert by_key[spec.target_key].opt == PASS_FAULT_RUNGS[spec.kind]


def test_pass_fault_plan_varies_with_seed():
    plans = {FaultPlan.generate_pass_faults(s, CONFIGS).specs
             for s in range(8)}
    assert len(plans) > 1


def test_pass_fault_plan_rejects_empty_sweep():
    with pytest.raises(ValueError):
        FaultPlan.generate_pass_faults(0, [])


def test_pass_fault_plan_rejects_sweep_missing_a_rung():
    scalar_only = [cfg for cfg in CONFIGS if cfg.opt == "vanilla"]
    with pytest.raises(ValueError):
        FaultPlan.generate_pass_faults(0, scalar_only)


def test_spec_is_frozen():
    spec = FaultSpec(kind="crash", target_key="k")
    with pytest.raises(AttributeError):
        spec.kind = "hang"


# -- solver fault vocabulary -------------------------------------------------


def test_solver_fault_kinds_generate_deterministically():
    # the generic generator covers the solver vocabulary too: same
    # (seed, keys, kinds) -> same plan, different seeds spread out.
    a = FaultPlan.generate(0, KEYS, kinds=SOLVER_FAULT_KINDS)
    b = FaultPlan.generate(0, KEYS, kinds=SOLVER_FAULT_KINDS)
    assert a == b
    assert sorted(s.kind for s in a.specs) == sorted(SOLVER_FAULT_KINDS)
    assert all(s.target_key in KEYS for s in a.specs)
    plans = {FaultPlan.generate(s, KEYS, kinds=SOLVER_FAULT_KINDS).specs
             for s in range(8)}
    assert len(plans) > 1


def test_every_solver_kind_has_an_injector():
    from repro.faults.injector import (
        SOLVER_FAULT_INJECTORS,
        solver_fault_injector,
    )

    assert set(SOLVER_FAULT_INJECTORS) == set(SOLVER_FAULT_KINDS)
    for kind in SOLVER_FAULT_KINDS:
        assert callable(solver_fault_injector(kind))
    with pytest.raises(NotImplementedError):
        solver_fault_injector("torn_warp_shuffle")
