"""Fault injectors: corruption primitives and faulty sweep workers."""

import math

import numpy as np
import pytest

from repro.experiments.config import TINY_MESH, RunConfig
from repro.faults.injector import (
    FaultyWorker,
    InterruptingWorker,
    flip_float64_bit,
    inject_cache_miss_drift,
    inject_vreg_nan,
)
from repro.faults.plan import FaultPlan, FaultSpec
from repro.isa.emulator import VectorEmulator
from repro.machine.cache import Cache
from repro.machine.params import CacheParams

CFG_A = RunConfig(opt="vanilla", vector_size=16, mesh_dims=TINY_MESH)
CFG_B = RunConfig(opt="vec1", vector_size=16, mesh_dims=TINY_MESH)


def _plan(kind: str, target: RunConfig, victim: str = "") -> FaultPlan:
    return FaultPlan(seed=0, specs=(
        FaultSpec(kind=kind, target_key=target.key(), victim_key=victim),))


# -- primitives -------------------------------------------------------------


def test_flip_float64_bit_is_an_involution():
    arr = np.linspace(0.5, 2.5, 8)
    before = arr.copy()
    flip_float64_bit(arr, index=3, bit=40)
    assert arr[3] != before[3]
    assert np.all(arr[np.arange(8) != 3] == before[np.arange(8) != 3])
    flip_float64_bit(arr, index=3, bit=40)
    assert np.array_equal(arr, before)


def test_flip_float64_bit_rejects_bad_bit():
    with pytest.raises(ValueError):
        flip_float64_bit(np.zeros(4), index=0, bit=64)


def test_vreg_nan_is_detected_by_validate_state():
    emu = VectorEmulator(vl_max=8)
    assert emu.validate_state() == []
    inject_vreg_nan(emu, reg=5, lane=2)
    violations = emu.validate_state()
    assert any("non-finite vector register" in v for v in violations)


def test_cache_miss_drift_is_detected_by_invariants():
    cache = Cache(CacheParams(name="L1", size_bytes=1024, line_bytes=64,
                              assoc=4))
    cache.access_lines(np.arange(8, dtype=np.int64))
    assert cache.check_invariants() == []
    inject_cache_miss_drift(cache, delta=cache.accesses + 1)
    assert any("exceed accesses" in v for v in cache.check_invariants())
    inject_cache_miss_drift(cache, delta=-10 * cache.misses)
    assert any("negative miss count" in v for v in cache.check_invariants())


# -- FaultyWorker -----------------------------------------------------------


def test_crash_strikes_exactly_once(tmp_path):
    worker = FaultyWorker(_plan("crash", CFG_A), tmp_path / "markers")
    with pytest.raises(RuntimeError, match="injected fault"):
        worker(CFG_A)
    # the marker claims the strike: every retry computes honestly.
    payload = worker(CFG_A)
    assert set(payload) == {str(p) for p in range(1, 9)}


def test_non_target_config_passes_through(tmp_path):
    worker = FaultyWorker(_plan("crash", CFG_A), tmp_path / "markers")
    payload = worker(CFG_B)  # not the target: no strike consumed
    assert set(payload) == {str(p) for p in range(1, 9)}
    with pytest.raises(RuntimeError):
        worker(CFG_A)


def test_nan_counter_poisons_payload(tmp_path):
    worker = FaultyWorker(_plan("nan_counter", CFG_A), tmp_path / "m")
    payload = worker(CFG_A)
    assert math.isnan(payload["1"]["cycles_total"])
    clean = worker(CFG_A)
    assert math.isfinite(clean["1"]["cycles_total"])


def test_negative_counter_flips_sign(tmp_path):
    worker = FaultyWorker(_plan("negative_counter", CFG_A), tmp_path / "m")
    assert worker(CFG_A)["1"]["cycles_total"] < 0
    assert worker(CFG_A)["1"]["cycles_total"] >= 0


def test_flop_drift_scales_every_phase(tmp_path):
    drifted = FaultyWorker(_plan("flop_drift", CFG_A), tmp_path / "m")(CFG_A)
    clean = FaultyWorker(FaultPlan(seed=0), tmp_path / "m2")(CFG_A)
    total_d = sum(p["flops"] for p in drifted.values())
    total_c = sum(p["flops"] for p in clean.values())
    assert total_c > 0
    assert total_d == pytest.approx(total_c * 1.01)


def test_kill_degrades_to_crash_in_parent_process(tmp_path):
    # a serial sweep must never be taken down by os._exit.
    worker = FaultyWorker(_plan("kill", CFG_A), tmp_path / "m")
    with pytest.raises(RuntimeError, match="in-process"):
        worker(CFG_A)


def test_torn_cache_truncates_victim_entry(tmp_path):
    from repro.experiments.executor import cache_path, load_cached, \
        simulate_run, store_cached

    cache_dir = tmp_path / "cache"
    store_cached(cache_dir, CFG_B, simulate_run(CFG_B))
    intact = cache_path(cache_dir, CFG_B).read_bytes()
    worker = FaultyWorker(_plan("torn_cache", CFG_A, victim=CFG_B.key()),
                          tmp_path / "m", cache_dir=cache_dir)
    worker(CFG_A)
    torn = cache_path(cache_dir, CFG_B).read_bytes()
    assert len(torn) < len(intact)
    # the durable-cache contract turns the torn entry into a re-simulation.
    assert load_cached(cache_dir, CFG_B) is None
    assert not cache_path(cache_dir, CFG_B).exists()


# -- InterruptingWorker -----------------------------------------------------


def test_interrupting_worker_stops_after_n_runs():
    worker = InterruptingWorker(stop_after=2)
    worker(CFG_A)
    worker(CFG_B)
    with pytest.raises(KeyboardInterrupt):
        worker(CFG_A)


# -- solver-path injectors ---------------------------------------------------


@pytest.fixture(scope="module")
def solver_system():
    from repro.cfd.csr import build_pattern
    from repro.cfd.mesh import box_mesh
    from repro.cfd.solver_path import shift_diagonal

    pattern = build_pattern(box_mesh(3, 2, 2))
    rng = np.random.default_rng(2)
    return pattern, shift_diagonal(pattern,
                                   rng.standard_normal(pattern.nnz) * 0.1)


def test_nonconverging_krylov_zeroes_one_seeded_row(solver_system):
    from repro.faults.injector import inject_nonconverging_krylov

    pattern, amatr = solver_system
    before = amatr.copy()
    bad, row = inject_nonconverging_krylov(pattern, amatr, seed=0)
    bad2, row2 = inject_nonconverging_krylov(pattern, amatr, seed=0)
    assert (row, bad.tobytes()) == (row2, bad2.tobytes())  # deterministic
    assert np.array_equal(amatr, before)  # original untouched
    rows = pattern.row_of_entry()
    assert not bad[rows == row].any()
    assert np.array_equal(bad[rows != row], amatr[rows != row])
    assert row != inject_nonconverging_krylov(pattern, amatr, seed=3)[1]


def test_torn_spmv_gather_strikes_a_populated_slot(solver_system):
    from repro.cfd.solver_phases import build_ell
    from repro.faults.injector import inject_torn_spmv_gather

    pattern, amatr = solver_system
    ellval, ellcol, _ = build_ell(pattern, amatr, 8)
    honest = ellcol.copy()
    slot, row, old, new = inject_torn_spmv_gather(
        ellval, ellcol, pattern.n, seed=0)
    assert ellval[slot, row] != 0.0  # populated: the tear is observable
    assert old != new and 0 <= new < pattern.n
    assert ellcol[slot, row] == new and honest[slot, row] == old
    diff = np.argwhere(ellcol != honest)
    assert diff.tolist() == [[slot, row]]  # exactly one torn entry
    # deterministic strike point
    ellcol2 = honest.copy()
    assert inject_torn_spmv_gather(ellval, ellcol2, pattern.n,
                                   seed=0) == (slot, row, old, new)
