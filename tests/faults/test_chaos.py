"""The seeded chaos campaign: every injected fault detected or recovered."""

import json

from repro.faults import run_chaos_campaign

EXPECTED_STAGES = {
    "baseline", "worker-crash", "nan-counter", "negative-counter",
    "flop-drift", "worker-hang", "worker-kill", "torn-cache",
    "bitflip-cache", "journal-resume", "golden-clean", "golden-bitflip",
    "emulator-nan-lane", "cache-miss-drift",
    "solver-nonconverging", "solver-torn-gather",
}


def test_seed0_campaign_absorbs_nothing_silently(tmp_path):
    report = run_chaos_campaign(seed=0, out_dir=tmp_path)

    assert {st.name for st in report.stages} == EXPECTED_STAGES
    by_name = {st.name: st for st in report.stages}

    # zero silent faults is THE acceptance criterion of the harness.
    assert report.ok
    assert report.counts["silent"] == 0

    # the clean passes really are clean ...
    assert by_name["baseline"].classification == "clean"
    assert by_name["golden-clean"].classification == "clean"
    # ... transient faults heal to bit-identical counters ...
    for name in ("worker-crash", "nan-counter", "negative-counter",
                 "worker-hang", "worker-kill", "torn-cache",
                 "bitflip-cache", "journal-resume"):
        assert by_name[name].classification == "recovered", name
    # ... and faults that survive per-run checks are still flagged.
    for name in ("flop-drift", "golden-bitflip", "emulator-nan-lane",
                 "cache-miss-drift"):
        assert by_name[name].classification == "detected", name

    # the solver drills: a stalled Krylov solve must surface its
    # converged=False (with finite history), and a torn ELL gather --
    # FLOP-conserving by construction -- must be pinned by the solver
    # phase digests + golden check.
    st = by_name["solver-nonconverging"]
    assert st.classification == "detected"
    assert any("finite: True" in e for e in st.evidence)
    st = by_name["solver-torn-gather"]
    assert st.classification == "detected"
    assert any("pinned to\nSpMV alone: True".replace("\n", " ") in e
               for e in st.evidence)

    # the report round-trips to disk and is parseable.
    on_disk = json.loads((tmp_path / "chaos-report.json").read_text())
    assert on_disk == report.to_dict()
    fplan = json.loads((tmp_path / "fault-plan.json").read_text())
    assert fplan["seed"] == 0

    # determinism hinge: nothing wall-clock-shaped may appear in the
    # report, so two same-seed campaigns serialize byte-identically
    # (the CI chaos job runs the cross-invocation comparison).
    text = report.to_json()
    for token in ("wall", "elapsed", "seconds", "timestamp"):
        assert token not in text


def test_pass_fault_stages_are_opt_in_and_all_detected(tmp_path):
    report = run_chaos_campaign(seed=0, out_dir=tmp_path, pass_faults=True)
    names = {st.name for st in report.stages}

    # pass faults extend the default stage set (which the test above
    # pins), adding exactly one stage per PASS_FAULT_KINDS entry.
    pass_stages = {"pass-trip-count", "pass-interchange", "pass-fission"}
    assert names == EXPECTED_STAGES | pass_stages

    by_name = {st.name: st for st in report.stages}
    for name in sorted(pass_stages):
        st = by_name[name]
        # a mis-legalized pass conserves work, so detection MUST come
        # from the semantic channels, never be silently absorbed.
        assert st.classification == "detected", name
        assert st.target  # struck a concrete seeded config
        assert any("digest ladder" in e for e in st.evidence), name
    assert report.ok
    assert report.counts["silent"] == 0

    # the seeded targets land on the rung each fault tampers with.
    fplan = json.loads((tmp_path / "fault-plan.json").read_text())
    rungs = {s["kind"]: s["target_key"] for s in fplan["pass_specs"]}
    assert "-vec2-" in rungs["mislegalized_trip_count"]
    assert "-ivec2-" in rungs["mislegalized_interchange"]
    assert "-vec1-" in rungs["mislegalized_fission"]

    # the markdown summary (CI job summary payload) carries the table.
    md = (tmp_path / "chaos-summary.md").read_text()
    assert "| stage | fault | target | outcome |" in md
    for name in pass_stages:
        assert name in md
    assert "**SILENT**" not in md
