"""Mis-legalized vectorization faults: tampered pass output is detected.

ROADMAP follow-up to the chaos harness: faults injected into the
*transformation pass layer* (wrong IR out of a pass) rather than into
workers or payloads.  The golden check's ``mutate`` hook is the
injection point; detection means the semantic change is caught and
pinned to the first phase that consumes the bad IR.
"""

from repro.faults.injector import mislegalize_trip_count
from repro.faults.plan import PASS_FAULT_KINDS, WORKER_FAULT_KINDS
from repro.validation.golden import golden_check


def test_pass_fault_kinds_are_a_separate_vocabulary():
    assert "mislegalized_trip_count" in PASS_FAULT_KINDS
    assert not set(PASS_FAULT_KINDS) & set(WORKER_FAULT_KINDS)


def test_mislegalized_trip_count_rewrites_promoted_bounds():
    from repro.cfd.csr import build_pattern
    from repro.cfd.kernel_context import MiniAppContext
    from repro.cfd.mesh import box_mesh
    from repro.cfd.phases import build_baseline_kernels
    from repro.compiler.ir import walk_loops
    from repro.compiler.transforms import pipeline_for_opt

    mesh = box_mesh(3, 2, 2)
    ctx = MiniAppContext(mesh, 8, nnz=build_pattern(mesh).nnz)
    kernels, _ = pipeline_for_opt("vec2").run_all(
        build_baseline_kernels(ctx.arrays, 8))
    bad = mislegalize_trip_count(kernels, delta=-1)
    originals = [lp.extent.value for k in kernels
                 for lp in walk_loops(k.body)
                 if lp.extent.name == "VECTOR_SIZE"]
    tampered = [lp.extent.value for k in bad for lp in walk_loops(k.body)
                if lp.extent.name == "VECTOR_SIZE"]
    assert originals and all(v == 8 for v in originals)
    assert len(tampered) == len(originals)
    assert all(v == 7 for v in tampered)


def test_golden_check_detects_mislegalized_trip_count():
    report = golden_check("vec2", mutate=mislegalize_trip_count)
    assert not report.ok
    # the missing last chunk element surfaces in the very first phase
    # that loops over the promoted bound.
    assert any("phase 1" in v for v in report.violations)


def test_golden_check_clean_without_mutation():
    assert golden_check("vec2", mutate=lambda ks: ks).ok
