"""Mis-legalized vectorization faults: tampered pass output is detected.

ROADMAP follow-up to the chaos harness: faults injected into the
*transformation pass layer* (wrong IR out of a pass) rather than into
workers or payloads.  The golden check's ``mutate`` hook is the
injection point; detection means the semantic change is caught and
pinned to the first phase that consumes the bad IR.  The property tests
at the bottom are the contract for the whole vocabulary: every kind in
:data:`PASS_FAULT_KINDS` must be deterministic per seed and must never
be classified silent by the shipped invariant set.
"""

import pytest

from repro.faults.injector import (
    mislegalize_fission,
    mislegalize_interchange,
    mislegalize_trip_count,
    pass_fault_mutator,
)
from repro.faults.plan import (
    PASS_FAULT_KINDS,
    PASS_FAULT_RUNGS,
    WORKER_FAULT_KINDS,
)
from repro.validation import check_phase_digest_ladder, phase_output_digests
from repro.validation.golden import golden_check


def _rung_kernels(opt: str):
    from repro.cfd.csr import build_pattern
    from repro.cfd.kernel_context import MiniAppContext
    from repro.cfd.mesh import box_mesh
    from repro.cfd.phases import build_baseline_kernels
    from repro.compiler.transforms import pipeline_for_opt

    mesh = box_mesh(3, 2, 2)
    ctx = MiniAppContext(mesh, 8, nnz=build_pattern(mesh).nnz)
    kernels, _ = pipeline_for_opt(opt).run_all(
        build_baseline_kernels(ctx.arrays, 8))
    return kernels


def test_pass_fault_kinds_are_a_separate_vocabulary():
    assert "mislegalized_trip_count" in PASS_FAULT_KINDS
    assert "mislegalized_interchange" in PASS_FAULT_KINDS
    assert "mislegalized_fission" in PASS_FAULT_KINDS
    assert not set(PASS_FAULT_KINDS) & set(WORKER_FAULT_KINDS)
    assert set(PASS_FAULT_RUNGS) == set(PASS_FAULT_KINDS)


def test_mislegalized_trip_count_rewrites_promoted_bounds():
    from repro.compiler.ir import walk_loops

    kernels = _rung_kernels("vec2")
    bad = mislegalize_trip_count(kernels, delta=-1)
    originals = [lp.extent.value for k in kernels
                 for lp in walk_loops(k.body)
                 if lp.extent.name == "VECTOR_SIZE"]
    tampered = [lp.extent.value for k in bad for lp in walk_loops(k.body)
                if lp.extent.name == "VECTOR_SIZE"]
    assert originals and all(v == 8 for v in originals)
    assert len(tampered) == len(originals)
    assert all(v == 7 for v in tampered)


def test_mislegalized_interchange_vectorizes_past_the_guard():
    # The honest ivec2 pipeline leaves guard-blocked (T2) nests alone;
    # the fault forces the interchange through, so the tampered kernel
    # set must differ structurally from the honest one.
    kernels = _rung_kernels("ivec2")
    bad = mislegalize_interchange(kernels)
    assert len(bad) == len(kernels)
    assert bad != kernels


def test_mislegalized_fission_splits_at_the_first_guard():
    from repro.compiler.ir import walk_loops

    kernels = _rung_kernels("vec1")
    bad = mislegalize_fission(kernels)
    assert bad != kernels
    # the split emits the tail (guard onward) BEFORE the head it
    # depends on, and strikes exactly one loop across the kernel list.
    n_orig = sum(1 for k in kernels for lp in walk_loops(k.body)
                 if lp.var == "ivect")
    n_bad = sum(1 for k in bad for lp in walk_loops(k.body)
                if lp.var == "ivect")
    assert n_bad == n_orig + 1
    struck = [k for k, b in zip(kernels, bad) if k != b]
    assert len(struck) == 1


def test_golden_check_detects_mislegalized_trip_count():
    report = golden_check("vec2", mutate=mislegalize_trip_count)
    assert not report.ok
    # the missing last chunk element surfaces in the very first phase
    # that loops over the promoted bound.
    assert any("phase 1" in v for v in report.violations)


def test_golden_check_detects_mislegalized_interchange():
    report = golden_check("ivec2", mutate=mislegalize_interchange)
    assert not report.ok
    # the guard condition read at the wrong lane corrupts the matrix
    # assembly phase, where the padding lanes double-count.
    assert any("phase 8" in v for v in report.violations)


def test_golden_check_detects_mislegalized_fission():
    report = golden_check("vec1", mutate=mislegalize_fission)
    assert not report.ok
    # reordering across the T4 dependence reads the fallback viscosity
    # before the guarded store, surfacing in phase 1.
    assert any("phase 1" in v and "elvisc" in v for v in report.violations)


def test_golden_check_clean_without_mutation():
    assert golden_check("vec2", mutate=lambda ks: ks).ok


def test_pass_fault_mutator_rejects_unknown_kind():
    # a kind listed in the vocabulary but missing its injector must
    # fail loudly, never be skipped (the drill table depends on this).
    with pytest.raises(NotImplementedError):
        pass_fault_mutator("mislegalized_warp_shuffle")


# -- vocabulary-wide property tests -----------------------------------------
#
# These are the CI contract for the fault model: a kind listed in
# PASS_FAULT_KINDS that is stubbed, nondeterministic, or invisible to
# the shipped invariants fails here, loudly, before the chaos gate
# ever runs.


@pytest.mark.parametrize("kind", PASS_FAULT_KINDS)
def test_every_listed_kind_resolves_to_an_injector(kind):
    assert callable(pass_fault_mutator(kind))


@pytest.mark.parametrize("kind", PASS_FAULT_KINDS)
def test_every_kind_is_deterministic(kind):
    kernels = _rung_kernels(PASS_FAULT_RUNGS[kind])
    mutate = pass_fault_mutator(kind)
    once, twice = mutate(list(kernels)), mutate(list(kernels))
    assert once == twice           # frozen-dataclass structural equality
    assert once != kernels         # and it actually tampers


@pytest.mark.parametrize("kind", PASS_FAULT_KINDS)
def test_no_kind_is_silent_under_the_shipped_invariants(kind):
    rung = PASS_FAULT_RUNGS[kind]
    mutate = pass_fault_mutator(kind)

    # channel 1: the per-rung golden drill must flag the tampered IR.
    assert not golden_check(rung, mutate=mutate).ok

    # channel 2: the cross-rung digest ladder must single out the
    # tampered run against the honest majority.
    digests = {f"honest-{opt}": phase_output_digests(opt)
               for opt in ("vanilla", "vec2", "ivec2", "vec1")}
    digests["tampered"] = phase_output_digests(rung, mutate=mutate)
    flagged = check_phase_digest_ladder(digests)
    assert set(flagged) == {"tampered"}
