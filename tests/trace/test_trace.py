"""Tests for the tracing toolchain: tracer, Paraver export, analysis."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cfd.assembly import MiniApp
from repro.cfd.mesh import box_mesh
from repro.machine.cpu import Machine
from repro.machine.machines import RISCV_VEC
from repro.trace import Tracer, paraver, phase_stats, timeline
from repro.trace.events import BlockEvent, VectorInstrEvent


@pytest.fixture(scope="module")
def traced_run():
    app = MiniApp(box_mesh(4, 4, 4), vector_size=32, opt="vec1")
    tracer = Tracer()
    machine = Machine(RISCV_VEC, tracer=tracer)
    run = app.run_timed(RISCV_VEC, machine=machine)
    return tracer, run


def test_tracer_collects_events(traced_run):
    tracer, _ = traced_run
    assert tracer.blocks
    assert tracer.vector_instrs
    assert tracer.phases() == list(range(1, 9))


def test_trace_cycles_match_counters(traced_run):
    """Trace-derived cycles agree with the hardware counters -- the
    Extrae/Vehave cross-validation."""
    tracer, run = traced_run
    stats = phase_stats(tracer)
    for p, pc in run.phases.items():
        assert stats[p].cycles == pytest.approx(pc.cycles_total, rel=1e-9)


def test_trace_vector_instrs_match_counters(traced_run):
    tracer, run = traced_run
    stats = phase_stats(tracer)
    for p, pc in run.phases.items():
        assert stats[p].vector_instrs == pytest.approx(pc.i_v)
        if pc.i_v:
            assert stats[p].avl == pytest.approx(pc.vl_sum / pc.i_v)


def test_trace_hierarchy_counts(traced_run):
    tracer, run = traced_run
    stats = phase_stats(tracer)
    for p, pc in run.phases.items():
        h = stats[p].hierarchy
        assert h.arithmetic == pytest.approx(pc.instr_vector_arith)
        assert h.memory == pytest.approx(pc.instr_vector_mem)
        assert h.vector_config == pytest.approx(pc.instr_vconfig)


def test_block_timestamps_monotone(traced_run):
    tracer, _ = traced_run
    starts = [b.t_start for b in tracer.blocks]
    assert starts == sorted(starts)
    assert all(b.cycles >= 0 for b in tracer.blocks)


def test_paraver_roundtrip(traced_run):
    tracer, _ = traced_run
    text = paraver.dumps(tracer)
    back = paraver.loads(text)
    assert len(back.blocks) == len(tracer.blocks)
    assert len(back.vector_instrs) == len(tracer.vector_instrs)
    # phase cycle totals survive the (integer-timestamp) roundtrip
    for p in tracer.phases():
        assert back.phase_cycles(p) == pytest.approx(tracer.phase_cycles(p), rel=1e-3)


def test_paraver_file_io(tmp_path, traced_run):
    tracer, _ = traced_run
    path = tmp_path / "run.prv"
    paraver.dump(tracer, path)
    back = paraver.load(path)
    assert len(back.blocks) == len(tracer.blocks)


def test_paraver_rejects_garbage():
    with pytest.raises(ValueError, match="header"):
        paraver.loads("not a trace\n1:2:3")


def test_timeline_covers_run(traced_run):
    tracer, _ = traced_run
    tl = timeline(tracer, buckets=20)
    assert len(tl) == 20
    phases = {p for _, p in tl}
    assert phases <= set(range(1, 9))
    # the dominant heavy phase must appear somewhere
    assert 6 in phases or 7 in phases or 3 in phases


def test_timeline_empty_trace():
    assert timeline(Tracer()) == []


def test_tracer_disabled_records_nothing():
    t = Tracer(enabled=False)
    t.on_block(1, "x", "scalar", 0.0, 10.0)
    t.on_vector_instrs(1, 0.0, [("vle", 64, 2)])
    assert not t.blocks and not t.vector_instrs


def test_tracer_clear(traced_run):
    t = Tracer()
    t.on_block(1, "x", "scalar", 0.0, 10.0)
    t.clear()
    assert not t.blocks


@settings(deadline=None, max_examples=25)
@given(st.lists(
    st.tuples(
        st.integers(1, 8),
        st.sampled_from(["vle", "vse", "vfmadd", "vsetvl", "vlxe",
                         "op:with:colons", "50%:load", "a\nb"]),
        st.integers(1, 256),
        st.integers(1, 1000),
    ),
    max_size=30,
))
def test_paraver_event_roundtrip_property(records):
    t = Tracer()
    for phase, opcode, vl, count in records:
        t.vector_instrs.append(VectorInstrEvent(phase, opcode, vl, count, t=0.0))
    t.blocks.append(BlockEvent(1, "b", "scalar", 0.0, 100.0))
    back = paraver.loads(paraver.dumps(t))
    assert [(e.phase, e.opcode, e.vl, e.count) for e in back.vector_instrs] == \
        [(e.phase, e.opcode, e.vl, e.count) for e in t.vector_instrs]


@settings(deadline=None, max_examples=50)
@given(st.text(min_size=0, max_size=40))
def test_paraver_escape_roundtrip_property(text):
    escaped = paraver.escape_field(text)
    assert ":" not in escaped and "\n" not in escaped and "\r" not in escaped
    assert paraver.unescape_field(escaped) == text


def test_paraver_roundtrips_separator_in_labels():
    """The seed writer corrupted records whose labels contained ':'."""
    t = Tracer()
    t.blocks.append(BlockEvent(3, "loop: j=1:ndime", "vector: 25%", 0.0, 50.0))
    t.vector_instrs.append(VectorInstrEvent(3, "vle64.v:unit", 64, 4, t=0.0))
    back = paraver.loads(paraver.dumps(t))
    (b,) = back.blocks
    assert b.label == "loop: j=1:ndime" and b.kind == "vector: 25%"
    (e,) = back.vector_instrs
    assert e.opcode == "vle64.v:unit"


def test_paraver_rejects_malformed_records():
    header = f"{paraver.HEADER_PREFIX}:100:1:1:1\n"
    with pytest.raises(ValueError, match="malformed state"):
        paraver.loads(header + "1:1:1:1:0:10:1:scalar\n")
    with pytest.raises(ValueError, match="malformed event"):
        paraver.loads(header + "2:1:1:1:0:vle:64:4:1:extra\n")


def test_paraver_writes_pcf_and_row_companions(tmp_path, traced_run):
    tracer, _ = traced_run
    path = tmp_path / "run.prv"
    paraver.dump(tracer, path, with_config=True)
    pcf = (tmp_path / "run.pcf").read_text()
    assert "STATES" in pcf and "EVENT_TYPE" in pcf
    assert "convective" in pcf          # phase 6 named after the paper
    assert str(paraver.VECTOR_EVENT_TYPE) in pcf
    row = (tmp_path / "run.row").read_text()
    assert "LEVEL THREAD SIZE 1" in row
