"""Tests for the Table-6 multiple linear regression."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.metrics.regression import (
    cycles_vs_memory_model,
    linear_regression,
)


def test_exact_linear_model_recovers_coefficients():
    rng = np.random.default_rng(0)
    X = rng.standard_normal((20, 2))
    y = 3.0 + 2.0 * X[:, 0] - 5.0 * X[:, 1]
    res = linear_regression(X, y)
    assert res.intercept == pytest.approx(3.0, abs=1e-9)
    np.testing.assert_allclose(res.coefficients, [2.0, -5.0], atol=1e-9)
    assert res.r_squared == pytest.approx(1.0)
    np.testing.assert_allclose(res.residuals, 0.0, atol=1e-8)


def test_noise_lowers_r_squared():
    rng = np.random.default_rng(1)
    X = rng.standard_normal((200, 2))
    y_clean = 1.0 + X[:, 0]
    y_noisy = y_clean + 5.0 * rng.standard_normal(200)
    assert linear_regression(X, y_clean).r_squared > 0.999
    assert linear_regression(X, y_noisy).r_squared < 0.5


def test_one_dimensional_predictor():
    x = np.arange(10.0)
    res = linear_regression(x, 2 * x + 1)
    assert res.coefficients[0] == pytest.approx(2.0)
    assert res.r_squared == pytest.approx(1.0)


def test_validation_errors():
    with pytest.raises(ValueError):
        linear_regression(np.zeros((3, 2)), np.zeros(4))
    with pytest.raises(ValueError):
        linear_regression(np.zeros((2, 2)), np.zeros(2))  # too few samples


def test_constant_target_r2_defined():
    X = np.arange(6.0)[:, None]
    res = linear_regression(X, np.full(6, 7.0))
    assert res.r_squared == pytest.approx(1.0)


def test_cycles_vs_memory_model_shape():
    """The exact Table-6 call: two predictors over the VS sweep."""
    dcm = np.array([1.0, 2.0, 3.0, 5.0, 6.0, 9.0])
    mem = np.array([0.3, 0.32, 0.35, 0.4, 0.42, 0.5])
    cycles = 100 + 10 * dcm + 2000 * mem
    res = cycles_vs_memory_model(cycles, dcm, mem)
    assert res.r_squared == pytest.approx(1.0)
    assert len(res.coefficients) == 2


@settings(deadline=None, max_examples=30)
@given(st.integers(min_value=4, max_value=40), st.integers(0, 1000))
def test_r_squared_bounded(n, seed):
    rng = np.random.default_rng(seed)
    X = rng.standard_normal((n, 2))
    y = rng.standard_normal(n)
    res = linear_regression(X, y)
    assert res.r_squared <= 1.0 + 1e-12
    # with an intercept, R^2 of OLS is non-negative
    assert res.r_squared >= -1e-10


@settings(deadline=None, max_examples=20)
@given(st.integers(0, 100))
def test_predictions_plus_residuals_reconstruct_target(seed):
    rng = np.random.default_rng(seed)
    X = rng.standard_normal((15, 3))
    y = rng.standard_normal(15)
    res = linear_regression(X, y)
    np.testing.assert_allclose(res.predictions + res.residuals, y, atol=1e-10)
