"""Tests for the hardware-counter records."""

from collections import Counter

import pytest
from hypothesis import given, strategies as st

from repro.metrics.counters import PhaseCounters, RunCounters, merge_runs


def sample_phase(phase=1, scale=1.0) -> PhaseCounters:
    pc = PhaseCounters(phase=phase)
    pc.cycles_total = 100.0 * scale
    pc.cycles_vector = 60.0 * scale
    pc.instr_scalar = 50.0 * scale
    pc.instr_vconfig = 5.0 * scale
    pc.instr_vector_arith = 10.0 * scale
    pc.instr_vector_mem = 20.0 * scale
    pc.instr_vector_ctrl = 1.0 * scale
    pc.instr_scalar_mem = 25.0 * scale
    pc.vl_sum = 31.0 * 64 * scale
    pc.vl_hist = Counter({64: int(31 * scale)})
    pc.flops = 640.0 * scale
    pc.l1_misses = int(7 * scale)
    return pc


def test_derived_quantities():
    pc = sample_phase()
    assert pc.i_v == 31
    assert pc.i_t == 86
    assert pc.c_v == 60.0
    assert pc.instr_mem == 45.0


def test_merge_accumulates():
    a, b = sample_phase(), sample_phase(scale=2.0)
    a.merge(b)
    assert a.cycles_total == 300.0
    assert a.i_v == 93
    assert a.vl_hist[64] == 93
    assert a.l1_misses == 21


def test_merge_rejects_phase_mismatch():
    with pytest.raises(ValueError):
        sample_phase(1).merge(sample_phase(2))


def test_run_counters_lazy_phase_creation():
    run = RunCounters()
    pc = run.phase(3)
    assert pc.phase == 3
    assert run.phase(3) is pc
    assert run.phase_ids() == [3]


def test_totals_and_fractions():
    run = RunCounters()
    run.phases[1] = sample_phase(1)
    run.phases[2] = sample_phase(2, scale=3.0)
    assert run.total_cycles == 400.0
    fr = run.cycle_fractions()
    assert fr[1] == pytest.approx(0.25)
    assert fr[2] == pytest.approx(0.75)
    assert sum(fr.values()) == pytest.approx(1.0)


def test_fractions_of_empty_run():
    run = RunCounters()
    run.phase(1)
    assert run.cycle_fractions() == {1: 0.0}


def test_aggregate_equals_sum():
    run = RunCounters()
    run.phases[1] = sample_phase(1)
    run.phases[2] = sample_phase(2, scale=2.0)
    agg = run.aggregate()
    assert agg.cycles_total == run.total_cycles
    assert agg.i_t == run.total_instructions
    assert agg.vl_hist[64] == 93
    # aggregation must not mutate the source phases
    assert run.phases[1].vl_hist[64] == 31


def test_merge_runs():
    r1, r2 = RunCounters(), RunCounters()
    r1.phases[1] = sample_phase(1)
    r2.phases[1] = sample_phase(1)
    r2.phases[2] = sample_phase(2)
    merged = merge_runs([r1, r2])
    assert merged.phases[1].cycles_total == 200.0
    assert merged.phases[2].cycles_total == 100.0


@given(st.lists(st.floats(min_value=0, max_value=1e9), min_size=1, max_size=8))
def test_total_cycles_is_sum_of_phases(cycles):
    run = RunCounters()
    for i, c in enumerate(cycles, start=1):
        run.phase(i).cycles_total = c
    assert run.total_cycles == pytest.approx(sum(cycles))
