"""Tests for the §2.2 metric definitions."""

from collections import Counter

import pytest
from hypothesis import given, strategies as st

from repro.metrics.counters import PhaseCounters
from repro.metrics.metrics import (
    PhaseMetrics,
    avl,
    dcm_per_kiloinstruction,
    mem_instruction_ratio,
    occupancy,
    vcpi,
    vector_activity,
    vector_mix,
)


def counters(i_s=100, i_va=20, i_vm=30, c_t=1000.0, c_v=600.0,
             vl=128, l1=5, s_mem=40) -> PhaseCounters:
    pc = PhaseCounters(phase=6)
    pc.instr_scalar = i_s
    pc.instr_vector_arith = i_va
    pc.instr_vector_mem = i_vm
    pc.instr_scalar_mem = s_mem
    pc.cycles_total = c_t
    pc.cycles_vector = c_v
    pc.vl_sum = (i_va + i_vm) * vl
    pc.vl_hist = Counter({vl: i_va + i_vm})
    pc.l1_misses = l1
    return pc


def test_definitions_match_paper():
    pc = counters()
    assert vector_mix(pc) == pytest.approx(50 / 150)        # M_v = i_v/i_t
    assert vector_activity(pc) == pytest.approx(0.6)        # A_v = c_v/c_t
    assert vcpi(pc) == pytest.approx(600 / 50)              # C_v = c_v/i_v
    assert avl(pc) == pytest.approx(128.0)
    assert occupancy(pc, 256) == pytest.approx(0.5)         # E_v = avl/vl_max
    assert dcm_per_kiloinstruction(pc) == pytest.approx(1000 * 5 / 150)
    assert mem_instruction_ratio(pc) == pytest.approx((40 + 30) / 150)


def test_zero_vector_phase_yields_zero_metrics():
    pc = counters(i_va=0, i_vm=0, c_v=0.0)
    pc.vl_sum = 0.0
    assert vector_mix(pc) == 0.0
    assert vcpi(pc) == 0.0
    assert avl(pc) == 0.0
    assert occupancy(pc, 256) == 0.0


def test_occupancy_invalid_vlmax():
    with pytest.raises(ValueError):
        occupancy(counters(), 0)


def test_phase_metrics_bundle():
    pm = PhaseMetrics.from_counters(counters(), vl_max=256)
    assert pm.phase == 6
    assert pm.m_v == pytest.approx(1 / 3)
    assert pm.e_v == pytest.approx(0.5)
    assert pm.cycles == 1000.0


@given(
    st.floats(min_value=1, max_value=1e6),
    st.floats(min_value=0, max_value=1e6),
)
def test_activity_bounded(c_t, c_v_raw):
    c_v = min(c_v_raw, c_t)
    pc = counters(c_t=c_t, c_v=c_v)
    assert 0.0 <= vector_activity(pc) <= 1.0


@given(st.integers(min_value=1, max_value=256))
def test_occupancy_bounded_by_one(vl):
    pc = counters(vl=vl)
    assert 0.0 < occupancy(pc, 256) <= 1.0
