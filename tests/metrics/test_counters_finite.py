"""Parse-boundary hardening: non-finite counters are rejected, reserved
metadata keys are skipped."""

import math

import pytest

from repro.metrics.counters import (
    COUNTER_FIELDS,
    counters_from_dict,
    counters_from_json,
    counters_to_dict,
)


def _payload(**over) -> dict:
    rec = {f: 0.0 for f in COUNTER_FIELDS}
    rec.update(cycles_total=100.0, cycles_vector=40.0, instr_scalar=10.0,
               instr_scalar_mem=4.0, instr_vector_arith=2.0, vl_sum=16.0,
               flops=8.0)
    rec["vl_hist"] = {"8": 2}
    rec.update(over)
    return {"1": rec}


def test_clean_payload_roundtrips():
    run = counters_from_dict(_payload())
    assert counters_to_dict(run) == {
        "1": {**_payload()["1"], "vl_hist": {"8": 2}}}


def test_nan_counter_rejected():
    with pytest.raises(ValueError, match="non-finite"):
        counters_from_dict(_payload(cycles_total=float("nan")))


def test_inf_counter_rejected():
    with pytest.raises(ValueError, match="non-finite"):
        counters_from_dict(_payload(flops=float("inf")))


def test_json_infinity_literal_rejected():
    # json.loads happily decodes bare Infinity -- the parse boundary
    # must not let it through to the artifact generators.
    import json

    text = json.dumps(_payload()).replace('"flops": 8.0', '"flops": Infinity')
    assert "Infinity" in text
    with pytest.raises(ValueError, match="non-finite"):
        counters_from_json(text)


def test_non_numeric_counter_rejected():
    with pytest.raises(TypeError, match="expected a number"):
        counters_from_dict(_payload(cycles_total="fast"))


def test_bool_counter_rejected():
    with pytest.raises(TypeError, match="expected a number"):
        counters_from_dict(_payload(cycles_total=True))


def test_nan_histogram_count_rejected():
    with pytest.raises(ValueError, match="vl_hist"):
        counters_from_dict(_payload(vl_hist={"8": float("nan")}))


def test_missing_field_raises_keyerror():
    payload = _payload()
    del payload["1"]["flops"]
    with pytest.raises(KeyError):
        counters_from_dict(payload)


def test_reserved_metadata_keys_are_skipped():
    payload = _payload()
    payload["__digest__"] = "abc123"
    payload["__validation__"] = {"ok": True}
    run = counters_from_dict(payload)
    assert run.phase_ids() == [1]
    assert math.isclose(run.phases[1].cycles_total, 100.0)
