"""Tests for the roofline analysis."""

import pytest

from repro.cfd.assembly import MiniApp
from repro.cfd.mesh import box_mesh
from repro.machine.machines import MN4_AVX512, RISCV_VEC
from repro.metrics.counters import PhaseCounters
from repro.metrics.roofline import (
    machine_ridge,
    phase_roofline,
    render_roofline,
    run_roofline,
)


def make_counters(flops, accesses, cycles, phase=1) -> PhaseCounters:
    pc = PhaseCounters(phase=phase)
    pc.flops = flops
    pc.mem_element_accesses = accesses
    pc.cycles_total = cycles
    return pc


def test_ridge_point():
    # RISC-V VEC: 16 FLOP/cyc / 64 B/cyc = 0.25 FLOP/B
    assert machine_ridge(RISCV_VEC) == pytest.approx(0.25)


def test_memory_bound_phase():
    # intensity 0.125 FLOP/B < ridge 0.25 -> bandwidth-limited
    pc = make_counters(flops=1000, accesses=1000, cycles=500)
    pt = phase_roofline(pc, RISCV_VEC)
    assert pt.intensity == pytest.approx(0.125)
    assert pt.memory_bound
    assert pt.ceiling == pytest.approx(0.125 * 64.0)
    assert pt.achieved == pytest.approx(2.0)
    assert 0.0 < pt.efficiency <= 1.0


def test_compute_bound_phase():
    pc = make_counters(flops=100_000, accesses=1000, cycles=10_000)
    pt = phase_roofline(pc, RISCV_VEC)
    assert not pt.memory_bound
    assert pt.ceiling == pytest.approx(RISCV_VEC.peak_flops_per_cycle)


def test_zero_traffic_phase():
    pc = make_counters(flops=100, accesses=0, cycles=10)
    pt = phase_roofline(pc, RISCV_VEC)
    assert pt.intensity == 0.0
    assert not pt.memory_bound
    assert pt.ceiling == RISCV_VEC.peak_flops_per_cycle


def test_miniapp_phases_on_roofline():
    """The gather phases are memory-bound; the assembly phases have
    higher intensity than the gathers (on the MN4 roofline, whose ridge
    at 2.86 FLOP/B makes everything bandwidth-limited)."""
    app = MiniApp(box_mesh(4, 4, 4), vector_size=32, opt="vec1")
    run = app.run_timed(RISCV_VEC, cache_enabled=False)
    points = run_roofline(run, RISCV_VEC)
    assert set(points) == set(range(1, 9))
    # gathers do (almost) no arithmetic; the scatter only accumulates
    assert points[1].intensity < 0.02
    assert points[2].intensity == 0.0
    assert points[8].intensity < 0.05
    # FP-dense phases clearly above the gather/scatter phases
    for p in (3, 6, 7):
        assert points[p].intensity > 0.06, p
        assert points[p].intensity > 2 * points[8].intensity, p
    # nothing exceeds its ceiling
    for pt in points.values():
        assert pt.achieved <= pt.ceiling * 1.0001


def test_mn4_everything_memory_bound():
    app = MiniApp(box_mesh(4, 4, 4), vector_size=32, opt="vec1")
    run = app.run_timed(MN4_AVX512, cache_enabled=False)
    points = run_roofline(run, MN4_AVX512)
    # MN4's ridge is 32/11.2 = 2.86 FLOP/B: FE assembly sits left of it
    assert machine_ridge(MN4_AVX512) > 2.5
    assert all(pt.memory_bound or pt.intensity == 0.0
               for pt in points.values() if pt.intensity < 2.5)


def test_render_roofline():
    pc = make_counters(flops=1000, accesses=1000, cycles=500, phase=3)
    text = render_roofline({3: phase_roofline(pc, RISCV_VEC)}, RISCV_VEC)
    assert "ridge" in text
    assert "mem" in text
    assert "#" in text
