"""Tests for the unstructured hexahedral mesh substrate."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cfd.elements import HEX08, PNODE
from repro.cfd.mesh import Mesh, box_mesh


def test_box_mesh_counts():
    m = box_mesh(3, 2, 4)
    assert m.nelem == 24
    assert m.npoin == 4 * 3 * 5
    assert m.lnods.shape == (24, PNODE)
    assert np.all(m.ltype == HEX08)


def test_connectivity_references_valid_unique_nodes():
    m = box_mesh(3, 3, 3)
    assert m.lnods.min() >= 0 and m.lnods.max() < m.npoin
    # each element's 8 nodes are distinct
    for e in range(m.nelem):
        assert len(set(m.lnods[e])) == PNODE


def test_total_volume_matches_box():
    m = box_mesh(3, 2, 2, lengths=(2.0, 1.0, 3.0))
    assert m.element_volume_total() == pytest.approx(6.0, rel=1e-12)


def test_renumbering_preserves_geometry():
    plain = box_mesh(3, 3, 3)
    shuffled = box_mesh(3, 3, 3, renumber_seed=42)
    assert shuffled.element_volume_total() == pytest.approx(
        plain.element_volume_total())
    # node ids actually changed
    assert not np.array_equal(plain.lnods, shuffled.lnods)


def test_chunks_exact_division():
    m = box_mesh(4, 2, 2)  # 16 elements
    chunks = m.chunks(8)
    assert len(chunks) == 2
    assert all(c.size == 8 for c in chunks)
    assert all(c.n_real == 8 for c in chunks)
    ids = np.concatenate([c.elements for c in chunks])
    np.testing.assert_array_equal(ids, np.arange(16))


def test_chunks_padding_repeats_last_element():
    m = box_mesh(3, 2, 2)  # 12 elements
    chunks = m.chunks(8)
    assert len(chunks) == 2
    tail = chunks[-1]
    assert tail.n_real == 4
    assert np.all(tail.elements[4:] == 11)


def test_chunks_bad_size():
    with pytest.raises(ValueError):
        box_mesh(2, 2, 2).chunks(0)


def test_mesh_validation():
    m = box_mesh(2, 2, 2)
    bad = m.lnods.copy()
    bad[0, 0] = 999
    with pytest.raises(ValueError):
        Mesh(coord=m.coord, lnods=bad, ltype=m.ltype, lmate=m.lmate)
    with pytest.raises(ValueError):
        Mesh(coord=m.coord, lnods=m.lnods, ltype=m.ltype[:-1], lmate=m.lmate)


def test_node_coordinates_lexicographic():
    m = box_mesh(2, 2, 2, lengths=(2.0, 2.0, 2.0))
    # node id = ix + iy*3 + iz*9; node 0 at origin, node 13 at center
    np.testing.assert_allclose(m.coord[0], [0, 0, 0])
    np.testing.assert_allclose(m.coord[13], [1, 1, 1])


@settings(max_examples=20, deadline=None)
@given(st.integers(1, 4), st.integers(1, 4), st.integers(1, 4),
       st.integers(1, 40))
def test_chunk_invariants(nx, ny, nz, vs):
    m = box_mesh(nx, ny, nz)
    chunks = m.chunks(vs)
    assert sum(c.n_real for c in chunks) == m.nelem
    assert all(c.size == vs for c in chunks)
    assert all(0 <= c.elements.min() and c.elements.max() < m.nelem
               for c in chunks)


@settings(max_examples=10, deadline=None)
@given(st.integers(1, 3), st.integers(1, 3), st.integers(1, 3))
def test_every_node_belongs_to_an_element(nx, ny, nz):
    m = box_mesh(nx, ny, nz)
    used = np.unique(m.lnods)
    np.testing.assert_array_equal(used, np.arange(m.npoin))
