"""Tests for the MiniApp driver: compilation wiring + paper's
vectorization-decision story (Table 4 structure)."""

import numpy as np
import pytest

from repro.cfd.assembly import MiniApp, kernel_config_for
from repro.cfd.mesh import box_mesh
from repro.machine.machines import RISCV_VEC


@pytest.fixture(scope="module")
def mesh():
    return box_mesh(4, 4, 4)


def remarks_by_phase(app: MiniApp) -> dict[int, list]:
    out: dict[int, list] = {}
    for r in app.remarks:
        out.setdefault(r.phase, []).append(r)
    return out


def test_kernel_config_levels():
    cfg = kernel_config_for("scalar", 16)
    assert not cfg.phase2_const_bound
    cfg = kernel_config_for("vec2", 16)
    assert cfg.phase2_const_bound and not cfg.phase2_interchanged
    cfg = kernel_config_for("vec1", 16)
    assert cfg.phase2_interchanged and cfg.phase1_fissioned
    with pytest.raises(ValueError):
        kernel_config_for("turbo", 16)


def test_vanilla_gather_and_scatter_phases_never_vectorize(mesh):
    """Table 4: phases 1, 2 and 8 have M_v = 0 at every VECTOR_SIZE."""
    for vs in (16, 64, 256):
        app = MiniApp(mesh, vector_size=vs, opt="vanilla")
        rb = remarks_by_phase(app)
        for phase in (1, 2, 8):
            assert all(r.status != "vectorized" for r in rb[phase]), (vs, phase)


def test_vanilla_phase2_blocked_by_runtime_dummy(mesh):
    app = MiniApp(mesh, vector_size=64, opt="vanilla")
    rb = remarks_by_phase(app)
    assert all(r.status == "blocked" for r in rb[2])
    assert any("dummy argument" in r.reason for r in rb[2])


def test_phase1_multiversioned_in_vanilla(mesh):
    """The Vehave observation: vector code emitted, scalar path taken."""
    app = MiniApp(mesh, vector_size=64, opt="vanilla")
    rb = remarks_by_phase(app)
    assert any(r.status == "multi_versioned" for r in rb[1])


def test_vs16_only_phase7_effectively_vectorizes(mesh):
    """Table 4 at VECTOR_SIZE = 16: phase 7 vectorized, phases 4/5/6
    essentially not."""
    app = MiniApp(mesh, vector_size=16, opt="vanilla")
    rb = remarks_by_phase(app)
    assert any(r.status == "vectorized" for r in rb[7])
    for phase in (4, 5):
        assert all(r.status != "vectorized" for r in rb[phase])


def test_vs64_heavy_phases_vectorize(mesh):
    app = MiniApp(mesh, vector_size=64, opt="vanilla")
    rb = remarks_by_phase(app)
    for phase in (3, 4, 5, 6, 7):
        assert any(r.status == "vectorized" for r in rb[phase]), phase


def test_vec2_vectorizes_phase2_with_tiny_avl(mesh):
    app = MiniApp(mesh, vector_size=64, opt="vec2")
    rb = remarks_by_phase(app)
    vec = [r for r in rb[2] if r.status == "vectorized"]
    assert vec
    assert {r.loop_var for r in vec} <= {"idofn", "idime"}
    run = app.run_timed(RISCV_VEC, cache_enabled=False)
    p2 = run.phases[2]
    avl = p2.vl_sum / p2.i_v
    assert 3.0 <= avl <= 4.0  # the paper's measured AVL = 4


def test_ivec2_vectorizes_phase2_over_ivect(mesh):
    app = MiniApp(mesh, vector_size=64, opt="ivec2")
    rb = remarks_by_phase(app)
    vec = [r for r in rb[2] if r.status == "vectorized"]
    assert vec and all(r.loop_var == "ivect" for r in vec)
    run = app.run_timed(RISCV_VEC, cache_enabled=False)
    p2 = run.phases[2]
    assert p2.vl_sum / p2.i_v == pytest.approx(64, rel=0.05)


def test_vec1_splits_phase1(mesh):
    app = MiniApp(mesh, vector_size=64, opt="vec1")
    rb = remarks_by_phase(app)
    statuses = [r.status for r in rb[1]]
    assert statuses.count("vectorized") == 1       # WORK B
    assert "multi_versioned" in statuses           # WORK A stays scalar
    run = app.run_timed(RISCV_VEC, cache_enabled=False)
    assert run.phases[1].i_v > 0


def test_scalar_build_emits_no_vector_instructions(mesh):
    app = MiniApp(mesh, vector_size=64, opt="scalar")
    run = app.run_timed(RISCV_VEC, cache_enabled=False)
    for pc in run.phases.values():
        assert pc.i_v == 0
        assert pc.instr_vconfig == 0


def test_run_counters_cover_all_phases(mesh):
    run = MiniApp(mesh, vector_size=16, opt="vec1").run_timed(
        RISCV_VEC, cache_enabled=False)
    assert run.phase_ids() == list(range(1, 9))
    assert all(pc.cycles_total > 0 for pc in run.phases.values())


def test_flops_independent_of_vectorization(mesh):
    """Same arithmetic, scalar or vector: FLOP counts must agree."""
    scalar = MiniApp(mesh, vector_size=64, opt="scalar").run_timed(
        RISCV_VEC, cache_enabled=False)
    vector = MiniApp(mesh, vector_size=64, opt="vec1").run_timed(
        RISCV_VEC, cache_enabled=False)
    assert vector.total_flops == pytest.approx(scalar.total_flops, rel=0.02)


def test_chunk_count(mesh):
    app = MiniApp(mesh, vector_size=16, opt="vanilla")
    assert len(app.chunks) == 4  # 64 elements / 16


def test_run_numeric_field_overrides(mesh):
    app = MiniApp(mesh, vector_size=16, opt="vec1")
    base = app.run_numeric()
    fields = app.global_float_data()
    bumped = fields["unkno"].copy()
    bumped[:, 0] += 0.5
    other = app.run_numeric(field_overrides={"unkno": bumped})
    assert not np.allclose(base.rhsid, other.rhsid)
    with pytest.raises(KeyError):
        app.run_numeric(field_overrides={"nonexistent": bumped})
    with pytest.raises(ValueError):
        app.run_numeric(field_overrides={"unkno": bumped[:-1]})
