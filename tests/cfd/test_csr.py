"""Tests for the CSR pattern, scatter positions and SpMV."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cfd.csr import build_pattern, diagonal, spmv, to_dense
from repro.cfd.elements import PNODE
from repro.cfd.mesh import box_mesh


@pytest.fixture(scope="module")
def pattern222():
    return build_pattern(box_mesh(2, 2, 2))


def test_pattern_basic_invariants(pattern222):
    p = pattern222
    assert p.n == 27
    assert p.indptr[0] == 0 and p.indptr[-1] == p.nnz
    assert np.all(np.diff(p.indptr) >= 1)  # every node couples to itself
    # columns sorted within each row
    for r in range(p.n):
        cols = p.indices[p.indptr[r]:p.indptr[r + 1]]
        assert np.all(np.diff(cols) > 0)


def test_diagonal_present_everywhere(pattern222):
    p = pattern222
    rows = p.row_of_entry()
    diag_entries = set(zip(rows.tolist(), p.indices.tolist()))
    for r in range(p.n):
        assert (r, r) in diag_entries


def test_elpos_points_to_correct_entries(pattern222):
    mesh = box_mesh(2, 2, 2)
    p = pattern222
    rows = p.row_of_entry()
    for e in (0, 3, 7):
        for i in range(PNODE):
            for j in range(PNODE):
                slot = p.elpos[e, i, j]
                assert rows[slot] == mesh.lnods[e, i]
                assert p.indices[slot] == mesh.lnods[e, j]


def test_center_node_couples_to_all(pattern222):
    """In a 2x2x2 box the center node (13) touches all 27 nodes."""
    p = pattern222
    assert p.indptr[14] - p.indptr[13] == 27


def test_assembly_through_elpos_matches_dense():
    mesh = box_mesh(2, 2, 1)
    p = build_pattern(mesh)
    rng = np.random.default_rng(0)
    elmats = rng.standard_normal((mesh.nelem, PNODE, PNODE))
    data = np.zeros(p.nnz)
    np.add.at(data, p.elpos.ravel(), elmats.ravel())
    dense = to_dense(p, data)
    expected = np.zeros((p.n, p.n))
    for e in range(mesh.nelem):
        for i in range(PNODE):
            for j in range(PNODE):
                expected[mesh.lnods[e, i], mesh.lnods[e, j]] += elmats[e, i, j]
    np.testing.assert_allclose(dense, expected, rtol=1e-12)


def test_spmv_matches_dense(pattern222):
    p = pattern222
    rng = np.random.default_rng(1)
    data = rng.standard_normal(p.nnz)
    x = rng.standard_normal(p.n)
    np.testing.assert_allclose(spmv(p, data, x), to_dense(p, data) @ x,
                               rtol=1e-12)


def test_spmv_input_validation(pattern222):
    p = pattern222
    with pytest.raises(ValueError):
        spmv(p, np.zeros(3), np.zeros(p.n))
    with pytest.raises(ValueError):
        spmv(p, np.zeros(p.nnz), np.zeros(3))


def test_diagonal_extraction(pattern222):
    p = pattern222
    rng = np.random.default_rng(2)
    data = rng.standard_normal(p.nnz)
    np.testing.assert_allclose(diagonal(p, data), np.diag(to_dense(p, data)),
                               rtol=1e-12)


@settings(max_examples=15, deadline=None)
@given(st.integers(1, 3), st.integers(1, 3), st.integers(1, 2),
       st.integers(0, 100))
def test_spmv_linearity(nx, ny, nz, seed):
    mesh = box_mesh(nx, ny, nz)
    p = build_pattern(mesh)
    rng = np.random.default_rng(seed)
    data = rng.standard_normal(p.nnz)
    x = rng.standard_normal(p.n)
    y = rng.standard_normal(p.n)
    np.testing.assert_allclose(
        spmv(p, data, 2.0 * x + y),
        2.0 * spmv(p, data, x) + spmv(p, data, y),
        rtol=1e-10, atol=1e-12)


def test_pattern_symmetry():
    """Node adjacency is symmetric: (r, c) present iff (c, r) present."""
    p = build_pattern(box_mesh(3, 2, 2))
    rows = p.row_of_entry()
    entries = set(zip(rows.tolist(), p.indices.tolist()))
    assert all((c, r) in entries for r, c in entries)
