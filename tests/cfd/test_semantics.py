"""The central correctness suite: IR kernels == NumPy reference.

The paper's optimizations (VEC2, IVEC2, VEC1) must be pure performance
transformations.  These tests interpret the IR kernels of every
optimization level element by element and compare the assembled system
against the NumPy reference semantics -- and all levels against each
other.
"""

import numpy as np
import pytest

from repro.cfd.assembly import OPT_LEVELS, MiniApp
from repro.cfd.mesh import box_mesh

RTOL = 1e-9
ATOL = 1e-12


@pytest.fixture(scope="module")
def mesh():
    return box_mesh(3, 2, 2)  # 12 elements; VS=8 pads the tail chunk


@pytest.fixture(scope="module")
def reference_system(mesh):
    return MiniApp(mesh, vector_size=8, opt="scalar").run_numeric()


@pytest.mark.parametrize("opt", OPT_LEVELS)
def test_interpreter_matches_reference(mesh, reference_system, opt):
    app = MiniApp(mesh, vector_size=8, opt=opt)
    interpreted = app.run_interpreted()
    np.testing.assert_allclose(interpreted.rhsid, reference_system.rhsid,
                               rtol=RTOL, atol=ATOL)
    np.testing.assert_allclose(interpreted.amatr, reference_system.amatr,
                               rtol=RTOL, atol=ATOL)


@pytest.mark.parametrize("opt", OPT_LEVELS[1:])
def test_all_optimizations_assemble_identically(mesh, reference_system, opt):
    system = MiniApp(mesh, vector_size=8, opt=opt).run_numeric()
    np.testing.assert_allclose(system.rhsid, reference_system.rhsid,
                               rtol=RTOL, atol=ATOL)
    np.testing.assert_allclose(system.amatr, reference_system.amatr,
                               rtol=RTOL, atol=ATOL)


@pytest.mark.parametrize("vs", [4, 8, 12, 16])
def test_vector_size_does_not_change_results(mesh, vs):
    """VECTOR_SIZE is a packing parameter: the assembled system is
    invariant (including tail-padding configurations)."""
    base = MiniApp(mesh, vector_size=4, opt="vec1").run_numeric()
    other = MiniApp(mesh, vector_size=vs, opt="vec1").run_numeric()
    np.testing.assert_allclose(other.rhsid, base.rhsid, rtol=RTOL, atol=ATOL)
    np.testing.assert_allclose(other.amatr, base.amatr, rtol=RTOL, atol=ATOL)


def test_assembled_system_is_nontrivial(reference_system):
    assert np.linalg.norm(reference_system.rhsid) > 1e-6
    assert np.linalg.norm(reference_system.amatr) > 1e-6
    assert np.all(np.isfinite(reference_system.rhsid))
    assert np.all(np.isfinite(reference_system.amatr))


def test_padding_elements_do_not_scatter(mesh):
    """12 elements at VS=8 -> 4 padded slots replicating element 11; the
    validity check must keep them out of the global system."""
    padded = MiniApp(mesh, vector_size=8, opt="vec1").run_numeric()
    exact = MiniApp(mesh, vector_size=4, opt="vec1").run_numeric()  # no padding
    np.testing.assert_allclose(padded.rhsid, exact.rhsid, rtol=RTOL, atol=ATOL)
    np.testing.assert_allclose(padded.amatr, exact.amatr, rtol=RTOL, atol=ATOL)


def test_field_seed_changes_data_not_structure(mesh):
    a = MiniApp(mesh, vector_size=8, opt="vec1", field_seed=0).run_numeric()
    b = MiniApp(mesh, vector_size=8, opt="vec1", field_seed=1).run_numeric()
    assert a.pattern.nnz == b.pattern.nnz
    assert not np.allclose(a.rhsid, b.rhsid)


def test_interpreted_timed_and_numeric_share_kernels(mesh):
    """The timing path compiles exactly the kernels the interpreter ran."""
    app = MiniApp(mesh, vector_size=8, opt="vec1")
    assert len(app.kernels) == 8
    assert len(app.compiled) == 8
    assert [k.phase for k in app.kernels] == list(range(1, 9))
    assert [c.phase for c in app.compiled] == list(range(1, 9))


def test_matrix_diagonal_dominant_sign(reference_system):
    """The assembled operator has positive diagonal (viscous + grad-div
    stabilization dominate on a uniform mesh)."""
    from repro.cfd.csr import diagonal

    diag = diagonal(reference_system.pattern, reference_system.amatr)
    assert np.all(diag > 0)
