"""Tests for the mini-app working storage and chunk instances."""

import numpy as np
import pytest

from repro.cfd.csr import build_pattern
from repro.cfd.elements import HEX08, NDIME, NGAUS, PNODE
from repro.cfd.kernel_context import (
    CHUNK_BASE,
    DEFAULT_PARAMS,
    MiniAppContext,
    declare_arrays,
    Sizes,
)
from repro.cfd.mesh import box_mesh


@pytest.fixture(scope="module")
def ctx():
    mesh = box_mesh(3, 2, 2)  # 12 elements
    nnz = build_pattern(mesh).nnz
    return MiniAppContext(mesh, vector_size=8, nnz=nnz)


@pytest.fixture(scope="module")
def elpos(ctx):
    pattern = build_pattern(ctx.mesh)
    pad = ctx.padded_nelem - ctx.mesh.nelem
    return np.concatenate(
        [pattern.elpos, np.repeat(pattern.elpos[-1:], pad, axis=0)])


def test_declared_arrays_cover_both_scopes():
    sz = Sizes(vector_size=8, npoin=36, nelem=16, nmate=1, nnz=100)
    arrays = declare_arrays(sz)
    scopes = {a.scope for a in arrays.values()}
    assert scopes == {"global", "local"}
    assert arrays["gpcar"].shape == (8, NDIME, PNODE, NGAUS)
    assert arrays["lnods"].dtype == "i8"
    assert arrays["amatr"].shape == (100,)


def test_padding_to_whole_chunks(ctx):
    assert ctx.padded_nelem == 16  # 12 -> 2 chunks of 8
    assert ctx.lnods.shape == (16, PNODE)
    # padded rows replicate the last element's connectivity ...
    np.testing.assert_array_equal(ctx.lnods[12], ctx.lnods[11])
    # ... but carry an invalid element type
    assert np.all(ctx.ltype[12:] == 0)
    assert np.all(ctx.ltype[:12] == HEX08)


def test_chunks_are_contiguous_and_flag_real_count(ctx):
    chunks = ctx.chunks()
    assert len(chunks) == 2
    np.testing.assert_array_equal(chunks[0].elements, np.arange(8))
    np.testing.assert_array_equal(chunks[1].elements, np.arange(8, 16))
    assert chunks[0].n_real == 8
    assert chunks[1].n_real == 4


def test_layout_globals_before_locals(ctx):
    bases = ctx.layout.bases
    g_max = max(bases[n] for n, a in ctx.arrays.items() if a.scope == "global")
    l_min = min(bases[n] for n, a in ctx.arrays.items() if a.scope == "local")
    assert l_min > g_max


def test_layout_no_overlap(ctx):
    spans = sorted(
        (ctx.layout.bases[n], ctx.layout.bases[n] + a.nbytes)
        for n, a in ctx.arrays.items()
    )
    for (s0, e0), (s1, _e1) in zip(spans, spans[1:]):
        assert s1 >= e0


def test_instances_share_addresses_differ_in_chunk_base(ctx, elpos):
    c0, c1 = ctx.chunks()
    i0 = ctx.instance_for_chunk(c0, globals_data={"elpos": elpos})
    i1 = ctx.instance_for_chunk(c1, globals_data={"elpos": elpos})
    assert i0.binding("elunk").base_addr == i1.binding("elunk").base_addr
    assert i0.index_consts[CHUNK_BASE] == 0
    assert i1.index_consts[CHUNK_BASE] == 8


def test_instance_integer_tables_bound_automatically(ctx, elpos):
    inst = ctx.instance_for_chunk(ctx.chunks()[0], globals_data={"elpos": elpos})
    assert inst.data("lnods").shape == (16, PNODE)
    assert inst.data("ltype").shape == (16,)
    assert np.all(inst.data("kfl_sgs") == 1)
    # float arrays carry no data on the timing path
    with pytest.raises(ValueError):
        inst.data("elunk")


def test_instance_with_data_binds_everything(ctx, elpos):
    inst = ctx.instance_for_chunk(ctx.chunks()[0], with_data=True,
                                  globals_data={"elpos": elpos})
    assert inst.data("elunk").shape == (8, PNODE, 4)
    assert np.all(inst.data("elunk") == 0.0)


def test_elpos_requires_globals_data(ctx):
    with pytest.raises(ValueError, match="elpos"):
        ctx._global_int_data("elpos")


def test_default_params_contain_stabilization_constants():
    assert DEFAULT_PARAMS["tau_c1"] == 4.0
    assert DEFAULT_PARAMS["tau_c2"] == 2.0
    assert DEFAULT_PARAMS["dtinv"] > 0


def test_params_override(ctx):
    mesh = box_mesh(2, 2, 2)
    nnz = build_pattern(mesh).nnz
    custom = MiniAppContext(mesh, vector_size=8, nnz=nnz,
                            params={"dtinv": 99.0})
    assert custom.params["dtinv"] == 99.0
    assert custom.params["tau_c1"] == 4.0  # defaults preserved


def test_basis_data_shapes(ctx):
    basis = ctx.basis_data()
    assert basis["shapf"].shape == (PNODE, NGAUS)
    assert basis["deriv"].shape == (NDIME, PNODE, NGAUS)
    assert basis["weigp"].shape == (NGAUS,)
