"""The solver substrate lowered to loop-nest IR: ELL layout, kernel
registry, per-kernel pass legality, and the IR-orchestrated Krylov
solves against the NumPy reference."""

import numpy as np
import pytest

from repro.cfd.csr import build_pattern, spmv, to_dense
from repro.cfd.mesh import box_mesh
from repro.cfd.solver_phases import (
    AXPY_PHASE,
    DOT_PHASE,
    PRECOND_PHASE,
    SOLVER_PHASE_BUILDERS,
    SOLVER_PHASE_NAMES,
    SOLVER_PHASE_OUTPUTS,
    SOLVER_REF_PHASES,
    SPMV_PHASE,
    SolverContext,
    build_ell,
    seeded_solver_inputs,
)
from repro.cfd.solver_path import (
    DIAGONAL_SHIFT,
    SolverWorkload,
    shift_diagonal,
)
from repro.validation.probe import Probe

VS = 8


@pytest.fixture(scope="module")
def system():
    """Small assembled-like system: mesh pattern + random values."""
    pattern = build_pattern(box_mesh(3, 2, 2))
    rng = np.random.default_rng(7)
    amatr = shift_diagonal(pattern, rng.standard_normal(pattern.nnz) * 0.1,
                           shift=DIAGONAL_SHIFT)
    return pattern, amatr


@pytest.fixture(scope="module")
def probe_app():
    return Probe().build_app()


# -- registry ----------------------------------------------------------------


def test_solver_phase_ids_follow_assembly():
    assert (SPMV_PHASE, DOT_PHASE, AXPY_PHASE, PRECOND_PHASE) == (9, 10, 11, 12)
    ids = {SPMV_PHASE, DOT_PHASE, AXPY_PHASE, PRECOND_PHASE}
    assert set(SOLVER_PHASE_BUILDERS) == ids
    assert set(SOLVER_PHASE_NAMES) == ids
    assert set(SOLVER_PHASE_OUTPUTS) == ids
    assert set(SOLVER_REF_PHASES) == ids


def test_kernels_carry_their_phase_ids(system):
    pattern, amatr = system
    ctx = SolverContext(pattern, amatr, VS)
    for phase, builder in SOLVER_PHASE_BUILDERS.items():
        kern = builder(ctx.arrays, VS)
        assert kern.phase == phase
        for name in SOLVER_PHASE_OUTPUTS[phase]:
            assert name in ctx.arrays


# -- ELL layout --------------------------------------------------------------


def test_build_ell_roundtrips_the_matrix(system):
    pattern, amatr = system
    ellval, ellcol, diagv = build_ell(pattern, amatr, VS)
    n = pattern.n
    dense = np.zeros((n, n))
    rowlen, padded = ellval.shape
    assert padded % VS == 0 and padded >= n
    for r in range(n):
        for s in range(rowlen):
            dense[r, ellcol[s, r]] += ellval[s, r]
    assert np.allclose(dense, to_dense(pattern, amatr))


def test_build_ell_padding_is_harmless(system):
    pattern, amatr = system
    ellval, ellcol, diagv = build_ell(pattern, amatr, VS)
    n = pattern.n
    # zero-padded slots gather column 0 with a 0.0 coefficient, and
    # rows past n carry a unit diagonal so Jacobi stays well-defined.
    nnz_per_row = np.diff(pattern.indptr)
    for r in range(n):
        assert not ellval[nnz_per_row[r]:, r].any()
    assert np.all(diagv[n:] == 1.0)


def test_ell_spmv_matches_csr(system):
    pattern, amatr = system
    ellval, ellcol, _ = build_ell(pattern, amatr, VS)
    n = pattern.n
    rng = np.random.default_rng(3)
    x = np.zeros(ellval.shape[1])
    x[:n] = rng.standard_normal(n)
    y = (ellval * x[ellcol]).sum(axis=0)
    assert np.allclose(y[:n], spmv(pattern, amatr, x[:n]))
    assert np.allclose(y[n:], 0.0)


def test_seeded_inputs_deterministic(system):
    pattern, amatr = system
    ctx = SolverContext(pattern, amatr, VS)
    a = seeded_solver_inputs(ctx, 0)
    b = seeded_solver_inputs(ctx, 0)
    c = seeded_solver_inputs(ctx, 1)
    for name in ("xvec", "yvec", "rvec"):
        assert np.array_equal(a[name], b[name])
        assert not np.array_equal(a[name], c[name])


# -- per-kernel pass legality ------------------------------------------------


def _remarks(workload, phase):
    return [r for r in workload.transform_remarks if r.phase == phase]


def test_spmv_gather_loop_vectorizes(system):
    pattern, amatr = system
    w = SolverWorkload(pattern, amatr, VS, opt="vanilla")
    spmv_remarks = [r for r in w.remarks if r.phase == SPMV_PHASE]
    assert any(r.status == "vectorized" for r in spmv_remarks)


def test_spmv_reduction_not_interchange_legal(system):
    """The SpMV row loop mixes data-dependent control flow (the dinv
    guard) with the gather reduction: interchange must refuse."""
    pattern, amatr = system
    w = SolverWorkload(pattern, amatr, VS, opt="ivec2")
    li = [r for r in _remarks(w, SPMV_PHASE)
          if r.pass_name == "loop-interchange"]
    assert li and all(r.status != "applied" for r in li)
    assert any(r.blockers for r in li)


def test_spmv_row_loop_is_fissionable(system):
    """...but the guarded head and the straight-line gather tail are
    independent per row, so fission is legal and applies on vec1."""
    pattern, amatr = system
    w = SolverWorkload(pattern, amatr, VS, opt="vec1")
    lf = [r for r in _remarks(w, SPMV_PHASE)
          if r.pass_name == "loop-fission"]
    assert any(r.status == "applied" for r in lf)


def test_dot_trip_count_promoted(system):
    pattern, amatr = system
    w = SolverWorkload(pattern, amatr, VS, opt="vec2")
    ctc = [r for r in _remarks(w, DOT_PHASE)
           if r.pass_name == "const-trip-count"]
    assert any(r.status == "applied" for r in ctc)


# -- IR-orchestrated solves --------------------------------------------------


@pytest.mark.parametrize("method", ["cg", "bicgstab"])
def test_ir_solve_matches_reference(probe_app, method):
    ref = probe_app.reference_solve(method)
    ir = probe_app.solve(method)
    assert ir.converged == ref.converged
    assert ir.iterations == ref.iterations
    np.testing.assert_allclose(ir.x, ref.x, rtol=1e-9, atol=1e-12)


def test_ir_solve_both_backends_agree(probe_app):
    a = probe_app.solve("bicgstab", backend="numpy")
    b = probe_app.solve("bicgstab", backend="interpreter")
    np.testing.assert_array_equal(a.x, b.x)
    assert a.iterations == b.iterations


@pytest.mark.parametrize("method", ["cg", "bicgstab"])
def test_singular_system_reports_nonconvergence(system, method):
    """Zeroing a row makes the system unsolvable; the solver must say
    converged=False while every history entry stays finite (the Jacobi
    zero-diagonal guard plus the breakdown guards)."""
    pattern, amatr = system
    bad = amatr.copy()
    bad[pattern.row_of_entry() == 5] = 0.0
    w = SolverWorkload(pattern, bad, VS)
    rng = np.random.default_rng(11)
    b = rng.standard_normal(pattern.n)
    res = w.reference_solve(b, method=method, maxiter=50)
    assert not res.converged
    assert np.isfinite(res.residual)
    assert all(np.isfinite(v) for v in res.history)


def test_timed_solve_charges_solver_phases(probe_app):
    from repro.machine.machines import get_machine

    run, info = probe_app.run_timed_solve(get_machine("riscv_vec"))
    for phase in (SPMV_PHASE, DOT_PHASE, AXPY_PHASE, PRECOND_PHASE):
        pc = run.phases[phase]
        assert pc.cycles_total > 0
    # the ELL gather runs at vl == rowlen on every vector instruction
    assert set(run.phases[SPMV_PHASE].vl_hist) == {
        probe_app.build_solver()[0].context.sizes.rowlen}
    assert info["converged"] and info["iterations"] >= 1
