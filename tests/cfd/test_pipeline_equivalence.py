"""Frozen-fixture equivalence gate: pipeline kernels == hand variants.

Before the hand-written VEC2/IVEC2/VEC1 kernel bodies were deleted from
``cfd/phases.py``, every rung x VECTOR_SIZE combination below was
simulated once and its full counter payload frozen into
``tests/fixtures/pipeline_equivalence.json``.  These tests pin the
pass-pipeline-generated kernels to those counters byte for byte -- the
property "pipeline(baseline) == hand-written variant" survives as a
regression gate even though the hand variants no longer exist.
"""

import json
from pathlib import Path

import pytest

from repro.cfd.assembly import MiniApp, kernel_config_for
from repro.cfd.mesh import box_mesh
from repro.cfd.phases import build_baseline_kernels, build_kernels
from repro.compiler.transforms import pipeline_for_opt
from repro.experiments.config import TINY_MESH, RunConfig
from repro.experiments.executor import simulate_to_dict

FIXTURE = Path(__file__).parent.parent / "fixtures" / "pipeline_equivalence.json"


@pytest.fixture(scope="module")
def frozen():
    return json.loads(FIXTURE.read_text())


def _cases(frozen):
    for key, payload in sorted(frozen.items()):
        opt, vs = key.rsplit("-vs", 1)
        yield key, opt, int(vs), payload


def test_fixture_covers_every_rung(frozen):
    opts = {k.rsplit("-vs", 1)[0] for k in frozen}
    assert opts == {"scalar", "vanilla", "vec2", "ivec2", "vec1"}
    assert len(frozen) == 10  # 5 rungs x vs in {16, 64}


@pytest.mark.parametrize("vs", [16, 64])
@pytest.mark.parametrize("opt",
                         ["scalar", "vanilla", "vec2", "ivec2", "vec1"])
def test_pipeline_counters_match_frozen_hand_variants(frozen, opt, vs):
    payload = frozen[f"{opt}-vs{vs}"]
    got = simulate_to_dict(RunConfig(opt=opt, vector_size=vs,
                                     mesh_dims=TINY_MESH))
    assert got == payload


@pytest.mark.parametrize("opt",
                         ["scalar", "vanilla", "vec2", "ivec2", "vec1"])
def test_build_kernels_equals_pipeline_over_baseline(opt):
    """The KernelConfig shim and the rung pipeline agree exactly (IR
    dataclass equality, which implies identical compiled programs)."""
    app = MiniApp(box_mesh(4, 4, 4), 16, opt)
    cfg = kernel_config_for(opt, 16)
    via_shim = build_kernels(app.context.arrays, cfg)
    baseline = build_baseline_kernels(app.context.arrays, 16)
    via_pipeline, _ = pipeline_for_opt(opt).run_all(baseline)
    assert via_shim == via_pipeline == app.kernels


def test_phases_module_has_no_hand_variants():
    """The tentpole's structural guarantee: one canonical builder per
    phase, no per-variant duplicated loop bodies left behind."""
    import inspect

    from repro.cfd import phases

    src = inspect.getsource(phases)
    # the old variant selectors are gone...
    for needle in ("phase2_interchanged_body", "_phase1_fissioned",
                   "_phase2_const", "if cfg.phase2_interchanged",
                   "if cfg.phase1_fissioned"):
        assert needle not in src
    # ...and each builder takes (arrays, vector_size), not a config.
    for builder in phases.PHASE_BUILDERS:
        params = list(inspect.signature(builder).parameters)
        assert params == ["A", "vs"]
