"""Tests for the HEX08 finite-element basis."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cfd.elements import (
    NDIME,
    NGAUS,
    PNODE,
    gauss_points_1d,
    hex08_basis,
    shape_q1,
    shape_q1_deriv,
)

unit_xi = st.tuples(*[st.floats(min_value=-1.0, max_value=1.0) for _ in range(3)])


def test_gauss_points_1d():
    pts, wts = gauss_points_1d()
    assert wts.sum() == pytest.approx(2.0)
    # the 2-point rule integrates cubics exactly: int x^2 = 2/3
    assert (wts * pts**2).sum() == pytest.approx(2.0 / 3.0)


@settings(max_examples=50, deadline=None)
@given(unit_xi)
def test_partition_of_unity(xi):
    vals = shape_q1(np.array(xi))
    assert vals.sum() == pytest.approx(1.0, abs=1e-12)
    assert np.all(vals >= -1e-12)


@settings(max_examples=50, deadline=None)
@given(unit_xi)
def test_derivatives_sum_to_zero(xi):
    """d/dxi of sum(N_a) == 0 since the shape functions sum to 1."""
    der = shape_q1_deriv(np.array(xi))
    np.testing.assert_allclose(der.sum(axis=1), 0.0, atol=1e-12)


def test_kronecker_delta_at_nodes():
    from repro.cfd.elements import _NODE_XI

    for a in range(PNODE):
        vals = shape_q1(_NODE_XI[a])
        expected = np.zeros(PNODE)
        expected[a] = 1.0
        np.testing.assert_allclose(vals, expected, atol=1e-12)


def test_basis_tables_shapes_and_weights():
    basis = hex08_basis()
    assert basis.shapf.shape == (PNODE, NGAUS)
    assert basis.deriv.shape == (NDIME, PNODE, NGAUS)
    assert basis.weigp.sum() == pytest.approx(8.0)  # reference volume
    # partition of unity at every Gauss point
    np.testing.assert_allclose(basis.shapf.sum(axis=0), 1.0, atol=1e-12)


def test_derivative_finite_difference():
    xi = np.array([0.2, -0.3, 0.5])
    der = shape_q1_deriv(xi)
    h = 1e-7
    for d in range(NDIME):
        e = np.zeros(3)
        e[d] = h
        fd = (shape_q1(xi + e) - shape_q1(xi - e)) / (2 * h)
        np.testing.assert_allclose(der[d], fd, atol=1e-6)


def test_quadrature_integrates_trilinear_exactly():
    """int over [-1,1]^3 of x*y*z weighted by N_a is integrated exactly
    by the 2x2x2 rule; check a simple monomial instead: int x^2 y^2 z^2."""
    basis = hex08_basis()
    pts, _ = gauss_points_1d()
    total = 0.0
    g = 0
    for kz in range(2):
        for ky in range(2):
            for kx in range(2):
                total += basis.weigp[g] * (pts[kx]**2 * pts[ky]**2 * pts[kz]**2)
                g += 1
    assert total == pytest.approx((2.0 / 3.0) ** 3)
