"""Tests for the global field initialization."""

import numpy as np
import pytest

from repro.cfd.elements import NDIME, NDOFN, NGAUS
from repro.cfd.fields import make_global_fields, taylor_green_unkno
from repro.cfd.mesh import box_mesh


@pytest.fixture(scope="module")
def mesh():
    return box_mesh(3, 3, 3)


def test_unkno_shapes_and_nonzero(mesh):
    u = taylor_green_unkno(mesh.coord)
    assert u.shape == (mesh.npoin, NDOFN)
    # non-degenerate on grid-aligned coordinates
    assert np.abs(u[:, :3]).max() > 0.1
    assert np.all(np.isfinite(u))


def test_fields_shapes_and_padding(mesh):
    padded_nelem = 32  # 27 elements padded to 32
    f = make_global_fields(mesh, padded_nelem)
    assert f["tesgs"].shape == (padded_nelem, NDIME, NGAUS)
    assert f["tesgs_old"].shape == (padded_nelem, NDIME, NGAUS)
    assert f["dtinv_fld"].shape == (padded_nelem,)
    assert f["chale_fld"].shape == (padded_nelem,)
    assert f["unkno"].shape == (mesh.npoin, NDOFN)
    assert f["unkno_old"].shape == (mesh.npoin, NDIME)
    assert f["rhsid"].shape == (mesh.npoin, NDOFN)
    # padding replicates the last real element
    np.testing.assert_array_equal(f["tesgs"][27], f["tesgs"][26])


def test_fields_deterministic_by_seed(mesh):
    a = make_global_fields(mesh, 27, seed=3)
    b = make_global_fields(mesh, 27, seed=3)
    c = make_global_fields(mesh, 27, seed=4)
    np.testing.assert_array_equal(a["tesgs"], b["tesgs"])
    assert not np.array_equal(a["tesgs"], c["tesgs"])


def test_chale_matches_uniform_mesh(mesh):
    """On a unit box of 3^3 elements every cell is (1/3)^3: h = 1/3."""
    f = make_global_fields(mesh, 27)
    np.testing.assert_allclose(f["chale_fld"], 1.0 / 3.0, rtol=1e-12)


def test_material_tables_scale(mesh):
    f = make_global_fields(mesh, 27, nmate=3, density=2.0, viscosity=0.5)
    assert f["densi_mat"].shape == (3,)
    assert f["densi_mat"][0] == pytest.approx(2.0)
    assert f["visco_mat"][0] == pytest.approx(0.5)


def test_rhsid_starts_zero(mesh):
    f = make_global_fields(mesh, 27)
    assert np.all(f["rhsid"] == 0.0)
