"""Tests for the Krylov solver substrate."""

import numpy as np
import pytest

from repro.cfd.csr import CSRPattern, build_pattern, spmv, to_dense
from repro.cfd.mesh import box_mesh
from repro.cfd.solver import bicgstab, cg, jacobi_preconditioner


def laplacian_like(pattern: CSRPattern, seed: int = 0) -> np.ndarray:
    """SPD diagonally-dominant values on the mesh pattern."""
    rng = np.random.default_rng(seed)
    rows = pattern.row_of_entry()
    data = -np.abs(rng.random(pattern.nnz))
    # make symmetric: average with transpose via dense (test sizes only)
    dense = to_dense(pattern, data)
    dense = 0.5 * (dense + dense.T)
    np.fill_diagonal(dense, 0.0)
    np.fill_diagonal(dense, -dense.sum(axis=1) + 1.0)
    return dense[rows, pattern.indices]


@pytest.fixture(scope="module")
def spd_system():
    p = build_pattern(box_mesh(3, 3, 3))
    data = laplacian_like(p)
    rng = np.random.default_rng(1)
    x_true = rng.standard_normal(p.n)
    b = spmv(p, data, x_true)
    return p, data, b, x_true


def test_cg_solves_spd(spd_system):
    p, data, b, x_true = spd_system
    res = cg(p, data, b, tol=1e-12, maxiter=2000)
    assert res.converged
    np.testing.assert_allclose(res.x, x_true, rtol=1e-6, atol=1e-8)


def test_cg_jacobi_preconditioning_converges_no_slower(spd_system):
    p, data, b, _ = spd_system
    plain = cg(p, data, b, tol=1e-10, maxiter=2000)
    pre = cg(p, data, b, tol=1e-10, maxiter=2000,
             precond=jacobi_preconditioner(p, data))
    assert pre.converged
    assert pre.iterations <= plain.iterations + 5


def test_bicgstab_solves_nonsymmetric(spd_system):
    p, data, b, _ = spd_system
    # skew the matrix to make it nonsymmetric but still well conditioned
    rng = np.random.default_rng(3)
    data_ns = data + 0.05 * rng.standard_normal(data.shape)
    rows = p.row_of_entry()
    diag_mask = rows == p.indices
    data_ns[diag_mask] += 2.0
    x_true = rng.standard_normal(p.n)
    b_ns = spmv(p, data_ns, x_true)
    res = bicgstab(p, data_ns, b_ns, tol=1e-12, maxiter=2000,
                   precond=jacobi_preconditioner(p, data_ns))
    assert res.converged
    np.testing.assert_allclose(res.x, x_true, rtol=1e-6, atol=1e-8)


def test_bicgstab_solves_assembled_miniapp_matrix():
    """End-to-end: assemble the Navier-Stokes operator, then solve."""
    from repro.cfd.assembly import MiniApp

    mesh = box_mesh(3, 3, 3)
    app = MiniApp(mesh, vector_size=9, opt="vec1")
    system = app.run_numeric()
    p, data = system.pattern, system.amatr.copy()
    # regularize with a mass-like diagonal shift (time term)
    rows = p.row_of_entry()
    data[rows == p.indices] += 1.0
    b = system.rhsid[:, 0]
    res = bicgstab(p, data, b, tol=1e-10, maxiter=5000,
                   precond=jacobi_preconditioner(p, data))
    assert res.converged
    np.testing.assert_allclose(spmv(p, data, res.x), b, rtol=1e-7, atol=1e-9)


def test_residual_history_monotone_enough(spd_system):
    """CG residual reaches tolerance; history is recorded."""
    p, data, b, _ = spd_system
    res = cg(p, data, b, tol=1e-10, maxiter=2000)
    assert res.history[0] == pytest.approx(1.0)
    assert res.history[-1] < 1e-10
    assert len(res.history) == res.iterations + 1


def test_zero_rhs_returns_zero():
    p = build_pattern(box_mesh(2, 2, 2))
    data = laplacian_like(p)
    res = bicgstab(p, data, np.zeros(p.n), tol=1e-12)
    assert res.converged
    np.testing.assert_allclose(res.x, 0.0)


def test_x0_initial_guess(spd_system):
    p, data, b, x_true = spd_system
    res = cg(p, data, b, x0=x_true.copy(), tol=1e-12)
    assert res.converged
    assert res.iterations <= 2
