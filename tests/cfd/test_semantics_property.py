"""Property-based semantics tests: optimization-invariance holds for
arbitrary (small) meshes, VECTOR_SIZEs and field seeds."""

import numpy as np
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.cfd.assembly import MiniApp
from repro.cfd.mesh import box_mesh

mesh_dims = st.tuples(st.integers(1, 3), st.integers(1, 3), st.integers(1, 3))


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(dims=mesh_dims, vs=st.sampled_from([2, 4, 8, 16]),
       seed=st.integers(0, 99),
       opt=st.sampled_from(["vanilla", "vec2", "ivec2", "vec1"]))
def test_numeric_assembly_invariant_under_optimization(dims, vs, seed, opt):
    mesh = box_mesh(*dims)
    base = MiniApp(mesh, vector_size=vs, opt="scalar",
                   field_seed=seed).run_numeric()
    other = MiniApp(mesh, vector_size=vs, opt=opt,
                    field_seed=seed).run_numeric()
    np.testing.assert_allclose(other.rhsid, base.rhsid, rtol=1e-9, atol=1e-12)
    np.testing.assert_allclose(other.amatr, base.amatr, rtol=1e-9, atol=1e-12)


@settings(max_examples=8, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(dims=mesh_dims, vs1=st.sampled_from([2, 4, 8]),
       vs2=st.sampled_from([4, 8, 16]))
def test_numeric_assembly_invariant_under_vector_size(dims, vs1, vs2):
    mesh = box_mesh(*dims)
    a = MiniApp(mesh, vector_size=vs1, opt="vec1").run_numeric()
    b = MiniApp(mesh, vector_size=vs2, opt="vec1").run_numeric()
    np.testing.assert_allclose(a.rhsid, b.rhsid, rtol=1e-9, atol=1e-12)
    np.testing.assert_allclose(a.amatr, b.amatr, rtol=1e-9, atol=1e-12)


@settings(max_examples=6, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(dims=mesh_dims, vs=st.sampled_from([4, 8]))
def test_timed_counters_invariants(dims, vs):
    """Structural counter invariants hold for any configuration:
    c_v <= c_t, i_v <= i_t, occupancy bounded, flops non-negative."""
    from repro.machine.machines import RISCV_VEC

    mesh = box_mesh(*dims)
    run = MiniApp(mesh, vector_size=vs, opt="vec1").run_timed(
        RISCV_VEC, cache_enabled=False)
    for pc in run.phases.values():
        assert pc.cycles_vector <= pc.cycles_total + 1e-9
        assert pc.i_v <= pc.i_t
        assert pc.flops >= 0
        if pc.i_v:
            avl = pc.vl_sum / pc.i_v
            assert 0 < avl <= RISCV_VEC.vl_max


@settings(max_examples=6, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(0, 1000))
def test_interpreter_oracle_on_random_fields(seed):
    """The element-by-element interpreter agrees with the NumPy
    reference for arbitrary field seeds (FP order differences stay
    within tolerance)."""
    mesh = box_mesh(2, 2, 2)
    app = MiniApp(mesh, vector_size=4, opt="vec1", field_seed=seed)
    num = app.run_numeric()
    interp = app.run_interpreted()
    np.testing.assert_allclose(interp.rhsid, num.rhsid, rtol=1e-9, atol=1e-12)
    np.testing.assert_allclose(interp.amatr, num.amatr, rtol=1e-9, atol=1e-12)
