"""Frozen-fixture equivalence gate: numpy backend == interpreter oracle.

``tests/fixtures/backend_equivalence.json`` holds the honest per-phase
digests computed once by the interpreter on the pinned probe.  Every
rung and every dependency-legal pass schedule, executed by *either*
backend, must reproduce those digests byte for byte -- this is the gate
that lets ``"numpy"`` be the default backend (same pattern as the
pipeline-equivalence fixture that retired the hand-written kernel
variants).

The wall-clock test at the bottom is the CI ``backends`` job's speed
assertion; it only runs with ``REPRO_PERF_GATE=1`` so tier-1 stays
timing-free.
"""

import json
import os
import time
from pathlib import Path

import pytest

from repro.compiler.transforms import legal_schedules
from repro.validation.digests import phase_output_digests
from repro.validation.probe import Probe

FIXTURE = Path(__file__).parent.parent / "fixtures" / "backend_equivalence.json"

RUNGS = ("scalar", "vanilla", "vec2", "ivec2", "vec1")


@pytest.fixture(scope="module")
def frozen():
    return json.loads(FIXTURE.read_text())


def _digests(frozen):
    return {int(p): h for p, h in frozen["digests"].items()}


def test_fixture_covers_the_full_matrix(frozen):
    assert frozen["generator_backend"] == "interpreter"
    assert tuple(frozen["rungs"]) == RUNGS
    assert ([tuple(s) for s in frozen["schedules"]]
            == list(legal_schedules()))
    assert len(frozen["schedules"]) == 9
    assert sorted(_digests(frozen)) == list(range(1, 9))
    probe = frozen["probe"]
    assert (tuple(probe["mesh_dims"]), probe["vector_size"],
            probe["field_seed"]) == (Probe().mesh_dims,
                                     Probe().vector_size,
                                     Probe().field_seed)


@pytest.mark.parametrize("backend", ["interpreter", "numpy"])
@pytest.mark.parametrize("opt", RUNGS)
def test_rung_digests_match_frozen(frozen, opt, backend):
    got = phase_output_digests(Probe(opt=opt, backend=backend))
    assert got == _digests(frozen)


@pytest.mark.parametrize("sched", legal_schedules(),
                         ids=lambda s: "+".join(s) or "baseline")
def test_schedule_digests_match_frozen(frozen, sched):
    got = phase_output_digests(Probe(opt="vanilla", passes=sched,
                                     backend="numpy"))
    assert got == _digests(frozen)


@pytest.mark.skipif(os.environ.get("REPRO_PERF_GATE") != "1",
                    reason="wall-clock assertion; set REPRO_PERF_GATE=1 "
                           "(the CI backends job does)")
def test_numpy_beats_interpreter_by_5x():
    """The acceptance bar: the golden-check sweep at least 5x faster on
    numpy.  Measured on uncached digest runs of the standard probe
    (mutate= bypasses the lru_cache), vec1 = the deepest pipeline."""
    def clock(backend):
        t0 = time.perf_counter()
        phase_output_digests(Probe(opt="vec1", backend=backend),
                             mutate=lambda ks: list(ks))
        return time.perf_counter() - t0

    clock("numpy")  # warm compile/plan caches for both paths
    clock("interpreter")
    interp = min(clock("interpreter") for _ in range(2))
    vec = min(clock("numpy") for _ in range(2))
    assert interp >= 5.0 * vec, (
        f"numpy {vec:.4f}s vs interpreter {interp:.4f}s "
        f"= {interp / vec:.1f}x (< 5x)")
