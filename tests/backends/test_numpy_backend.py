"""Semantics of the vectorized numpy backend against the interpreter.

Synthetic-kernel probes for the tricky lowering corners (NaN min/max,
duplicate-index scatter-accumulate ordering, loop-carried recurrences
that must stay sequential, masked guards), plus full byte-exact array
comparison on real rungs of the mini-app.
"""

import numpy as np
import pytest

from repro.backends import get_backend, plan_kernel
from repro.backends.numpy_backend import NumpyExecutor, PlanLoop
from repro.compiler.interpreter import Interpreter
from repro.compiler.ir import (
    Affine,
    Array,
    Assign,
    BinOp,
    Cond,
    Const,
    Extent,
    If,
    Indirect,
    Kernel,
    Load,
    Loop,
    Ref,
    var,
)
from repro.compiler.program import KernelInstance
from repro.validation.probe import Probe

A = Array("a", (8,))
B = Array("b", (8,))


def make_instance(**arrays) -> KernelInstance:
    inst = KernelInstance()
    for name, data in arrays.items():
        data = np.asarray(data)
        dtype = "i8" if data.dtype.kind == "i" else "f8"
        inst.bind(Array(name, data.shape, dtype), data)
    return inst


def loop(body, n=8, v="i"):
    return Loop(v, Extent(n), tuple(body))


def run_both(kernel, **arrays):
    """Run *kernel* under both backends on identical data; return the
    two instances for comparison."""
    interp = make_instance(**{k: np.array(v) for k, v in arrays.items()})
    vec = make_instance(**{k: np.array(v) for k, v in arrays.items()})
    Interpreter(interp).run(kernel)
    NumpyExecutor(vec).run(kernel)
    return interp, vec


def assert_identical(interp, vec, *names):
    for name in names:
        a = np.asarray(interp.data(name))
        b = np.asarray(vec.data(name))
        assert a.tobytes() == b.tobytes(), name


# -- NaN semantics of min/max (satellite) ------------------------------


NANS = [float("nan"), 1.0, -0.0, 0.0, float("nan"), -3.5, 2.0, float("nan")]
VALS = [0.5, float("nan"), 0.0, -0.0, 2.5, float("nan"), -1.0, float("nan")]


@pytest.mark.parametrize("op,ufunc", [("min", np.minimum),
                                      ("max", np.maximum)])
def test_min_max_propagate_nan_like_numpy(op, ufunc):
    """Chaos campaigns inject NaNs; min/max must not silently un-poison
    a lane.  Both backends pin np.minimum/np.maximum semantics: NaN in
    either operand propagates, first operand wins ties (incl. +/-0)."""
    k = Kernel("k", 1, (loop([
        Assign(Ref(A, (var("i"),)),
               BinOp(op, Load(Ref(A, (var("i"),))),
                     Load(Ref(B, (var("i"),))))),
    ]),))
    interp, vec = run_both(k, a=NANS, b=VALS)
    want = ufunc(np.array(NANS), np.array(VALS))
    assert_identical(interp, vec, "a")
    got = np.asarray(interp.data("a"))
    assert got.tobytes() == want.tobytes()


# -- scatter-accumulate ordering ---------------------------------------


def test_duplicate_index_accumulate_preserves_loop_order():
    """a[idx[i]] += b[i] with colliding indices: the numpy lowering must
    apply duplicate additions in loop order (np.add.at over indices
    flattened in iteration order), or FP non-associativity shows up as
    byte drift."""
    idx = Array("idx", (8,), dtype="i8")
    acc = Array("acc", (3,))
    k = Kernel("k", 1, (loop([
        Assign(Ref(acc, (Indirect(idx, (var("i"),)),)),
               Load(Ref(B, (var("i"),))), accumulate=True),
    ]),))
    rng = np.random.default_rng(42)
    interp, vec = run_both(
        k, acc=np.zeros(3), idx=np.array([0, 1, 0, 2, 1, 0, 2, 0]),
        b=rng.uniform(-1e3, 1e3, 8) + rng.uniform(-1e-9, 1e-9, 8))
    assert_identical(interp, vec, "acc")


def test_resolved_accumulate_uses_fast_path_and_matches():
    """A gather-free accumulate whose index resolves the loop var is
    duplicate-free: the plan takes the fancy += path, same bytes."""
    k = Kernel("k", 1, (loop([
        Assign(Ref(A, (var("i"),)), Load(Ref(B, (var("i"),))),
               accumulate=True),
    ]),))
    (pl,) = plan_kernel(k)
    assert isinstance(pl, PlanLoop) and pl.vectorize
    assert pl.body[0].unique
    interp, vec = run_both(k, a=np.ones(8), b=np.arange(8.0) * 0.1)
    assert_identical(interp, vec, "a")


# -- sequential demotion -----------------------------------------------


def test_loop_carried_recurrence_stays_sequential():
    """a[i+1] = a[i] + b[i] reads what a previous iteration wrote; the
    planner must refuse the loop (array both loaded and stored) and the
    demoted sequential execution must match the oracle exactly."""
    k = Kernel("k", 1, (loop([
        Assign(Ref(A, (Affine((("i", 1),), 1),)),
               BinOp("add", Load(Ref(A, (var("i"),))),
                     Load(Ref(B, (var("i"),))))),
    ], n=7),))
    (pl,) = plan_kernel(k)
    assert isinstance(pl, PlanLoop) and not pl.vectorize
    interp, vec = run_both(k, a=np.ones(8), b=np.arange(8.0) * 0.25)
    assert_identical(interp, vec, "a")


def test_unresolved_plain_store_stays_sequential():
    """a[idx[i]] = b[i] with duplicate idx is last-write-wins; the
    gather index does not resolve ``i``, so the loop must not join the
    grid (a vectorized fancy set would be unordered)."""
    idx = Array("idx", (8,), dtype="i8")
    out = Array("out", (3,))
    k = Kernel("k", 1, (loop([
        Assign(Ref(out, (Indirect(idx, (var("i"),)),)),
               Load(Ref(B, (var("i"),)))),
    ]),))
    (pl,) = plan_kernel(k)
    assert isinstance(pl, PlanLoop) and not pl.vectorize
    interp, vec = run_both(
        k, out=np.zeros(3), idx=np.array([0, 1, 0, 2, 1, 0, 2, 0]),
        b=np.arange(8.0))
    assert_identical(interp, vec, "out")


# -- guards and gathers under the grid ---------------------------------


def test_masked_guard_matches_oracle():
    k = Kernel("k", 1, (loop([
        If(Cond("gt", Load(Ref(B, (var("i"),))), Const(0.0)),
           (Assign(Ref(A, (var("i"),)),
                   BinOp("div", Const(1.0), Load(Ref(B, (var("i"),))))),)),
    ]),))
    (pl,) = plan_kernel(k)
    assert isinstance(pl, PlanLoop) and pl.vectorize
    interp, vec = run_both(
        k, a=np.zeros(8), b=[0.0, 2.0, -1.0, 4.0, 0.0, -0.5, 8.0, 1e-30])
    assert_identical(interp, vec, "a")


def test_nested_vectorized_gather():
    idx = Array("idx", (8,), dtype="i8")
    g = Array("g", (20,))
    m = Array("m", (8, 3))
    k = Kernel("k", 1, (loop([
        loop([
            Assign(Ref(m, (var("i"), var("j"))),
                   BinOp("mul",
                         Load(Ref(g, (Indirect(idx, (var("i"),)),))),
                         Load(Ref(A, (var("j"),))))),
        ], n=3, v="j"),
    ]),))
    interp, vec = run_both(
        k, m=np.zeros((8, 3)), idx=np.array([3, 1, 4, 1, 5, 9, 2, 6]),
        g=np.arange(20.0) * 1.1, a=np.arange(8.0) + 0.5)
    assert_identical(interp, vec, "m")


# -- real rungs, full arrays -------------------------------------------


def _phase_arrays(opt: str, backend_name: str, seed: int = 0):
    from repro.cfd.reference import PHASE_OUTPUTS

    app = Probe(opt=opt, field_seed=seed).build_app()
    backend = get_backend(backend_name)
    globals_data = {**app.global_float_data(), "elpos": app.elpos}
    out = []
    for chunk in app.chunks:
        inst = app.context.instance_for_chunk(chunk, with_data=True,
                                              globals_data=globals_data)
        ex = backend.executor(inst, app.context.params)
        for kern in app.kernels:
            ex.run(kern)
            for name in PHASE_OUTPUTS[kern.phase]:
                out.append((kern.phase, name,
                            np.asarray(inst.data(name)).tobytes()))
    return out


@pytest.mark.parametrize("opt", ["vanilla", "vec1"])
def test_rung_phase_arrays_byte_identical(opt):
    """Not just digests: every output array of every phase of every
    chunk is byte-identical between the two backends."""
    ref = _phase_arrays(opt, "interpreter")
    got = _phase_arrays(opt, "numpy")
    assert [(p, n) for p, n, _ in ref] == [(p, n) for p, n, _ in got]
    for (phase, name, want), (_, _, have) in zip(ref, got):
        assert want == have, f"phase {phase} array {name!r} diverged"
