"""The redesigned ``backend=`` API surface.

Registry resolution, the package-level exports, the shared ``Probe``
spec, and the deprecation shims that keep the old per-field keyword
spellings of ``golden_check`` / ``phase_output_digests`` alive.
"""

import warnings

import pytest

import repro
from repro.backends import (
    BACKENDS,
    DEFAULT_BACKEND,
    ExecutionBackend,
    InterpreterBackend,
    NumpyBackend,
    get_backend,
)
from repro.experiments.config import RunConfig
from repro.validation import Probe
from repro.validation.digests import phase_output_digests
from repro.validation.golden import golden_check
from repro.validation.probe import PROBE_MESH, PROBE_VECTOR_SIZE, resolve_probe


# -- registry ----------------------------------------------------------


def test_both_backends_registered():
    assert set(BACKENDS) == {"interpreter", "numpy"}
    assert DEFAULT_BACKEND == "numpy"


def test_get_backend_resolution():
    assert get_backend(None).name == "numpy"          # default
    assert get_backend("interpreter").name == "interpreter"
    assert get_backend("numpy").name == "numpy"
    be = BACKENDS["interpreter"]
    assert get_backend(be) is be                      # instance passthrough


def test_get_backend_unknown_name_lists_known():
    with pytest.raises(ValueError, match="interpreter"):
        get_backend("fortran")


def test_get_backend_rejects_wrong_type():
    with pytest.raises(TypeError):
        get_backend(42)


def test_backends_satisfy_protocol():
    assert isinstance(InterpreterBackend(), ExecutionBackend)
    assert isinstance(NumpyBackend(), ExecutionBackend)


# -- package exports ---------------------------------------------------


def test_package_exports():
    assert repro.__version__ == "1.5.0"
    for name in ("BACKENDS", "ExecutionBackend", "get_backend", "Probe"):
        assert name in repro.__all__
        assert getattr(repro, name) is not None
    assert repro.get_backend is get_backend
    assert repro.Probe is Probe


# -- Probe -------------------------------------------------------------


def test_probe_defaults_match_pinned_probe():
    p = Probe()
    assert p.opt == "vanilla"
    assert p.vector_size == PROBE_VECTOR_SIZE
    assert p.mesh_dims == PROBE_MESH
    assert p.backend == DEFAULT_BACKEND
    assert p.passes is None
    hash(p)  # frozen + hashable: it is the digest cache key


def test_probe_normalizes_sequences():
    p = Probe(mesh_dims=[4, 4, 4], passes=["const-trip-count"])
    assert p.mesh_dims == (4, 4, 4)
    assert p.passes == ("const-trip-count",)


def test_resolve_probe_backend_override():
    p = resolve_probe(Probe(opt="vec1"), None, backend="interpreter")
    assert (p.opt, p.backend) == ("vec1", "interpreter")


def test_resolve_probe_rejects_probe_both_ways():
    with pytest.raises(TypeError):
        resolve_probe(Probe(), Probe())


def test_resolve_probe_rejects_probe_plus_legacy():
    with pytest.raises(TypeError, match="vector_size"):
        resolve_probe("vanilla", Probe(), vector_size=16)


# -- deprecation shims -------------------------------------------------


def test_golden_check_legacy_kwargs_warn_and_agree():
    with pytest.warns(DeprecationWarning, match="golden_check"):
        old = golden_check("vanilla", vector_size=8, field_seed=3)
    with warnings.catch_warnings():
        warnings.simplefilter("error")  # the Probe path must not warn
        new = golden_check(Probe(opt="vanilla", vector_size=8, field_seed=3))
    assert old.ok and new.ok
    assert old.to_dict() == new.to_dict()


def test_phase_output_digests_legacy_kwargs_warn_and_agree():
    with pytest.warns(DeprecationWarning, match="phase_output_digests"):
        old = phase_output_digests("vanilla", field_seed=5)
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        new = phase_output_digests(Probe(opt="vanilla", field_seed=5))
    assert old == new


def test_golden_check_rejects_probe_plus_legacy():
    with pytest.raises(TypeError):
        golden_check(Probe(), vector_size=16)


def test_golden_report_records_backend():
    rep = golden_check(Probe(backend="interpreter"))
    assert rep.backend == "interpreter"
    assert rep.to_dict()["backend"] == "interpreter"


# -- config / session / CLI threading ----------------------------------


def test_runconfig_key_stable_for_default_backend():
    # existing disk caches and BENCH baselines key off the old spelling
    assert "-be[" not in RunConfig().key()
    assert RunConfig(backend="interpreter").key().endswith("-be[interpreter]")


def test_runconfig_from_kwargs_accepts_backend():
    cfg = RunConfig.from_kwargs(mesh="tiny", backend="interpreter")
    assert cfg.backend == "interpreter"


def test_session_stamps_backend_on_configs():
    from repro.experiments.runner import Session

    s = Session(mesh_dims=(4, 4, 4), use_disk=False, backend="interpreter")
    assert s.config(opt="vec1").backend == "interpreter"
    # explicit override wins
    assert s.config(opt="vec1", backend="numpy").backend == "numpy"


def test_cli_backend_flag():
    from repro.cli import build_parser

    p = build_parser()
    args = p.parse_args(["remarks", "--backend", "interpreter"])
    assert args.backend == "interpreter"
    args = p.parse_args(["table", "3", "--backend", "interpreter"])
    assert args.backend == "interpreter"
    args = p.parse_args(["chaos"])
    assert args.backend == "numpy"
    with pytest.raises(SystemExit):
        p.parse_args(["remarks", "--backend", "fortran"])
